// Deterministic parallel sweep runner.
//
// Simulations in this repo are bit-reproducible from their spec alone, and a
// parameter sweep is a list of completely independent runs — so the only
// thing parallelism must preserve is *which run writes which result slot*.
// SweepRunner executes tasks 0..count-1 on a small thread pool where each
// worker atomically claims the next unclaimed index; task i writes only to
// slot i of the caller's result vector, so the result is identical for any
// worker count (including 1). Determinism tests pin this down by comparing
// outcome vectors across --jobs values (tests/test_sweep.cpp).
//
// Layering note: sim/ cannot see gossip-level types, so this runner is
// index-based and generic. The GossipSpec-shaped convenience wrapper lives
// in gossip/harness.h (run_gossip_sweep).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace asyncgossip {

class SweepRunner {
 public:
  /// `jobs` = number of worker threads; 0 means the hardware concurrency
  /// (at least 1). jobs <= 1 runs tasks inline on the calling thread.
  explicit SweepRunner(std::size_t jobs = 0);

  /// The resolved worker count (never 0).
  std::size_t jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(count-1), each exactly once, and blocks until all
  /// finish. Tasks must be independent: fn(i) may only touch state owned by
  /// index i. If any task throws, the exception of the lowest-index failing
  /// task is rethrown after every worker has drained (remaining tasks still
  /// run, so a throw cannot leave silent holes in the result vector).
  void run(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// Like run(), but never throws task exceptions: `errors` is resized to
  /// `count` and errors[i] holds the exception task i threw (nullptr where
  /// it succeeded). Returns the number of failed tasks. Callers that can
  /// name their tasks (e.g. run_gossip_sweep) use this to report *every*
  /// failure instead of only the lowest-index one.
  std::size_t run_collecting(std::size_t count,
                             const std::function<void(std::size_t)>& fn,
                             std::vector<std::exception_ptr>& errors) const;

 private:
  std::size_t jobs_;
};

}  // namespace asyncgossip
