// aglint-fixture-as: src/rt/fixture_rawlock.cpp
// aglint-expect: AG-LCK-001
//
// Hand-paired lock()/unlock() leaks the lock on every early return and is
// invisible to scoped-capability analysis; RAII (MutexLock) is mandatory.
#include "common/thread_annotations.h"

namespace asyncgossip {

int counter = 0;
Mutex counter_mu;

void unsafe_increment() {
  counter_mu.lock();  // AG-LCK-001
  ++counter;
  counter_mu.unlock();  // AG-LCK-001
}

}  // namespace asyncgossip
