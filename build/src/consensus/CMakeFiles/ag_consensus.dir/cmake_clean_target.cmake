file(REMOVE_RECURSE
  "libag_consensus.a"
)
