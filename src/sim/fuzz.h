// Seeded schedule fuzzer over the oblivious-adversary configuration space.
//
// The paper's guarantees are "for every oblivious adversary", but the test
// suite can only ever pin down hand-picked schedules. The fuzzer closes the
// gap by *sampling* the adversary space — population sizes, crash budgets,
// (d, delta) bounds, schedule/delay patterns, crash horizons and seeds —
// and running an oracle (the full simulation plus its postconditions) on
// every sampled case. Everything is a pure function of the fuzz seed, so a
// failing case is already a deterministic repro before any shrinking.
//
// Layering: sim/ cannot see gossip-level types, so a case carries an
// *opaque* algorithm index and the oracle is a caller-supplied callback;
// gossip/fuzz_harness.h provides the gossip oracle (postconditions,
// envelope checks, artifact emission) on top of this loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/audit.h"
#include "sim/oblivious.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace asyncgossip {

/// One sampled point of the adversary-configuration space. Everything the
/// oracle needs to rebuild the run deterministically.
struct FuzzCase {
  std::size_t algorithm = 0;  // index into the caller's algorithm list
  std::size_t n = 2;
  std::size_t f = 0;
  Time d = 1;
  Time delta = 1;
  SchedulePattern schedule = SchedulePattern::kLockStep;
  DelayPattern delay = DelayPattern::kUnitDelay;
  Time crash_horizon = 1;
  std::uint64_t seed = 1;
};

/// Compact label: "alg#1/n:16/f:4/d:3/delta:2/sched:staggered/..." — the
/// caller usually substitutes the algorithm name for the index.
std::string to_string(const FuzzCase& c);

bool operator==(const FuzzCase& a, const FuzzCase& b);
inline bool operator!=(const FuzzCase& a, const FuzzCase& b) {
  return !(a == b);
}

/// The region of the configuration space the fuzzer samples from.
struct FuzzDomain {
  /// Number of algorithm indices (cases get a uniform index in [0, this)).
  std::size_t algorithms = 1;
  /// Population sizes to draw from (uniform over the list).
  std::vector<std::size_t> ns = {8, 12, 16, 24, 32, 48};
  /// f is drawn uniformly in [0, floor(max_f_fraction * n)], additionally
  /// clamped to n - 1.
  double max_f_fraction = 0.45;
  /// d and delta are drawn uniformly in [1, max_d] x [1, max_delta].
  Time max_d = 8;
  Time max_delta = 6;
  /// Crash horizon drawn uniformly in [1, max_crash_horizon].
  Time max_crash_horizon = 64;
  /// Pattern palettes (uniform over each list).
  std::vector<SchedulePattern> schedules = {
      SchedulePattern::kLockStep, SchedulePattern::kStaggered,
      SchedulePattern::kRandomSubset, SchedulePattern::kRotating,
      SchedulePattern::kStraggler};
  std::vector<DelayPattern> delays = {
      DelayPattern::kUnitDelay, DelayPattern::kMaxDelay, DelayPattern::kUniform,
      DelayPattern::kBimodal, DelayPattern::kTargetedSlow};
};

/// Draws one case; consumes a deterministic amount of `rng` state, so the
/// i-th sampled case is a pure function of (domain, fuzz seed, i).
FuzzCase sample_case(const FuzzDomain& domain, Xoshiro256SS& rng);

/// The oracle's judgement of one case.
struct FuzzVerdict {
  bool ok = true;
  /// First failed check, e.g. "audit: ..." / "postcondition: gathering" /
  /// "envelope: time ...". Empty when ok.
  std::string failure;
  /// The engine's determinism fingerprint for the run (0 if unavailable).
  std::uint64_t trace_hash = 0;
};

/// Runs one case end to end and judges it. Must be deterministic: the same
/// case must always produce the same verdict.
using FuzzOracle = std::function<FuzzVerdict(const FuzzCase&)>;

struct FuzzOptions {
  /// Number of cases to sample (an iteration cap, not a target: the loop
  /// also stops on the time budget or on the failure limit below).
  std::uint64_t iterations = 200;
  /// Seed of the case-sampling stream.
  std::uint64_t seed = 1;
  /// Wall-clock budget in milliseconds; 0 = unlimited. Checked between
  /// cases, so one case can overshoot by its own runtime.
  std::uint64_t time_budget_ms = 0;
  /// Stop after this many failing cases (>= 1).
  std::uint64_t max_failures = 1;
};

struct FuzzFailure {
  FuzzCase c;
  FuzzVerdict verdict;
  std::uint64_t iteration = 0;  // 0-based index into the sampled stream
};

struct FuzzReport {
  std::uint64_t cases_run = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// The fuzz loop: sample — run — judge, until the iteration cap, the time
/// budget, or max_failures failing cases.
FuzzReport run_fuzz(const FuzzDomain& domain, const FuzzOptions& options,
                    const FuzzOracle& oracle);

/// Replays a recorded event stream through a fresh InvariantAuditor, the
/// same way tools/tracecheck lints trace files. The fuzz harness uses this
/// to re-audit *mutated* copies of an execution's event stream (test-only
/// fault injection), which is how the fuzzer's detection path is itself
/// tested end to end.
ViolationReport audit_events(const std::vector<TraceRecorder::Event>& events,
                             const AuditConfig& config, bool finalize = true);

}  // namespace asyncgossip
