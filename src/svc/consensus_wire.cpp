#include "svc/consensus_wire.h"

#include <memory>

#include "consensus/core_types.h"
#include "rt/wire.h"

namespace asyncgossip {
namespace svc {

namespace {

/// Val <-> byte: kValUnknown(-2)..1 maps to 0..3.
std::uint8_t val_byte(Val v) { return static_cast<std::uint8_t>(v + 2); }

bool byte_val(wire::Reader* r, Val* out) {
  std::uint8_t b = 0;
  if (!r->byte(&b)) return false;
  if (b > 3) {
    r->fail(wire::DecodeError::kBadValue);
    return false;
  }
  *out = static_cast<Val>(static_cast<int>(b) - 2);
  return true;
}

bool bounded_byte(wire::Reader* r, std::uint8_t max, std::uint8_t* out) {
  if (!r->byte(out)) return false;
  if (*out > max) {
    r->fail(wire::DecodeError::kBadValue);
    return false;
  }
  return true;
}

bool encode_consensus(std::vector<std::uint8_t>* out,
                      const Payload& payload) {
  const auto* p = dynamic_cast<const ConsensusPayload*>(&payload);
  if (p == nullptr) return false;
  wire::put_varint(out, kConsensusPayloadTag);
  wire::put_varint(out, p->sender);
  wire::put_varint(out, p->pos.phase);
  out->push_back(p->pos.exchange);
  out->push_back(p->pos.sub);
  wire::encode_bitset(out, p->state.origins);
  for (const Val v : p->state.items) out->push_back(val_byte(v));
  out->push_back(val_byte(p->sender_x));
  out->push_back(val_byte(p->sender_y));
  out->push_back(p->decided ? 1 : 0);
  out->push_back(val_byte(p->decision));
  out->push_back(p->flag_up ? 1 : 0);
  return true;
}

bool decode_consensus(wire::Reader* r, PayloadPtr* out) {
  auto p = std::make_shared<ConsensusPayload>();
  std::uint64_t sender = 0, phase = 0;
  if (!r->varint(&sender) || !r->varint(&phase)) return false;
  if (sender > wire::kMaxBits || phase == 0 || phase > 1u << 20) {
    r->fail(wire::DecodeError::kBadValue);
    return false;
  }
  p->sender = static_cast<ProcessId>(sender);
  p->pos.phase = static_cast<std::uint32_t>(phase);
  if (!bounded_byte(r, 2, &p->pos.exchange)) return false;
  if (!bounded_byte(r, 2, &p->pos.sub)) return false;
  if (!wire::decode_bitset(r, &p->state.origins)) return false;
  const std::size_t n = p->state.origins.size();
  p->state.items.assign(n, kValUnknown);
  for (std::size_t i = 0; i < n; ++i)
    if (!byte_val(r, &p->state.items[i])) return false;
  if (!byte_val(r, &p->sender_x)) return false;
  if (!byte_val(r, &p->sender_y)) return false;
  std::uint8_t decided = 0;
  if (!bounded_byte(r, 1, &decided)) return false;
  p->decided = decided != 0;
  if (!byte_val(r, &p->decision)) return false;
  std::uint8_t flag = 0;
  if (!bounded_byte(r, 1, &flag)) return false;
  p->flag_up = flag != 0;
  *out = std::move(p);
  return true;
}

}  // namespace

void register_consensus_wire() {
  wire::register_extension_payload(kConsensusPayloadTag, &encode_consensus,
                                   &decode_consensus);
}

}  // namespace svc
}  // namespace asyncgossip
