# Empty dependencies file for ag_tests.
# This may be replaced when dependencies are built.
