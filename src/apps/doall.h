// Do-All on top of epidemic gossip — the second application the paper
// points majority gossip at (Chlebus-Gasieniec-Kowalski-Shvartsman,
// "Bounding work and communication in robust cooperative computation",
// the paper's reference [7]).
//
// Problem: n crash-prone processes must cooperatively perform t idempotent
// tasks; the complexity measure is *work* — the total number of task
// executions, including redundant ones. The naive fault-oblivious strategy
// (everyone does everything) costs n*t work; gossip lets processes share
// "task j is done" knowledge so survivors stop re-executing completed
// tasks.
//
// Protocol, per local step:
//   1. merge received <done-set, rumor-set> payloads;
//   2. execute one task chosen uniformly among those not known done
//      (random order makes collisions between processes unlikely);
//   3. epidemic push of the accumulated knowledge to `fanout` random
//      targets, with an EARS-style quiescence rule: once every task is
//      known done, keep gossiping for `shutdown_steps` further steps so
//      stragglers learn it too, then sleep.
//
// Expected work with gossip: t + o(t) + O(n log t)-ish redundant
// executions under benign schedules, versus Theta(n t) without sharing —
// the contrast bench_ablation / tests measure.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bitset.h"
#include "common/rng.h"
#include "sim/engine.h"
#include "sim/oblivious.h"
#include "sim/process.h"

namespace asyncgossip {

struct DoAllPayload final : Payload {
  DynamicBitset done;  // t bits
  std::size_t byte_size() const override { return done.byte_size(); }
};

struct DoAllConfig {
  std::size_t n = 0;
  std::size_t tasks = 0;
  /// Gossip fanout per step (1 = EARS-like).
  std::size_t fanout = 1;
  /// Extra gossip steps after all tasks are known done.
  std::uint64_t shutdown_steps = 8;
  /// If false, knowledge sharing is disabled (the n*t strawman).
  bool share_knowledge = true;
  std::uint64_t seed = 1;
};

class DoAllProcess final : public Process {
 public:
  DoAllProcess(ProcessId id, DoAllConfig config);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;
  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }

  const DynamicBitset& known_done() const { return known_done_; }
  std::uint64_t executions() const { return executions_; }
  bool all_done() const { return known_done_.all(); }
  bool quiescent() const;

 private:
  ProcessId id_;
  DoAllConfig config_;
  Xoshiro256SS rng_;
  DynamicBitset known_done_;  // tasks known to be executed by someone
  std::uint64_t executions_ = 0;
  std::uint64_t sleep_cnt_ = 0;
  std::uint64_t steps_taken_ = 0;
  std::shared_ptr<const DoAllPayload> cached_;
};

struct DoAllOutcome {
  bool completed = false;  // every survivor knows every task done
  std::uint64_t total_work = 0;
  std::uint64_t messages = 0;
  Time completion_time = 0;
  std::size_t alive = 0;
  /// Union of executed tasks across all processes (must equal t).
  std::size_t tasks_executed = 0;
};

struct DoAllSpec {
  DoAllConfig config;
  std::size_t f = 0;
  Time d = 1;
  Time delta = 1;
  SchedulePattern schedule = SchedulePattern::kLockStep;
  Time crash_horizon = 32;
  std::uint64_t seed = 1;
  Time max_steps = 0;  // 0 = automatic
};

DoAllOutcome run_doall(const DoAllSpec& spec);

}  // namespace asyncgossip
