#include "common/bitset.h"

#include "common/assert.h"

namespace asyncgossip {

DynamicBitset::DynamicBitset(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

void DynamicBitset::check_index(std::size_t i) const {
  AG_ASSERT_MSG(i < size_, "bit index out of range");
}

void DynamicBitset::set(std::size_t i) {
  check_index(i);
  words_[i / 64] |= std::uint64_t{1} << (i % 64);
}

void DynamicBitset::reset(std::size_t i) {
  check_index(i);
  words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

bool DynamicBitset::test(std::size_t i) const {
  check_index(i);
  return (words_[i / 64] >> (i % 64)) & 1;
}

bool DynamicBitset::set_and_check(std::size_t i) {
  check_index(i);
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  const bool was_clear = (words_[i / 64] & mask) == 0;
  words_[i / 64] |= mask;
  return was_clear;
}

void DynamicBitset::set_all() {
  if (size_ == 0) return;
  for (auto& w : words_) w = ~std::uint64_t{0};
  const std::size_t tail = size_ % 64;
  if (tail != 0) words_.back() = (std::uint64_t{1} << tail) - 1;
}

void DynamicBitset::clear_all() {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
  return c;
}

bool DynamicBitset::any() const {
  for (std::uint64_t w : words_)
    if (w != 0) return true;
  return false;
}

bool DynamicBitset::merge(const DynamicBitset& other) {
  AG_ASSERT_MSG(size_ == other.size_, "bitset size mismatch in merge");
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t merged = words_[i] | other.words_[i];
    changed |= (merged != words_[i]);
    words_[i] = merged;
  }
  return changed;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  merge(other);
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  AG_ASSERT_MSG(size_ == other.size_, "bitset size mismatch in and");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

bool DynamicBitset::subset_of(const DynamicBitset& other) const {
  AG_ASSERT_MSG(size_ == other.size_, "bitset size mismatch in subset_of");
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

std::size_t DynamicBitset::first_clear() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t inv = ~words_[w];
    if (inv != 0) {
      const std::size_t i = w * 64 + static_cast<std::size_t>(__builtin_ctzll(inv));
      return i < size_ ? i : size_;
    }
  }
  return size_;
}

std::vector<std::size_t> DynamicBitset::set_bits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::uint64_t DynamicBitset::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= size_;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace asyncgossip
