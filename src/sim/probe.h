// Algorithm-side instrumentation hook.
//
// Observers (sim/observer.h) see what the *engine* does — steps, sends,
// deliveries, crashes. A ProbeSink additionally hears what the *algorithm*
// says about itself: phase transitions ("entered the shut-down phase") and
// per-step state sizes (|V(p)|, progress of the informed list). Processes
// report through StepContext::probe_phase / probe_state, which are no-ops
// unless a sink is attached, so probing can be left in algorithm code
// permanently without perturbing unobserved runs. Like observation, probing
// is strictly read-only with respect to the execution: a sink receives data
// and can never influence scheduling, delivery, or algorithm state.
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace asyncgossip {

class ProbeSink {
 public:
  virtual ~ProbeSink() = default;

  /// Process p announced a phase transition. `phase` is a static label
  /// (e.g. "epidemic", "shutdown", "second-level"); sinks that retain it
  /// past the call must copy it.
  virtual void on_phase(Time /*now*/, ProcessId /*p*/, const char* /*phase*/) {}

  /// Process p reported its state sizes for this local step:
  /// `rumors_known` is |V(p)| and `rumors_fully_informed` is the number of
  /// rumors r in V(p) whose informed-list entry I(p)[r] covers all of [n]
  /// (algorithms without an informed list report 0).
  virtual void on_state(Time /*now*/, ProcessId /*p*/,
                        std::uint64_t /*rumors_known*/,
                        std::uint64_t /*rumors_fully_informed*/) {}
};

}  // namespace asyncgossip
