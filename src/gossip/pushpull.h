// Push-pull rumor spreading with a counter-based stopping rule — the
// synchronous single-rumor reference point of Karp, Schindelhauer, Shenker
// and Voecking (FOCS 2000), the paper's reference [19]: a single rumor
// reaches all n processes in O(log n) rounds using O(n log log n)
// transmissions, w.h.p.
//
// Each round every process contacts one uniform partner. The contact is a
// *push* if the caller is informed (it transmits the rumor) and a *pull
// request* otherwise (an informed callee answers with the rumor). An
// informed process increments a counter each round in which its contact
// turned out to be already informed, and stops initiating contacts once the
// counter passes ctr_cap = ceil(c * log2 log2 n) — the (simplified)
// counter variant of [19]'s median-counter rule. A hard round cap of
// O(log n) rounds guarantees quiescence on every execution.
//
// This is a *single-rumor* protocol: it exists as the synchronous
// reference the paper contrasts against (its results all concern n-rumor
// gossip), and as a calibration point for the bit-complexity extension
// (push-pull messages are O(1) bits).
//
// Accounting note: [19] counts rumor *transmissions* (informed contacts and
// pull answers); empty pull requests are free in their model. The engine
// counts every point-to-point message, so total messages are O(n log n)
// (each active process contacts once per round) while transmissions() —
// the [19] measure — is O(n log log n).
#pragma once

#include <memory>

#include "common/bitset.h"
#include "common/rng.h"
#include "gossip/rumor.h"

namespace asyncgossip {

struct PushPullPayload final : Payload {
  bool informed = false;  // push (true) or pull request (false)
  std::size_t byte_size() const override { return 1; }
};

struct PushPullConfig {
  std::size_t n = 0;
  ProcessId initiator = 0;
  /// Counter cap multiplier; ctr_cap = ceil(c * log2 log2 n) + 1.
  double counter_constant = 3.0;
  /// Hard round cap multiplier; round_cap = ceil(c * log2 n) + 1.
  double round_constant = 8.0;
  std::uint64_t seed = 1;
};

class PushPullProcess final : public GossipProcess {
 public:
  PushPullProcess(ProcessId id, PushPullConfig config);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;
  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }

  /// rumors() = {self} plus the initiator's bit once informed, so the
  /// generic completion machinery applies.
  const DynamicBitset& rumors() const override { return rumors_; }
  bool quiescent() const override;
  std::uint64_t local_steps() const override { return steps_taken_; }

  bool informed() const { return informed_; }
  /// Rumor transmissions by this process (the [19] complexity measure):
  /// informed contacts plus pull answers.
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t counter() const { return counter_; }
  std::uint64_t counter_cap() const { return counter_cap_; }
  std::uint64_t round_cap() const { return round_cap_; }

 private:
  ProcessId id_;
  PushPullConfig config_;
  Xoshiro256SS rng_;
  DynamicBitset rumors_;
  bool informed_;
  std::uint64_t counter_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t counter_cap_;
  std::uint64_t round_cap_;
  std::uint64_t steps_taken_ = 0;
};

}  // namespace asyncgossip
