// Fault injection at the socket boundary (UdpWireFaults, rt/udp_transport.h).
//
// The shim drops, duplicates and reorders outbound datagrams *before* the
// socket write, seeded per endpoint — real loss handling exercised
// deterministically, no privileged packet filters. The judgement is the
// same realized-bounds contract as every other rt test: a faulted run must
// still complete, conserve envelopes, satisfy its algorithm postcondition
// against the bounds it realized (retransmit delays inflate d, never break
// it), and audit clean under the InvariantAuditor.
//
// The direct-transport tests pin the edges: total loss exhausts the
// bounded retransmit budget and fails *honestly* (the envelope stays
// unsettled; stats().expired counts it — the transport never fakes a
// delivery), and the shim's fault pattern is a pure function of its seed.
#include "rt/udp_transport.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "rt/driver.h"

namespace asyncgossip {
namespace {

/// Same nightly seed rotation as test_rt.cpp (AG_RT_SEED).
std::uint64_t base_seed() {
  const char* env = std::getenv("AG_RT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  return seed != 0 ? seed : 1;
}

RtConfig faulted_config(GossipAlgorithm algorithm, RtInject inject) {
  RtConfig config;
  config.spec.algorithm = algorithm;
  config.spec.n = 12;
  config.spec.f = 3;  // f < n/2 keeps the tears majority contract satisfiable
  config.spec.d = 3;
  config.spec.delta = 2;
  config.spec.seed = base_seed();
  config.spec.crash_horizon = 32;
  config.inject = inject;
  config.tick_us = 100;
  config.transport = RtTransportKind::kUdp;
  config.wire_faults.drop_probability = 0.15;
  config.wire_faults.duplicate_probability = 0.10;
  config.wire_faults.reorder_probability = 0.10;
  config.wire_faults.seed = base_seed();
  return config;
}

void expect_contract(const RtConfig& config, const RtRunResult& res) {
  const char* name = to_string(config.spec.algorithm);
  EXPECT_TRUE(res.outcome.completed) << name;
  EXPECT_EQ(res.events_dropped, 0u) << name;
  GossipSpec realized = config.spec;
  realized.d = res.outcome.realized_d;
  realized.delta = res.outcome.realized_delta;
  if (gossip_requires_gathering(realized)) {
    EXPECT_TRUE(res.outcome.gathering_ok) << name;
  }
  if (gossip_requires_majority(realized)) {
    EXPECT_TRUE(res.outcome.majority_ok) << name;
  }
  const ViolationReport audit = audit_rt_run(config, res);
  EXPECT_TRUE(audit.ok()) << name << "\n" << audit.summary();
}

TEST(WireFaults, RunsReachContractUnderLossDuplicationAndReordering) {
  // Three payload shapes spanning the wire codec: flat bitset, nested
  // informed lists, bitset + flag.
  for (GossipAlgorithm algorithm : {GossipAlgorithm::kTrivial,
                                    GossipAlgorithm::kEars,
                                    GossipAlgorithm::kTears}) {
    const RtConfig config = faulted_config(algorithm, RtInject::kNone);
    const RtRunResult res = run_realtime(config);
    expect_contract(config, res);
    EXPECT_EQ(res.outcome.crashes, 0u) << to_string(algorithm);
  }
}

TEST(WireFaults, RunsReachContractWithCrashesOnTop) {
  // Crashed receivers discard in-flight retransmitted traffic; the
  // conservation accounting (reap_discarded) must still balance.
  const RtConfig config = faulted_config(GossipAlgorithm::kTears,
                                         RtInject::kCrash);
  const RtRunResult res = run_realtime(config);
  expect_contract(config, res);
  EXPECT_GT(res.outcome.crashes, 0u);
}

TEST(WireFaults, TotalLossExhaustsRetransmitsHonestly) {
  UdpTransportConfig tc;
  tc.n = 2;
  tc.retransmit_after = 1;
  tc.max_retransmits = 3;
  tc.faults.drop_probability = 1.0;
  tc.faults.seed = 9;
  UdpTransport transport(std::move(tc));

  Envelope env;
  env.id = 1;
  env.from = 0;
  env.to = 1;
  env.send_time = 0;
  env.deliver_after = 1;
  transport.submit(std::move(env));
  transport.flush(0, 0);
  for (Time now = 1; now <= 64; ++now) transport.service(now);

  // Nothing crossed the wire; the frame expired instead of delivering.
  const UdpTransport::Stats stats = transport.stats();
  EXPECT_GT(stats.shim_dropped, 0u);
  EXPECT_EQ(stats.retransmits, 3u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(transport.unsettled(), 1u);  // an honest incomplete run
  std::vector<Envelope> out;
  // drain() would pump a delivery if one sneaked through; it must not.
  EXPECT_EQ(transport.drain(1, 100, &out), 0u);
}

TEST(WireFaults, ShimFaultPatternIsSeeded) {
  const auto drops_with_seed = [](std::uint64_t seed) {
    UdpTransportConfig tc;
    tc.n = 2;
    tc.faults.drop_probability = 0.5;
    tc.faults.seed = seed;
    UdpTransport transport(std::move(tc));
    for (int i = 0; i < 40; ++i) {
      Envelope env;
      env.id = static_cast<MessageId>(i);
      env.from = 0;
      env.to = 1;
      env.send_time = static_cast<Time>(i);
      env.deliver_after = static_cast<Time>(i) + 1;
      transport.submit(std::move(env));
      transport.flush(0, static_cast<Time>(i));
    }
    return transport.stats().shim_dropped;
  };
  const std::uint64_t first = drops_with_seed(42);
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 40u);
  EXPECT_EQ(drops_with_seed(42), first);  // same seed, same pattern
}

}  // namespace
}  // namespace asyncgossip
