// aglint-fixture-as: src/rt/fixture_mutexlock.cpp
// aglint-expect: none
//
// The sanctioned locking pattern: annotated Mutex, RAII MutexLock, every
// guarded access inside the scope. Clean under aglint AND under clang's
// -Wthread-safety.
#include "common/thread_annotations.h"

namespace asyncgossip {

struct Guarded {
  Mutex mu;
  int value AG_GUARDED_BY(mu) = 0;
};

void safe_increment(Guarded* g) {
  const MutexLock lock(&g->mu);
  ++g->value;
}

}  // namespace asyncgossip
