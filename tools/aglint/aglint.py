#!/usr/bin/env python3
"""aglint — project-specific static analysis for the asyncgossip tree.

Machine-checks the implicit rules this codebase depends on (see
docs/ANALYSIS.md for the full catalogue and rationale):

  determinism   AG-DET-001  nondeterministic randomness sources
                AG-DET-002  wall-clock reads outside src/rt/clock.h
                AG-DET-003  unordered (hash-ordered) containers in
                            trace/metrics/telemetry-feeding code
                AG-DET-004  pointer-keyed ordered containers
  layering      AG-LAY-001  include edge outside the layer DAG
                            common -> sim -> gossip -> {rt, consensus,
                            lowerbound} -> svc -> apps/tools/bench
                AG-LAY-002  src/gossip includes sim/engine.h (the
                            StepContext seam rule)
  locking       AG-LCK-001  raw .lock()/.unlock() calls (RAII required)
                AG-LCK-002  raw std::mutex family in threaded code — src/rt
                            and the engine's shard pool (annotated
                            asyncgossip::Mutex required)
  suppression   AG-SUP-001  aglint:allow without a justification, with an
                            unknown rule id, or malformed

Findings can be suppressed in source with

    // aglint:allow(AG-DET-003) justification text on the same line

placed either on the offending line or on a comment-only line directly
above it (intervening comment-only/blank lines are allowed). A suppression
with no justification is itself a violation (AG-SUP-001) and does NOT
suppress — suppressions cannot be tampered into silence.

Usage:
  aglint.py --root REPO [--config rules.json] [--baseline baseline.json]
            [--update-baseline] [--json OUT] [--quiet]

Exit codes (bench_gate.py convention):
  0  clean (no unsuppressed, unbaselined findings)
  1  findings
  2  tool error (bad config, unreadable input, ...)

Output schema: asyncgossip-lint-v1 (stdlib json; no dependencies).
"""

import argparse
import hashlib
import json
import os
import re
import sys

SCHEMA = "asyncgossip-lint-v1"
TOOL_VERSION = "1.0"

# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

RULES = {
    "AG-DET-001": {
        "family": "determinism",
        "summary": "nondeterministic randomness source (use common/rng.h)",
    },
    "AG-DET-002": {
        "family": "determinism",
        "summary": "wall-clock read outside src/rt/clock.h",
    },
    "AG-DET-003": {
        "family": "determinism",
        "summary": "hash-ordered container in trace/metrics-feeding code",
    },
    "AG-DET-004": {
        "family": "determinism",
        "summary": "pointer-keyed ordered container (address-order output)",
    },
    "AG-LAY-001": {
        "family": "layering",
        "summary": "include edge violates the layer DAG",
    },
    "AG-LAY-002": {
        "family": "layering",
        "summary": "src/gossip includes sim/engine.h (StepContext seam)",
    },
    "AG-LCK-001": {
        "family": "locking",
        "summary": "raw .lock()/.unlock() call (use MutexLock RAII)",
    },
    "AG-LCK-002": {
        "family": "locking",
        "summary": "raw std::mutex family in threaded code "
                   "(use asyncgossip::Mutex)",
    },
    "AG-SUP-001": {
        "family": "suppression",
        "summary": "aglint:allow without justification or with unknown rule",
    },
}

DET1_PATTERNS = [
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bdrand48\b"), "drand48()"),
    (re.compile(r"\brandom\s*\(\s*\)"), "random()"),
]

DET2_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
]

DET3_PATTERN = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

# `std::map<Key*, V>` / `std::set<T*>`: the container's iteration order is
# the pointers' numeric order, i.e. allocator layout. Line-local by design.
DET4_PATTERN = re.compile(
    r"\b(?:std\s*::\s*)?(?:map|set|multimap|multiset)\s*<[^<>;=()]*\*\s*[,>]")

LCK1_PATTERN = re.compile(r"(?:\.|->)\s*(?:lock|unlock)\b\s*\(\s*\)")

LCK2_PATTERN = re.compile(
    r"\bstd\s*::\s*(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")

INCLUDE_PATTERN = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

ALLOW_PATTERN = re.compile(r"aglint:allow\s*(\(([^)]*)\))?\s*(.*)")


class ToolError(Exception):
    """Configuration / IO problems: exit 2, never exit 1."""


# ---------------------------------------------------------------------------
# C++ lexing: blank out comments and string literals, keep comments aside
# ---------------------------------------------------------------------------

def split_code_and_comments(text):
    """Returns (code_lines, comments).

    code_lines: the file's lines with every comment and string/char-literal
    *content* replaced by spaces — positions and line structure preserved,
    so regex rules can't fire inside comments or literals.
    comments: list of (line_number, comment_text) with 1-based line
    numbers; block comments contribute one entry per line they span.
    """
    code = []
    comments = []  # (line, text)
    i = 0
    n = len(text)
    line = 1
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    comment_buf = []
    comment_line = 1

    def flush_comment():
        if comment_buf:
            comments.append((comment_line, "".join(comment_buf)))
            del comment_buf[:]

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                comment_line = line
                code.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                comment_line = line
                code.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string? Look back for R / u8R / LR / uR / UR prefix
                # (preceded by a non-identifier char, so FOOBAR" is not one).
                m = re.search(r'(?:^|[^A-Za-z0-9_])(?:u8|[uUL])?R$',
                              "".join(code[-4:]))
                if m:
                    j = text.find("(", i + 1)
                    if j != -1 and j - i - 1 <= 16:
                        raw_delim = ")" + text[i + 1:j] + '"'
                        state = RAW
                        code.append('"')
                        i += 1
                        continue
                state = STRING
                code.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                code.append("'")
                i += 1
                continue
            code.append(c)
            if c == "\n":
                line += 1
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                flush_comment()
                state = NORMAL
                code.append("\n")
                line += 1
            else:
                comment_buf.append(c)
                code.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                flush_comment()
                state = NORMAL
                code.append("  ")
                i += 2
                continue
            if c == "\n":
                flush_comment()
                comment_line = line + 1
                code.append("\n")
                line += 1
            else:
                comment_buf.append(c)
                code.append(" ")
            i += 1
        elif state == STRING:
            if c == "\\":
                code.append("  ")
                i += 2
                continue
            if c == '"':
                state = NORMAL
                code.append('"')
            elif c == "\n":  # unterminated; recover
                state = NORMAL
                code.append("\n")
                line += 1
            else:
                code.append(" ")
            i += 1
        elif state == CHAR:
            if c == "\\":
                code.append("  ")
                i += 2
                continue
            if c == "'":
                state = NORMAL
                code.append("'")
            elif c == "\n":
                state = NORMAL
                code.append("\n")
                line += 1
            else:
                code.append(" ")
            i += 1
        else:  # RAW
            if text.startswith(raw_delim, i):
                state = NORMAL
                code.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                continue
            if c == "\n":
                code.append("\n")
                line += 1
            else:
                code.append(" ")
            i += 1
    flush_comment()
    return "".join(code).split("\n"), comments


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

class Suppression:
    def __init__(self, comment_line, rules, justification, malformed_reason):
        self.comment_line = comment_line
        self.rules = rules
        self.justification = justification
        self.malformed = malformed_reason  # None when well-formed
        self.target_line = None  # resolved against code lines
        self.used = False


def parse_suppressions(comments, code_lines, known_rules):
    """Extract aglint:allow markers and resolve the line each one covers.

    A marker on a line that also has code covers that line; a marker on a
    comment-only line covers the next line that has code (skipping blank
    and comment-only lines).
    """
    sups = []
    for lineno, ctext in comments:
        m = ALLOW_PATTERN.search(ctext)
        if not m:
            continue
        malformed = None
        rules = []
        if m.group(1) is None:
            malformed = "missing (rule-id) list"
        else:
            rules = [r.strip() for r in m.group(2).split(",") if r.strip()]
            if not rules:
                malformed = "empty rule-id list"
            else:
                unknown = [r for r in rules if r not in known_rules]
                if unknown:
                    malformed = "unknown rule id(s): " + ", ".join(unknown)
        justification = m.group(3).strip()
        if malformed is None and not justification:
            malformed = "missing justification"
        sup = Suppression(lineno, rules, justification, malformed)
        # Resolve target line.
        idx = lineno - 1
        if idx < len(code_lines) and code_lines[idx].strip():
            sup.target_line = lineno
        else:
            j = idx + 1
            while j < len(code_lines):
                if code_lines[j].strip():
                    sup.target_line = j + 1
                    break
                j += 1
        sups.append(sup)
    return sups


# ---------------------------------------------------------------------------
# Per-file analysis
# ---------------------------------------------------------------------------

def path_in(relpath, prefixes):
    return any(relpath == p or relpath.startswith(p.rstrip("/") + "/")
               for p in prefixes)


def rule_applies(config, rule_id, relpath):
    rcfg = config["rules"].get(rule_id, {})
    if not rcfg.get("enabled", True):
        return False
    paths = rcfg.get("paths")
    if paths is not None and not path_in(relpath, paths):
        return False
    if path_in(relpath, rcfg.get("exempt_files", [])):
        return False
    return True


def layer_of(relpath, layers):
    best = None
    for prefix in layers:
        if path_in(relpath, [prefix]):
            if best is None or len(prefix) > len(best):
                best = prefix
    return best


def analyze_file(relpath, text, config):
    """Returns the list of finding dicts for one file (status unset)."""
    code_lines, comments = split_code_and_comments(text)
    findings = []

    def add(rule, line, message):
        findings.append({
            "rule": rule,
            "file": relpath,
            "line": line,
            "message": message,
        })

    # --- determinism + locking: pattern rules on comment/string-free code
    for lineno, cline in enumerate(code_lines, start=1):
        stripped = cline.lstrip()
        is_preproc = stripped.startswith("#")
        if rule_applies(config, "AG-DET-001", relpath) and not is_preproc:
            for pat, what in DET1_PATTERNS:
                if pat.search(cline):
                    add("AG-DET-001", lineno,
                        f"{what}: nondeterministic randomness; all randomness "
                        "must flow from the run seed via common/rng.h")
        if rule_applies(config, "AG-DET-002", relpath) and not is_preproc:
            for pat, what in DET2_PATTERNS:
                if pat.search(cline):
                    add("AG-DET-002", lineno,
                        f"{what}: wall-clock read outside src/rt/clock.h; "
                        "route through TickClock/Stopwatch so nondeterministic "
                        "inputs stay enumerable")
        if rule_applies(config, "AG-DET-003", relpath) and not is_preproc:
            m = DET3_PATTERN.search(cline)
            if m:
                add("AG-DET-003", lineno,
                    f"{m.group(0)}: hash-ordered container in code that can "
                    "feed trace hashes, Metrics, ViolationReport, or "
                    "telemetry; iteration order varies with the standard "
                    "library's hash seed — use an ordered container, a flat "
                    "array, or suppress with a never-iterated justification")
        if rule_applies(config, "AG-DET-004", relpath) and not is_preproc:
            m = DET4_PATTERN.search(cline)
            if m:
                add("AG-DET-004", lineno,
                    f"pointer-keyed ordered container ({m.group(0).strip()}): "
                    "iteration order is allocation-address order, which is "
                    "nondeterministic across runs")
        if rule_applies(config, "AG-LCK-001", relpath) and not is_preproc:
            m = LCK1_PATTERN.search(cline)
            if m:
                add("AG-LCK-001", lineno,
                    f"raw {m.group(0).strip()} call: lock lifetimes must be "
                    "scoped (MutexLock / std::lock_guard), never paired by "
                    "hand")
        if rule_applies(config, "AG-LCK-002", relpath):
            m = LCK2_PATTERN.search(cline)
            if m and not is_preproc:
                add("AG-LCK-002", lineno,
                    f"{m.group(0)} in threaded code: src/rt, src/svc, and "
                    "the engine's shard pool must use the annotated "
                    "asyncgossip::Mutex / MutexLock / CondVar "
                    "(common/thread_annotations.h) so clang -Wthread-safety "
                    "can check every guarded access")

    # --- layering: on raw include lines ------------------------------------
    layers = config.get("layers", {})
    own_layer = layer_of(relpath, layers)
    for lineno, raw_line in enumerate(text.split("\n"), start=1):
        m = INCLUDE_PATTERN.match(raw_line)
        if not m:
            continue
        header = m.group(1)
        if rule_applies(config, "AG-LAY-002", relpath):
            if path_in(relpath, ["src/gossip"]) and header == "sim/engine.h":
                add("AG-LAY-002", lineno,
                    'src/gossip file includes "sim/engine.h": algorithm code '
                    "must interact with the world through StepContext only "
                    "(the seam the rt runtime and fuzzer rely on)")
        if rule_applies(config, "AG-LAY-001", relpath) and own_layer:
            if "/" in header:
                top = header.split("/", 1)[0]
                allowed = layers[own_layer]
                if top not in allowed:
                    add("AG-LAY-001", lineno,
                        f'{own_layer} may not include "{header}": the layer '
                        f"DAG permits {own_layer} -> {{{', '.join(allowed)}}} "
                        "only (common -> sim -> gossip -> {rt, consensus, "
                        "lowerbound} -> svc -> apps/tools/bench)")

    # --- suppressions -------------------------------------------------------
    sups = parse_suppressions(comments, code_lines, set(RULES))
    for sup in sups:
        if sup.malformed is not None:
            if rule_applies(config, "AG-SUP-001", relpath):
                add("AG-SUP-001", sup.comment_line,
                    f"aglint:allow is {sup.malformed}; a suppression must "
                    "name known rule ids and carry a justification on the "
                    "same line")
            continue
        for f in findings:
            if (f["rule"] in sup.rules and f["line"] == sup.target_line
                    and f.get("status") != "suppressed"):
                f["status"] = "suppressed"
                f["justification"] = sup.justification
                sup.used = True
    return findings


# ---------------------------------------------------------------------------
# Tree walking, baseline, reporting
# ---------------------------------------------------------------------------

def collect_files(root, config):
    exts = tuple(config.get("extensions", [".h", ".cpp"]))
    excludes = config.get("exclude_paths", [])
    files = []
    for scan_dir in config.get("scan_dirs", ["src"]):
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if path_in(rel_dir, excludes):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if not name.endswith(exts):
                    continue
                rel = f"{rel_dir}/{name}"
                if path_in(rel, excludes):
                    continue
                files.append(rel)
    return files


def fingerprint(root, finding):
    """Stable id for baselining: rule + file + offending line's text (not
    its number, so unrelated edits above don't churn the baseline)."""
    try:
        with open(os.path.join(root, finding["file"]), encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        line_text = lines[finding["line"] - 1].strip()
    except (OSError, IndexError):
        line_text = ""
    blob = f'{finding["rule"]}|{finding["file"]}|{line_text}'
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as e:
        raise ToolError(f"cannot read {what} {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise ToolError(f"{what} {path} is not valid JSON: {e}") from e


def validate_config(config):
    if config.get("schema") != "asyncgossip-lint-rules-v1":
        raise ToolError("rule config: expected schema "
                        f"asyncgossip-lint-rules-v1, got {config.get('schema')!r}")
    for rule_id in config.get("rules", {}):
        if rule_id not in RULES:
            raise ToolError(f"rule config mentions unknown rule {rule_id}")
    for layer, allowed in config.get("layers", {}).items():
        if not isinstance(allowed, list):
            raise ToolError(f"layers[{layer}] must be a list of include dirs")


def run_analysis(root, config):
    """Analyze the tree; returns (findings, files_scanned). Every finding
    has status 'active' or 'suppressed'."""
    files = collect_files(root, config)
    findings = []
    for rel in files:
        try:
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            raise ToolError(f"cannot read {rel}: {e}") from e
        for f in analyze_file(rel, text, config):
            f.setdefault("status", "active")
            findings.append(f)
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))
    return findings, len(files)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="aglint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", required=True,
                        help="repository root to analyze")
    parser.add_argument("--config",
                        help="rule config JSON (default: rules.json next to "
                             "this script)")
    parser.add_argument("--baseline",
                        help="baseline JSON of tolerated findings")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with the current active "
                             "findings (ratchet mode)")
    parser.add_argument("--json", dest="json_out",
                        help="write asyncgossip-lint-v1 findings to this file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding stdout lines")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            meta = RULES[rule_id]
            print(f"{rule_id}  [{meta['family']}]  {meta['summary']}")
        return 0

    try:
        root = os.path.abspath(args.root)
        if not os.path.isdir(root):
            raise ToolError(f"--root {args.root} is not a directory")
        config_path = args.config or os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "rules.json")
        config = load_json(config_path, "rule config")
        validate_config(config)

        findings, files_scanned = run_analysis(root, config)

        baseline_prints = set()
        if args.baseline and not args.update_baseline:
            bdoc = load_json(args.baseline, "baseline")
            if bdoc.get("schema") != "asyncgossip-lint-baseline-v1":
                raise ToolError("baseline: expected schema "
                                "asyncgossip-lint-baseline-v1")
            baseline_prints = {e["fingerprint"] for e in bdoc.get("findings", [])}
        for f in findings:
            f["fingerprint"] = fingerprint(root, f)
            if f["status"] == "active" and f["fingerprint"] in baseline_prints:
                f["status"] = "baselined"

        if args.update_baseline:
            if not args.baseline:
                raise ToolError("--update-baseline requires --baseline")
            entries = [{
                "fingerprint": f["fingerprint"],
                "rule": f["rule"],
                "file": f["file"],
            } for f in findings if f["status"] == "active"]
            with open(args.baseline, "w", encoding="utf-8") as fh:
                json.dump({"schema": "asyncgossip-lint-baseline-v1",
                           "findings": entries}, fh, indent=2)
                fh.write("\n")
            for f in findings:
                if f["status"] == "active":
                    f["status"] = "baselined"

        counts = {"active": 0, "suppressed": 0, "baselined": 0}
        for f in findings:
            counts[f["status"]] += 1

        if args.json_out:
            doc = {
                "schema": SCHEMA,
                "tool": "aglint",
                "version": TOOL_VERSION,
                "root": root,
                "files_scanned": files_scanned,
                "rules": [{"id": rid, **RULES[rid]} for rid in sorted(RULES)],
                "findings": findings,
                "counts": counts,
            }
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")

        if not args.quiet:
            for f in findings:
                tag = "" if f["status"] == "active" else f' [{f["status"]}]'
                print(f'{f["file"]}:{f["line"]}: {f["rule"]}{tag}: '
                      f'{f["message"]}')
            print(f"aglint: {files_scanned} files, {counts['active']} active, "
                  f"{counts['suppressed']} suppressed, "
                  f"{counts['baselined']} baselined")
        return 1 if counts["active"] > 0 else 0
    except ToolError as e:
        print(f"aglint: error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
