// asyncgossip-wire-v1 extension codec for ConsensusPayload, letting the
// cr-* algorithms run over `--transport udp` real processes. Lives in svc
// because layering allows only this layer to see both rt/wire.h and
// consensus/core_types.h (rt must not know consensus, consensus must not
// know the wire).
//
// Body layout under tag kConsensusPayloadTag (strict + canonical, like the
// built-in shapes): sender varint; position (phase varint, exchange byte
// <= 2, sub byte <= 2); origins bitset; one byte per item over the bitset's
// size (value + 2, so kValUnknown..1 -> 0..3); sender_x/sender_y bytes
// (value + 2); decided byte <= 1; decision byte (value + 2); flag_up byte
// <= 1. Canonical: items length is pinned to the origins bit count, every
// range is checked.
#pragma once

namespace asyncgossip {
namespace svc {

inline constexpr unsigned long long kConsensusPayloadTag = 16;

/// Registers the codec with rt/wire.h's extension registry. Idempotent;
/// call before any cr-* UDP run (gossiplab's main and the Svc tests do).
void register_consensus_wire();

}  // namespace svc
}  // namespace asyncgossip
