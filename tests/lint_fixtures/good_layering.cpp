// aglint-fixture-as: src/rt/fixture_layering.cpp
// aglint-expect: none
//
// src/rt sits above gossip in the DAG, so including downward (gossip,
// sim, common) is exactly what the layer map permits.
#include "common/rng.h"
#include "gossip/harness.h"
#include "rt/clock.h"
#include "sim/types.h"

namespace asyncgossip {

int layering_ok() { return 1; }

}  // namespace asyncgossip
