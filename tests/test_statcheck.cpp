#include "sim/statcheck.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"
#include "gossip/fuzz_harness.h"
#include "sim/telemetry_export.h"

namespace asyncgossip {
namespace {

TEST(SampleQuantile, NearestRank) {
  const std::vector<double> s = {10, 1, 9, 2, 8, 3, 7, 4, 6, 5};  // 1..10
  EXPECT_EQ(sample_quantile(s, 0.05), 1.0);
  EXPECT_EQ(sample_quantile(s, 0.1), 1.0);
  EXPECT_EQ(sample_quantile(s, 0.5), 5.0);
  EXPECT_EQ(sample_quantile(s, 0.9), 9.0);
  EXPECT_EQ(sample_quantile(s, 0.91), 10.0);
  EXPECT_EQ(sample_quantile(s, 1.0), 10.0);
  EXPECT_EQ(sample_quantile({7.0}, 0.5), 7.0);
}

TEST(SampleQuantile, RejectsBadInput) {
  EXPECT_THROW(sample_quantile({}, 0.5), ApiError);
  EXPECT_THROW(sample_quantile({1.0}, 0.0), ApiError);
  EXPECT_THROW(sample_quantile({1.0}, 1.5), ApiError);
  EXPECT_THROW(sample_quantile({1.0}, -0.5), ApiError);
}

StatCell cell(const std::string& group, const std::string& label,
              double envelope, bool calibration,
              std::vector<double> samples) {
  StatCell c;
  c.group = group;
  c.label = label;
  c.metric = "time";
  c.envelope = envelope;
  c.calibration = calibration;
  c.samples = std::move(samples);
  return c;
}

TEST(CheckBounds, PassesWhenObservationsTrackTheShape) {
  // Observations ~ 2 * envelope everywhere: the fitted constant absorbs the
  // factor and every cell passes.
  const std::vector<StatCell> cells = {
      cell("g", "n:8", 10.0, true, {19, 20, 21}),
      cell("g", "n:16", 20.0, false, {39, 40, 41}),
      cell("g", "n:32", 40.0, false, {79, 80, 82}),
  };
  StatCheckConfig config;
  config.quantile = 1.0;
  config.slack = 1.5;
  const StatReport report = check_bounds(cells, config);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.total_trials, 9u);
  EXPECT_TRUE(report.summary().empty());
}

TEST(CheckBounds, FailsWhenObservationsOutgrowTheShape) {
  // The claimed envelope is flat but the observations grow linearly: the
  // non-calibration cells must fail even with generous slack.
  const std::vector<StatCell> cells = {
      cell("g", "n:8", 1.0, true, {8, 8, 8}),
      cell("g", "n:64", 1.0, false, {64, 64, 64}),
  };
  StatCheckConfig config;
  config.quantile = 1.0;
  config.slack = 2.0;
  const StatReport report = check_bounds(cells, config);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_TRUE(report.cells[0].pass);  // calibration cells always pass
  EXPECT_FALSE(report.cells[1].pass);
  EXPECT_NE(report.summary().find("n:64"), std::string::npos);
}

TEST(CheckBounds, CalibrationUsesTheWorstCalibrationCell) {
  const std::vector<StatCell> cells = {
      cell("g", "a", 10.0, true, {10}),   // ratio 1
      cell("g", "b", 10.0, true, {30}),   // ratio 3 -> fitted C = 3 * slack
      cell("g", "c", 10.0, false, {55}),  // ratio 5.5 < 3 * 2 -> pass
  };
  StatCheckConfig config;
  config.quantile = 1.0;
  config.slack = 2.0;
  const StatReport report = check_bounds(cells, config);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_DOUBLE_EQ(report.cells[2].constant, 6.0);
}

TEST(CheckBounds, RejectsBadConfigurations) {
  StatCheckConfig config;
  // No calibration cell in the group.
  EXPECT_THROW(
      check_bounds({cell("g", "a", 1.0, false, {1})}, config), ApiError);
  // Empty sample.
  EXPECT_THROW(check_bounds({cell("g", "a", 1.0, true, {})}, config),
               ApiError);
  // Non-positive envelope.
  EXPECT_THROW(check_bounds({cell("g", "a", 0.0, true, {1})}, config),
               ApiError);
  // Non-positive slack.
  StatCheckConfig bad;
  bad.slack = 0.0;
  EXPECT_THROW(check_bounds({cell("g", "a", 1.0, true, {1})}, bad), ApiError);
}

TEST(StatCheckJson, IsStrictlyValidJson) {
  const std::vector<StatCell> cells = {
      cell("g\"quoted", "label\\back", 10.0, true, {20}),
      cell("g\"quoted", "n:16", 20.0, false, {40}),
  };
  const StatReport report = check_bounds(cells, StatCheckConfig{});
  std::ostringstream os;
  write_statcheck_json(os, report,
                       {{"tool", "test"}, {"note", "quote \" and \\"}});
  std::string err;
  EXPECT_TRUE(json_valid(os.str(), &err)) << err << "\n" << os.str();
  EXPECT_NE(os.str().find("asyncgossip-statcheck-v1"), std::string::npos);
}

// --- the gossip Table 1 driver ---------------------------------------------

TEST(GossipStatCheck, Table1EnvelopesHoldAtSmokeBudget) {
  // Acceptance: EARS and TEARS stay within their claimed Table 1 envelopes
  // on a CI-smoke-sized grid, and the report is strict RFC 8259 JSON.
  GossipStatCheckOptions options;
  options.trials = 8;
  options.ns = {8, 12, 16, 24};
  options.dds = {{1, 1}, {3, 2}};
  options.jobs = 2;
  options.seed = 7;
  const StatReport report = run_gossip_statcheck(options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cells.size(), 2u * 2u * 4u * 2u);  // alg x dd x n x metric
  EXPECT_EQ(report.total_trials, report.cells.size() * options.trials);

  std::ostringstream os;
  write_statcheck_json(os, report, statcheck_run_info(options));
  std::string err;
  EXPECT_TRUE(json_valid(os.str(), &err)) << err;
}

TEST(GossipStatCheck, DeterministicAcrossJobCounts) {
  GossipStatCheckOptions options;
  options.trials = 4;
  options.ns = {8, 12};
  options.dds = {{1, 1}};
  options.seed = 11;
  options.jobs = 1;
  const StatReport serial = run_gossip_statcheck(options);
  options.jobs = 4;
  const StatReport parallel = run_gossip_statcheck(options);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].label, parallel.cells[i].label);
    EXPECT_EQ(serial.cells[i].quantile_value, parallel.cells[i].quantile_value)
        << serial.cells[i].label;
    EXPECT_EQ(serial.cells[i].pass, parallel.cells[i].pass);
  }
}

TEST(GossipStatCheck, RejectsDegenerateGrids) {
  GossipStatCheckOptions options;
  options.ns = {};
  EXPECT_THROW(run_gossip_statcheck(options), ApiError);
  options = GossipStatCheckOptions{};
  options.trials = 0;
  EXPECT_THROW(run_gossip_statcheck(options), ApiError);
  options = GossipStatCheckOptions{};
  options.dds = {};
  EXPECT_THROW(run_gossip_statcheck(options), ApiError);
}

}  // namespace
}  // namespace asyncgossip
