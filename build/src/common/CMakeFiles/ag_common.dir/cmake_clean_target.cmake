file(REMOVE_RECURSE
  "libag_common.a"
)
