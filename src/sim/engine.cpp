#include "sim/engine.h"

#include <algorithm>
#include <thread>

namespace asyncgossip {

// ---------------------------------------------------------------------------
// EngineView
// ---------------------------------------------------------------------------

std::size_t EngineView::n() const { return engine_->n(); }
Time EngineView::now() const { return engine_->now(); }
bool EngineView::crashed(ProcessId p) const { return engine_->crashed(p); }
std::size_t EngineView::alive_count() const { return engine_->alive_count(); }
std::size_t EngineView::crash_budget_left() const {
  return engine_->config().max_crashes - engine_->crashes_so_far();
}
const Process& EngineView::process(ProcessId p) const {
  return engine_->process(p);
}
const Metrics& EngineView::metrics() const { return engine_->metrics(); }
std::size_t EngineView::in_flight_count() const {
  return engine_->in_flight_count();
}
std::vector<Envelope> EngineView::pending_for(ProcessId p) const {
  return engine_->pending_for(p);
}
std::size_t EngineView::pending_count(ProcessId p) const {
  return engine_->pending_count(p);
}
void EngineView::for_each_pending(ProcessId p,
                                  FunctionRef<bool(const Envelope&)> fn) const {
  engine_->for_each_pending(p, fn);
}
std::uint64_t EngineView::local_steps_of(ProcessId p) const {
  return engine_->local_steps_of(p);
}
std::unique_ptr<Process> EngineView::fork_process(ProcessId p) const {
  return engine_->fork_process(p);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

/// Materializes the borrowed Envelope view of arena entry `e` (see
/// sim/message.h on view lifetimes).
Envelope view_of(const EnvelopeArena& arena, const PayloadPool& pool,
                 std::size_t e) {
  Envelope env;
  env.id = arena.id_[e];
  env.from = arena.from_[e];
  env.to = arena.to_[e];
  env.send_time = arena.send_time_[e];
  env.deliver_after = arena.deliver_after_[e];
  env.payload = PayloadRef::borrowed(pool.raw(arena.payload_[e]));
  return env;
}

}  // namespace

/// Captures StepContext::probe_* calls made during a slot's process step so
/// merge_slot can replay them into the real sink in schedule order (worker
/// threads must not touch the user's sink).
class Engine::RecordingProbeSink final : public ProbeSink {
 public:
  explicit RecordingProbeSink(std::vector<ProbeRecord>* out) : out_(out) {}

  void on_phase(Time /*now*/, ProcessId /*p*/, const char* phase) override {
    out_->push_back(ProbeRecord{phase, 0, 0});
  }
  void on_state(Time /*now*/, ProcessId /*p*/, std::uint64_t rumors_known,
                std::uint64_t rumors_fully_informed) override {
    out_->push_back(ProbeRecord{nullptr, rumors_known, rumors_fully_informed});
  }

 private:
  std::vector<ProbeRecord>* out_;
};

Engine::Engine(std::vector<std::unique_ptr<Process>> processes,
               std::unique_ptr<Adversary> adversary, EngineConfig config)
    : config_(config),
      processes_(std::move(processes)),
      adversary_(std::move(adversary)),
      metrics_(processes_.size()),
      crashed_(processes_.size(), false),
      alive_count_(processes_.size()),
      wheel_width_(static_cast<std::size_t>(config.d + config.delta + 1)),
      wheel_(processes_.size() * wheel_width_),
      pending_count_(processes_.size(), 0),
      in_flight_total_(0),
      last_step_time_(processes_.size(), 0),
      stepped_once_(processes_.size(), false),
      local_steps_(processes_.size(), 0) {
  if (processes_.empty()) throw ApiError("Engine needs at least one process");
  for (const auto& p : processes_)
    if (p == nullptr) throw ApiError("null process");
  if (adversary_ == nullptr) throw ApiError("null adversary");
  if (config_.d < 1 || config_.delta < 1)
    throw ApiError("model bounds d and delta must be >= 1");
  if (config_.max_crashes >= processes_.size())
    throw ApiError("crash budget f must satisfy f < n");
  jobs_ = config_.jobs != 0
              ? config_.jobs
              : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  want_scratch_.resize(processes_.size(), 0);
  schedule_scratch_.reserve(processes_.size());
  slots_.resize(1);
}

void Engine::run(Time steps) {
  for (Time i = 0; i < steps; ++i) advance_one_step();
}

bool Engine::run_until(FunctionRef<bool(const Engine&)> done, Time max_steps) {
  for (Time i = 0; i < max_steps; ++i) {
    if (done(*this)) return true;
    advance_one_step();
  }
  return done(*this);
}

std::vector<Envelope> Engine::pending_for(ProcessId p) const {
  std::vector<Envelope> out;
  out.reserve(pending_count_[p]);
  if (pending_count_[p] == 0) return out;
  const std::size_t base = p * wheel_width_;
  // Same k-way chain merge as the delivery path: every bucket chain is
  // id-sorted (ids are assigned in send order at insertion), so repeatedly
  // taking the minimum head id yields global send order directly — no
  // copy-everything-then-sort.
  std::vector<EnvelopeArena::Cursor> heads;
  heads.reserve(wheel_width_);
  for (std::size_t s = 0; s < wheel_width_; ++s)
    if (!arena_.chain_empty(wheel_[base + s]))
      heads.push_back(arena_.cursor(wheel_[base + s]));
  for (;;) {
    std::size_t best = heads.size();
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (arena_.at_end(heads[i])) continue;
      if (best == heads.size() ||
          arena_.id_[arena_.entry(heads[i])] <
              arena_.id_[arena_.entry(heads[best])])
        best = i;
    }
    if (best == heads.size()) break;
    const std::size_t e = arena_.entry(heads[best]);
    Envelope env = view_of(arena_, payloads_, e);
    // Callers (the adaptive adversary) may retain these past the next step:
    // hand out owning references.
    env.payload = PayloadRef(payloads_.share(arena_.payload_[e]));
    out.push_back(std::move(env));
    arena_.advance(heads[best]);
  }
  return out;
}

void Engine::for_each_pending(ProcessId p,
                              FunctionRef<bool(const Envelope&)> fn) const {
  const std::size_t base = p * wheel_width_;
  for (std::size_t s = 0; s < wheel_width_; ++s)
    for (EnvelopeArena::Cursor c = arena_.cursor(wheel_[base + s]);
         !arena_.at_end(c); arena_.advance(c))
      if (!fn(view_of(arena_, payloads_, arena_.entry(c)))) return;
}

void Engine::hash_mix(std::uint64_t v) {
  trace_hash_ ^= v;
  trace_hash_ *= 0x100000001b3ULL;
}

void Engine::apply_crashes(const std::vector<ProcessId>& crash_list) {
  for (ProcessId p : crash_list) {
    AG_ASSERT_MSG(p < processes_.size(), "crash target out of range");
    if (crashed_[p]) continue;
    if (crashes_ + 1 > config_.max_crashes)
      throw ModelViolation("adversary exceeded crash budget f");
    crashed_[p] = true;
    ++crashes_;
    --alive_count_;
    metrics_.record_crash();
    for (EngineObserver* o : observers_) o->on_crash(now_, p);
    // A crashed process never steps again; its pending messages are moot.
    in_flight_total_ -= pending_count_[p];
    pending_count_[p] = 0;
    const std::size_t base = p * wheel_width_;
    for (std::size_t s = 0; s < wheel_width_; ++s) {
      EnvelopeArena::Bucket& b = wheel_[base + s];
      arena_.for_chain(
          b, [&](std::size_t e) { payloads_.release(arena_.payload_[e]); });
      arena_.recycle(b);
    }
    hash_mix(0xC0DEull ^ p);
  }
}

const std::vector<ProcessId>& Engine::effective_schedule(
    const std::vector<ProcessId>& proposed) {
  std::fill(want_scratch_.begin(), want_scratch_.end(), 0);
  for (ProcessId p : proposed) {
    AG_ASSERT_MSG(p < processes_.size(), "scheduled process out of range");
    if (!crashed_[p]) want_scratch_[p] = 1;
  }
  // Enforce the delta contract: a live process whose deadline has arrived
  // must step now.
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    if (crashed_[p] || want_scratch_[p] != 0) continue;
    const Time deadline = stepped_once_[p] ? last_step_time_[p] + config_.delta
                                           : config_.delta - 1;
    if (now_ >= deadline) {
      if (config_.strict)
        throw ModelViolation(
            "adversary left a live process unscheduled past its delta "
            "deadline");
      want_scratch_[p] = 1;
    }
  }
  schedule_scratch_.clear();
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (want_scratch_[p] != 0) schedule_scratch_.push_back(p);
  return schedule_scratch_;
}

void Engine::run_slot(ProcessId p, SlotResult& slot, FlightRing* ring) {
  slot.delivered.clear();
  slot.payload_handles.clear();
  slot.drained.clear();
  slot.outbox.clear();
  slot.probes.clear();
  {
    const FlightZone zone(ring, FlightZoneId::kWheelDrain, p, now_);
    if (pending_count_[p] != 0) {
      // Due slots: every deadline in (last step, now]. The engine's delta
      // enforcement bounds this span by delta < wheel_width_, and the wheel
      // is wide enough that these buckets hold due messages only (future
      // deadlines land in other slots; see engine.h).
      const Time t_lo = stepped_once_[p] ? last_step_time_[p] + 1 : 0;
      AG_ASSERT_MSG(now_ - t_lo < wheel_width_,
                    "scheduling gap exceeded the timing-wheel width");
      for (Time t = t_lo; t <= now_; ++t) {
        EnvelopeArena::Bucket& b = bucket(p, t);
        if (!arena_.chain_empty(b)) {
          // Detach the chain; its slabs are recycled at the merge (the
          // arena free list is engine-thread-only).
          slot.drained.push_back(b);
          b = EnvelopeArena::Bucket{};
        }
      }
      if (slot.drained.size() == 1) {
        arena_.for_chain(slot.drained[0], [&](std::size_t e) {
          slot.delivered.push_back(view_of(arena_, payloads_, e));
          slot.payload_handles.push_back(arena_.payload_[e]);
        });
      } else if (!slot.drained.empty()) {
        const FlightZone merge_zone(ring, FlightZoneId::kKwayMerge, p, now_);
        // Merge the due chains back into global send order by message id
        // (each chain is already id-sorted).
        slot.cursors.clear();
        for (const EnvelopeArena::Bucket& b : slot.drained)
          slot.cursors.push_back(arena_.cursor(b));
        for (;;) {
          std::size_t best = slot.cursors.size();
          for (std::size_t i = 0; i < slot.cursors.size(); ++i) {
            if (arena_.at_end(slot.cursors[i])) continue;
            if (best == slot.cursors.size() ||
                arena_.id_[arena_.entry(slot.cursors[i])] <
                    arena_.id_[arena_.entry(slot.cursors[best])])
              best = i;
          }
          if (best == slot.cursors.size()) break;
          const std::size_t e = arena_.entry(slot.cursors[best]);
          slot.delivered.push_back(view_of(arena_, payloads_, e));
          slot.payload_handles.push_back(arena_.payload_[e]);
          arena_.advance(slot.cursors[best]);
        }
      }
    }
  }
  StepContext ctx(p, processes_.size(), local_steps_[p], slot.delivered,
                  slot.outbox);
  RecordingProbeSink recorder(&slot.probes);
  if (probe_sink_ != nullptr) ctx.attach_probe(&recorder, now_);
  {
    const FlightZone zone(ring, FlightZoneId::kStepDispatch, p, now_);
    processes_[p]->step(ctx);
  }
}

void Engine::merge_slot(ProcessId p, SlotResult& slot) {
  const Time prev_step = stepped_once_[p] ? last_step_time_[p] : kTimeMax;
  const Time gap = stepped_once_[p] ? now_ - last_step_time_[p] : now_ + 1;
  metrics_.record_gap(gap);
  for (EngineObserver* o : observers_) o->on_step(now_, p);
  for (const Envelope& env : slot.delivered) {
    metrics_.record_delivery(p, env.send_time, prev_step, now_);
    for (EngineObserver* o : observers_) o->on_delivery(env, now_);
    if (flight_ != nullptr)
      flight_record_deliver(flight_, env.id, env.from, p, now_, env.send_time);
    hash_mix(0xDE11ull ^ env.id);
  }
  in_flight_total_ -= slot.delivered.size();
  pending_count_[p] -= slot.delivered.size();
  if (probe_sink_ != nullptr) {
    for (const ProbeRecord& r : slot.probes) {
      if (r.phase != nullptr)
        probe_sink_->on_phase(now_, p, r.phase);
      else
        probe_sink_->on_state(now_, p, r.a, r.b);
    }
  }
  dispatch_sends(p, slot.outbox);
  slot.outbox.clear();
  // Delivered payload references and slabs are dead past this point: the
  // process step consumed the views and every observer has run.
  for (const std::uint32_t h : slot.payload_handles) payloads_.release(h);
  for (EnvelopeArena::Bucket& b : slot.drained) arena_.recycle(b);
  last_step_time_[p] = now_;
  stepped_once_[p] = true;
  ++local_steps_[p];
  metrics_.record_local_step();
  hash_mix(0x57E4ull ^ p ^ (now_ << 16));
}

void Engine::dispatch_sends(ProcessId from,
                            std::vector<StepContext::Outgoing>& out) {
  const EngineView view(*this);
  for (StepContext::Outgoing& o : out) {
    AG_ASSERT_MSG(o.to < processes_.size(), "send target out of range");
    Envelope env;
    env.id = next_message_id_++;
    env.from = from;
    env.to = o.to;
    env.send_time = now_;
    env.payload = PayloadRef::borrowed(o.payload.get());
    Time delay = adversary_->message_delay(env, view);
    delay = std::clamp<Time>(delay, 1, config_.d);
    env.deliver_after = now_ + delay;
    metrics_.record_send(from, now_,
                         env.payload ? env.payload->byte_size() : 0);
    for (EngineObserver* obs : observers_) obs->on_send(env);
    if (flight_ != nullptr)
      flight_record_send(flight_, env.id, env.from, env.to, now_,
                         env.deliver_after);
    hash_mix(0x5E4Dull ^ env.id ^ (static_cast<std::uint64_t>(env.to) << 32));
    if (crashed_[env.to]) continue;  // delivery to a crashed process is moot
    // Interning after the crash check keeps doomed payloads out of the pool;
    // intern + append in send order keeps every chain sorted by message id.
    const std::uint32_t handle = payloads_.intern(std::move(o.payload));
    arena_.append(bucket(env.to, env.deliver_after), env.id, env.from, env.to,
                  env.send_time, env.deliver_after, handle);
    ++pending_count_[env.to];
    ++in_flight_total_;
  }
}

void Engine::advance_one_step() {
  const EngineView view(*this);
  StepDecision decision = adversary_->decide(now_, view);

  apply_crashes(decision.crash);
  const std::vector<ProcessId>& schedule =
      effective_schedule(decision.schedule);

  // Serial and sharded stepping share the same two phases per slot; the
  // serial path simply interleaves them, which reproduces the historical
  // event order exactly — and because merge_slot replays every side effect
  // in schedule order either way, both paths emit the same event stream
  // bit for bit (see the sharding notes in engine.h).
  if (jobs_ <= 1 || schedule.size() < 2) {
    for (ProcessId p : schedule) {
      run_slot(p, slots_[0], flight_);
      merge_slot(p, slots_[0]);
    }
  } else {
    if (slots_.size() < schedule.size()) slots_.resize(schedule.size());
    if (pool_ == nullptr) pool_ = std::make_unique<ShardPool>(jobs_ - 1);
    pool_->run(schedule.size(), [&](std::size_t i) {
      // Worker phase: frozen pre-step snapshot, per-slot buffers, no
      // flight ring (it is single-producer; spans are emitted at the
      // merge, only the profiling zones are engine-thread-only).
      run_slot(schedule[i], slots_[i], nullptr);
    });
    for (std::size_t i = 0; i < schedule.size(); ++i)
      merge_slot(schedule[i], slots_[i]);
  }

  metrics_.record_in_flight(in_flight_total_);

  ++now_;
}

}  // namespace asyncgossip
