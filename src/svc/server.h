// Loopback UDP front-end for the KV service: one datagram in (svc-req-v1),
// one datagram out (svc-res-v1), response sent to the request's source
// address from the commit thread once the command's batch resolves. UDP
// fits the service's idempotence story — a lost response simply shows up
// as an unacked request in the loadgen's accounting, never as a duplicate
// apply (the checker would catch one).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "svc/service.h"

namespace asyncgossip {
namespace svc {

class UdpKvServer {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral) and starts the receive loop.
  /// Check ok() before use. `service` must outlive the server.
  UdpKvServer(KvService* service, std::uint16_t port);
  ~UdpKvServer();

  UdpKvServer(const UdpKvServer&) = delete;
  UdpKvServer& operator=(const UdpKvServer&) = delete;

  bool ok() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  std::uint64_t requests() const { return requests_.load(); }
  std::uint64_t malformed() const { return malformed_.load(); }

  /// Stops accepting requests and joins the receive thread. Idempotent.
  /// In-flight commands still get responses (the service owns them).
  void stop();

 private:
  void recv_loop();

  KvService* service_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::thread receiver_;
};

}  // namespace svc
}  // namespace asyncgossip
