file(REMOVE_RECURSE
  "CMakeFiles/ag_apps.dir/doall.cpp.o"
  "CMakeFiles/ag_apps.dir/doall.cpp.o.d"
  "libag_apps.a"
  "libag_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
