#include "rt/fault.h"

#include "common/assert.h"

namespace asyncgossip {

const char* to_string(RtInject inject) {
  switch (inject) {
    case RtInject::kNone:
      return "none";
    case RtInject::kCrash:
      return "crash";
    case RtInject::kStall:
      return "stall";
    case RtInject::kDrop:
      return "drop";
    case RtInject::kAll:
      return "all";
  }
  return "?";
}

bool rt_inject_from_string(const std::string& name, RtInject* out) {
  if (name == "none") {
    *out = RtInject::kNone;
  } else if (name == "crash") {
    *out = RtInject::kCrash;
  } else if (name == "stall") {
    *out = RtInject::kStall;
  } else if (name == "drop") {
    *out = RtInject::kDrop;
  } else if (name == "all") {
    *out = RtInject::kAll;
  } else {
    return false;
  }
  return true;
}

FaultPlan make_fault_plan(RtInject inject, std::size_t n, std::size_t f,
                          std::uint64_t horizon, std::uint64_t seed) {
  AG_ASSERT_MSG(f < n, "crash budget must leave a live process");
  FaultPlan plan;
  plan.crash_at_step.assign(n, kTimeMax);
  const bool crash = inject == RtInject::kCrash || inject == RtInject::kAll;
  plan.stall_links = inject == RtInject::kStall || inject == RtInject::kAll;
  plan.drop_retry = inject == RtInject::kDrop || inject == RtInject::kAll;
  if (!crash || f == 0) return plan;
  // A fault-plan-only stream: victims and crash steps must not depend on
  // (or perturb) the per-process algorithm streams.
  Xoshiro256SS rng(seed ^ 0xfa17a110c8a5eedULL);
  if (horizon == 0) horizon = 1;
  for (std::uint64_t victim : rng.sample_without_replacement(n, f))
    plan.crash_at_step[victim] = 1 + rng.uniform(horizon);
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, Time d_target, Time delta_target)
    : plan_(std::move(plan)),
      d_target_(d_target == 0 ? 1 : d_target),
      delta_target_(delta_target == 0 ? 1 : delta_target) {}

Time FaultInjector::extra_delay(Xoshiro256SS& rng) const {
  Time extra = 0;
  // Order matters for determinism: every send consults the same draws in
  // the same order on one thread.
  if (plan_.stall_links && rng.bernoulli(plan_.stall_probability))
    extra += 1 + rng.uniform(delta_target_);
  if (plan_.drop_retry && rng.bernoulli(plan_.drop_probability))
    extra += 1 + rng.uniform(d_target_ + delta_target_);
  return extra;
}

}  // namespace asyncgossip
