// Lock-free single-producer/single-consumer ring with overwrite-oldest
// semantics — the storage primitive behind the flight recorder
// (common/flight_recorder.h).
//
// Design constraints, in order:
//   1. The producer is a runtime hot path (one ring per rt worker thread,
//      one per engine). push() must be wait-free and never block, allocate,
//      or take a lock — so when the consumer lags, the producer *overwrites
//      the oldest record* instead of stalling or failing. Lost records are
//      counted, never silent (drop accounting is part of the recorder's
//      contract; see docs/OBSERVABILITY.md).
//   2. The consumer may run concurrently (the live-stats snapshot thread
//      reads counters while workers record) and must be race-free under
//      TSan, not just "works on x86". Overwriting a slot the consumer might
//      be reading is the classic seqlock problem, so each slot carries a
//      sequence word and the payload is stored as relaxed atomic words; a
//      read validates the sequence on both sides of the copy (Boehm,
//      "Can seqlocks get along with programming language memory models?").
//   3. No mutex anywhere: aglint AG-LCK-002 covers this file, so a
//      std::mutex sneaking in fails the lint gate (the known-bad fixture
//      tests/lint_fixtures/bad_lck_recorder.cpp proves the rule fires).
//
// Slot protocol: position pos lives in slot pos % capacity. Its sequence
// word is 2*pos + 1 while the producer writes generation pos and 2*pos + 2
// once the write completes (initially 0). The consumer computes the
// expected sequence from the position it wants; any other value means the
// producer lapped it and the record is gone — counted as dropped. The
// release fence before the payload stores and the acquire fence after the
// payload loads make a torn read impossible: if the consumer observed any
// word of a newer generation, the second sequence check cannot pass.
//
// ThreadSanitizer does not model std::atomic_thread_fence (GCC promotes its
// -Wtsan diagnostic to a build error under -Werror), so TSan builds replace
// the fence pair with per-operation orderings on the payload words
// themselves — release stores / acquire loads give TSan (and the hardware)
// the same happens-before edges, at a per-word cost the instrumented build
// doesn't care about.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#if defined(__SANITIZE_THREAD__)
#define AG_SPSC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AG_SPSC_TSAN 1
#endif
#endif
#ifndef AG_SPSC_TSAN
#define AG_SPSC_TSAN 0
#endif

namespace asyncgossip {

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable<T>::value,
                "ring payloads are copied as raw words");

 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Producer only. Wait-free; overwrites the oldest unread record when the
  /// ring is full (the consumer accounts for the loss on its side).
  void push(const T& value) {
    const std::uint64_t pos = write_pos_++;
    Slot& slot = slots_[pos & mask_];
    slot.seq.store(2 * pos + 1, std::memory_order_relaxed);
#if AG_SPSC_TSAN
    constexpr auto kStoreOrder = std::memory_order_release;
#else
    std::atomic_thread_fence(std::memory_order_release);
    constexpr auto kStoreOrder = std::memory_order_relaxed;
#endif
    std::uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i)
      slot.words[i].store(words[i], kStoreOrder);
    slot.seq.store(2 * pos + 2, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_release);
  }

  /// Consumer only. Pops the oldest surviving record; returns false when
  /// the ring is empty. Records the producer overwrote before the consumer
  /// reached them are skipped and added to dropped().
  bool pop(T* out) {
    for (;;) {
      const std::uint64_t tail = tail_.load(std::memory_order_acquire);
      if (read_pos_ >= tail) return false;
      if (tail - read_pos_ > capacity_) {
        // The producer lapped us while we were away: everything below
        // tail - capacity is guaranteed overwritten.
        dropped_ += (tail - capacity_) - read_pos_;
        read_pos_ = tail - capacity_;
      }
      const std::uint64_t pos = read_pos_;
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t want = 2 * pos + 2;
      if (slot.seq.load(std::memory_order_acquire) != want) {
        // Lapped between the tail read and here (or mid-overwrite).
        ++dropped_;
        ++read_pos_;
        continue;
      }
      std::uint64_t words[kWords];
#if AG_SPSC_TSAN
      constexpr auto kLoadOrder = std::memory_order_acquire;
#else
      constexpr auto kLoadOrder = std::memory_order_relaxed;
#endif
      for (std::size_t i = 0; i < kWords; ++i)
        words[i] = slot.words[i].load(kLoadOrder);
#if !AG_SPSC_TSAN
      std::atomic_thread_fence(std::memory_order_acquire);
#endif
      if (slot.seq.load(std::memory_order_relaxed) != want) {
        ++dropped_;
        ++read_pos_;
        continue;
      }
      std::memcpy(out, words, sizeof(T));
      ++read_pos_;
      return true;
    }
  }

  /// Consumer only: total records lost to overwriting, as discovered so
  /// far. Final once the producer has stopped and pop() has drained.
  std::uint64_t dropped() const { return dropped_; }

  // --- cross-thread gauges (any thread; approximate while running) --------

  /// Records pushed so far (exact; monotone).
  std::uint64_t pushed() const {
    return tail_.load(std::memory_order_relaxed);
  }

  /// Lower bound on records already lost: how far the producer has run past
  /// one full ring of unread records. The consumer's dropped() is the
  /// authoritative count after a drain; this gauge is for live snapshots.
  std::uint64_t lag_dropped_estimate() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t consumed = consumed_.load(std::memory_order_relaxed);
    const std::uint64_t unread = tail - consumed;
    return unread > capacity_ ? unread - capacity_ : 0;
  }

  /// Consumer only: publish progress for lag_dropped_estimate() readers.
  void publish_consumed() {
    consumed_.store(read_pos_, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  // Producer-owned.
  std::uint64_t write_pos_ = 0;
  // Published write count (producer writes, anyone reads).
  std::atomic<std::uint64_t> tail_{0};
  // Consumer-owned.
  std::uint64_t read_pos_ = 0;
  std::uint64_t dropped_ = 0;
  // Published read count (consumer writes, anyone reads).
  std::atomic<std::uint64_t> consumed_{0};
};

}  // namespace asyncgossip
