#include "gossip/sync_gossip.h"

#include <gtest/gtest.h>

#include "gossip/harness.h"

namespace asyncgossip {
namespace {

TEST(SyncGossip, RoundBudgetFormula) {
  EXPECT_EQ(make_sync_rounds(256, 3.0), 25u);  // ceil(3*8)+1
  EXPECT_GE(make_sync_rounds(2, 1.0), 2u);
}

TEST(SyncGossip, StopsAfterRoundBudgetUnconditionally) {
  SyncGossipProcess p(0, 32, 5, 1);
  std::vector<Envelope> empty;
  for (int s = 0; s < 5; ++s) {
    StepContext ctx(0, 32, static_cast<std::uint64_t>(s), empty);
    p.step(ctx);
    EXPECT_EQ(ctx.outbox().size(), 1u);
    EXPECT_FALSE(s < 4 && p.quiescent());
  }
  EXPECT_TRUE(p.quiescent());
  StepContext ctx(0, 32, 5, empty);
  p.step(ctx);
  EXPECT_TRUE(ctx.outbox().empty());
}

TEST(SyncGossip, GathersAtUnitTimingWithCrashes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GossipSpec spec;
    spec.algorithm = GossipAlgorithm::kSync;
    spec.n = 128;
    spec.f = 32;
    spec.d = 1;
    spec.delta = 1;
    spec.schedule = SchedulePattern::kLockStep;
    spec.delay = DelayPattern::kUnitDelay;
    spec.crash_horizon = 8;
    spec.seed = seed;
    const GossipOutcome out = run_gossip_spec(spec);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.gathering_ok) << "seed " << seed;
  }
}

TEST(SyncGossip, MessageComplexityNLogN) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kSync;
  spec.n = 256;
  spec.f = 0;
  spec.d = 1;
  spec.delta = 1;
  spec.schedule = SchedulePattern::kLockStep;
  spec.delay = DelayPattern::kUnitDelay;
  spec.seed = 5;
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  // Exactly n * R messages: every process sends one per round.
  EXPECT_EQ(out.messages, 256u * make_sync_rounds(256));
  // Completion = R (all sends happen in rounds 0..R-1).
  EXPECT_EQ(out.completion_time, make_sync_rounds(256));
}

TEST(SyncGossip, KnownSynchronyIsTheAdvantage) {
  // Same workload: the synchronous algorithm stops by round count; EARS
  // must buy its stopping rule with informed-list traffic. At d = delta = 1
  // sync wins on messages.
  GossipSpec sync_spec, ears_spec;
  sync_spec.algorithm = GossipAlgorithm::kSync;
  ears_spec.algorithm = GossipAlgorithm::kEars;
  for (GossipSpec* s : {&sync_spec, &ears_spec}) {
    s->n = 128;
    s->f = 16;
    s->d = 1;
    s->delta = 1;
    s->schedule = SchedulePattern::kLockStep;
    s->delay = DelayPattern::kUnitDelay;
    s->seed = 21;
  }
  const GossipOutcome osync = run_gossip_spec(sync_spec);
  const GossipOutcome oears = run_gossip_spec(ears_spec);
  ASSERT_TRUE(osync.completed && oears.completed);
  ASSERT_TRUE(osync.gathering_ok && oears.gathering_ok);
  EXPECT_LT(osync.messages, oears.messages);
}

}  // namespace
}  // namespace asyncgossip
