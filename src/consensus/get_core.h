// Pure get-core evaluation logic, factored out of the process class for
// direct unit testing.
//
// get-core returns the union item set collected after three sub-instances.
// The framework consumes that set per exchange:
//  * estimate votes : if every observed vote equals v in {0,1}, the
//    preference y becomes v, else bot;
//  * preference votes: if every observed value is the same v != bot the
//    process decides v; else if some v != bot is present it adopts v as its
//    next estimate; otherwise it falls back to the common coin;
//  * coin exchange  : each process contributes 0 with probability 1/n
//    (else 1); the coin result is 0 iff any 0 was observed. Both outcomes
//    then have constant probability of being *unanimous* across processes,
//    which is what gives the expected-constant phase count.
#pragma once

#include <cstddef>

#include "consensus/core_types.h"

namespace asyncgossip {

/// Result of consuming the estimate-vote exchange: the preference y.
Val evaluate_estimate_votes(const InstanceState& collected);

struct PreferenceOutcome {
  bool decide = false;
  Val decision = kValUnknown;
  /// Next estimate if a non-bot preference was observed (kValUnknown if
  /// the coin must be used).
  Val adopt = kValUnknown;
  /// Two distinct non-bot preferences were observed. Impossible when the
  /// common-core property holds; counted as a diagnostic and treated as
  /// "fall back to the coin".
  bool conflict = false;
};

PreferenceOutcome evaluate_preference_votes(const InstanceState& collected);

/// Coin result: 0 iff any observed coin vote is 0.
Val evaluate_coin(const InstanceState& collected);

/// Majority threshold used by the gossip-backed exchanges: floor(n/2) + 1.
std::size_t majority_threshold(std::size_t n);

}  // namespace asyncgossip
