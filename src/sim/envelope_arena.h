// Slab/arena storage for in-flight envelopes: the data-oriented core of the
// engine's timing-wheel mailboxes.
//
// The historical representation — one std::vector<Envelope> per wheel
// bucket — cost n * W vector headers (24 bytes each; 25 MB at n = 4096,
// d = 256 before a single message) plus one heap block per non-empty
// bucket, and the drain fast path swapped each bucket's capacity away, so
// the steady state performed ~1 reallocation per bucket per wheel turn
// (about 20% of engine wall time under gprof). Here a bucket is an 8-byte
// {head, tail} pair chaining fixed-size slabs of envelope slots, and the
// envelope fields live in global struct-of-arrays vectors indexed by
// slot = slab * kSlabEntries + i:
//
//   id / from / to / send_time / deliver_after / payload-index
//
// Slabs are recycled through an intrusive free list (slab_next_ doubles as
// the free-list link), so once the arena has grown to the execution's
// standing in-flight volume, send and deliver allocate nothing. Appending
// preserves send order within a chain, and message ids are assigned
// monotonically by the engine, so every chain is id-sorted — the property
// the k-way due-bucket merge relies on.
//
// Payloads are interned in PayloadPool: envelopes store a 32-bit pool
// handle instead of a shared_ptr, so fanning one payload out to k
// destinations costs one pool slot and k non-atomic refcount increments
// rather than k atomic shared_ptr copies. A single-entry memo makes the
// common pattern (one payload, many destinations, interned back to back)
// O(1) without a hash map; the memo can never dangle because the pool
// itself holds a reference to the memoized payload until its refcount
// drops to zero, at which point the memo is cleared.
//
// Thread-safety: none — the arena and pool are engine-internal state,
// mutated only from the engine thread (the shard pool's worker phase reads
// entry fields and payload pointers but defers every mutation — slab
// recycling, pool releases, appends — to the serial merge; see
// sim/engine.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "sim/message.h"
#include "sim/types.h"

namespace asyncgossip {

/// Counters exposed by Engine::arena_stats(): the bench suite reports
/// slab_allocations as its allocation-count counter (steady state must not
/// grow it), and the arena tests pin the reuse behaviour at wheel
/// wraparound.
struct ArenaStats {
  /// Slab-capacity growth events since construction (each adds one slab).
  std::uint64_t slab_allocations = 0;
  /// Slabs handed out from the free list instead of new capacity.
  std::uint64_t slab_reuses = 0;
  /// Total slabs owned by the arena (allocated, free or chained).
  std::uint64_t slab_capacity = 0;
  /// Slabs currently on the free list.
  std::uint64_t slabs_free = 0;
  /// Payload pool slots created since construction (interning misses).
  std::uint64_t payloads_interned = 0;
  /// Payload pool slots currently live.
  std::uint64_t payload_pool_live = 0;
  /// High-water mark of live payload pool slots.
  std::uint64_t payload_pool_peak = 0;
};

/// Interned payload storage: PayloadPtr slots with non-atomic refcounts,
/// addressed by 32-bit handles. kNoPayload represents a null payload.
class PayloadPool {
 public:
  static constexpr std::uint32_t kNoPayload = 0xffffffffu;

  /// Takes (shared) ownership of `p` and returns its handle with one
  /// reference. Consecutive interns of the same payload object hit the
  /// memo and share a slot.
  std::uint32_t intern(PayloadPtr p) {
    if (p == nullptr) return kNoPayload;
    if (p.get() == memo_raw_) {
      ++refs_[memo_idx_];
      return memo_idx_;
    }
    std::uint32_t h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      ptrs_[h] = std::move(p);
      refs_[h] = 1;
    } else {
      h = static_cast<std::uint32_t>(ptrs_.size());
      ptrs_.push_back(std::move(p));
      refs_.push_back(1);
    }
    memo_raw_ = ptrs_[h].get();
    memo_idx_ = h;
    ++interned_;
    ++live_;
    if (live_ > peak_) peak_ = live_;
    return h;
  }

  /// Drops one reference; at zero the slot releases its PayloadPtr and
  /// returns to the free list.
  void release(std::uint32_t h) {
    if (h == kNoPayload) return;
    AG_ASSERT_MSG(refs_[h] > 0, "payload pool release without a reference");
    if (--refs_[h] == 0) {
      if (memo_idx_ == h) {
        memo_raw_ = nullptr;
        memo_idx_ = kNoPayload;
      }
      ptrs_[h].reset();
      free_.push_back(h);
      --live_;
    }
  }

  /// Borrowed pointer; valid while the handle holds a reference.
  const Payload* raw(std::uint32_t h) const {
    return h == kNoPayload ? nullptr : ptrs_[h].get();
  }

  /// Owning copy for seams that may outlive the handle (pending_for).
  PayloadPtr share(std::uint32_t h) const {
    return h == kNoPayload ? nullptr : ptrs_[h];
  }

  std::uint32_t ref_count(std::uint32_t h) const {
    return h == kNoPayload ? 0 : refs_[h];
  }

  std::uint64_t interned_total() const { return interned_; }
  std::uint64_t live() const { return live_; }
  std::uint64_t peak() const { return peak_; }

 private:
  std::vector<PayloadPtr> ptrs_;
  std::vector<std::uint32_t> refs_;
  std::vector<std::uint32_t> free_;
  const Payload* memo_raw_ = nullptr;
  std::uint32_t memo_idx_ = kNoPayload;
  std::uint64_t interned_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t peak_ = 0;
};

/// The slab arena. Entry fields are public parallel vectors: the engine's
/// drain/merge loops and the arena tests index them directly — the point of
/// the layout is that hot paths touch exactly the fields they need.
class EnvelopeArena {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Entries per slab. A bucket with any pending envelope holds at least
  /// one slab, and at large n buckets are sparse: the standing per-bucket
  /// occupancy is in_flight_per_process / W ≈ fanout * d / (2 * W) ≈ 2 for
  /// the large-n shapes, so slab size is the arena's memory amplification
  /// factor for mostly-empty buckets. 4 measured best across the bench
  /// grid (8 wins a few percent on deep mailboxes at small n but costs
  /// ~25% throughput at n = 100k-1M, where the working set blows past
  /// cache; 2 halves the per-slab amortization of chain links for no
  /// large-n gain on the ears shape).
  static constexpr std::uint32_t kSlabEntries = 4;

  /// A bucket: the chain of slabs holding one wheel slot's envelopes in
  /// send order. Exactly 8 bytes, so the n * W bucket headers stay dense.
  struct Bucket {
    std::uint32_t head = kNil;  // first slab in the chain
    std::uint32_t tail = kNil;  // last slab (append target)
  };

  /// Read cursor into a chain (slab + offset), used by the k-way merge.
  struct Cursor {
    std::uint32_t slab = kNil;
    std::uint32_t i = 0;
  };

  bool chain_empty(const Bucket& b) const { return b.head == kNil; }

  /// Appends one envelope to `b`'s chain. Caller guarantees monotone ids
  /// per chain (the engine assigns ids in send order).
  void append(Bucket& b, MessageId id, ProcessId from, ProcessId to,
              Time send_time, Time deliver_after, std::uint32_t payload) {
    std::uint32_t tail = b.tail;
    if (tail == kNil || slab_used_[tail] == kSlabEntries) {
      const std::uint32_t s = acquire_slab();
      if (tail == kNil)
        b.head = s;
      else
        slab_next_[tail] = s;
      b.tail = s;
      tail = s;
    }
    const std::uint32_t i = slab_used_[tail]++;
    const std::size_t e = static_cast<std::size_t>(tail) * kSlabEntries + i;
    id_[e] = id;
    from_[e] = from;
    to_[e] = to;
    send_time_[e] = send_time;
    deliver_after_[e] = deliver_after;
    payload_[e] = payload;
  }

  Cursor cursor(const Bucket& b) const { return Cursor{b.head, 0}; }

  bool at_end(const Cursor& c) const { return c.slab == kNil; }

  /// Entry index under the cursor (valid when !at_end).
  std::size_t entry(const Cursor& c) const {
    return static_cast<std::size_t>(c.slab) * kSlabEntries + c.i;
  }

  void advance(Cursor& c) const {
    if (++c.i >= slab_used_[c.slab]) {
      c.slab = slab_next_[c.slab];
      c.i = 0;
    }
  }

  /// Visits every entry index in `b`'s chain in send order.
  template <typename F>
  void for_chain(const Bucket& b, F&& f) const {
    for (Cursor c = cursor(b); !at_end(c); advance(c)) f(entry(c));
  }

  /// Returns every slab of `b`'s chain to the free list and resets the
  /// bucket. Entry contents are dead after this.
  void recycle(Bucket& b) {
    std::uint32_t s = b.head;
    while (s != kNil) {
      const std::uint32_t next = slab_next_[s];
      slab_next_[s] = free_head_;
      free_head_ = s;
      ++free_count_;
      s = next;
    }
    b.head = kNil;
    b.tail = kNil;
  }

  ArenaStats stats() const {
    ArenaStats st;
    st.slab_allocations = allocations_;
    st.slab_reuses = reuses_;
    st.slab_capacity = slab_count_;
    st.slabs_free = free_count_;
    return st;
  }

  // Entry fields (see file comment). Public by design.
  std::vector<MessageId> id_;
  std::vector<ProcessId> from_;
  std::vector<ProcessId> to_;
  std::vector<Time> send_time_;
  std::vector<Time> deliver_after_;
  std::vector<std::uint32_t> payload_;

 private:
  std::uint32_t acquire_slab() {
    std::uint32_t s;
    if (free_head_ != kNil) {
      s = free_head_;
      free_head_ = slab_next_[s];
      --free_count_;
      ++reuses_;
    } else {
      s = static_cast<std::uint32_t>(slab_count_++);
      const std::size_t entries =
          static_cast<std::size_t>(slab_count_) * kSlabEntries;
      id_.resize(entries);
      from_.resize(entries);
      to_.resize(entries);
      send_time_.resize(entries);
      deliver_after_.resize(entries);
      payload_.resize(entries);
      slab_next_.push_back(kNil);
      slab_used_.push_back(0);
      ++allocations_;
    }
    slab_next_[s] = kNil;
    slab_used_[s] = 0;
    return s;
  }

  // Per-slab metadata: chain link (or free-list link while free) and the
  // number of occupied entries.
  std::vector<std::uint32_t> slab_next_;
  std::vector<std::uint32_t> slab_used_;
  std::uint32_t free_head_ = kNil;
  std::size_t slab_count_ = 0;
  std::uint64_t free_count_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace asyncgossip
