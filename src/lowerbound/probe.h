// The promiscuity probe of Theorem 1.
//
// The proof: "For each process p in S2, simulate the result of process p
// receiving any messages from S1, and executing f/2 local steps in
// isolation... Since the behavior of p is probabilistic, this induces a
// distribution over the set of messages sent by p."
//
// We realize the simulation by world-forking: clone the process (state +
// RNG), reseed each clone with independent randomness, deliver its pending
// mailbox at the first isolated step, and run it for k local steps with no
// further external input (self-sends are looped back with delay 1, matching
// the real Case 2 window). Monte-Carlo over `trials` clones estimates both
// the expected total send count (the promiscuity test, threshold f/32) and
// the per-target probability of sending at least one message (the N(p)
// sets, threshold 1/4).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/message.h"
#include "sim/process.h"

namespace asyncgossip {

struct IsolationProbeResult {
  /// Monte-Carlo estimate of E[#messages sent in k isolated local steps].
  double expected_messages = 0.0;
  /// send_probability[q] estimates Pr[p sends >= 1 message to q during the
  /// k isolated steps].
  std::vector<double> send_probability;
};

/// Runs `trials` independent isolated executions of a clone of `proto`.
/// `initial` is delivered at the clone's first step (the pending messages
/// from S1); `local_steps` is the paper's f/2; `local_step_base` is the
/// clone's current local-step count in the real execution.
IsolationProbeResult probe_isolated_sends(const Process& proto,
                                          ProcessId self, std::size_t n,
                                          const std::vector<Envelope>& initial,
                                          std::uint64_t local_step_base,
                                          std::size_t local_steps,
                                          std::size_t trials,
                                          std::uint64_t seed);

/// Single deterministic isolated run (no reseed): used by tests to verify
/// that clone + replay reproduces the original behaviour exactly.
struct IsolatedRun {
  std::uint64_t total_sent = 0;
  std::vector<std::uint64_t> sent_to;  // per destination counts
};

IsolatedRun run_isolated(const Process& proto, ProcessId self, std::size_t n,
                         const std::vector<Envelope>& initial,
                         std::uint64_t local_step_base,
                         std::size_t local_steps);

}  // namespace asyncgossip
