// Membership service: the motivating workload for gossip in the paper's
// introduction (van Renesse et al.'s gossip-style failure detection, group
// membership).
//
// Each node's rumor is its own membership announcement. Nodes crash during
// the run; the example shows that every surviving node converges on a
// roster containing every correct node, while the protocol goes quiescent
// (no periodic heartbeat traffic forever — the informed-list progress
// control tells nodes when dissemination is done).
//
//   $ ./membership [n] [f] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gossip/completion.h"
#include "gossip/harness.h"
#include "gossip/rumor.h"

using namespace asyncgossip;

int main(int argc, char** argv) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  spec.f = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  spec.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  spec.d = 5;
  spec.delta = 4;
  spec.schedule = SchedulePattern::kRandomSubset;
  spec.delay = DelayPattern::kUniform;
  spec.crash_horizon = 48;  // nodes may drop out while gossip is running

  std::printf("cluster bring-up: %zu nodes, up to %zu may crash mid-gossip\n\n",
              spec.n, spec.f);

  Engine engine = make_gossip_engine(spec);
  const GossipOutcome out = run_gossip(engine, default_step_budget(spec));

  if (!out.completed) {
    std::printf("membership did not converge within the budget\n");
    return 1;
  }

  // Print each survivor's roster as a compact strip: '#' = known member,
  // 'x' = a crashed node it (correctly or not) still lists, '.' = unknown.
  std::printf("converged after %llu steps, %llu messages; %zu survivors:\n\n",
              static_cast<unsigned long long>(out.completion_time),
              static_cast<unsigned long long>(out.messages), out.alive);

  std::size_t printed = 0;
  for (ProcessId p = 0; p < engine.n() && printed < 8; ++p) {
    if (engine.crashed(p)) continue;
    ++printed;
    const auto& gp = engine.process_as<GossipProcess>(p);
    std::string strip;
    for (ProcessId q = 0; q < engine.n(); ++q) {
      if (!gp.rumors().test(q))
        strip += '.';
      else
        strip += engine.crashed(q) ? 'x' : '#';
    }
    std::printf("node %3u roster [%s] (%zu known)\n", p, strip.c_str(),
                gp.rumors().count());
  }
  if (out.alive > printed)
    std::printf("... and %zu more survivors with equivalent rosters\n",
                out.alive - printed);

  std::printf("\nevery correct node on every surviving roster: %s\n",
              out.gathering_ok ? "YES" : "NO");
  std::printf("network quiescent (no heartbeat leakage):      %s\n",
              engine.network_empty() ? "YES" : "NO");
  return out.gathering_ok ? 0 : 1;
}
