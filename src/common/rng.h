// Deterministic, copyable random number generation.
//
// Every source of randomness in the library flows through Xoshiro256SS so
// that (a) a whole execution is a pure function of its seeds, (b) process
// state — including its RNG — can be cloned, which the Theorem 1 adaptive
// adversary uses to fork the world and probe the *distribution* of a
// process's future behaviour, and (c) results are reproducible across
// platforms (we avoid std:: distributions, whose outputs are
// implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace asyncgossip {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). Small, fast, 2^256-1 period,
/// trivially copyable — copy = independent replay of the same future stream.
class Xoshiro256SS {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via splitmix64, per the
  /// authors' recommendation (never yields the all-zero state).
  explicit Xoshiro256SS(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method;
  /// deterministic across platforms. `bound` must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform_real();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform element index sampling without replacement: k distinct values
  /// from [0, bound). Floyd's algorithm; O(k) expected. Order is random.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t bound,
                                                        std::uint64_t k);

  /// Derives an independent child generator (seeded from this stream).
  /// Used to give each process / adversary its own stream.
  Xoshiro256SS split();

  /// Equivalent to 2^128 calls to next(); used for stream separation tests.
  void jump();

  friend bool operator==(const Xoshiro256SS& a, const Xoshiro256SS& b) {
    return a.s_[0] == b.s_[0] && a.s_[1] == b.s_[1] && a.s_[2] == b.s_[2] &&
           a.s_[3] == b.s_[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace asyncgossip
