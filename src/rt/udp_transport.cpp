#include "rt/udp_transport.h"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.h"

namespace asyncgossip {

namespace {

constexpr std::size_t kRecvBufferBytes = 1 << 16;

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(UdpTransportConfig config)
    : config_(std::move(config)), endpoints_(config_.n) {
  AG_ASSERT_MSG(config_.n > 0, "udp transport needs at least one process");
  {
    const MutexLock lock(&peers_mu_);
    peer_port_.assign(config_.n, 0);
  }
  std::vector<ProcessId> local = config_.local;
  if (local.empty())
    for (ProcessId p = 0; p < config_.n; ++p) local.push_back(p);
  for (ProcessId p : local) {
    AG_ASSERT_MSG(p < config_.n, "local endpoint out of range");
    // Distinct fault streams per endpoint, derived from the one shim seed.
    auto ep = std::make_unique<Endpoint>(
        p, config_.n, config_.faults.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
    ep->fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    AG_ASSERT_MSG(ep->fd >= 0, "udp socket() failed");
    const int rcvbuf = 1 << 21;
    ::setsockopt(ep->fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr = loopback(0);
    int rc = ::bind(ep->fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr));
    AG_ASSERT_MSG(rc == 0, "udp bind(127.0.0.1:0) failed");
    socklen_t len = sizeof(addr);
    rc = ::getsockname(ep->fd, reinterpret_cast<sockaddr*>(&addr), &len);
    AG_ASSERT_MSG(rc == 0, "udp getsockname() failed");
    ep->port = ntohs(addr.sin_port);
    endpoints_[p] = std::move(ep);
  }
  // Single-object deployments know every port already.
  const MutexLock lock(&peers_mu_);
  for (ProcessId p = 0; p < config_.n; ++p)
    if (endpoints_[p] != nullptr) peer_port_[p] = endpoints_[p]->port;
}

UdpTransport::~UdpTransport() {
  for (auto& ep : endpoints_)
    if (ep != nullptr && ep->fd >= 0) ::close(ep->fd);
}

UdpTransport::Endpoint* UdpTransport::endpoint(ProcessId p) const {
  AG_ASSERT_MSG(p < endpoints_.size(), "endpoint out of range");
  Endpoint* ep = endpoints_[p].get();
  AG_ASSERT_MSG(ep != nullptr, "endpoint is not hosted by this transport");
  return ep;
}

bool UdpTransport::is_local(ProcessId p) const {
  return p < endpoints_.size() && endpoints_[p] != nullptr;
}

std::uint16_t UdpTransport::local_port(ProcessId p) const {
  return endpoint(p)->port;
}

void UdpTransport::set_peer(ProcessId p, std::uint16_t port) {
  AG_ASSERT_MSG(p < config_.n, "peer out of range");
  const MutexLock lock(&peers_mu_);
  peer_port_[p] = port;
}

sockaddr_in UdpTransport::peer_addr(ProcessId p) const {
  std::uint16_t port = 0;
  {
    const MutexLock lock(&peers_mu_);
    port = peer_port_[p];
  }
  return loopback(port);
}

void UdpTransport::send_datagram(Endpoint& ep, const sockaddr_in& to,
                                 const std::vector<std::uint8_t>& bytes,
                                 bool shimmable) {
  // Port 0 = peer not yet known; the frame stays queued for retransmit.
  if (to.sin_port == 0) return;
  if (shimmable && config_.faults.any()) {
    if (ep.fault_rng.bernoulli(config_.faults.drop_probability)) {
      stats_.shim_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (ep.fault_rng.bernoulli(config_.faults.reorder_probability)) {
      stats_.shim_reordered.fetch_add(1, std::memory_order_relaxed);
      ep.reordered.emplace_back(to, bytes);
      return;
    }
  }
  const auto emit = [&](const sockaddr_in& addr,
                        const std::vector<std::uint8_t>& data) {
    // Send failures (ENOBUFS, ECONNREFUSED from a peer that is gone) are
    // indistinguishable from loss and handled the same way: retransmit.
    (void)::sendto(ep.fd, data.data(), data.size(), 0,
                   reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  };
  emit(to, bytes);
  if (shimmable && config_.faults.any() &&
      ep.fault_rng.bernoulli(config_.faults.duplicate_probability)) {
    stats_.shim_duplicated.fetch_add(1, std::memory_order_relaxed);
    emit(to, bytes);
  }
  // A send happened: flush any shim-held datagrams *after* it, realizing
  // the reordering.
  if (!ep.reordered.empty()) {
    std::vector<std::pair<sockaddr_in, std::vector<std::uint8_t>>> held;
    held.swap(ep.reordered);
    for (const auto& [addr, data] : held) emit(addr, data);
  }
}

Time UdpTransport::submit(Envelope env) {
  AG_ASSERT_MSG(env.to < config_.n, "submit to out-of-range process");
  Endpoint& ep = *endpoint(env.from);
  const MutexLock lock(&ep.mu);
  LinkTx& link = ep.tx[env.to];
  // Per-link FIFO, sender side: stamps on one link never decrease. The
  // receiver re-floors on release, which can only agree or delay further.
  const Time after = std::max(env.deliver_after, link.stamp_floor);
  link.stamp_floor = after;
  env.deliver_after = after;
  // Batch per destination per tick: a new tick (or an over-full batch)
  // flushes the staged one first.
  const std::size_t envelope_bytes =
      (env.payload ? env.payload->byte_size() : 0) + 64;
  if (!link.batch.empty() && (link.batch_tick != env.send_time ||
                              link.batch_bytes + envelope_bytes >
                                  wire::kMaxFrameBytes - wire::kHeaderBytes))
    flush_link(ep, env.to, env.send_time);
  link.batch_tick = env.send_time;
  link.batch_bytes += envelope_bytes;
  link.batch.push_back(std::move(env));
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  return after;
}

void UdpTransport::flush_link(Endpoint& ep, ProcessId to, Time now) {
  LinkTx& link = ep.tx[to];
  if (link.batch.empty()) return;
  const sockaddr_in dest = peer_addr(to);
  // Greedy split: encode envelope by envelope, closing the frame when the
  // next one would cross the datagram ceiling.
  std::size_t i = 0;
  while (i < link.batch.size()) {
    wire::DataFrame frame;
    frame.from = ep.pid;
    frame.to = to;
    frame.seq = link.next_seq++;
    std::size_t frame_bytes = wire::kHeaderBytes + 40;  // header + meta slack
    while (i < link.batch.size()) {
      std::vector<std::uint8_t> one;
      wire::put_varint(&one, link.batch[i].id);
      wire::put_varint(&one, link.batch[i].send_time);
      wire::put_varint(&one,
                       link.batch[i].deliver_after - link.batch[i].send_time);
      wire::encode_payload(&one, link.batch[i].payload.get());
      if (!frame.envelopes.empty() &&
          frame_bytes + one.size() > wire::kMaxFrameBytes)
        break;
      frame_bytes += one.size();
      frame.envelopes.push_back(std::move(link.batch[i]));
      ++i;
    }
    TxFrame tx;
    tx.seq = frame.seq;
    wire::encode_data_frame(&tx.bytes, frame);
    tx.next_retx = now + config_.retransmit_after;
    stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
    send_datagram(ep, dest, tx.bytes, /*shimmable=*/true);
    link.unacked.push_back(std::move(tx));
  }
  link.batch.clear();
  link.batch_bytes = 0;
}

void UdpTransport::flush_all(Endpoint& ep, Time now) {
  for (ProcessId to = 0; to < config_.n; ++to) flush_link(ep, to, now);
}

void UdpTransport::flush(ProcessId from, Time now) {
  Endpoint& ep = *endpoint(from);
  const MutexLock lock(&ep.mu);
  flush_all(ep, now);
}

void UdpTransport::release_frame(Endpoint& ep, RxFrame frame) {
  for (Envelope& env : frame.envelopes) {
    settled_.fetch_add(1, std::memory_order_acq_rel);
    if (ep.closed) {
      discard_reap_.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    Time after = env.deliver_after;
    // No-late stamp: nothing becomes deliverable at or before a tick the
    // receiver already drained.
    if (ep.drained_once && after <= ep.last_drain_tick)
      after = ep.last_drain_tick + 1;
    // Per-link FIFO, receiver side: release order is seq order, so this
    // floor keeps stamps monotone per link even across no-late bumps.
    Time& floor = ep.release_floor[env.from];
    after = std::max(after, floor);
    floor = after;
    env.deliver_after = after;
    ep.pending.push_back(std::move(env));
  }
}

void UdpTransport::handle_data(Endpoint& ep, wire::DataFrame frame,
                               const sockaddr_in& src) {
  // A datagram is untrusted input even after a clean decode: range-check
  // before indexing, drop instead of aborting.
  if (frame.from >= config_.n || frame.to != ep.pid) {
    stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  LinkRx& link = ep.rx[frame.from];
  bool duplicate = frame.seq < link.next_seq;
  if (!duplicate) {
    auto it = std::lower_bound(
        link.held.begin(), link.held.end(), frame.seq,
        [](const RxFrame& f, std::uint64_t seq) { return f.seq < seq; });
    if (it != link.held.end() && it->seq == frame.seq) {
      duplicate = true;
    } else {
      RxFrame rx;
      rx.seq = frame.seq;
      rx.envelopes = std::move(frame.envelopes);
      if (rx.seq != link.next_seq)
        stats_.held_out_of_order.fetch_add(1, std::memory_order_relaxed);
      link.held.insert(it, std::move(rx));
      // Release the contiguous prefix, in seq order.
      std::size_t released = 0;
      while (released < link.held.size() &&
             link.held[released].seq == link.next_seq) {
        release_frame(ep, std::move(link.held[released]));
        ++link.next_seq;
        ++released;
      }
      link.held.erase(link.held.begin(),
                      link.held.begin() + static_cast<std::ptrdiff_t>(released));
    }
  }
  if (duplicate)
    stats_.duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
  // Cumulative ack — also for duplicates (their first ack may have been
  // lost). Addressed to the datagram's source, so no port table needed.
  wire::AckFrame ack;
  ack.receiver = ep.pid;
  ack.sender = frame.from;
  ack.cum_seq = link.next_seq - 1;
  ack.closed = ep.closed;
  std::vector<std::uint8_t> bytes;
  wire::encode_ack_frame(&bytes, ack);
  stats_.acks_sent.fetch_add(1, std::memory_order_relaxed);
  send_datagram(ep, src, bytes, /*shimmable=*/true);
}

void UdpTransport::handle_ack(Endpoint& ep, const wire::AckFrame& ack) {
  if (ack.sender != ep.pid || ack.receiver >= config_.n) return;
  LinkTx& link = ep.tx[ack.receiver];
  link.unacked.erase(
      std::remove_if(link.unacked.begin(), link.unacked.end(),
                     [&](const TxFrame& f) { return f.seq <= ack.cum_seq; }),
      link.unacked.end());
}

void UdpTransport::pump(Endpoint& ep, Time now) {
  (void)now;
  std::uint8_t buf[kRecvBufferBytes];
  while (true) {
    sockaddr_in src;
    socklen_t src_len = sizeof(src);
    const ssize_t got =
        ::recvfrom(ep.fd, buf, sizeof(buf), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (got < 0) break;  // EAGAIN or a transient error: nothing more now
    wire::FrameType type;
    if (wire::peek_type(buf, static_cast<std::size_t>(got), &type) !=
        wire::DecodeError::kOk) {
      stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    switch (type) {
      case wire::FrameType::kData: {
        wire::DataFrame frame;
        if (wire::decode_data_frame(buf, static_cast<std::size_t>(got),
                                    &frame) != wire::DecodeError::kOk) {
          stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        handle_data(ep, std::move(frame), src);
        break;
      }
      case wire::FrameType::kAck: {
        wire::AckFrame ack;
        if (wire::decode_ack_frame(buf, static_cast<std::size_t>(got), &ack) !=
            wire::DecodeError::kOk) {
          stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        handle_ack(ep, ack);
        break;
      }
      default: {
        ControlMsg msg;
        msg.type = type;
        msg.bytes.assign(buf, buf + got);
        msg.src_port = ntohs(src.sin_port);
        ep.control.push_back(std::move(msg));
        break;
      }
    }
  }
}

void UdpTransport::retransmit(Endpoint& ep, Time now) {
  for (ProcessId to = 0; to < config_.n; ++to) {
    LinkTx& link = ep.tx[to];
    if (link.unacked.empty()) continue;
    const sockaddr_in dest = peer_addr(to);
    for (TxFrame& f : link.unacked) {
      if (f.expired || now < f.next_retx) continue;
      if (f.retx >= config_.max_retransmits) {
        f.expired = true;
        stats_.expired.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ++f.retx;
      const int shift = std::min(f.retx, 6);
      f.next_retx = now + (config_.retransmit_after << shift);
      stats_.retransmits.fetch_add(1, std::memory_order_relaxed);
      send_datagram(ep, dest, f.bytes, /*shimmable=*/true);
    }
  }
}

std::size_t UdpTransport::drain(ProcessId p, Time now,
                                std::vector<Envelope>* out) {
  Endpoint& ep = *endpoint(p);
  const MutexLock lock(&ep.mu);
  // Arrivals processed now were sent before this drain: floor them against
  // the ticks drained so far, then record `now` and release what is due.
  flush_all(ep, now);
  pump(ep, now);
  retransmit(ep, now);
  ep.drained_once = true;
  ep.last_drain_tick = std::max(ep.last_drain_tick, now);
  const std::size_t first = out->size();
  std::size_t kept = 0;
  for (Envelope& env : ep.pending) {
    if (env.deliver_after <= now)
      out->push_back(std::move(env));
    else
      ep.pending[kept++] = std::move(env);
  }
  ep.pending.resize(kept);
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(first), out->end(),
            [](const Envelope& a, const Envelope& b) { return a.id < b.id; });
  return out->size() - first;
}

std::size_t UdpTransport::close_inbox(ProcessId p) {
  Endpoint& ep = *endpoint(p);
  const MutexLock lock(&ep.mu);
  // A crashing process's already-submitted sends are in the network and
  // must still go out (the model's prefix semantics) — flush before
  // closing; service() keeps retransmitting them afterwards.
  flush_all(ep, ep.last_drain_tick);
  ep.closed = true;
  const std::size_t discarded = ep.pending.size();
  ep.pending.clear();
  return discarded;
}

void UdpTransport::service(Time now) {
  for (auto& ep : endpoints_) {
    if (ep == nullptr) continue;
    const MutexLock lock(&ep->mu);
    pump(*ep, now);
    retransmit(*ep, now);
  }
}

std::size_t UdpTransport::reap_discarded() {
  return static_cast<std::size_t>(
      discard_reap_.exchange(0, std::memory_order_acq_rel));
}

void UdpTransport::send_control(ProcessId p, std::uint16_t port,
                                const std::vector<std::uint8_t>& frame) {
  Endpoint& ep = *endpoint(p);
  const MutexLock lock(&ep.mu);
  send_datagram(ep, loopback(port), frame, /*shimmable=*/false);
}

std::size_t UdpTransport::take_control(ProcessId p,
                                       std::vector<ControlMsg>* out) {
  Endpoint& ep = *endpoint(p);
  const MutexLock lock(&ep.mu);
  pump(ep, ep.last_drain_tick);
  const std::size_t count = ep.control.size();
  for (ControlMsg& msg : ep.control) out->push_back(std::move(msg));
  ep.control.clear();
  return count;
}

UdpTransport::Stats UdpTransport::stats() const {
  Stats s;
  s.frames_sent = stats_.frames_sent.load(std::memory_order_relaxed);
  s.retransmits = stats_.retransmits.load(std::memory_order_relaxed);
  s.expired = stats_.expired.load(std::memory_order_relaxed);
  s.acks_sent = stats_.acks_sent.load(std::memory_order_relaxed);
  s.duplicates_dropped =
      stats_.duplicates_dropped.load(std::memory_order_relaxed);
  s.held_out_of_order =
      stats_.held_out_of_order.load(std::memory_order_relaxed);
  s.decode_errors = stats_.decode_errors.load(std::memory_order_relaxed);
  s.shim_dropped = stats_.shim_dropped.load(std::memory_order_relaxed);
  s.shim_duplicated = stats_.shim_duplicated.load(std::memory_order_relaxed);
  s.shim_reordered = stats_.shim_reordered.load(std::memory_order_relaxed);
  return s;
}

}  // namespace asyncgossip
