#include "lowerbound/adaptive.h"

#include <gtest/gtest.h>

#include "gossip/epidemic.h"
#include "lowerbound/probe.h"

namespace asyncgossip {
namespace {

// ---------------------------------------------------------------------------
// Isolation probe
// ---------------------------------------------------------------------------

TEST(Probe, DeterministicRunMatchesCloneBehaviour) {
  EpidemicGossipProcess p(0, make_ears_config(32, 8, 42));
  const IsolatedRun a = run_isolated(p, 0, 32, {}, 0, 10);
  const IsolatedRun b = run_isolated(p, 0, 32, {}, 0, 10);
  EXPECT_EQ(a.total_sent, b.total_sent);
  EXPECT_EQ(a.sent_to, b.sent_to);
  EXPECT_EQ(a.total_sent, 10u);  // EARS sends once per awake step
}

TEST(Probe, DoesNotPerturbTheOriginal) {
  EpidemicGossipProcess p(0, make_ears_config(32, 8, 42));
  const auto before = p.rumors();
  (void)probe_isolated_sends(p, 0, 32, {}, 0, 16, 8, 7);
  EXPECT_EQ(p.rumors(), before);
  EXPECT_EQ(p.local_steps(), 0u);
}

TEST(Probe, EstimatesEarsSendRate) {
  EpidemicGossipProcess p(0, make_ears_config(64, 16, 5));
  const IsolationProbeResult r = probe_isolated_sends(p, 0, 64, {}, 0, 20, 16, 3);
  // An awake EARS process sends exactly one message per step.
  EXPECT_NEAR(r.expected_messages, 20.0, 1e-9);
}

TEST(Probe, PerTargetProbabilitiesAreUniformish) {
  EpidemicGossipProcess p(0, make_ears_config(16, 4, 5));
  const IsolationProbeResult r =
      probe_isolated_sends(p, 0, 16, {}, 0, 8, 200, 3);
  // Pr[>= 1 of 8 uniform picks hits q] = 1 - (15/16)^8 ~ 0.40.
  for (std::size_t q = 0; q < 16; ++q)
    EXPECT_NEAR(r.send_probability[q], 0.40, 0.15);
}

TEST(Probe, SelfSendsAreLoopedBack) {
  // A lazy process that receives its own novel payload must not treat it
  // as novelty (it merges nothing new) — the loop-back path must at least
  // not crash and count the self-send.
  EpidemicGossipProcess p(2, make_ears_config(4, 1, 99));
  const IsolatedRun run = run_isolated(p, 2, 4, {}, 0, 16);
  EXPECT_EQ(run.total_sent, 16u);
}

TEST(Probe, RequiresTrials) {
  EpidemicGossipProcess p(0, make_ears_config(8, 2, 1));
  EXPECT_THROW(probe_isolated_sends(p, 0, 8, {}, 0, 4, 0, 1),
               ModelViolation);
}

// ---------------------------------------------------------------------------
// Theorem 1 construction
// ---------------------------------------------------------------------------

TEST(LowerBound, RequiresLargeEnoughF) {
  LowerBoundConfig cfg;
  cfg.spec.algorithm = GossipAlgorithm::kEars;
  cfg.spec.n = 64;
  cfg.f = 4;  // f_eff < 8
  EXPECT_THROW(run_lower_bound(cfg), ModelViolation);
}

TEST(LowerBound, EarsIsPromiscuousAndPaysCase1) {
  LowerBoundConfig cfg;
  cfg.spec.algorithm = GossipAlgorithm::kEars;
  cfg.spec.n = 256;
  cfg.spec.seed = 3;
  // A shorter shut-down phase keeps phase 1 comfortably under the t <= f
  // threshold so the probe branch (rather than kSlowPhase1) is exercised.
  cfg.spec.ears_shutdown_constant = 2.0;
  cfg.f = 64;
  const LowerBoundReport r = run_lower_bound(cfg);
  ASSERT_EQ(r.outcome, LowerBoundCase::kCase1Messages);
  // f_eff/4 promiscuous processes each expected to send >= f_eff/32 in the
  // window; EARS sends one per step, so the window yields ~ f^2/4.
  const std::uint64_t f = r.f_eff;
  EXPECT_GE(r.case1_window_messages, f * f / 8);
  EXPECT_TRUE(r.construction_ok);
  EXPECT_EQ(r.crashes_used, 0u);  // Case 1 fails nobody
}

TEST(LowerBound, Case1MessagesScaleQuadratically) {
  // n >= 256 keeps EARS' polylog phase 1 under the t <= f_eff threshold so
  // the probe branch is reached (at n = 128, f_eff = 32 the slow-phase1
  // outcome legitimately fires instead).
  std::uint64_t msgs_small = 0, msgs_large = 0;
  for (std::size_t n : {256ul, 512ul}) {
    LowerBoundConfig cfg;
    cfg.spec.algorithm = GossipAlgorithm::kEars;
    cfg.spec.n = n;
    cfg.spec.seed = 11;
    cfg.spec.ears_shutdown_constant = 2.0;
    cfg.f = n / 4;
    const LowerBoundReport r = run_lower_bound(cfg);
    ASSERT_EQ(r.outcome, LowerBoundCase::kCase1Messages);
    (n == 256 ? msgs_small : msgs_large) = r.case1_window_messages;
  }
  // f doubled => window messages ~4x (allow slack).
  EXPECT_GE(msgs_large, 3 * msgs_small);
}

class LazyCase2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazyCase2, IsolatesAMutuallySilentPair) {
  LowerBoundConfig cfg;
  cfg.spec.algorithm = GossipAlgorithm::kLazy;
  cfg.spec.lazy_fanout = 1;
  cfg.spec.n = 256;
  cfg.spec.seed = GetParam();
  cfg.f = 64;
  const LowerBoundReport r = run_lower_bound(cfg);
  ASSERT_EQ(r.outcome, LowerBoundCase::kCase2Time);
  EXPECT_NE(r.pair_p, kNoProcess);
  EXPECT_NE(r.pair_q, kNoProcess);
  EXPECT_NE(r.pair_p, r.pair_q);
  // The window must stretch for f_eff/2 local steps at delta_w spacing.
  EXPECT_GE(r.case2_window_end,
            r.phase1_end + (r.f_eff / 2) * r.case2_delta_w);
  // The crash accounting must respect the proof's budget: f/2 - 2 in S2
  // plus at most f/4 beheaded helpers.
  EXPECT_LE(r.crashes_used, cfg.f);
  if (r.construction_ok) {
    EXPECT_FALSE(r.pair_communicated);
    // The pair never exchanged rumors; the lazy cascade was beheaded, so
    // gathering is impossible: completion time is unbounded.
    EXPECT_FALSE(r.gathering_ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyCase2, ::testing::Values(1, 2, 3, 4, 5));

TEST(LowerBound, Case2ConstructionSucceedsOnMostSeeds) {
  // The proof gives success probability >= 1/8 per attempt; empirically the
  // lazy foil is far tamer. Expect a clear majority of seeds to work.
  int ok = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    LowerBoundConfig cfg;
    cfg.spec.algorithm = GossipAlgorithm::kLazy;
    cfg.spec.lazy_fanout = 1;
    // f_eff = 64 puts the promiscuity threshold (f/32 = 2) strictly above
    // lazy's one-send-per-wave rate; at f = 32 the threshold equals it and
    // the proof's Case 1 fires instead.
    cfg.spec.n = 256;
    cfg.spec.seed = seed + 100;
    cfg.f = 64;
    const LowerBoundReport r = run_lower_bound(cfg);
    if (r.outcome == LowerBoundCase::kCase2Time && r.construction_ok) ++ok;
  }
  EXPECT_GE(ok, 6);
}

TEST(LowerBound, TrivialGossipPaysCase1WithFullBlast) {
  LowerBoundConfig cfg;
  cfg.spec.algorithm = GossipAlgorithm::kTrivial;
  cfg.spec.n = 128;
  cfg.spec.seed = 5;
  cfg.f = 32;
  const LowerBoundReport r = run_lower_bound(cfg);
  ASSERT_EQ(r.outcome, LowerBoundCase::kCase1Messages);
  // Each S2 process broadcasts n messages in its first step.
  EXPECT_GE(r.case1_window_messages,
            static_cast<std::uint64_t>(r.s2_size) * cfg.spec.n / 2);
}

TEST(LowerBound, FEffCapsAtQuarterN) {
  LowerBoundConfig cfg;
  cfg.spec.algorithm = GossipAlgorithm::kEars;
  cfg.spec.n = 64;
  cfg.spec.seed = 2;
  cfg.f = 60;  // > n/4
  const LowerBoundReport r = run_lower_bound(cfg);
  EXPECT_EQ(r.f_eff, 16u);
  EXPECT_EQ(r.s2_size, 8u);
}

TEST(LowerBound, ReportsRealizedBounds) {
  LowerBoundConfig cfg;
  cfg.spec.algorithm = GossipAlgorithm::kEars;
  cfg.spec.n = 128;
  cfg.spec.seed = 9;
  cfg.f = 32;
  const LowerBoundReport r = run_lower_bound(cfg);
  EXPECT_GE(r.realized_d, 1u);
  EXPECT_GE(r.realized_delta, 1u);
  EXPECT_GT(r.total_messages, 0u);
}

}  // namespace
}  // namespace asyncgossip
