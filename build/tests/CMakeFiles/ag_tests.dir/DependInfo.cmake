
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitcomplexity.cpp" "tests/CMakeFiles/ag_tests.dir/test_bitcomplexity.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_bitcomplexity.cpp.o.d"
  "/root/repo/tests/test_bitset.cpp" "tests/CMakeFiles/ag_tests.dir/test_bitset.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_bitset.cpp.o.d"
  "/root/repo/tests/test_consensus.cpp" "tests/CMakeFiles/ag_tests.dir/test_consensus.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_consensus.cpp.o.d"
  "/root/repo/tests/test_consensus_internals.cpp" "tests/CMakeFiles/ag_tests.dir/test_consensus_internals.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_consensus_internals.cpp.o.d"
  "/root/repo/tests/test_doall.cpp" "tests/CMakeFiles/ag_tests.dir/test_doall.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_doall.cpp.o.d"
  "/root/repo/tests/test_ears.cpp" "tests/CMakeFiles/ag_tests.dir/test_ears.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_ears.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/ag_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_getcore.cpp" "tests/CMakeFiles/ag_tests.dir/test_getcore.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_getcore.cpp.o.d"
  "/root/repo/tests/test_gossip_properties.cpp" "tests/CMakeFiles/ag_tests.dir/test_gossip_properties.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_gossip_properties.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/ag_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hostile_patterns.cpp" "tests/CMakeFiles/ag_tests.dir/test_hostile_patterns.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_hostile_patterns.cpp.o.d"
  "/root/repo/tests/test_lazy.cpp" "tests/CMakeFiles/ag_tests.dir/test_lazy.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_lazy.cpp.o.d"
  "/root/repo/tests/test_lowerbound.cpp" "tests/CMakeFiles/ag_tests.dir/test_lowerbound.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_lowerbound.cpp.o.d"
  "/root/repo/tests/test_oblivious.cpp" "tests/CMakeFiles/ag_tests.dir/test_oblivious.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_oblivious.cpp.o.d"
  "/root/repo/tests/test_pushpull.cpp" "tests/CMakeFiles/ag_tests.dir/test_pushpull.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_pushpull.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/ag_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_roundrobin.cpp" "tests/CMakeFiles/ag_tests.dir/test_roundrobin.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_roundrobin.cpp.o.d"
  "/root/repo/tests/test_sears.cpp" "tests/CMakeFiles/ag_tests.dir/test_sears.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_sears.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ag_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_sync_gossip.cpp" "tests/CMakeFiles/ag_tests.dir/test_sync_gossip.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_sync_gossip.cpp.o.d"
  "/root/repo/tests/test_tears.cpp" "tests/CMakeFiles/ag_tests.dir/test_tears.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_tears.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ag_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/ag_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/ag_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ag_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/ag_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
