#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/assert.h"

namespace asyncgossip {
namespace {

TEST(Rng, SameSeedSameStream) {
  Xoshiro256SS a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256SS a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GT(differing, 60);
}

TEST(Rng, CopyReplaysFuture) {
  Xoshiro256SS a(7);
  a.next();
  a.next();
  Xoshiro256SS b = a;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformRespectsBound) {
  Xoshiro256SS rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t v = rng.uniform(bound);
      ASSERT_LT(v, bound);
    }
  }
}

TEST(Rng, UniformOneIsAlwaysZero) {
  Xoshiro256SS rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Xoshiro256SS rng(5);
  EXPECT_THROW(rng.uniform(0), ModelViolation);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Xoshiro256SS rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++histogram[rng.uniform(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_GT(histogram[b], kSamples / 10 - kSamples / 40);
    EXPECT_LT(histogram[b], kSamples / 10 + kSamples / 40);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Xoshiro256SS rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Xoshiro256SS rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256SS rng(19);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Xoshiro256SS rng(23);
  for (std::uint64_t bound : {5ULL, 16ULL, 100ULL}) {
    for (std::uint64_t k = 0; k <= bound; k += (bound / 5) + 1) {
      const auto sample = rng.sample_without_replacement(bound, k);
      ASSERT_EQ(sample.size(), k);
      std::set<std::uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (std::uint64_t v : sample) EXPECT_LT(v, bound);
    }
  }
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Xoshiro256SS rng(29);
  const auto sample = rng.sample_without_replacement(50, 50);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Rng, SampleTooManyThrows) {
  Xoshiro256SS rng(31);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ModelViolation);
}

TEST(Rng, SampleCoversRange) {
  // Every element of a small range should appear across many draws.
  Xoshiro256SS rng(37);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i)
    for (std::uint64_t v : rng.sample_without_replacement(8, 2)) seen.insert(v);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256SS a(41);
  Xoshiro256SS child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Rng, JumpChangesState) {
  Xoshiro256SS a(43), b(43);
  b.jump();
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace asyncgossip
