#include "gossip/harness.h"

#include <gtest/gtest.h>

#include "consensus/canetti_rabin.h"
#include "gossip/completion.h"
#include "lowerbound/adaptive.h"

namespace asyncgossip {
namespace {

TEST(Harness, ToStringCoversAllAlgorithms) {
  EXPECT_STREQ(to_string(GossipAlgorithm::kTrivial), "trivial");
  EXPECT_STREQ(to_string(GossipAlgorithm::kEars), "ears");
  EXPECT_STREQ(to_string(GossipAlgorithm::kSears), "sears");
  EXPECT_STREQ(to_string(GossipAlgorithm::kTears), "tears");
  EXPECT_STREQ(to_string(GossipAlgorithm::kSync), "sync");
  EXPECT_STREQ(to_string(GossipAlgorithm::kEarsNoInformedList),
               "ears-no-informed-list");
  EXPECT_STREQ(to_string(GossipAlgorithm::kLazy), "lazy");
}

TEST(Harness, ToStringCoversExchangesAndCases) {
  EXPECT_STREQ(to_string(ExchangeKind::kAllToAll), "all-to-all");
  EXPECT_STREQ(to_string(ExchangeKind::kEars), "ears");
  EXPECT_STREQ(to_string(ExchangeKind::kSears), "sears");
  EXPECT_STREQ(to_string(ExchangeKind::kTears), "tears");
  EXPECT_STREQ(to_string(LowerBoundCase::kSlowPhase1), "slow-phase1");
  EXPECT_STREQ(to_string(LowerBoundCase::kCase1Messages), "case1-messages");
  EXPECT_STREQ(to_string(LowerBoundCase::kCase2Time), "case2-time");
}

TEST(Harness, MakeProcessesRespectsN) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 17;
  spec.f = 4;
  const auto procs = make_gossip_processes(spec);
  EXPECT_EQ(procs.size(), 17u);
  for (const auto& p : procs) EXPECT_NE(p, nullptr);
}

TEST(Harness, RejectsBadSpecs) {
  GossipSpec spec;
  spec.n = 1;
  EXPECT_THROW(make_gossip_processes(spec), ModelViolation);
  spec.n = 8;
  spec.f = 8;
  EXPECT_THROW(make_gossip_processes(spec), ModelViolation);
}

TEST(Harness, DefaultBudgetScalesWithParameters) {
  GossipSpec small, big;
  small.n = 32;
  small.f = 8;
  big.n = 32;
  big.f = 8;
  big.d = 16;
  big.delta = 16;
  EXPECT_GT(default_step_budget(big), default_step_budget(small));
  GossipSpec high_f = small;
  high_f.f = 31;
  EXPECT_GT(default_step_budget(high_f), default_step_budget(small));
}

TEST(Harness, EngineMatchesSpecShape) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTrivial;
  spec.n = 12;
  spec.f = 3;
  spec.d = 5;
  spec.delta = 4;
  Engine engine = make_gossip_engine(spec);
  EXPECT_EQ(engine.n(), 12u);
  EXPECT_EQ(engine.config().d, 5u);
  EXPECT_EQ(engine.config().delta, 4u);
  EXPECT_EQ(engine.config().max_crashes, 3u);
}

TEST(Harness, GossipQuietRequiresDrainedNetwork) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTrivial;
  spec.n = 8;
  spec.f = 0;
  Engine engine = make_gossip_engine(spec);
  EXPECT_FALSE(gossip_quiet(engine));  // nobody stepped yet
  engine.run(1);
  EXPECT_FALSE(gossip_quiet(engine));  // first-step broadcasts in flight
  engine.run(20);
  EXPECT_TRUE(gossip_quiet(engine));
}

TEST(Harness, CheckMajorityThreshold) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTrivial;
  spec.n = 9;
  spec.f = 0;
  Engine engine = make_gossip_engine(spec);
  EXPECT_FALSE(check_majority(engine));  // each knows only itself
  engine.run(30);
  EXPECT_TRUE(check_majority(engine));
  EXPECT_TRUE(check_gathering(engine));
}

}  // namespace
}  // namespace asyncgossip
