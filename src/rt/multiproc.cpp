#include "rt/multiproc.h"

#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "common/bitset.h"
#include "common/rng.h"
#include "gossip/rumor.h"
#include "rt/clock.h"
#include "rt/merge.h"
#include "sim/probe.h"

extern char** environ;

namespace asyncgossip {

namespace {

using Event = TraceRecorder::Event;
using EventKind = TraceRecorder::EventKind;

/// murmur3 finalizer — must match rt/driver.cpp exactly: a worker derives
/// the same per-process rng stream as its threaded counterpart.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Worker message ids: namespaced by pid, unique across processes but not
/// dense (the merge renumbers; rt/merge.h).
MessageId worker_message_id(ProcessId p, std::uint64_t counter) {
  return (static_cast<MessageId>(p) << 40) | counter;
}

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Single-threaded capture of one worker's probe reports into its log.
class WorkerProbeSink final : public ProbeSink {
 public:
  WorkerProbeSink(RtProcessLog* log, std::size_t max_records)
      : log_(log), max_(max_records) {}

  void on_phase(Time now, ProcessId p, const char* phase) override {
    push(RtProbeRecord{true, now, p, phase, 0, 0});
  }
  void on_state(Time now, ProcessId p, std::uint64_t rumors_known,
                std::uint64_t rumors_fully_informed) override {
    push(RtProbeRecord{false, now, p, nullptr, rumors_known,
                       rumors_fully_informed});
  }

 private:
  void push(const RtProbeRecord& r) {
    if (log_->probes.size() + log_->events.size() < max_)
      log_->probes.push_back(r);
    else
      ++log_->dropped;
  }

  RtProcessLog* log_;
  std::size_t max_;
};

// --- worker trace file ----------------------------------------------------
// trace-format-v1 event lines plus `#` metadata lines the coordinator
// parses back: a summary header, the final rumor set, and probe reports.

constexpr const char* kWorkerHeaderTag = "# asyncgossip-rtworker-v1";

struct WorkerMeta {
  ProcessId worker = kNoProcess;
  bool crashed = false;
  bool quiescent = false;
  bool timed_out = false;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
  std::uint64_t steps = 0;
  /// GossipProcess::final_note() — single line, may be empty.
  std::string note;
};

bool write_worker_file(const std::string& path, const WorkerMeta& meta,
                       const DynamicBitset& rumors, const RtProcessLog& log) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << kWorkerHeaderTag << " worker " << meta.worker << " crashed "
     << (meta.crashed ? 1 : 0) << " quiescent " << (meta.quiescent ? 1 : 0)
     << " timedout " << (meta.timed_out ? 1 : 0) << " bytes " << meta.bytes
     << " dropped " << meta.dropped << " steps " << meta.steps << '\n';
  os << "# rumors " << meta.worker;
  rumors.for_each_set([&](std::size_t i) { os << ' ' << i; });
  os << '\n';
  if (!meta.note.empty()) os << "# note " << meta.note << '\n';
  for (const RtProbeRecord& r : log.probes) {
    if (r.is_phase)
      os << "# probe phase " << r.time << ' ' << r.process << ' '
         << (r.phase != nullptr ? r.phase : "?") << '\n';
    else
      os << "# probe state " << r.time << ' ' << r.process << ' '
         << r.rumors_known << ' ' << r.rumors_fully_informed << '\n';
  }
  for (const Event& e : log.events)
    os << TraceRecorder::format_event(e) << '\n';
  os.flush();
  return static_cast<bool>(os);
}

/// Interns a parsed phase string; RtProbeRecord carries `const char*`, so
/// the coordinator owns the backing storage in the result's phase_pool.
/// Linear scan: the phase vocabulary is a handful of static literals.
const char* intern_phase(MultiprocResult* res, const std::string& s) {
  for (const auto& owned : res->phase_pool)
    if (*owned == s) return owned->c_str();
  res->phase_pool.push_back(std::make_unique<std::string>(s));
  return res->phase_pool.back()->c_str();
}

bool parse_worker_file(const std::string& path, std::size_t n,
                       MultiprocResult* res, RtProcessLog* log,
                       WorkerMeta* meta, DynamicBitset* rumors,
                       std::string* error) {
  std::ifstream is(path);
  if (!is) {
    *error = "missing trace file " + path;
    return false;
  }
  bool saw_header = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(kWorkerHeaderTag, 0) == 0) {
      std::istringstream ls(line.substr(std::strlen(kWorkerHeaderTag)));
      std::string key;
      std::uint64_t worker = 0, crashed = 0, quiescent = 0, timedout = 0;
      ls >> key >> worker >> key >> crashed >> key >> quiescent >> key >>
          timedout >> key >> meta->bytes >> key >> meta->dropped >> key >>
          meta->steps;
      if (!ls || worker >= n) {
        *error = "bad worker header in " + path;
        return false;
      }
      meta->worker = static_cast<ProcessId>(worker);
      meta->crashed = crashed != 0;
      meta->quiescent = quiescent != 0;
      meta->timed_out = timedout != 0;
      saw_header = true;
    } else if (line.rfind("# rumors ", 0) == 0) {
      std::istringstream ls(line.substr(std::strlen("# rumors ")));
      std::uint64_t owner = 0;
      ls >> owner;
      (void)owner;  // redundant with the file's position in `files`
      std::uint64_t bit = 0;
      while (ls >> bit)
        if (bit < n) rumors->set(bit);
    } else if (line.rfind("# note ", 0) == 0) {
      meta->note = line.substr(std::strlen("# note "));
    } else if (line.rfind("# probe phase ", 0) == 0) {
      std::istringstream ls(line.substr(std::strlen("# probe phase ")));
      std::uint64_t t = 0, proc = 0;
      std::string phase;
      ls >> t >> proc >> phase;
      if (ls && proc < n)
        log->probes.push_back(RtProbeRecord{
            true, t, static_cast<ProcessId>(proc), intern_phase(res, phase),
            0, 0});
    } else if (line.rfind("# probe state ", 0) == 0) {
      std::istringstream ls(line.substr(std::strlen("# probe state ")));
      std::uint64_t t = 0, proc = 0, known = 0, full = 0;
      ls >> t >> proc >> known >> full;
      if (ls && proc < n)
        log->probes.push_back(RtProbeRecord{
            false, t, static_cast<ProcessId>(proc), nullptr, known, full});
    } else {
      Event e;
      const auto r = TraceRecorder::parse_line(line, &e);
      if (r == TraceRecorder::ParseResult::kEvent) {
        log->events.push_back(e);
      } else if (r == TraceRecorder::ParseResult::kError) {
        *error = "unparsable line in " + path + ": " + line;
        return false;
      }
    }
  }
  if (!saw_header) {
    *error = "no worker header in " + path + " (worker died mid-run?)";
    return false;
  }
  log->bytes = meta->bytes;
  log->dropped = meta->dropped;
  return true;
}

// --- coordinator socket helpers ------------------------------------------

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

int open_coordinator_socket(std::uint16_t* port) {
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  *port = ntohs(addr.sin_port);
  return fd;
}

void send_to(int fd, std::uint16_t port, const std::vector<std::uint8_t>& b) {
  const sockaddr_in addr = loopback_addr(port);
  (void)::sendto(fd, b.data(), b.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t got = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (got <= 0) return std::string();
  buf[got] = '\0';
  return std::string(buf);
}

}  // namespace

// --- worker ---------------------------------------------------------------

int run_rt_udp_worker(const RtConfig& config, ProcessId worker,
                      std::uint16_t coord_port, const std::string& trace_out) {
  const GossipSpec& spec = config.spec;
  if (spec.n == 0 || worker >= spec.n || coord_port == 0 || trace_out.empty())
    return 2;
  const auto n = spec.n;
  const ProcessId p = worker;
  const Time d_target = std::max<Time>(1, spec.d);
  const Time delta_target = std::max<Time>(1, spec.delta);
  const Time budget =
      spec.max_steps != 0 ? spec.max_steps : default_step_budget(spec);

  auto processes = make_gossip_processes(spec);
  auto* gp = dynamic_cast<GossipProcess*>(processes[p].get());
  AG_ASSERT_MSG(gp != nullptr, "rt runtime requires GossipProcess instances");

  UdpTransportConfig tc;
  tc.n = n;
  tc.local = {p};
  tc.faults = config.wire_faults;
  UdpTransport transport(std::move(tc));

  // Every worker computes the identical crash schedule: make_fault_plan is
  // pure in (inject, n, f, horizon, seed).
  const FaultInjector faults(
      make_fault_plan(config.inject, n, spec.f, spec.crash_horizon, spec.seed),
      d_target, delta_target);

  // --- handshake: Hello until PeerTable, then wait for Start --------------
  std::vector<std::uint8_t> hello;
  wire::encode_hello_frame(&hello, wire::HelloFrame{p});
  std::vector<UdpTransport::ControlMsg> msgs;
  bool have_table = false;
  bool started = false;
  const Stopwatch handshake_watch;
  while (!started) {
    if (!have_table) transport.send_control(p, coord_port, hello);
    sleep_ms(5);
    msgs.clear();
    transport.take_control(p, &msgs);
    for (const auto& m : msgs) {
      if (m.type == wire::FrameType::kPeerTable && !have_table) {
        wire::PeerTableFrame table;
        if (wire::decode_peer_table_frame(m.bytes.data(), m.bytes.size(),
                                          &table) == wire::DecodeError::kOk &&
            table.ports.size() == n) {
          for (ProcessId q = 0; q < n; ++q)
            if (q != p) transport.set_peer(q, table.ports[q]);
          have_table = true;
        }
      } else if (m.type == wire::FrameType::kStart && have_table) {
        started = true;
      }
    }
    if (handshake_watch.elapsed_ms() > 30000.0) return 4;
  }

  // --- step loop: the threaded worker's body, single process --------------
  const TickClock clock(config.tick_us);
  Xoshiro256SS rng(mix64(spec.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1))));
  RtProcessLog log;
  WorkerProbeSink sink(&log, config.max_events);
  const auto push_event = [&](Event e) {
    if (log.events.size() + log.probes.size() < config.max_events)
      log.events.push_back(e);
    else
      ++log.dropped;
  };

  std::vector<Envelope> received;
  Time last_tick = 0;
  bool stepped = false;
  std::uint64_t local_step = 0;
  std::uint64_t local_id = 0;
  std::uint64_t sends = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t discarded = 0;
  bool crashed = false;
  bool shutdown = false;
  bool timed_out = false;
  // Outlive the coordinator's own budget-tick deadline by a wide margin:
  // shutdown normally arrives as a frame, this is the safety net.
  const Time hard_deadline = budget * 2 + 4096;
  const Time status_every = std::max<Time>(1, 20000 / std::max<std::uint64_t>(
                                                           1, config.tick_us));
  Time next_status = 0;

  while (!shutdown) {
    if (!crashed) {
      const Time target = stepped ? last_tick + 1 + rng.uniform(delta_target)
                                  : rng.uniform(delta_target);
      clock.sleep_until_tick(target);
      Time now = clock.now_tick();
      if (stepped && now <= last_tick) now = last_tick + 1;

      received.clear();
      deliveries += transport.drain(p, now, &received);
      push_event(Event{EventKind::kStep, now, p, kNoProcess, 0, 0, 0});
      for (const Envelope& env : received)
        push_event(Event{EventKind::kDelivery, now, p, env.from, env.id,
                         env.send_time, env.deliver_after});

      StepContext ctx(p, n, local_step, received);
      ctx.attach_probe(&sink, now);
      processes[p]->step(ctx);

      auto& out = ctx.outbox();
      const bool crash_now = faults.should_crash(p, local_step);
      std::size_t keep = out.size();
      if (crash_now) keep = rng.uniform(out.size() + 1);

      for (std::size_t i = 0; i < keep; ++i) {
        StepContext::Outgoing& o = out[i];
        Envelope env;
        env.id = worker_message_id(p, local_id++);
        env.from = p;
        env.to = o.to;
        env.send_time = now;
        const Time delay = 1 + rng.uniform(d_target) + faults.extra_delay(rng);
        env.deliver_after = now + delay;
        log.bytes += o.payload ? o.payload->byte_size() : 0;
        const MessageId id = env.id;
        const ProcessId to = env.to;
        env.payload = std::move(o.payload);
        const Time stamped = transport.submit(std::move(env));
        ++sends;
        push_event(Event{EventKind::kSend, now, p, to, id, now, stamped});
      }
      transport.flush(p, now);

      ++local_step;
      last_tick = now;
      stepped = true;

      if (crash_now) {
        push_event(Event{EventKind::kCrash, now, p, kNoProcess, 0, 0, 0});
        discarded += transport.close_inbox(p);
        crashed = true;
      }
    } else {
      // Crashed: the model process is gone, but its transport endpoint
      // still acks, discards and retransmits so in-flight envelopes settle.
      clock.sleep_until_tick(clock.now_tick() + 1);
    }

    const Time now_tick = clock.now_tick();
    transport.service(now_tick);
    discarded += transport.reap_discarded();

    msgs.clear();
    transport.take_control(p, &msgs);
    for (const auto& m : msgs)
      if (m.type == wire::FrameType::kShutdown) shutdown = true;

    if (now_tick >= next_status) {
      wire::StatusFrame st;
      st.pid = p;
      st.quiescent = gp->quiescent();
      st.crashed = crashed;
      st.steps = local_step;
      st.sends = sends;
      st.deliveries = deliveries;
      st.discarded = discarded;
      std::vector<std::uint8_t> bytes;
      wire::encode_status_frame(&bytes, st);
      transport.send_control(p, coord_port, bytes);
      next_status = now_tick + status_every;
    }
    if (now_tick > hard_deadline) {
      timed_out = true;
      break;
    }
  }

  WorkerMeta meta;
  meta.worker = p;
  meta.crashed = crashed;
  meta.quiescent = gp->quiescent();
  meta.timed_out = timed_out;
  meta.bytes = log.bytes;
  meta.dropped = log.dropped;
  meta.steps = local_step;
  meta.note = gp->final_note();
  const bool wrote = write_worker_file(trace_out, meta, gp->rumors(), log);

  std::vector<std::uint8_t> bye;
  wire::encode_bye_frame(&bye, p);
  transport.send_control(p, coord_port, bye);

  if (!wrote) return 5;
  return timed_out ? 3 : 0;
}

// --- coordinator ----------------------------------------------------------

MultiprocResult run_realtime_udp(const MultiprocConfig& config) {
  MultiprocResult res;
  const RtConfig& rt = config.rt;
  const GossipSpec& spec = rt.spec;
  AG_ASSERT_MSG(spec.n > 0, "rt run needs at least one process");
  AG_ASSERT_MSG(spec.f < spec.n, "crash budget must leave a live process");
  const auto n = spec.n;
  const Time budget =
      spec.max_steps != 0 ? spec.max_steps : default_step_budget(spec);
  const Stopwatch wall;
  const auto fail = [&](const std::string& msg) { res.errors.push_back(msg); };

  std::string dir = config.work_dir;
  bool made_dir = false;
  if (dir.empty()) {
    char tmpl[] = "/tmp/asyncgossip-rt.XXXXXX";
    char* got = ::mkdtemp(tmpl);
    if (got == nullptr) {
      fail(std::string("mkdtemp: ") + std::strerror(errno));
      return res;
    }
    dir = got;
    made_dir = true;
  }

  std::uint16_t coord_port = 0;
  const int fd = open_coordinator_socket(&coord_port);
  if (fd < 0) {
    fail(std::string("coordinator socket: ") + std::strerror(errno));
    return res;
  }

  std::string exe = config.exe_path.empty() ? self_exe_path()
                                            : config.exe_path;
  if (exe.empty()) {
    fail("cannot resolve /proc/self/exe");
    ::close(fd);
    return res;
  }

  // --- spawn the workers --------------------------------------------------
  std::vector<pid_t> pids(n, -1);
  std::vector<std::string> files(n);
  for (ProcessId p = 0; p < n; ++p) {
    files[p] = dir + "/worker-" + std::to_string(p) + ".trace";
    std::vector<std::string> argv_str;
    argv_str.push_back(exe);
    for (const std::string& a : config.worker_args) argv_str.push_back(a);
    argv_str.push_back("--worker");
    argv_str.push_back(std::to_string(p));
    argv_str.push_back("--coord-port");
    argv_str.push_back(std::to_string(coord_port));
    argv_str.push_back("--trace-out");
    argv_str.push_back(files[p]);
    std::vector<char*> argv;
    argv.reserve(argv_str.size() + 1);
    for (std::string& a : argv_str) argv.push_back(a.data());
    argv.push_back(nullptr);
    const int rc = ::posix_spawn(&pids[p], exe.c_str(), nullptr, nullptr,
                                 argv.data(), environ);
    if (rc != 0) {
      fail("posix_spawn worker " + std::to_string(p) + ": " +
           std::strerror(rc));
      pids[p] = -1;
    }
  }

  // --- protocol loop ------------------------------------------------------
  std::vector<std::uint16_t> ports(n, 0);
  std::size_t ports_known = 0;
  std::vector<wire::StatusFrame> latest(n);
  std::vector<std::uint8_t> status_seen(n, 0);
  std::size_t status_count = 0;
  bool spawn_failed = false;
  for (const pid_t pid : pids) spawn_failed = spawn_failed || pid < 0;

  std::vector<std::uint8_t> table_bytes;
  std::vector<std::uint8_t> start_bytes;
  wire::encode_signal_frame(&start_bytes, wire::FrameType::kStart);

  const auto drain_socket = [&] {
    std::uint8_t buf[65536];
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    while (true) {
      src_len = sizeof(src);
      const ssize_t got =
          ::recvfrom(fd, buf, sizeof(buf), MSG_DONTWAIT,
                     reinterpret_cast<sockaddr*>(&src), &src_len);
      if (got < 0) break;
      wire::FrameType type;
      if (wire::peek_type(buf, static_cast<std::size_t>(got), &type) !=
          wire::DecodeError::kOk)
        continue;
      if (type == wire::FrameType::kHello) {
        wire::HelloFrame h;
        if (wire::decode_hello_frame(buf, static_cast<std::size_t>(got),
                                     &h) == wire::DecodeError::kOk &&
            h.pid < n && ports[h.pid] == 0) {
          ports[h.pid] = ntohs(src.sin_port);
          ++ports_known;
        }
      } else if (type == wire::FrameType::kStatus) {
        wire::StatusFrame st;
        if (wire::decode_status_frame(buf, static_cast<std::size_t>(got),
                                      &st) == wire::DecodeError::kOk &&
            st.pid < n) {
          latest[st.pid] = st;
          if (status_seen[st.pid] == 0) {
            status_seen[st.pid] = 1;
            ++status_count;
          }
        }
      }
      // kBye just drains; worker exit is confirmed by waitpid below.
    }
  };

  const auto reap_exits = [&](bool block) {
    std::size_t exited = 0;
    for (ProcessId p = 0; p < n; ++p) {
      if (pids[p] < 0) {
        ++exited;
        continue;
      }
      int st = 0;
      const pid_t got = ::waitpid(pids[p], &st, block ? 0 : WNOHANG);
      if (got == pids[p]) {
        if (!WIFEXITED(st) || WEXITSTATUS(st) != 0)
          fail("worker " + std::to_string(p) + " exited " +
               (WIFEXITED(st) ? std::to_string(WEXITSTATUS(st))
                              : std::string("on signal ") +
                                    std::to_string(WTERMSIG(st))));
        pids[p] = -1;
        ++exited;
      }
    }
    return exited;
  };

  bool completed = false;
  bool protocol_failed = spawn_failed;
  bool handshaken = false;
  if (!spawn_failed) {
    // Hello phase: learn every worker's data port from its Hello source.
    const Stopwatch hs_watch;
    while (ports_known < n) {
      drain_socket();
      sleep_ms(5);
      if (hs_watch.elapsed_ms() > 30000.0) break;
    }
    handshaken = ports_known == n;
    if (!handshaken) {
      fail("handshake timeout: " + std::to_string(ports_known) + "/" +
           std::to_string(n) + " workers joined");
      protocol_failed = true;
    }
  }

  if (handshaken) {
    wire::PeerTableFrame table;
    table.ports = ports;
    wire::encode_peer_table_frame(&table_bytes, table);

    // Start phase + quiet monitor. The run is declared quiet when two
    // status sweeps >= 100ms apart agree: every worker quiescent or
    // crashed, the network conserved (sends == deliveries + discarded),
    // and the per-worker counter vectors unchanged — steps excluded, since
    // idle stepping continues forever.
    const TickClock clock(rt.tick_us);
    std::vector<wire::StatusFrame> quiet_snapshot;
    double last_broadcast_ms = -1e9;
    double last_sweep_ms = 0.0;
    while (true) {
      drain_socket();
      const double now_ms = wall.elapsed_ms();
      if (status_count < n && now_ms - last_broadcast_ms >= 20.0) {
        // A worker with no Status yet may still lack the table or Start;
        // repeat both (duplicates are idempotent on the worker side).
        for (ProcessId p = 0; p < n; ++p) {
          send_to(fd, ports[p], table_bytes);
          send_to(fd, ports[p], start_bytes);
        }
        last_broadcast_ms = now_ms;
      }
      if (status_count == n && now_ms - last_sweep_ms >= 100.0) {
        last_sweep_ms = now_ms;
        bool quiet = true;
        std::uint64_t total_sends = 0, total_deliv = 0, total_disc = 0;
        for (ProcessId p = 0; p < n; ++p) {
          const wire::StatusFrame& st = latest[p];
          if (!st.quiescent && !st.crashed) quiet = false;
          total_sends += st.sends;
          total_deliv += st.deliveries;
          total_disc += st.discarded;
        }
        quiet = quiet && total_sends == total_deliv + total_disc;
        if (quiet) {
          bool same = quiet_snapshot.size() == n;
          for (ProcessId p = 0; same && p < n; ++p)
            same = quiet_snapshot[p].sends == latest[p].sends &&
                   quiet_snapshot[p].deliveries == latest[p].deliveries &&
                   quiet_snapshot[p].discarded == latest[p].discarded &&
                   quiet_snapshot[p].crashed == latest[p].crashed;
          if (same) {
            completed = true;
            break;
          }
          quiet_snapshot = latest;
        } else {
          quiet_snapshot.clear();
        }
      }
      if (reap_exits(/*block=*/false) > 0) {
        fail("a worker exited before shutdown");
        protocol_failed = true;
        break;
      }
      if (clock.now_tick() >= budget) break;  // honest timeout, like rt
      sleep_ms(2);
    }
  }

  // --- shutdown -----------------------------------------------------------
  std::vector<std::uint8_t> shutdown_bytes;
  wire::encode_signal_frame(&shutdown_bytes, wire::FrameType::kShutdown);
  const Stopwatch bye_watch;
  while (true) {
    if (handshaken)
      for (ProcessId p = 0; p < n; ++p)
        if (pids[p] >= 0) send_to(fd, ports[p], shutdown_bytes);
    drain_socket();
    std::size_t exited = reap_exits(/*block=*/false);
    if (exited == n) break;
    if (bye_watch.elapsed_ms() > 10000.0) {
      for (ProcessId p = 0; p < n; ++p)
        if (pids[p] >= 0) {
          fail("worker " + std::to_string(p) + " unresponsive; killed");
          ::kill(pids[p], SIGKILL);
        }
      reap_exits(/*block=*/true);
      protocol_failed = true;
      break;
    }
    sleep_ms(20);
  }
  ::close(fd);

  // --- parse + merge ------------------------------------------------------
  std::vector<RtProcessLog> logs(n);
  std::vector<std::uint8_t> crashed(n, 0);
  std::vector<DynamicBitset> rumors;
  rumors.reserve(n);
  for (ProcessId p = 0; p < n; ++p) rumors.emplace_back(n);
  std::vector<std::uint8_t> quiescent(n, 0);
  bool parse_ok = true;
  res.run.notes.resize(n);
  res.run.crashed.assign(n, false);
  for (ProcessId p = 0; p < n; ++p) {
    WorkerMeta meta;
    std::string error;
    if (!parse_worker_file(files[p], n, &res, &logs[p], &meta, &rumors[p],
                           &error)) {
      fail(error);
      parse_ok = false;
      continue;
    }
    if (meta.worker != p) {
      fail("worker file " + files[p] + " claims id " +
           std::to_string(meta.worker));
      parse_ok = false;
      continue;
    }
    crashed[p] = meta.crashed ? 1 : 0;
    quiescent[p] = meta.quiescent ? 1 : 0;
    res.run.notes[p] = meta.note;
    res.run.crashed[p] = meta.crashed;
    if (meta.timed_out) {
      fail("worker " + std::to_string(p) + " hit its hard deadline");
      protocol_failed = true;
    }
  }

  merge_rt_logs(n, std::move(logs), crashed, &res.run);
  res.workers_ok = !protocol_failed && parse_ok && res.errors.empty();
  res.run.outcome.completed = completed && res.workers_ok;
  res.run.outcome.wall_ms = wall.elapsed_ms();

  // Gossip property checks, from the workers' reported final rumor sets.
  DynamicBitset correct(n);
  for (ProcessId p = 0; p < n; ++p)
    if (crashed[p] == 0) correct.set(p);
  const std::size_t need = n / 2 + 1;
  res.run.outcome.gathering_ok = parse_ok;
  res.run.outcome.majority_ok = parse_ok;
  for (ProcessId p = 0; parse_ok && p < n; ++p) {
    if (crashed[p] != 0) continue;
    if (!correct.subset_of(rumors[p])) res.run.outcome.gathering_ok = false;
    if (rumors[p].count() < need) res.run.outcome.majority_ok = false;
  }

  if (!config.keep_files) {
    for (const std::string& f : files) (void)std::remove(f.c_str());
    if (made_dir) (void)::rmdir(dir.c_str());
  }
  return res;
}

}  // namespace asyncgossip
