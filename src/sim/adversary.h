// Adversary interface: the entity that controls scheduling, crashes and
// message delays.
//
// The paper distinguishes two adversary classes:
//  * an *oblivious* adversary fixes the schedule and failure pattern in
//    advance — see ObliviousAdversary in sim/oblivious.h, which never
//    receives an EngineView and therefore cannot react to the algorithm;
//  * an *adaptive* adversary reacts to the execution, including the
//    processes' random choices — it receives a full EngineView and may fork
//    process state to probe distributions (see src/lowerbound).
#pragma once

#include <memory>
#include <vector>

#include "common/function_ref.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/process.h"
#include "sim/types.h"

namespace asyncgossip {

class Engine;

/// Read access to the full execution state, granted to adaptive adversaries
/// (and to analysis/monitor code). Obliviousness is enforced structurally:
/// oblivious adversaries never see this type.
class EngineView {
 public:
  explicit EngineView(const Engine& engine) : engine_(&engine) {}

  std::size_t n() const;
  Time now() const;
  bool crashed(ProcessId p) const;
  std::size_t alive_count() const;
  std::size_t crash_budget_left() const;
  const Process& process(ProcessId p) const;
  const Metrics& metrics() const;
  std::size_t in_flight_count() const;
  /// In-flight messages destined to p, in send order. Materializes a copy;
  /// prefer for_each_pending / pending_count when a copy is not needed.
  std::vector<Envelope> pending_for(ProcessId p) const;
  /// Number of in-flight messages destined to p.
  std::size_t pending_count(ProcessId p) const;
  /// Visits every in-flight message destined to p without copying. `fn`
  /// returns true to keep iterating, false to stop early. Visit order is
  /// deterministic for a fixed execution but is not send order.
  void for_each_pending(ProcessId p,
                        FunctionRef<bool(const Envelope&)> fn) const;
  /// Local step count taken by p so far.
  std::uint64_t local_steps_of(ProcessId p) const;
  /// Deep copy of a process (state + RNG): the adaptive adversary's
  /// world-forking primitive.
  std::unique_ptr<Process> fork_process(ProcessId p) const;

 private:
  const Engine* engine_;
};

/// Per-time-step adversarial decision.
struct StepDecision {
  /// Processes that crash at the start of this step (before stepping).
  /// The engine enforces the global budget of at most f crashes.
  std::vector<ProcessId> crash;
  /// Processes scheduled to take a local step. The engine additionally
  /// force-schedules any live process whose delta deadline has arrived, so
  /// the model contract holds regardless of the adversary.
  std::vector<ProcessId> schedule;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Called once at the start of every global time step.
  virtual StepDecision decide(Time now, const EngineView& view) = 0;

  /// Called when a message is sent; returns the delay (in steps) before the
  /// message becomes deliverable. The engine clamps the result into
  /// [1, d], so no adversary can violate the execution's delivery bound.
  virtual Time message_delay(const Envelope& env, const EngineView& view) = 0;
};

}  // namespace asyncgossip
