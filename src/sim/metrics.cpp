#include "sim/metrics.h"

#include <algorithm>

namespace asyncgossip {

void Metrics::record_send(ProcessId from, Time now,
                          std::size_t payload_bytes) {
  ++messages_sent_;
  bytes_sent_ += payload_bytes;
  ++per_process_sent_[from];
  last_send_time_ = now;
  any_send_ = true;
}

void Metrics::record_delivery(ProcessId to, Time send_time, Time prev_step,
                              Time now) {
  ++messages_delivered_;
  ++per_process_received_[to];
  Time witnessed = 1;
  if (prev_step != kTimeMax && prev_step > send_time)
    witnessed = prev_step - send_time + 1;
  witnessed = std::min(witnessed, now - send_time);
  realized_d_ = std::max(realized_d_, witnessed);
}

void Metrics::record_gap(Time gap) {
  realized_delta_ = std::max(realized_delta_, gap);
}

void Metrics::record_local_step() { ++local_steps_; }

void Metrics::record_crash() { ++crashes_; }

void Metrics::record_in_flight(std::size_t in_flight) {
  max_in_flight_ = std::max(max_in_flight_, in_flight);
}

}  // namespace asyncgossip
