#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace asyncgossip {

Summary summarize(std::vector<double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  s.min = sample.front();
  s.max = sample.back();
  const std::size_t n = sample.size();
  s.median = (n % 2 == 1) ? sample[n / 2]
                          : 0.5 * (sample[n / 2 - 1] + sample[n / 2]);
  double sum = 0.0;
  for (double v : sample) sum += v;
  s.mean = sum / static_cast<double>(n);
  if (n > 1) {
    double ss = 0.0;
    for (double v : sample) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return s;
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  AG_ASSERT_MSG(x.size() == y.size() && x.size() >= 2,
                "linear_fit needs >= 2 paired points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  AG_ASSERT_MSG(denom != 0.0, "linear_fit: degenerate x values");
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    f.r2 = 1.0;  // constant y: any horizontal line is a perfect fit
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (f.slope * x[i] + f.intercept);
      ss_res += e * e;
    }
    f.r2 = 1.0 - ss_res / ss_tot;
  }
  return f;
}

PowerFit power_fit(const std::vector<double>& x, const std::vector<double>& y) {
  AG_ASSERT_MSG(x.size() == y.size() && x.size() >= 2,
                "power_fit needs >= 2 paired points");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    AG_ASSERT_MSG(x[i] > 0.0 && y[i] > 0.0, "power_fit needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit f = linear_fit(lx, ly);
  return PowerFit{f.slope, std::exp(f.intercept), f.r2};
}

}  // namespace asyncgossip
