// Theorem 1 narrated: watch the adaptive adversary dismantle two rumor-
// spreading strategies (Figure 1 of the paper, as an execution).
//
//   $ ./adversary_demo [f] [seed]
//
// EARS keeps transmitting until its informed-list says everyone was served,
// so its isolated processes are *promiscuous* — the adversary schedules
// them into a void and collects Omega(f^2) wasted messages (Case 1).
// A frugal cascading protocol sends almost nothing when isolated — the
// adversary finds two processes that won't contact each other, beheads
// every process they do contact, and stretches their steps: gossip cannot
// complete before Omega(f (d + delta)) (Case 2).
#include <cstdio>
#include <cstdlib>

#include "lowerbound/adaptive.h"

using namespace asyncgossip;

namespace {

void narrate(const char* title, const LowerBoundReport& r) {
  std::printf("=== %s ===\n", title);
  std::printf("  n=%zu, f_eff=%zu, S2 = last %zu processes\n", r.n, r.f_eff,
              r.s2_size);
  std::printf("  phase 1: S1 ran alone at d=delta=1, quiet at t=%llu\n",
              static_cast<unsigned long long>(r.phase1_end));
  std::printf("  probe:   %zu of %zu S2 processes are promiscuous "
              "(E[sends] >= f/32 when isolated)\n",
              r.promiscuous_count, r.s2_size);
  switch (r.outcome) {
    case LowerBoundCase::kCase1Messages:
      std::printf("  CASE 1:  scheduled S2 into a void for f/2 steps\n");
      std::printf("           wasted messages in window: %llu  (f^2 = %zu)\n",
                  static_cast<unsigned long long>(r.case1_window_messages),
                  r.f_eff * r.f_eff);
      break;
    case LowerBoundCase::kCase2Time:
      std::printf("  CASE 2:  isolated the mutually-silent pair (%u, %u), "
                  "delta_w=%llu\n",
                  r.pair_p, r.pair_q,
                  static_cast<unsigned long long>(r.case2_delta_w));
      std::printf("           beheaded %zu contacted helpers; pair %s\n",
                  r.s1_crashes,
                  r.pair_communicated ? "slipped a message through (rare)"
                                      : "never communicated");
      std::printf("           window ran to t=%llu; gathering %s\n",
                  static_cast<unsigned long long>(r.case2_window_end),
                  r.gathering_ok
                      ? "eventually succeeded after release"
                      : "NEVER completed — unbounded completion time");
      break;
    case LowerBoundCase::kSlowPhase1:
      std::printf("  SLOW:    the protocol itself needed > f steps at "
                  "d=delta=1; nothing to attack\n");
      break;
  }
  std::printf("  totals:  %llu messages, completion stamp %llu, "
              "%zu crashes used, construction %s\n\n",
              static_cast<unsigned long long>(r.total_messages),
              static_cast<unsigned long long>(r.completion_time),
              r.crashes_used, r.construction_ok ? "ok" : "failed (retry seed)");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t f = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  LowerBoundConfig ears;
  ears.spec.algorithm = GossipAlgorithm::kEars;
  ears.spec.n = 4 * f;
  ears.spec.seed = seed;
  ears.spec.ears_shutdown_constant = 2.0;
  ears.f = f;
  narrate("EARS vs adaptive adversary (expect Case 1)", run_lower_bound(ears));

  LowerBoundConfig lazy;
  lazy.spec.algorithm = GossipAlgorithm::kLazy;
  lazy.spec.lazy_fanout = 1;
  lazy.spec.n = 4 * f;
  lazy.spec.seed = seed;
  lazy.f = f;
  narrate("Lazy cascading gossip vs adaptive adversary (expect Case 2)",
          run_lower_bound(lazy));

  std::printf("Theorem 1: either Omega(n + f^2) messages or "
              "Omega(f(d+delta)) time. Pick your poison.\n");
  return 0;
}
