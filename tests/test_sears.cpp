#include <gtest/gtest.h>

#include "common/assert.h"

#include <cmath>
#include <set>

#include "gossip/epidemic.h"
#include "gossip/harness.h"

namespace asyncgossip {
namespace {

TEST(SearsConfig, FanoutFormula) {
  const EpidemicConfig cfg = make_sears_config(256, 64, 0.5, 1, 1.0);
  const double expected = std::ceil(std::sqrt(256.0) * std::log(256.0));
  EXPECT_EQ(cfg.fanout, static_cast<std::size_t>(expected));
  EXPECT_EQ(cfg.shutdown_steps, 1u);
}

TEST(SearsConfig, FanoutClampedToN) {
  const EpidemicConfig cfg = make_sears_config(8, 2, 0.9, 1, 100.0);
  EXPECT_EQ(cfg.fanout, 8u);
}

TEST(SearsConfig, FanoutGrowsWithEpsilon) {
  const auto lo = make_sears_config(1024, 256, 0.25, 1);
  const auto hi = make_sears_config(1024, 256, 0.75, 1);
  EXPECT_GT(hi.fanout, lo.fanout);
}

TEST(SearsConfig, RejectsBadEpsilon) {
  EXPECT_THROW(make_sears_config(64, 16, 0.0, 1), ModelViolation);
  EXPECT_THROW(make_sears_config(64, 16, 1.0, 1), ModelViolation);
  EXPECT_THROW(make_sears_config(64, 16, -0.5, 1), ModelViolation);
}

TEST(Sears, SendsFanoutDistinctTargetsPerStep) {
  const EpidemicConfig cfg = make_sears_config(64, 16, 0.5, 5);
  EpidemicGossipProcess p(0, cfg);
  std::vector<Envelope> empty;
  StepContext ctx(0, 64, 0, empty);
  p.step(ctx);
  ASSERT_EQ(ctx.outbox().size(), cfg.fanout);
  std::set<ProcessId> targets;
  for (const auto& o : ctx.outbox()) targets.insert(o.to);
  EXPECT_EQ(targets.size(), cfg.fanout);  // distinct
}

TEST(Sears, SharesOnePayloadAcrossBatch) {
  const EpidemicConfig cfg = make_sears_config(64, 16, 0.5, 5);
  EpidemicGossipProcess p(0, cfg);
  std::vector<Envelope> empty;
  StepContext ctx(0, 64, 0, empty);
  p.step(ctx);
  ASSERT_GE(ctx.outbox().size(), 2u);
  EXPECT_EQ(ctx.outbox()[0].payload.get(), ctx.outbox()[1].payload.get());
}

TEST(Sears, FasterButChattierThanEars) {
  GossipSpec ears, sears;
  ears.algorithm = GossipAlgorithm::kEars;
  sears.algorithm = GossipAlgorithm::kSears;
  for (GossipSpec* s : {&ears, &sears}) {
    s->n = 128;
    s->f = 32;
    s->d = 2;
    s->delta = 2;
    s->schedule = SchedulePattern::kStaggered;
    s->seed = 9;
  }
  const GossipOutcome oe = run_gossip_spec(ears);
  const GossipOutcome os = run_gossip_spec(sears);
  ASSERT_TRUE(oe.completed && os.completed);
  ASSERT_TRUE(oe.gathering_ok && os.gathering_ok);
  EXPECT_LT(os.completion_time, oe.completion_time);
  EXPECT_GT(os.messages, oe.messages);
}

// Time complexity claim: constant w.r.t. n (for fixed f/n, d, delta). The
// completion time should stay within a narrow band as n quadruples.
TEST(Sears, CompletionTimeRoughlyConstantInN) {
  std::vector<double> times;
  for (std::size_t n : {64ul, 128ul, 256ul}) {
    GossipSpec spec;
    spec.algorithm = GossipAlgorithm::kSears;
    spec.n = n;
    spec.f = n / 4;
    spec.d = 2;
    spec.delta = 2;
    spec.schedule = SchedulePattern::kStaggered;
    spec.seed = 17;
    const GossipOutcome out = run_gossip_spec(spec);
    ASSERT_TRUE(out.completed);
    times.push_back(static_cast<double>(out.completion_time));
  }
  // Allow slack for constants; rule out linear growth (4x over the sweep).
  EXPECT_LT(times.back(), times.front() * 3.0);
}

}  // namespace
}  // namespace asyncgossip
