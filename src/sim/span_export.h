// Exporters for flight-recorder records (common/flight_recorder.h).
//
// Two artifact formats:
//   - The raw flight log ("asyncgossip flight v1"): a line-oriented text
//     dump of the recorded send/deliver/zone records plus a model header,
//     written by `gossiplab rt --spans` and read back by `gossiplab spans`.
//     Like trace-format-v1 it is diff-friendly and append-ordered.
//   - Chrome trace-event JSON ("asyncgossip-spans-v1"): loadable directly
//     in Perfetto (ui.perfetto.dev) or chrome://tracing. Send→deliver pairs
//     become async "b"/"e" span events keyed by message id; profiling zones
//     become complete "X" slices on the recording actor's track. Schema
//     details in docs/OBSERVABILITY.md.
//
// summarize_spans computes the per-message delivery wall-latency
// percentiles (p50/p95/p99) `gossiplab spans` prints next to the realized
// d+δ budget — the paper's bounds are about exactly this distribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/flight_recorder.h"

namespace asyncgossip {

/// Run context carried by the flight log header and echoed into the
/// exported trace's otherData.
struct FlightLogHeader {
  std::uint64_t n = 0;
  std::uint64_t tick_us = 0;
  std::uint64_t realized_d = 0;
  std::uint64_t realized_delta = 0;
  /// Ring records lost to overwriting during the run (the log is a sample,
  /// not a complete record, when this is nonzero).
  std::uint64_t dropped = 0;
};

/// Writes the "asyncgossip flight v1" text log.
void write_flight_log(std::ostream& os, const FlightLogHeader& header,
                      const std::vector<FlightRecord>& records);

/// Parses a flight log. Returns false (with a one-line description in
/// *error when non-null) on malformed input; *header / *records are only
/// valid on success.
bool read_flight_log(std::istream& is, FlightLogHeader* header,
                     std::vector<FlightRecord>* records,
                     std::string* error = nullptr);

/// Writes the "asyncgossip-spans-v1" Chrome trace-event JSON document.
/// Timestamps are microseconds relative to the earliest record, so the
/// trace opens at t=0 in Perfetto.
void write_chrome_trace(std::ostream& os, const FlightLogHeader& header,
                        const std::vector<FlightRecord>& records);

/// Per-zone aggregate over a record set.
struct ZoneTotal {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

/// Latency and zone summary for `gossiplab spans` and the tests'
/// spans↔Metrics cross-checks. Percentiles are nearest-rank over the
/// paired send→deliver wall latencies.
struct SpanSummary {
  std::size_t sends = 0;
  std::size_t delivers = 0;
  /// Messages with both ends recorded (pairs are keyed by message id).
  std::size_t paired = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::vector<ZoneTotal> zones;  // only zones that occurred, in id order
};

SpanSummary summarize_spans(const std::vector<FlightRecord>& records);

}  // namespace asyncgossip
