#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.h"

namespace asyncgossip {
namespace {

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingle) {
  const Summary s = summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummarizeKnownSample) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, MedianOdd) {
  const Summary s = summarize({9.0, 1.0, 5.0});
  EXPECT_EQ(s.median, 5.0);
}

TEST(Stats, LinearFitExactLine) {
  const LinearFit f = linear_fit({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitConstantY) {
  const LinearFit f = linear_fit({1, 2, 3}, {5, 5, 5});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_EQ(f.r2, 1.0);
}

TEST(Stats, LinearFitNoisy) {
  const LinearFit f = linear_fit({1, 2, 3, 4, 5}, {2.1, 3.9, 6.2, 7.8, 10.1});
  EXPECT_NEAR(f.slope, 2.0, 0.15);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Stats, LinearFitNeedsTwoPoints) {
  EXPECT_THROW(linear_fit({1}, {2}), ModelViolation);
  EXPECT_THROW(linear_fit({1, 2}, {2}), ModelViolation);
}

TEST(Stats, LinearFitDegenerateX) {
  EXPECT_THROW(linear_fit({3, 3, 3}, {1, 2, 3}), ModelViolation);
}

TEST(Stats, PowerFitExact) {
  // y = 3 x^1.5
  std::vector<double> x{1, 2, 4, 8, 16}, y;
  for (double v : x) y.push_back(3.0 * std::pow(v, 1.5));
  const PowerFit f = power_fit(x, y);
  EXPECT_NEAR(f.exponent, 1.5, 1e-9);
  EXPECT_NEAR(f.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, PowerFitQuadratic) {
  std::vector<double> x{8, 16, 32, 64, 128}, y;
  for (double v : x) y.push_back(v * v);
  const PowerFit f = power_fit(x, y);
  EXPECT_NEAR(f.exponent, 2.0, 1e-9);
}

TEST(Stats, PowerFitRejectsNonPositive) {
  EXPECT_THROW(power_fit({0.0, 1.0}, {1.0, 2.0}), ModelViolation);
  EXPECT_THROW(power_fit({1.0, 2.0}, {-1.0, 2.0}), ModelViolation);
}

}  // namespace
}  // namespace asyncgossip
