// The Theorem 1 adaptive adversary, as an executable construction.
//
// Strategy (paper Section 2, Figure 1), for f_eff = min(f, n/4):
//
//   Phase 1   Split [n] into S1 (first n - f_eff/2 processes) and S2 (the
//             rest). Run only S1, lock-step, all delays 1, until every S1
//             process is quiescent with an empty mailbox. Call that time t.
//             If t > f_eff: crash all of S2 and finish the S1-only
//             execution — it has d = delta = 1 and completion time > f_eff,
//             i.e. T = Omega(f (d + delta))  [outcome kSlowPhase1].
//
//   Probe     For each p in S2, Monte-Carlo the distribution of p's sends
//             over f_eff/2 isolated local steps after receiving its pending
//             S1 messages (see lowerbound/probe.h). p is *promiscuous* if
//             its expected send count is >= f_eff/32.
//
//   Case 1    If >= f_eff/4 of S2 are promiscuous: schedule all of S2 for
//             f_eff/2 further steps, delaying all their outbound messages
//             past the window. The promiscuous processes pour out
//             Omega(f^2) messages for nothing  [outcome kCase1Messages].
//
//   Case 2    Otherwise: from the probe, find non-promiscuous p, q that
//             each message the other with probability < 1/4 (the proof's
//             counting argument guarantees such a pair). Crash the rest of
//             S2; run p and q for f_eff/2 local steps, one step every
//             delta_w = max(t, 1) global steps, delivering with delay 1 and
//             crashing every S1 process that p or q contacts before it can
//             reply. With constant probability p and q never communicate,
//             so gossip cannot complete before t + (f_eff/2) * delta_w =
//             Omega(f (d + delta))  [outcome kCase2Time].
//
// After the decisive window the driver releases the system to a benign
// schedule and runs to quiescence, so every report carries the *measured*
// end-to-end message count and completion time of a legal execution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "gossip/harness.h"
#include "sim/adversary.h"

namespace asyncgossip {

/// An adaptive adversary whose behaviour is a pair of std::functions the
/// lower-bound driver swaps between phases. Also reusable for custom
/// adaptive schedules in tests.
class ScriptedAdversary final : public Adversary {
 public:
  using DecideFn = std::function<StepDecision(Time, const EngineView&)>;
  using DelayFn = std::function<Time(const Envelope&, const EngineView&)>;

  ScriptedAdversary();

  StepDecision decide(Time now, const EngineView& view) override {
    return decide_(now, view);
  }
  Time message_delay(const Envelope& env, const EngineView& view) override {
    return delay_(env, view);
  }

  void set_decide(DecideFn fn) { decide_ = std::move(fn); }
  void set_delay(DelayFn fn) { delay_ = std::move(fn); }

  /// Benign behaviour: schedule every live process, delay 1, no crashes.
  void set_benign();

 private:
  DecideFn decide_;
  DelayFn delay_;
};

enum class LowerBoundCase {
  kSlowPhase1,     // t > f_eff: the algorithm is slow even at d = delta = 1
  kCase1Messages,  // promiscuous majority: Omega(f^2) wasted messages
  kCase2Time,      // isolated pair: completion after Omega(f (d + delta))
};

const char* to_string(LowerBoundCase c);

struct LowerBoundConfig {
  /// Algorithm under attack (n, algorithm and its knobs are used; the
  /// spec's own adversary fields are ignored — the adaptive adversary
  /// replaces them).
  GossipSpec spec;
  /// Requested tolerance f; the construction uses f_eff = min(f, n/4) as
  /// in the proof. Needs f_eff >= 8.
  std::size_t f = 0;
  std::size_t probe_trials = 24;
  /// Step budget for the post-window benign run (0 = automatic).
  Time finish_budget = 0;
};

struct LowerBoundReport {
  LowerBoundCase outcome = LowerBoundCase::kSlowPhase1;
  std::size_t n = 0;
  std::size_t f_eff = 0;
  std::size_t s2_size = 0;

  Time phase1_end = 0;  // t
  std::size_t promiscuous_count = 0;

  // Case 1.
  std::uint64_t case1_window_messages = 0;  // sent by S2 inside the window

  // Case 2.
  ProcessId pair_p = kNoProcess;
  ProcessId pair_q = kNoProcess;
  Time case2_delta_w = 0;
  Time case2_window_end = 0;
  bool pair_communicated = false;   // probabilistic failure event (<= 7/16)
  bool crash_budget_exceeded = false;
  std::size_t s1_crashes = 0;

  // Whole-execution measurements (after the benign release).
  bool completed = false;
  /// Whether the gathering property held once the system went quiet. A
  /// protocol that goes silent without it (e.g. the lazy foil with its
  /// cascade beheaded) has *unbounded* completion time — stronger than the
  /// reported lower bound.
  bool gathering_ok = false;
  Time completion_time = 0;
  std::uint64_t total_messages = 0;
  Time realized_d = 0;
  Time realized_delta = 0;
  std::size_t crashes_used = 0;

  /// True when the probabilistic construction worked on this seed (always
  /// true for kSlowPhase1 / kCase1Messages).
  bool construction_ok = true;
};

LowerBoundReport run_lower_bound(const LowerBoundConfig& config);

}  // namespace asyncgossip
