#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "lowerbound/adaptive.h"  // ScriptedAdversary
#include "sim/oblivious.h"

namespace asyncgossip {
namespace {

struct PingPayload final : Payload {
  int tag = 0;
};

/// Test process: records every delivery, and sends according to a simple
/// script: on local step s, send `sends_per_step` messages to `target`.
class RecorderProcess final : public Process {
 public:
  RecorderProcess(ProcessId id, ProcessId target, int sends_per_step,
                  std::uint64_t stop_after_steps = kTimeMax)
      : id_(id),
        target_(target),
        sends_per_step_(sends_per_step),
        stop_after_(stop_after_steps) {}

  void step(StepContext& ctx) override {
    for (const Envelope& env : ctx.received()) {
      deliveries.push_back(env);
    }
    if (steps_ < stop_after_) {
      for (int i = 0; i < sends_per_step_; ++i) {
        auto payload = std::make_shared<PingPayload>();
        payload->tag = static_cast<int>(steps_);
        ctx.send(target_, payload);
      }
    }
    ++steps_;
    last_local_step_seen_ = ctx.local_step();
  }

  std::unique_ptr<Process> clone() const override {
    return std::make_unique<RecorderProcess>(*this);
  }
  void reseed(std::uint64_t) override {}

  std::vector<Envelope> deliveries;
  std::uint64_t steps_ = 0;
  std::uint64_t last_local_step_seen_ = 0;

 private:
  ProcessId id_;
  ProcessId target_;
  int sends_per_step_;
  std::uint64_t stop_after_;
};

std::vector<std::unique_ptr<Process>> two_senders(int sends_per_step = 1) {
  std::vector<std::unique_ptr<Process>> v;
  v.push_back(std::make_unique<RecorderProcess>(0, 1, sends_per_step));
  v.push_back(std::make_unique<RecorderProcess>(1, 0, sends_per_step));
  return v;
}

std::unique_ptr<ScriptedAdversary> benign() {
  return std::make_unique<ScriptedAdversary>();
}

TEST(Engine, RejectsBadConfig) {
  EngineConfig cfg;
  cfg.d = 0;
  EXPECT_THROW(Engine(two_senders(), benign(), cfg), ApiError);
  cfg = EngineConfig{};
  cfg.max_crashes = 2;  // f < n violated (n = 2)
  EXPECT_THROW(Engine(two_senders(), benign(), cfg), ApiError);
  EXPECT_THROW(Engine({}, benign(), EngineConfig{}), ApiError);
  EXPECT_THROW(Engine(two_senders(), nullptr, EngineConfig{}), ApiError);
}

TEST(Engine, DeliversWithDelayOne) {
  Engine e(two_senders(), benign(), EngineConfig{});
  e.run(3);
  // Step 0: both send. Step 1: both deliver the step-0 message and send
  // again. Step 2: deliver step-1 messages.
  const auto& p0 = dynamic_cast<const RecorderProcess&>(e.process(0));
  ASSERT_EQ(p0.deliveries.size(), 2u);
  EXPECT_EQ(p0.deliveries[0].send_time, 0u);
  EXPECT_EQ(p0.deliveries[0].from, 1u);
  EXPECT_EQ(e.metrics().messages_sent(), 6u);
  EXPECT_EQ(e.metrics().messages_delivered(), 4u);
}

TEST(Engine, NoSameStepRelay) {
  // A message sent at step t must never be delivered at step t.
  Engine e(two_senders(), benign(), EngineConfig{});
  e.run(5);
  const auto& p0 = dynamic_cast<const RecorderProcess&>(e.process(0));
  for (const Envelope& env : p0.deliveries) {
    EXPECT_GE(env.deliver_after, env.send_time + 1);
  }
}

TEST(Engine, DelayClampedToD) {
  auto adv = benign();
  adv->set_delay([](const Envelope&, const EngineView&) {
    return Time{1000};  // far beyond d
  });
  EngineConfig cfg;
  cfg.d = 3;
  Engine e(two_senders(), std::move(adv), cfg);
  e.run(10);
  const auto& p0 = dynamic_cast<const RecorderProcess&>(e.process(0));
  ASSERT_FALSE(p0.deliveries.empty());
  for (const Envelope& env : p0.deliveries)
    EXPECT_LE(env.deliver_after, env.send_time + 3);
}

TEST(Engine, DeltaDeadlineForcesScheduling) {
  // Adversary schedules nobody; the engine must still step every live
  // process at least once per delta window.
  auto adv = benign();
  adv->set_decide([](Time, const EngineView&) { return StepDecision{}; });
  EngineConfig cfg;
  cfg.delta = 4;
  Engine e(two_senders(), std::move(adv), cfg);
  e.run(17);
  const auto& p0 = dynamic_cast<const RecorderProcess&>(e.process(0));
  // Forced at times 3, 7, 11, 15.
  EXPECT_EQ(p0.steps_, 4u);
  EXPECT_LE(e.metrics().realized_delta(), 4u);
}

TEST(Engine, StrictModeThrowsOnDeltaViolation) {
  auto adv = benign();
  adv->set_decide([](Time, const EngineView&) { return StepDecision{}; });
  EngineConfig cfg;
  cfg.delta = 2;
  cfg.strict = true;
  Engine e(two_senders(), std::move(adv), cfg);
  EXPECT_THROW(e.run(5), ModelViolation);
}

TEST(Engine, CrashBudgetEnforced) {
  auto adv = benign();
  adv->set_decide([](Time now, const EngineView& view) {
    StepDecision d;
    if (now == 0) d.crash.push_back(0);
    for (ProcessId p = 0; p < view.n(); ++p)
      if (!view.crashed(p)) d.schedule.push_back(p);
    return d;
  });
  EngineConfig cfg;  // max_crashes = 0
  Engine e(two_senders(), std::move(adv), cfg);
  EXPECT_THROW(e.run(1), ModelViolation);
}

TEST(Engine, CrashedProcessNeverSteps) {
  auto adv = benign();
  adv->set_decide([](Time now, const EngineView& view) {
    StepDecision d;
    if (now == 2) d.crash.push_back(1);
    for (ProcessId p = 0; p < view.n(); ++p)
      if (!view.crashed(p)) d.schedule.push_back(p);
    return d;
  });
  EngineConfig cfg;
  cfg.max_crashes = 1;
  Engine e(two_senders(), std::move(adv), cfg);
  e.run(10);
  EXPECT_TRUE(e.crashed(1));
  EXPECT_EQ(e.alive_count(), 1u);
  const auto& p1 = dynamic_cast<const RecorderProcess&>(e.process(1));
  EXPECT_EQ(p1.steps_, 2u);  // stepped at 0 and 1 only
}

TEST(Engine, MessagesToCrashedProcessAreDropped) {
  auto adv = benign();
  adv->set_decide([](Time now, const EngineView& view) {
    StepDecision d;
    if (now == 0) d.crash.push_back(1);
    for (ProcessId p = 0; p < view.n(); ++p)
      if (!view.crashed(p)) d.schedule.push_back(p);
    return d;
  });
  EngineConfig cfg;
  cfg.max_crashes = 1;
  Engine e(two_senders(), std::move(adv), cfg);
  e.run(5);
  // Process 0 keeps sending to the crashed process 1; nothing accumulates.
  EXPECT_TRUE(e.network_empty());
  EXPECT_GT(e.metrics().messages_sent(), 0u);
  EXPECT_EQ(e.metrics().messages_delivered(), 0u);
}

TEST(Engine, PendingCountTracksMailbox) {
  // Process 1 is never scheduled (delta huge); messages to it accumulate.
  auto adv = benign();
  adv->set_decide([](Time, const EngineView&) {
    StepDecision d;
    d.schedule.push_back(0);
    return d;
  });
  EngineConfig cfg;
  cfg.delta = 100;
  cfg.d = 100;
  Engine e(two_senders(), std::move(adv), cfg);
  e.run(5);
  EXPECT_EQ(e.pending_count(1), 5u);
  EXPECT_EQ(e.in_flight_count(), 5u);
  EXPECT_EQ(e.pending_for(1).size(), 5u);
}

TEST(Engine, DeterminismSameSeedSameTrace) {
  auto make = [] {
    ObliviousConfig oc;
    oc.n = 2;
    oc.d = 4;
    oc.delta = 3;
    oc.schedule = SchedulePattern::kStaggered;
    oc.delay = DelayPattern::kUniform;
    oc.seed = 99;
    EngineConfig cfg;
    cfg.d = 4;
    cfg.delta = 3;
    return Engine(two_senders(), std::make_unique<ObliviousAdversary>(oc),
                  cfg);
  };
  Engine a = make();
  Engine b = make();
  a.run(50);
  b.run(50);
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  EXPECT_EQ(a.metrics().messages_sent(), b.metrics().messages_sent());
}

TEST(Engine, RealizedDeltaMeasuresGaps) {
  ObliviousConfig oc;
  oc.n = 2;
  oc.d = 1;
  oc.delta = 5;
  oc.schedule = SchedulePattern::kStaggered;
  oc.delay = DelayPattern::kUnitDelay;
  oc.seed = 7;
  EngineConfig cfg;
  cfg.d = 1;
  cfg.delta = 5;
  Engine e(two_senders(), std::make_unique<ObliviousAdversary>(oc), cfg);
  e.run(40);
  EXPECT_GE(e.metrics().realized_delta(), 1u);
  EXPECT_LE(e.metrics().realized_delta(), 5u);
}

TEST(Engine, RealizedDChargesSenderNotScheduler) {
  // d = 1 delays with a sparse receiver schedule: the realized d must stay
  // 1 because the wait is attributable to delta.
  auto adv = benign();
  adv->set_decide([](Time now, const EngineView&) {
    StepDecision d;
    d.schedule.push_back(0);
    if (now % 6 == 5) d.schedule.push_back(1);  // receiver every 6 steps
    return d;
  });
  EngineConfig cfg;
  cfg.d = 10;
  cfg.delta = 8;
  Engine e(two_senders(), std::move(adv), cfg);
  e.run(30);
  EXPECT_LE(e.metrics().realized_d(), 2u);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine e(two_senders(), benign(), EngineConfig{});
  const bool hit = e.run_until(
      [](const Engine& eng) { return eng.metrics().messages_sent() >= 4; },
      100);
  EXPECT_TRUE(hit);
  EXPECT_LT(e.now(), 100u);
}

TEST(Engine, RunUntilRespectsBudget) {
  Engine e(two_senders(), benign(), EngineConfig{});
  const bool hit = e.run_until([](const Engine&) { return false; }, 7);
  EXPECT_FALSE(hit);
  EXPECT_EQ(e.now(), 7u);
}

TEST(Engine, LocalStepCounterExposedToProcess) {
  Engine e(two_senders(), benign(), EngineConfig{});
  e.run(5);
  const auto& p0 = dynamic_cast<const RecorderProcess&>(e.process(0));
  EXPECT_EQ(p0.last_local_step_seen_, 4u);
  EXPECT_EQ(e.local_steps_of(0), 5u);
}

TEST(Engine, ForkProcessIsDeepCopy) {
  Engine e(two_senders(), benign(), EngineConfig{});
  e.run(3);
  auto fork = e.fork_process(0);
  const auto& orig = dynamic_cast<const RecorderProcess&>(e.process(0));
  const auto& copy = dynamic_cast<const RecorderProcess&>(*fork);
  EXPECT_EQ(orig.steps_, copy.steps_);
  EXPECT_EQ(orig.deliveries.size(), copy.deliveries.size());
}

}  // namespace
}  // namespace asyncgossip
