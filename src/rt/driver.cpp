#include "rt/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/bitset.h"
#include "common/flight_recorder.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "gossip/rumor.h"
#include "rt/clock.h"
#include "rt/merge.h"
#include "rt/transport.h"
#include "sim/fuzz.h"
#include "sim/probe.h"
#include "sim/telemetry.h"

namespace asyncgossip {

namespace {

using Event = TraceRecorder::Event;
using EventKind = TraceRecorder::EventKind;

/// murmur3 finalizer: per-thread seed derivation from (run seed, pid).
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Shared run status the completion monitor polls. One mutex for all of it:
/// the hot path takes it a handful of times per step, and steps are paced
/// in hundreds of microseconds, so contention is irrelevant next to
/// correctness (the quiet predicate must see one consistent snapshot).
/// Guarded members are initialized in the constructor, where the analysis
/// knows the object is not yet shared; afterwards every access is
/// statically required to hold `mu` (-Wthread-safety under clang).
struct SharedState {
  explicit SharedState(std::size_t n)
      : stepping(n, 0), quiescent(n, 0), crashed(n, 0), step_counts(n, 0) {}

  Mutex mu;
  std::vector<std::uint8_t> stepping AG_GUARDED_BY(mu);
  std::vector<std::uint8_t> quiescent AG_GUARDED_BY(mu);
  std::vector<std::uint8_t> crashed AG_GUARDED_BY(mu);
  std::size_t undelivered AG_GUARDED_BY(mu) = 0;
  // Live-stats counters (read by the snapshot thread; incremented inside
  // locked sections the workers already take, so the stats cost nothing
  // extra on the hot path).
  std::vector<std::uint64_t> step_counts AG_GUARDED_BY(mu);
  std::uint64_t sends AG_GUARDED_BY(mu) = 0;
  std::uint64_t deliveries AG_GUARDED_BY(mu) = 0;
};

/// Budget-gated append shared by events and probes: the cap bounds total
/// memory across all threads without any per-thread tuning.
class RecordBudget {
 public:
  explicit RecordBudget(std::size_t max) : max_(max) {}
  bool take() { return used_.fetch_add(1, std::memory_order_relaxed) < max_; }

 private:
  std::size_t max_;
  std::atomic<std::size_t> used_{0};
};

class ThreadProbeSink final : public ProbeSink {
 public:
  ThreadProbeSink(RtProcessLog* log, RecordBudget* budget)
      : log_(log), budget_(budget) {}

  void on_phase(Time now, ProcessId p, const char* phase) override {
    push(RtProbeRecord{true, now, p, phase, 0, 0});
  }
  void on_state(Time now, ProcessId p, std::uint64_t rumors_known,
                std::uint64_t rumors_fully_informed) override {
    push(RtProbeRecord{false, now, p, nullptr, rumors_known,
                       rumors_fully_informed});
  }

 private:
  void push(const RtProbeRecord& r) {
    if (budget_->take())
      log_->probes.push_back(r);
    else
      ++log_->dropped;
  }

  RtProcessLog* log_;
  RecordBudget* budget_;
};

}  // namespace

const char* to_string(RtTransportKind kind) {
  switch (kind) {
    case RtTransportKind::kInProcess:
      return "inproc";
    case RtTransportKind::kUdp:
      return "udp";
  }
  return "?";
}

bool rt_transport_from_string(const std::string& name, RtTransportKind* out) {
  if (name == "inproc") {
    *out = RtTransportKind::kInProcess;
    return true;
  }
  if (name == "udp") {
    *out = RtTransportKind::kUdp;
    return true;
  }
  return false;
}

RtRunResult run_realtime(const RtConfig& config) {
  const GossipSpec& spec = config.spec;
  AG_ASSERT_MSG(spec.n > 0, "rt run needs at least one process");
  AG_ASSERT_MSG(spec.f < spec.n, "crash budget must leave a live process");

  const auto n = spec.n;
  const Time d_target = std::max<Time>(1, spec.d);
  const Time delta_target = std::max<Time>(1, spec.delta);
  const Time budget =
      spec.max_steps != 0 ? spec.max_steps : default_step_budget(spec);

  auto processes = make_gossip_processes(spec);
  std::unique_ptr<Transport> transport_owner;
  if (config.transport == RtTransportKind::kUdp) {
    UdpTransportConfig tc;
    tc.n = n;
    tc.faults = config.wire_faults;
    transport_owner = std::make_unique<UdpTransport>(std::move(tc));
  } else {
    transport_owner = std::make_unique<InProcessTransport>(n);
  }
  Transport& transport = *transport_owner;
  const FaultInjector faults(
      make_fault_plan(config.inject, n, spec.f, spec.crash_horizon, spec.seed),
      d_target, delta_target);

  std::vector<RtProcessLog> logs(n);
  RecordBudget record_budget(config.max_events);
  SharedState state(n);
  std::atomic<bool> done{false};
  std::atomic<MessageId> next_id{0};
  const TickClock clock(config.tick_us);
  const Stopwatch wall;
  FlightRecorder recorder(config.flight ? n : 0, config.flight_capacity);

  const auto worker = [&](ProcessId p) {
    Xoshiro256SS rng(mix64(spec.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1))));
    auto* gp = dynamic_cast<GossipProcess*>(processes[p].get());
    AG_ASSERT_MSG(gp != nullptr, "rt runtime requires GossipProcess instances");
    RtProcessLog& log = logs[p];
    ThreadProbeSink sink(&log, &record_budget);
    FlightRing* const ring = config.flight ? recorder.ring(p) : nullptr;
    const auto push_event = [&](Event e) {
      if (record_budget.take())
        log.events.push_back(e);
      else
        ++log.dropped;
    };

    std::vector<Envelope> received;
    Time last_tick = 0;
    bool stepped = false;
    std::uint64_t local_step = 0;

    while (!done.load(std::memory_order_acquire)) {
      // Pace the next step into a gap of [1, delta_target] ticks (the
      // first step into [0, delta_target)); OS jitter on top of this is
      // absorbed by the realized delta the run reports.
      const Time target = stepped ? last_tick + 1 + rng.uniform(delta_target)
                                  : rng.uniform(delta_target);
      {
        const FlightZone zone(ring, FlightZoneId::kPacingSleep, p, target);
        clock.sleep_until_tick(target);
      }
      Time now = clock.now_tick();
      if (stepped && now <= last_tick) now = last_tick + 1;

      {
        const MutexLock lock(&state.mu);
        state.stepping[p] = 1;
        ++state.step_counts[p];
      }
      received.clear();
      std::size_t got = 0;
      {
        const FlightZone zone(ring, FlightZoneId::kInboxPoll, p, now);
        got = transport.drain(p, now, &received);
      }
      if (got > 0) {
        const MutexLock lock(&state.mu);
        state.undelivered -= got;
        state.deliveries += got;
      }

      push_event(Event{EventKind::kStep, now, p, kNoProcess, 0, 0, 0});
      for (const Envelope& env : received) {
        push_event(Event{EventKind::kDelivery, now, p, env.from, env.id,
                         env.send_time, env.deliver_after});
        if (ring != nullptr)
          flight_record_deliver(ring, env.id, env.from, p, now,
                                env.send_time);
      }

      StepContext ctx(p, n, local_step, received);
      ctx.attach_probe(&sink, now);
      {
        const FlightZone zone(ring, FlightZoneId::kAlgoStep, p, now);
        processes[p]->step(ctx);
      }

      auto& out = ctx.outbox();
      const bool crash_now = faults.should_crash(p, local_step);
      std::size_t keep = out.size();
      // Mid-step crash: only a prefix of the step's sends makes it out
      // (the model's "a subset of its messages is sent").
      if (crash_now) keep = rng.uniform(out.size() + 1);

      for (std::size_t i = 0; i < keep; ++i) {
        StepContext::Outgoing& o = out[i];
        Envelope env;
        env.id = next_id.fetch_add(1, std::memory_order_relaxed);
        env.from = p;
        env.to = o.to;
        env.send_time = now;
        const Time delay = 1 + rng.uniform(d_target) + faults.extra_delay(rng);
        env.deliver_after = now + delay;
        log.bytes += o.payload ? o.payload->byte_size() : 0;
        const MessageId id = env.id;
        const ProcessId to = env.to;
        env.payload = std::move(o.payload);
        {
          const MutexLock lock(&state.mu);
          ++state.undelivered;
          ++state.sends;
        }
        const Time stamped = transport.submit(std::move(env));
        if (stamped == kTimeMax) {
          // Destination crashed: the message never entered the network.
          const MutexLock lock(&state.mu);
          --state.undelivered;
          push_event(Event{EventKind::kSend, now, p, to, id, now, now + delay});
        } else {
          push_event(Event{EventKind::kSend, now, p, to, id, now, stamped});
        }
        if (ring != nullptr)
          flight_record_send(ring, id, p, to, now,
                             stamped == kTimeMax ? now + delay : stamped);
      }
      // Ship this step's staged outbound batches (one frame per
      // destination). A no-op on InProcessTransport.
      transport.flush(p, now);

      ++local_step;
      last_tick = now;
      stepped = true;

      if (crash_now) {
        push_event(Event{EventKind::kCrash, now, p, kNoProcess, 0, 0, 0});
        const std::size_t discarded = transport.close_inbox(p);
        const MutexLock lock(&state.mu);
        state.undelivered -= discarded;
        state.crashed[p] = 1;
        state.stepping[p] = 0;
        return;
      }
      {
        const MutexLock lock(&state.mu);
        state.stepping[p] = 0;
        state.quiescent[p] = gp->quiescent() ? 1 : 0;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (ProcessId p = 0; p < n; ++p) threads.emplace_back(worker, p);

  // Live-stats snapshot thread: one "asyncgossip-stats-v1" NDJSON line per
  // interval plus a final one at shutdown, so even sub-interval runs emit a
  // snapshot. This thread is the stream's only writer; everything it reads
  // is either under state.mu or a relaxed atomic gauge.
  std::thread stats_thread;
  if (config.stats_interval_ms > 0 && config.stats_out != nullptr) {
    stats_thread = std::thread([&] {
      std::ostream& out = *config.stats_out;
      double last_ms = 0.0;
      double last_emit_ms = 0.0;
      std::uint64_t last_sends = 0;
      const auto emit = [&] {
        std::size_t in_flight = 0;
        std::uint64_t sends = 0;
        std::uint64_t deliveries = 0;
        std::size_t crashed = 0;
        std::vector<std::uint64_t> steps;
        {
          const MutexLock lock(&state.mu);
          in_flight = state.undelivered;
          sends = state.sends;
          deliveries = state.deliveries;
          steps = state.step_counts;
          for (ProcessId p = 0; p < n; ++p) crashed += state.crashed[p] != 0;
        }
        const double now_ms = wall.elapsed_ms();
        const double dt_s = (now_ms - last_ms) / 1000.0;
        const double rate =
            dt_s > 0.0 ? static_cast<double>(sends - last_sends) / dt_s : 0.0;
        last_ms = now_ms;
        last_sends = sends;
        std::uint64_t steps_total = 0;
        for (std::uint64_t s : steps) steps_total += s;
        out << "{\"schema\": \"asyncgossip-stats-v1\", \"wall_ms\": "
            << now_ms << ", \"tick\": " << clock.now_tick()
            << ", \"in_flight\": " << in_flight
            << ", \"steps\": " << steps_total << ", \"sends\": " << sends
            << ", \"deliveries\": " << deliveries
            << ", \"envelopes_per_sec\": " << rate
            << ", \"crashed\": " << crashed << ", \"recorder_pushed\": "
            << recorder.pushed_total() << ", \"recorder_dropped\": "
            << recorder.dropped_total() << ", \"per_process_steps\": [";
        for (ProcessId p = 0; p < n; ++p)
          out << (p == 0 ? "" : ", ") << steps[p];
        out << "]}\n";
        out.flush();
      };
      const double interval_ms =
          static_cast<double>(config.stats_interval_ms);
      while (!done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (wall.elapsed_ms() - last_emit_ms >= interval_ms) {
          last_emit_ms = wall.elapsed_ms();
          emit();
        }
      }
      emit();
    });
  }

  // Completion monitor: the quiet predicate [network drained AND every
  // process crashed-or-quiescent AND nobody mid-step] is stable — only a
  // stepping process can create messages, quiescent processes send nothing
  // absent receipts, and there are none left to receive.
  bool completed = false;
  while (true) {
    std::this_thread::sleep_for(std::chrono::microseconds(config.tick_us));
    // Socket-transport upkeep from the monitor thread: retransmit unacked
    // frames (including on behalf of crashed workers, whose threads have
    // returned) and pump closed inboxes so in-flight envelopes settle.
    transport.service(clock.now_tick());
    const std::size_t reaped = transport.reap_discarded();
    if (reaped != 0) {
      const MutexLock lock(&state.mu);
      state.undelivered -= reaped;
    }
    {
      const MutexLock lock(&state.mu);
      bool quiet = state.undelivered == 0;
      for (ProcessId p = 0; quiet && p < n; ++p) {
        if (state.crashed[p]) continue;
        if (state.stepping[p] || !state.quiescent[p]) quiet = false;
      }
      completed = quiet;
    }
    if (completed || clock.now_tick() >= budget) break;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  if (stats_thread.joinable()) stats_thread.join();
  const double wall_ms = wall.elapsed_ms();

  // join() established happens-before with every worker, but the static
  // analysis (rightly) cannot see that: snapshot the guarded state once,
  // under the lock, and do all post-run accounting from the copy.
  std::vector<std::uint8_t> crashed_final;
  {
    const MutexLock lock(&state.mu);
    crashed_final = state.crashed;
  }

  // --- merge the per-thread records into one time-ordered trace ----------
  RtRunResult result;
  result.outcome.completed = completed;
  result.outcome.wall_ms = wall_ms;
  if (config.flight) {
    // Post-run recorder cost: drain + wall-clock merge of the rings. The
    // workers have joined, so the consumer side runs uncontended.
    const Stopwatch drain_watch;
    recorder.drain(&result.flight);
    result.flight_pushed = recorder.pushed_total();
    result.flight_dropped = recorder.dropped_total();
    result.recorder_overhead_ms = drain_watch.elapsed_ms();
  }
  // Merge, renumbering, realized bounds and outcome counters: shared with
  // the multi-process driver (rt/merge.h).
  merge_rt_logs(n, std::move(logs), crashed_final, &result);
  RtOutcome& oc = result.outcome;

  // --- gossip property checks (from the locked post-join snapshot) -------
  DynamicBitset correct(n);
  for (ProcessId p = 0; p < n; ++p)
    if (crashed_final[p] == 0) correct.set(p);
  const std::size_t need = n / 2 + 1;
  oc.gathering_ok = true;
  oc.majority_ok = true;
  for (ProcessId p = 0; p < n; ++p) {
    if (crashed_final[p] != 0) continue;
    const auto& gp = dynamic_cast<const GossipProcess&>(*processes[p]);
    if (!correct.subset_of(gp.rumors())) oc.gathering_ok = false;
    if (gp.rumors().count() < need) oc.majority_ok = false;
  }
  result.notes.resize(n);
  result.crashed.resize(n);
  for (ProcessId p = 0; p < n; ++p) {
    const auto& gp = dynamic_cast<const GossipProcess&>(*processes[p]);
    result.notes[p] = gp.final_note();
    result.crashed[p] = crashed_final[p] != 0;
  }
  return result;
}

TelemetryConfig rt_telemetry_config(const RtConfig& config,
                                    const RtRunResult& result) {
  TelemetryConfig tc;
  tc.n = config.spec.n;
  tc.d = result.outcome.realized_d;
  tc.delta = result.outcome.realized_delta;
  return tc;
}

void feed_telemetry(const RtRunResult& result, TelemetryCollector* collector) {
  std::size_t ei = 0;
  std::size_t pi = 0;
  const auto apply_event = [&](const Event& e) {
    switch (e.kind) {
      case EventKind::kStep:
        collector->on_step(e.time, e.process);
        break;
      case EventKind::kSend: {
        Envelope env;
        env.id = e.message;
        env.from = e.process;
        env.to = e.peer;
        env.send_time = e.send_time;
        env.deliver_after = e.deliver_after;
        collector->on_send(env);
        break;
      }
      case EventKind::kDelivery: {
        Envelope env;
        env.id = e.message;
        env.from = e.peer;
        env.to = e.process;
        env.send_time = e.send_time;
        env.deliver_after = e.deliver_after;
        collector->on_delivery(env, e.time);
        break;
      }
      case EventKind::kCrash:
        collector->on_crash(e.time, e.process);
        break;
    }
  };
  while (ei < result.events.size() || pi < result.probes.size()) {
    // Probes fire mid-step, before the step's sends; at equal ticks they
    // go first so a crashing process's last report lands before its crash.
    const bool take_probe =
        pi < result.probes.size() &&
        (ei >= result.events.size() ||
         result.probes[pi].time <= result.events[ei].time);
    if (take_probe) {
      const RtProbeRecord& r = result.probes[pi++];
      if (r.is_phase)
        collector->on_phase(r.time, r.process, r.phase);
      else
        collector->on_state(r.time, r.process, r.rumors_known,
                            r.rumors_fully_informed);
    } else {
      apply_event(result.events[ei++]);
    }
  }
  collector->finalize(result.outcome.end_time);
}

void write_rt_trace(std::ostream& os, const RtConfig& config,
                    const RtRunResult& result) {
  os << "# asyncgossip trace v1\n";
  os << "model n=" << config.spec.n << " d=" << result.outcome.realized_d
     << " delta=" << result.outcome.realized_delta << " f=" << config.spec.f
     << '\n';
  if (result.events_dropped != 0)
    os << "# WARNING: " << result.events_dropped
       << " records dropped by the bounded recorder; this trace is a prefix\n";
  for (const Event& e : result.events)
    os << TraceRecorder::format_event(e) << '\n';
}

FlightLogHeader rt_flight_header(const RtConfig& config,
                                 const RtRunResult& result) {
  FlightLogHeader h;
  h.n = config.spec.n;
  h.tick_us = config.tick_us;
  h.realized_d = result.outcome.realized_d;
  h.realized_delta = result.outcome.realized_delta;
  h.dropped = result.flight_dropped;
  return h;
}

ViolationReport audit_rt_run(const RtConfig& config,
                             const RtRunResult& result) {
  AuditConfig ac;
  ac.n = config.spec.n;
  ac.d = result.outcome.realized_d;
  ac.delta = result.outcome.realized_delta;
  ac.max_crashes = config.spec.f;
  return audit_events(result.events, ac, /*finalize=*/true);
}

}  // namespace asyncgossip
