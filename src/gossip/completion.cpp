#include "gossip/completion.h"

#include "common/assert.h"
#include "gossip/rumor.h"

namespace asyncgossip {

bool gossip_quiet(const Engine& engine) {
  if (!engine.network_empty()) return false;
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto* gp = dynamic_cast<const GossipProcess*>(&engine.process(p));
    AG_ASSERT_MSG(gp != nullptr, "gossip_quiet needs GossipProcess instances");
    if (!gp->quiescent()) return false;
  }
  return true;
}

bool check_gathering(const Engine& engine) {
  DynamicBitset correct(engine.n());
  for (ProcessId p = 0; p < engine.n(); ++p)
    if (!engine.crashed(p)) correct.set(p);
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto& gp = engine.process_as<GossipProcess>(p);
    if (!correct.subset_of(gp.rumors())) return false;
  }
  return true;
}

bool check_majority(const Engine& engine) {
  const std::size_t need = engine.n() / 2 + 1;
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto& gp = engine.process_as<GossipProcess>(p);
    if (gp.rumors().count() < need) return false;
  }
  return true;
}

GossipOutcome run_gossip(Engine& engine, Time max_steps) {
  GossipOutcome out;
  out.completed = engine.run_until(gossip_quiet, max_steps);
  out.detection_time = engine.now();
  const Metrics& m = engine.metrics();
  out.completion_time = m.any_send() ? m.last_send_time() + 1 : 0;
  out.messages = m.messages_sent();
  out.bytes = m.bytes_sent();
  out.realized_d = m.realized_d();
  out.realized_delta = m.realized_delta();
  out.alive = engine.alive_count();
  out.crashes = engine.crashes_so_far();
  out.gathering_ok = check_gathering(engine);
  out.majority_ok = check_majority(engine);
  return out;
}

}  // namespace asyncgossip
