// Timing-wheel mailbox edge cases: replay the recorded event stream through
// a brute-force model of the delivery rule and demand identical per-process
// delivery order. The engine's wheel (W = d + delta + 1 buckets, due buckets
// merged by message id) must be observationally equivalent to the naive
// "scan all pending, deliver everything due, in send order" mailbox for
// every (d, delta) shape — including the degenerate ones the bucket
// arithmetic is most likely to get wrong: d == delta, delta == 1, and
// d == delta == 1 (the smallest legal wheel, W = 3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "gossip/harness.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace asyncgossip {
namespace {

using Event = TraceRecorder::Event;
using Kind = TraceRecorder::EventKind;

struct PendingMsg {
  MessageId id;
  Time deliver_after;
};

// Replays the event stream against the brute-force mailbox: every kSend
// enqueues for its destination, every kStep of p at time t must deliver
// exactly the pending messages with deliver_after <= t, ordered by message
// id (send order). Crashes void a destination's queue. Returns a failure
// describing the first divergence.
testing::AssertionResult brute_force_cross_check(
    const std::vector<Event>& events, std::size_t n) {
  std::vector<std::vector<PendingMsg>> pending(n);
  std::vector<std::vector<MessageId>> expected(n), actual(n);
  std::vector<bool> crashed(n, false);
  std::map<MessageId, Event> sends;

  for (const Event& e : events) {
    switch (e.kind) {
      case Kind::kStep: {
        if (crashed[e.process])
          return testing::AssertionFailure()
                 << "crashed process " << e.process << " stepped at t="
                 << e.time;
        auto& queue = pending[e.process];
        std::vector<PendingMsg> due;
        for (const PendingMsg& m : queue)
          if (m.deliver_after <= e.time) due.push_back(m);
        std::sort(due.begin(), due.end(),
                  [](const PendingMsg& a, const PendingMsg& b) {
                    return a.id < b.id;
                  });
        for (const PendingMsg& m : due) expected[e.process].push_back(m.id);
        queue.erase(std::remove_if(queue.begin(), queue.end(),
                                   [&e](const PendingMsg& m) {
                                     return m.deliver_after <= e.time;
                                   }),
                    queue.end());
        break;
      }
      case Kind::kSend: {
        if (e.deliver_after <= e.time)
          return testing::AssertionFailure()
                 << "message " << e.message << " sent at t=" << e.time
                 << " with deliver_after=" << e.deliver_after
                 << " (same-step relay would be possible)";
        sends[e.message] = e;
        if (!crashed[e.peer])
          pending[e.peer].push_back({e.message, e.deliver_after});
        break;
      }
      case Kind::kDelivery: {
        if (crashed[e.process])
          return testing::AssertionFailure()
                 << "delivery to crashed process " << e.process << " at t="
                 << e.time;
        const auto it = sends.find(e.message);
        if (it == sends.end())
          return testing::AssertionFailure()
                 << "delivery of unknown message " << e.message;
        const Event& send = it->second;
        if (send.peer != e.process || send.process != e.peer ||
            send.time != e.send_time ||
            send.deliver_after != e.deliver_after)
          return testing::AssertionFailure()
                 << "delivery of message " << e.message
                 << " disagrees with its send record";
        if (e.deliver_after > e.time)
          return testing::AssertionFailure()
                 << "message " << e.message << " delivered at t=" << e.time
                 << " before deliver_after=" << e.deliver_after;
        actual[e.process].push_back(e.message);
        break;
      }
      case Kind::kCrash: {
        crashed[e.process] = true;
        pending[e.process].clear();
        break;
      }
    }
  }

  for (std::size_t p = 0; p < n; ++p) {
    if (expected[p] == actual[p]) continue;
    std::ostringstream os;
    os << "process " << p << ": wheel delivered " << actual[p].size()
       << " message(s), brute force expected " << expected[p].size();
    const std::size_t limit = std::min(expected[p].size(), actual[p].size());
    for (std::size_t i = 0; i < limit; ++i) {
      if (expected[p][i] == actual[p][i]) continue;
      os << "; first divergence at delivery " << i << ": wheel id "
         << actual[p][i] << " vs expected id " << expected[p][i];
      break;
    }
    return testing::AssertionFailure() << os.str();
  }
  return testing::AssertionSuccess();
}

struct RunStats {
  std::uint64_t sends = 0;
  std::uint64_t deliveries = 0;
  Time final_time = 0;
};

testing::AssertionResult run_and_cross_check(const GossipSpec& spec,
                                             Time max_steps,
                                             RunStats* stats = nullptr) {
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace(1 << 22);
  engine.add_observer(&trace);
  run_gossip(engine, max_steps);
  if (trace.dropped() != 0)
    return testing::AssertionFailure()
           << "trace overflow: " << trace.dropped() << " event(s) dropped";
  if (stats != nullptr) {
    stats->sends = trace.sends();
    stats->deliveries = trace.deliveries();
    stats->final_time = engine.now();
  }
  return brute_force_cross_check(trace.events(), spec.n);
}

GossipSpec base_spec(Time d, Time delta) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 16;
  spec.f = 4;
  spec.d = d;
  spec.delta = delta;
  spec.seed = 1234;
  spec.schedule = SchedulePattern::kStaggered;
  spec.delay = DelayPattern::kUniform;
  spec.crash_horizon = 24;
  return spec;
}

TEST(MailboxEdges, EqualBoundsDEqualsDelta) {
  // d == delta: deadline and step-gap wavelengths coincide, so bucket
  // indices collide maximally around the wheel.
  EXPECT_TRUE(run_and_cross_check(base_spec(3, 3),
                                  default_step_budget(base_spec(3, 3))));
}

TEST(MailboxEdges, UnitStepGap) {
  // delta == 1: every process steps every tick; due buckets are singletons.
  const GossipSpec spec = base_spec(4, 1);
  EXPECT_TRUE(run_and_cross_check(spec, default_step_budget(spec)));
}

TEST(MailboxEdges, SmallestLegalWheel) {
  // d == delta == 1 gives W = 3, the tightest wraparound possible.
  const GossipSpec spec = base_spec(1, 1);
  EXPECT_TRUE(run_and_cross_check(spec, default_step_budget(spec)));
}

TEST(MailboxEdges, BimodalDelaysUnderStragglerSchedule) {
  // Bimodal delays pile messages onto the extreme buckets while the
  // straggler schedule maximises how many buckets fall due in one step.
  GossipSpec spec = base_spec(7, 5);
  spec.n = 24;
  spec.f = 8;
  spec.schedule = SchedulePattern::kStraggler;
  spec.delay = DelayPattern::kBimodal;
  spec.seed = 98765;
  EXPECT_TRUE(run_and_cross_check(spec, default_step_budget(spec)));
}

TEST(MailboxEdges, SeveralAlgorithmsAndSeeds) {
  for (const GossipAlgorithm algorithm :
       {GossipAlgorithm::kTears, GossipAlgorithm::kSears,
        GossipAlgorithm::kSync}) {
    for (const std::uint64_t seed : {7ULL, 1001ULL}) {
      GossipSpec spec = base_spec(3, 2);
      spec.algorithm = algorithm;
      spec.seed = seed;
      EXPECT_TRUE(run_and_cross_check(spec, default_step_budget(spec)))
          << spec_label(spec) << " seed=" << seed;
    }
  }
}

TEST(MailboxEdges, CrossCheckHoldsWithShardedStepping) {
  // Same brute-force equivalence, but stepping through the worker-pool path
  // (engine_jobs > 1): the merge phase must reproduce the exact per-process
  // delivery order of the naive mailbox, crashes included.
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    GossipSpec spec = base_spec(7, 5);
    spec.n = 24;
    spec.f = 8;
    spec.schedule = SchedulePattern::kStraggler;
    spec.delay = DelayPattern::kBimodal;
    spec.seed = 98765;
    spec.engine_jobs = jobs;
    EXPECT_TRUE(run_and_cross_check(spec, default_step_budget(spec)))
        << "engine_jobs=" << jobs;
  }
}

TEST(MailboxEdges, PendingViewsAgreeWithEachOtherMidRun) {
  // Stop mid-run with messages in flight and check the two pending-message
  // views against each other and the count: pending_for must return send
  // order (ascending ids — it k-way merges the slab chains), and
  // for_each_pending must visit the same id multiset, bucket by bucket.
  GossipSpec spec = base_spec(5, 3);
  spec.n = 20;
  spec.f = 0;
  Engine engine = make_gossip_engine(spec);
  engine.run(40);
  ASSERT_GT(engine.in_flight_count(), 0u) << "nothing in flight; lower steps";
  for (ProcessId p = 0; p < spec.n; ++p) {
    const std::vector<Envelope> ordered = engine.pending_for(p);
    EXPECT_EQ(ordered.size(), engine.pending_count(p)) << "process " << p;
    std::vector<MessageId> ids;
    for (const Envelope& env : ordered) {
      ids.push_back(env.id);
      EXPECT_TRUE(env.payload.owning()) << "pending_for must own payloads";
    }
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end())) << "process " << p;
    std::vector<MessageId> visited;
    engine.for_each_pending(p, [&](const Envelope& env) {
      visited.push_back(env.id);
      return true;
    });
    std::sort(visited.begin(), visited.end());
    EXPECT_EQ(visited, ids) << "process " << p;
  }
}

TEST(MailboxEdges, TruncatedRunLeavesMessagesInFlight) {
  // Cut the run off almost immediately: sends from the last executed steps
  // are still in the wheel when the engine stops. The cross-check must hold
  // on the truncated prefix, and the truncation must actually exercise the
  // in-flight case (strictly more sends than deliveries).
  GossipSpec spec = base_spec(5, 3);
  spec.n = 20;
  spec.f = 0;  // keep every process sending right up to the cutoff
  RunStats stats;
  EXPECT_TRUE(run_and_cross_check(spec, 40, &stats));
  EXPECT_GT(stats.sends, stats.deliveries)
      << "truncation did not leave messages in flight; lower max_steps";
}

}  // namespace
}  // namespace asyncgossip
