# Empty dependencies file for ag_gossip.
# This may be replaced when dependencies are built.
