
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_gossip.cpp" "bench/CMakeFiles/bench_table1_gossip.dir/bench_table1_gossip.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_gossip.dir/bench_table1_gossip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/ag_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/ag_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/ag_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
