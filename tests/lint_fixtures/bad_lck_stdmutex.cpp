// aglint-fixture-as: src/rt/fixture_stdmutex.cpp
// aglint-expect: AG-LCK-002
//
// Raw std::mutex carries no capability annotations, so clang's
// -Wthread-safety cannot check accesses guarded by it. src/rt must use
// asyncgossip::Mutex / MutexLock (common/thread_annotations.h).
#include <mutex>

namespace asyncgossip {

std::mutex raw_mu;  // AG-LCK-002
int shared_value = 0;

void set_value(int v) {
  const std::lock_guard<std::mutex> lock(raw_mu);  // AG-LCK-002
  shared_value = v;
}

}  // namespace asyncgossip
