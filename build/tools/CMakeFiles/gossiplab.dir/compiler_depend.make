# Empty compiler generated dependencies file for gossiplab.
# This may be replaced when dependencies are built.
