// Golden-trace regression tests for the engine hot path.
//
// The timing-wheel mailbox, direct send injection, and scratch-buffer
// reuse are pure performance work: for a fixed seed every observable —
// the FNV-1a trace hash (which folds in each send and delivery in event
// order) and the Metrics counters — must be bit-identical to the
// pre-optimization engine. The constants below were captured from the
// deque-mailbox engine before the wheel landed; if any future "perf only"
// change shifts one of them, it changed delivery semantics, not just speed.
//
// Two adversary configurations (staggered/uniform and random-subset/
// bimodal) across all eight gossip algorithms exercise every scheduling
// and delay pattern interaction the wheel has to preserve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gossip/completion.h"
#include "gossip/harness.h"
#include "sim/engine.h"

namespace asyncgossip {
namespace {

struct Golden {
  GossipAlgorithm algorithm;
  std::uint64_t trace_hash;
  std::uint64_t messages_sent;
  std::uint64_t messages_delivered;
  std::uint64_t local_steps;
  Time realized_d;
  Time realized_delta;
  std::size_t max_in_flight;
  Time completion_time;
  bool completed;
};

void check_golden(const GossipSpec& base, const Golden& g) {
  GossipSpec spec = base;
  spec.algorithm = g.algorithm;
  Engine engine = make_gossip_engine(spec);
  const GossipOutcome out = run_gossip(engine, default_step_budget(spec));
  const Metrics& m = engine.metrics();
  EXPECT_EQ(engine.trace_hash(), g.trace_hash) << to_string(g.algorithm);
  EXPECT_EQ(m.messages_sent(), g.messages_sent) << to_string(g.algorithm);
  EXPECT_EQ(m.messages_delivered(), g.messages_delivered)
      << to_string(g.algorithm);
  EXPECT_EQ(m.local_steps(), g.local_steps) << to_string(g.algorithm);
  EXPECT_EQ(m.realized_d(), g.realized_d) << to_string(g.algorithm);
  EXPECT_EQ(m.realized_delta(), g.realized_delta) << to_string(g.algorithm);
  EXPECT_EQ(m.max_in_flight(), g.max_in_flight) << to_string(g.algorithm);
  EXPECT_EQ(out.completion_time, g.completion_time) << to_string(g.algorithm);
  EXPECT_EQ(out.completed, g.completed) << to_string(g.algorithm);
}

TEST(EnginePerfInvariants, GoldenTracesStaggeredUniform) {
  GossipSpec base;
  base.n = 48;
  base.f = 12;
  base.d = 3;
  base.delta = 2;
  base.seed = 42;
  base.schedule = SchedulePattern::kStaggered;
  base.delay = DelayPattern::kUniform;
  const Golden goldens[] = {
      {GossipAlgorithm::kTrivial, 0x73318c975a61aa6fULL, 2304, 2304, 219, 3,
       2, 1873, 2, true},
      {GossipAlgorithm::kEars, 0xa5045f0f03258f44ULL, 1974, 1847, 2525, 3, 2,
       90, 77, true},
      {GossipAlgorithm::kSears, 0x867dc497daee2d0fULL, 6696, 6696, 438, 3, 2,
       2211, 8, true},
      {GossipAlgorithm::kTears, 0xcf8f218ebfa8a0fdULL, 9561, 9561, 365, 3, 2,
       4071, 6, true},
      {GossipAlgorithm::kSync, 0xc1eacfb3647354e5ULL, 846, 830, 1411, 3, 2,
       88, 36, true},
      {GossipAlgorithm::kEarsNoInformedList, 0x824390aada0d8fedULL, 7174,
       5770, 11037, 3, 2, 90, 378, true},
      {GossipAlgorithm::kLazy, 0x6c1956345313301bULL, 634, 631, 760, 3, 2,
       121, 18, true},
      {GossipAlgorithm::kRoundRobin, 0x3885198134bf217aULL, 1928, 1794, 2525,
       3, 2, 90, 74, true},
  };
  for (const Golden& g : goldens) check_golden(base, g);
}

TEST(EnginePerfInvariants, GoldenTracesRandomSubsetBimodal) {
  GossipSpec base;
  base.n = 40;
  base.f = 10;
  base.d = 6;
  base.delta = 5;
  base.seed = 7;
  base.schedule = SchedulePattern::kRandomSubset;
  base.delay = DelayPattern::kBimodal;
  const Golden goldens[] = {
      {GossipAlgorithm::kTrivial, 0x93be27de487a63cbULL, 1560, 1519, 293, 6,
       5, 960, 5, true},
      {GossipAlgorithm::kEars, 0xb68396c408e77da8ULL, 1342, 1169, 1588, 6, 5,
       46, 89, true},
      {GossipAlgorithm::kSears, 0x89c6662e3d936eccULL, 5016, 4803, 430, 6, 5,
       1069, 12, true},
      {GossipAlgorithm::kTears, 0xdae210b9366a58ceULL, 8025, 7710, 430, 6, 5,
       1853, 13, true},
      {GossipAlgorithm::kSync, 0xffef3f55b523f35aULL, 632, 575, 931, 6, 5,
       51, 44, true},
      {GossipAlgorithm::kEarsNoInformedList, 0xa55b22dcc64799c4ULL, 5570,
       4355, 6258, 6, 5, 46, 386, true},
      {GossipAlgorithm::kLazy, 0x73c1995152cd2b20ULL, 364, 348, 482, 6, 5,
       62, 19, true},
      {GossipAlgorithm::kRoundRobin, 0xf77c0d5a66c3d853ULL, 1299, 1119,
       1502, 6, 5, 50, 84, true},
  };
  for (const Golden& g : goldens) check_golden(base, g);
}

TEST(EnginePerfInvariants, ForEachPendingMatchesPendingFor) {
  // The zero-copy iteration must visit exactly the envelopes the copying
  // accessor returns. Visit order differs (wheel buckets vs message id),
  // so compare as id-sorted sets, and check early-stop works.
  GossipSpec spec;
  spec.n = 24;
  spec.f = 6;
  spec.d = 4;
  spec.delta = 3;
  spec.seed = 11;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.schedule = SchedulePattern::kStaggered;
  spec.delay = DelayPattern::kUniform;
  Engine engine = make_gossip_engine(spec);
  engine.run(12);
  bool saw_nonempty = false;
  for (std::size_t p = 0; p < spec.n; ++p) {
    const ProcessId pid = static_cast<ProcessId>(p);
    std::vector<Envelope> copied = engine.pending_for(pid);
    std::vector<std::uint64_t> copied_ids, visited_ids;
    std::vector<Time> copied_deadlines, visited_deadlines;
    for (const Envelope& env : copied) {
      copied_ids.push_back(env.id);
      copied_deadlines.push_back(env.deliver_after);
    }
    engine.for_each_pending(pid, [&](const Envelope& env) {
      EXPECT_EQ(env.to, pid);
      visited_ids.push_back(env.id);
      visited_deadlines.push_back(env.deliver_after);
      return true;
    });
    EXPECT_EQ(visited_ids.size(), engine.pending_count(pid));
    std::sort(copied_ids.begin(), copied_ids.end());
    std::sort(visited_ids.begin(), visited_ids.end());
    std::sort(copied_deadlines.begin(), copied_deadlines.end());
    std::sort(visited_deadlines.begin(), visited_deadlines.end());
    EXPECT_EQ(visited_ids, copied_ids) << "process " << p;
    EXPECT_EQ(visited_deadlines, copied_deadlines) << "process " << p;
    if (!copied.empty()) {
      saw_nonempty = true;
      std::size_t visits = 0;
      engine.for_each_pending(pid, [&](const Envelope&) {
        ++visits;
        return false;  // stop after the first envelope
      });
      EXPECT_EQ(visits, 1u);
    }
  }
  EXPECT_TRUE(saw_nonempty) << "workload left no mail in flight; test is vacuous";
}

}  // namespace
}  // namespace asyncgossip
