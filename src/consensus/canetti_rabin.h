// Randomized binary consensus in the Canetti-Rabin framework (paper
// Section 6), with the get-core exchanges carried by a pluggable gossip
// transport: all-to-all (the CR baseline of Table 2), EARS, SEARS or TEARS.
//
// Protocol per phase (Attiya-Welch Section 14.3 presentation):
//   exchange 0  get-core over estimate votes x  -> preference y (v or bot)
//   exchange 1  get-core over preferences y     -> decide, adopt, or coin
//   exchange 2  get-core over coin flips        -> fallback estimate
// Each get-core is three sequential gossip sub-instances; a gossip-backed
// sub-instance completes when floor(n/2)+1 origins' rumors have been
// incorporated (the paper's majority-gossip termination rule), the
// all-to-all baseline when n-f have (Attiya-Welch).
//
// Asynchronous initiation is handled exactly as the paper prescribes:
// every message carries the sender's protocol position and state, and a
// receiver that is behind adopts the sender's outcomes and jumps forward.
//
// Termination & quiescence engineering (beyond the paper's asymptotic
// argument, documented in DESIGN.md): a process that decides keeps
// participating for a bounded number of local steps ("helping"), then
// retires to a purely reactive mode in which it answers any message from an
// undecided process with a one-shot decided notification. Undecided
// processes that stall (no new origins for `stagnation_limit` local steps)
// re-announce to everyone; this fallback fires only in the retirement tail
// and keeps expected message complexity at the advertised order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consensus/core_types.h"
#include "consensus/get_core.h"
#include "gossip/rumor.h"
#include "gossip/tears.h"
#include "sim/engine.h"
#include "sim/oblivious.h"
#include "sim/process.h"

namespace asyncgossip {

struct ConsensusConfig {
  std::size_t n = 0;
  std::size_t f = 0;  // tolerance; f < n/2 required
  ExchangeKind exchange = ExchangeKind::kAllToAll;
  double sears_epsilon = 0.5;
  double sears_fanout_constant = 1.0;
  /// TEARS parameter multipliers (see gossip/tears.h on why benches scale
  /// the paper's constants down at simulable n).
  double tears_a_constant = 1.0;
  double tears_kappa_constant = 1.0;
  std::uint64_t seed = 1;
  /// Local steps a decided process keeps participating before retiring;
  /// 0 = automatic (8 * (log2 n + 1)).
  std::uint64_t help_steps = 0;
  /// Local steps without progress before an undecided process re-announces
  /// to everyone; 0 = automatic (2n).
  std::uint64_t stagnation_limit = 0;
  /// Record get-core returns for phases 1-2 (common-core property tests).
  bool log_getcore_returns = false;
};

class ConsensusProcess final : public GossipProcess {
 public:
  ConsensusProcess(ProcessId id, Val input, ConsensusConfig config);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;
  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }

  // GossipProcess surface — this is what lets the rt drivers (threaded and
  // multi-process) run consensus through the same seam as plain gossip.
  // The "rumor set" is the current sub-instance's incorporated origins;
  // quiescence is retirement (a retired process only ever answers undecided
  // senders once, so with no further receipts it sends nothing).
  const DynamicBitset& rumors() const override { return inst_.origins; }
  bool quiescent() const override {
    return mode_ == Mode::kRetired && steps_taken_ > 0;
  }
  std::uint64_t local_steps() const override { return steps_taken_; }
  /// "cr decided=.. value=.. input=.. phase=.. viol=.. reann=.." — parsed
  /// by parse_consensus_note (consensus/cr_gossip.h).
  std::string final_note() const override;

  bool decided() const { return decided_; }
  Val decision() const { return decision_; }
  /// Phase at which this process decided (0 if undecided).
  std::uint32_t decided_phase() const { return decided_phase_; }
  Val input() const { return input_; }
  bool retired() const { return mode_ == Mode::kRetired; }
  const Position& position() const { return pos_; }
  std::uint64_t core_violations() const { return core_violations_; }
  std::uint64_t reannouncements() const { return reannouncements_; }

  struct GetCoreRecord {
    Position pos;  // position *completed* (sub == 2)
    InstanceState returned;
  };
  const std::vector<GetCoreRecord>& getcore_log() const {
    return getcore_log_;
  }

 private:
  enum class Mode { kActive, kHelping, kRetired };

  void handle_message(const ConsensusPayload& m,
                      std::vector<ProcessId>& notify);
  void decide(Val v);
  void advance_if_complete();
  void consume_getcore();
  Val own_rumor_value() const;
  void start_instance();  // resets inst_ + transport for the current pos_
  void reset_transport();
  std::shared_ptr<ConsensusPayload> snapshot(bool flag_up) const;
  void do_transport(StepContext& ctx);
  std::size_t completion_threshold() const;
  bool tears_trigger_crossed(std::uint64_t before, std::uint64_t after) const;

  ProcessId id_;
  ConsensusConfig config_;
  Xoshiro256SS rng_;

  Val input_;
  Val x_;
  Val y_ = kValBot;
  Val coin_flip_ = kValUnknown;
  Val pending_adopt_ = kValUnknown;
  Position pos_;
  InstanceState inst_;

  bool decided_ = false;
  Val decision_ = kValUnknown;
  std::uint32_t decided_phase_ = 0;
  Mode mode_ = Mode::kActive;
  std::uint64_t helping_steps_left_ = 0;

  // Transport state (per sub-instance).
  bool announced_ = false;
  std::size_t fanout_ = 1;           // ears/sears
  TearsConfig tears_params_;         // a, mu, kappa
  std::vector<ProcessId> pi1_, pi2_;
  std::uint64_t up_cnt_ = 0;
  std::uint64_t up_cnt_step_start_ = 0;
  std::uint64_t stagnant_steps_ = 0;

  std::vector<bool> notified_;
  std::uint64_t steps_taken_ = 0;
  std::uint64_t core_violations_ = 0;
  std::uint64_t reannouncements_ = 0;
  std::vector<GetCoreRecord> getcore_log_;
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

enum class InputPattern { kAllZero, kAllOne, kHalfHalf, kRandom };

struct ConsensusSpec {
  ConsensusConfig config;
  Time d = 1;
  Time delta = 1;
  SchedulePattern schedule = SchedulePattern::kLockStep;
  DelayPattern delay = DelayPattern::kUniform;
  Time crash_horizon = 64;
  InputPattern inputs = InputPattern::kRandom;
  std::uint64_t seed = 1;  // adversary + inputs seed
  Time max_steps = 0;      // 0 = automatic
};

struct ConsensusOutcome {
  bool all_decided = false;
  bool agreement = false;
  bool validity = false;
  Val decided_value = kValUnknown;
  Time decision_time = 0;       // when the last correct process decided
  Time quiet_time = 0;          // when the system went silent
  std::uint64_t messages_at_decision = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint32_t max_phase = 0;  // highest phase reached by any process
  std::uint32_t decision_phase = 0;  // highest phase at which anyone decided
  std::uint64_t core_violations = 0;
  std::uint64_t reannouncements = 0;
  std::size_t alive = 0;
  Time realized_d = 0;
  Time realized_delta = 0;
};

/// All correct processes decided (predicate for Engine::run_until).
bool consensus_all_decided(const Engine& engine);
/// Decided + retired + drained network: nothing will ever be sent again.
bool consensus_quiet(const Engine& engine);

Engine make_consensus_engine(const ConsensusSpec& spec);
ConsensusOutcome run_consensus_spec(const ConsensusSpec& spec);

}  // namespace asyncgossip
