// Bit-complexity extension (paper Section 7, "future work"): payload sizes
// and engine-level byte accounting, plus the measured contrast the paper's
// open question hints at — EARS pays Theta(n^2)-bit messages for its
// informed-list progress control while TEARS messages stay Theta(n) bits.
#include <gtest/gtest.h>

#include "consensus/core_types.h"

#include "gossip/epidemic.h"
#include "gossip/harness.h"
#include "gossip/tears.h"
#include "gossip/trivial.h"

namespace asyncgossip {
namespace {

TEST(BitComplexity, BitsetByteSize) {
  EXPECT_EQ(DynamicBitset(64).byte_size(), 8u);
  EXPECT_EQ(DynamicBitset(65).byte_size(), 16u);
  EXPECT_EQ(DynamicBitset(0).byte_size(), 0u);
}

TEST(BitComplexity, TrivialPayloadIsOneRumorSet) {
  TrivialPayload p;
  p.rumors = DynamicBitset(128);
  EXPECT_EQ(p.byte_size(), 16u);
}

TEST(BitComplexity, TearsPayloadLinearInN) {
  TearsPayload p;
  p.rumors = DynamicBitset(1024);
  EXPECT_EQ(p.byte_size(), 129u);  // 128 bytes of rumors + flag
}

TEST(BitComplexity, EpidemicPayloadGrowsWithInformedList) {
  EpidemicPayload p;
  p.rumors = DynamicBitset(256);
  p.informed.resize(256);
  const std::size_t empty_size = p.byte_size();
  for (std::size_t r = 0; r < 256; ++r) p.informed[r] = DynamicBitset(256);
  EXPECT_GT(p.byte_size(), empty_size + 256 * 30);  // ~n^2/8 bytes
}

TEST(BitComplexity, EngineAccumulatesBytes) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTrivial;
  spec.n = 32;
  spec.f = 0;
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  // Every trivial message carries exactly one 32-bit rumor set (8 bytes of
  // words: one 64-bit word).
  EXPECT_EQ(out.bytes, out.messages * 8);
}

TEST(BitComplexity, EarsMessagesAreQuadraticBitsTearsLinear) {
  GossipSpec ears, tears;
  ears.algorithm = GossipAlgorithm::kEars;
  tears.algorithm = GossipAlgorithm::kTears;
  for (GossipSpec* s : {&ears, &tears}) {
    s->n = 128;
    s->f = 32;
    s->d = 2;
    s->delta = 2;
    s->schedule = SchedulePattern::kStaggered;
    s->seed = 5;
  }
  const GossipOutcome oe = run_gossip_spec(ears);
  const GossipOutcome ot = run_gossip_spec(tears);
  ASSERT_TRUE(oe.completed && ot.completed);
  const double ears_bytes_per_msg =
      static_cast<double>(oe.bytes) / static_cast<double>(oe.messages);
  const double tears_bytes_per_msg =
      static_cast<double>(ot.bytes) / static_cast<double>(ot.messages);
  // EARS messages carry up to n^2 bits of informed-list (n=128 -> up to
  // ~2 KiB); TEARS messages are ~n bits (~17 bytes).
  EXPECT_GT(ears_bytes_per_msg, 8.0 * tears_bytes_per_msg);
  EXPECT_LT(tears_bytes_per_msg, 64.0);
  // And so, despite EARS sending far fewer *messages*, TEARS can win on
  // *bits* — exactly why the paper flags bit complexity as open.
  EXPECT_LT(oe.messages, ot.messages);
}

TEST(BitComplexity, ConsensusBytesTracked) {
  ConsensusPayload p;
  p.state = InstanceState(64);
  EXPECT_EQ(p.byte_size(), 8u + 64u + 16u);
}

}  // namespace
}  // namespace asyncgossip
