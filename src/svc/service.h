// The replicated KV service: clients submit commands, a commit thread
// drains them into batches, each batch commits through one consensus slot
// (svc/replica.h), and committed commands are applied to the state machine
// and appended to the committed log. Group commit is what makes >= 1M
// requests tractable: one consensus decision amortizes over up to
// `batch_limit` commands.
//
// Threading: submit() may be called from any number of client threads; the
// single commit thread owns the KvStore, the sequencer, and the log
// stream. The queue is the only shared state (annotated Mutex + CondVar,
// clang -Wthread-safety-checked like src/rt). Completion is delivered via
// the per-command callback, invoked on the commit thread after the batch's
// slot resolves — with the measured submit->applied commit latency.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "rt/clock.h"
#include "svc/command.h"
#include "svc/history.h"
#include "svc/kv.h"
#include "svc/replica.h"

namespace asyncgossip {
namespace svc {

struct KvServiceConfig {
  ReplicaGroupConfig group;
  /// Commands per consensus slot, at most. 0 is invalid.
  std::size_t batch_limit = 512;
  /// Optional committed-log sink (history checking): entries are streamed
  /// as they commit under `# asyncgossip-svc-log-v1`. Owned by the caller;
  /// must outlive the service. Null disables logging.
  std::ostream* log_out = nullptr;
};

/// Aggregate serving counters (monotone; read after stop() for totals).
struct KvServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t slots = 0;
  std::uint64_t slots_unavailable = 0;
  std::uint64_t slots_stalled = 0;
  std::uint64_t consensus_messages = 0;
  std::uint64_t consensus_bytes = 0;
  Time consensus_ticks = 0;
  std::uint64_t max_batch = 0;
};

class KvService {
 public:
  /// (command, result, submit->applied latency in microseconds).
  using Callback =
      std::function<void(const Command&, const CommandResult&, std::uint64_t)>;

  explicit KvService(const KvServiceConfig& config);
  ~KvService();

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  /// Enqueues a command; `done` fires exactly once, on the commit thread.
  /// After stop() begins, further submissions are answered unavailable.
  void submit(const Command& cmd, Callback done);

  /// Drains the queue, commits what remains, and joins the commit thread.
  /// Idempotent.
  void stop();

  /// Totals; stable once stop() returned.
  KvServiceStats stats() const;

  const ReplicaGroup& group() const { return group_; }

 private:
  struct Pending {
    Command cmd;
    Callback done;
    Stopwatch latency;
  };

  void commit_loop();
  void commit_batch(std::vector<Pending>& batch);

  KvServiceConfig config_;
  ReplicaGroup group_;   // commit-thread-owned after start
  KvStore store_;        // commit-thread-owned
  std::uint64_t next_seq_ = 1;  // commit-thread-owned

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<Pending> queue_ AG_GUARDED_BY(mu_);
  bool stopping_ AG_GUARDED_BY(mu_) = false;
  KvServiceStats stats_ AG_GUARDED_BY(mu_);

  std::thread committer_;
  bool joined_ = false;
};

}  // namespace svc
}  // namespace asyncgossip
