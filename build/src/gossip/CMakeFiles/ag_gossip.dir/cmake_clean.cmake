file(REMOVE_RECURSE
  "CMakeFiles/ag_gossip.dir/completion.cpp.o"
  "CMakeFiles/ag_gossip.dir/completion.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/epidemic.cpp.o"
  "CMakeFiles/ag_gossip.dir/epidemic.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/harness.cpp.o"
  "CMakeFiles/ag_gossip.dir/harness.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/lazy.cpp.o"
  "CMakeFiles/ag_gossip.dir/lazy.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/pushpull.cpp.o"
  "CMakeFiles/ag_gossip.dir/pushpull.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/roundrobin.cpp.o"
  "CMakeFiles/ag_gossip.dir/roundrobin.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/sync_gossip.cpp.o"
  "CMakeFiles/ag_gossip.dir/sync_gossip.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/tears.cpp.o"
  "CMakeFiles/ag_gossip.dir/tears.cpp.o.d"
  "CMakeFiles/ag_gossip.dir/trivial.cpp.o"
  "CMakeFiles/ag_gossip.dir/trivial.cpp.o.d"
  "libag_gossip.a"
  "libag_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
