// GossipSpec <-> JSON repro artifacts ("asyncgossip-repro-v1").
//
// A shrunk fuzz counterexample must survive its finder: the artifact is a
// small self-describing JSON document carrying the full GossipSpec, the
// expected engine trace hash, and the failure string, so that
// `gossiplab replay artifact.spec.json` can re-execute the run
// bit-identically and verify the fingerprint years later. 64-bit fields
// whose values can exceed 2^53 (seed, trace_hash) are serialized as decimal
// *strings* — JSON numbers are doubles downstream.
//
// The reader is a minimal recursive-descent parser for this one schema
// (objects, strings, numbers, booleans); the repo deliberately has no JSON
// library dependency, and artifacts it writes are checked against the
// strict RFC 8259 validator (sim/telemetry_export.h) in tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "gossip/harness.h"

namespace asyncgossip {

/// A replayable failing-case artifact.
struct ReproArtifact {
  GossipSpec spec;
  /// Expected Engine::trace_hash() of the run (the determinism fingerprint
  /// replay verifies).
  std::uint64_t trace_hash = 0;
  /// The postcondition / invariant the case failed ("" for a hand-written
  /// artifact that is just a pinned execution).
  std::string failure;
};

/// Writes the artifact as an "asyncgossip-repro-v1" JSON document.
void write_repro_json(std::ostream& os, const ReproArtifact& artifact);

/// Parses a document written by write_repro_json (or by hand). On failure
/// returns false and stores a short description in *error when non-null.
/// Unknown keys are ignored; "schema", "spec.algorithm" and "spec.n" are
/// required.
bool read_repro_json(std::istream& is, ReproArtifact* out,
                     std::string* error = nullptr);

}  // namespace asyncgossip
