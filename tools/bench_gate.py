#!/usr/bin/env python3
"""Bench-regression gate: diff an asyncgossip-bench-v1 report against a
committed baseline and fail (exit 1) when a tracked counter regressed
beyond the tolerance.

Usage:
  bench_gate.py --baseline BENCH_engine_seed.json --current BENCH_engine.json
                [--counter steps_per_sec] [--tolerance 0.40]

Only case names present in *both* documents are compared (CI smoke runs
filter the bench to a subset of the baseline grid), and only downward
moves count: a faster run never fails the gate. The default 40% tolerance
absorbs shared-runner noise (see docs/PERFORMANCE.md on why tighter ratio
gates are not trustworthy in CI); catching a genuine 2x slowdown is the
design point, not 5% drifts. Stdlib only — the CI image has no extra
Python packages.
"""

import argparse
import json
import sys


def load_cases(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "asyncgossip-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {case["name"]: case["counters"] for case in doc["cases"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--counter", default="steps_per_sec")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="max fractional slowdown (default 0.40)")
    args = parser.parse_args()

    baseline = load_cases(args.baseline)
    current = load_cases(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        sys.exit("bench gate: no case names shared between baseline and "
                 "current report — wrong suite or empty run?")

    rows = []
    failures = 0
    for name in shared:
        base = baseline[name].get(args.counter)
        cur = current[name].get(args.counter)
        if base is None or cur is None or base <= 0:
            rows.append((name, base, cur, None, "skip (missing counter)"))
            continue
        delta = cur / base - 1.0
        regressed = delta < -args.tolerance
        failures += regressed
        rows.append((name, base, cur, delta,
                     "FAIL" if regressed else "ok"))

    name_w = max(len(r[0]) for r in rows)
    print(f"bench gate: counter={args.counter} tolerance=-{args.tolerance:.0%}"
          f" ({len(shared)} shared case(s))")
    print(f"{'case'.ljust(name_w)}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>8}  status")
    for name, base, cur, delta, status in rows:
        base_s = f"{base:,.0f}" if base is not None else "-"
        cur_s = f"{cur:,.0f}" if cur is not None else "-"
        delta_s = f"{delta:+.1%}" if delta is not None else "-"
        print(f"{name.ljust(name_w)}  {base_s:>12}  {cur_s:>12}  "
              f"{delta_s:>8}  {status}")

    only_base = sorted(set(baseline) - set(current))
    if only_base:
        print(f"(not run this time: {', '.join(only_base)})")

    if failures:
        print(f"bench gate: {failures} case(s) regressed more than "
              f"{args.tolerance:.0%}")
        return 1
    print("bench gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
