// The consensus core under the KV service: one Canetti-Rabin instance per
// commit slot (a slot commits one batch of client commands), executed on
// the simulation engine with the exchange transport of the chosen cr-*
// algorithm. This is Table 2 *as the service's commit path*: every batch
// pays one consensus decision, so the service's commit latency/throughput
// measure the consensus cost directly.
//
// Inputs are all-1 ("commit this batch"), so validity forces decision 1;
// the run's value to the service is the fault-tolerant *completion* of the
// decision, not the bit. Replica crashes are persistent across slots: a
// replica the fault plan kills in slot k is crashed from the first tick of
// every slot >= k. When fewer than floor(n/2)+1 replicas survive, the
// group reports honest unavailability instead of committing (fail-fast:
// the slot engine is not run).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "consensus/canetti_rabin.h"
#include "gossip/harness.h"

namespace asyncgossip {
namespace svc {

struct ReplicaGroupConfig {
  std::size_t n = 8;
  std::size_t f = 3;  // tolerated crash budget; f < n/2
  /// cr-ears / cr-sears / cr-tears (consensus exchange transport).
  GossipAlgorithm algorithm = GossipAlgorithm::kCrTears;
  Time d = 2;
  Time delta = 2;
  std::uint64_t seed = 1;

  // --- fault plan (soak mode) ---------------------------------------------
  /// Replicas to crash over the run; may deliberately exceed f to exercise
  /// the honest-unavailability path. Victims and slots are seed-derived.
  std::size_t inject_crashes = 0;
  /// Crash slots are drawn uniformly from [1, crash_horizon_slots].
  std::uint64_t crash_horizon_slots = 64;
  /// Per-slot probability of a stall fault: the slot's delivery bound d is
  /// inflated 4x (models a scheduling/network stall under the oblivious
  /// adversary; realized bounds absorb it, commit latency shows it).
  double stall_probability = 0.0;
};

/// One slot's commit outcome plus the consensus run's cost counters.
struct CommitOutcome {
  /// All surviving replicas decided 1 within budget.
  bool committed = false;
  /// The group no longer holds a majority; nothing ran.
  bool unavailable = false;
  std::uint64_t slot = 0;
  /// Consensus cost of the slot (0s when unavailable).
  Time decision_time = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint32_t decision_phase = 0;
  bool stalled = false;
  std::size_t alive = 0;
};

class ReplicaGroup {
 public:
  explicit ReplicaGroup(const ReplicaGroupConfig& config);

  /// Runs slot `slots_run()+1`'s consensus instance and returns its
  /// outcome. Deterministic for a given (config, call index).
  CommitOutcome commit_slot();

  std::uint64_t slots_run() const { return slot_; }
  std::size_t alive() const;
  const std::vector<std::uint64_t>& crash_slots() const {
    return crash_slot_;  // per replica; 0 = never crashed
  }
  const ReplicaGroupConfig& config() const { return config_; }

 private:
  ReplicaGroupConfig config_;
  std::uint64_t slot_ = 0;
  /// crash_slot_[p] != 0: replica p is crashed in every slot >= that value.
  std::vector<std::uint64_t> crash_slot_;
  Xoshiro256SS stall_rng_;
};

}  // namespace svc
}  // namespace asyncgossip
