// The EARS / SEARS epidemic gossip processes (paper Sections 3 and 4).
//
// Both algorithms share one skeleton (Figure 2): every local step, merge
// received <V, I> payloads, recompute the progress condition L(p) = { q :
// some rumor in V(p) is not known to have been sent to q }, and — unless the
// shut-down phase has run its course — push the current <V, I> snapshot to
// `fanout` targets chosen uniformly at random.
//
//  * EARS  : fanout = 1,               shut-down = Theta(n/(n-f) * log n) steps.
//  * SEARS : fanout = Theta(n^eps*log n), shut-down = 1 step.
//
// The informed-list I(p) is stored per rumor: informed_[r] is the set of
// processes that, to p's knowledge, have been *sent* rumor r. L(p) is only
// ever tested for emptiness, which we maintain incrementally via a count of
// fully-informed rumors.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitset.h"
#include "common/rng.h"
#include "gossip/rumor.h"

namespace asyncgossip {

struct EpidemicConfig {
  std::size_t n = 0;
  /// Failure tolerance parameter f < n (known to the algorithm; it sizes
  /// the shut-down phase).
  std::size_t f = 0;
  /// Random targets contacted per sending step (EARS: 1).
  std::size_t fanout = 1;
  /// Number of additional sending steps taken after L(p) first empties
  /// (and after every time it re-empties). EARS: C * n/(n-f) * ln n.
  std::uint64_t shutdown_steps = 1;
  /// Ablation switch: when false, the informed-list progress control is
  /// disabled and the process instead sends for `fallback_step_budget`
  /// local steps unconditionally before sleeping. Models the naive
  /// "repeat a fixed number of iterations" strategy the paper's
  /// introduction argues against.
  bool use_informed_list = true;
  std::uint64_t fallback_step_budget = 0;
  std::uint64_t seed = 1;
};

/// Payload of an EARS/SEARS message: an immutable snapshot of <V(p), I(p)>.
struct EpidemicPayload final : Payload {
  DynamicBitset rumors;                   // V
  std::vector<DynamicBitset> informed;    // I, indexed by rumor id;
                                          // size-0 bitset == "no pairs"

  /// V is n bits; I contributes n bits per rumor with any recorded pair
  /// (plus one presence bit per rumor). EARS messages are therefore up to
  /// Theta(n^2) bits — the price of the informed-list progress control,
  /// measured by the bit-complexity extension.
  std::size_t byte_size() const override {
    std::size_t total = rumors.byte_size() + (informed.size() + 7) / 8;
    for (const DynamicBitset& inf : informed) total += inf.byte_size();
    return total;
  }
};

class EpidemicGossipProcess final : public GossipProcess {
 public:
  EpidemicGossipProcess(ProcessId id, EpidemicConfig config);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;

  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }
  const DynamicBitset& rumors() const override { return rumors_; }
  bool quiescent() const override;
  std::uint64_t local_steps() const override { return steps_taken_; }

  /// True iff L(p) is empty: every rumor in V(p) is known-sent to all of [n].
  bool progress_done() const;
  std::uint64_t sleep_count() const { return sleep_cnt_; }
  const EpidemicConfig& config() const { return config_; }

 private:
  void absorb(const Envelope& env);
  void note_informed(std::size_t rumor, std::size_t target);
  void refresh_full_count(std::size_t rumor);
  std::shared_ptr<const EpidemicPayload> snapshot();

  ProcessId id_;
  EpidemicConfig config_;
  Xoshiro256SS rng_;

  DynamicBitset rumors_;                  // V(p)
  std::vector<DynamicBitset> informed_;   // I(p), per rumor
  std::vector<bool> rumor_fully_informed_;
  std::size_t fully_informed_count_ = 0;

  std::uint64_t sleep_cnt_ = 0;
  std::uint64_t steps_taken_ = 0;
  const char* last_phase_ = nullptr;  // last phase reported via probe_phase
  std::shared_ptr<const EpidemicPayload> cached_snapshot_;
};

/// EARS (Section 3): fanout 1, shut-down phase of
/// ceil(shutdown_constant * n/(n-f) * ln n) steps.
EpidemicConfig make_ears_config(std::size_t n, std::size_t f,
                                std::uint64_t seed,
                                double shutdown_constant = 4.0);

/// SEARS (Section 4): fanout ceil(fanout_constant * n^epsilon * ln n)
/// (clamped to [1, n]), a single shut-down step.
EpidemicConfig make_sears_config(std::size_t n, std::size_t f, double epsilon,
                                 std::uint64_t seed,
                                 double fanout_constant = 1.0);

}  // namespace asyncgossip
