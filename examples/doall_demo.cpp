// Do-All demo: cooperative task execution on gossip — the application the
// paper's reference [7] builds from gossip primitives.
//
//   $ ./doall_demo [n] [tasks] [f] [seed]
//
// Compares gossip-coordinated execution against the fault-oblivious
// "everyone does everything" strawman, in the same asynchronous crash-prone
// environment.
#include <cstdio>
#include <cstdlib>

#include "apps/doall.h"

using namespace asyncgossip;

int main(int argc, char** argv) {
  DoAllSpec spec;
  spec.config.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  spec.config.tasks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;
  spec.f = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 12;
  spec.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 21;
  spec.config.seed = spec.seed;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;

  std::printf("do-all: %zu processes, %zu tasks, up to %zu crashes\n\n",
              spec.config.n, spec.config.tasks, spec.f);

  const DoAllOutcome with = run_doall(spec);

  DoAllSpec strawman = spec;
  strawman.config.share_knowledge = false;
  const DoAllOutcome without = run_doall(strawman);

  const auto report = [&](const char* name, const DoAllOutcome& o) {
    std::printf("%-18s done=%s work=%llu (ideal %zu) msgs=%llu time=%llu "
                "survivors=%zu\n",
                name, o.completed ? "yes" : "NO",
                (unsigned long long)o.total_work, spec.config.tasks,
                (unsigned long long)o.messages,
                (unsigned long long)o.completion_time, o.alive);
  };
  report("gossip-coordinated", with);
  report("no-sharing strawman", without);

  if (with.completed && without.completed) {
    std::printf("\ngossip coordination saved %.1f%% of the work.\n",
                100.0 * (1.0 - (double)with.total_work /
                                   (double)without.total_work));
  }
  return with.completed && with.tasks_executed == spec.config.tasks ? 0 : 1;
}
