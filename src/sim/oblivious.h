// Oblivious (d, delta)-adversaries.
//
// An oblivious adversary commits to the schedule, the failure pattern and
// the message-delay pattern *in advance*: nothing it does may depend on the
// algorithm's random choices. We enforce this structurally — the class
// below never receives an EngineView; its decisions are pure functions of
// (n, f, d, delta, pattern, its own private seed, global time, message
// ordinal). Message delays keyed by the message ordinal are the standard
// simulation rendering of a pre-committed delay pattern: the adversary's
// coin flips are independent of the algorithm's coins.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/adversary.h"

namespace asyncgossip {

/// How the oblivious adversary schedules local steps.
enum class SchedulePattern {
  /// Every live process steps at every time step (delta = 1).
  kLockStep,
  /// Process p steps every period(p) steps, periods fixed at construction
  /// uniformly in [1, delta]: models heterogeneous process speeds.
  kStaggered,
  /// Each process steps with probability 1/2 per step (its laggards are
  /// force-scheduled by the engine's delta deadline).
  kRandomSubset,
  /// A rotating contiguous window of ~n/delta processes steps each time
  /// step: maximally bursty but delta-compliant scheduling.
  kRotating,
  /// Everyone steps every time step except a pre-committed straggler set
  /// (default: the last ceil(n/8) processes), which steps only every delta
  /// steps: the worst-case laggard pattern for stopping rules.
  kStraggler,
};

/// How the oblivious adversary delays messages.
enum class DelayPattern {
  /// Every message takes exactly 1 step (fastest network).
  kUnitDelay,
  /// Every message takes exactly d steps (slowest legal network).
  kMaxDelay,
  /// Uniform in [1, d].
  kUniform,
  /// Mostly fast (delay 1 w.p. 0.9), occasionally the full d: models a
  /// network with rare pathological delays (the "e-mail that took two
  /// days" from the paper's introduction).
  kBimodal,
  /// Messages *to* a pre-committed victim set (default: the last
  /// ceil(n/8) processes) take the full d; everything else is delay 1.
  /// Models asymmetric slow links without violating obliviousness.
  kTargetedSlow,
};

/// Flag-style names matching gossiplab's --schedule / --delay values.
const char* to_string(SchedulePattern pattern);
const char* to_string(DelayPattern pattern);

/// Inverse of to_string (the same flag-style names). Returns false on an
/// unknown name, leaving *out untouched. Shared by gossiplab's flag parsing
/// and the repro-artifact JSON reader (gossip/spec_json.h).
bool schedule_from_string(const std::string& name, SchedulePattern* out);
bool delay_from_string(const std::string& name, DelayPattern* out);

/// A pre-committed crash plan: (time, process) pairs, at most f of them.
using CrashPlan = std::vector<std::pair<Time, ProcessId>>;

/// Crash plan builders (all pure functions of their arguments).
CrashPlan no_crashes();
/// f distinct random victims, each at a uniform time in [0, horizon).
CrashPlan random_crashes(std::size_t n, std::size_t f, Time horizon,
                         std::uint64_t seed);
/// All f victims crash simultaneously at `when`.
CrashPlan burst_crashes(std::size_t n, std::size_t f, Time when,
                        std::uint64_t seed);
/// Crash the highest-numbered f processes at times spread over [0, horizon).
CrashPlan staggered_suffix_crashes(std::size_t n, std::size_t f, Time horizon);

struct ObliviousConfig {
  std::size_t n = 0;
  Time d = 1;
  Time delta = 1;
  SchedulePattern schedule = SchedulePattern::kLockStep;
  DelayPattern delay = DelayPattern::kUniform;
  CrashPlan crash_plan;
  std::uint64_t seed = 1;
  /// Victim sets for kStraggler / kTargetedSlow; empty = the default
  /// suffix of ceil(n/8) processes.
  std::vector<ProcessId> stragglers;
  std::vector<ProcessId> slow_targets;
};

class ObliviousAdversary final : public Adversary {
 public:
  explicit ObliviousAdversary(ObliviousConfig config);

  StepDecision decide(Time now, const EngineView& /*view*/) override {
    return decide_oblivious(now);
  }
  Time message_delay(const Envelope& env,
                     const EngineView& /*view*/) override {
    return delay_oblivious(env.id, env.to);
  }

  /// Pure-of-view decision functions (also used directly by tests).
  StepDecision decide_oblivious(Time now);
  Time delay_oblivious(MessageId ordinal, ProcessId to = 0);

 private:
  ObliviousConfig config_;
  Xoshiro256SS schedule_rng_;
  Xoshiro256SS delay_rng_;
  std::vector<Time> periods_;   // kStaggered
  std::vector<Time> phases_;    // kStaggered
  std::size_t rotate_width_;    // kRotating
  std::vector<bool> straggler_set_;  // kStraggler
  std::vector<bool> slow_set_;       // kTargetedSlow
  std::size_t crash_cursor_ = 0;
  CrashPlan sorted_plan_;
};

/// Convenience: the benign-but-legal adversary most benches use (uniform
/// delays, staggered speeds, random crashes within the given horizon).
std::unique_ptr<Adversary> make_standard_oblivious(std::size_t n, Time d,
                                                   Time delta, std::size_t f,
                                                   Time crash_horizon,
                                                   std::uint64_t seed);

}  // namespace asyncgossip
