// Passive observation of an execution.
//
// An observer sees every step, send, delivery and crash as it happens. It
// is strictly read-only — observers cannot influence the execution, so
// attaching one never changes a run (determinism tests rely on this).
// The trace recorder (sim/trace.h) is the main implementation; tests use
// ad-hoc observers to assert fine-grained event orderings.
#pragma once

#include "sim/message.h"
#include "sim/types.h"

namespace asyncgossip {

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// A process is about to execute a local step.
  virtual void on_step(Time /*now*/, ProcessId /*p*/) {}
  /// A message entered the network (counted by the metrics as a send).
  virtual void on_send(const Envelope& /*env*/) {}
  /// A message was handed to its receiver at the start of a local step.
  virtual void on_delivery(const Envelope& /*env*/, Time /*now*/) {}
  /// A process crashed.
  virtual void on_crash(Time /*now*/, ProcessId /*p*/) {}
};

}  // namespace asyncgossip
