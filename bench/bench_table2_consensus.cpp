// Table 2 reproduction: consensus protocols under an oblivious adversary,
// f < n/2.
//
//   rows     : CR (all-to-all get-core), CR-ears, CR-sears, CR-tears
//   args     : {n, d, delta}; f = n/2 - 1 (the regime the paper assumes)
//   counters : msgs_dec (messages until the last correct process decides),
//              msgs_total (until quiescence), bytes_total, steps_dec,
//              steps_quiet, phases, agree_ok / valid_ok rates, core_viol
//              (get-core commonality failures — must be 0), reannounce
//              (liveness fallback firings — should be ~0)
//
// Expected shapes (paper):
//   CR       : msgs ~ n^2,            steps ~ (d + delta)
//   CR-ears  : msgs ~ n log^3 n dd,   steps ~ log^2 n (d + delta)
//   CR-sears : msgs ~ n^{1+eps}...,   steps ~ (d + delta) / eps
//   CR-tears : msgs ~ n^{7/4} log^2 n, steps ~ (d + delta)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "consensus/canetti_rabin.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("table2");

namespace {

constexpr int kIterations = 3;

void run_case(benchmark::State& state, ExchangeKind kind, double epsilon) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Time d = static_cast<Time>(state.range(1));
  const Time delta = static_cast<Time>(state.range(2));

  ConsensusSpec spec;
  spec.config.n = n;
  spec.config.f = n / 2 - 1;
  spec.config.exchange = kind;
  spec.config.sears_epsilon = epsilon;
  spec.config.tears_a_constant = 1.0;
  spec.config.tears_kappa_constant = 1.0;
  spec.d = d;
  spec.delta = delta;
  spec.schedule =
      delta == 1 ? SchedulePattern::kLockStep : SchedulePattern::kStaggered;
  spec.delay = d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  spec.inputs = InputPattern::kHalfHalf;

  double msgs_dec = 0, msgs_total = 0, bytes_total = 0, steps_dec = 0,
         steps_quiet = 0, phases = 0, core_viol = 0, reannounce = 0;
  int agree = 0, valid = 0, runs = 0;
  constexpr std::uint64_t kSeedBase = 40009;
  std::uint64_t seed = kSeedBase;
  for (auto _ : state) {
    spec.seed = seed++;
    spec.config.seed = spec.seed;
    const ConsensusOutcome out = run_consensus_spec(spec);
    if (!out.all_decided) {
      state.SkipWithError("consensus did not terminate within the budget");
      return;
    }
    ++runs;
    msgs_dec += static_cast<double>(out.messages_at_decision);
    msgs_total += static_cast<double>(out.total_messages);
    bytes_total += static_cast<double>(out.total_bytes);
    steps_dec += static_cast<double>(out.decision_time);
    steps_quiet += static_cast<double>(out.quiet_time);
    phases += static_cast<double>(out.decision_phase);
    core_viol += static_cast<double>(out.core_violations);
    reannounce += static_cast<double>(out.reannouncements);
    agree += out.agreement ? 1 : 0;
    valid += out.validity ? 1 : 0;
    benchmark::DoNotOptimize(out.total_messages);
  }
  const double r = runs;
  state.counters["msgs_dec"] = msgs_dec / r;
  state.counters["msgs_total"] = msgs_total / r;
  state.counters["bytes_total"] = bytes_total / r;
  state.counters["steps_dec"] = steps_dec / r;
  state.counters["steps_quiet"] = steps_quiet / r;
  state.counters["steps_per_dd"] = steps_dec / r / static_cast<double>(d + delta);
  state.counters["phases"] = phases / r;
  state.counters["agree_ok"] = agree / r;
  state.counters["valid_ok"] = valid / r;
  state.counters["core_viol"] = core_viol / r;
  state.counters["reannounce"] = reannounce / r;
  record_case(state, std::string("cr-") + to_string(kind) + "/n:" +
                         std::to_string(n) + "/f:" +
                         std::to_string(spec.config.f) + "/d:" +
                         std::to_string(d) + "/delta:" +
                         std::to_string(delta) +
                         "/eps:" + std::to_string(epsilon) +
                         "/seed:" + std::to_string(kSeedBase));
}

void BM_CR(benchmark::State& state) {
  run_case(state, ExchangeKind::kAllToAll, 0.5);
}
void BM_CR_Ears(benchmark::State& state) {
  run_case(state, ExchangeKind::kEars, 0.5);
}
void BM_CR_SearsQuarter(benchmark::State& state) {
  run_case(state, ExchangeKind::kSears, 0.25);
}
void BM_CR_SearsHalf(benchmark::State& state) {
  run_case(state, ExchangeKind::kSears, 0.5);
}
void BM_CR_Tears(benchmark::State& state) {
  run_case(state, ExchangeKind::kTears, 0.5);
}

const std::vector<std::vector<std::int64_t>> kGrid = {
    {32, 64, 128, 256},  // n
    {1, 4},              // d
    {1, 3},              // delta
};

BENCHMARK(BM_CR)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_CR_Ears)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_CR_SearsQuarter)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_CR_SearsHalf)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_CR_Tears)->ArgsProduct(kGrid)->Iterations(kIterations);

}  // namespace
}  // namespace asyncgossip::bench
