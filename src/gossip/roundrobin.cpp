#include "gossip/roundrobin.h"

#include "common/assert.h"

namespace asyncgossip {

RoundRobinGossipProcess::RoundRobinGossipProcess(ProcessId id,
                                                 EpidemicConfig config)
    : id_(id),
      config_(config),
      rumors_(config.n),
      informed_(config.n),
      rumor_fully_informed_(config.n, false) {
  AG_ASSERT_MSG(config_.n >= 2 && id < config_.n, "bad process id / n");
  AG_ASSERT_MSG(config_.f < config_.n, "round-robin gossip needs f < n");
  rumors_.set(id_);
}

bool RoundRobinGossipProcess::progress_done() const {
  return fully_informed_count_ == rumors_.count();
}

bool RoundRobinGossipProcess::quiescent() const {
  if (steps_taken_ == 0) return false;
  return progress_done() && sleep_cnt_ >= config_.shutdown_steps;
}

void RoundRobinGossipProcess::refresh_full_count(std::size_t rumor) {
  if (rumor_fully_informed_[rumor]) return;
  const DynamicBitset& inf = informed_[rumor];
  if (inf.size() != 0 && inf.all()) {
    rumor_fully_informed_[rumor] = true;
    ++fully_informed_count_;
  }
}

void RoundRobinGossipProcess::note_informed(std::size_t rumor,
                                            std::size_t target) {
  DynamicBitset& inf = informed_[rumor];
  if (inf.size() == 0) inf = DynamicBitset(config_.n);
  if (inf.set_and_check(target)) {
    cached_snapshot_.reset();
    refresh_full_count(rumor);
  }
}

void RoundRobinGossipProcess::absorb(const Envelope& env) {
  const auto* m = payload_cast<EpidemicPayload>(env);
  if (m == nullptr) return;
  if (rumors_.merge(m->rumors)) cached_snapshot_.reset();
  for (std::size_t r = 0; r < config_.n; ++r) {
    const DynamicBitset& theirs = m->informed[r];
    if (theirs.size() == 0) continue;
    DynamicBitset& mine = informed_[r];
    if (mine.size() == 0) mine = DynamicBitset(config_.n);
    if (mine.merge(theirs)) {
      cached_snapshot_.reset();
      refresh_full_count(r);
    }
  }
}

std::shared_ptr<const EpidemicPayload> RoundRobinGossipProcess::snapshot() {
  if (!cached_snapshot_) {
    auto snap = std::make_shared<EpidemicPayload>();
    snap->rumors = rumors_;
    snap->informed = informed_;
    cached_snapshot_ = std::move(snap);
  }
  return cached_snapshot_;
}

void RoundRobinGossipProcess::step(StepContext& ctx) {
  for (const Envelope& env : ctx.received()) absorb(env);

  if (progress_done()) {
    ++sleep_cnt_;
  } else {
    sleep_cnt_ = 0;
  }

  const char* phase = sleep_cnt_ == 0              ? "epidemic"
                      : sleep_cnt_ <= config_.shutdown_steps ? "shutdown"
                                                             : "asleep";
  if (phase != last_phase_) {
    ctx.probe_phase(phase);
    last_phase_ = phase;
  }
  ctx.probe_state(rumors_.count(), fully_informed_count_);

  if (sleep_cnt_ <= config_.shutdown_steps) {
    const auto q = static_cast<ProcessId>(
        (id_ + next_target_offset_) % config_.n);
    next_target_offset_ = next_target_offset_ % (config_.n - 1) + 1;
    ctx.send(q, snapshot());
    rumors_.for_each_set([&](std::size_t r) { note_informed(r, q); });
  }
  ++steps_taken_;
}

std::unique_ptr<Process> RoundRobinGossipProcess::clone() const {
  return std::make_unique<RoundRobinGossipProcess>(*this);
}

}  // namespace asyncgossip
