// aglint-fixture-as: src/sim/shard_pool.cpp
// aglint-expect: AG-LCK-002
//
// The engine's shard pool is the only threaded code in src/sim, so it is
// held to the same lock discipline as src/rt: raw std::mutex /
// std::condition_variable_any carry no capability annotations, which makes
// every guarded field invisible to clang's -Wthread-safety. The pool must
// use asyncgossip::Mutex / MutexLock / CondVar (common/thread_annotations.h).
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace asyncgossip {

class BadShardPool {
 public:
  void publish(std::size_t count) {
    const std::lock_guard<std::mutex> lock(mu_);  // AG-LCK-002
    count_ = count;
    ++generation_;
    wake_.notify_all();
  }

 private:
  std::mutex mu_;                      // AG-LCK-002
  std::condition_variable_any wake_;   // AG-LCK-002
  std::size_t count_ = 0;
  std::size_t generation_ = 0;
};

}  // namespace asyncgossip
