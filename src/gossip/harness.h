// One-call experiment harness: build processes + oblivious adversary +
// engine from a declarative spec, run to quiescence, return the outcome.
// Tests, benches and examples all funnel through this, so every experiment
// is reproducible from its GossipSpec alone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gossip/completion.h"
#include "sim/audit.h"
// aglint:allow(AG-LAY-002) the harness is the runner seam itself: it
// builds and drives the Engine from a GossipSpec. Algorithm files (tears,
// epidemic, ...) must not include sim/engine.h; this one alone may.
#include "sim/engine.h"
#include "sim/oblivious.h"

namespace asyncgossip {

class TelemetryCollector;
struct TelemetryConfig;
struct GossipSpec;

enum class GossipAlgorithm {
  kTrivial,
  kEars,
  kSears,
  kTears,
  kSync,
  /// EARS with the informed-list progress control disabled (ablation):
  /// quiescence falls back to a fixed local-step budget.
  kEarsNoInformedList,
  /// Message-frugal cascading foil for the Theorem 1 Case 2 construction
  /// (see gossip/lazy.h); not a Table 1 contender.
  kLazy,
  /// Deterministic EARS variant: cyclic instead of random targets (the
  /// paper's open question about deterministic asynchronous gossip).
  kRoundRobin,
  /// Canetti-Rabin consensus over the gossip transports (paper Section 6 /
  /// Table 2). These run through the same spec/engine/rt seams as the plain
  /// gossip algorithms; process construction is delegated to the consensus
  /// layer via set_consensus_process_factory (the gossip layer cannot
  /// include consensus headers).
  kCrEars,
  kCrSears,
  kCrTears,
};

const char* to_string(GossipAlgorithm algorithm);

/// Inverse of to_string (the same flag-style names, e.g. "ears",
/// "ears-no-informed-list"). Returns false on an unknown name, leaving
/// *out untouched. Shared by gossiplab's flag parsing and the
/// repro-artifact reader (gossip/spec_json.h).
bool algorithm_from_string(const std::string& name, GossipAlgorithm* out);

/// True for the consensus-over-gossip palette entries (kCrEars/kCrSears/
/// kCrTears). These have different completion semantics: they solve binary
/// consensus, not rumor gathering, so the gathering/majority postconditions
/// do not apply and runtime drivers judge them via per-process final notes
/// instead (see consensus/cr_gossip.h).
bool is_consensus_algorithm(GossipAlgorithm algorithm);

/// Hook through which the consensus layer plugs its process construction
/// into make_gossip_processes without a gossip->consensus dependency edge.
/// The factory must build all n processes for the spec (inputs derived
/// deterministically from spec.seed so independent builders — e.g. one per
/// multiproc worker — agree on every process's input). Registration is
/// process-global and must happen before the first cr-* spec is built;
/// consensus::register_consensus_algorithms() does it.
using ConsensusProcessFactory =
    std::vector<std::unique_ptr<Process>> (*)(const GossipSpec& spec);
void set_consensus_process_factory(ConsensusProcessFactory factory);

/// Default for GossipSpec::engine_jobs: the AG_ENGINE_JOBS environment
/// variable parsed as a non-negative integer (0 = hardware concurrency), or
/// 1 (serial) when unset or unparsable. Read once per call so tests can
/// vary the environment.
std::size_t default_engine_jobs();

struct GossipSpec {
  GossipAlgorithm algorithm = GossipAlgorithm::kEars;
  std::size_t n = 0;
  std::size_t f = 0;  // crash budget; also the algorithms' tolerance knob
  Time d = 1;
  Time delta = 1;
  std::uint64_t seed = 1;

  // Adversary shape. Crash times are drawn in [0, crash_horizon).
  SchedulePattern schedule = SchedulePattern::kLockStep;
  DelayPattern delay = DelayPattern::kUniform;
  Time crash_horizon = 64;

  // Algorithm knobs (defaults match the paper; see module headers).
  double sears_epsilon = 0.5;
  double sears_fanout_constant = 1.0;
  double ears_shutdown_constant = 4.0;
  double tears_a_constant = 4.0;
  double tears_kappa_constant = 8.0;
  double sync_rounds_constant = 3.0;
  std::size_t lazy_fanout = 2;
  std::uint64_t fallback_step_budget = 0;  // kEarsNoInformedList only

  /// Step budget for the run; 0 = an automatic generous bound.
  Time max_steps = 0;

  /// Worker threads for sharded intra-run stepping (EngineConfig::jobs):
  /// 1 = serial, 0 = hardware concurrency, k = exactly k. The default
  /// honors the AG_ENGINE_JOBS environment variable (default_engine_jobs()),
  /// falling back to serial. Results are bit-identical for every value.
  std::size_t engine_jobs = default_engine_jobs();

  /// If true, an InvariantAuditor (sim/audit.h) observes the run and
  /// independently re-checks the full (d, delta, f) model contract;
  /// run_gossip_spec throws ModelViolation if it finds anything. Use
  /// run_audited_gossip_spec to inspect the report instead of throwing.
  bool audit = false;

  /// Optional run telemetry (sim/telemetry.h). When non-null, the collector
  /// is attached as an extra observer + probe sink for the run and
  /// finalize()d afterwards; it must outlive the call and have been built
  /// for this spec's (n, d, delta) — telemetry_config(spec) does that.
  /// Telemetry never perturbs the run (same trace hash and metrics).
  TelemetryCollector* telemetry = nullptr;

  /// Optional flight-recorder ring (common/flight_recorder.h). When
  /// non-null the engine records causal send/deliver spans and hot-path
  /// profiling zones into it; the ring must outlive the call. Like
  /// telemetry, recording never perturbs the run — trace hash, Metrics and
  /// telemetry output are bit-identical with the ring attached or not.
  FlightRing* flight = nullptr;
};

/// TelemetryConfig matching a spec's model parameters.
TelemetryConfig telemetry_config(const GossipSpec& spec);

/// Builds the process vector for a spec (exposed so consensus and the
/// lower-bound driver can reuse algorithm construction).
std::vector<std::unique_ptr<Process>> make_gossip_processes(
    const GossipSpec& spec);

/// Builds the engine (processes + oblivious adversary per spec).
Engine make_gossip_engine(const GossipSpec& spec);

/// Runs the spec to quiescence and reports the outcome. With spec.audit
/// set, the run is audited and a non-empty ViolationReport throws
/// ModelViolation carrying the report summary.
GossipOutcome run_gossip_spec(const GossipSpec& spec);

/// A gossip outcome together with the audit findings of the run.
struct AuditedGossipOutcome {
  GossipOutcome outcome;
  ViolationReport audit;
  /// The engine's full-trace FNV hash for the run (determinism fingerprint).
  std::uint64_t trace_hash = 0;
};

/// Runs the spec with an InvariantAuditor attached (regardless of
/// spec.audit) and returns the accumulated report for inspection — the
/// auditor never throws, so deliberately hostile runs can be examined.
AuditedGossipOutcome run_audited_gossip_spec(const GossipSpec& spec);

/// Default step budget used when spec.max_steps == 0.
Time default_step_budget(const GossipSpec& spec);

/// Whether the algorithm's contract requires full rumor gathering at
/// completion under this spec's model parameters: tears solves majority
/// gossip only, lazy promises completion only, and the synchronous
/// baseline's spread guarantee holds only in the d = delta = 1 regime its
/// fixed round budget assumes. Shared by the fuzz oracle and the real-time
/// runtime's postcondition checks (rt/driver.h), so "what must this run
/// achieve" has exactly one definition.
bool gossip_requires_gathering(const GossipSpec& spec);

/// Same, for the majority-gossip requirement (everyone knows > n/2
/// rumors): lazy is exempt, sync only outside d = delta = 1.
bool gossip_requires_majority(const GossipSpec& spec);

/// Canonical case label for a spec: "ears/n:256/f:64/d:4/delta:3". Shared
/// by the bench JSON report and `gossiplab sweep` so the same experiment
/// carries the same name everywhere.
std::string spec_label(const GossipSpec& spec);

/// One sweep entry's result: the outcome plus the engine's trace hash — the
/// fingerprint the determinism tests compare across worker counts.
struct GossipSweepResult {
  GossipOutcome outcome;
  std::uint64_t trace_hash = 0;
};

/// Runs every spec and returns the results in input order, bit-identical
/// for any `jobs` value (0 = hardware concurrency, 1 = run inline). Specs
/// honor their audit flag exactly like run_gossip_spec. Runs execute
/// concurrently, so with jobs > 1 any spec.telemetry collectors must be
/// distinct objects (one per spec). If a run throws (step-budget API error,
/// audit violation, ...), the remaining runs still finish and the exception
/// of the lowest-index failing spec is rethrown; when more than one spec
/// failed, the rethrown message additionally records the total failure
/// count and the labels of the first few other failing specs.
std::vector<GossipSweepResult> run_gossip_sweep(
    const std::vector<GossipSpec>& specs, std::size_t jobs = 0);

}  // namespace asyncgossip
