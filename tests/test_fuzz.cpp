#include "sim/fuzz.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"
#include "gossip/fuzz_harness.h"
#include "gossip/spec_json.h"
#include "sim/telemetry_export.h"

namespace asyncgossip {
namespace {

TEST(FuzzSample, DeterministicStream) {
  FuzzDomain domain;
  domain.algorithms = 4;
  Xoshiro256SS a(99), b(99);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(sample_case(domain, a), sample_case(domain, b));
}

TEST(FuzzSample, RespectsDomain) {
  FuzzDomain domain;
  domain.algorithms = 3;
  Xoshiro256SS rng(7);
  for (int i = 0; i < 500; ++i) {
    const FuzzCase c = sample_case(domain, rng);
    EXPECT_LT(c.algorithm, domain.algorithms);
    EXPECT_GE(c.n, 2u);
    // f stays within the fraction cap and below n.
    EXPECT_LE(static_cast<double>(c.f),
              domain.max_f_fraction * static_cast<double>(c.n));
    EXPECT_LT(c.f, c.n);
    EXPECT_GE(c.d, 1u);
    EXPECT_LE(c.d, domain.max_d);
    EXPECT_GE(c.delta, 1u);
    EXPECT_LE(c.delta, domain.max_delta);
    EXPECT_GE(c.crash_horizon, 1u);
    EXPECT_LE(c.crash_horizon, domain.max_crash_horizon);
  }
}

TEST(FuzzLoop, StopsAtMaxFailures) {
  FuzzDomain domain;
  FuzzOptions options;
  options.iterations = 100;
  options.max_failures = 3;
  std::size_t calls = 0;
  const FuzzReport report = run_fuzz(domain, options, [&](const FuzzCase&) {
    ++calls;
    FuzzVerdict v;
    v.ok = false;
    v.failure = "always";
    return v;
  });
  EXPECT_EQ(report.failures.size(), 3u);
  EXPECT_EQ(report.cases_run, 3u);
  EXPECT_EQ(calls, 3u);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures[2].iteration, 2u);
}

TEST(FuzzLoop, SampledCasesArePrefixStable) {
  // The i-th case depends only on (domain, seed, i): a short run samples a
  // prefix of a long run's cases.
  FuzzDomain domain;
  const auto collect = [&](std::uint64_t iterations) {
    FuzzOptions options;
    options.iterations = iterations;
    options.seed = 5;
    options.max_failures = iterations + 1;  // never stop early
    std::vector<FuzzCase> cases;
    run_fuzz(domain, options, [&](const FuzzCase& c) {
      cases.push_back(c);
      FuzzVerdict v;
      v.ok = false;  // count every case, stop never (limit above)
      return v;
    });
    return cases;
  };
  const std::vector<FuzzCase> small = collect(4);
  const std::vector<FuzzCase> large = collect(12);
  ASSERT_EQ(small.size(), 4u);
  ASSERT_EQ(large.size(), 12u);
  for (std::size_t i = 0; i < small.size(); ++i)
    EXPECT_EQ(small[i], large[i]) << "case " << i << " not prefix-stable";
}

TEST(AuditEvents, CleanStreamPasses) {
  AuditConfig cfg;
  cfg.n = 2;
  cfg.d = 1;
  cfg.delta = 1;
  std::vector<TraceRecorder::Event> events;
  using Kind = TraceRecorder::EventKind;
  events.push_back({Kind::kStep, 0, 0, kNoProcess, 0, 0, 0});
  events.push_back({Kind::kStep, 0, 1, kNoProcess, 0, 0, 0});
  EXPECT_TRUE(audit_events(events, cfg).ok());
}

TEST(AuditEvents, DetectsDuplicatedStep) {
  AuditConfig cfg;
  cfg.n = 2;
  cfg.d = 1;
  cfg.delta = 1;
  std::vector<TraceRecorder::Event> events;
  using Kind = TraceRecorder::EventKind;
  events.push_back({Kind::kStep, 0, 0, kNoProcess, 0, 0, 0});
  events.push_back({Kind::kStep, 0, 0, kNoProcess, 0, 0, 0});
  events.push_back({Kind::kStep, 0, 1, kNoProcess, 0, 0, 0});
  const ViolationReport report = audit_events(events, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.count(ViolationKind::kDoubleStep), 1u);
}

// --- the gossip oracle ------------------------------------------------------

FuzzCase small_case() {
  FuzzCase c;
  c.algorithm = 1;  // ears (see fuzz_algorithms())
  c.n = 8;
  c.f = 2;
  c.d = 2;
  c.delta = 2;
  c.schedule = SchedulePattern::kStaggered;
  c.delay = DelayPattern::kUniform;
  c.crash_horizon = 16;
  c.seed = 42;
  return c;
}

TEST(GossipOracle, CleanRunPasses) {
  const FuzzOracle oracle = make_gossip_fuzz_oracle();
  const FuzzVerdict v = oracle(small_case());
  EXPECT_TRUE(v.ok) << v.failure;
  EXPECT_NE(v.trace_hash, 0u);
}

TEST(GossipOracle, Deterministic) {
  const FuzzOracle oracle = make_gossip_fuzz_oracle();
  const FuzzVerdict a = oracle(small_case());
  const FuzzVerdict b = oracle(small_case());
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

TEST(GossipOracle, InjectedViolationIsDetectedWithoutPerturbingTheRun) {
  // The mutation corrupts an offline copy of the event stream, so the
  // oracle must flag it while reporting the *unchanged* trace hash of the
  // honest run — that is what keeps the shrunk artifact replayable.
  EventMutator mutate;
  ASSERT_TRUE(event_mutator_from_string("double-step", &mutate));
  const FuzzOracle clean = make_gossip_fuzz_oracle();
  const FuzzOracle injected = make_gossip_fuzz_oracle(mutate);
  const FuzzVerdict honest = clean(small_case());
  const FuzzVerdict v = injected(small_case());
  ASSERT_TRUE(honest.ok) << honest.failure;
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure.rfind("injected-audit:", 0), 0u) << v.failure;
  EXPECT_EQ(v.trace_hash, honest.trace_hash);
}

TEST(GossipOracle, UnknownMutatorNameRejected) {
  EventMutator mutate;
  EXPECT_FALSE(event_mutator_from_string("no-such-mutator", &mutate));
  for (const char* name : {"late-delivery", "double-step", "phantom-crash"})
    EXPECT_TRUE(event_mutator_from_string(name, &mutate)) << name;
}

TEST(GossipOracle, SpecFromCaseRejectsBadAlgorithmIndex) {
  FuzzCase c = small_case();
  c.algorithm = fuzz_algorithms().size();
  EXPECT_THROW(spec_from_fuzz_case(c), ApiError);
}

// --- the full pipeline: find -> shrink -> artifact -> replay ---------------

TEST(GossipFuzz, FindsInjectedViolationShrinksAndReplays) {
  GossipFuzzOptions options;
  options.fuzz.iterations = 10;
  options.fuzz.seed = 3;
  ASSERT_TRUE(event_mutator_from_string("double-step", &options.mutate));
  options.artifact_prefix = testing::TempDir() + "asyncgossip_fuzz_pipeline";
  const GossipFuzzResult result = run_gossip_fuzz(options);

  ASSERT_TRUE(result.found_failure);
  EXPECT_EQ(result.minimal_verdict.failure.rfind("injected-audit:", 0), 0u);
  // The shrunk case is no more complex than the original failure.
  const FuzzCase& original = result.report.failures.front().c;
  EXPECT_LE(result.minimal.n, original.n);
  EXPECT_LE(result.minimal.f, original.f);

  // The artifact round-trips and replays bit-identically.
  ASSERT_FALSE(result.spec_artifact.empty());
  std::ifstream is(result.spec_artifact);
  ASSERT_TRUE(is.good());
  ReproArtifact artifact;
  std::string error;
  ASSERT_TRUE(read_repro_json(is, &artifact, &error)) << error;
  EXPECT_EQ(artifact.trace_hash, result.minimal_verdict.trace_hash);
  std::string detail;
  EXPECT_TRUE(replay_repro(artifact, &detail)) << detail;

  std::remove(result.spec_artifact.c_str());
  std::remove(result.trace_artifact.c_str());
}

TEST(GossipFuzz, CleanSmokeSweepFindsNothing) {
  // A short honest fuzz sweep over every algorithm must come back clean —
  // this is the PR-CI smoke slice in miniature.
  GossipFuzzOptions options;
  options.fuzz.iterations = 25;
  options.fuzz.seed = 1;
  const GossipFuzzResult result = run_gossip_fuzz(options);
  EXPECT_FALSE(result.found_failure)
      << gossip_case_label(result.report.failures.front().c) << ": "
      << result.report.failures.front().verdict.failure;
  EXPECT_EQ(result.report.cases_run, 25u);
}

// --- repro artifact JSON ----------------------------------------------------

TEST(SpecJson, RoundTripsAllFields) {
  ReproArtifact artifact;
  artifact.spec.algorithm = GossipAlgorithm::kTears;
  artifact.spec.n = 17;
  artifact.spec.f = 5;
  artifact.spec.d = 3;
  artifact.spec.delta = 2;
  // Seeds above 2^53 must survive: they travel as decimal strings.
  artifact.spec.seed = 0xFFFFFFFFFFFFFFF5ULL;
  artifact.spec.schedule = SchedulePattern::kStraggler;
  artifact.spec.delay = DelayPattern::kBimodal;
  artifact.spec.crash_horizon = 9;
  artifact.spec.sears_epsilon = 0.25;
  artifact.spec.max_steps = 1234;
  artifact.trace_hash = 0xFFFFFFFFFFFFFFFEULL;
  artifact.failure = "postcondition: \"majority\"\n(second line)";

  std::ostringstream os;
  write_repro_json(os, artifact);
  std::string json_err;
  EXPECT_TRUE(json_valid(os.str(), &json_err)) << json_err;

  std::istringstream is(os.str());
  ReproArtifact back;
  std::string error;
  ASSERT_TRUE(read_repro_json(is, &back, &error)) << error;
  EXPECT_EQ(back.spec.algorithm, artifact.spec.algorithm);
  EXPECT_EQ(back.spec.n, artifact.spec.n);
  EXPECT_EQ(back.spec.f, artifact.spec.f);
  EXPECT_EQ(back.spec.d, artifact.spec.d);
  EXPECT_EQ(back.spec.delta, artifact.spec.delta);
  EXPECT_EQ(back.spec.seed, artifact.spec.seed);
  EXPECT_EQ(back.spec.schedule, artifact.spec.schedule);
  EXPECT_EQ(back.spec.delay, artifact.spec.delay);
  EXPECT_EQ(back.spec.crash_horizon, artifact.spec.crash_horizon);
  EXPECT_DOUBLE_EQ(back.spec.sears_epsilon, artifact.spec.sears_epsilon);
  EXPECT_EQ(back.spec.max_steps, artifact.spec.max_steps);
  EXPECT_EQ(back.trace_hash, artifact.trace_hash);
  EXPECT_EQ(back.failure, artifact.failure);
}

TEST(SpecJson, RejectsBadDocuments) {
  const auto rejects = [](const std::string& text) {
    std::istringstream is(text);
    ReproArtifact artifact;
    std::string error;
    const bool ok = read_repro_json(is, &artifact, &error);
    EXPECT_FALSE(ok) << text;
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
  };
  rejects("");
  rejects("{}");  // missing schema
  rejects(R"({"schema": "something-else", "spec": {"algorithm": "ears", "n": 4}})");
  rejects(R"({"schema": "asyncgossip-repro-v1", "spec": {"n": 4}})");
  rejects(R"({"schema": "asyncgossip-repro-v1", "spec": {"algorithm": "nope", "n": 4}})");
  rejects(R"({"schema": "asyncgossip-repro-v1", "spec": {"algorithm": "ears"}})");
  rejects(R"({"schema": "asyncgossip-repro-v1", "spec": {"algorithm": "ears", "n": 4, "f": 9}})");
  rejects(R"({"schema": "asyncgossip-repro-v1", "spec": {"algorithm": "ears", "n": 4}} trailing)");
}

TEST(SpecJson, IgnoresUnknownKeys) {
  const std::string text = R"({
    "schema": "asyncgossip-repro-v1",
    "future_field": {"nested": 1},
    "spec": {"algorithm": "sync", "n": 6, "new_knob": "whatever"}
  })";
  std::istringstream is(text);
  ReproArtifact artifact;
  std::string error;
  ASSERT_TRUE(read_repro_json(is, &artifact, &error)) << error;
  EXPECT_EQ(artifact.spec.algorithm, GossipAlgorithm::kSync);
  EXPECT_EQ(artifact.spec.n, 6u);
}

}  // namespace
}  // namespace asyncgossip
