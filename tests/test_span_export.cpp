// Tests for the flight-log / Chrome-trace exporters (sim/span_export.h).
// The artifact contracts: the text flight log round-trips losslessly; the
// exported trace is byte-for-byte deterministic (golden fixture below) and
// strict valid JSON (json_valid, the same checker CI's Python re-parse
// backs up); and the span summary's percentiles are nearest-rank exact.
// The end-to-end half drives a real rt run with the recorder on and
// cross-checks the recorded spans against the run's own outcome counters.
#include "sim/span_export.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "rt/driver.h"
#include "sim/telemetry_export.h"

namespace asyncgossip {
namespace {

FlightRecord make_send(std::uint64_t id, std::uint32_t from, std::uint32_t to,
                       std::uint64_t tick, std::uint64_t wall_ns,
                       std::uint64_t deliver_after) {
  FlightRecord r;
  r.kind = static_cast<std::uint64_t>(FlightKind::kSend);
  r.a = id;
  r.b = FlightRecord::pack_link(from, to);
  r.tick = tick;
  r.wall_ns = wall_ns;
  r.extra = deliver_after;
  return r;
}

FlightRecord make_deliver(std::uint64_t id, std::uint32_t from,
                          std::uint32_t to, std::uint64_t tick,
                          std::uint64_t wall_ns, std::uint64_t send_tick) {
  FlightRecord r = make_send(id, from, to, tick, wall_ns, send_tick);
  r.kind = static_cast<std::uint64_t>(FlightKind::kDeliver);
  return r;
}

FlightRecord make_zone(FlightZoneId zone, std::uint64_t actor,
                       std::uint64_t tick, std::uint64_t wall_ns,
                       std::uint64_t dur_ns) {
  FlightRecord r;
  r.kind = static_cast<std::uint64_t>(FlightKind::kZone);
  r.a = static_cast<std::uint64_t>(zone);
  r.b = actor;
  r.tick = tick;
  r.wall_ns = wall_ns;
  r.extra = dur_ns;
  return r;
}

FlightLogHeader small_header() {
  FlightLogHeader h;
  h.n = 4;
  h.tick_us = 100;
  h.realized_d = 3;
  h.realized_delta = 2;
  h.dropped = 0;
  return h;
}

std::vector<FlightRecord> small_records() {
  return {
      make_send(0, 1, 2, 5, 1000500, 8),
      make_zone(FlightZoneId::kAlgoStep, 1, 5, 1001000, 2500),
      make_deliver(0, 1, 2, 8, 1003000, 5),
  };
}

TEST(FlightLog, RoundTripsEveryFieldThroughTheTextFormat) {
  const FlightLogHeader header = small_header();
  const std::vector<FlightRecord> records = small_records();
  std::ostringstream os;
  write_flight_log(os, header, records);

  std::istringstream is(os.str());
  FlightLogHeader parsed_header;
  std::vector<FlightRecord> parsed;
  std::string error;
  ASSERT_TRUE(read_flight_log(is, &parsed_header, &parsed, &error)) << error;
  EXPECT_EQ(parsed_header.n, header.n);
  EXPECT_EQ(parsed_header.tick_us, header.tick_us);
  EXPECT_EQ(parsed_header.realized_d, header.realized_d);
  EXPECT_EQ(parsed_header.realized_delta, header.realized_delta);
  EXPECT_EQ(parsed_header.dropped, header.dropped);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, records[i].kind) << i;
    EXPECT_EQ(parsed[i].a, records[i].a) << i;
    EXPECT_EQ(parsed[i].b, records[i].b) << i;
    EXPECT_EQ(parsed[i].tick, records[i].tick) << i;
    EXPECT_EQ(parsed[i].wall_ns, records[i].wall_ns) << i;
    EXPECT_EQ(parsed[i].extra, records[i].extra) << i;
  }
}

TEST(FlightLog, RejectsMalformedInputWithADiagnostic) {
  FlightLogHeader header;
  std::vector<FlightRecord> records;
  std::string error;

  std::istringstream empty("");
  EXPECT_FALSE(read_flight_log(empty, &header, &records, &error));
  EXPECT_FALSE(error.empty());

  std::istringstream bad_magic("# something else\n");
  EXPECT_FALSE(read_flight_log(bad_magic, &header, &records, &error));

  std::istringstream bad_record(
      "# asyncgossip flight v1\n"
      "model n=4 tick_us=100 realized_d=3 realized_delta=2 dropped=0\n"
      "send 0 1\n");
  EXPECT_FALSE(read_flight_log(bad_record, &header, &records, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;

  std::istringstream bad_zone(
      "# asyncgossip flight v1\n"
      "model n=4 tick_us=100 realized_d=3 realized_delta=2 dropped=0\n"
      "zone warp-drive 0 1 2 3\n");
  EXPECT_FALSE(read_flight_log(bad_zone, &header, &records, &error));
  EXPECT_NE(error.find("warp-drive"), std::string::npos) << error;
}

TEST(ChromeTrace, MatchesTheGoldenFixtureByteForByte) {
  // Hand-checked golden: epoch is the earliest wall_ns (1000500), so the
  // send opens the trace at ts 0.000; the metadata rows name the two
  // participating actors. Any byte-level drift here is a schema change —
  // update docs/OBSERVABILITY.md and the CI re-parse alongside.
  const char* golden =
      "{\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"otherData\": {\"schema\": \"asyncgossip-spans-v1\", \"n\": \"4\", "
      "\"tick_us\": \"100\", \"realized_d\": \"3\", \"realized_delta\": "
      "\"2\", \"dropped\": \"0\"},\n"
      "\"traceEvents\": [\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 1, "
      "\"args\": {\"name\": \"proc-1\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 2, "
      "\"args\": {\"name\": \"proc-2\"}},\n"
      "{\"name\": \"msg 0\", \"cat\": \"msg\", \"ph\": \"b\", \"id\": 0, "
      "\"pid\": 0, \"tid\": 1, \"ts\": 0.000, \"args\": {\"from\": 1, "
      "\"to\": 2, \"send_tick\": 5, \"deliver_after_tick\": 8}},\n"
      "{\"name\": \"algo-step\", \"cat\": \"zone\", \"ph\": \"X\", "
      "\"pid\": 0, \"tid\": 1, \"ts\": 0.500, \"dur\": 2.500, \"args\": "
      "{\"tick\": 5}},\n"
      "{\"name\": \"msg 0\", \"cat\": \"msg\", \"ph\": \"e\", \"id\": 0, "
      "\"pid\": 0, \"tid\": 2, \"ts\": 2.500, \"args\": {\"deliver_tick\": "
      "8, \"send_tick\": 5}}\n"
      "]\n"
      "}\n";
  std::ostringstream os;
  write_chrome_trace(os, small_header(), small_records());
  EXPECT_EQ(os.str(), golden);

  std::string error;
  EXPECT_TRUE(json_valid(os.str(), &error)) << error;
}

TEST(ChromeTrace, EmptyRecordSetIsStillValidJson) {
  std::ostringstream os;
  write_chrome_trace(os, small_header(), {});
  std::string error;
  EXPECT_TRUE(json_valid(os.str(), &error)) << error;
}

TEST(SpanSummary, PercentilesAreNearestRankExact) {
  std::vector<FlightRecord> records;
  // Ten messages with latencies exactly 1..10 microseconds.
  for (std::uint64_t i = 1; i <= 10; ++i) {
    records.push_back(make_send(i, 0, 1, 0, 1000 * 1000, 1));
    records.push_back(make_deliver(i, 0, 1, 1, 1000 * 1000 + i * 1000, 0));
  }
  // An unpaired deliver (its send was overwritten in the ring): counted as
  // a deliver but never as a pair, and never in the latency sample.
  records.push_back(make_deliver(99, 2, 3, 1, 5000, 0));

  const SpanSummary s = summarize_spans(records);
  EXPECT_EQ(s.sends, 10u);
  EXPECT_EQ(s.delivers, 11u);
  EXPECT_EQ(s.paired, 10u);
  EXPECT_DOUBLE_EQ(s.p50_us, 5.0);   // rank ceil(0.50 * 10) = 5
  EXPECT_DOUBLE_EQ(s.p95_us, 10.0);  // rank ceil(0.95 * 10) = 10
  EXPECT_DOUBLE_EQ(s.p99_us, 10.0);
  EXPECT_DOUBLE_EQ(s.max_us, 10.0);
  EXPECT_TRUE(s.zones.empty());
}

TEST(SpanSummary, ZoneTotalsAggregateInIdOrder) {
  std::vector<FlightRecord> records = {
      make_zone(FlightZoneId::kAlgoStep, 0, 1, 100, 1500),
      make_zone(FlightZoneId::kWheelDrain, 0, 1, 200, 500),
      make_zone(FlightZoneId::kAlgoStep, 1, 2, 300, 2500),
  };
  const SpanSummary s = summarize_spans(records);
  ASSERT_EQ(s.zones.size(), 2u);
  EXPECT_EQ(s.zones[0].name, "wheel-drain");  // id order, not record order
  EXPECT_EQ(s.zones[0].count, 1u);
  EXPECT_DOUBLE_EQ(s.zones[0].total_ms, 0.0005);
  EXPECT_EQ(s.zones[1].name, "algo-step");
  EXPECT_EQ(s.zones[1].count, 2u);
  EXPECT_DOUBLE_EQ(s.zones[1].total_ms, 0.004);
}

// --- end to end through the real-time runtime -----------------------------

RtConfig flight_rt_config() {
  RtConfig config;
  config.spec.algorithm = GossipAlgorithm::kEars;
  config.spec.n = 10;
  config.spec.f = 2;
  config.spec.d = 3;
  config.spec.delta = 2;
  config.spec.seed = 11;
  config.inject = RtInject::kNone;
  config.tick_us = 100;
  config.flight = true;
  return config;
}

TEST(FlightRtEndToEnd, SpansCrossCheckTheRunsOwnCounters) {
  const RtConfig config = flight_rt_config();
  const RtRunResult res = run_realtime(config);
  ASSERT_TRUE(res.outcome.completed);
  ASSERT_FALSE(res.flight.empty());
  EXPECT_EQ(res.flight_dropped, 0u);  // default capacity dwarfs this run

  std::uint64_t sends = 0, delivers = 0;
  for (const FlightRecord& r : res.flight) {
    if (r.kind == static_cast<std::uint64_t>(FlightKind::kSend)) ++sends;
    if (r.kind == static_cast<std::uint64_t>(FlightKind::kDeliver))
      ++delivers;
  }
  EXPECT_EQ(sends, res.outcome.messages);
  EXPECT_EQ(delivers, res.outcome.deliveries);

  const SpanSummary summary = summarize_spans(res.flight);
  EXPECT_EQ(summary.sends, sends);
  EXPECT_GT(summary.paired, 0u);
  EXPECT_GE(summary.max_us, summary.p50_us);
  EXPECT_FALSE(summary.zones.empty());

  // The artifact chain gossiplab uses: header → flight log → re-read →
  // Chrome trace, which must be strict valid JSON.
  const FlightLogHeader header = rt_flight_header(config, res);
  EXPECT_EQ(header.n, config.spec.n);
  std::ostringstream log;
  write_flight_log(log, header, res.flight);
  std::istringstream is(log.str());
  FlightLogHeader reread;
  std::vector<FlightRecord> records;
  std::string error;
  ASSERT_TRUE(read_flight_log(is, &reread, &records, &error)) << error;
  ASSERT_EQ(records.size(), res.flight.size());

  std::ostringstream trace;
  write_chrome_trace(trace, reread, records);
  EXPECT_TRUE(json_valid(trace.str(), &error)) << error;
}

TEST(FlightRtEndToEnd, RecorderOffLeavesNoTraceInTheResult) {
  RtConfig config = flight_rt_config();
  config.flight = false;
  const RtRunResult res = run_realtime(config);
  ASSERT_TRUE(res.outcome.completed);
  EXPECT_TRUE(res.flight.empty());
  EXPECT_EQ(res.flight_pushed, 0u);
  EXPECT_EQ(res.flight_dropped, 0u);
  EXPECT_EQ(res.recorder_overhead_ms, 0.0);
}

TEST(FlightRtEndToEnd, LiveStatsLinesAreStrictValidNdjson) {
  RtConfig config = flight_rt_config();
  std::ostringstream stats;
  config.stats_interval_ms = 2;
  config.stats_out = &stats;
  const RtRunResult res = run_realtime(config);
  ASSERT_TRUE(res.outcome.completed);

  std::istringstream is(stats.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    std::string error;
    EXPECT_TRUE(json_valid(line, &error)) << error << "\n" << line;
    EXPECT_NE(line.find("\"schema\": \"asyncgossip-stats-v1\""),
              std::string::npos);
    EXPECT_NE(line.find("\"per_process_steps\""), std::string::npos);
  }
  EXPECT_GE(lines, 1u);  // the final snapshot always flushes
}

}  // namespace
}  // namespace asyncgossip
