#include "consensus/get_core.h"

namespace asyncgossip {

const char* to_string(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kAllToAll:
      return "all-to-all";
    case ExchangeKind::kEars:
      return "ears";
    case ExchangeKind::kSears:
      return "sears";
    case ExchangeKind::kTears:
      return "tears";
  }
  return "?";
}

bool InstanceState::merge(const InstanceState& other) {
  bool changed = origins.merge(other.origins);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i] == kValUnknown && other.items[i] != kValUnknown) {
      items[i] = other.items[i];
      changed = true;
    }
  }
  return changed;
}

Val evaluate_estimate_votes(const InstanceState& collected) {
  bool saw0 = false, saw1 = false;
  for (Val v : collected.items) {
    if (v == 0) saw0 = true;
    if (v == 1) saw1 = true;
  }
  if (saw0 && !saw1) return 0;
  if (saw1 && !saw0) return 1;
  return kValBot;
}

PreferenceOutcome evaluate_preference_votes(const InstanceState& collected) {
  bool saw0 = false, saw1 = false, saw_bot = false;
  for (Val v : collected.items) {
    if (v == 0) saw0 = true;
    if (v == 1) saw1 = true;
    if (v == kValBot) saw_bot = true;
  }
  PreferenceOutcome out;
  if (saw0 && saw1) {
    // Two processes each saw a unanimous (majority-core-backed) estimate
    // vote for different values — excluded by the common-core property.
    out.conflict = true;
    return out;
  }
  if (saw0 || saw1) {
    const Val v = saw0 ? Val{0} : Val{1};
    if (!saw_bot) {
      out.decide = true;
      out.decision = v;
    }
    out.adopt = v;
  }
  return out;
}

Val evaluate_coin(const InstanceState& collected) {
  for (Val v : collected.items)
    if (v == 0) return 0;
  return 1;
}

std::size_t majority_threshold(std::size_t n) { return n / 2 + 1; }

}  // namespace asyncgossip
