// Shared helpers for the benchmark harness.
//
// These benchmarks measure *simulation metrics* — global time steps and
// point-to-point message counts, the two complexity measures of the paper —
// not wall-clock time. Each benchmark case therefore runs a fixed small
// number of iterations with distinct seeds and reports the mean metrics as
// user counters; wall time in the report is incidental.
// Machine-readable reports: when the AG_BENCH_JSON environment variable
// names a file, every case recorded via record_case (GossipAccumulator::
// flush does this automatically) is aggregated into an
// "asyncgossip-bench-v1" JSON document written at process exit — e.g.
//   AG_BENCH_JSON=BENCH_table1.json ./bench_table1_gossip
// Each binary declares its suite name once with AG_BENCH_SUITE("table1").
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "gossip/harness.h"
#include "sim/telemetry_export.h"

namespace asyncgossip::bench {

/// Accumulates (case name, user counters) rows and writes them as JSON at
/// static-destruction time — benchmark_main owns main(), so process exit is
/// the only hook every binary shares.
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport report;
    return report;
  }

  void set_suite(const char* name) { suite_ = name; }

  void add_case(const std::string& name,
                std::vector<std::pair<std::string, double>> counters) {
    cases_.push_back({name, std::move(counters)});
  }

  ~BenchReport() {
    const char* path = std::getenv("AG_BENCH_JSON");
    if (path == nullptr || path[0] == '\0' || cases_.empty()) return;
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "AG_BENCH_JSON: cannot open %s for writing\n", path);
      return;
    }
    std::fprintf(out, "{\n  \"schema\": \"asyncgossip-bench-v1\",\n");
    std::fprintf(out, "  \"suite\": \"%s\",\n", json_escape(suite_).c_str());
    std::fprintf(out, "  \"cases\": [");
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      std::fprintf(out, "%s    {\"name\": \"%s\", \"counters\": {",
                   i == 0 ? "\n" : ",\n",
                   json_escape(cases_[i].name).c_str());
      const auto& counters = cases_[i].counters;
      for (std::size_t c = 0; c < counters.size(); ++c) {
        std::fprintf(out, "%s\"%s\": %.12g", c == 0 ? "" : ", ",
                     json_escape(counters[c].first).c_str(),
                     counters[c].second);
      }
      std::fprintf(out, "}}");
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
  }

 private:
  struct Case {
    std::string name;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::string suite_ = "bench";
  std::vector<Case> cases_;
};

/// Snapshots a finished case's user counters into the report under `label`
/// (this benchmark version exposes no State::name(), so the caller supplies
/// one — GossipAccumulator::flush derives it from the spec). Call after the
/// counters are final.
inline void record_case(const benchmark::State& state,
                        const std::string& label) {
  std::vector<std::pair<std::string, double>> counters;
  counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters)
    counters.emplace_back(name, static_cast<double>(counter.value));
  BenchReport::instance().add_case(label, std::move(counters));
}

/// Canonical case label for a gossip spec: "ears/n:256/f:64/d:4/delta:3".
inline std::string spec_label(const GossipSpec& spec) {
  return std::string(to_string(spec.algorithm)) + "/n:" +
         std::to_string(spec.n) + "/f:" + std::to_string(spec.f) +
         "/d:" + std::to_string(spec.d) +
         "/delta:" + std::to_string(spec.delta);
}

/// Declares the binary's suite name for the AG_BENCH_JSON report. Place one
/// at namespace scope in each bench_*.cpp.
#define AG_BENCH_SUITE(suite_name)                                       \
  static const int ag_bench_suite_registered_ = [] {                     \
    ::asyncgossip::bench::BenchReport::instance().set_suite(suite_name); \
    return 0;                                                            \
  }()

/// Aggregates gossip outcomes across iterations into counters.
class GossipAccumulator {
 public:
  void add(const GossipOutcome& out) {
    ++runs_;
    messages_ += static_cast<double>(out.messages);
    steps_ += static_cast<double>(out.completion_time);
    gatherings_ += out.gathering_ok ? 1 : 0;
    majorities_ += out.majority_ok ? 1 : 0;
  }

  void flush(benchmark::State& state, double n, double d_plus_delta,
             const std::string& label = "") const {
    if (runs_ == 0) return;
    const double r = static_cast<double>(runs_);
    state.counters["msgs"] = messages_ / r;
    state.counters["steps"] = steps_ / r;
    state.counters["steps_per_dd"] = steps_ / r / d_plus_delta;
    state.counters["msgs_per_n"] = messages_ / r / n;
    state.counters["gather_ok"] = static_cast<double>(gatherings_) / r;
    state.counters["majority_ok"] = static_cast<double>(majorities_) / r;
    if (!label.empty()) record_case(state, label);
  }

 private:
  int runs_ = 0;
  double messages_ = 0;
  double steps_ = 0;
  int gatherings_ = 0;
  int majorities_ = 0;
};

inline GossipSpec base_spec(GossipAlgorithm alg, std::size_t n, std::size_t f,
                            Time d, Time delta) {
  GossipSpec spec;
  spec.algorithm = alg;
  spec.n = n;
  spec.f = f;
  spec.d = d;
  spec.delta = delta;
  spec.schedule =
      delta == 1 ? SchedulePattern::kLockStep : SchedulePattern::kStaggered;
  spec.delay = d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  return spec;
}

}  // namespace asyncgossip::bench
