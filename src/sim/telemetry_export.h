// Structured exporters for run telemetry (sim/telemetry.h).
//
// Two formats: a self-describing JSON document ("asyncgossip-telemetry-v1",
// full field reference in docs/OBSERVABILITY.md) for `gossiplab report` and
// CI artifacts, and a flat CSV of the spread time-series for plotting. The
// writers are dependency-free; json_valid() is a strict standalone JSON
// syntax checker used by the tests' round-trip checks, so the repo can
// verify its own artifacts without a JSON library.
//
// Layering note: sim/ cannot see gossip-level types (GossipOutcome etc.),
// so run identity and end-of-run summaries arrive as generic key/value
// sections filled by the caller (the harness or gossiplab).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace asyncgossip {

class TelemetryCollector;

/// Caller-supplied context echoed into the JSON document.
struct TelemetryExportInfo {
  /// String fields for the "run" object, e.g. {"algorithm", "ears"},
  /// {"schedule", "lockstep"}. Numeric spec fields (n, f, d, delta, seed)
  /// belong in `summary`.
  std::vector<std::pair<std::string, std::string>> run;
  /// Numeric fields for the "summary" object, e.g. the GossipOutcome:
  /// {"completed", 1}, {"completion_time", 42}, {"messages", 930}.
  std::vector<std::pair<std::string, double>> summary;
};

/// Writes the full telemetry JSON document: schema tag, run/summary echo,
/// spread time-series, latency histogram, phase markers, per-process
/// counters, and gauges.
void write_telemetry_json(std::ostream& os, const TelemetryCollector& t,
                          const TelemetryExportInfo& info);

/// Writes the spread time-series as CSV with a header row:
/// time,known_pairs,informed_fraction,full_processes,informed_pairs_complete,
/// in_flight,sent,delivered
void write_spread_csv(std::ostream& os, const TelemetryCollector& t);

/// One case row of an "asyncgossip-bench-v1" document.
struct BenchCaseRow {
  std::string name;
  std::vector<std::pair<std::string, double>> counters;
};

/// Writes an "asyncgossip-bench-v1" document:
///   {"schema": ..., "suite": ..., "cases": [{"name", "counters": {...}}]}
/// The one writer shared by the bench binaries' AG_BENCH_JSON reports and
/// `gossiplab sweep --json`, so downstream parsers see a single schema.
void write_bench_json(std::ostream& os, const std::string& suite,
                      const std::vector<BenchCaseRow>& cases);

/// Strict JSON syntax check (RFC 8259 grammar, UTF-8 escapes unvalidated).
/// On failure returns false and, when `error` is non-null, stores a short
/// description with the byte offset.
bool json_valid(const std::string& text, std::string* error = nullptr);

/// Escapes a string for embedding in a JSON document (adds no quotes).
std::string json_escape(const std::string& s);

}  // namespace asyncgossip
