// Linearizability-style checking of the service's committed history.
//
// The service commits every command — including reads — into one totally
// ordered log, so the check reduces to replay: (1) the log's sequence
// numbers are dense from 1; (2) replaying the log through the same KvStore
// transition function reproduces every entry's recorded result (a get that
// returned a value other than the replayed state at its position is a
// stale/phantom read; a CAS whose recorded ok contradicts the comparand
// match is a lost or reordered write); (3) every acknowledged client
// observation matches the log entry at its sequence number field-for-field
// (an acked put with no log entry is a lost write); (4) each client's
// acked client_seq values are strictly increasing along the log order
// (session order). Unavailable-acked observations must have left no trace.
//
// Formats: `# asyncgossip-svc-log-v1` / `# asyncgossip-svc-obs-v1`
// headers, then one entry per line (the encode/parse pairs below).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "svc/command.h"

namespace asyncgossip {
namespace svc {

inline constexpr const char* kLogHeader = "# asyncgossip-svc-log-v1";
inline constexpr const char* kObsHeader = "# asyncgossip-svc-obs-v1";

/// One committed log entry: the command plus its recorded outcome.
struct CommittedEntry {
  std::uint64_t seq = 0;
  Command cmd;
  bool ok = false;           // recorded apply() outcome
  bool found = false;        // kGet: key present
  std::string read_value;    // kGet: value returned
};

/// One client-side observation of an acknowledged request.
struct Observation {
  Command cmd;
  CommandResult result;
};

std::string encode_log_entry(const CommittedEntry& entry);
bool parse_log_entry(const std::string& line, CommittedEntry* out);
std::string encode_observation(const Observation& obs);
bool parse_observation(const std::string& line, Observation* out);

/// Reads a `# asyncgossip-svc-log-v1` / `-obs-v1` stream (header line, then
/// entries). Returns false with *error set on malformed input.
bool read_log(std::istream& is, std::vector<CommittedEntry>* out,
              std::string* error);
bool read_observations(std::istream& is, std::vector<Observation>* out,
                       std::string* error);

struct HistoryReport {
  bool ok = false;
  std::size_t entries = 0;
  std::size_t observations = 0;
  std::size_t acked = 0;        // acked committed observations cross-checked
  std::size_t unavailable = 0;  // honest-unavailability acks
  std::string error;            // first violation, empty when ok
};

/// The full check described in the file comment. Observations may cover
/// any subset of the log (unacked requests simply have no observation).
HistoryReport check_history(const std::vector<CommittedEntry>& log,
                            const std::vector<Observation>& observations);

}  // namespace svc
}  // namespace asyncgossip
