#include "svc/service.h"

#include <algorithm>
#include <iterator>
#include <ostream>
#include <utility>

#include "common/assert.h"

namespace asyncgossip {
namespace svc {

KvService::KvService(const KvServiceConfig& config)
    : config_(config), group_(config.group) {
  AG_ASSERT_MSG(config_.batch_limit > 0, "batch_limit must be positive");
  if (config_.log_out != nullptr)
    *config_.log_out << kLogHeader << " algorithm "
                     << to_string(config_.group.algorithm) << " n "
                     << config_.group.n << " f " << config_.group.f
                     << " seed " << config_.group.seed << '\n';
  committer_ = std::thread([this] { commit_loop(); });
}

KvService::~KvService() { stop(); }

void KvService::submit(const Command& cmd, Callback done) {
  bool rejected = false;
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      ++stats_.unavailable;
      rejected = true;
    } else {
      ++stats_.submitted;
      queue_.push_back(Pending{cmd, std::move(done), Stopwatch{}});
    }
  }
  if (rejected) {
    CommandResult result;
    result.unavailable = true;
    if (done) done(cmd, result, 0);
    return;
  }
  cv_.notify_one();
}

void KvService::stop() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (!joined_ && committer_.joinable()) {
    committer_.join();
    joined_ = true;
  }
}

KvServiceStats KvService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void KvService::commit_loop() {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !stopping_) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping and drained
      const std::size_t take = std::min(queue_.size(), config_.batch_limit);
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() +
                                           static_cast<std::ptrdiff_t>(take)));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    commit_batch(batch);
  }
}

void KvService::commit_batch(std::vector<Pending>& batch) {
  const CommitOutcome slot = group_.commit_slot();
  const bool ok = slot.committed && !slot.unavailable;
  for (Pending& p : batch) {
    CommandResult result;
    if (ok) {
      result = store_.apply(p.cmd);
      result.seq = next_seq_++;
      if (config_.log_out != nullptr) {
        CommittedEntry entry;
        entry.seq = result.seq;
        entry.cmd = p.cmd;
        entry.ok = result.ok;
        entry.found = result.found;
        entry.read_value = result.value;
        *config_.log_out << encode_log_entry(entry) << '\n';
      }
    } else {
      result.unavailable = true;
    }
    const std::uint64_t us = p.latency.elapsed_us();
    if (p.done) p.done(p.cmd, result, us);
  }
  if (config_.log_out != nullptr) config_.log_out->flush();

  MutexLock lock(&mu_);
  ++stats_.slots;
  if (!ok) ++stats_.slots_unavailable;
  if (slot.stalled) ++stats_.slots_stalled;
  stats_.consensus_messages += slot.messages;
  stats_.consensus_bytes += slot.bytes;
  stats_.consensus_ticks += slot.decision_time;
  if (ok) stats_.committed += batch.size();
  else stats_.unavailable += batch.size();
  stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, batch.size());
}

}  // namespace svc
}  // namespace asyncgossip
