// Deterministic asynchronous gossip by round-robin dissemination.
//
// The paper's conclusions ask whether an *efficient deterministic*
// asynchronous (majority-)gossip algorithm exists; Theorem 1 applies to
// deterministic algorithms directly (no adaptive/oblivious distinction —
// a deterministic protocol's behaviour is known to any adversary). This
// module provides the natural deterministic contender so the question can
// be explored experimentally:
//
// Every local step, process p sends its <V, I> snapshot to the next target
// in the fixed cyclic order p+1, p+2, ..., and records the pairs in its
// informed-list exactly as EARS does. The informed-list progress control
// and shut-down phase are inherited unchanged; only target selection is
// derandomized.
//
// Properties: correct (gathering/validity/quiescence) like EARS — every
// awake process sweeps the whole ring in n steps — but the determinism is
// costly: a rumor needs Theta(n) local steps to be *guaranteed* out of its
// origin neighbourhood, so worst-case time degrades to Theta(n (d+delta))
// against patterns that random choice defeats, and Theorem 1's adversary
// can precompute its entire future. bench_ablation contrasts it with EARS.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitset.h"
#include "gossip/epidemic.h"
#include "gossip/rumor.h"

namespace asyncgossip {

class RoundRobinGossipProcess final : public GossipProcess {
 public:
  /// Reuses EpidemicConfig (fanout is ignored; targets are cyclic).
  RoundRobinGossipProcess(ProcessId id, EpidemicConfig config);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;
  void reseed(std::uint64_t) override {}  // deterministic

  const DynamicBitset& rumors() const override { return rumors_; }
  bool quiescent() const override;
  std::uint64_t local_steps() const override { return steps_taken_; }

  bool progress_done() const;
  std::uint64_t sleep_count() const { return sleep_cnt_; }

 private:
  void note_informed(std::size_t rumor, std::size_t target);
  void refresh_full_count(std::size_t rumor);
  void absorb(const Envelope& env);
  std::shared_ptr<const EpidemicPayload> snapshot();

  ProcessId id_;
  EpidemicConfig config_;
  DynamicBitset rumors_;
  std::vector<DynamicBitset> informed_;
  std::vector<bool> rumor_fully_informed_;
  std::size_t fully_informed_count_ = 0;
  std::size_t next_target_offset_ = 1;  // cursor in the cyclic order
  std::uint64_t sleep_cnt_ = 0;
  std::uint64_t steps_taken_ = 0;
  const char* last_phase_ = nullptr;  // last phase reported via probe_phase
  std::shared_ptr<const EpidemicPayload> cached_snapshot_;
};

}  // namespace asyncgossip
