# Smoke test for the trace-as-verifiable-artifact pipeline:
#   1. gossiplab records a trace of a clean audited run;
#   2. tracecheck must accept it (exit 0);
#   3. a tampered copy (an appended out-of-order step event) must be
#      rejected with a nonzero exit.
# Driven by ctest; see tools/CMakeLists.txt.
foreach(var GOSSIPLAB TRACECHECK WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "tracecheck_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

set(clean "${WORKDIR}/tracecheck_smoke_clean.trace")
set(mutated "${WORKDIR}/tracecheck_smoke_mutated.trace")

execute_process(
  COMMAND "${GOSSIPLAB}" trace --alg ears --n 16 --f 4 --d 3 --delta 2
          --schedule staggered --seed 7 --steps 400 --record "${clean}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gossiplab failed to record a trace (exit ${rc})")
endif()

execute_process(COMMAND "${TRACECHECK}" "${clean}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tracecheck rejected a clean trace (exit ${rc})")
endif()

file(READ "${clean}" contents)
file(WRITE "${mutated}" "${contents}step 0 0\n")
execute_process(COMMAND "${TRACECHECK}" "${mutated}"
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "tracecheck accepted a tampered trace")
endif()

message(STATUS "tracecheck smoke test passed (clean accepted, tampered "
               "rejected with exit ${rc})")
