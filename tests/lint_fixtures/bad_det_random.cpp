// aglint-fixture-as: src/sim/fixture_random.cpp
// aglint-expect: AG-DET-001
//
// Ambient randomness breaks replay: a fuzz case's trace hash must be a
// pure function of its seed.
#include <random>

namespace asyncgossip {

unsigned nondeterministic_seed() {
  std::random_device rd;  // AG-DET-001: entropy outside the run seed
  return rd();
}

}  // namespace asyncgossip
