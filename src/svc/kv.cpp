#include "svc/kv.h"

namespace asyncgossip {
namespace svc {

CommandResult KvStore::apply(const Command& cmd) {
  CommandResult result;
  switch (cmd.op) {
    case SvcOp::kPut:
      map_[cmd.key] = cmd.value;
      result.ok = true;
      break;
    case SvcOp::kGet: {
      const auto it = map_.find(cmd.key);
      result.ok = true;
      if (it != map_.end()) {
        result.found = true;
        result.value = it->second;
      }
      break;
    }
    case SvcOp::kCas: {
      const auto it = map_.find(cmd.key);
      // CAS on an absent key succeeds iff the comparand is the reserved
      // absent token "-" (which token_ok permits and real values may also
      // use; the loadgen never writes literal "-" values).
      const bool match = it != map_.end() ? it->second == cmd.expected
                                          : cmd.expected == "-";
      if (match) {
        map_[cmd.key] = cmd.value;
        result.ok = true;
      }
      break;
    }
  }
  return result;
}

}  // namespace svc
}  // namespace asyncgossip
