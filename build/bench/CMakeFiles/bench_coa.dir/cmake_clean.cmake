file(REMOVE_RECURSE
  "CMakeFiles/bench_coa.dir/bench_coa.cpp.o"
  "CMakeFiles/bench_coa.dir/bench_coa.cpp.o.d"
  "bench_coa"
  "bench_coa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
