// The discrete-time simulation engine for the paper's system model.
//
// Model recap (Section "System Model" of the paper): time proceeds in
// discrete steps; at every step the adversary picks an arbitrary subset of
// processes to take a local step and may crash processes (at most f in
// total). In each local step a process receives a subset of its pending
// messages, computes, and sends messages. For a given execution, d is the
// maximum delivery time and delta the maximum scheduling gap. The engine
// *enforces* both bounds: a pending message older than d is force-delivered
// at the receiver's next step, and a live process is force-scheduled when
// its delta deadline arrives. In strict mode the engine instead throws
// ModelViolation if the adversary's raw decision would breach a bound,
// which the test suite uses to validate adversary implementations.
//
// Mailbox representation (the hot path): in-flight messages live in a
// per-destination timing wheel — a ring of W = d + delta + 1 buckets where
// a message with delivery deadline t sits in bucket t % W. When a process
// steps at time `now`, exactly the buckets for slot times (last step, now]
// are due, and *everything* in them is deliverable. W is sized so that due
// and future messages can never share a bucket: pending deadlines span at
// most (last step, now + d] and the engine's delta enforcement keeps
// now - last step <= delta, so the span is < W (see docs/PERFORMANCE.md
// for the proof sketch). Since the data-oriented core, a bucket is an
// 8-byte slab-chain header into the struct-of-arrays EnvelopeArena
// (sim/envelope_arena.h) and payloads are interned in its PayloadPool, so
// steady-state send/deliver allocates nothing and moves no shared_ptr.
// Buckets hold envelopes in send order and due buckets are merged back
// into global send order by message id, which keeps delivery order — and
// therefore trace_hash and all Metrics — bit-identical to the historical
// single-deque-per-destination implementation.
//
// Sharded stepping (EngineConfig::jobs > 1): one step's schedule is
// partitioned across a persistent worker pool. Each due process is stepped
// against the frozen pre-step snapshot — legal because a message sent at
// `now` has deliver_after >= now + 1, which is never a due slot for any
// process stepping at `now`, and crashes apply only at step start — with
// all results captured in per-slot buffers. A serial merge then replays
// every side effect (metrics, observers, probes, flight spans, trace hash,
// message-id assignment, wheel inserts) in exact schedule order, so the
// execution is bit-identical to the serial engine for every jobs value.
// The one caveat: an *adaptive* adversary whose message_delay inspects the
// pending mailboxes of other processes mid-step would observe merge-order
// state; the oblivious adversaries every harness run uses never look, and
// the lower-bound drivers run with jobs = 1 (the default).
#pragma once

#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/flight_recorder.h"
#include "common/function_ref.h"
#include "sim/adversary.h"
#include "sim/envelope_arena.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/observer.h"
#include "sim/probe.h"
#include "sim/process.h"
#include "sim/shard_pool.h"
#include "sim/types.h"

namespace asyncgossip {

struct EngineConfig {
  /// Delivery bound d >= 1 enforced for this execution.
  Time d = 1;
  /// Scheduling bound delta >= 1 enforced for this execution.
  Time delta = 1;
  /// Crash budget f (0 <= f < n enforced at construction).
  std::size_t max_crashes = 0;
  /// If true, adversary decisions that would violate d/delta/f raise
  /// ModelViolation instead of being corrected.
  bool strict = false;
  /// Worker threads for sharded intra-run stepping: 1 = serial (default),
  /// 0 = hardware concurrency, k = exactly k. Execution output (trace
  /// hash, Metrics, telemetry, flight spans) is bit-identical for every
  /// value; see the sharding notes above.
  std::size_t jobs = 1;
};

class Engine {
 public:
  Engine(std::vector<std::unique_ptr<Process>> processes,
         std::unique_ptr<Adversary> adversary, EngineConfig config);

  /// Advances exactly `steps` global time steps.
  void run(Time steps);

  /// Runs until `done(*this)` returns true (checked after every step) or
  /// `max_steps` elapse. Returns true iff the predicate fired.
  bool run_until(FunctionRef<bool(const Engine&)> done, Time max_steps);

  // --- observers ----------------------------------------------------------
  std::size_t n() const { return processes_.size(); }
  Time now() const { return now_; }
  const EngineConfig& config() const { return config_; }
  const Metrics& metrics() const { return metrics_; }
  bool crashed(ProcessId p) const { return crashed_[p]; }
  std::size_t alive_count() const { return alive_count_; }
  std::size_t crashes_so_far() const { return crashes_; }
  const Process& process(ProcessId p) const { return *processes_[p]; }

  /// Typed accessor for algorithm-specific inspection in tests/benches.
  template <typename T>
  const T& process_as(ProcessId p) const {
    const T* t = dynamic_cast<const T*>(processes_[p].get());
    AG_ASSERT_MSG(t != nullptr, "process type mismatch");
    return *t;
  }

  std::size_t in_flight_count() const { return in_flight_total_; }
  bool network_empty() const { return in_flight_total_ == 0; }
  /// In-flight messages destined to p, in send order, with owning payload
  /// references (callers may retain them past the next step). Materializes
  /// a copy via the same k-way chain merge the delivery path uses; prefer
  /// for_each_pending / pending_count when a copy is not needed.
  std::vector<Envelope> pending_for(ProcessId p) const;
  std::size_t pending_count(ProcessId p) const { return pending_count_[p]; }
  /// Visits every in-flight message destined to p without copying. `fn`
  /// returns true to keep iterating, false to stop early. The Envelope is
  /// a borrowed view valid only during the callback. Visit order is
  /// deterministic for a fixed execution but is *not* send order (messages
  /// come out wheel-bucket by wheel-bucket); use pending_for when order
  /// matters.
  void for_each_pending(ProcessId p,
                        FunctionRef<bool(const Envelope&)> fn) const;
  std::uint64_t local_steps_of(ProcessId p) const { return local_steps_[p]; }
  std::unique_ptr<Process> fork_process(ProcessId p) const {
    return processes_[p]->clone();
  }

  /// FNV-1a hash over the full delivery/send trace; equal seeds must yield
  /// equal hashes (determinism test).
  std::uint64_t trace_hash() const { return trace_hash_; }

  /// Arena/payload-pool counters (sim/envelope_arena.h): the bench suite
  /// reports slab_allocations as its allocation tripwire — once the arena
  /// reaches the execution's standing in-flight volume it must stop
  /// growing.
  ArenaStats arena_stats() const {
    ArenaStats st = arena_.stats();
    st.payloads_interned = payloads_.interned_total();
    st.payload_pool_live = payloads_.live();
    st.payload_pool_peak = payloads_.peak();
    return st;
  }

  /// Replaces all attached observers with `observer` (nullptr detaches
  /// everything). Observation is strictly read-only and never alters the
  /// execution.
  void set_observer(EngineObserver* observer) {
    observers_.clear();
    if (observer != nullptr) observers_.push_back(observer);
  }

  /// Attaches an additional passive observer alongside any already present
  /// (the auditor and the telemetry collector routinely coexist). Events
  /// fan out to observers in attachment order.
  void add_observer(EngineObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  /// Attaches the sink that receives StepContext::probe_* reports from
  /// algorithm code (nullptr detaches). Like observers, sinks are strictly
  /// read-only with respect to the execution.
  void set_probe_sink(ProbeSink* sink) { probe_sink_ = sink; }

  /// Attaches a flight-recorder ring (common/flight_recorder.h): causal
  /// send/deliver spans plus hot-path profiling zones are recorded into it
  /// (nullptr detaches — the default; disabled cost is one branch per
  /// site). Recording never perturbs the execution: trace_hash, Metrics and
  /// telemetry are bit-identical with the ring attached or not. With
  /// jobs > 1, spans are still recorded (serially, at the merge) but the
  /// per-step profiling zones are skipped inside worker threads — the ring
  /// is single-producer.
  void set_flight_ring(FlightRing* ring) { flight_ = ring; }

 private:
  class RecordingProbeSink;

  /// One probe_* call captured during a worker-phase step, replayed into
  /// the real sink at the merge. `phase` is the static string literal of a
  /// probe_phase call, or nullptr for a probe_state record.
  struct ProbeRecord {
    const char* phase = nullptr;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  /// Per-scheduled-process capture buffers for one step. Reused across
  /// steps (capacity persists); contents are valid between run_slot and
  /// merge_slot only.
  struct SlotResult {
    std::vector<Envelope> delivered;
    std::vector<std::uint32_t> payload_handles;
    std::vector<EnvelopeArena::Bucket> drained;
    std::vector<EnvelopeArena::Cursor> cursors;
    std::vector<StepContext::Outgoing> outbox;
    std::vector<ProbeRecord> probes;
  };

  void advance_one_step();
  void apply_crashes(const std::vector<ProcessId>& crash_list);
  /// Fills schedule_scratch_ with the corrected schedule and returns it.
  const std::vector<ProcessId>& effective_schedule(
      const std::vector<ProcessId>& proposed);
  /// Snapshot phase for one scheduled process: drains p's due buckets into
  /// send-order delivery views, runs the process step, and captures every
  /// output in `slot`. Mutates only p-owned state (p's bucket headers, the
  /// process object) — safe to run concurrently for distinct p. `ring` is
  /// the flight ring for profiling zones, or nullptr when running on a
  /// worker thread (zones are engine-thread-only).
  void run_slot(ProcessId p, SlotResult& slot, FlightRing* ring);
  /// Serial phase for one scheduled process: replays metrics, observers,
  /// probes, flight records and the trace hash in schedule order, assigns
  /// message ids, inserts sends into the wheel and recycles drained slabs.
  void merge_slot(ProcessId p, SlotResult& slot);
  /// Turns a step's outbox into arena entries in the destination wheel
  /// buckets. Safe under simultaneous-step semantics: a message sent at
  /// `now` has deliver_after >= now + 1, which is never a due slot
  /// (<= now) for any process stepping at `now`, so nothing can be relayed
  /// within the step it was sent; and crashes apply only at step start, so
  /// crashed_ is stable across the whole step. Consumes the payloads but
  /// leaves `out` itself to the caller for reuse.
  void dispatch_sends(ProcessId from, std::vector<StepContext::Outgoing>& out);
  void hash_mix(std::uint64_t v);

  EnvelopeArena::Bucket& bucket(ProcessId p, Time slot_time) {
    return wheel_[p * wheel_width_ + static_cast<std::size_t>(
                                         slot_time % wheel_width_)];
  }
  const EnvelopeArena::Bucket& bucket(ProcessId p, Time slot_time) const {
    return wheel_[p * wheel_width_ + static_cast<std::size_t>(
                                         slot_time % wheel_width_)];
  }

  EngineConfig config_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<Adversary> adversary_;
  Metrics metrics_;

  Time now_ = 0;
  std::vector<bool> crashed_;
  std::size_t alive_count_;
  std::size_t crashes_ = 0;

  // Timing-wheel mailboxes: wheel_[p * wheel_width_ + t % wheel_width_] is
  // the slab chain of messages destined to p whose delivery deadline is t,
  // in send order. pending_count_[p] tracks p's total across its buckets.
  std::size_t wheel_width_;
  std::vector<EnvelopeArena::Bucket> wheel_;
  EnvelopeArena arena_;
  PayloadPool payloads_;
  std::vector<std::size_t> pending_count_;

  std::size_t in_flight_total_ = 0;
  std::vector<Time> last_step_time_;
  std::vector<bool> stepped_once_;
  std::vector<std::uint64_t> local_steps_;
  MessageId next_message_id_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;
  std::vector<EngineObserver*> observers_;
  ProbeSink* probe_sink_ = nullptr;
  FlightRing* flight_ = nullptr;

  // Sharded stepping (see file comment). jobs_ is the resolved worker
  // count; the pool spins up lazily on the first parallel step.
  std::size_t jobs_ = 1;
  std::unique_ptr<ShardPool> pool_;
  std::vector<SlotResult> slots_;

  // Reusable per-step scratch buffers (hot path: no steady-state
  // allocation). Contents are only valid between fill and use within one
  // advance_one_step; capacity persists across steps.
  std::vector<std::uint8_t> want_scratch_;
  std::vector<ProcessId> schedule_scratch_;
};

}  // namespace asyncgossip
