// Corollary 2 reproduction: the cost of asynchrony.
//
// T_CoA(A) = T_async(A) / T_sync(best synchronous algorithm at d=delta=1)
// M_CoA(A) = M_async(A) / M_sync(...)
//
// The corollary: every asynchronous gossip algorithm pays T_CoA = Omega(f)
// or M_CoA = Omega(1 + f^2/n). We measure both ratios for EARS (the
// message-efficient protocol — under the adaptive adversary its messages
// blow up) and for the lazy cascading foil (its time blows up), against the
// synchronous epidemic baseline at the same (n, f).
//
//   args     : {f}; n = 4f
//   counters : t_coa, m_coa (adaptive-adversary numerator),
//              t_coa_benign, m_coa_benign (oblivious numerator — shows the
//              gap is the *adversary's* doing, not asynchrony per se),
//              sync_msgs, sync_steps (denominators)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lowerbound/adaptive.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("coa");

namespace {

constexpr int kIterations = 3;

void run_case(benchmark::State& state, GossipAlgorithm alg) {
  const auto f = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 4 * f;

  double sync_msgs = 0, sync_steps = 0;
  double adv_msgs = 0, adv_steps = 0;
  double ben_msgs = 0, ben_steps = 0;
  int runs = 0;
  std::uint64_t seed = 70003;
  for (auto _ : state) {
    ++runs;
    const std::uint64_t s = seed++;

    // Denominator: the synchronous baseline, native model.
    GossipSpec sync_spec = base_spec(GossipAlgorithm::kSync, n, f, 1, 1);
    sync_spec.seed = s;
    const GossipOutcome sync_out = run_gossip_spec(sync_spec);
    sync_msgs += static_cast<double>(sync_out.messages);
    sync_steps += static_cast<double>(sync_out.completion_time);

    // Numerator 1: the asynchronous algorithm under the Theorem 1 adversary.
    LowerBoundConfig cfg;
    cfg.spec.algorithm = alg;
    cfg.spec.n = n;
    cfg.spec.seed = s;
    cfg.spec.lazy_fanout = 1;
    cfg.spec.ears_shutdown_constant = 2.0;
    cfg.f = f;
    const LowerBoundReport adv = run_lower_bound(cfg);
    adv_msgs += static_cast<double>(adv.total_messages);
    // For Case 2 constructions that leave gathering unsatisfied the honest
    // completion time is unbounded; report the window end as a floor.
    adv_steps += static_cast<double>(
        adv.gathering_ok ? adv.completion_time
                         : std::max(adv.completion_time, adv.case2_window_end));

    // Numerator 2: same algorithm under a benign oblivious adversary at
    // d = delta = 1.
    GossipSpec ben = base_spec(alg, n, f, 1, 1);
    ben.seed = s;
    ben.lazy_fanout = 1;
    ben.ears_shutdown_constant = 2.0;
    const GossipOutcome ben_out = run_gossip_spec(ben);
    ben_msgs += static_cast<double>(ben_out.messages);
    ben_steps += static_cast<double>(ben_out.completion_time);
    benchmark::DoNotOptimize(adv.total_messages);
  }
  const double r = runs;
  state.counters["sync_msgs"] = sync_msgs / r;
  state.counters["sync_steps"] = sync_steps / r;
  state.counters["t_coa"] = (adv_steps / r) / (sync_steps / r);
  state.counters["m_coa"] = (adv_msgs / r) / (sync_msgs / r);
  state.counters["t_coa_benign"] = (ben_steps / r) / (sync_steps / r);
  state.counters["m_coa_benign"] = (ben_msgs / r) / (sync_msgs / r);
  state.counters["f2_over_n"] =
      static_cast<double>(f) * static_cast<double>(f) / static_cast<double>(n);
  record_case(state,
              std::string("coa-") + to_string(alg) + "/f:" + std::to_string(f));
}

void BM_CoA_Ears(benchmark::State& state) {
  run_case(state, GossipAlgorithm::kEars);
}
void BM_CoA_Lazy(benchmark::State& state) {
  run_case(state, GossipAlgorithm::kLazy);
}

BENCHMARK(BM_CoA_Ears)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Iterations(kIterations);
BENCHMARK(BM_CoA_Lazy)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Iterations(kIterations);

}  // namespace
}  // namespace asyncgossip::bench
