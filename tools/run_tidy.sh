#!/usr/bin/env bash
# Run clang-tidy over the whole tree using the checked-in .clang-tidy profile.
#
# Usage: tools/run_tidy.sh [extra run-clang-tidy args...]
#
# Configures the `tidy` preset (Debug + compile_commands.json) if needed, then
# runs clang-tidy over every translation unit under src/ tools/ bench/ tests/
# and examples/. Exits nonzero on any finding (.clang-tidy sets
# WarningsAsErrors: '*').
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-tidy"

cd "${repo_root}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found in PATH" >&2
  echo "hint: install it (e.g. apt-get install clang-tidy) and re-run" >&2
  exit 2
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake --preset tidy -G Ninja
fi

# Prefer the parallel driver when available; fall back to plain clang-tidy.
runner="$(command -v run-clang-tidy || true)"
if [[ -n "${runner}" ]]; then
  "${runner}" -p "${build_dir}" -quiet "$@" \
    "${repo_root}/(src|tools|bench|tests|examples)/.*\.cpp$"
else
  mapfile -t sources < <(
    find src tools bench tests examples -name '*.cpp' | sort
  )
  clang-tidy -p "${build_dir}" --quiet "$@" "${sources[@]}"
fi

echo "clang-tidy: clean"
