// gossiplab — command-line experiment runner.
//
// Subcommands:
//   gossip     run one gossip execution, print a summary (or --csv row)
//   sweep      run a gossip algorithm over a list of n values, CSV output
//   consensus  run one consensus execution
//   lowerbound run the Theorem 1 adaptive adversary against an algorithm
//   trace      run a small gossip execution and print its ASCII timeline
//   report     run one gossip execution with telemetry, print the JSON report
//   rt         run one gossip execution on the real-time threaded runtime
//              (wall-clock ticks, optional fault injection), audit the
//              recorded trace offline, print the JSON report; --spans /
//              --stats-interval-ms turn on the flight recorder / live stats
//   spans      convert a recorded flight log to Perfetto-loadable Chrome
//              trace-event JSON and print delivery-latency percentiles
//   fuzz       sample adversary configurations, shrink any failing case to a
//              replayable repro artifact (exit 1 when a failure was found)
//   replay     re-execute a repro artifact, verify its pinned trace hash
//   statcheck  statistical Table 1 bound check (asyncgossip-statcheck-v1 JSON)
//   serve      run the replicated KV service behind a loopback UDP front-end
//              for a fixed duration (docs/SERVING.md)
//   loadgen    drive an open-loop workload at a serve instance (--target udp)
//              or an in-process service (--target inproc, the soak path);
//              exit 1 when the run is incomplete
//   histcheck  check a committed log + observation stream for lost writes,
//              stale reads, and session-order violations
//
// Every subcommand understands --help; unknown flags are rejected.
//
// Examples:
//   gossiplab gossip --alg ears --n 256 --f 64 --d 4 --delta 3 --seed 1
//   gossiplab sweep --alg tears --n 256,512,1024 --fpct 25 --csv
//   gossiplab consensus --exchange tears --n 128 --seed 7
//   gossiplab lowerbound --alg lazy --f 64 --seed 3
//   gossiplab trace --alg ears --n 16 --f 4 --steps 96
//   gossiplab trace --alg ears --n 16 --f 4 --record run.trace
//   gossiplab gossip --alg tears --n 128 --f 32 --audit
//   gossiplab report --algorithm ears --n 64 --f 16
//   gossiplab report --alg tears --n 128 --f 32 --out run.json --spread-csv spread.csv
//   gossiplab rt --algorithm ears --n 32 --f 8 --inject crash --seed 7
//   gossiplab rt --alg tears --n 24 --f 5 --record rt.trace --out rt.json
//   gossiplab rt --alg ears --n 16 --f 4 --spans rt.flight --stats-interval-ms 50
//   gossiplab spans --in rt.flight --out spans.json
//   gossiplab fuzz --iters 200 --seed 7 --out repro
//   gossiplab fuzz --iters 20 --inject late-delivery --out repro
//   gossiplab replay --in repro.spec.json
//   gossiplab statcheck --trials 12 --n 12,16,24,32 --out statcheck.json
//   gossiplab rt --algorithm cr-tears --n 32 --f 15 --inject crash
//   gossiplab serve --port 47123 --duration 10 --algorithm cr-tears
//   gossiplab loadgen --target udp --port 47123 --rate 500 --duration 5
//   gossiplab loadgen --target inproc --requests 1000000 --crashes 2
//       --log svc.log --obs svc.obs
//   gossiplab histcheck --log svc.log --obs svc.obs
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "consensus/canetti_rabin.h"
#include "consensus/cr_gossip.h"
#include "gossip/fuzz_harness.h"
#include "gossip/harness.h"
#include "gossip/spec_json.h"
#include "lowerbound/adaptive.h"
#include "rt/driver.h"
#include "rt/multiproc.h"
#include "sim/span_export.h"
#include "sim/telemetry.h"
#include "sim/telemetry_export.h"
#include "sim/trace.h"
#include "svc/consensus_wire.h"
#include "svc/history.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "svc/service.h"

using namespace asyncgossip;

namespace {

using Flags = std::map<std::string, std::string>;

Flags parse_flags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    // erase, not `arg = arg.substr(2)`: the self-assignment-from-temporary
    // form trips GCC 12's -Wrestrict false positive (PR 105329) under
    // inlining.
    arg.erase(0, 2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";  // boolean flag
    }
  }
  return flags;
}

/// Rejects flags the subcommand does not understand (exit 2, naming the
/// offending flag). Every allow-list implicitly contains "help".
void check_flags(const char* cmd, const Flags& flags,
                 std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : flags) {
    (void)value;
    if (key == "help") continue;
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr,
                   "gossiplab %s: unknown flag --%s (try: gossiplab %s --help)\n",
                   cmd, key.c_str(), cmd);
      std::exit(2);
    }
  }
}

// Shared model/algorithm flags consumed by spec_from_flags.
#define SPEC_FLAG_LIST                                                      \
  "alg", "algorithm", "n", "f", "d", "delta", "seed", "schedule", "delay",  \
      "crash-horizon", "epsilon", "shutdown-c", "tears-a", "tears-kappa",   \
      "lazy-fanout", "max-steps", "engine-jobs", "audit"

constexpr const char* kSpecFlagHelp =
    "  model/algorithm flags (shared by gossip runs):\n"
    "    --alg NAME          algorithm: trivial|ears|sears|tears|sync|\n"
    "                        ears-no-informed-list|lazy|round-robin|\n"
    "                        cr-ears|cr-sears|cr-tears (default ears)\n"
    "    --algorithm NAME    alias for --alg\n"
    "    --n N --f F         processes / crash budget (default 64, n/4)\n"
    "    --d D --delta DD    delivery / scheduling bounds (default 1, 1)\n"
    "    --seed S            RNG seed (default 1)\n"
    "    --schedule NAME     lockstep|staggered|random|rotating|straggler\n"
    "    --delay NAME        unit|max|uniform|bimodal|targeted\n"
    "    --crash-horizon T   crash times drawn in [0, T) (default 64)\n"
    "    --epsilon E         SEARS fanout exponent (default 0.5)\n"
    "    --shutdown-c C      EARS shutdown constant (default 4.0)\n"
    "    --tears-a C --tears-kappa C   TEARS constants (default 1.0)\n"
    "    --lazy-fanout K     lazy-gossip fanout (default 2)\n"
    "    --max-steps T       step budget, 0 = automatic\n"
    "    --engine-jobs J     engine worker threads per run: 1 = serial,\n"
    "                        0 = hardware concurrency (default: AG_ENGINE_JOBS\n"
    "                        or 1; results are identical for every J)\n"
    "    --audit             attach the invariant auditor; violations abort\n";

std::uint64_t get_u64(const Flags& f, const std::string& key,
                      std::uint64_t fallback) {
  auto it = f.find(key);
  return it == f.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
}

double get_double(const Flags& f, const std::string& key, double fallback) {
  auto it = f.find(key);
  return it == f.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::string get_str(const Flags& f, const std::string& key,
                    const std::string& fallback) {
  auto it = f.find(key);
  return it == f.end() ? fallback : it->second;
}

bool has_flag(const Flags& f, const std::string& key) {
  return f.count(key) > 0;
}

std::vector<std::uint64_t> parse_list(const std::string& s) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

GossipAlgorithm parse_algorithm(const std::string& name) {
  GossipAlgorithm out;
  if (algorithm_from_string(name, &out)) return out;
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

ExchangeKind parse_exchange(const std::string& name) {
  if (name == "all-to-all" || name == "cr") return ExchangeKind::kAllToAll;
  if (name == "ears") return ExchangeKind::kEars;
  if (name == "sears") return ExchangeKind::kSears;
  if (name == "tears") return ExchangeKind::kTears;
  std::fprintf(stderr, "unknown exchange: %s\n", name.c_str());
  std::exit(2);
}

SchedulePattern parse_schedule(const std::string& name) {
  SchedulePattern out;
  if (schedule_from_string(name, &out)) return out;
  std::fprintf(stderr, "unknown schedule: %s\n", name.c_str());
  std::exit(2);
}

DelayPattern parse_delay(const std::string& name) {
  DelayPattern out;
  if (delay_from_string(name, &out)) return out;
  std::fprintf(stderr, "unknown delay pattern: %s\n", name.c_str());
  std::exit(2);
}

GossipSpec spec_from_flags(const Flags& f) {
  GossipSpec spec;
  // --algorithm is an alias for --alg; --alg wins when both are given.
  spec.algorithm =
      parse_algorithm(get_str(f, "alg", get_str(f, "algorithm", "ears")));
  spec.n = get_u64(f, "n", 64);
  spec.f = get_u64(f, "f", spec.n / 4);
  spec.d = get_u64(f, "d", 1);
  spec.delta = get_u64(f, "delta", 1);
  spec.seed = get_u64(f, "seed", 1);
  spec.schedule = parse_schedule(
      get_str(f, "schedule", spec.delta == 1 ? "lockstep" : "staggered"));
  spec.delay = parse_delay(get_str(f, "delay", spec.d == 1 ? "unit" : "uniform"));
  spec.crash_horizon = get_u64(f, "crash-horizon", 64);
  spec.sears_epsilon = get_double(f, "epsilon", 0.5);
  spec.ears_shutdown_constant = get_double(f, "shutdown-c", 4.0);
  spec.tears_a_constant = get_double(f, "tears-a", 1.0);
  spec.tears_kappa_constant = get_double(f, "tears-kappa", 1.0);
  spec.lazy_fanout = get_u64(f, "lazy-fanout", 2);
  spec.max_steps = get_u64(f, "max-steps", 0);
  spec.engine_jobs = get_u64(f, "engine-jobs", spec.engine_jobs);
  spec.audit = has_flag(f, "audit");
  return spec;
}

void print_gossip_csv_header() {
  std::printf(
      "alg,n,f,d,delta,seed,completed,steps,msgs,bytes,gathering,majority,"
      "alive,realized_d,realized_delta\n");
}

void print_gossip_csv(const GossipSpec& spec, const GossipOutcome& out) {
  std::printf("%s,%zu,%zu,%llu,%llu,%llu,%d,%llu,%llu,%llu,%d,%d,%zu,%llu,%llu\n",
              to_string(spec.algorithm), spec.n, spec.f,
              (unsigned long long)spec.d, (unsigned long long)spec.delta,
              (unsigned long long)spec.seed, (int)out.completed,
              (unsigned long long)out.completion_time,
              (unsigned long long)out.messages, (unsigned long long)out.bytes,
              (int)out.gathering_ok, (int)out.majority_ok, out.alive,
              (unsigned long long)out.realized_d,
              (unsigned long long)out.realized_delta);
}

int cmd_gossip(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf("usage: gossiplab gossip [flags]\n"
                "run one gossip execution and print a human summary\n"
                "    --csv               print a CSV header + row instead\n%s",
                kSpecFlagHelp);
    return 0;
  }
  check_flags("gossip", f, {SPEC_FLAG_LIST, "csv"});
  const GossipSpec spec = spec_from_flags(f);
  const GossipOutcome out = run_gossip_spec(spec);
  if (has_flag(f, "csv")) {
    print_gossip_csv_header();
    print_gossip_csv(spec, out);
  } else {
    std::printf("%s n=%zu f=%zu d=%llu delta=%llu seed=%llu\n",
                to_string(spec.algorithm), spec.n, spec.f,
                (unsigned long long)spec.d, (unsigned long long)spec.delta,
                (unsigned long long)spec.seed);
    std::printf("  completed   %s (detector at step %llu)\n",
                out.completed ? "yes" : "NO",
                (unsigned long long)out.detection_time);
    std::printf("  time        %llu steps (%.2f per d+delta)\n",
                (unsigned long long)out.completion_time,
                (double)out.completion_time / (double)(spec.d + spec.delta));
    std::printf("  messages    %llu (%.1f per process)\n",
                (unsigned long long)out.messages,
                (double)out.messages / (double)spec.n);
    std::printf("  bytes       %llu (%.1f per message)\n",
                (unsigned long long)out.bytes,
                out.messages ? (double)out.bytes / (double)out.messages : 0.0);
    std::printf("  gathering   %s   majority %s   survivors %zu/%zu\n",
                out.gathering_ok ? "ok" : "FAILED",
                out.majority_ok ? "ok" : "FAILED", out.alive, spec.n);
  }
  return out.completed ? 0 : 1;
}

int cmd_sweep(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf("usage: gossiplab sweep [flags]\n"
                "run an algorithm over a grid of n values x seeds, CSV to "
                "stdout\n"
                "    --n N1,N2,...       population sizes (default 64,128,256)\n"
                "    --fpct P            crash budget as %% of n (default 25)\n"
                "    --seeds K           seeds per size (default 3)\n"
                "    --jobs J            worker threads (default 1; 0 = all "
                "hardware threads).\n"
                "                        output is identical for every J — "
                "only wall time changes\n"
                "    --json PATH         also write an asyncgossip-bench-v1 "
                "report (suite \"sweep\")\n%s",
                kSpecFlagHelp);
    return 0;
  }
  check_flags("sweep", f, {SPEC_FLAG_LIST, "fpct", "seeds", "csv", "jobs",
                           "json"});
  const auto ns = parse_list(get_str(f, "n", "64,128,256"));
  const std::uint64_t fpct = get_u64(f, "fpct", 25);
  const std::uint64_t seeds = get_u64(f, "seeds", 3);
  const std::uint64_t jobs = get_u64(f, "jobs", 1);

  // Build the whole grid up front so the parallel runner can claim cases
  // freely; rows are printed afterwards in grid order regardless of which
  // worker finished first.
  std::vector<GossipSpec> specs;
  specs.reserve(ns.size() * seeds);
  for (std::uint64_t n : ns) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      Flags g = f;
      g["n"] = std::to_string(n);
      g["f"] = std::to_string(n * fpct / 100);
      g["seed"] = std::to_string(get_u64(f, "seed", 1) + s);
      specs.push_back(spec_from_flags(g));
    }
  }
  const std::vector<GossipSweepResult> results =
      run_gossip_sweep(specs, static_cast<std::size_t>(jobs));

  print_gossip_csv_header();
  for (std::size_t i = 0; i < specs.size(); ++i)
    print_gossip_csv(specs[i], results[i].outcome);

  const std::string json_path = get_str(f, "json", "");
  if (!json_path.empty()) {
    std::vector<BenchCaseRow> rows;
    rows.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const GossipSpec& spec = specs[i];
      const GossipOutcome& out = results[i].outcome;
      BenchCaseRow row;
      row.name = spec_label(spec) + "/seed:" + std::to_string(spec.seed);
      row.counters = {
          {"completed", out.completed ? 1.0 : 0.0},
          {"steps", static_cast<double>(out.completion_time)},
          {"msgs", static_cast<double>(out.messages)},
          {"bytes", static_cast<double>(out.bytes)},
          {"gather_ok", out.gathering_ok ? 1.0 : 0.0},
          {"majority_ok", out.majority_ok ? 1.0 : 0.0},
          {"alive", static_cast<double>(out.alive)},
          {"realized_d", static_cast<double>(out.realized_d)},
          {"realized_delta", static_cast<double>(out.realized_delta)},
      };
      rows.push_back(std::move(row));
    }
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "sweep: cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    write_bench_json(out, "sweep", rows);
  }
  return 0;
}

int cmd_consensus(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab consensus [flags]\n"
        "run one Canetti-Rabin consensus execution\n"
        "    --exchange NAME     all-to-all|cr|ears|sears|tears (default tears)\n"
        "    --n N --f F         processes / crash budget (default 64, n/2-1)\n"
        "    --inputs NAME       random|zero|one|half (default random)\n"
        "    --d D --delta DD --seed S --schedule NAME --delay NAME\n"
        "    --epsilon E --tears-a C --tears-kappa C\n");
    return 0;
  }
  check_flags("consensus", f,
              {"exchange", "n", "f", "inputs", "d", "delta", "seed", "schedule",
               "delay", "epsilon", "tears-a", "tears-kappa"});
  ConsensusSpec spec;
  spec.config.n = get_u64(f, "n", 64);
  spec.config.f = get_u64(f, "f", spec.config.n / 2 - 1);
  spec.config.exchange = parse_exchange(get_str(f, "exchange", "tears"));
  spec.config.sears_epsilon = get_double(f, "epsilon", 0.5);
  spec.config.tears_a_constant = get_double(f, "tears-a", 1.0);
  spec.config.tears_kappa_constant = get_double(f, "tears-kappa", 1.0);
  spec.config.seed = get_u64(f, "seed", 1);
  spec.d = get_u64(f, "d", 1);
  spec.delta = get_u64(f, "delta", 1);
  spec.schedule = parse_schedule(
      get_str(f, "schedule", spec.delta == 1 ? "lockstep" : "staggered"));
  spec.delay = parse_delay(get_str(f, "delay", spec.d == 1 ? "unit" : "uniform"));
  spec.seed = spec.config.seed;
  const std::string inputs = get_str(f, "inputs", "random");
  spec.inputs = inputs == "zero"   ? InputPattern::kAllZero
                : inputs == "one"  ? InputPattern::kAllOne
                : inputs == "half" ? InputPattern::kHalfHalf
                                   : InputPattern::kRandom;
  const ConsensusOutcome out = run_consensus_spec(spec);
  std::printf("CR-%s n=%zu f=%zu inputs=%s\n",
              to_string(spec.config.exchange), spec.config.n, spec.config.f,
              inputs.c_str());
  std::printf("  decided     %s -> %d (phase %u)\n",
              out.all_decided ? "yes" : "NO", (int)out.decided_value,
              out.decision_phase);
  std::printf("  agreement   %s   validity %s   core violations %llu\n",
              out.agreement ? "ok" : "VIOLATED",
              out.validity ? "ok" : "VIOLATED",
              (unsigned long long)out.core_violations);
  std::printf("  time        %llu steps to decision, quiet at %llu\n",
              (unsigned long long)out.decision_time,
              (unsigned long long)out.quiet_time);
  std::printf("  messages    %llu to decision, %llu total, %llu bytes\n",
              (unsigned long long)out.messages_at_decision,
              (unsigned long long)out.total_messages,
              (unsigned long long)out.total_bytes);
  return out.all_decided && out.agreement && out.validity ? 0 : 1;
}

int cmd_lowerbound(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf("usage: gossiplab lowerbound [flags]\n"
                "run the Theorem 1 adaptive adversary against an algorithm\n"
                "(omit --n to get the canonical n = 4f population)\n%s",
                kSpecFlagHelp);
    return 0;
  }
  check_flags("lowerbound", f, {SPEC_FLAG_LIST});
  LowerBoundConfig cfg;
  cfg.spec = spec_from_flags(f);
  cfg.spec.ears_shutdown_constant = get_double(f, "shutdown-c", 2.0);
  cfg.f = get_u64(f, "f", cfg.spec.n / 4);
  if (!has_flag(f, "n")) cfg.spec.n = 4 * cfg.f;
  const LowerBoundReport r = run_lower_bound(cfg);
  std::printf("lower bound vs %s: n=%zu f_eff=%zu -> %s\n",
              to_string(cfg.spec.algorithm), r.n, r.f_eff,
              to_string(r.outcome));
  std::printf("  phase1 end t=%llu, promiscuous %zu/%zu\n",
              (unsigned long long)r.phase1_end, r.promiscuous_count,
              r.s2_size);
  if (r.outcome == LowerBoundCase::kCase1Messages)
    std::printf("  case1 window messages %llu (f^2 = %zu)\n",
                (unsigned long long)r.case1_window_messages,
                r.f_eff * r.f_eff);
  if (r.outcome == LowerBoundCase::kCase2Time)
    std::printf("  case2 pair (%u,%u), window to t=%llu, communicated=%d\n",
                r.pair_p, r.pair_q, (unsigned long long)r.case2_window_end,
                (int)r.pair_communicated);
  std::printf("  totals: %llu msgs, completion %llu, gathering %s, "
              "construction %s\n",
              (unsigned long long)r.total_messages,
              (unsigned long long)r.completion_time,
              r.gathering_ok ? "ok" : "never",
              r.construction_ok ? "ok" : "failed");
  return 0;
}

int cmd_trace(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf("usage: gossiplab trace [flags]\n"
                "run a small gossip execution and print its ASCII timeline\n"
                "    --steps T           step budget (default 96)\n"
                "    --record PATH       write the event trace to PATH instead\n%s",
                kSpecFlagHelp);
    return 0;
  }
  check_flags("trace", f, {SPEC_FLAG_LIST, "steps", "record"});
  GossipSpec spec = spec_from_flags(f);
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace;
  engine.set_observer(&trace);
  const Time steps = get_u64(f, "steps", 96);
  engine.run_until(gossip_quiet, steps);
  if (has_flag(f, "record")) {
    const std::string path = get_str(f, "record", "run.trace");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 2;
    }
    trace.write_trace(out, spec.n, spec.d, spec.delta, spec.f);
    std::printf("recorded %zu events to %s (check with: tracecheck %s)\n",
                trace.events().size(), path.c_str(), path.c_str());
    return 0;
  }
  std::printf("%s n=%zu f=%zu — timeline (o step, s send, d deliver, "
              "b both, X crash):\n\n",
              to_string(spec.algorithm), spec.n, spec.f);
  std::printf("%s\n", trace.render_timeline(spec.n, 32,
                                            (std::size_t)engine.now()).c_str());
  const Summary lat = trace.latency_summary();
  std::printf("events: %llu steps, %llu sends, %llu deliveries, %llu crashes\n",
              (unsigned long long)trace.steps(),
              (unsigned long long)trace.sends(),
              (unsigned long long)trace.deliveries(),
              (unsigned long long)trace.crashes());
  std::printf("delivery latency: mean %.2f, max %.0f\n", lat.mean, lat.max);
  return 0;
}

int cmd_report(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab report [flags]\n"
        "run one gossip execution with telemetry attached and print the\n"
        "asyncgossip-telemetry-v1 JSON report (schema: docs/OBSERVABILITY.md)\n"
        "    --out PATH          write the JSON report to PATH\n"
        "    --spread-csv PATH   also write the spread time-series as CSV\n%s",
        kSpecFlagHelp);
    return 0;
  }
  check_flags("report", f, {SPEC_FLAG_LIST, "out", "spread-csv"});
  GossipSpec spec = spec_from_flags(f);
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.telemetry = &telemetry;
  const GossipOutcome out = run_gossip_spec(spec);

  TelemetryExportInfo info;
  info.run = {{"tool", "gossiplab report"},
              {"algorithm", to_string(spec.algorithm)},
              {"schedule", to_string(spec.schedule)},
              {"delay", to_string(spec.delay)}};
  info.summary = {
      {"n", (double)spec.n},
      {"f", (double)spec.f},
      {"d", (double)spec.d},
      {"delta", (double)spec.delta},
      {"seed", (double)spec.seed},
      {"completed", out.completed ? 1.0 : 0.0},
      {"completion_time", (double)out.completion_time},
      {"detection_time", (double)out.detection_time},
      {"steps_per_d_plus_delta",
       (double)out.completion_time / (double)(spec.d + spec.delta)},
      {"messages", (double)out.messages},
      {"bytes", (double)out.bytes},
      {"gathering_ok", out.gathering_ok ? 1.0 : 0.0},
      {"majority_ok", out.majority_ok ? 1.0 : 0.0},
      {"alive", (double)out.alive},
  };

  std::ostringstream doc;
  write_telemetry_json(doc, telemetry, info);
  std::string json_err;
  if (!json_valid(doc.str(), &json_err)) {
    std::fprintf(stderr, "internal error: report is not valid JSON: %s\n",
                 json_err.c_str());
    return 3;
  }
  if (has_flag(f, "out")) {
    const std::string path = get_str(f, "out", "report.json");
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 2;
    }
    os << doc.str();
    std::fprintf(stderr, "wrote telemetry report to %s\n", path.c_str());
  } else {
    std::fputs(doc.str().c_str(), stdout);
  }
  if (has_flag(f, "spread-csv")) {
    const std::string path = get_str(f, "spread-csv", "spread.csv");
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 2;
    }
    write_spread_csv(os, telemetry);
    std::fprintf(stderr, "wrote spread time-series to %s\n", path.c_str());
  }
  return out.completed ? 0 : 1;
}

int cmd_rt(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab rt [flags]\n"
        "run one gossip execution on the real-time threaded runtime (one\n"
        "thread per process, wall-clock ticks; see docs/RUNTIME.md), audit\n"
        "the recorded trace offline, and print the asyncgossip-telemetry-v1\n"
        "JSON report\n"
        "    --inject KIND       faults: none|crash|stall|drop|all (default none)\n"
        "    --tick-us T         wall-clock microseconds per model tick (default 200)\n"
        "    --transport KIND    inproc (threads, default) | udp (one OS process\n"
        "                        per gossip process over loopback datagrams) |\n"
        "                        udp-threads (threads over the UDP transport)\n"
        "    --wire-drop P --wire-dup P --wire-reorder P\n"
        "                        seeded datagram faults at the socket boundary\n"
        "                        (UDP transports only; probabilities in [0,1])\n"
        "    --wire-seed S       fault-shim seed (default: --seed)\n"
        "    --record PATH       write the trace-format-v1 event log to PATH\n"
        "    --out PATH          write the JSON report to PATH\n"
        "    --spans PATH        enable the flight recorder and write the raw\n"
        "                        flight log (asyncgossip flight v1) to PATH;\n"
        "                        convert with `gossiplab spans`\n"
        "    --stats-interval-ms T  emit live asyncgossip-stats-v1 NDJSON\n"
        "                        snapshots every T ms (T >= 1)\n"
        "    --stats-out PATH    stats destination (default: stderr)\n"
        "  --d/--delta are *targets* (delay-draw range / pacing aim); the\n"
        "  report carries the bounds the execution realized (defaults 4, 2)\n%s",
        kSpecFlagHelp);
    return 0;
  }
  check_flags("rt", f,
              {SPEC_FLAG_LIST, "inject", "tick-us", "record", "out", "spans",
               "stats-interval-ms", "stats-out", "transport", "wire-drop",
               "wire-dup", "wire-reorder", "wire-seed", "worker", "coord-port",
               "trace-out"});
  RtConfig config;
  config.spec = spec_from_flags(f);
  // Real transports have jitter: a degenerate d = 1 target makes every
  // delay draw identical, so rt defaults to a small spread instead.
  if (!has_flag(f, "d")) config.spec.d = 4;
  if (!has_flag(f, "delta")) config.spec.delta = 2;
  config.tick_us = get_u64(f, "tick-us", 200);
  const std::string inject_name = get_str(f, "inject", "none");
  if (!rt_inject_from_string(inject_name, &config.inject)) {
    std::fprintf(stderr, "unknown inject kind: %s\n", inject_name.c_str());
    return 2;
  }
  const std::string transport_name = get_str(f, "transport", "inproc");
  bool multiproc = false;
  if (transport_name == "udp") {
    // One OS process per gossip process (rt/multiproc.h).
    multiproc = true;
    config.transport = RtTransportKind::kUdp;
  } else if (transport_name == "udp-threads") {
    config.transport = RtTransportKind::kUdp;
  } else if (!rt_transport_from_string(transport_name, &config.transport)) {
    std::fprintf(stderr, "unknown transport: %s\n", transport_name.c_str());
    return 2;
  }
  config.wire_faults.drop_probability = get_double(f, "wire-drop", 0.0);
  config.wire_faults.duplicate_probability = get_double(f, "wire-dup", 0.0);
  config.wire_faults.reorder_probability = get_double(f, "wire-reorder", 0.0);
  config.wire_faults.seed = get_u64(f, "wire-seed", config.spec.seed);

  // Worker mode: this invocation IS one gossip process of a multi-process
  // run (re-exec'd by the coordinator — UDP by definition, so the
  // wire-fault validation below does not apply); run it and exit.
  if (has_flag(f, "worker")) {
    const auto worker_id = static_cast<ProcessId>(get_u64(f, "worker", 0));
    const auto coord_port =
        static_cast<std::uint16_t>(get_u64(f, "coord-port", 0));
    return run_rt_udp_worker(config, worker_id, coord_port,
                             get_str(f, "trace-out", ""));
  }
  if (config.wire_faults.any() &&
      config.transport == RtTransportKind::kInProcess) {
    std::fprintf(stderr,
                 "gossiplab rt: --wire-* faults need --transport udp or "
                 "udp-threads\n");
    return 2;
  }
  if (has_flag(f, "coord-port") || has_flag(f, "trace-out")) {
    std::fprintf(stderr,
                 "gossiplab rt: --coord-port/--trace-out are worker-mode "
                 "flags (set by the coordinator)\n");
    return 2;
  }
  if (multiproc && (has_flag(f, "spans") || has_flag(f, "stats-interval-ms"))) {
    std::fprintf(stderr,
                 "gossiplab rt: --spans/--stats-interval-ms are not supported "
                 "with --transport udp (multi-process)\n");
    return 2;
  }
  if (has_flag(f, "spans")) config.flight = true;
  if (has_flag(f, "stats-interval-ms")) {
    config.stats_interval_ms = get_u64(f, "stats-interval-ms", 0);
    if (config.stats_interval_ms == 0) {
      std::fprintf(stderr,
                   "gossiplab rt: --stats-interval-ms must be >= 1 "
                   "(0 would busy-spin the snapshot thread)\n");
      return 2;
    }
  }
  std::ofstream stats_file;
  if (config.stats_interval_ms > 0) {
    if (has_flag(f, "stats-out")) {
      const std::string path = get_str(f, "stats-out", "stats.ndjson");
      stats_file.open(path);
      if (!stats_file) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return 2;
      }
      config.stats_out = &stats_file;
    } else {
      config.stats_out = &std::cerr;
    }
  } else if (has_flag(f, "stats-out")) {
    std::fprintf(stderr,
                 "gossiplab rt: --stats-out requires --stats-interval-ms\n");
    return 2;
  }

  RtRunResult res;
  MultiprocResult mp;  // owns phase_pool backing res.probes when multiproc
  if (multiproc) {
    MultiprocConfig mc;
    mc.rt = config;
    // Rebuild the argv tail reproducing this run's spec for the worker
    // re-execs; boolean flags round-trip as "--key 1". Driver-local and
    // output flags stay with the coordinator.
    mc.worker_args.push_back("rt");
    for (const auto& [key, value] : f) {
      if (key == "record" || key == "out" || key == "spans" ||
          key == "stats-interval-ms" || key == "stats-out" ||
          key == "transport" || key == "worker" || key == "coord-port" ||
          key == "trace-out" || key == "help")
        continue;
      mc.worker_args.push_back("--" + key);
      mc.worker_args.push_back(value);
    }
    mp = run_realtime_udp(mc);
    for (const std::string& err : mp.errors)
      std::fprintf(stderr, "rt multiproc: %s\n", err.c_str());
    res = std::move(mp.run);
  } else {
    res = run_realtime(config);
  }
  if (res.events_dropped != 0)
    std::fprintf(stderr, "warning: %zu records dropped (trace is a prefix)\n",
                 res.events_dropped);

  if (has_flag(f, "record")) {
    const std::string path = get_str(f, "record", "rt.trace");
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 2;
    }
    write_rt_trace(os, config, res);
    std::fprintf(stderr, "wrote event log to %s\n", path.c_str());
  }

  if (has_flag(f, "spans")) {
    const std::string path = get_str(f, "spans", "rt.flight");
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 2;
    }
    write_flight_log(os, rt_flight_header(config, res), res.flight);
    std::fprintf(stderr,
                 "wrote flight log to %s (%llu records, %llu dropped)\n",
                 path.c_str(), (unsigned long long)res.flight.size(),
                 (unsigned long long)res.flight_dropped);
  }

  const ViolationReport audit = audit_rt_run(config, res);
  if (!audit.ok())
    std::fprintf(stderr, "audit found %llu violation(s):\n%s",
                 (unsigned long long)audit.total(), audit.summary().c_str());

  TelemetryCollector telemetry(rt_telemetry_config(config, res));
  feed_telemetry(res, &telemetry);

  const RtOutcome& out = res.outcome;
  // The sync baseline's spread guarantee only applies at d = delta = 1,
  // which a wall-clock execution essentially never realizes — evaluate the
  // contract against the realized bounds, like the fuzz oracle does
  // against the configured ones.
  GossipSpec realized = config.spec;
  realized.d = out.realized_d;
  realized.delta = out.realized_delta;
  const bool gathering_required = gossip_requires_gathering(realized);
  const bool majority_required = gossip_requires_majority(realized);

  // cr-* runs: gathering/majority are exempt above; the run is instead
  // judged by the consensus verdict aggregated from per-process notes
  // (threaded: collected post-join; udp: carried in worker files).
  const bool is_consensus = is_consensus_algorithm(config.spec.algorithm);
  ConsensusVerdict verdict;
  if (is_consensus) verdict = judge_consensus_notes(res.notes, res.crashed);

  TelemetryExportInfo info;
  info.run = {{"tool", "gossiplab rt"},
              {"runtime", multiproc ? "realtime-multiproc" : "realtime-threads"},
              {"transport", transport_name.c_str()},
              {"algorithm", to_string(config.spec.algorithm)},
              {"inject", to_string(config.inject)}};
  info.summary = {
      {"n", (double)config.spec.n},
      {"f", (double)config.spec.f},
      {"d_target", (double)config.spec.d},
      {"delta_target", (double)config.spec.delta},
      {"seed", (double)config.spec.seed},
      {"tick_us", (double)config.tick_us},
      {"completed", out.completed ? 1.0 : 0.0},
      {"completion_time", (double)out.completion_time},
      {"end_time", (double)out.end_time},
      {"steps", (double)out.steps},
      {"messages", (double)out.messages},
      {"bytes", (double)out.bytes},
      {"deliveries", (double)out.deliveries},
      {"realized_d", (double)out.realized_d},
      {"realized_delta", (double)out.realized_delta},
      {"gathering_ok", out.gathering_ok ? 1.0 : 0.0},
      {"majority_ok", out.majority_ok ? 1.0 : 0.0},
      {"alive", (double)out.alive},
      {"crashes", (double)out.crashes},
      {"audit_violations", (double)audit.total()},
      {"wall_ms", out.wall_ms},
      {"recorder_enabled", config.flight ? 1.0 : 0.0},
      {"recorder_records", (double)res.flight.size()},
      {"recorder_pushed", (double)res.flight_pushed},
      {"recorder_dropped", (double)res.flight_dropped},
      {"recorder_overhead_ms", res.recorder_overhead_ms},
  };
  if (is_consensus) {
    info.summary.insert(
        info.summary.end(),
        {
            {"consensus_all_decided", verdict.all_decided ? 1.0 : 0.0},
            {"consensus_agreement", verdict.agreement ? 1.0 : 0.0},
            {"consensus_validity", verdict.validity ? 1.0 : 0.0},
            {"consensus_decided_value", (double)verdict.decided_value},
            {"consensus_decision_phase", (double)verdict.decision_phase},
            {"consensus_decided_count", (double)verdict.decided_count},
            {"consensus_survivors", (double)verdict.survivors},
            {"consensus_core_violations", (double)verdict.core_violations},
            {"consensus_reannouncements", (double)verdict.reannouncements},
        });
  }

  std::ostringstream doc;
  write_telemetry_json(doc, telemetry, info);
  std::string json_err;
  if (!json_valid(doc.str(), &json_err)) {
    std::fprintf(stderr, "internal error: report is not valid JSON: %s\n",
                 json_err.c_str());
    return 3;
  }
  if (has_flag(f, "out")) {
    const std::string path = get_str(f, "out", "rt.json");
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 2;
    }
    os << doc.str();
    std::fprintf(stderr, "wrote telemetry report to %s\n", path.c_str());
  } else {
    std::fputs(doc.str().c_str(), stdout);
  }

  const bool ok = out.completed && audit.ok() &&
                  (!gathering_required || out.gathering_ok) &&
                  (!majority_required || out.majority_ok) &&
                  (!is_consensus || verdict.ok());
  if (is_consensus)
    std::fprintf(stderr, "consensus: %s\n", verdict.summary().c_str());
  if (!ok)
    std::fprintf(stderr,
                 "rt run failed: completed=%d audit_ok=%d gathering=%d/%d "
                 "majority=%d/%d consensus=%d/%d\n",
                 (int)out.completed, (int)audit.ok(), (int)out.gathering_ok,
                 (int)gathering_required, (int)out.majority_ok,
                 (int)majority_required, (int)(!is_consensus || verdict.ok()),
                 (int)is_consensus);
  return ok ? 0 : 1;
}

int cmd_spans(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab spans --in FLIGHT.log [--out TRACE.json]\n"
        "convert a flight log recorded by `gossiplab rt --spans` into Chrome\n"
        "trace-event JSON (asyncgossip-spans-v1; open in ui.perfetto.dev) and\n"
        "print the per-message delivery wall-latency percentiles next to the\n"
        "realized d+delta budget\n"
        "    --in PATH           flight log to read (required)\n"
        "    --out PATH          write the Chrome trace-event JSON to PATH\n");
    return 0;
  }
  check_flags("spans", f, {"in", "out"});
  if (!has_flag(f, "in")) {
    std::fprintf(stderr, "gossiplab spans: --in FLIGHT.log is required\n");
    return 2;
  }
  const std::string in_path = get_str(f, "in", "rt.flight");
  std::ifstream is(in_path);
  if (!is) {
    std::fprintf(stderr, "cannot open %s for reading\n", in_path.c_str());
    return 2;
  }
  FlightLogHeader header;
  std::vector<FlightRecord> records;
  std::string parse_err;
  if (!read_flight_log(is, &header, &records, &parse_err)) {
    std::fprintf(stderr, "%s: not a flight log: %s\n", in_path.c_str(),
                 parse_err.c_str());
    return 2;
  }

  if (has_flag(f, "out")) {
    std::ostringstream doc;
    write_chrome_trace(doc, header, records);
    std::string json_err;
    if (!json_valid(doc.str(), &json_err)) {
      std::fprintf(stderr, "internal error: trace is not valid JSON: %s\n",
                   json_err.c_str());
      return 3;
    }
    const std::string out_path = get_str(f, "out", "spans.json");
    std::ofstream os(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 2;
    }
    os << doc.str();
    std::fprintf(stderr,
                 "wrote Chrome trace-event JSON to %s (load it in "
                 "ui.perfetto.dev or chrome://tracing)\n",
                 out_path.c_str());
  }

  const SpanSummary s = summarize_spans(records);
  std::printf("spans: %zu sends, %zu delivers, %zu paired",
              s.sends, s.delivers, s.paired);
  if (header.dropped != 0)
    std::printf(" (%llu ring records dropped — sample, not a full record)",
                (unsigned long long)header.dropped);
  std::printf("\n");
  const double budget_ms =
      (double)(header.realized_d + header.realized_delta) *
      (double)header.tick_us / 1000.0;
  std::printf(
      "delivery wall latency: p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
      "max %.3f ms\n",
      s.p50_us / 1000.0, s.p95_us / 1000.0, s.p99_us / 1000.0,
      s.max_us / 1000.0);
  std::printf(
      "realized d+delta budget: %llu ticks @ %llu us = %.3f ms\n",
      (unsigned long long)(header.realized_d + header.realized_delta),
      (unsigned long long)header.tick_us, budget_ms);
  for (const ZoneTotal& z : s.zones)
    std::printf("zone %-13s %8llu calls  %10.3f ms total\n", z.name.c_str(),
                (unsigned long long)z.count, z.total_ms);
  return 0;
}

int cmd_fuzz(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab fuzz [flags]\n"
        "sample oblivious-adversary configurations across every algorithm,\n"
        "run each under the invariant auditor + gossip postconditions, and\n"
        "shrink the first failing case to a replayable repro artifact\n"
        "    --iters K           cases to sample (default 200)\n"
        "    --seed S            fuzz stream seed (default 1)\n"
        "    --budget-ms T       wall-clock budget, 0 = unlimited (default 0)\n"
        "    --out PREFIX        artifact prefix; a failure writes\n"
        "                        PREFIX.spec.json + PREFIX.trace (default\n"
        "                        fuzz-repro)\n"
        "    --inject NAME       test-only fault injection into an offline\n"
        "                        copy of the event stream:\n"
        "                        late-delivery|double-step|phantom-crash\n"
        "exit status: 0 no failure found, 1 failure found and shrunk\n");
    return 0;
  }
  check_flags("fuzz", f, {"iters", "seed", "budget-ms", "out", "inject"});
  GossipFuzzOptions opt;
  opt.fuzz.iterations = get_u64(f, "iters", 200);
  opt.fuzz.seed = get_u64(f, "seed", 1);
  opt.fuzz.time_budget_ms = get_u64(f, "budget-ms", 0);
  opt.artifact_prefix = get_str(f, "out", "fuzz-repro");
  const std::string inject = get_str(f, "inject", "");
  if (!inject.empty() && !event_mutator_from_string(inject, &opt.mutate)) {
    std::fprintf(stderr, "unknown --inject mutator: %s\n", inject.c_str());
    return 2;
  }
  std::ostringstream log;
  opt.log = &log;
  const GossipFuzzResult result = run_gossip_fuzz(opt);
  std::fputs(log.str().c_str(), stdout);
  if (!result.found_failure) return 0;
  std::printf("replay with: gossiplab replay --in %s\n",
              result.spec_artifact.empty() ? "<artifact>"
                                           : result.spec_artifact.c_str());
  return 1;
}

int cmd_replay(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab replay --in ARTIFACT.spec.json\n"
        "re-execute an asyncgossip-repro-v1 artifact (gossiplab fuzz output)\n"
        "and verify the engine trace hash against the pinned fingerprint\n"
        "exit status: 0 hash matches, 1 mismatch, 2 unreadable artifact\n");
    return 0;
  }
  check_flags("replay", f, {"in"});
  const std::string path = get_str(f, "in", "");
  if (path.empty()) {
    std::fprintf(stderr, "replay: --in ARTIFACT.spec.json is required\n");
    return 2;
  }
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return 2;
  }
  ReproArtifact artifact;
  std::string error;
  if (!read_repro_json(is, &artifact, &error)) {
    std::fprintf(stderr, "replay: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  if (!artifact.failure.empty())
    std::printf("pinned failure: %s\n", artifact.failure.c_str());
  std::string detail;
  const bool match = replay_repro(artifact, &detail);
  std::printf("%s\n", detail.c_str());
  return match ? 0 : 1;
}

int cmd_statcheck(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab statcheck [flags]\n"
        "statistical check of the paper's Table 1 envelopes for EARS and\n"
        "TEARS: per-cell trial batches, one-sided quantile tests, constant\n"
        "fitted on the smallest-n calibration column\n"
        "    --trials K          seeds per cell (default 12)\n"
        "    --seed S            base seed (default 1)\n"
        "    --jobs J            worker threads (default 0 = all hardware)\n"
        "    --n N1,N2,...       population grid (default 12,16,24,32)\n"
        "    --fpct P            crash budget as %% of n (default 25)\n"
        "    --quantile Q        order statistic in (0,1] (default 0.9)\n"
        "    --slack C           calibration slack factor (default 3.0)\n"
        "    --out PATH          write asyncgossip-statcheck-v1 JSON to PATH\n"
        "                        (default: stdout)\n"
        "exit status: 0 all cells pass, 1 a cell failed, 3 internal error\n");
    return 0;
  }
  check_flags("statcheck", f, {"trials", "seed", "jobs", "n", "fpct",
                               "quantile", "slack", "out"});
  GossipStatCheckOptions opt;
  opt.trials = get_u64(f, "trials", 12);
  opt.seed = get_u64(f, "seed", 1);
  opt.jobs = get_u64(f, "jobs", 0);
  if (has_flag(f, "n")) {
    opt.ns.clear();
    for (const std::uint64_t n : parse_list(get_str(f, "n", "")))
      opt.ns.push_back(static_cast<std::size_t>(n));
  }
  opt.f_fraction = static_cast<double>(get_u64(f, "fpct", 25)) / 100.0;
  opt.stat.quantile = get_double(f, "quantile", 0.9);
  opt.stat.slack = get_double(f, "slack", 3.0);
  std::ostringstream log;
  opt.log = &log;
  const StatReport report = run_gossip_statcheck(opt);
  std::fputs(log.str().c_str(), stderr);

  auto run_info = statcheck_run_info(opt);
  run_info.insert(run_info.begin(), {"tool", "gossiplab statcheck"});
  std::ostringstream doc;
  write_statcheck_json(doc, report, run_info);
  std::string json_err;
  if (!json_valid(doc.str(), &json_err)) {
    std::fprintf(stderr, "internal error: statcheck report is not valid "
                 "JSON: %s\n", json_err.c_str());
    return 3;
  }
  if (has_flag(f, "out")) {
    const std::string path = get_str(f, "out", "statcheck.json");
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 2;
    }
    os << doc.str();
    std::fprintf(stderr, "wrote statcheck report to %s\n", path.c_str());
  } else {
    std::fputs(doc.str().c_str(), stdout);
  }
  return report.ok() ? 0 : 1;
}

// Shared replica-group flags consumed by group_from_flags (serve, and
// loadgen's inproc target).
#define GROUP_FLAG_LIST                                                       \
  "alg", "algorithm", "n", "f", "d", "delta", "seed", "batch", "crashes",     \
      "crash-horizon", "stall-p", "log"

constexpr const char* kGroupFlagHelp =
    "  replica-group flags (the service's consensus commit path):\n"
    "    --alg NAME          cr-ears|cr-sears|cr-tears (default cr-tears)\n"
    "    --algorithm NAME    alias for --alg\n"
    "    --n N --f F         replicas / tolerated crashes (default 8, (n-1)/2)\n"
    "    --d D --delta DD    per-slot delivery / scheduling bounds (default 2, 2)\n"
    "    --seed S            group seed: fault plan + per-slot engines (default 1)\n"
    "    --batch K           max commands per consensus slot (default 512)\n"
    "    --crashes K         fault plan: replicas to crash over the run; may\n"
    "                        exceed --f to exercise honest unavailability\n"
    "    --crash-horizon T   crash slots drawn in [1, T] (default 64)\n"
    "    --stall-p P         per-slot stall probability (d inflated 4x)\n"
    "    --log PATH          stream the committed log (svc-log-v1) to PATH\n";

svc::ReplicaGroupConfig group_from_flags(const char* cmd, const Flags& f) {
  svc::ReplicaGroupConfig g;
  g.n = get_u64(f, "n", 8);
  g.f = get_u64(f, "f", g.n >= 1 ? (g.n - 1) / 2 : 0);
  g.algorithm =
      parse_algorithm(get_str(f, "alg", get_str(f, "algorithm", "cr-tears")));
  if (!is_consensus_algorithm(g.algorithm)) {
    std::fprintf(stderr,
                 "gossiplab %s: the service commits through consensus; --alg "
                 "must be cr-ears|cr-sears|cr-tears\n",
                 cmd);
    std::exit(2);
  }
  if (g.n < 3 || g.f >= (g.n + 1) / 2) {
    std::fprintf(stderr,
                 "gossiplab %s: need n >= 3 and f < n/2 (got n=%zu f=%zu)\n",
                 cmd, g.n, g.f);
    std::exit(2);
  }
  g.d = get_u64(f, "d", 2);
  g.delta = get_u64(f, "delta", 2);
  g.seed = get_u64(f, "seed", 1);
  g.inject_crashes = get_u64(f, "crashes", 0);
  g.crash_horizon_slots = get_u64(f, "crash-horizon", 64);
  g.stall_probability = get_double(f, "stall-p", 0.0);
  if (g.stall_probability < 0.0 || g.stall_probability > 1.0) {
    std::fprintf(stderr, "gossiplab %s: --stall-p must be in [0,1]\n", cmd);
    std::exit(2);
  }
  return g;
}

/// Appends the service's slot/commit counters to a bench-v1 counter list.
void append_service_counters(const svc::KvServiceStats& stats,
                             std::vector<std::pair<std::string, double>>* c) {
  c->insert(c->end(),
            {
                {"committed", (double)stats.committed},
                {"slots", (double)stats.slots},
                {"slots_unavailable", (double)stats.slots_unavailable},
                {"slots_stalled", (double)stats.slots_stalled},
                {"consensus_messages", (double)stats.consensus_messages},
                {"consensus_bytes", (double)stats.consensus_bytes},
                {"consensus_ticks", (double)stats.consensus_ticks},
                {"max_batch", (double)stats.max_batch},
            });
}

int write_bench_report(const Flags& f, const char* suite, BenchCaseRow row) {
  const std::string path = get_str(f, "json", "");
  if (path.empty()) return 0;
  std::ostringstream doc;
  write_bench_json(doc, suite, {std::move(row)});
  std::string json_err;
  if (!json_valid(doc.str(), &json_err)) {
    std::fprintf(stderr, "internal error: %s report is not valid JSON: %s\n",
                 suite, json_err.c_str());
    return 3;
  }
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 2;
  }
  os << doc.str();
  std::fprintf(stderr, "wrote %s report to %s\n", suite, path.c_str());
  return 0;
}

int cmd_serve(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab serve --port P [flags]\n"
        "run the replicated KV service behind a loopback UDP front-end for a\n"
        "fixed duration, then print the serving counters (docs/SERVING.md)\n"
        "    --port P            UDP port on 127.0.0.1 (required; 0 = ephemeral,\n"
        "                        the bound port is printed on stdout)\n"
        "    --duration S        seconds to serve (default 10)\n"
        "    --json PATH         write an asyncgossip-bench-v1 report "
        "(suite \"serve\")\n%s",
        kGroupFlagHelp);
    return 0;
  }
  check_flags("serve", f, {GROUP_FLAG_LIST, "port", "duration", "json"});
  if (!has_flag(f, "port")) {
    std::fprintf(stderr,
                 "gossiplab serve: --port is required (0 = ephemeral)\n");
    return 2;
  }
  const double duration = get_double(f, "duration", 10.0);
  if (duration <= 0.0) {
    std::fprintf(stderr, "gossiplab serve: --duration must be > 0\n");
    return 2;
  }
  svc::KvServiceConfig cfg;
  cfg.group = group_from_flags("serve", f);
  cfg.batch_limit = get_u64(f, "batch", 512);
  if (cfg.batch_limit == 0) {
    std::fprintf(stderr, "gossiplab serve: --batch must be >= 1\n");
    return 2;
  }
  std::ofstream log_file;
  if (has_flag(f, "log")) {
    log_file.open(get_str(f, "log", "svc.log"));
    if (!log_file) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   get_str(f, "log", "svc.log").c_str());
      return 2;
    }
    cfg.log_out = &log_file;
  }
  svc::KvService service(cfg);
  svc::UdpKvServer server(&service,
                          (std::uint16_t)get_u64(f, "port", 0));
  if (!server.ok()) {
    std::fprintf(stderr, "gossiplab serve: cannot bind 127.0.0.1:%llu\n",
                 (unsigned long long)get_u64(f, "port", 0));
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (%s n=%zu f=%zu seed=%llu)\n",
              (unsigned)server.port(), to_string(cfg.group.algorithm),
              cfg.group.n, cfg.group.f, (unsigned long long)cfg.group.seed);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::duration<double>(duration));
  server.stop();
  service.stop();
  const svc::KvServiceStats stats = service.stats();
  std::printf("served %llu requests (%llu malformed datagrams dropped)\n",
              (unsigned long long)server.requests(),
              (unsigned long long)server.malformed());
  std::printf(
      "  committed   %llu over %llu slots (%llu unavailable, %llu stalled, "
      "max batch %llu)\n",
      (unsigned long long)stats.committed, (unsigned long long)stats.slots,
      (unsigned long long)stats.slots_unavailable,
      (unsigned long long)stats.slots_stalled,
      (unsigned long long)stats.max_batch);
  std::printf("  consensus   %llu msgs, %llu bytes, %llu ticks\n",
              (unsigned long long)stats.consensus_messages,
              (unsigned long long)stats.consensus_bytes,
              (unsigned long long)stats.consensus_ticks);
  BenchCaseRow row;
  row.name = std::string("serve/") + to_string(cfg.group.algorithm) +
             "/n:" + std::to_string(cfg.group.n) +
             "/seed:" + std::to_string(cfg.group.seed);
  row.counters = {{"requests", (double)server.requests()},
                  {"malformed", (double)server.malformed()},
                  {"unavailable", (double)stats.unavailable}};
  append_service_counters(stats, &row.counters);
  return write_bench_report(f, "serve", std::move(row));
}

int cmd_loadgen(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab loadgen --target inproc|udp [flags]\n"
        "drive an open-loop workload (request k due at k/rate seconds; never\n"
        "paced by responses) and report commit-latency percentiles and\n"
        "throughput; exit 1 when any request went unacked or unavailable\n"
        "    --target KIND       inproc (own service in-process; the >= 1M\n"
        "                        soak path) | udp (a running `gossiplab serve`)\n"
        "    --port P            UDP target port on 127.0.0.1\n"
        "    --rate R            requests/second; 0 = unpaced (default 0)\n"
        "    --duration S        with --rate: issue for S seconds\n"
        "                        (requests = rate * duration)\n"
        "    --requests K        total requests (alternative to\n"
        "                        --rate + --duration)\n"
        "    --keys K            key space size (default 1024)\n"
        "    --value-bytes B     value payload size, 1..4000 (default 16)\n"
        "    --clients C         logical clients (default 4)\n"
        "    --get-frac P --cas-frac P\n"
        "                        workload mix (defaults 0.4, 0.1; rest puts)\n"
        "    --obs PATH          stream observations (svc-obs-v1) to PATH for\n"
        "                        `gossiplab histcheck`\n"
        "    --drain-timeout S   UDP: grace for trailing responses (default 5)\n"
        "    --json PATH         write an asyncgossip-bench-v1 report "
        "(suite \"loadgen\")\n"
        "  inproc also takes the replica-group flags:\n%s",
        kGroupFlagHelp);
    return 0;
  }
  check_flags("loadgen", f,
              {GROUP_FLAG_LIST, "target", "port", "rate", "duration",
               "requests", "keys", "value-bytes", "clients", "get-frac",
               "cas-frac", "obs", "drain-timeout", "json"});
  const std::string target = get_str(f, "target", "");
  if (target != "inproc" && target != "udp") {
    std::fprintf(stderr,
                 "gossiplab loadgen: --target inproc|udp is required\n");
    return 2;
  }
  svc::LoadgenConfig lc;
  lc.rate = get_double(f, "rate", 0.0);
  if (lc.rate < 0.0) {
    std::fprintf(stderr, "gossiplab loadgen: --rate must be >= 0\n");
    return 2;
  }
  if (has_flag(f, "requests")) {
    lc.requests = get_u64(f, "requests", 0);
  } else {
    const double duration = get_double(f, "duration", 0.0);
    lc.requests = (std::uint64_t)(lc.rate * duration);
  }
  if (lc.requests == 0) {
    std::fprintf(stderr,
                 "gossiplab loadgen: need --requests K, or --rate R with "
                 "--duration S\n");
    return 2;
  }
  lc.keys = get_u64(f, "keys", 1024);
  lc.value_bytes = get_u64(f, "value-bytes", 16);
  // Tokens are capped at 4096 printable bytes and a request datagram must
  // fit the 8 KiB receive buffer with headroom for the other fields.
  if (lc.keys == 0 || lc.value_bytes == 0 || lc.value_bytes > 4000) {
    std::fprintf(stderr,
                 "gossiplab loadgen: --keys must be >= 1 and --value-bytes "
                 "in 1..4000\n");
    return 2;
  }
  lc.seed = get_u64(f, "seed", 1);
  lc.clients = get_u64(f, "clients", 4);
  lc.get_fraction = get_double(f, "get-frac", 0.4);
  lc.cas_fraction = get_double(f, "cas-frac", 0.1);
  if (lc.get_fraction < 0.0 || lc.cas_fraction < 0.0 ||
      lc.get_fraction + lc.cas_fraction > 1.0) {
    std::fprintf(stderr,
                 "gossiplab loadgen: --get-frac/--cas-frac must be >= 0 and "
                 "sum to <= 1\n");
    return 2;
  }
  lc.drain_timeout_s = get_double(f, "drain-timeout", 5.0);
  std::ofstream obs_file;
  if (has_flag(f, "obs")) {
    obs_file.open(get_str(f, "obs", "svc.obs"));
    if (!obs_file) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   get_str(f, "obs", "svc.obs").c_str());
      return 2;
    }
    lc.obs_out = &obs_file;
  }

  svc::LoadgenReport report;
  svc::KvServiceStats stats;
  bool have_stats = false;
  if (target == "udp") {
    const std::uint64_t port = get_u64(f, "port", 0);
    if (port == 0 || port > 65535) {
      std::fprintf(stderr,
                   "gossiplab loadgen: --target udp needs --port 1..65535\n");
      return 2;
    }
    lc.udp_port = (std::uint16_t)port;
    report = svc::run_loadgen(lc);
  } else {
    svc::KvServiceConfig cfg;
    cfg.group = group_from_flags("loadgen", f);
    cfg.batch_limit = get_u64(f, "batch", 512);
    if (cfg.batch_limit == 0) {
      std::fprintf(stderr, "gossiplab loadgen: --batch must be >= 1\n");
      return 2;
    }
    std::ofstream log_file;
    if (has_flag(f, "log")) {
      log_file.open(get_str(f, "log", "svc.log"));
      if (!log_file) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     get_str(f, "log", "svc.log").c_str());
        return 2;
      }
      cfg.log_out = &log_file;
    }
    svc::KvService service(cfg);
    lc.inproc = &service;
    report = svc::run_loadgen(lc);
    service.stop();
    stats = service.stats();
    have_stats = true;
  }

  std::printf("loadgen %s: %llu attempted, %llu acked, %llu unavailable, "
              "%llu unacked -> %s\n",
              target.c_str(), (unsigned long long)report.attempted,
              (unsigned long long)report.acked,
              (unsigned long long)report.unavailable,
              (unsigned long long)report.unacked,
              report.complete ? "complete" : "INCOMPLETE");
  std::printf(
      "  commit latency  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n",
      (double)report.p50_us / 1000.0, (double)report.p95_us / 1000.0,
      (double)report.p99_us / 1000.0, (double)report.max_us / 1000.0);
  std::printf("  throughput      %.1f acked/s over %.1f ms\n",
              report.achieved_rate, report.wall_ms);
  if (have_stats)
    std::printf(
        "  service         %llu slots (%llu unavailable, %llu stalled), "
        "max batch %llu\n",
        (unsigned long long)stats.slots,
        (unsigned long long)stats.slots_unavailable,
        (unsigned long long)stats.slots_stalled,
        (unsigned long long)stats.max_batch);

  BenchCaseRow row;
  row.name = "loadgen/" + target + "/seed:" + std::to_string(lc.seed);
  row.counters = {
      {"attempted", (double)report.attempted},
      {"acked", (double)report.acked},
      {"unavailable", (double)report.unavailable},
      {"unacked", (double)report.unacked},
      {"complete", report.complete ? 1.0 : 0.0},
      {"p50_us", (double)report.p50_us},
      {"p95_us", (double)report.p95_us},
      {"p99_us", (double)report.p99_us},
      {"max_us", (double)report.max_us},
      {"achieved_rate", report.achieved_rate},
      {"wall_ms", report.wall_ms},
  };
  if (have_stats) append_service_counters(stats, &row.counters);
  const int json_rc = write_bench_report(f, "loadgen", std::move(row));
  if (json_rc != 0) return json_rc;
  return report.complete ? 0 : 1;
}

int cmd_histcheck(const Flags& f) {
  if (has_flag(f, "help")) {
    std::printf(
        "usage: gossiplab histcheck --log LOG --obs OBS\n"
        "check a committed log (svc-log-v1) against a client observation\n"
        "stream (svc-obs-v1): dense sequencing, replay-consistent results\n"
        "(no stale reads / lost CAS), acked observations present in the log\n"
        "field-for-field, per-client session order, and no trace of\n"
        "unavailable-acked requests\n"
        "    --log PATH          committed log (serve/loadgen --log)\n"
        "    --obs PATH          observation stream (loadgen --obs)\n"
        "exit status: 0 history checks out, 1 violation found, 2 unreadable\n");
    return 0;
  }
  check_flags("histcheck", f, {"log", "obs"});
  if (!has_flag(f, "log") || !has_flag(f, "obs")) {
    std::fprintf(stderr,
                 "gossiplab histcheck: --log LOG and --obs OBS are required\n");
    return 2;
  }
  const std::string log_path = get_str(f, "log", "svc.log");
  const std::string obs_path = get_str(f, "obs", "svc.obs");
  std::ifstream log_is(log_path);
  if (!log_is) {
    std::fprintf(stderr, "cannot open %s for reading\n", log_path.c_str());
    return 2;
  }
  std::ifstream obs_is(obs_path);
  if (!obs_is) {
    std::fprintf(stderr, "cannot open %s for reading\n", obs_path.c_str());
    return 2;
  }
  std::vector<svc::CommittedEntry> log;
  std::vector<svc::Observation> observations;
  std::string error;
  if (!svc::read_log(log_is, &log, &error)) {
    std::fprintf(stderr, "%s: %s\n", log_path.c_str(), error.c_str());
    return 2;
  }
  if (!svc::read_observations(obs_is, &observations, &error)) {
    std::fprintf(stderr, "%s: %s\n", obs_path.c_str(), error.c_str());
    return 2;
  }
  const svc::HistoryReport report = svc::check_history(log, observations);
  std::printf("histcheck: %zu log entries, %zu observations (%zu acked "
              "cross-checked, %zu unavailable)\n",
              report.entries, report.observations, report.acked,
              report.unavailable);
  if (!report.ok) {
    std::printf("FAILED: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("ok: committed history is consistent\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: gossiplab <gossip|sweep|consensus|lowerbound|trace|"
               "report|rt|spans|fuzz|replay|statcheck|serve|loadgen|"
               "histcheck> [--flag value ...]\n"
               "run `gossiplab <subcommand> --help` for flags, or see the\n"
               "tools/gossiplab.cpp header for examples\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  // Install the cr-* consensus palette entries and the ConsensusPayload wire
  // codec up front: multi-process `rt --transport udp` workers re-exec this
  // binary, so registration here covers coordinator and workers alike.
  register_consensus_algorithms();
  svc::register_consensus_wire();
  try {
    const std::string cmd = argv[1];
    const Flags flags = parse_flags(argc, argv, 2);
    if (cmd == "gossip") return cmd_gossip(flags);
    if (cmd == "sweep") return cmd_sweep(flags);
    if (cmd == "consensus") return cmd_consensus(flags);
    if (cmd == "lowerbound") return cmd_lowerbound(flags);
    if (cmd == "trace") return cmd_trace(flags);
    if (cmd == "report") return cmd_report(flags);
    if (cmd == "rt") return cmd_rt(flags);
    if (cmd == "spans") return cmd_spans(flags);
    if (cmd == "fuzz") return cmd_fuzz(flags);
    if (cmd == "replay") return cmd_replay(flags);
    if (cmd == "statcheck") return cmd_statcheck(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "loadgen") return cmd_loadgen(flags);
    if (cmd == "histcheck") return cmd_histcheck(flags);
    if (cmd == "--help" || cmd == "help") {
      usage();
      return 0;
    }
    std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gossiplab: %s\n", e.what());
    return 3;
  }
  usage();
  return 2;
}
