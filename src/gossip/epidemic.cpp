#include "gossip/epidemic.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace asyncgossip {

EpidemicGossipProcess::EpidemicGossipProcess(ProcessId id,
                                             EpidemicConfig config)
    : id_(id),
      config_(config),
      rng_(config.seed ^ (0x9E3779B97F4A7C15ULL + id)),
      rumors_(config.n),
      informed_(config.n),
      rumor_fully_informed_(config.n, false) {
  AG_ASSERT_MSG(config_.n > 0 && id < config_.n, "bad process id / n");
  AG_ASSERT_MSG(config_.f < config_.n, "epidemic gossip needs f < n");
  AG_ASSERT_MSG(config_.fanout >= 1, "fanout must be >= 1");
  if (!config_.use_informed_list)
    AG_ASSERT_MSG(config_.fallback_step_budget > 0,
                  "informed-list ablation needs a fallback step budget");
  rumors_.set(id_);  // V(p) <- { r_p }
}

bool EpidemicGossipProcess::progress_done() const {
  if (!config_.use_informed_list) return steps_taken_ >= config_.fallback_step_budget;
  return fully_informed_count_ == rumors_.count();
}

bool EpidemicGossipProcess::quiescent() const {
  if (steps_taken_ == 0) return false;
  // On the next step, sleep_cnt would become sleep_cnt_+1; the process sends
  // iff that value is still <= shutdown_steps. Hence it is silent from now on
  // (absent new information) exactly when sleep_cnt_ >= shutdown_steps.
  return progress_done() && sleep_cnt_ >= config_.shutdown_steps;
}

void EpidemicGossipProcess::refresh_full_count(std::size_t rumor) {
  if (rumor_fully_informed_[rumor]) return;
  const DynamicBitset& inf = informed_[rumor];
  if (inf.size() != 0 && inf.all()) {
    rumor_fully_informed_[rumor] = true;
    ++fully_informed_count_;
  }
}

void EpidemicGossipProcess::note_informed(std::size_t rumor,
                                          std::size_t target) {
  DynamicBitset& inf = informed_[rumor];
  if (inf.size() == 0) inf = DynamicBitset(config_.n);
  if (inf.set_and_check(target)) {
    cached_snapshot_.reset();
    refresh_full_count(rumor);
  }
}

void EpidemicGossipProcess::absorb(const Envelope& env) {
  const auto* m = payload_cast<EpidemicPayload>(env);
  if (m == nullptr) return;  // foreign payload (layered protocols)
  if (rumors_.merge(m->rumors)) cached_snapshot_.reset();
  if (!config_.use_informed_list) return;
  for (std::size_t r = 0; r < config_.n; ++r) {
    const DynamicBitset& theirs = m->informed[r];
    if (theirs.size() == 0) continue;
    DynamicBitset& mine = informed_[r];
    if (mine.size() == 0) mine = DynamicBitset(config_.n);
    if (mine.merge(theirs)) {
      cached_snapshot_.reset();
      refresh_full_count(r);
    }
  }
}

std::shared_ptr<const EpidemicPayload> EpidemicGossipProcess::snapshot() {
  if (!cached_snapshot_) {
    auto snap = std::make_shared<EpidemicPayload>();
    snap->rumors = rumors_;
    if (config_.use_informed_list) snap->informed = informed_;
    else snap->informed.resize(config_.n);
    cached_snapshot_ = std::move(snap);
  }
  return cached_snapshot_;
}

void EpidemicGossipProcess::step(StepContext& ctx) {
  // (1) Receive: merge every delivered <V, I> into local state.
  for (const Envelope& env : ctx.received()) absorb(env);

  // (2) Progress control (Figure 2, lines 11-14): sleep_cnt tracks how many
  // consecutive steps L(p) has been empty.
  if (progress_done()) {
    ++sleep_cnt_;
  } else {
    sleep_cnt_ = 0;
  }

  // Telemetry: report the phase (no-ops without an attached ProbeSink).
  // "epidemic" while L(p) is non-empty, "shutdown" for the trailing
  // shutdown_steps sending steps, "asleep" once silent for good.
  const char* phase = sleep_cnt_ == 0              ? "epidemic"
                      : sleep_cnt_ <= config_.shutdown_steps ? "shutdown"
                                                             : "asleep";
  if (phase != last_phase_) {
    ctx.probe_phase(phase);
    last_phase_ = phase;
  }
  ctx.probe_state(rumors_.count(), fully_informed_count_);

  // (3) Epidemic transmission (lines 15-21): while awake — i.e. during
  // normal operation and for `shutdown_steps` further steps after L(p)
  // empties — push the current snapshot to `fanout` uniform targets, then
  // record the new (rumor, target) pairs in the informed-list.
  if (sleep_cnt_ <= config_.shutdown_steps) {
    const auto payload = snapshot();
    if (config_.fanout >= config_.n) {
      for (std::size_t q = 0; q < config_.n; ++q)
        ctx.send(static_cast<ProcessId>(q), payload);
      if (config_.use_informed_list)
        rumors_.for_each_set([&](std::size_t r) {
          for (std::size_t q = 0; q < config_.n; ++q) note_informed(r, q);
        });
    } else if (config_.fanout == 1) {
      const auto q = static_cast<ProcessId>(rng_.uniform(config_.n));
      ctx.send(q, payload);
      if (config_.use_informed_list)
        rumors_.for_each_set([&](std::size_t r) { note_informed(r, q); });
    } else {
      const auto targets =
          rng_.sample_without_replacement(config_.n, config_.fanout);
      for (std::uint64_t q : targets)
        ctx.send(static_cast<ProcessId>(q), payload);
      if (config_.use_informed_list)
        rumors_.for_each_set([&](std::size_t r) {
          for (std::uint64_t q : targets)
            note_informed(r, static_cast<std::size_t>(q));
        });
    }
  }
  ++steps_taken_;
}

std::unique_ptr<Process> EpidemicGossipProcess::clone() const {
  return std::make_unique<EpidemicGossipProcess>(*this);
}

EpidemicConfig make_ears_config(std::size_t n, std::size_t f,
                                std::uint64_t seed,
                                double shutdown_constant) {
  AG_ASSERT_MSG(f < n, "EARS needs f < n");
  EpidemicConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.fanout = 1;
  const double ratio = static_cast<double>(n) / static_cast<double>(n - f);
  cfg.shutdown_steps = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(shutdown_constant * ratio * std::log(std::max<std::size_t>(n, 2)))));
  cfg.seed = seed;
  return cfg;
}

EpidemicConfig make_sears_config(std::size_t n, std::size_t f, double epsilon,
                                 std::uint64_t seed, double fanout_constant) {
  AG_ASSERT_MSG(f < n, "SEARS needs f < n");
  AG_ASSERT_MSG(epsilon > 0.0 && epsilon < 1.0, "SEARS needs 0 < epsilon < 1");
  EpidemicConfig cfg;
  cfg.n = n;
  cfg.f = f;
  const double raw = fanout_constant *
                     std::pow(static_cast<double>(n), epsilon) *
                     std::log(std::max<std::size_t>(n, 2));
  cfg.fanout = static_cast<std::size_t>(
      std::clamp(std::ceil(raw), 1.0, static_cast<double>(n)));
  cfg.shutdown_steps = 1;
  cfg.seed = seed;
  return cfg;
}

}  // namespace asyncgossip
