// RealtimeDriver: runs the gossip algorithms, unmodified, over real threads.
//
// One thread per process executes the receive/compute/send step loop
// against an InProcessTransport (rt/transport.h), paced by a TickClock
// (rt/clock.h) so model time is real time. The algorithms see the exact
// StepContext interface the simulator hands them — same code, byte for
// byte — while delivery order and scheduling interleaving come from the OS
// instead of an adversary object.
//
// The central design decision: the paper's bounds d and delta are
// *realized per execution* and unknown to the algorithms (Section 2 —
// partial synchrony in the unknown-bounds sense of Dwork-Lynch-Stockmeyer).
// A wall-clock run cannot promise a delivery or scheduling bound up front
// (the OS may preempt any thread indefinitely), but it does not need to:
// the driver records every event, then reports the bounds the execution
// actually exhibited. spec.d / spec.delta act as *targets* — delay draws
// are uniform on [1, d] ticks plus fault spikes, step pacing aims at gaps
// in [1, delta] ticks — and the recorded trace carries the realized
// maxima, under which it is a conforming execution by construction:
// tracecheck and the InvariantAuditor accept it with zero tolerance, same
// as a simulator trace (tests/test_rt.cpp holds this for every algorithm,
// with and without injected faults).
//
// What stays guaranteed vs. the simulator, and what becomes best-effort,
// is laid out in docs/RUNTIME.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "gossip/harness.h"
#include "rt/fault.h"
#include "rt/udp_transport.h"
#include "sim/audit.h"
#include "sim/span_export.h"
#include "sim/trace.h"

namespace asyncgossip {

class TelemetryCollector;
struct TelemetryConfig;

/// Which Transport implementation the threaded driver runs over.
/// kInProcess is the mutex-guarded inbox; kUdp hosts all n endpoints of a
/// UdpTransport in-process (loopback sockets), which is how the fault shim
/// and the conformance suite exercise real datagrams deterministically.
/// The separate-OS-process deployment is rt/multiproc.h.
enum class RtTransportKind : std::uint8_t { kInProcess, kUdp };

const char* to_string(RtTransportKind kind);
bool rt_transport_from_string(const std::string& name, RtTransportKind* out);

struct RtConfig {
  /// Algorithm, n, f, seed and knobs. d and delta are the *target* bounds
  /// (delay-draw range and pacing aim), not promises; the run reports what
  /// it realized. spec.max_steps (0 = automatic) bounds the run in ticks.
  GossipSpec spec;
  /// Wall-clock length of one model tick.
  std::uint64_t tick_us = 200;
  RtInject inject = RtInject::kNone;
  /// Transport backend (see RtTransportKind above).
  RtTransportKind transport = RtTransportKind::kInProcess;
  /// Seeded loss/duplication/reordering at the socket boundary; only
  /// meaningful with the kUdp backend. The realized bounds absorb every
  /// retransmit delay, so faulted runs still audit clean.
  UdpWireFaults wire_faults;
  /// Cap on recorded events across all threads; overflow is counted in
  /// RtRunResult::events_dropped (and leaves the trace unauditable).
  std::size_t max_events = 1 << 20;
  /// Flight recorder (common/flight_recorder.h): when true, every worker
  /// thread records causal send→deliver spans and profiling zones into its
  /// own lock-free ring; the merged records land in RtRunResult::flight.
  /// Off by default — the disabled cost is one branch per site.
  bool flight = false;
  /// Per-thread ring capacity in records (rounded up to a power of two).
  /// A full ring overwrites its oldest records; losses are counted in
  /// RtRunResult::flight_dropped, never silent.
  std::size_t flight_capacity = 1 << 14;
  /// Live stats: when > 0 a snapshot thread emits one
  /// "asyncgossip-stats-v1" NDJSON line to *stats_out every interval (plus
  /// a final line at shutdown). stats_out must be non-null to enable and
  /// must outlive the run; the snapshot thread is its only writer.
  std::uint64_t stats_interval_ms = 0;
  std::ostream* stats_out = nullptr;
};

/// End-of-run summary, mirroring GossipOutcome where the fields coincide.
struct RtOutcome {
  /// Quiet state (network drained, every process crashed-or-quiescent)
  /// reached within the tick budget.
  bool completed = false;
  /// Tick of the last message send + 1 (0 if nothing was sent).
  Time completion_time = 0;
  /// One past the last recorded event tick: the trace horizon, as passed
  /// to InvariantAuditor::finalize.
  Time end_time = 0;
  std::uint64_t steps = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t deliveries = 0;
  /// The bounds this execution actually exhibited (see file comment).
  Time realized_d = 1;
  Time realized_delta = 1;
  std::size_t alive = 0;
  std::size_t crashes = 0;
  bool gathering_ok = false;
  bool majority_ok = false;
  double wall_ms = 0.0;
};

/// One StepContext probe report captured during the run.
struct RtProbeRecord {
  bool is_phase = false;
  Time time = 0;
  ProcessId process = kNoProcess;
  const char* phase = nullptr;  // static literal per the probe contract
  std::uint64_t rumors_known = 0;
  std::uint64_t rumors_fully_informed = 0;
};

struct RtRunResult {
  RtOutcome outcome;
  /// Merged event log: time-ordered, message ids renumbered to be strictly
  /// monotone in send order — a valid trace-format-v1 stream.
  std::vector<TraceRecorder::Event> events;
  /// Probe reports, time-ordered.
  std::vector<RtProbeRecord> probes;
  std::size_t events_dropped = 0;
  /// Flight records merged wall-clock-ordered across all rings (empty
  /// unless config.flight).
  std::vector<FlightRecord> flight;
  /// Total records the workers pushed into the rings.
  std::uint64_t flight_pushed = 0;
  /// Records lost to ring overwriting (exact, counted during the drain).
  std::uint64_t flight_dropped = 0;
  /// Wall time spent draining and merging the rings after the run ended —
  /// the recorder's post-run cost. The in-run cost is what the bench gate's
  /// recorder-on vs recorder-off case bounds (tools/bench_gate.py).
  double recorder_overhead_ms = 0.0;
  /// Per-process final notes (GossipProcess::final_note), size n. Empty
  /// strings for algorithms without one; consensus runs carry their
  /// decision verdict here (consensus/cr_gossip.h parses them).
  std::vector<std::string> notes;
  /// Post-join crash snapshot, size n — which processes the injector
  /// crashed. Pairs with `notes` for verdicts that must skip crashed
  /// processes.
  std::vector<bool> crashed;
};

/// Executes the run and returns the merged record. Thread count is
/// spec.n + 1 (one per process plus the completion monitor).
RtRunResult run_realtime(const RtConfig& config);

/// TelemetryConfig sized for the run's *realized* bounds, so the latency
/// histogram provably has no overflow bucket hits on a conforming record.
TelemetryConfig rt_telemetry_config(const RtConfig& config,
                                    const RtRunResult& result);

/// Replays the recorded events and probes, time-ordered, into `collector`
/// (same data path as a live simulator run) and finalize()s it.
void feed_telemetry(const RtRunResult& result, TelemetryCollector* collector);

/// Writes the trace-format-v1 artifact; the model line carries the
/// realized bounds, under which the record is a conforming execution.
void write_rt_trace(std::ostream& os, const RtConfig& config,
                    const RtRunResult& result);

/// Offline audit of the record with the realized bounds — the same checker
/// tools/tracecheck applies to the written artifact.
ViolationReport audit_rt_run(const RtConfig& config, const RtRunResult& result);

/// Flight-log header for the run (sim/span_export.h): the realized bounds
/// plus the run's tick length, so `gossiplab spans` can put wall latencies
/// next to the realized d+delta budget.
FlightLogHeader rt_flight_header(const RtConfig& config,
                                 const RtRunResult& result);

}  // namespace asyncgossip
