#include "consensus/canetti_rabin.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "consensus/cr_gossip.h"

namespace asyncgossip {

namespace {
constexpr std::uint64_t kMaxLoggedPhase = 2;
}

ConsensusProcess::ConsensusProcess(ProcessId id, Val input,
                                   ConsensusConfig config)
    : id_(id),
      config_(config),
      rng_(config.seed ^ (0xC0A5E5505ULL + id)),
      input_(input),
      x_(input),
      inst_(config.n),
      notified_(config.n, false) {
  AG_ASSERT_MSG(config_.n >= 3, "consensus needs n >= 3");
  AG_ASSERT_MSG(id < config_.n, "bad process id");
  AG_ASSERT_MSG(config_.f < (config_.n + 1) / 2, "consensus needs f < n/2");
  AG_ASSERT_MSG(input == 0 || input == 1, "binary consensus input");

  if (config_.help_steps == 0)
    config_.help_steps = 8 * (static_cast<std::uint64_t>(
                                  std::log2(static_cast<double>(config_.n))) +
                              1);
  if (config_.stagnation_limit == 0)
    config_.stagnation_limit = 2 * config_.n;

  switch (config_.exchange) {
    case ExchangeKind::kAllToAll:
      break;
    case ExchangeKind::kEars:
      fanout_ = 1;
      break;
    case ExchangeKind::kSears: {
      const double raw = config_.sears_fanout_constant *
                         std::pow(static_cast<double>(config_.n),
                                  config_.sears_epsilon) *
                         std::log(static_cast<double>(config_.n));
      fanout_ = static_cast<std::size_t>(
          std::clamp(std::ceil(raw), 1.0, static_cast<double>(config_.n)));
      break;
    }
    case ExchangeKind::kTears:
      tears_params_.n = config_.n;
      tears_params_.a_constant = config_.tears_a_constant;
      tears_params_.kappa_constant = config_.tears_kappa_constant;
      tears_params_.seed = config_.seed;
      tears_params_.finalize();
      break;
  }

  inst_.add_own(id_, x_);
  reset_transport();
}

std::size_t ConsensusProcess::completion_threshold() const {
  if (config_.exchange == ExchangeKind::kAllToAll)
    return config_.n - config_.f;
  return majority_threshold(config_.n);
}

Val ConsensusProcess::own_rumor_value() const {
  switch (pos_.exchange) {
    case 0:
      return x_;
    case 1:
      return y_;
    default:
      return coin_flip_;
  }
}

void ConsensusProcess::reset_transport() {
  announced_ = false;
  stagnant_steps_ = 0;
  up_cnt_ = 0;
  up_cnt_step_start_ = 0;
  if (config_.exchange == ExchangeKind::kTears) {
    pi1_.clear();
    pi2_.clear();
    const double prob = static_cast<double>(tears_params_.a) /
                        static_cast<double>(config_.n);
    for (std::size_t q = 0; q < config_.n; ++q) {
      if (q == id_) continue;
      if (rng_.bernoulli(prob)) pi1_.push_back(static_cast<ProcessId>(q));
      if (rng_.bernoulli(prob)) pi2_.push_back(static_cast<ProcessId>(q));
    }
  }
}

void ConsensusProcess::start_instance() {
  inst_ = InstanceState(config_.n);
  inst_.add_own(id_, own_rumor_value());
  reset_transport();
}

void ConsensusProcess::decide(Val v) {
  if (decided_) return;
  decided_ = true;
  decision_ = v;
  decided_phase_ = pos_.phase;
  if (mode_ == Mode::kActive) {
    mode_ = Mode::kHelping;
    helping_steps_left_ = config_.help_steps;
  }
}

void ConsensusProcess::consume_getcore() {
  if (config_.log_getcore_returns && pos_.phase <= kMaxLoggedPhase)
    getcore_log_.push_back(GetCoreRecord{pos_, inst_});

  switch (pos_.exchange) {
    case 0: {
      y_ = evaluate_estimate_votes(inst_);
      pos_.exchange = 1;
      pos_.sub = 0;
      start_instance();
      break;
    }
    case 1: {
      const PreferenceOutcome out = evaluate_preference_votes(inst_);
      if (out.conflict) ++core_violations_;
      if (out.decide) decide(out.decision);
      pending_adopt_ = out.adopt;
      pos_.exchange = 2;
      pos_.sub = 0;
      coin_flip_ = rng_.bernoulli(1.0 / static_cast<double>(config_.n))
                       ? Val{0}
                       : Val{1};
      start_instance();
      break;
    }
    default: {
      const Val coin = evaluate_coin(inst_);
      x_ = pending_adopt_ != kValUnknown ? pending_adopt_ : coin;
      if (decided_) x_ = decision_;  // a decided process votes its decision
      pending_adopt_ = kValUnknown;
      ++pos_.phase;
      pos_.exchange = 0;
      pos_.sub = 0;
      // Participation through phase decided_phase + 1 is what the agreement
      // argument needs; beyond that, retire (the step budget still bounds
      // helpers whose extra phase never completes).
      if (decided_ && pos_.phase > decided_phase_ + 1) mode_ = Mode::kRetired;
      start_instance();
      break;
    }
  }
}

void ConsensusProcess::advance_if_complete() {
  // A sub-instance completes when enough origins' rumors are in. Advancing
  // can cascade only across sub-instances (a fresh instance restarts at a
  // single origin), so a plain loop is bounded by the get-core depth.
  while (inst_.origins.count() >= completion_threshold()) {
    if (pos_.sub < 2) {
      ++pos_.sub;
      // The rumor for the next sub-instance is the accumulated union; keep
      // items, restart the origin count from self.
      inst_.origins.clear_all();
      inst_.origins.set(id_);
      reset_transport();
    } else {
      consume_getcore();
    }
  }
}

void ConsensusProcess::handle_message(const ConsensusPayload& m,
                                      std::vector<ProcessId>& notify) {
  if (m.decided && !decided_) decide(m.decision);

  if (mode_ == Mode::kRetired) {
    if (!m.decided && m.sender < notified_.size() && !notified_[m.sender]) {
      notified_[m.sender] = true;
      notify.push_back(m.sender);
    }
    return;
  }

  if (m.pos == pos_) {
    if (inst_.merge(m.state)) stagnant_steps_ = 0;
    if (config_.exchange == ExchangeKind::kTears && m.flag_up) ++up_cnt_;
  } else if (m.pos > pos_) {
    // Catch up: adopt the sender's outcomes and position (paper Section 6).
    x_ = m.sender_x == kValUnknown ? x_ : m.sender_x;
    y_ = m.sender_y;
    pos_ = m.pos;
    inst_ = m.state;
    if (pos_.exchange == 2 && coin_flip_ == kValUnknown)
      coin_flip_ = rng_.bernoulli(1.0 / static_cast<double>(config_.n))
                       ? Val{0}
                       : Val{1};
    pending_adopt_ = kValUnknown;
    inst_.add_own(id_, own_rumor_value());
    reset_transport();
    // The message that pulled us forward is itself a first-level message of
    // the adopted instance.
    if (config_.exchange == ExchangeKind::kTears && m.flag_up) up_cnt_ = 1;
    stagnant_steps_ = 0;
  } else {
    // Stale message. The all-to-all transport answers with a direct push of
    // the current state so the laggard can catch up (the gossip transports
    // reach laggards through their continuous sending).
    if (config_.exchange == ExchangeKind::kAllToAll && !m.decided &&
        m.sender < notified_.size())
      notify.push_back(m.sender);  // reuse the notify channel: send state
  }
}

std::shared_ptr<ConsensusPayload> ConsensusProcess::snapshot(
    bool flag_up) const {
  auto p = std::make_shared<ConsensusPayload>();
  p->sender = id_;
  p->pos = pos_;
  p->state = inst_;
  p->sender_x = x_;
  p->sender_y = y_;
  p->decided = decided_;
  p->decision = decision_;
  p->flag_up = flag_up;
  return p;
}

bool ConsensusProcess::tears_trigger_crossed(std::uint64_t before,
                                             std::uint64_t after) const {
  if (after == before) return false;
  const std::uint64_t mu = tears_params_.mu;
  const std::uint64_t kappa = tears_params_.kappa;
  const std::uint64_t band_lo = mu > kappa ? mu - kappa : 0;
  const std::uint64_t band_hi_incl = mu + kappa - 1;
  const std::uint64_t lo = std::max(before + 1, band_lo);
  const std::uint64_t hi = std::min(after, band_hi_incl);
  if (lo <= hi) return true;
  if (after > mu) {
    const std::uint64_t first = std::max(before + 1, mu + kappa);
    if (first <= after) {
      const std::uint64_t off = first - mu;
      const std::uint64_t i = (off + kappa - 1) / kappa;
      if (mu + i * kappa <= after) return true;
    }
  }
  return false;
}

void ConsensusProcess::do_transport(StepContext& ctx) {
  switch (config_.exchange) {
    case ExchangeKind::kAllToAll: {
      const bool stuck = stagnant_steps_ >= config_.stagnation_limit;
      if (!announced_ || stuck) {
        if (stuck) ++reannouncements_;
        auto payload = snapshot(false);
        for (std::size_t q = 0; q < config_.n; ++q)
          if (q != id_) ctx.send(static_cast<ProcessId>(q), payload);
        announced_ = true;
        stagnant_steps_ = 0;
      }
      break;
    }
    case ExchangeKind::kEars: {
      ctx.send(static_cast<ProcessId>(rng_.uniform(config_.n)),
               snapshot(false));
      break;
    }
    case ExchangeKind::kSears: {
      auto payload = snapshot(false);
      for (std::uint64_t q :
           rng_.sample_without_replacement(config_.n, fanout_))
        ctx.send(static_cast<ProcessId>(q), payload);
      break;
    }
    case ExchangeKind::kTears: {
      if (!announced_) {
        auto payload = snapshot(true);
        for (ProcessId q : pi1_) ctx.send(q, payload);
        announced_ = true;
      }
      if (tears_trigger_crossed(up_cnt_step_start_, up_cnt_)) {
        auto payload = snapshot(false);
        for (ProcessId q : pi2_) ctx.send(q, payload);
      }
      if (stagnant_steps_ >= config_.stagnation_limit) {
        ++reannouncements_;
        auto payload = snapshot(true);
        for (std::size_t q = 0; q < config_.n; ++q)
          if (q != id_) ctx.send(static_cast<ProcessId>(q), payload);
        stagnant_steps_ = 0;
      }
      break;
    }
  }
}

void ConsensusProcess::step(StepContext& ctx) {
  up_cnt_step_start_ = up_cnt_;
  std::vector<ProcessId> notify;
  for (const Envelope& env : ctx.received()) {
    const auto* m = payload_cast<ConsensusPayload>(env);
    if (m != nullptr) handle_message(*m, notify);
  }

  if (mode_ != Mode::kRetired) {
    advance_if_complete();
    do_transport(ctx);
    ++stagnant_steps_;
    if (mode_ == Mode::kHelping) {
      if (helping_steps_left_ == 0) {
        mode_ = Mode::kRetired;
      } else {
        --helping_steps_left_;
      }
    }
  }

  // Reactive pushes: decided notifications from retirees, catch-up pushes
  // from the all-to-all transport.
  if (!notify.empty()) {
    auto payload = snapshot(false);
    for (ProcessId q : notify) ctx.send(q, payload);
  }

  ++steps_taken_;
}

std::unique_ptr<Process> ConsensusProcess::clone() const {
  return std::make_unique<ConsensusProcess>(*this);
}

std::string ConsensusProcess::final_note() const {
  ConsensusNote note;
  note.decided = decided_;
  note.value = decision_;
  note.input = input_;
  note.phase = decided_phase_;
  note.core_violations = core_violations_;
  note.reannouncements = reannouncements_;
  return format_consensus_note(note);
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

bool consensus_all_decided(const Engine& engine) {
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto* cp = dynamic_cast<const ConsensusProcess*>(&engine.process(p));
    AG_ASSERT_MSG(cp != nullptr, "needs ConsensusProcess instances");
    if (!cp->decided()) return false;
  }
  return true;
}

bool consensus_quiet(const Engine& engine) {
  if (!engine.network_empty()) return false;
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto& cp = engine.process_as<ConsensusProcess>(p);
    if (!cp.decided() || !cp.retired()) return false;
  }
  return true;
}

Engine make_consensus_engine(const ConsensusSpec& spec) {
  const std::size_t n = spec.config.n;
  AG_ASSERT_MSG(n >= 3, "consensus spec needs n >= 3");

  Xoshiro256SS input_rng(spec.seed ^ 0x1B9075ULL);
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    Val input = 0;
    switch (spec.inputs) {
      case InputPattern::kAllZero:
        input = 0;
        break;
      case InputPattern::kAllOne:
        input = 1;
        break;
      case InputPattern::kHalfHalf:
        input = p % 2 == 0 ? Val{0} : Val{1};
        break;
      case InputPattern::kRandom:
        input = input_rng.bernoulli(0.5) ? Val{1} : Val{0};
        break;
    }
    ConsensusConfig cfg = spec.config;
    // The processes' randomness (coin flips, targets) must vary with the
    // spec seed, not only with the config seed.
    cfg.seed = spec.config.seed ^ (spec.seed * 0x9E3779B97F4A7C15ULL);
    procs.push_back(std::make_unique<ConsensusProcess>(
        static_cast<ProcessId>(p), input, cfg));
  }

  ObliviousConfig adv;
  adv.n = n;
  adv.d = spec.d;
  adv.delta = spec.delta;
  adv.schedule = spec.schedule;
  adv.delay = spec.delay;
  adv.crash_plan =
      random_crashes(n, spec.config.f, spec.crash_horizon, spec.seed ^ 0xF417ULL);
  adv.seed = spec.seed ^ 0xAD7C025ULL;

  EngineConfig ecfg;
  ecfg.d = spec.d;
  ecfg.delta = spec.delta;
  ecfg.max_crashes = spec.config.f;

  return Engine(std::move(procs), std::make_unique<ObliviousAdversary>(adv),
                ecfg);
}

ConsensusOutcome run_consensus_spec(const ConsensusSpec& spec) {
  Engine engine = make_consensus_engine(spec);
  const std::size_t n = spec.config.n;
  Time budget = spec.max_steps;
  if (budget == 0) {
    const double lg = std::log2(static_cast<double>(n)) + 1.0;
    budget = static_cast<Time>(
        2000.0 * lg * lg * static_cast<double>(spec.d + spec.delta) +
        static_cast<double>(64 * n));
  }

  ConsensusOutcome out;
  out.all_decided = engine.run_until(consensus_all_decided, budget);
  out.decision_time = engine.now();
  out.messages_at_decision = engine.metrics().messages_sent();

  engine.run_until(consensus_quiet, budget);
  const Metrics& m = engine.metrics();
  out.quiet_time = m.any_send() ? m.last_send_time() + 1 : 0;
  out.total_messages = m.messages_sent();
  out.total_bytes = m.bytes_sent();
  out.realized_d = m.realized_d();
  out.realized_delta = m.realized_delta();
  out.alive = engine.alive_count();

  out.agreement = true;
  out.validity = true;
  bool saw0_input = false, saw1_input = false;
  for (ProcessId p = 0; p < engine.n(); ++p) {
    const auto& cp = engine.process_as<ConsensusProcess>(p);
    if (cp.input() == 0) saw0_input = true;
    if (cp.input() == 1) saw1_input = true;
  }
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto& cp = engine.process_as<ConsensusProcess>(p);
    out.max_phase = std::max(out.max_phase, cp.position().phase);
    out.decision_phase = std::max(out.decision_phase, cp.decided_phase());
    out.core_violations += cp.core_violations();
    out.reannouncements += cp.reannouncements();
    if (!cp.decided()) continue;
    if (out.decided_value == kValUnknown) out.decided_value = cp.decision();
    if (cp.decision() != out.decided_value) out.agreement = false;
    const bool valid = (cp.decision() == 0 && saw0_input) ||
                       (cp.decision() == 1 && saw1_input);
    if (!valid) out.validity = false;
  }
  return out;
}

}  // namespace asyncgossip
