// Real-time runtime benchmarks: overhead of the threaded driver itself.
//
// Unlike the simulator benches, wall time here is mostly *deliberate* —
// the TickClock paces steps in real microseconds — so raw steps/sec is not
// the quantity of interest. What matters is (a) how much the run overshoots
// its ideal pacing (driver + transport overhead and OS jitter show up as
// wall_ms above ticks * tick_us) and (b) how far the realized bounds drift
// from their targets on an idle machine. Both are reported as counters:
//
//   wall_ms_per_ktick : wall milliseconds per 1000 model ticks of run
//                       length (ideal = tick_us, i.e. 0.1 at 100us ticks)
//   realized_d        : max delivery delay the execution exhibited
//   realized_delta    : max scheduling gap the execution exhibited
//   completed         : 1 if the run reached the quiet state
//   messages          : point-to-point messages sent
//
// Run `AG_BENCH_JSON=BENCH_rt.json ./bench_rt` for the JSON report.
#include <string>

#include "bench_common.h"
#include "rt/driver.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("rt");

namespace {

void run_rt_case(benchmark::State& state, GossipAlgorithm algorithm,
                 RtInject inject, bool flight = false) {
  RtConfig config;
  config.spec.algorithm = algorithm;
  config.spec.n = static_cast<std::size_t>(state.range(0));
  config.spec.f = config.spec.n / 4;
  config.spec.d = 3;
  config.spec.delta = 2;
  config.inject = inject;
  config.tick_us = 100;
  config.flight = flight;

  double wall_ms = 0;
  double flight_dropped = 0;
  double recorder_overhead_ms = 0;
  double end_ticks = 0;
  double realized_d = 0;
  double realized_delta = 0;
  double completed = 0;
  double messages = 0;
  int runs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.spec.seed = seed++;
    const RtRunResult res = run_realtime(config);
    wall_ms += res.outcome.wall_ms;
    end_ticks += static_cast<double>(res.outcome.end_time);
    realized_d += static_cast<double>(res.outcome.realized_d);
    realized_delta += static_cast<double>(res.outcome.realized_delta);
    completed += res.outcome.completed ? 1 : 0;
    messages += static_cast<double>(res.outcome.messages);
    flight_dropped += static_cast<double>(res.flight_dropped);
    recorder_overhead_ms += res.recorder_overhead_ms;
    ++runs;
  }
  const double r = runs > 0 ? runs : 1;
  state.counters["wall_ms_per_ktick"] =
      end_ticks > 0 ? wall_ms / end_ticks * 1000.0 : 0;
  state.counters["realized_d"] = realized_d / r;
  state.counters["realized_delta"] = realized_delta / r;
  state.counters["completed"] = completed / r;
  state.counters["messages"] = messages / r;
  if (flight) {
    state.counters["recorder_dropped"] = flight_dropped / r;
    state.counters["recorder_overhead_ms"] = recorder_overhead_ms / r;
  }

  GossipSpec label_spec = config.spec;
  record_case(state, std::string("rt/") + to_string(inject) +
                         (flight ? "+recorder" : "") + "/" +
                         spec_label(label_spec));
}

void BM_RtEars(benchmark::State& state) {
  run_rt_case(state, GossipAlgorithm::kEars, RtInject::kNone);
}

void BM_RtEarsCrash(benchmark::State& state) {
  run_rt_case(state, GossipAlgorithm::kEars, RtInject::kCrash);
}

void BM_RtTearsCrash(benchmark::State& state) {
  run_rt_case(state, GossipAlgorithm::kTears, RtInject::kCrash);
}

/// BM_RtEars with the flight recorder on — same spec, same seeds. The
/// bench gate's ratio check holds wall_ms_per_ktick of this case to within
/// 5% of the recorder-off case (the tentpole's "cheap when enabled" bound).
void BM_RtEarsRecorder(benchmark::State& state) {
  run_rt_case(state, GossipAlgorithm::kEars, RtInject::kNone,
              /*flight=*/true);
}

BENCHMARK(BM_RtEars)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_RtEarsRecorder)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_RtEarsCrash)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_RtTearsCrash)->Arg(16)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace asyncgossip::bench
