#include "svc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace asyncgossip {
namespace svc {

namespace {

int bind_loopback(std::uint16_t port, std::uint16_t* bound) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  *bound = ntohs(addr.sin_port);
  // Bounded blocking so the receive loop notices stop() promptly.
  timeval tv{};
  tv.tv_usec = 50 * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

}  // namespace

UdpKvServer::UdpKvServer(KvService* service, std::uint16_t port)
    : service_(service) {
  fd_ = bind_loopback(port, &port_);
  if (fd_ >= 0) receiver_ = std::thread([this] { recv_loop(); });
}

UdpKvServer::~UdpKvServer() {
  stop();
  if (fd_ >= 0) ::close(fd_);
}

void UdpKvServer::stop() {
  stopping_.store(true);
  if (receiver_.joinable()) receiver_.join();
}

void UdpKvServer::recv_loop() {
  char buf[8192];
  while (!stopping_.load()) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t got =
        ::recvfrom(fd_, buf, sizeof(buf) - 1, 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got <= 0) continue;  // timeout or spurious error: poll stop flag
    buf[got] = '\0';
    Command cmd;
    if (!decode_request(std::string(buf, static_cast<std::size_t>(got)),
                        &cmd)) {
      malformed_.fetch_add(1);
      continue;
    }
    requests_.fetch_add(1);
    const int fd = fd_;
    service_->submit(
        cmd, [fd, from](const Command& c, const CommandResult& result,
                        std::uint64_t /*latency_us*/) {
          const std::string res = encode_response(c, result);
          (void)::sendto(fd, res.data(), res.size(), 0,
                         reinterpret_cast<const sockaddr*>(&from),
                         sizeof(from));
        });
  }
}

}  // namespace svc
}  // namespace asyncgossip
