
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gossip/completion.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/completion.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/completion.cpp.o.d"
  "/root/repo/src/gossip/epidemic.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/epidemic.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/epidemic.cpp.o.d"
  "/root/repo/src/gossip/harness.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/harness.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/harness.cpp.o.d"
  "/root/repo/src/gossip/lazy.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/lazy.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/lazy.cpp.o.d"
  "/root/repo/src/gossip/pushpull.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/pushpull.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/pushpull.cpp.o.d"
  "/root/repo/src/gossip/roundrobin.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/roundrobin.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/roundrobin.cpp.o.d"
  "/root/repo/src/gossip/sync_gossip.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/sync_gossip.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/sync_gossip.cpp.o.d"
  "/root/repo/src/gossip/tears.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/tears.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/tears.cpp.o.d"
  "/root/repo/src/gossip/trivial.cpp" "src/gossip/CMakeFiles/ag_gossip.dir/trivial.cpp.o" "gcc" "src/gossip/CMakeFiles/ag_gossip.dir/trivial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
