// The flight recorder: always-compiled, cheap-when-disabled run
// instrumentation for the engine and the real-time runtime.
//
// Three record kinds flow through per-thread SPSC rings
// (common/spsc_ring.h):
//   - kSend / kDeliver: the two ends of a causal message span. Every
//     send→deliver pair carries the message id, the link (from, to), the
//     model tick and a wall-clock timestamp, so one rumor's propagation is
//     reconstructible as a causally linked trace (exported to Chrome
//     trace-event JSON by sim/span_export.h; `gossiplab spans` renders the
//     latency percentiles).
//   - kZone: a scoped profiling zone — RAII begin/end around a hot-path
//     phase (engine wheel drain, k-way merge, step dispatch; rt inbox
//     poll, algorithm step, pacing sleep), recorded as begin + duration.
//
// The recorder NEVER feeds back into the execution: it only appends to its
// own rings, so trace hashes, Metrics and telemetry stay bit-identical with
// recording on or off (pinned by tests/test_flight_recorder.cpp). When no
// ring is attached the cost is one null-pointer test per site.
//
// Locking: none, by design and by lint — aglint AG-LCK-002 covers these
// files, so introducing a std::mutex here fails the gate.
//
// Wall clock: flight_now_ns() below is, together with rt/clock.h, one of
// the two sanctioned wall-clock read sites (aglint AG-DET-002
// exempt_files). Timestamps only ever land in flight records, never in an
// execution-visible output.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/spsc_ring.h"

namespace asyncgossip {

/// Nanoseconds on the steady clock; the time base of every flight record.
inline std::uint64_t flight_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

enum class FlightKind : std::uint64_t {
  kSend = 0,     // a = message id, b = link, extra = deliver_after tick
  kDeliver = 1,  // a = message id, b = link, extra = send tick
  kZone = 2,     // a = zone id, b = actor, extra = duration ns
};

/// The instrumented hot-path phases. Names (flight_zone_name) are stable
/// identifiers: they appear in the flight log and the exported trace.
enum class FlightZoneId : std::uint64_t {
  kWheelDrain = 0,    // engine: collect_deliveries bucket drain
  kKwayMerge = 1,     // engine: multi-bucket merge inside the drain
  kStepDispatch = 2,  // engine: process step() + dispatch_sends
  kInboxPoll = 3,     // rt: transport drain
  kAlgoStep = 4,      // rt: algorithm step() call
  kPacingSleep = 5,   // rt: sleep to the next pacing target
};

inline constexpr std::size_t kFlightZoneCount = 6;

/// Stable short name for a zone id ("wheel-drain", "inbox-poll", ...).
const char* flight_zone_name(FlightZoneId id);

/// Inverse of flight_zone_name; returns false on an unknown name.
bool flight_zone_from_name(const char* name, FlightZoneId* out);

/// One fixed-size record; exactly six 64-bit words so the ring stores it
/// as atomic words (see SpscRing).
struct FlightRecord {
  std::uint64_t kind = 0;     // FlightKind
  std::uint64_t a = 0;        // message id or zone id
  std::uint64_t b = 0;        // link (from << 32 | to) or zone actor
  std::uint64_t tick = 0;     // model tick at the record site
  std::uint64_t wall_ns = 0;  // flight_now_ns() at send/deliver/zone begin
  std::uint64_t extra = 0;    // kind-specific (see FlightKind)

  static std::uint64_t pack_link(std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  std::uint32_t link_from() const {
    return static_cast<std::uint32_t>(b >> 32);
  }
  std::uint32_t link_to() const {
    return static_cast<std::uint32_t>(b & 0xffffffffULL);
  }
};

using FlightRing = SpscRing<FlightRecord>;

/// Owns one ring per recording thread (rt workers) or per engine. Rings
/// are created up front — attaching one to a hot path is handing out a
/// plain pointer, and a null pointer means "recording off".
class FlightRecorder {
 public:
  /// `rings` rings of `capacity_per_ring` records each (rounded up to a
  /// power of two per SpscRing).
  FlightRecorder(std::size_t rings, std::size_t capacity_per_ring);

  std::size_t ring_count() const { return rings_.size(); }
  FlightRing* ring(std::size_t i) { return rings_[i].get(); }

  /// Drains every ring (consumer side) and appends the records to `out`,
  /// merged into one wall-clock-ordered stream (stable across equal
  /// timestamps: ring order). Call after the producing threads stopped.
  void drain(std::vector<FlightRecord>* out);

  /// Records pushed across all rings so far (live-safe, approximate while
  /// producers run).
  std::uint64_t pushed_total() const;

  /// Records lost to overwriting. After drain() this is the exact count;
  /// while producers run it is the live lower-bound estimate.
  std::uint64_t dropped_total() const;

 private:
  std::vector<std::unique_ptr<FlightRing>> rings_;
  std::uint64_t drained_dropped_ = 0;
  bool drained_ = false;
};

/// RAII profiling zone: records a kZone record on destruction, carrying
/// begin wall time and duration. A null ring disables the zone at the cost
/// of one branch; construction does not read the clock in that case.
class FlightZone {
 public:
  FlightZone(FlightRing* ring, FlightZoneId id, std::uint64_t actor,
             std::uint64_t tick)
      : ring_(ring), id_(id), actor_(actor), tick_(tick) {
    if (ring_ != nullptr) begin_ns_ = flight_now_ns();
  }

  ~FlightZone() {
    if (ring_ == nullptr) return;
    FlightRecord r;
    r.kind = static_cast<std::uint64_t>(FlightKind::kZone);
    r.a = static_cast<std::uint64_t>(id_);
    r.b = actor_;
    r.tick = tick_;
    r.wall_ns = begin_ns_;
    r.extra = flight_now_ns() - begin_ns_;
    ring_->push(r);
  }

  FlightZone(const FlightZone&) = delete;
  FlightZone& operator=(const FlightZone&) = delete;

 private:
  FlightRing* ring_;
  FlightZoneId id_;
  std::uint64_t actor_;
  std::uint64_t tick_;
  std::uint64_t begin_ns_ = 0;
};

/// Helpers for the two span ends (kept out of line so call sites stay one
/// branch + one call when enabled). Like FlightZone, a null ring means
/// "recording off" and the call is a no-op.
void flight_record_send(FlightRing* ring, std::uint64_t message_id,
                        std::uint32_t from, std::uint32_t to,
                        std::uint64_t tick, std::uint64_t deliver_after);
void flight_record_deliver(FlightRing* ring, std::uint64_t message_id,
                           std::uint32_t from, std::uint32_t to,
                           std::uint64_t tick, std::uint64_t send_tick);

}  // namespace asyncgossip
