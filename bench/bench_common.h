// Shared helpers for the benchmark harness.
//
// These benchmarks measure *simulation metrics* — global time steps and
// point-to-point message counts, the two complexity measures of the paper —
// not wall-clock time. Each benchmark case therefore runs a fixed small
// number of iterations with distinct seeds and reports the mean metrics as
// user counters; wall time in the report is incidental.
// Machine-readable reports: when the AG_BENCH_JSON environment variable
// names a file, every case recorded via record_case (GossipAccumulator::
// flush does this automatically) is aggregated into an
// "asyncgossip-bench-v1" JSON document written at process exit — e.g.
//   AG_BENCH_JSON=BENCH_table1.json ./bench_table1_gossip
// Each binary declares its suite name once with AG_BENCH_SUITE("table1").
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "gossip/harness.h"
#include "sim/telemetry_export.h"

namespace asyncgossip::bench {

/// Accumulates (case name, user counters) rows and writes them as JSON at
/// static-destruction time — benchmark_main owns main(), so process exit is
/// the only hook every binary shares. The document itself comes from
/// write_bench_json (sim/telemetry_export.h), the same writer `gossiplab
/// sweep --json` uses.
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport report;
    return report;
  }

  void set_suite(const char* name) { suite_ = name; }

  void add_case(const std::string& name,
                std::vector<std::pair<std::string, double>> counters) {
    cases_.push_back({name, std::move(counters)});
  }

  ~BenchReport() {
    const char* path = std::getenv("AG_BENCH_JSON");
    if (path == nullptr || path[0] == '\0' || cases_.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "AG_BENCH_JSON: cannot open %s for writing\n", path);
      return;
    }
    write_bench_json(out, suite_, cases_);
  }

 private:
  std::string suite_ = "bench";
  std::vector<BenchCaseRow> cases_;
};

/// Snapshots a finished case's user counters into the report under `label`
/// (this benchmark version exposes no State::name(), so the caller supplies
/// one — GossipAccumulator::flush derives it from the spec). Call after the
/// counters are final.
inline void record_case(const benchmark::State& state,
                        const std::string& label) {
  std::vector<std::pair<std::string, double>> counters;
  counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters)
    counters.emplace_back(name, static_cast<double>(counter.value));
  BenchReport::instance().add_case(label, std::move(counters));
}

// Case labels come from asyncgossip::spec_label (gossip/harness.h) so the
// bench report and `gossiplab sweep` name the same experiment identically.

/// Declares the binary's suite name for the AG_BENCH_JSON report. Place one
/// at namespace scope in each bench_*.cpp.
#define AG_BENCH_SUITE(suite_name)                                       \
  static const int ag_bench_suite_registered_ = [] {                     \
    ::asyncgossip::bench::BenchReport::instance().set_suite(suite_name); \
    return 0;                                                            \
  }()

/// Aggregates gossip outcomes across iterations into counters.
class GossipAccumulator {
 public:
  void add(const GossipOutcome& out) {
    ++runs_;
    messages_ += static_cast<double>(out.messages);
    steps_ += static_cast<double>(out.completion_time);
    gatherings_ += out.gathering_ok ? 1 : 0;
    majorities_ += out.majority_ok ? 1 : 0;
  }

  void flush(benchmark::State& state, double n, double d_plus_delta,
             const std::string& label = "") const {
    if (runs_ == 0) return;
    const double r = static_cast<double>(runs_);
    state.counters["msgs"] = messages_ / r;
    state.counters["steps"] = steps_ / r;
    state.counters["steps_per_dd"] = steps_ / r / d_plus_delta;
    state.counters["msgs_per_n"] = messages_ / r / n;
    state.counters["gather_ok"] = static_cast<double>(gatherings_) / r;
    state.counters["majority_ok"] = static_cast<double>(majorities_) / r;
    if (!label.empty()) record_case(state, label);
  }

 private:
  int runs_ = 0;
  double messages_ = 0;
  double steps_ = 0;
  int gatherings_ = 0;
  int majorities_ = 0;
};

/// Worker count for run_gossip_case: AG_BENCH_JOBS in the environment, or 1
/// (sequential) when unset. Parallelism never changes the reported metrics
/// — iteration seeds are assigned identically on both paths.
inline std::size_t bench_jobs() {
  const char* env = std::getenv("AG_BENCH_JOBS");
  if (env == nullptr || env[0] == '\0') return 1;
  const std::uint64_t jobs = std::strtoull(env, nullptr, 10);
  return jobs == 0 ? 1 : static_cast<std::size_t>(jobs);
}

/// The standard gossip bench loop: one run per iteration with consecutive
/// seeds starting at `seed_base`, metrics accumulated and flushed under
/// spec_label(spec). With AG_BENCH_JOBS > 1 all iterations run as a single
/// run_gossip_sweep batch on the first pass (the outcomes — and therefore
/// every reported counter — are bit-identical to the sequential path; only
/// wall time changes, which these benches treat as incidental).
inline void run_gossip_case(benchmark::State& state, GossipSpec spec,
                            std::uint64_t seed_base = 10007) {
  const std::size_t jobs = bench_jobs();
  GossipAccumulator acc;
  std::vector<GossipSweepResult> batch;
  std::size_t batch_index = 0;
  std::uint64_t seed = seed_base;
  for (auto _ : state) {
    GossipOutcome out;
    if (jobs > 1) {
      if (batch.empty()) {
        std::vector<GossipSpec> specs(state.max_iterations, spec);
        for (GossipSpec& s : specs) s.seed = seed++;
        batch = run_gossip_sweep(specs, jobs);
      }
      out = batch[batch_index++].outcome;
    } else {
      spec.seed = seed++;
      out = run_gossip_spec(spec);
    }
    if (!out.completed) {
      state.SkipWithError("run did not quiesce within the step budget");
      return;
    }
    acc.add(out);
    benchmark::DoNotOptimize(out.messages);
  }
  acc.flush(state, static_cast<double>(spec.n),
            static_cast<double>(spec.d + spec.delta), spec_label(spec));
}

inline GossipSpec base_spec(GossipAlgorithm alg, std::size_t n, std::size_t f,
                            Time d, Time delta) {
  GossipSpec spec;
  spec.algorithm = alg;
  spec.n = n;
  spec.f = f;
  spec.d = d;
  spec.delta = delta;
  spec.schedule =
      delta == 1 ? SchedulePattern::kLockStep : SchedulePattern::kStaggered;
  spec.delay = d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  return spec;
}

}  // namespace asyncgossip::bench
