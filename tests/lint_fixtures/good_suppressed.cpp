// aglint-fixture-as: src/sim/fixture_suppressed.cpp
// aglint-expect: none
//
// A well-formed suppression: names the rule, justifies it on the same
// line. The selftest's tamper check strips the justification from this
// file and asserts AG-SUP-001 plus the resurfaced AG-DET-003.
#include <cstdint>
#include <unordered_map>

namespace asyncgossip {

// aglint:allow(AG-DET-003) keyed lookup cache, never iterated, so hash
// order is unobservable in any output.
std::unordered_map<std::uint64_t, std::uint64_t> lookup_only_cache;

}  // namespace asyncgossip
