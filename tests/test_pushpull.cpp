#include "gossip/pushpull.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/assert.h"
#include "gossip/completion.h"
#include "sim/engine.h"
#include "sim/oblivious.h"

namespace asyncgossip {
namespace {

Engine make_pushpull_engine(std::size_t n, std::uint64_t seed,
                            std::size_t f = 0, Time crash_horizon = 8) {
  PushPullConfig cfg;
  cfg.n = n;
  cfg.initiator = 0;
  cfg.seed = seed;
  std::vector<std::unique_ptr<Process>> procs;
  for (std::size_t p = 0; p < n; ++p)
    procs.push_back(
        std::make_unique<PushPullProcess>(static_cast<ProcessId>(p), cfg));
  ObliviousConfig adv;
  adv.n = n;
  adv.d = 1;
  adv.delta = 1;
  adv.schedule = SchedulePattern::kLockStep;
  adv.delay = DelayPattern::kUnitDelay;
  adv.seed = seed;
  if (f > 0) {
    adv.crash_plan = random_crashes(n, f, crash_horizon, seed ^ 0x9999);
    // Never crash the initiator — the rumor must exist to spread.
    for (auto& [when, who] : adv.crash_plan)
      if (who == 0) who = 1;
  }
  EngineConfig ecfg;
  ecfg.d = 1;
  ecfg.delta = 1;
  ecfg.max_crashes = f;
  return Engine(std::move(procs), std::make_unique<ObliviousAdversary>(adv),
                ecfg);
}

std::size_t informed_count(const Engine& e) {
  std::size_t cnt = 0;
  for (ProcessId p = 0; p < e.n(); ++p) {
    if (e.crashed(p)) continue;
    if (e.process_as<PushPullProcess>(p).informed()) ++cnt;
  }
  return cnt;
}

TEST(PushPull, InitiatorStartsInformed) {
  PushPullConfig cfg;
  cfg.n = 8;
  cfg.initiator = 3;
  PushPullProcess a(3, cfg), b(0, cfg);
  EXPECT_TRUE(a.informed());
  EXPECT_FALSE(b.informed());
  EXPECT_TRUE(a.rumors().test(3));
  EXPECT_FALSE(b.rumors().test(3));
}

TEST(PushPull, CapsScaleSanely) {
  PushPullConfig cfg;
  cfg.n = 1 << 16;
  PushPullProcess p(0, cfg);
  // log2 log2 65536 = 4 -> cap = 13; round cap = 8*16+1+1.
  EXPECT_EQ(p.counter_cap(), 13u);
  EXPECT_EQ(p.round_cap(), 129u);
}

TEST(PushPull, RumorReachesEveryoneAtUnitTiming) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Engine e = make_pushpull_engine(256, seed);
    ASSERT_TRUE(e.run_until(gossip_quiet, 4096)) << "seed " << seed;
    EXPECT_EQ(informed_count(e), 256u) << "seed " << seed;
  }
}

TEST(PushPull, SurvivesCrashes) {
  Engine e = make_pushpull_engine(256, 11, 64, 8);
  ASSERT_TRUE(e.run_until(gossip_quiet, 4096));
  EXPECT_EQ(informed_count(e), e.alive_count());
}

TEST(PushPull, TransmissionComplexitySubLogPerProcess) {
  // [19]: O(n log log n) rumor *transmissions* (pull requests are free in
  // their accounting — see gossip/pushpull.h). Per-process transmissions
  // must stay well below log2 n; total engine messages are O(n log n).
  Engine e = make_pushpull_engine(1024, 3);
  ASSERT_TRUE(e.run_until(gossip_quiet, 8192));
  EXPECT_EQ(informed_count(e), 1024u);
  double transmissions = 0;
  for (ProcessId p = 0; p < e.n(); ++p)
    transmissions +=
        static_cast<double>(e.process_as<PushPullProcess>(p).transmissions());
  // Per-process transmissions track the counter cap (Theta(log log n)):
  // roughly one transmission per active round, and a process stays active
  // for ~cap rounds past saturation plus the O(log n / log log n)-bounded
  // spread tail. Budget a small multiple of the cap.
  PushPullConfig cap_cfg;
  cap_cfg.n = 1024;
  const PushPullProcess probe(0, cap_cfg);
  EXPECT_LT(transmissions / 1024.0,
            3.0 * static_cast<double>(probe.counter_cap()));
  // And the engine's full message count stays under a log n budget.
  EXPECT_LT(static_cast<double>(e.metrics().messages_sent()) / 1024.0,
            5.0 * std::log2(1024.0));
}

TEST(PushPull, CompletesInLogarithmicRounds) {
  Engine e = make_pushpull_engine(1024, 7);
  ASSERT_TRUE(e.run_until(gossip_quiet, 8192));
  const Time t = e.metrics().last_send_time() + 1;
  EXPECT_LE(t, 90u);  // round cap 8*10+2; typical run ends well before
}

TEST(PushPull, TinyMessages) {
  // Bit-complexity extension: push-pull messages are O(1) bytes.
  Engine e = make_pushpull_engine(128, 1);
  ASSERT_TRUE(e.run_until(gossip_quiet, 4096));
  EXPECT_EQ(e.metrics().bytes_sent(), e.metrics().messages_sent());
}

TEST(PushPull, QuiescentAfterRoundCapEvenIfUninformed) {
  // An isolated process (nothing ever delivered) must still go quiet.
  PushPullConfig cfg;
  cfg.n = 16;
  cfg.initiator = 5;
  cfg.seed = 2;
  PushPullProcess p(0, cfg);
  std::vector<Envelope> empty;
  for (std::uint64_t s = 0; s < p.round_cap() + 2; ++s) {
    StepContext ctx(0, 16, s, empty);
    p.step(ctx);
  }
  EXPECT_TRUE(p.quiescent());
  EXPECT_FALSE(p.informed());
}

TEST(PushPull, AnswersPullRequestsWhileQuiescent) {
  PushPullConfig cfg;
  cfg.n = 4;
  cfg.initiator = 0;
  cfg.seed = 3;
  PushPullProcess p(0, cfg);
  // Drive to counter-quiescence by feeding it informed contacts.
  auto informed = std::make_shared<PushPullPayload>();
  informed->informed = true;
  std::uint64_t s = 0;
  while (!p.quiescent() && s < 1000) {
    Envelope env;
    env.from = 1;
    env.to = 0;
    env.payload = informed;
    std::vector<Envelope> inbox{env};
    StepContext ctx(0, 4, s++, inbox);
    p.step(ctx);
  }
  ASSERT_TRUE(p.quiescent());
  // A pull request still gets an answer (message loss is impossible, so
  // this cannot loop forever).
  auto request = std::make_shared<PushPullPayload>();
  request->informed = false;
  Envelope env;
  env.from = 2;
  env.to = 0;
  env.payload = request;
  std::vector<Envelope> inbox{env};
  StepContext ctx(0, 4, s, inbox);
  p.step(ctx);
  ASSERT_EQ(ctx.outbox().size(), 1u);
  EXPECT_EQ(ctx.outbox()[0].to, 2u);
}

}  // namespace
}  // namespace asyncgossip
