#include "sim/telemetry_export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/telemetry.h"

namespace asyncgossip {

namespace {

// JSON-safe numeric rendering: finite doubles via %.12g (integral values
// come out without an exponent or trailing zeros), non-finite as 0 (JSON
// has no inf/nan).
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_telemetry_json(std::ostream& os, const TelemetryCollector& t,
                          const TelemetryExportInfo& info) {
  const TelemetryConfig& cfg = t.config();
  os << "{\n  \"schema\": \"asyncgossip-telemetry-v1\",\n";

  os << "  \"run\": {";
  for (std::size_t i = 0; i < info.run.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << json_escape(info.run[i].first) << "\": \""
       << json_escape(info.run[i].second) << '"';
  }
  os << "},\n";

  os << "  \"summary\": {";
  for (std::size_t i = 0; i < info.summary.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << json_escape(info.summary[i].first)
       << "\": " << num(info.summary[i].second);
  }
  os << "},\n";

  os << "  \"model\": {\"n\": " << num(std::uint64_t{cfg.n})
     << ", \"d\": " << num(std::uint64_t{cfg.d})
     << ", \"delta\": " << num(std::uint64_t{cfg.delta})
     << ", \"end_time\": " << num(std::uint64_t{t.end_time()}) << "},\n";

  os << "  \"totals\": {\"steps\": " << num(t.steps_total())
     << ", \"sends\": " << num(t.sends_total())
     << ", \"deliveries\": " << num(t.deliveries_total())
     << ", \"crashes\": " << num(t.crashes_total())
     << ", \"max_in_flight\": " << num(t.max_in_flight())
     << ", \"final_in_flight\": " << num(t.in_flight())
     << ", \"informed_fraction\": " << num(t.informed_fraction()) << "},\n";

  const double nn =
      static_cast<double>(cfg.n) * static_cast<double>(cfg.n);
  os << "  \"spread\": [";
  const auto& spread = t.spread();
  for (std::size_t i = 0; i < spread.size(); ++i) {
    const SpreadSample& s = spread[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"t\": " << num(std::uint64_t{s.time})
       << ", \"known_pairs\": " << num(s.known_pairs)
       << ", \"informed_fraction\": "
       << num(static_cast<double>(s.known_pairs) / nn)
       << ", \"full_processes\": " << num(s.full_processes)
       << ", \"informed_pairs_complete\": " << num(s.informed_pairs_complete)
       << ", \"in_flight\": " << num(s.in_flight)
       << ", \"sent\": " << num(s.sent)
       << ", \"delivered\": " << num(s.delivered) << "}";
  }
  os << "\n  ],\n";

  const Summary lat = t.latency_summary();
  os << "  \"latency_histogram\": {\"buckets\": [";
  const auto& hist = t.latency_histogram();
  bool first = true;
  for (std::size_t k = 1; k < hist.size(); ++k) {
    if (hist[k] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"latency\": " << num(std::uint64_t{k})
       << ", \"count\": " << num(hist[k]) << "}";
  }
  os << "], \"overflow\": " << num(t.latency_overflow())
     << ", \"total\": " << num(std::uint64_t{lat.count})
     << ", \"mean\": " << num(lat.mean) << ", \"stddev\": " << num(lat.stddev)
     << ", \"min\": " << num(lat.min) << ", \"median\": " << num(lat.median)
     << ", \"max\": " << num(lat.max) << "},\n";

  os << "  \"phases\": [";
  const auto& phases = t.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"t\": " << num(std::uint64_t{phases[i].time})
       << ", \"process\": " << num(std::uint64_t{phases[i].process})
       << ", \"phase\": \"" << json_escape(phases[i].phase) << "\"}";
  }
  os << "\n  ],\n";

  os << "  \"processes\": [";
  const auto& procs = t.processes();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const ProcessTelemetry& p = procs[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"id\": " << num(std::uint64_t{i})
       << ", \"steps\": " << num(p.steps) << ", \"sends\": " << num(p.sends)
       << ", \"deliveries\": " << num(p.deliveries)
       << ", \"crashed\": " << (p.crashed ? "true" : "false")
       << ", \"crash_time\": ";
    if (p.crashed)
      os << num(std::uint64_t{p.crash_time});
    else
      os << "null";
    os << "}";
  }
  os << "\n  ],\n";

  os << "  \"dropped\": {\"spread_samples\": " << num(t.samples_dropped())
     << ", \"phase_markers\": " << num(t.phase_markers_dropped()) << "}\n";
  os << "}\n";
}

void write_spread_csv(std::ostream& os, const TelemetryCollector& t) {
  const double nn = static_cast<double>(t.config().n) *
                    static_cast<double>(t.config().n);
  os << "time,known_pairs,informed_fraction,full_processes,"
        "informed_pairs_complete,in_flight,sent,delivered\n";
  for (const SpreadSample& s : t.spread()) {
    os << s.time << ',' << s.known_pairs << ','
       << num(static_cast<double>(s.known_pairs) / nn) << ','
       << s.full_processes << ',' << s.informed_pairs_complete << ','
       << s.in_flight << ',' << s.sent << ',' << s.delivered << '\n';
  }
}

// ---------------------------------------------------------------------------
// json_valid — a strict recursive-descent checker over the RFC 8259 grammar.
// ---------------------------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool run(std::string* error) {
    ok_ = value();
    skip_ws();
    if (ok_ && pos_ != s_.size()) fail("trailing content after value");
    if (!ok_ && error != nullptr) {
      *error = err_ + " at byte " + std::to_string(pos_);
    }
    return ok_;
  }

 private:
  void fail(const char* what) {
    if (ok_) err_ = what;
    ok_ = false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (s_.compare(pos_, len, word) != 0) {
      fail("bad literal");
      return false;
    }
    pos_ += len;
    return true;
  }

  bool string() {
    if (!eat('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        fail("raw control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              fail("bad \\u escape");
              return false;
            }
          }
          ++pos_;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          fail("bad escape");
          return false;
        }
      } else {
        ++pos_;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else if (pos_ < s_.size() && std::isdigit(
                   static_cast<unsigned char>(s_[pos_]))) {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    } else {
      fail("expected digit");
      return false;
    }
    if (eat('.')) {
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("expected fraction digits");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("expected exponent digits");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    bool result = false;
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
    } else if (s_[pos_] == '{') {
      ++pos_;
      skip_ws();
      if (eat('}')) {
        result = true;
      } else {
        while (true) {
          skip_ws();
          if (!string()) break;
          skip_ws();
          if (!eat(':')) {
            fail("expected ':'");
            break;
          }
          if (!value()) break;
          skip_ws();
          if (eat(',')) continue;
          if (eat('}')) {
            result = true;
          } else {
            fail("expected ',' or '}'");
          }
          break;
        }
      }
    } else if (s_[pos_] == '[') {
      ++pos_;
      skip_ws();
      if (eat(']')) {
        result = true;
      } else {
        while (true) {
          if (!value()) break;
          skip_ws();
          if (eat(',')) continue;
          if (eat(']')) {
            result = true;
          } else {
            fail("expected ',' or ']'");
          }
          break;
        }
      }
    } else if (s_[pos_] == '"') {
      result = string();
    } else if (s_[pos_] == 't') {
      result = literal("true");
    } else if (s_[pos_] == 'f') {
      result = literal("false");
    } else if (s_[pos_] == 'n') {
      result = literal("null");
    } else {
      result = number();
    }
    --depth_;
    return result && ok_;
  }

  static constexpr int kMaxDepth = 256;
  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool ok_ = true;
  std::string err_;
};

}  // namespace

bool json_valid(const std::string& text, std::string* error) {
  return JsonChecker(text).run(error);
}

void write_bench_json(std::ostream& os, const std::string& suite,
                      const std::vector<BenchCaseRow>& cases) {
  os << "{\n  \"schema\": \"asyncgossip-bench-v1\",\n";
  os << "  \"suite\": \"" << json_escape(suite) << "\",\n";
  os << "  \"cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(cases[i].name) << "\", \"counters\": {";
    const auto& counters = cases[i].counters;
    for (std::size_t c = 0; c < counters.size(); ++c) {
      if (c != 0) os << ", ";
      os << '"' << json_escape(counters[c].first)
         << "\": " << num(counters[c].second);
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace asyncgossip
