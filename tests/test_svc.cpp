// Tests for the serving stack (src/svc) and the consensus-on-rt bridge
// (consensus/cr_gossip.h). Load-bearing properties: the cr-* palette
// entries run Canetti-Rabin to a clean verdict on the real-time runtime
// (threads, and threads over the UDP transport via the extension wire
// codec); the committed-history checker actually rejects lost writes,
// stale reads, and session-order violations (a checker that cannot fail is
// not a checker); replica-group outcomes and the loadgen schedule are pure
// functions of their seeds; and the open-loop generator's accounting is
// exact. The Svc/Consensus prefixes put these under the tsan-nightly
// regex.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/core_types.h"
#include "consensus/cr_gossip.h"
#include "rt/driver.h"
#include "rt/wire.h"
#include "svc/consensus_wire.h"
#include "svc/history.h"
#include "svc/kv.h"
#include "svc/loadgen.h"
#include "svc/replica.h"
#include "svc/service.h"

namespace asyncgossip {
namespace {

using svc::Command;
using svc::CommandResult;
using svc::CommittedEntry;
using svc::Observation;
using svc::SvcOp;

// --- consensus note / verdict channel -------------------------------------

TEST(ConsensusNote, FormatParseRoundTrip) {
  ConsensusNote note;
  note.valid = true;
  note.decided = true;
  note.value = 1;
  note.input = 0;
  note.phase = 3;
  note.core_violations = 0;
  note.reannouncements = 2;
  const ConsensusNote back = parse_consensus_note(format_consensus_note(note));
  EXPECT_TRUE(back.valid);
  EXPECT_EQ(back.decided, note.decided);
  EXPECT_EQ(back.value, note.value);
  EXPECT_EQ(back.input, note.input);
  EXPECT_EQ(back.phase, note.phase);
  EXPECT_EQ(back.reannouncements, note.reannouncements);
}

TEST(ConsensusNote, RejectsForeignAndMalformedNotes) {
  EXPECT_FALSE(parse_consensus_note("").valid);
  EXPECT_FALSE(parse_consensus_note("rumors 1 2 3").valid);
  EXPECT_FALSE(parse_consensus_note("cr decided=1").valid);
  const std::string good = format_consensus_note(ConsensusNote{});
  EXPECT_FALSE(parse_consensus_note(good + " trailing=1").valid);
}

ConsensusNote decided_note(Val value, Val input) {
  ConsensusNote n;
  n.valid = true;
  n.decided = true;
  n.value = value;
  n.input = input;
  n.phase = 2;
  return n;
}

TEST(ConsensusJudge, CleanUnanimousRunIsOk) {
  std::vector<std::string> notes;
  for (int i = 0; i < 4; ++i)
    notes.push_back(format_consensus_note(decided_note(1, i % 2 ? 1 : 0)));
  const ConsensusVerdict v =
      judge_consensus_notes(notes, std::vector<bool>(4, false));
  EXPECT_TRUE(v.ok()) << v.summary();
  EXPECT_EQ(v.decided_value, 1);
  EXPECT_EQ(v.survivors, 4u);
  EXPECT_EQ(v.decided_count, 4u);
}

TEST(ConsensusJudge, DisagreementAnywhereBreaksAgreement) {
  // The second decision happened on a process that later crashed; decisions
  // bind agreement wherever they happened.
  std::vector<std::string> notes = {
      format_consensus_note(decided_note(1, 1)),
      format_consensus_note(decided_note(0, 0)),
      format_consensus_note(decided_note(1, 1)),
  };
  std::vector<bool> crashed = {false, true, false};
  const ConsensusVerdict v = judge_consensus_notes(notes, crashed);
  EXPECT_FALSE(v.agreement);
  EXPECT_FALSE(v.ok());
}

TEST(ConsensusJudge, ValidityRequiresADecidedInput) {
  // Everybody's input is 0 but the decision is 1: validity must fail.
  std::vector<std::string> notes = {
      format_consensus_note(decided_note(1, 0)),
      format_consensus_note(decided_note(1, 0)),
  };
  const ConsensusVerdict v =
      judge_consensus_notes(notes, std::vector<bool>(2, false));
  EXPECT_TRUE(v.agreement);
  EXPECT_FALSE(v.validity);
  EXPECT_FALSE(v.ok());
}

TEST(ConsensusJudge, CrashedProcessesNeedNotDecide) {
  ConsensusNote undecided;
  undecided.valid = true;
  undecided.decided = false;
  undecided.input = 0;
  std::vector<std::string> notes = {
      format_consensus_note(decided_note(0, 0)),
      format_consensus_note(undecided),
      format_consensus_note(decided_note(0, 1)),
  };
  std::vector<bool> crashed = {false, true, false};
  const ConsensusVerdict v = judge_consensus_notes(notes, crashed);
  EXPECT_TRUE(v.ok()) << v.summary();
  EXPECT_EQ(v.survivors, 2u);
  // But the same undecided note on a *surviving* process fails the run.
  const ConsensusVerdict v2 =
      judge_consensus_notes(notes, std::vector<bool>(3, false));
  EXPECT_FALSE(v2.all_decided);
  EXPECT_FALSE(v2.ok());
}

// --- consensus on the real-time runtime -----------------------------------

RtConfig consensus_rt_config(GossipAlgorithm algorithm) {
  register_consensus_algorithms();
  RtConfig config;
  config.spec.algorithm = algorithm;
  config.spec.n = 12;
  config.spec.f = 5;  // f < n/2, the Table 2 regime
  config.spec.d = 3;
  config.spec.delta = 2;
  config.spec.seed = 1;
  config.spec.crash_horizon = 32;
  config.tick_us = 100;
  return config;
}

void expect_clean_consensus_run(const RtConfig& config) {
  const RtRunResult res = run_realtime(config);
  ASSERT_TRUE(res.outcome.completed)
      << "cr run did not quiesce (alg " << to_string(config.spec.algorithm)
      << ")";
  const ConsensusVerdict v = judge_consensus_notes(res.notes, res.crashed);
  EXPECT_TRUE(v.ok()) << v.summary();
  EXPECT_EQ(v.core_violations, 0u);
  const ViolationReport audit = audit_rt_run(config, res);
  EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(ConsensusRt, AllThreeExchangesDecideOnThreads) {
  for (const GossipAlgorithm alg :
       {GossipAlgorithm::kCrEars, GossipAlgorithm::kCrSears,
        GossipAlgorithm::kCrTears}) {
    expect_clean_consensus_run(consensus_rt_config(alg));
  }
}

TEST(ConsensusRt, CrTearsSurvivesCrashInjection) {
  RtConfig config = consensus_rt_config(GossipAlgorithm::kCrTears);
  config.inject = RtInject::kCrash;
  expect_clean_consensus_run(config);
}

TEST(ConsensusRt, CrEarsRunsOverUdpTransportThreads) {
  svc::register_consensus_wire();
  RtConfig config = consensus_rt_config(GossipAlgorithm::kCrEars);
  config.spec.n = 8;
  config.spec.f = 3;
  config.transport = RtTransportKind::kUdp;
  expect_clean_consensus_run(config);
}

// --- the ConsensusPayload wire extension codec ----------------------------

TEST(SvcWire, ConsensusPayloadRoundTrips) {
  svc::register_consensus_wire();
  auto p = std::make_shared<ConsensusPayload>();
  p->sender = 5;
  p->pos.phase = 7;
  p->pos.exchange = 1;
  p->pos.sub = 2;
  p->state.origins = DynamicBitset(9);
  p->state.origins.set(0);
  p->state.origins.set(8);
  p->state.items.assign(9, kValUnknown);
  p->state.items[0] = 1;
  p->state.items[8] = kValBot;
  p->sender_x = 0;
  p->sender_y = kValBot;
  p->decided = true;
  p->decision = 1;
  p->flag_up = true;

  std::vector<std::uint8_t> bytes;
  wire::encode_payload(&bytes, p.get());
  wire::Reader r(bytes.data(), bytes.size());
  PayloadPtr out;
  ASSERT_TRUE(wire::decode_payload(&r, &out));
  EXPECT_EQ(r.finish(), wire::DecodeError::kOk);
  const auto* q = dynamic_cast<const ConsensusPayload*>(out.get());
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->sender, p->sender);
  EXPECT_EQ(q->pos.phase, p->pos.phase);
  EXPECT_EQ(q->pos.exchange, p->pos.exchange);
  EXPECT_EQ(q->pos.sub, p->pos.sub);
  EXPECT_EQ(q->state.origins.count(), p->state.origins.count());
  EXPECT_EQ(q->state.items, p->state.items);
  EXPECT_EQ(q->sender_x, p->sender_x);
  EXPECT_EQ(q->sender_y, p->sender_y);
  EXPECT_EQ(q->decided, p->decided);
  EXPECT_EQ(q->decision, p->decision);
  EXPECT_EQ(q->flag_up, p->flag_up);

  // Every truncation of a valid encoding must fail cleanly, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::Reader tr(bytes.data(), cut);
    PayloadPtr tout;
    EXPECT_FALSE(wire::decode_payload(&tr, &tout) &&
                 tr.finish() == wire::DecodeError::kOk)
        << "truncation at " << cut << " decoded";
  }
}

// --- KvStore transition function ------------------------------------------

TEST(SvcKv, PutGetCasSemantics) {
  svc::KvStore store;
  Command put;
  put.op = SvcOp::kPut;
  put.key = "k";
  put.value = "v1";
  EXPECT_TRUE(store.apply(put).ok);

  Command get;
  get.op = SvcOp::kGet;
  get.key = "k";
  CommandResult r = store.apply(get);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "v1");
  get.key = "absent";
  r = store.apply(get);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.found);

  Command cas;
  cas.op = SvcOp::kCas;
  cas.key = "k";
  cas.value = "v2";
  cas.expected = "wrong";
  EXPECT_FALSE(store.apply(cas).ok);  // comparand mismatch: no write
  cas.expected = "v1";
  EXPECT_TRUE(store.apply(cas).ok);
  get.key = "k";
  EXPECT_EQ(store.apply(get).value, "v2");

  // The reserved "-" comparand matches exactly the absent key.
  Command cas_absent;
  cas_absent.op = SvcOp::kCas;
  cas_absent.key = "fresh";
  cas_absent.value = "v3";
  cas_absent.expected = "-";
  EXPECT_TRUE(store.apply(cas_absent).ok);
  EXPECT_FALSE(store.apply(cas_absent).ok);  // now present: "-" no longer matches
}

// --- history codec and checker --------------------------------------------

CommittedEntry log_entry(std::uint64_t seq, SvcOp op, std::uint64_t client,
                         std::uint64_t cseq, const std::string& key,
                         const std::string& value,
                         const std::string& expected, bool ok, bool found,
                         const std::string& read_value) {
  CommittedEntry e;
  e.seq = seq;
  e.cmd.op = op;
  e.cmd.client = client;
  e.cmd.client_seq = cseq;
  e.cmd.key = key;
  e.cmd.value = value;
  e.cmd.expected = expected;
  e.ok = ok;
  e.found = found;
  e.read_value = read_value;
  return e;
}

Observation obs_for(const CommittedEntry& e) {
  Observation o;
  o.cmd = e.cmd;
  o.result.ok = e.ok;
  o.result.seq = e.seq;
  o.result.found = e.found;
  o.result.value = e.read_value;
  return o;
}

TEST(SvcHistoryCodec, LiteralDashComparandRoundTrips) {
  // The CAS absent-comparand is the literal "-" — the same character the
  // codec uses as its empty-field placeholder. The round trip must keep
  // them apart (a collision here once produced phantom replay failures).
  const CommittedEntry cas =
      log_entry(1, SvcOp::kCas, 1, 1, "k", "v1", "-", true, false, "");
  CommittedEntry back;
  ASSERT_TRUE(svc::parse_log_entry(svc::encode_log_entry(cas), &back));
  EXPECT_EQ(back.cmd.expected, "-");
  EXPECT_EQ(back.cmd.value, "v1");
  EXPECT_EQ(back.read_value, "");

  const CommittedEntry get =
      log_entry(2, SvcOp::kGet, 1, 2, "k", "", "", true, true, "v1");
  ASSERT_TRUE(svc::parse_log_entry(svc::encode_log_entry(get), &back));
  EXPECT_EQ(back.cmd.value, "");
  EXPECT_EQ(back.cmd.expected, "");
  EXPECT_EQ(back.read_value, "v1");

  Observation o = obs_for(cas);
  Observation oback;
  ASSERT_TRUE(svc::parse_observation(svc::encode_observation(o), &oback));
  EXPECT_EQ(oback.cmd.expected, "-");
  EXPECT_EQ(oback.result.seq, 1u);
}

std::vector<CommittedEntry> clean_log() {
  return {
      log_entry(1, SvcOp::kPut, 1, 1, "a", "v1", "", true, false, ""),
      log_entry(2, SvcOp::kGet, 2, 1, "a", "", "", true, true, "v1"),
      log_entry(3, SvcOp::kCas, 1, 2, "a", "v2", "v1", true, false, ""),
      log_entry(4, SvcOp::kGet, 2, 2, "a", "", "", true, true, "v2"),
      log_entry(5, SvcOp::kCas, 1, 3, "b", "v3", "-", true, false, ""),
  };
}

std::vector<Observation> clean_obs() {
  std::vector<Observation> obs;
  for (const CommittedEntry& e : clean_log()) obs.push_back(obs_for(e));
  return obs;
}

TEST(SvcHistory, CleanHistoryPasses) {
  const svc::HistoryReport r = svc::check_history(clean_log(), clean_obs());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.entries, 5u);
  EXPECT_EQ(r.acked, 5u);
}

TEST(SvcHistory, LostWriteFixtureFails) {
  // The service acked client 1's cseq-3 cas at seq 5, but the entry never
  // made the log — the classic committed-then-dropped write. The log that
  // remains is dense and replays clean, so ONLY the cross-check can catch
  // it.
  auto log = clean_log();
  log.pop_back();
  const svc::HistoryReport r = svc::check_history(log, clean_obs());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("lost write"), std::string::npos) << r.error;
}

TEST(SvcHistory, StaleReadFixtureFails) {
  // Seq 4's get observed the value overwritten at seq 3 — a read served
  // from a stale replica.
  auto log = clean_log();
  auto obs = clean_obs();
  log[3].read_value = "v1";
  obs[3].result.value = "v1";
  const svc::HistoryReport r = svc::check_history(log, obs);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("stale read"), std::string::npos) << r.error;
}

TEST(SvcHistory, ReplayCatchesPhantomCas) {
  auto log = clean_log();
  log[2].cmd.expected = "never";  // recorded ok=1 yet the comparand missed
  const svc::HistoryReport r = svc::check_history(log, clean_obs());
  EXPECT_FALSE(r.ok);
}

TEST(SvcHistory, SessionOrderViolationFails) {
  auto log = clean_log();
  auto obs = clean_obs();
  // Client 1's cseq 3 commits *before* its cseq 2 in log order.
  std::swap(log[2].cmd.client_seq, log[4].cmd.client_seq);
  obs[2].cmd.client_seq = log[2].cmd.client_seq;
  obs[4].cmd.client_seq = log[4].cmd.client_seq;
  const svc::HistoryReport r = svc::check_history(log, obs);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("session order"), std::string::npos) << r.error;
}

TEST(SvcHistory, UnavailableAckMustLeaveNoTrace) {
  auto obs = clean_obs();
  obs[0].result.unavailable = true;
  obs[0].result.seq = 0;
  const svc::HistoryReport r = svc::check_history(clean_log(), obs);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unavailable"), std::string::npos) << r.error;
}

TEST(SvcHistory, HolesInTheSequenceFail) {
  auto log = clean_log();
  log[3].seq = 7;
  const svc::HistoryReport r = svc::check_history(log, {});
  EXPECT_FALSE(r.ok);
}

// --- replica group ---------------------------------------------------------

svc::ReplicaGroupConfig small_group(std::uint64_t seed) {
  register_consensus_algorithms();
  svc::ReplicaGroupConfig g;
  g.n = 8;
  g.f = 3;
  g.seed = seed;
  return g;
}

TEST(SvcReplica, OutcomesAreAPureFunctionOfTheSeed) {
  svc::ReplicaGroupConfig cfg = small_group(17);
  cfg.inject_crashes = 2;
  cfg.crash_horizon_slots = 4;
  svc::ReplicaGroup a(cfg);
  svc::ReplicaGroup b(cfg);
  EXPECT_EQ(a.crash_slots(), b.crash_slots());
  for (int slot = 0; slot < 6; ++slot) {
    const svc::CommitOutcome oa = a.commit_slot();
    const svc::CommitOutcome ob = b.commit_slot();
    EXPECT_EQ(oa.committed, ob.committed);
    EXPECT_EQ(oa.unavailable, ob.unavailable);
    EXPECT_EQ(oa.messages, ob.messages);
    EXPECT_EQ(oa.bytes, ob.bytes);
    EXPECT_EQ(oa.decision_time, ob.decision_time);
    EXPECT_EQ(oa.decision_phase, ob.decision_phase);
    EXPECT_TRUE(oa.committed) << "2 crashes <= f must stay available";
  }
  // A different seed draws a different fault plan.
  svc::ReplicaGroupConfig other = cfg;
  other.seed = 18;
  EXPECT_NE(svc::ReplicaGroup(other).crash_slots(), a.crash_slots());
}

TEST(SvcReplica, BeyondBudgetCrashesReportHonestUnavailability) {
  svc::ReplicaGroupConfig cfg = small_group(23);
  cfg.inject_crashes = 5;  // > f = 3: majority must eventually be lost
  cfg.crash_horizon_slots = 3;
  svc::ReplicaGroup group(cfg);
  bool saw_unavailable = false;
  for (int slot = 0; slot < 8; ++slot) {
    const svc::CommitOutcome out = group.commit_slot();
    if (out.unavailable) {
      saw_unavailable = true;
      EXPECT_FALSE(out.committed);
      EXPECT_LT(out.alive, cfg.n / 2 + 1);
      EXPECT_EQ(out.messages, 0u) << "fail-fast: the slot must not run";
    }
  }
  EXPECT_TRUE(saw_unavailable);
}

// --- loadgen ---------------------------------------------------------------

TEST(SvcLoadgen, CommandsAreAPureFunctionOfSeedAndIndex) {
  svc::LoadgenConfig cfg;
  cfg.seed = 99;
  cfg.requests = 64;
  cfg.clients = 4;
  cfg.value_bytes = 12;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Command a = svc::loadgen_command(cfg, i);
    const Command b = svc::loadgen_command(cfg, i);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.expected, b.expected);
    EXPECT_EQ(a.client, 1 + i % 4);
    EXPECT_EQ(a.client_seq, 1 + i / 4);
    if (a.op != SvcOp::kGet) {
      EXPECT_EQ(a.value.size(), 12u);
    }
    if (a.op == SvcOp::kCas) {
      EXPECT_FALSE(a.expected.empty());
    }
  }
}

TEST(SvcLoadgen, OpenLoopPacingAndExactAccounting) {
  svc::KvServiceConfig cfg;
  cfg.group = small_group(31);
  svc::KvService service(cfg);
  svc::LoadgenConfig lc;
  lc.inproc = &service;
  lc.requests = 200;
  lc.rate = 2000.0;  // last request due at 199/2000 s ~ 99.5 ms
  lc.seed = 31;
  const svc::LoadgenReport rep = svc::run_loadgen(lc);
  service.stop();
  EXPECT_EQ(rep.attempted, 200u);
  EXPECT_EQ(rep.acked + rep.unavailable + rep.unacked, rep.attempted);
  EXPECT_EQ(rep.acked, 200u);
  EXPECT_TRUE(rep.complete);
  EXPECT_GE(rep.wall_ms, 90.0) << "open loop must respect the schedule";
  EXPECT_LE(rep.achieved_rate, 2500.0);
  EXPECT_EQ(service.stats().committed, 200u);
}

// --- service end to end ----------------------------------------------------

TEST(SvcService, CommittedHistoryChecksOutUnderCrashes) {
  std::ostringstream log_os, obs_os;
  svc::KvServiceConfig cfg;
  cfg.group = small_group(47);
  cfg.group.inject_crashes = 2;
  cfg.group.crash_horizon_slots = 3;
  cfg.batch_limit = 16;  // force many slots even for a small run
  cfg.log_out = &log_os;
  {
    svc::KvService service(cfg);
    svc::LoadgenConfig lc;
    lc.inproc = &service;
    lc.requests = 500;
    lc.seed = 47;
    lc.obs_out = &obs_os;
    const svc::LoadgenReport rep = svc::run_loadgen(lc);
    service.stop();
    EXPECT_TRUE(rep.complete);
    EXPECT_GE(service.stats().slots, 500u / 16);
  }
  std::istringstream log_is(log_os.str()), obs_is(obs_os.str());
  std::vector<CommittedEntry> log;
  std::vector<Observation> obs;
  std::string error;
  ASSERT_TRUE(svc::read_log(log_is, &log, &error)) << error;
  ASSERT_TRUE(svc::read_observations(obs_is, &obs, &error)) << error;
  EXPECT_EQ(log.size(), 500u);
  const svc::HistoryReport r = svc::check_history(log, obs);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.acked, 500u);
}

TEST(SvcService, SubmitAfterStopAnswersUnavailable) {
  svc::KvServiceConfig cfg;
  cfg.group = small_group(53);
  svc::KvService service(cfg);
  service.stop();
  bool answered = false;
  Command cmd;
  cmd.op = SvcOp::kPut;
  cmd.client = 1;
  cmd.client_seq = 1;
  cmd.key = "k";
  cmd.value = "v";
  service.submit(cmd, [&](const Command&, const CommandResult& result,
                          std::uint64_t) {
    answered = true;
    EXPECT_TRUE(result.unavailable);
    EXPECT_FALSE(result.ok);
  });
  EXPECT_TRUE(answered);
}

}  // namespace
}  // namespace asyncgossip
