#include "gossip/lazy.h"

#include <gtest/gtest.h>

#include "common/assert.h"

#include "gossip/harness.h"

namespace asyncgossip {
namespace {

TEST(Lazy, FirstStepSendsFanout) {
  LazyGossipProcess p(0, 16, 3, 1);
  std::vector<Envelope> empty;
  StepContext ctx(0, 16, 0, empty);
  p.step(ctx);
  EXPECT_EQ(ctx.outbox().size(), 3u);
  EXPECT_TRUE(p.quiescent());
}

TEST(Lazy, SilentWithoutNovelty) {
  LazyGossipProcess p(0, 16, 2, 1);
  std::vector<Envelope> empty;
  {
    StepContext ctx(0, 16, 0, empty);
    p.step(ctx);
  }
  for (int s = 1; s < 10; ++s) {
    StepContext ctx(0, 16, static_cast<std::uint64_t>(s), empty);
    p.step(ctx);
    EXPECT_TRUE(ctx.outbox().empty());
  }
}

TEST(Lazy, ForwardsOnNovelty) {
  LazyGossipProcess p(0, 16, 2, 1);
  std::vector<Envelope> empty;
  {
    StepContext ctx(0, 16, 0, empty);
    p.step(ctx);
  }
  auto payload = std::make_shared<LazyPayload>();
  payload->rumors = DynamicBitset(16);
  payload->rumors.set(7);
  Envelope env;
  env.from = 7;
  env.to = 0;
  env.payload = payload;
  std::vector<Envelope> inbox{env};
  {
    StepContext ctx(0, 16, 1, inbox);
    p.step(ctx);
    EXPECT_EQ(ctx.outbox().size(), 2u);
  }
  // Re-delivery of the same rumor is not novel.
  {
    std::vector<Envelope> inbox2{env};
    StepContext ctx(0, 16, 2, inbox2);
    p.step(ctx);
    EXPECT_TRUE(ctx.outbox().empty());
  }
}

TEST(Lazy, RejectsBadFanout) {
  EXPECT_THROW(LazyGossipProcess(0, 8, 0, 1), ModelViolation);
  EXPECT_THROW(LazyGossipProcess(0, 8, 9, 1), ModelViolation);
}

TEST(Lazy, CascadeOftenCompletesUnderBenignSchedule) {
  // Not a correctness guarantee (see gossip/lazy.h) — but with lock-step
  // scheduling and no crashes the novelty cascade typically disseminates
  // everything; this pins the intended benign behaviour.
  int gathered = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GossipSpec spec;
    spec.algorithm = GossipAlgorithm::kLazy;
    spec.lazy_fanout = 3;
    spec.n = 64;
    spec.f = 0;
    spec.d = 1;
    spec.delta = 1;
    spec.seed = seed;
    const GossipOutcome out = run_gossip_spec(spec);
    EXPECT_TRUE(out.completed);
    if (out.gathering_ok) ++gathered;
  }
  EXPECT_GE(gathered, 6);
}

TEST(Lazy, MessageComplexityLinearInN) {
  // fanout * n messages per novelty wave: far below the trivial n^2.
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kLazy;
  spec.lazy_fanout = 2;
  spec.n = 128;
  spec.f = 0;
  spec.d = 1;
  spec.delta = 1;
  spec.seed = 3;
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  EXPECT_LT(out.messages, static_cast<std::uint64_t>(128) * 128 / 2);
}

}  // namespace
}  // namespace asyncgossip
