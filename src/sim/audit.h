// Independent audit of the (d, delta, f) model contract.
//
// The engine *enforces* the partially-synchronous model (engine.h); this
// module *checks* it, from the outside, with none of the engine's own
// bookkeeping. InvariantAuditor is a passive EngineObserver that re-derives
// the full contract from the event stream alone — delivery bounds,
// scheduling gaps, the crash budget, post-crash silence, per-(sender,
// receiver) FIFO order, message-id uniqueness — and recomputes every
// Metrics counter for cross-checking. Violations are *accumulated* into a
// structured ViolationReport rather than asserted, so tests can inspect
// exactly what went wrong and tools/tracecheck can lint recorded traces
// offline with the same checker.
//
// The auditor is deliberately redundant with the engine: the point is that
// two independent implementations of the model definition must agree on
// every execution, which turns "the engine enforces the model" into a
// mechanically checked property rather than a comment.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/message.h"
#include "sim/observer.h"
#include "sim/types.h"

namespace asyncgossip {

class Metrics;

/// The invariant classes the auditor distinguishes. Each maps to a clause
/// of the paper's system model (see docs/MODEL.md, "The audited
/// invariants").
enum class ViolationKind : std::uint8_t {
  /// A delivery bound was breached: the receiver took a local step at or
  /// after the message became deliverable without receiving it.
  kLateDelivery,
  /// A message was delivered before it legally could be: at or before its
  /// send time (same-step relay) or before its deliver_after stamp.
  kEarlyDelivery,
  /// A message's deliver_after stamp lies outside [send_time + 1,
  /// send_time + d]: the adversary's delay escaped the engine's clamp.
  kBadDeliverAfter,
  /// A live process went more than delta steps without being scheduled
  /// (or was first scheduled later than step delta - 1).
  kDeltaViolation,
  /// A process took two local steps in the same global time step.
  kDoubleStep,
  /// More than f = max_crashes processes crashed.
  kCrashBudgetExceeded,
  /// A crash event targeted an already-crashed process.
  kDuplicateCrash,
  /// A crashed process took a local step.
  kPostCrashStep,
  /// A crashed process sent a message.
  kPostCrashSend,
  /// A message was delivered to a crashed process.
  kPostCrashDelivery,
  /// Per-(sender, receiver) FIFO order broken: a message overtook an
  /// older same-pair message that was already deliverable.
  kFifoInversion,
  /// A message id was reused or ids went non-monotonic.
  kMessageIdReuse,
  /// A delivery for a message that was never sent (or already delivered).
  kUnknownMessage,
  /// A send or delivery not bracketed by a local step of the acting
  /// process at the same time step.
  kEventOutsideStep,
  /// An event time stamp went backwards.
  kTimeRegression,
  /// An event referenced a process id outside [0, n).
  kOutOfRangeProcess,
  /// The engine's Metrics counters disagree with the auditor's
  /// independently recomputed totals.
  kMetricsMismatch,
};

/// Number of ViolationKind values (counts_ array size; keep in sync with
/// the enum — the kMetricsMismatch entry is the last one).
inline constexpr std::size_t kViolationKindCount =
    static_cast<std::size_t>(ViolationKind::kMetricsMismatch) + 1;

const char* to_string(ViolationKind kind);

/// One observed contract breach, with enough context to reproduce it.
struct Violation {
  ViolationKind kind;
  /// Global time of the offending event (kTimeMax for finalize-time
  /// findings that are not tied to a single event).
  Time time = 0;
  /// The process the violation is attributed to (receiver for delivery
  /// violations), kNoProcess when not applicable.
  ProcessId process = kNoProcess;
  /// The message involved, 0 when not applicable.
  MessageId message = 0;
  /// Human-readable description with the numbers that matter.
  std::string detail;
};

/// Accumulated audit findings. Records the first `max_recorded` violations
/// verbatim and keeps exact per-kind counts beyond that.
class ViolationReport {
 public:
  explicit ViolationReport(std::size_t max_recorded = 64)
      : max_recorded_(max_recorded) {}

  bool ok() const { return total_ == 0; }
  std::uint64_t total() const { return total_; }
  std::uint64_t count(ViolationKind kind) const;
  const std::vector<Violation>& violations() const { return violations_; }

  /// One line per recorded violation plus per-kind totals; "" when ok().
  /// Both orderings are deterministic: recorded violations in insertion
  /// order, totals in ViolationKind declaration order — never a hash
  /// iteration order (see docs/ANALYSIS.md, rule AG-DET-003).
  std::string summary() const;

  void add(Violation v);
  void clear();

 private:
  std::size_t max_recorded_;
  std::vector<Violation> violations_;
  /// Exact per-kind totals, indexed by ViolationKind. A fixed array keeps
  /// every iteration over the counts in enum order regardless of the
  /// standard library's hash seeding.
  std::array<std::uint64_t, kViolationKindCount> counts_{};
  std::uint64_t total_ = 0;
};

/// Model spec the auditor checks against (mirrors EngineConfig plus n).
struct AuditConfig {
  std::size_t n = 0;
  Time d = 1;
  Time delta = 1;
  std::size_t max_crashes = 0;
  /// Cap on verbatim-recorded violations (counts stay exact).
  std::size_t max_recorded = 64;
};

class InvariantAuditor final : public EngineObserver {
 public:
  explicit InvariantAuditor(const AuditConfig& config);

  // EngineObserver — also callable directly on a replayed event stream
  // (tools/tracecheck) or a fabricated one (tests).
  void on_step(Time now, ProcessId p) override;
  void on_send(const Envelope& env) override;
  void on_delivery(const Envelope& env, Time now) override;
  void on_crash(Time now, ProcessId p) override;

  /// End-of-execution checks that cannot be attached to any single event:
  /// delta starvation at the horizon. `end_time` is the engine's now()
  /// after the run, i.e. steps 0 .. end_time - 1 were executed.
  void finalize(Time end_time);

  /// Compares the engine's Metrics against the auditor's recomputed
  /// totals; any disagreement is reported as kMetricsMismatch.
  void cross_check(const Metrics& metrics);

  const ViolationReport& report() const { return report_; }
  const AuditConfig& config() const { return config_; }

  // Recomputed totals (exposed for tests).
  std::uint64_t observed_steps() const { return local_steps_total_; }
  std::uint64_t observed_sends() const { return sends_total_; }
  std::uint64_t observed_deliveries() const { return deliveries_total_; }
  std::uint64_t observed_crashes() const { return crash_count_; }
  /// Recomputed peak of the in-flight gauge, including the current value
  /// (the engine samples at every end of step; the auditor samples whenever
  /// the event clock advances, which covers every point where the gauge
  /// can have changed).
  std::size_t observed_max_in_flight() const {
    return std::max(max_in_flight_, in_flight_gauge_);
  }

 private:
  struct PendingMessage {
    MessageId id;
    Time deliver_after;
    bool flagged;  // already reported as overtaken; don't re-flag
  };

  void add(ViolationKind kind, Time time, ProcessId process, MessageId message,
           std::string detail);
  /// Advances the audit clock; false (after reporting kTimeRegression)
  /// means the event is out of order and must not be processed further —
  /// time arithmetic on it would wrap.
  bool check_clock(Time now);
  static std::uint64_t pair_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  AuditConfig config_;
  ViolationReport report_;

  // Per-process scheduling state.
  std::vector<bool> crashed_;
  std::vector<bool> stepped_once_;
  std::vector<Time> last_step_;  // valid iff stepped_once_
  std::vector<Time> prev_step_;  // the step before last_step_, or kTimeMax

  // Message tracking.
  bool any_id_seen_ = false;
  MessageId last_id_ = 0;
  // aglint:allow(AG-DET-003) keyed insert/find/erase only, never iterated;
  // hash order cannot reach the ViolationReport or any exported output.
  std::unordered_set<MessageId> in_flight_;
  // aglint:allow(AG-DET-003) keyed per-(sender,receiver) FIFO queues —
  // looked up by pair_key, never iterated, so hash order is unobservable.
  std::unordered_map<std::uint64_t, std::deque<PendingMessage>> pair_queue_;

  // Recomputed Metrics mirror.
  std::uint64_t local_steps_total_ = 0;
  std::uint64_t sends_total_ = 0;
  std::uint64_t deliveries_total_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::uint64_t crash_count_ = 0;
  std::vector<std::uint64_t> per_process_sent_;
  std::vector<std::uint64_t> per_process_received_;
  Time last_send_time_ = 0;
  bool any_send_ = false;
  Time realized_d_ = 0;
  Time realized_delta_ = 0;

  // In-flight gauge mirror: sent-but-undelivered messages per destination
  // (a send to an already-crashed destination never enters the network; a
  // crash voids the victim's pending messages). The max is sampled at
  // every clock advance, i.e. at each step boundary.
  std::vector<std::uint64_t> pending_to_;
  std::size_t in_flight_gauge_ = 0;
  std::size_t max_in_flight_ = 0;

  Time clock_ = 0;  // largest event time seen
  bool any_event_ = false;
};

}  // namespace asyncgossip
