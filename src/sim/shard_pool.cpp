#include "sim/shard_pool.h"

#include <algorithm>

namespace asyncgossip {

ShardPool::ShardPool(std::size_t workers) {
  threads_.reserve(std::max<std::size_t>(workers, 1));
  for (std::size_t w = 0; w < std::max<std::size_t>(workers, 1); ++w)
    threads_.emplace_back([this] { worker_main(); });
}

ShardPool::~ShardPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run(std::size_t count, FunctionRef<void(std::size_t)> task) {
  if (count == 0) return;
  {
    MutexLock lock(&mu_);
    task_ = &task;
    count_ = count;
    error_ = nullptr;
    error_index_ = count;
    next_.store(0);
    done_.store(0);
    ++generation_;
  }
  work_cv_.notify_all();

  drain(task, count);

  std::exception_ptr error;
  {
    MutexLock lock(&mu_);
    // Wait until every task ran AND every worker left the batch: a worker
    // that observed this generation holds a pointer to `task` (a stack
    // object of this frame) until it exits drain(), even if all indices
    // were already claimed by others.
    while (done_.load() < count_ || active_ != 0) done_cv_.wait(mu_);
    task_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

std::size_t ShardPool::drain(const FunctionRef<void(std::size_t)>& task,
                             std::size_t count) {
  // Chunked claiming: large batches amortize the atomic to ~8 claims per
  // thread; tiny batches degrade to one index per claim.
  const std::size_t chunk =
      std::max<std::size_t>(1, count / ((threads_.size() + 1) * 8));
  std::size_t finished = 0;
  for (;;) {
    const std::size_t begin = next_.fetch_add(chunk);
    if (begin >= count) break;
    const std::size_t end = std::min(begin + chunk, count);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        task(i);
      } catch (...) {
        record_error(i);
      }
    }
    finished += end - begin;
  }
  if (finished != 0 && done_.fetch_add(finished) + finished >= count) {
    // Completion edge: re-take the mutex so the notification cannot slip
    // between a waiter's predicate check and its wait.
    { MutexLock lock(&mu_); }
    done_cv_.notify_all();
  }
  return finished;
}

void ShardPool::record_error(std::size_t index) {
  MutexLock lock(&mu_);
  if (error_ == nullptr || index < error_index_) {
    error_ = std::current_exception();
    error_index_ = index;
  }
}

void ShardPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    const FunctionRef<void(std::size_t)>* task;
    std::size_t count;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && generation_ == seen) work_cv_.wait(mu_);
      if (shutdown_) return;
      seen = generation_;
      if (task_ == nullptr) continue;  // batch fully drained and retired
                                       // before this worker woke: its task
                                       // (and next_/done_) are dead state —
                                       // touching them would corrupt the
                                       // *next* batch's index claiming.
      task = task_;
      count = count_;
      ++active_;
    }
    // Entering the batch happened under mu_ with task_ still published, so
    // run() — whose completion predicate requires active_ == 0 — cannot
    // recycle `task` while we dereference it here, even if every index was
    // already claimed by other threads.
    drain(*task, count);
    {
      MutexLock lock(&mu_);
      --active_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace asyncgossip
