# Empty compiler generated dependencies file for ag_apps.
# This may be replaced when dependencies are built.
