// aglint-fixture-as: src/sim/fixture_nojustify.cpp
// aglint-expect: AG-SUP-001
// aglint-expect: AG-DET-003
//
// A suppression without a justification is itself a violation AND does not
// suppress — so both the tamper rule and the original finding fire.
#include <cstdint>
#include <unordered_map>

namespace asyncgossip {

// aglint:allow(AG-DET-003)
std::unordered_map<std::uint64_t, std::uint64_t> unjustified_counters;

}  // namespace asyncgossip
