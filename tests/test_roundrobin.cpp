#include "gossip/roundrobin.h"

#include <gtest/gtest.h>

#include "gossip/harness.h"

namespace asyncgossip {
namespace {

TEST(RoundRobin, TargetsAreCyclicAndSkipSelf) {
  EpidemicConfig cfg = make_ears_config(5, 1, 1);
  RoundRobinGossipProcess p(2, cfg);
  std::vector<Envelope> empty;
  std::vector<ProcessId> targets;
  for (std::uint64_t s = 0; s < 8; ++s) {
    StepContext ctx(2, 5, s, empty);
    p.step(ctx);
    ASSERT_EQ(ctx.outbox().size(), 1u);
    targets.push_back(ctx.outbox()[0].to);
  }
  EXPECT_EQ(targets,
            (std::vector<ProcessId>{3, 4, 0, 1, 3, 4, 0, 1}));
  // Offsets cycle 1..n-1 and never hit self.
  for (ProcessId t : targets) EXPECT_NE(t, 2u);
}

TEST(RoundRobin, DeterministicReseedIsNoop) {
  EpidemicConfig cfg = make_ears_config(8, 2, 1);
  RoundRobinGossipProcess a(0, cfg);
  auto b = a.clone();
  b->reseed(0xFFFF);
  std::vector<Envelope> empty;
  for (std::uint64_t s = 0; s < 12; ++s) {
    StepContext ca(0, 8, s, empty), cb(0, 8, s, empty);
    a.step(ca);
    b->step(cb);
    ASSERT_EQ(ca.outbox().size(), cb.outbox().size());
    if (!ca.outbox().empty()) {
      EXPECT_EQ(ca.outbox()[0].to, cb.outbox()[0].to);
    }
  }
}

class RoundRobinSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(RoundRobinSweep, GathersAndQuiesces) {
  const auto [f, seed] = GetParam();
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kRoundRobin;
  spec.n = 64;
  spec.f = f;
  spec.d = 2;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = seed;
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.gathering_ok);
  EXPECT_TRUE(out.majority_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RoundRobinSweep,
    ::testing::Combine(::testing::Values(0ul, 16ul, 31ul),
                       ::testing::Values(1, 2, 3)));

TEST(RoundRobin, SlowerThanEarsButSameMessageOrder) {
  // The cyclic sweep needs Theta(n) local steps to guarantee coverage,
  // where EARS' random targets achieve it in O(polylog); messages stay in
  // the same ballpark (both are 1 per awake step).
  GossipSpec rr, ears;
  rr.algorithm = GossipAlgorithm::kRoundRobin;
  ears.algorithm = GossipAlgorithm::kEars;
  for (GossipSpec* s : {&rr, &ears}) {
    s->n = 128;
    s->f = 32;
    s->d = 1;
    s->delta = 1;
    s->seed = 4;
  }
  const GossipOutcome orr = run_gossip_spec(rr);
  const GossipOutcome oe = run_gossip_spec(ears);
  ASSERT_TRUE(orr.completed && oe.completed);
  ASSERT_TRUE(orr.gathering_ok && oe.gathering_ok);
  EXPECT_GT(orr.completion_time, oe.completion_time);
}

TEST(RoundRobin, SameSeedSameTrace) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kRoundRobin;
  spec.n = 32;
  spec.f = 8;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 77;
  const GossipOutcome a = run_gossip_spec(spec);
  const GossipOutcome b = run_gossip_spec(spec);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.completion_time, b.completion_time);
}

}  // namespace
}  // namespace asyncgossip
