#include "sim/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace asyncgossip {

void TraceRecorder::push(Event e) {
  if (events_.size() < max_events_) {
    events_.push_back(e);
  } else {
    ++dropped_;
  }
}

void TraceRecorder::on_step(Time now, ProcessId p) {
  ++steps_;
  push(Event{EventKind::kStep, now, p, kNoProcess, 0, 0, 0});
}

void TraceRecorder::on_send(const Envelope& env) {
  ++sends_;
  push(Event{EventKind::kSend, env.send_time, env.from, env.to, env.id,
             env.send_time, env.deliver_after});
}

void TraceRecorder::on_delivery(const Envelope& env, Time now) {
  ++deliveries_;
  latencies_.push_back(static_cast<double>(now - env.send_time));
  push(Event{EventKind::kDelivery, now, env.to, env.from, env.id,
             env.send_time, env.deliver_after});
}

void TraceRecorder::on_crash(Time now, ProcessId p) {
  ++crashes_;
  push(Event{EventKind::kCrash, now, p, kNoProcess, 0, 0, 0});
}

std::string TraceRecorder::format_event(const Event& e) {
  char buf[160];
  switch (e.kind) {
    case EventKind::kStep:
      std::snprintf(buf, sizeof(buf), "step %" PRIu64 " %" PRIu32, e.time,
                    e.process);
      break;
    case EventKind::kSend:
      std::snprintf(buf, sizeof(buf),
                    "send %" PRIu64 " %" PRIu64 " %" PRIu32 " %" PRIu32
                    " %" PRIu64,
                    e.time, e.message, e.process, e.peer, e.deliver_after);
      break;
    case EventKind::kDelivery:
      std::snprintf(buf, sizeof(buf),
                    "deliver %" PRIu64 " %" PRIu64 " %" PRIu32 " %" PRIu32
                    " %" PRIu64 " %" PRIu64,
                    e.time, e.message, e.peer, e.process, e.send_time,
                    e.deliver_after);
      break;
    case EventKind::kCrash:
      std::snprintf(buf, sizeof(buf), "crash %" PRIu64 " %" PRIu32, e.time,
                    e.process);
      break;
  }
  return buf;
}

TraceRecorder::ParseResult TraceRecorder::parse_line(const std::string& line,
                                                     Event* out) {
  const std::size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos) return ParseResult::kSkip;
  if (line[start] == '#') return ParseResult::kSkip;
  if (line.compare(start, 5, "model") == 0) return ParseResult::kSkip;

  const char* s = line.c_str() + start;
  Event e;
  std::uint64_t t = 0, id = 0, from = 0, to = 0, sent = 0, da = 0;
  char tail = '\0';
  if (std::sscanf(s, "step %" SCNu64 " %" SCNu64 " %c", &t, &from, &tail) ==
      2) {
    e = Event{EventKind::kStep, t, static_cast<ProcessId>(from), kNoProcess, 0,
              0, 0};
  } else if (std::sscanf(s,
                         "send %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                         " %" SCNu64 " %c",
                         &t, &id, &from, &to, &da, &tail) == 5) {
    e = Event{EventKind::kSend, t, static_cast<ProcessId>(from),
              static_cast<ProcessId>(to), id, t, da};
  } else if (std::sscanf(s,
                         "deliver %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                         " %" SCNu64 " %" SCNu64 " %c",
                         &t, &id, &from, &to, &sent, &da, &tail) == 6) {
    e = Event{EventKind::kDelivery, t, static_cast<ProcessId>(to),
              static_cast<ProcessId>(from), id, sent, da};
  } else if (std::sscanf(s, "crash %" SCNu64 " %" SCNu64 " %c", &t, &from,
                         &tail) == 2) {
    e = Event{EventKind::kCrash, t, static_cast<ProcessId>(from), kNoProcess,
              0, 0, 0};
  } else {
    return ParseResult::kError;
  }
  *out = e;
  return ParseResult::kEvent;
}

void TraceRecorder::write_events(std::ostream& os) const {
  for (const Event& e : events_) os << format_event(e) << '\n';
}

void TraceRecorder::write_trace(std::ostream& os, std::size_t n, Time d,
                                Time delta, std::size_t f) const {
  os << "# asyncgossip trace v1\n";
  os << "model n=" << n << " d=" << d << " delta=" << delta << " f=" << f
     << '\n';
  if (dropped_ != 0)
    os << "# WARNING: " << dropped_
       << " events dropped by the bounded recorder; this trace is a prefix\n";
  write_events(os);
}

Summary TraceRecorder::latency_summary() const { return summarize(latencies_); }

std::string TraceRecorder::render_timeline(std::size_t n,
                                           std::size_t max_processes,
                                           std::size_t max_time) const {
  const std::size_t rows = std::min(n, max_processes);
  // Cell codes: bit0 step, bit1 send, bit2 delivery, bit3 crash.
  std::vector<std::vector<std::uint8_t>> grid(
      rows, std::vector<std::uint8_t>(max_time, 0));
  std::vector<Time> crash_time(rows, kTimeMax);
  for (const Event& e : events_) {
    if (e.process >= rows) continue;
    if (e.kind == EventKind::kCrash && e.process < rows)
      crash_time[e.process] = std::min(crash_time[e.process], e.time);
    if (e.time >= max_time) continue;
    auto& cell = grid[e.process][e.time];
    switch (e.kind) {
      case EventKind::kStep:
        cell |= 1;
        break;
      case EventKind::kSend:
        cell |= 2;
        break;
      case EventKind::kDelivery:
        cell |= 4;
        break;
      case EventKind::kCrash:
        cell |= 8;
        break;
    }
  }
  std::string out;
  out.reserve(rows * (max_time + 12));
  for (std::size_t p = 0; p < rows; ++p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%4zu ", p);
    out += buf;
    for (std::size_t t = 0; t < max_time; ++t) {
      const std::uint8_t c = grid[p][t];
      char ch;
      if (c & 8) {
        ch = 'X';
      } else if (crash_time[p] != kTimeMax && t > crash_time[p]) {
        ch = ' ';
      } else if ((c & 2) && (c & 4)) {
        ch = 'b';
      } else if (c & 2) {
        ch = 's';
      } else if (c & 4) {
        ch = 'd';
      } else if (c & 1) {
        ch = 'o';
      } else {
        ch = '.';
      }
      out += ch;
    }
    out += '\n';
  }
  if (n > rows) out += "  ... (" + std::to_string(n - rows) + " more)\n";
  return out;
}

void TraceRecorder::clear() {
  events_.clear();
  steps_ = sends_ = deliveries_ = crashes_ = dropped_ = 0;
  latencies_.clear();
}

}  // namespace asyncgossip
