// UdpTransport: the Transport contract over real UDP sockets on loopback.
//
// One socket per hosted ("local") endpoint. The threaded driver hosts all
// n endpoints in one object (rt/driver.h with RtTransportKind::kUdp); each
// worker of the multi-process driver hosts exactly one and reaches the
// rest through a peer port table filled in by the coordinator handshake
// (rt/multiproc.h). Either way the datagrams, batching, loss handling and
// framing are identical — which is what lets one conformance suite and one
// fault-injection shim cover both deployments.
//
// How the Transport guarantees survive an unreliable wire:
//
//   * Batching: submits are staged per (sender, destination, tick) and
//     flushed as one asyncgossip-wire-v1 data frame per destination at the
//     end of the step (Transport::flush), split only past the datagram
//     ceiling. Each frame carries a per-link monotone sequence number.
//   * Loss: bounded retransmit with exponential backoff, timed in model
//     ticks (no wall clock — AG-DET-002), until the receiver's cumulative
//     ack covers the frame. Duplicates are dropped by seq at the receiver,
//     which re-acks them. A frame that exhausts its retransmit budget is
//     counted (stats().expired) and simply stops being retried: the run
//     then fails honestly as incomplete rather than fake a delivery.
//   * Reordering: frames are released in per-link seq order; a gap holds
//     later frames back, so per-link FIFO (by message id) holds end to end.
//   * Stamps: the sender floors deliver_after per link (monotone stamps,
//     same rule as InProcessTransport), and the *receiver* re-floors on
//     release — against its own drained ticks (no-late-stamp) and link
//     floor. Both only ever delay a message; the realized d reported by
//     the drivers absorbs every bump, so merged traces still audit clean.
//
// Accounting: submit() cannot see a remote closed inbox synchronously, so
// it never returns kTimeMax; every envelope is instead accounted exactly
// once at its receiver — released into pending, or discarded on arrival at
// a closed inbox (surfaced through reap_discarded()).
//
// The seeded fault shim (UdpWireFaults) drops/duplicates/reorders outbound
// data and ack datagrams *before* the socket write: real loss handling
// exercised deterministically per seed, without privileged packet filters.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "rt/transport.h"
#include "rt/wire.h"

namespace asyncgossip {

/// Seeded outbound-datagram faults, applied at the socket boundary.
struct UdpWireFaults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Hold the datagram back and emit it after the *next* outbound one on
  /// the same socket (pairwise reordering).
  double reorder_probability = 0.0;
  std::uint64_t seed = 1;

  bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0;
  }
};

struct UdpTransportConfig {
  std::size_t n = 0;
  /// Endpoints hosted by this object (a socket is bound for each).
  /// Empty = all n (the single-process deployments).
  std::vector<ProcessId> local;
  /// Ticks before the first retransmit of an unacked frame; doubles per
  /// retry (capped at 6 doublings).
  Time retransmit_after = 8;
  /// Retries per frame before giving up (counted in stats().expired).
  int max_retransmits = 12;
  UdpWireFaults faults;
};

class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(UdpTransportConfig config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  Time submit(Envelope env) override;
  std::size_t drain(ProcessId p, Time now, std::vector<Envelope>* out) override;
  std::size_t close_inbox(ProcessId p) override;
  void flush(ProcessId from, Time now) override;
  void service(Time now) override;
  std::size_t reap_discarded() override;

  bool is_local(ProcessId p) const;
  /// Bound loopback port of a hosted endpoint.
  std::uint16_t local_port(ProcessId p) const;
  /// Installs a remote endpoint's data port. Frames staged before the port
  /// is known are held and go out with the retransmit pass after it is.
  void set_peer(ProcessId p, std::uint16_t port);

  // --- control channel (multi-process driver) ----------------------------
  // Non-data/ack frames arriving on a hosted endpoint's socket are queued
  // verbatim instead of being dropped; the worker/coordinator loops decode
  // them with the wire:: helpers. Control traffic bypasses the fault shim:
  // it has its own retry loops at the protocol level.

  struct ControlMsg {
    wire::FrameType type = wire::FrameType::kHello;
    std::vector<std::uint8_t> bytes;
    std::uint16_t src_port = 0;
  };

  /// Sends one already-encoded frame from p's socket to 127.0.0.1:port.
  void send_control(ProcessId p, std::uint16_t port,
                    const std::vector<std::uint8_t>& frame);
  /// Moves p's queued control frames into *out (appended); pumps the
  /// socket first.
  std::size_t take_control(ProcessId p, std::vector<ControlMsg>* out);

  // --- observability -----------------------------------------------------

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t expired = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t held_out_of_order = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t shim_dropped = 0;
    std::uint64_t shim_duplicated = 0;
    std::uint64_t shim_reordered = 0;
  };
  Stats stats() const;

  /// Submitted envelopes whose fate is still open — neither released into
  /// a pending inbox nor discarded at a closed one. Only meaningful when
  /// every endpoint is hosted locally; the tests' settle predicate.
  std::size_t unsettled() const {
    const std::uint64_t submitted =
        submitted_.load(std::memory_order_acquire);
    const std::uint64_t settled = settled_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(submitted - settled);
  }

 private:
  struct TxFrame {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes;
    Time next_retx = 0;
    int retx = 0;
    bool expired = false;
  };

  /// Outbound state for one (this endpoint -> destination) link.
  struct LinkTx {
    std::uint64_t next_seq = 1;
    Time stamp_floor = 0;
    std::vector<TxFrame> unacked;  // seq ascending
    std::vector<Envelope> batch;   // staged, same tick
    Time batch_tick = 0;
    std::size_t batch_bytes = 0;
  };

  struct RxFrame {
    std::uint64_t seq = 0;
    std::vector<Envelope> envelopes;
  };

  /// Inbound reassembly for one (sender -> this endpoint) link.
  struct LinkRx {
    std::uint64_t next_seq = 1;
    std::vector<RxFrame> held;  // out-of-order, seq ascending
  };

  struct Endpoint {
    Endpoint(ProcessId pid_in, std::size_t n, std::uint64_t fault_seed)
        : pid(pid_in),
          release_floor(n, 0),
          tx(n),
          rx(n),
          fault_rng(fault_seed) {}

    const ProcessId pid;
    int fd = -1;
    std::uint16_t port = 0;

    Mutex mu;
    std::vector<Envelope> pending AG_GUARDED_BY(mu);
    std::vector<Time> release_floor AG_GUARDED_BY(mu);
    Time last_drain_tick AG_GUARDED_BY(mu) = 0;
    bool drained_once AG_GUARDED_BY(mu) = false;
    bool closed AG_GUARDED_BY(mu) = false;
    std::vector<LinkTx> tx AG_GUARDED_BY(mu);
    std::vector<LinkRx> rx AG_GUARDED_BY(mu);
    std::vector<ControlMsg> control AG_GUARDED_BY(mu);
    Xoshiro256SS fault_rng AG_GUARDED_BY(mu);
    /// Shim-held datagrams awaiting the next outbound send.
    std::vector<std::pair<sockaddr_in, std::vector<std::uint8_t>>> reordered
        AG_GUARDED_BY(mu);
  };

  Endpoint* endpoint(ProcessId p) const;
  sockaddr_in peer_addr(ProcessId p) const;

  void send_datagram(Endpoint& ep, const sockaddr_in& to,
                     const std::vector<std::uint8_t>& bytes, bool shimmable)
      AG_REQUIRES(ep.mu);
  void pump(Endpoint& ep, Time now) AG_REQUIRES(ep.mu);
  void handle_data(Endpoint& ep, wire::DataFrame frame, const sockaddr_in& src)
      AG_REQUIRES(ep.mu);
  void handle_ack(Endpoint& ep, const wire::AckFrame& ack) AG_REQUIRES(ep.mu);
  void release_frame(Endpoint& ep, RxFrame frame) AG_REQUIRES(ep.mu);
  void flush_link(Endpoint& ep, ProcessId to, Time now) AG_REQUIRES(ep.mu);
  void flush_all(Endpoint& ep, Time now) AG_REQUIRES(ep.mu);
  void retransmit(Endpoint& ep, Time now) AG_REQUIRES(ep.mu);

  const UdpTransportConfig config_;
  /// index by pid; nullptr for endpoints hosted elsewhere.
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  mutable Mutex peers_mu_;
  std::vector<std::uint16_t> peer_port_ AG_GUARDED_BY(peers_mu_);

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> settled_{0};
  std::atomic<std::uint64_t> discard_reap_{0};

  /// Monotone counters, relaxed: stats() is a monitoring snapshot, not a
  /// synchronization point.
  struct AtomicStats {
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> acks_sent{0};
    std::atomic<std::uint64_t> duplicates_dropped{0};
    std::atomic<std::uint64_t> held_out_of_order{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> shim_dropped{0};
    std::atomic<std::uint64_t> shim_duplicated{0};
    std::atomic<std::uint64_t> shim_reordered{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace asyncgossip
