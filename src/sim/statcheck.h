// Statistical w.h.p. bound checking.
//
// The paper's Table 1 rows are one-sided envelopes that hold with high
// probability: completion time and message counts stay below C * g(n, f, d,
// delta) for some constant C and a claimed shape g. A single run can only
// witness one sample, so the checker works on *trial batches*: for each
// (algorithm x parameter) cell it takes the configured quantile of the
// observed values, normalizes by the claimed shape, and compares against a
// constant C fitted from designated calibration cells (smallest n) times a
// slack factor. A cell fails exactly when its normalized quantile exceeds
// the fitted constant — i.e. when the observations grow *faster* than the
// claimed envelope, which is the failure mode a wrong w.h.p. claim
// produces. Results export as "asyncgossip-statcheck-v1" JSON.
//
// Layering: this module is pure statistics + JSON; the gossip driver that
// builds cells from GossipSpec grids and runs the trial batches through the
// parallel SweepRunner lives in gossip/fuzz_harness.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace asyncgossip {

/// One (algorithm x parameters x metric) cell of a bound check.
struct StatCell {
  /// Constant-fitting group; cells with equal `group` share the fitted C
  /// (typically "algorithm:metric").
  std::string group;
  /// Human-readable cell identity, e.g. "ears/n:64/f:16/d:2/delta:2".
  std::string label;
  /// Which observable the samples measure, e.g. "time" or "messages".
  std::string metric;
  /// Claimed envelope shape g(n, f, d, delta) evaluated at this cell's
  /// parameters, constant-free. Must be > 0.
  double envelope = 1.0;
  /// Calibration cells fit the group constant and always pass; every group
  /// needs at least one.
  bool calibration = false;
  /// Observed values across the cell's trials (one per seed).
  std::vector<double> samples;
};

struct StatCheckConfig {
  /// Order statistic compared against the bound (0 < quantile <= 1).
  /// 1.0 = the per-cell maximum.
  double quantile = 0.9;
  /// Fitted constant = slack * max over the group's calibration cells of
  /// quantile(samples) / envelope. Slack > 1 absorbs the constant's own
  /// sampling noise; the check stays one-sided and shape-sensitive.
  double slack = 2.0;
};

/// One checked cell with its verdict.
struct StatCellVerdict {
  std::string group;
  std::string label;
  std::string metric;
  std::size_t trials = 0;
  double envelope = 0.0;
  /// quantile(samples).
  double quantile_value = 0.0;
  /// quantile_value / envelope — the normalized observation.
  double ratio = 0.0;
  /// The group's fitted constant C.
  double constant = 0.0;
  /// C * envelope — the value the quantile must stay below.
  double bound = 0.0;
  bool calibration = false;
  bool pass = false;
};

struct StatReport {
  double quantile = 0.0;
  double slack = 0.0;
  std::uint64_t total_trials = 0;
  std::vector<StatCellVerdict> cells;
  bool ok() const {
    for (const StatCellVerdict& c : cells)
      if (!c.pass) return false;
    return true;
  }
  /// One line per failing cell; "" when ok().
  std::string summary() const;
};

/// Empirical quantile (nearest-rank on the sorted sample): the smallest
/// observation v such that at least ceil(q * count) observations are <= v.
/// Throws ApiError on an empty sample or q outside (0, 1].
double sample_quantile(std::vector<double> sample, double q);

/// Runs the check. Throws ApiError when a group has no calibration cell, a
/// cell has no samples, or an envelope is not positive.
StatReport check_bounds(const std::vector<StatCell>& cells,
                        const StatCheckConfig& config);

/// Writes the "asyncgossip-statcheck-v1" JSON document. `run_info` carries
/// caller context (tool name, algorithm list, seed, ...) echoed verbatim
/// into the "run" object.
void write_statcheck_json(
    std::ostream& os, const StatReport& report,
    const std::vector<std::pair<std::string, std::string>>& run_info);

}  // namespace asyncgossip
