// Sharded-stepping invariance suite (EngineConfig::jobs): the engine
// promises that every observable of a run — trace hash, every Metrics
// field, the observer event stream, the probe stream — is bit-identical
// for every jobs value. A 32-spec grid mixing algorithms, sizes and seeds
// is run at jobs = 1 (serial), 2 and 8 and compared field by field.
//
// These tests carry the "EngineJobs" prefix so the nightly TSan run picks
// them up (.github/workflows/ci.yml filters on Rt|Sweep|Flight|EngineJobs):
// under TSan they double as a race check over the worker-phase snapshot
// discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "gossip/harness.h"
#include "sim/engine.h"
#include "sim/shard_pool.h"

namespace asyncgossip {
namespace {

/// Record of one observer callback, comparable across runs.
struct ObservedEvent {
  char kind;  // 's'tep, 'd'elivery, 'S'end, 'c'rash
  Time time;
  std::uint64_t a;
  std::uint64_t b;

  bool operator==(const ObservedEvent& o) const {
    return kind == o.kind && time == o.time && a == o.a && b == o.b;
  }
};

class RecordingObserver final : public EngineObserver {
 public:
  void on_step(Time now, ProcessId p) override {
    events.push_back({'s', now, p, 0});
  }
  void on_send(const Envelope& env) override {
    events.push_back({'S', env.send_time, env.id,
                      (static_cast<std::uint64_t>(env.to) << 32) | env.from});
  }
  void on_delivery(const Envelope& env, Time now) override {
    events.push_back({'d', now, env.id, env.to});
  }
  void on_crash(Time now, ProcessId p) override {
    events.push_back({'c', now, p, 0});
  }

  std::vector<ObservedEvent> events;
};

class RecordingSink final : public ProbeSink {
 public:
  void on_phase(Time now, ProcessId p, const char* phase) override {
    probes.emplace_back(now, p, std::string("phase:") + phase);
  }
  void on_state(Time now, ProcessId p, std::uint64_t known,
                std::uint64_t informed) override {
    probes.emplace_back(now, p,
                        "state:" + std::to_string(known) + "/" +
                            std::to_string(informed));
  }

  std::vector<std::tuple<Time, ProcessId, std::string>> probes;
};

struct RunResult {
  std::uint64_t trace_hash;
  std::uint64_t messages_sent, bytes_sent, messages_delivered;
  std::uint64_t local_steps, crashes;
  Time realized_d, realized_delta, last_send_time;
  std::size_t max_in_flight;
  std::vector<std::uint64_t> per_process_sent, per_process_received;
  std::vector<ObservedEvent> events;
  std::vector<std::tuple<Time, ProcessId, std::string>> probes;
};

RunResult run_spec_with_jobs(GossipSpec spec, std::size_t jobs, Time steps) {
  spec.engine_jobs = jobs;
  Engine engine = make_gossip_engine(spec);
  RecordingObserver observer;
  RecordingSink sink;
  engine.add_observer(&observer);
  engine.set_probe_sink(&sink);
  engine.run(steps);
  const Metrics& m = engine.metrics();
  RunResult r;
  r.trace_hash = engine.trace_hash();
  r.messages_sent = m.messages_sent();
  r.bytes_sent = m.bytes_sent();
  r.messages_delivered = m.messages_delivered();
  r.local_steps = m.local_steps();
  r.crashes = m.crashes();
  r.realized_d = m.realized_d();
  r.realized_delta = m.realized_delta();
  r.last_send_time = m.last_send_time();
  r.max_in_flight = m.max_in_flight();
  r.per_process_sent = m.per_process_sent();
  r.per_process_received = m.per_process_received();
  r.events = std::move(observer.events);
  r.probes = std::move(sink.probes);
  return r;
}

void expect_identical(const RunResult& serial, const RunResult& sharded,
                      const std::string& label) {
  EXPECT_EQ(serial.trace_hash, sharded.trace_hash) << label;
  EXPECT_EQ(serial.messages_sent, sharded.messages_sent) << label;
  EXPECT_EQ(serial.bytes_sent, sharded.bytes_sent) << label;
  EXPECT_EQ(serial.messages_delivered, sharded.messages_delivered) << label;
  EXPECT_EQ(serial.local_steps, sharded.local_steps) << label;
  EXPECT_EQ(serial.crashes, sharded.crashes) << label;
  EXPECT_EQ(serial.realized_d, sharded.realized_d) << label;
  EXPECT_EQ(serial.realized_delta, sharded.realized_delta) << label;
  EXPECT_EQ(serial.last_send_time, sharded.last_send_time) << label;
  EXPECT_EQ(serial.max_in_flight, sharded.max_in_flight) << label;
  EXPECT_EQ(serial.per_process_sent, sharded.per_process_sent) << label;
  EXPECT_EQ(serial.per_process_received, sharded.per_process_received)
      << label;
  EXPECT_EQ(serial.events == sharded.events, true)
      << label << ": observer event streams diverge";
  EXPECT_EQ(serial.probes == sharded.probes, true)
      << label << ": probe streams diverge";
}

/// The same 32-spec grid shape the sweep determinism test uses: 4 algorithms
/// x 2 sizes x 4 seeds under a staggered schedule with uniform delays.
std::vector<GossipSpec> grid32() {
  std::vector<GossipSpec> specs;
  const GossipAlgorithm algs[] = {
      GossipAlgorithm::kTrivial, GossipAlgorithm::kEars, GossipAlgorithm::kLazy,
      GossipAlgorithm::kRoundRobin};
  for (GossipAlgorithm alg : algs) {
    for (std::size_t n : {std::size_t{24}, std::size_t{40}}) {
      for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
        GossipSpec spec;
        spec.algorithm = alg;
        spec.n = n;
        spec.f = n / 4;
        spec.d = 3;
        spec.delta = 2;
        spec.seed = seed;
        spec.schedule = SchedulePattern::kStaggered;
        spec.delay = DelayPattern::kUniform;
        specs.push_back(spec);
      }
    }
  }
  EXPECT_EQ(specs.size(), 32u);
  return specs;
}

TEST(EngineJobs, BitIdenticalAcrossWorkerCountsOn32SpecGrid) {
  constexpr Time kSteps = 96;
  for (const GossipSpec& spec : grid32()) {
    const std::string label =
        spec_label(spec) + "/seed:" + std::to_string(spec.seed);
    const RunResult serial = run_spec_with_jobs(spec, 1, kSteps);
    expect_identical(serial, run_spec_with_jobs(spec, 2, kSteps),
                     label + " jobs 1 vs 2");
    expect_identical(serial, run_spec_with_jobs(spec, 8, kSteps),
                     label + " jobs 1 vs 8");
  }
}

TEST(EngineJobs, HostileShapesStayIdentical) {
  // Straggler scheduling + bimodal delays + crashes: maximal due-bucket
  // spans and mid-run mailbox voiding, the cases where the snapshot-step
  // argument has the most to prove.
  for (const std::uint64_t seed : {7ULL, 98765ULL}) {
    GossipSpec spec;
    spec.algorithm = GossipAlgorithm::kTears;
    spec.n = 48;
    spec.f = 12;
    spec.d = 7;
    spec.delta = 5;
    spec.seed = seed;
    spec.schedule = SchedulePattern::kStraggler;
    spec.delay = DelayPattern::kBimodal;
    const std::string label = "tears/seed:" + std::to_string(seed);
    const RunResult serial = run_spec_with_jobs(spec, 1, 160);
    expect_identical(serial, run_spec_with_jobs(spec, 4, 160),
                     label + " jobs 1 vs 4");
  }
}

TEST(EngineJobs, JobsZeroResolvesToHardwareConcurrencyAndStaysIdentical) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 32;
  spec.f = 8;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.delay = DelayPattern::kUniform;
  const RunResult serial = run_spec_with_jobs(spec, 1, 96);
  expect_identical(serial, run_spec_with_jobs(spec, 0, 96), "jobs 1 vs 0");
}

TEST(EngineJobs, OutcomeMatchesThroughTheHarness) {
  // End to end through run_gossip_spec: completion time, message counts and
  // checks must not depend on the worker count.
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 40;
  spec.f = 10;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.delay = DelayPattern::kUniform;
  spec.engine_jobs = 1;
  const GossipOutcome serial = run_gossip_spec(spec);
  spec.engine_jobs = 4;
  const GossipOutcome sharded = run_gossip_spec(spec);
  EXPECT_EQ(serial.completed, sharded.completed);
  EXPECT_EQ(serial.completion_time, sharded.completion_time);
  EXPECT_EQ(serial.messages, sharded.messages);
  EXPECT_EQ(serial.bytes, sharded.bytes);
  EXPECT_EQ(serial.gathering_ok, sharded.gathering_ok);
  EXPECT_EQ(serial.majority_ok, sharded.majority_ok);
  EXPECT_EQ(serial.alive, sharded.alive);
}

// --- ShardPool unit tests (same TSan net: names keep the EngineJobs prefix)

TEST(EngineJobsPool, RunsEveryIndexOnceAcrossManyGenerations) {
  ShardPool pool(3);
  for (int round = 0; round < 50; ++round) {
    constexpr std::size_t kCount = 67;
    std::vector<std::atomic<int>> hits(kCount);
    pool.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
  }
}

TEST(EngineJobsPool, ZeroCountReturnsImmediately) {
  ShardPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "task ran for an empty batch"; });
}

TEST(EngineJobsPool, LowestIndexExceptionWinsAndPoolSurvives) {
  ShardPool pool(4);
  try {
    pool.run(40, [](std::size_t i) {
      if (i == 9 || i == 23 || i == 31)
        throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 9");
  }
  // The pool must stay usable after a failed batch.
  std::atomic<int> total{0};
  pool.run(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

}  // namespace
}  // namespace asyncgossip
