// TEARS — Two-hop Epidemic Asynchronous Rumor Spreading (paper Section 5,
// Figure 3). Solves *majority gossip* for f < n/2: every correct process
// eventually holds a majority of all rumors, in O(d + delta) time with
// O(n^{7/4} log^2 n) messages — the message bound is independent of d, delta.
//
// Protocol: each process p pre-selects random sets Pi1(p), Pi2(p) (each
// other process included independently with probability a/n). In its first
// local step p sends <{r_p}, flag-up> to all of Pi1(p) ("first-level"
// messages). Thereafter p counts received flag-up messages; whenever the
// count enters the band [mu - kappa, mu + kappa) or hits mu + i*kappa for a
// positive integer i, p sends its gathered rumor set to all of Pi2(p)
// ("second-level" messages, flag down).
//
// Paper parameters: a = 4 sqrt(n) log n, mu = a/2, kappa = 8 n^{1/4} log n
// (log base 2). The multipliers are configurable: the paper's constants are
// tuned for the w.h.p. proofs at very large n, and at the n a simulation can
// reach, a would exceed n (all sets degenerate to "everyone"); benches use
// scaled-down multipliers and EXPERIMENTS.md documents the scaling.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitset.h"
#include "common/rng.h"
#include "gossip/rumor.h"

namespace asyncgossip {

struct TearsConfig {
  std::size_t n = 0;
  /// Multiplier for a = a_constant * sqrt(n) * log2(n). Paper: 4.
  double a_constant = 4.0;
  /// Multiplier for kappa = kappa_constant * n^{1/4} * log2(n). Paper: 8.
  double kappa_constant = 8.0;
  std::uint64_t seed = 1;

  /// Derived parameters (filled by finalize()).
  std::size_t a = 0;
  std::size_t mu = 0;
  std::size_t kappa = 0;

  /// Computes a, mu, kappa from n and the multipliers (clamping a to n-1
  /// and everything to >= 1).
  void finalize();
};

struct TearsPayload final : Payload {
  DynamicBitset rumors;
  bool flag_up = false;

  /// Theta(n) bits: the rumor set plus the flag.
  std::size_t byte_size() const override { return rumors.byte_size() + 1; }
};

class TearsProcess final : public GossipProcess {
 public:
  TearsProcess(ProcessId id, TearsConfig config);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;

  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }
  const DynamicBitset& rumors() const override { return rumors_; }
  bool quiescent() const override { return steps_taken_ > 0; }
  std::uint64_t local_steps() const override { return steps_taken_; }

  // Introspection for tests and the Lemma 8-11 bench.
  const TearsConfig& config() const { return config_; }
  const std::vector<ProcessId>& pi1() const { return pi1_; }
  const std::vector<ProcessId>& pi2() const { return pi2_; }
  std::uint64_t up_messages_received() const { return up_msg_cnt_; }
  std::uint64_t second_level_batches_sent() const { return bcasts_sent_; }
  std::uint64_t messages_sent_last_step() const { return sent_last_step_; }

 private:
  bool broadcast_trigger_crossed(std::uint64_t before,
                                 std::uint64_t after) const;

  ProcessId id_;
  TearsConfig config_;
  Xoshiro256SS rng_;
  DynamicBitset rumors_;
  std::vector<ProcessId> pi1_;
  std::vector<ProcessId> pi2_;
  std::uint64_t up_msg_cnt_ = 0;
  std::uint64_t steps_taken_ = 0;
  std::uint64_t bcasts_sent_ = 0;
  std::uint64_t sent_last_step_ = 0;
};

}  // namespace asyncgossip
