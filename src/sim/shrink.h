// Greedy failing-case shrinking for fuzz counterexamples.
//
// A raw fuzz failure is reproducible but rarely *readable*: n = 48 with 19
// crashes over a bimodal network obscures which ingredient matters. The
// shrinker repeatedly proposes simpler variants of the failing case — drop
// the crashes, shrink n, flatten the delay and schedule patterns,
// canonicalize the seed — and keeps a variant iff the oracle still fails on
// it. The result is a local minimum: no single simplification below it
// still fails. Like everything else in the repo, the procedure is
// deterministic — candidates are tried in a fixed order, so the same
// (case, oracle) pair always shrinks to the same minimum.
//
// The shrinker accepts a candidate on *any* oracle failure, not only the
// original failure string: a simpler case that fails differently is still a
// bug, and chasing it keeps shrinking monotone.
#pragma once

#include <cstddef>

#include "sim/fuzz.h"

namespace asyncgossip {

struct ShrinkOptions {
  /// Cap on oracle invocations across the whole shrink.
  std::size_t max_attempts = 500;
};

struct ShrinkResult {
  /// The minimal failing case found (== the input case when nothing
  /// simpler fails).
  FuzzCase minimal;
  /// The oracle's verdict on `minimal` (always a failure).
  FuzzVerdict verdict;
  /// Oracle invocations spent.
  std::size_t attempts = 0;
  /// Greedy passes over the transformation list until a fixpoint.
  std::size_t rounds = 0;
};

/// Greedily shrinks `failing` (whose oracle verdict is `verdict`, not ok)
/// to a locally minimal failing case.
ShrinkResult shrink_case(const FuzzCase& failing, const FuzzVerdict& verdict,
                         const FuzzOracle& oracle,
                         const ShrinkOptions& options = {});

}  // namespace asyncgossip
