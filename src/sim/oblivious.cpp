#include "sim/oblivious.h"

#include <algorithm>

#include "common/assert.h"

namespace asyncgossip {

const char* to_string(SchedulePattern pattern) {
  switch (pattern) {
    case SchedulePattern::kLockStep:
      return "lockstep";
    case SchedulePattern::kStaggered:
      return "staggered";
    case SchedulePattern::kRandomSubset:
      return "random";
    case SchedulePattern::kRotating:
      return "rotating";
    case SchedulePattern::kStraggler:
      return "straggler";
  }
  return "?";
}

const char* to_string(DelayPattern pattern) {
  switch (pattern) {
    case DelayPattern::kUnitDelay:
      return "unit";
    case DelayPattern::kMaxDelay:
      return "max";
    case DelayPattern::kUniform:
      return "uniform";
    case DelayPattern::kBimodal:
      return "bimodal";
    case DelayPattern::kTargetedSlow:
      return "targeted";
  }
  return "?";
}

bool schedule_from_string(const std::string& name, SchedulePattern* out) {
  if (name == "lockstep") *out = SchedulePattern::kLockStep;
  else if (name == "staggered") *out = SchedulePattern::kStaggered;
  else if (name == "random") *out = SchedulePattern::kRandomSubset;
  else if (name == "rotating") *out = SchedulePattern::kRotating;
  else if (name == "straggler") *out = SchedulePattern::kStraggler;
  else return false;
  return true;
}

bool delay_from_string(const std::string& name, DelayPattern* out) {
  if (name == "unit") *out = DelayPattern::kUnitDelay;
  else if (name == "max") *out = DelayPattern::kMaxDelay;
  else if (name == "uniform") *out = DelayPattern::kUniform;
  else if (name == "bimodal") *out = DelayPattern::kBimodal;
  else if (name == "targeted") *out = DelayPattern::kTargetedSlow;
  else return false;
  return true;
}

CrashPlan no_crashes() { return {}; }

CrashPlan random_crashes(std::size_t n, std::size_t f, Time horizon,
                         std::uint64_t seed) {
  AG_ASSERT_MSG(f < n, "crash plan needs f < n");
  Xoshiro256SS rng(seed ^ 0xCAFEBABEULL);
  CrashPlan plan;
  const auto victims = rng.sample_without_replacement(n, f);
  plan.reserve(f);
  for (std::uint64_t v : victims) {
    const Time when = horizon == 0 ? 0 : rng.uniform(horizon);
    plan.emplace_back(when, static_cast<ProcessId>(v));
  }
  return plan;
}

CrashPlan burst_crashes(std::size_t n, std::size_t f, Time when,
                        std::uint64_t seed) {
  AG_ASSERT_MSG(f < n, "crash plan needs f < n");
  Xoshiro256SS rng(seed ^ 0xB00B00ULL);
  CrashPlan plan;
  for (std::uint64_t v : rng.sample_without_replacement(n, f))
    plan.emplace_back(when, static_cast<ProcessId>(v));
  return plan;
}

CrashPlan staggered_suffix_crashes(std::size_t n, std::size_t f,
                                   Time horizon) {
  AG_ASSERT_MSG(f < n, "crash plan needs f < n");
  CrashPlan plan;
  for (std::size_t i = 0; i < f; ++i) {
    const Time when = horizon == 0 ? 0 : (horizon * i) / (f == 0 ? 1 : f);
    plan.emplace_back(when, static_cast<ProcessId>(n - 1 - i));
  }
  return plan;
}

ObliviousAdversary::ObliviousAdversary(ObliviousConfig config)
    : config_(std::move(config)),
      schedule_rng_(config_.seed ^ 0x5C4ED0000ULL),
      delay_rng_(config_.seed ^ 0xDE1A0000ULL),
      rotate_width_(0),
      sorted_plan_(config_.crash_plan) {
  AG_ASSERT_MSG(config_.n > 0, "oblivious adversary needs n > 0");
  AG_ASSERT_MSG(config_.d >= 1 && config_.delta >= 1, "bounds must be >= 1");
  std::stable_sort(sorted_plan_.begin(), sorted_plan_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  if (config_.schedule == SchedulePattern::kStaggered) {
    periods_.resize(config_.n);
    phases_.resize(config_.n);
    for (std::size_t p = 0; p < config_.n; ++p) {
      periods_[p] = 1 + schedule_rng_.uniform(config_.delta);
      phases_[p] = schedule_rng_.uniform(periods_[p]);
    }
  }
  if (config_.schedule == SchedulePattern::kRotating) {
    rotate_width_ = std::max<std::size_t>(
        1, (config_.n + static_cast<std::size_t>(config_.delta) - 1) /
               static_cast<std::size_t>(config_.delta));
  }
  if (config_.stragglers.empty()) {
    const std::size_t k = (config_.n + 7) / 8;
    for (std::size_t i = config_.n - k; i < config_.n; ++i)
      config_.stragglers.push_back(static_cast<ProcessId>(i));
  }
  if (config_.slow_targets.empty()) {
    const std::size_t k = (config_.n + 7) / 8;
    for (std::size_t i = config_.n - k; i < config_.n; ++i)
      config_.slow_targets.push_back(static_cast<ProcessId>(i));
  }
  straggler_set_.assign(config_.n, false);
  for (ProcessId p : config_.stragglers)
    if (p < config_.n) straggler_set_[p] = true;
  slow_set_.assign(config_.n, false);
  for (ProcessId p : config_.slow_targets)
    if (p < config_.n) slow_set_[p] = true;
}

StepDecision ObliviousAdversary::decide_oblivious(Time now) {
  StepDecision d;
  while (crash_cursor_ < sorted_plan_.size() &&
         sorted_plan_[crash_cursor_].first <= now) {
    d.crash.push_back(sorted_plan_[crash_cursor_].second);
    ++crash_cursor_;
  }
  switch (config_.schedule) {
    case SchedulePattern::kLockStep:
      d.schedule.reserve(config_.n);
      for (std::size_t p = 0; p < config_.n; ++p)
        d.schedule.push_back(static_cast<ProcessId>(p));
      break;
    case SchedulePattern::kStaggered:
      d.schedule.reserve(config_.n);
      for (std::size_t p = 0; p < config_.n; ++p)
        if ((now + phases_[p]) % periods_[p] == 0)
          d.schedule.push_back(static_cast<ProcessId>(p));
      break;
    case SchedulePattern::kRandomSubset:
      d.schedule.reserve(config_.n);
      for (std::size_t p = 0; p < config_.n; ++p)
        if (schedule_rng_.bernoulli(0.5))
          d.schedule.push_back(static_cast<ProcessId>(p));
      break;
    case SchedulePattern::kRotating: {
      const std::size_t start =
          (static_cast<std::size_t>(now) * rotate_width_) % config_.n;
      d.schedule.reserve(rotate_width_);
      for (std::size_t i = 0; i < rotate_width_; ++i)
        d.schedule.push_back(
            static_cast<ProcessId>((start + i) % config_.n));
      break;
    }
    case SchedulePattern::kStraggler:
      d.schedule.reserve(config_.n);
      for (std::size_t p = 0; p < config_.n; ++p) {
        if (!straggler_set_[p] || now % config_.delta == config_.delta - 1)
          d.schedule.push_back(static_cast<ProcessId>(p));
      }
      break;
  }
  return d;
}

Time ObliviousAdversary::delay_oblivious(MessageId /*ordinal*/,
                                          ProcessId to) {
  switch (config_.delay) {
    case DelayPattern::kUnitDelay:
      return 1;
    case DelayPattern::kMaxDelay:
      return config_.d;
    case DelayPattern::kUniform:
      return 1 + delay_rng_.uniform(config_.d);
    case DelayPattern::kBimodal:
      return delay_rng_.bernoulli(0.9) ? 1 : config_.d;
    case DelayPattern::kTargetedSlow:
      return (to < config_.n && slow_set_[to]) ? config_.d : 1;
  }
  return 1;
}

std::unique_ptr<Adversary> make_standard_oblivious(std::size_t n, Time d,
                                                   Time delta, std::size_t f,
                                                   Time crash_horizon,
                                                   std::uint64_t seed) {
  ObliviousConfig cfg;
  cfg.n = n;
  cfg.d = d;
  cfg.delta = delta;
  cfg.schedule =
      delta == 1 ? SchedulePattern::kLockStep : SchedulePattern::kStaggered;
  cfg.delay = d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  cfg.crash_plan = random_crashes(n, f, crash_horizon, seed ^ 0xF417ULL);
  cfg.seed = seed;
  return std::make_unique<ObliviousAdversary>(cfg);
}

}  // namespace asyncgossip
