// Fault injection for the real-time runtime.
//
// Three fault classes, all inside the model's envelope so a faulty run is
// still a *legal* execution the auditor must accept:
//
//   * crash   — up to f processes stop permanently at a pre-drawn local
//               step; the dying step may transport only a prefix of its
//               sends (the paper's mid-step crash: "a process may crash
//               during a step, in which case a subset of its messages is
//               sent").
//   * stall   — a link-level delay spike of up to delta_target extra ticks
//               on a random subset of messages.
//   * drop    — a message "loss" realized as drop-then-retry: the retry
//               succeeds within one extra delivery round trip, so the
//               message arrives within d_target + delta_target extra
//               ticks. (The model has no true loss; a lossy link with
//               bounded retries is exactly a larger d.)
//
// Stall and drop only enlarge delivery delays, which the run's *realized*
// d absorbs (rt/driver.h); crashes consume the f budget the algorithms
// were built for. The whole plan is a pure function of (inject, n, f,
// seed), so a given seed always kills the same processes at the same
// local steps — the determinism anchor tests/test_rt.cpp leans on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/types.h"

namespace asyncgossip {

enum class RtInject : std::uint8_t {
  kNone,
  kCrash,
  kStall,
  kDrop,
  kAll,
};

const char* to_string(RtInject inject);
/// Inverse of to_string ("none", "crash", "stall", "drop", "all").
/// Returns false on an unknown name, leaving *out untouched.
bool rt_inject_from_string(const std::string& name, RtInject* out);

/// Immutable per-run fault schedule, drawn once from the seed.
struct FaultPlan {
  /// Local step at which each process crashes; kTimeMax = never.
  std::vector<std::uint64_t> crash_at_step;
  bool stall_links = false;
  bool drop_retry = false;
  double stall_probability = 0.05;
  double drop_probability = 0.02;
};

/// Draws the schedule: with crashes enabled, exactly f distinct victims
/// with crash steps uniform in [1, horizon].
FaultPlan make_fault_plan(RtInject inject, std::size_t n, std::size_t f,
                          std::uint64_t horizon, std::uint64_t seed);

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, Time d_target, Time delta_target);

  /// True iff p must crash while executing local step `local_step`.
  bool should_crash(ProcessId p, std::uint64_t local_step) const {
    return plan_.crash_at_step[p] <= local_step;
  }

  /// Extra delivery delay (in ticks) injected into one send; `rng` is the
  /// calling thread's own stream, so draws stay per-thread deterministic.
  Time extra_delay(Xoshiro256SS& rng) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Time d_target_;
  Time delta_target_;
};

}  // namespace asyncgossip
