// Consensus demo: commit/abort agreement over CR-tears — the paper's
// headline application (Section 6): the first asynchronous randomized
// consensus with constant time (w.r.t. n) and strictly subquadratic
// message complexity, here under a hostile-but-legal oblivious schedule.
//
//   $ ./consensus_demo [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "consensus/canetti_rabin.h"

using namespace asyncgossip;

namespace {

ConsensusOutcome run_one(ExchangeKind kind, std::size_t n,
                         std::uint64_t seed) {
  ConsensusSpec spec;
  spec.config.n = n;
  spec.config.f = n / 2 - 1;  // maximum tolerated minority of crashes
  spec.config.exchange = kind;
  spec.config.seed = seed;
  spec.config.tears_a_constant = 1.0;
  spec.config.tears_kappa_constant = 1.0;
  spec.d = 6;
  spec.delta = 4;
  spec.schedule = SchedulePattern::kStaggered;
  spec.delay = DelayPattern::kBimodal;
  spec.inputs = InputPattern::kHalfHalf;  // worst case: a split electorate
  spec.seed = seed;
  return run_consensus_spec(spec);
}

void report(const char* name, const ConsensusOutcome& o, std::size_t n) {
  std::printf(
      "%-10s decided=%s value=%s phase=%u  time=%llu steps  msgs=%llu "
      "(n^2=%zu)  agreement=%s validity=%s\n",
      name, o.all_decided ? "yes" : "NO",
      o.decided_value == 0 ? "abort" : "commit", o.decision_phase,
      static_cast<unsigned long long>(o.decision_time),
      static_cast<unsigned long long>(o.messages_at_decision), n * n,
      o.agreement ? "ok" : "VIOLATED", o.validity ? "ok" : "VIOLATED");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 18;

  std::printf(
      "binary consensus (commit/abort), n=%zu, f=%zu crash budget,\n"
      "split inputs, staggered speeds, bimodal delays, seed=%llu\n\n",
      n, n / 2 - 1, static_cast<unsigned long long>(seed));

  const ConsensusOutcome tears = run_one(ExchangeKind::kTears, n, seed);
  const ConsensusOutcome baseline = run_one(ExchangeKind::kAllToAll, n, seed);

  report("CR-tears", tears, n);
  report("CR", baseline, n);

  if (tears.all_decided && baseline.all_decided) {
    std::printf(
        "\nCR-tears used %.1f%% of the baseline's messages to decide.\n",
        100.0 * static_cast<double>(tears.messages_at_decision) /
            static_cast<double>(baseline.messages_at_decision));
  }
  return tears.all_decided && tears.agreement && tears.validity ? 0 : 1;
}
