#include "sim/telemetry.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace asyncgossip {

TelemetryCollector::TelemetryCollector(const TelemetryConfig& config)
    : config_(config),
      last_known_(config.n, 0),
      last_complete_(config.n, 0),
      hist_(static_cast<std::size_t>(config.d + config.delta), 0),
      pending_to_(config.n, 0),
      crashed_(config.n, false),
      per_process_(config.n) {
  if (config_.n == 0) throw ApiError("TelemetryCollector needs n >= 1");
  if (config_.d < 1 || config_.delta < 1)
    throw ApiError("telemetry bounds d and delta must be >= 1");
}

void TelemetryCollector::roll_to(Time now) {
  if (!any_activity_) {
    any_activity_ = true;
    open_step_ = now;
    return;
  }
  if (now <= open_step_) return;  // same step (or out-of-order event)
  // Step open_step_ is complete: sample the gauge where the engine does and
  // store a spread point if anything happened during it.
  max_in_flight_ = std::max(max_in_flight_, in_flight_);
  if (dirty_) push_sample(open_step_);
  dirty_ = false;
  open_step_ = now;
}

void TelemetryCollector::push_sample(Time time) {
  if (spread_.size() >= config_.max_samples) {
    ++samples_dropped_;
    return;
  }
  SpreadSample s;
  s.time = time;
  s.known_pairs = known_pairs_;
  s.full_processes = full_processes_;
  s.informed_pairs_complete = informed_pairs_complete_;
  s.in_flight = in_flight_;
  s.sent = sends_total_;
  s.delivered = deliveries_total_;
  spread_.push_back(std::move(s));
}

void TelemetryCollector::on_step(Time now, ProcessId p) {
  roll_to(now);
  if (p >= config_.n) return;
  ++steps_total_;
  ++per_process_[p].steps;
  dirty_ = true;
}

void TelemetryCollector::on_send(const Envelope& env) {
  roll_to(env.send_time);
  if (env.from >= config_.n || env.to >= config_.n) return;
  ++sends_total_;
  ++per_process_[env.from].sends;
  // A send to an already-crashed destination never enters the network.
  if (!crashed_[env.to]) {
    ++pending_to_[env.to];
    ++in_flight_;
  }
  dirty_ = true;
}

void TelemetryCollector::on_delivery(const Envelope& env, Time now) {
  roll_to(now);
  if (env.to >= config_.n) return;
  ++deliveries_total_;
  ++per_process_[env.to].deliveries;
  if (pending_to_[env.to] > 0) {
    --pending_to_[env.to];
    --in_flight_;
  }
  const Time latency = now > env.send_time ? now - env.send_time : 0;
  if (latency >= 1 && latency <= config_.d + config_.delta - 1) {
    ++hist_[static_cast<std::size_t>(latency)];
  } else {
    ++hist_overflow_;  // impossible in a model-conforming execution
  }
  latency_sum_ += latency;
  latency_sq_sum_ += static_cast<double>(latency) * static_cast<double>(latency);
  latency_max_ = std::max(latency_max_, latency);
  dirty_ = true;
}

void TelemetryCollector::on_crash(Time now, ProcessId p) {
  roll_to(now);
  if (p >= config_.n || crashed_[p]) return;
  crashed_[p] = true;
  ++crashes_total_;
  per_process_[p].crashed = true;
  per_process_[p].crash_time = now;
  // A crash voids the victim's pending messages.
  in_flight_ -= std::min<std::uint64_t>(in_flight_, pending_to_[p]);
  pending_to_[p] = 0;
  dirty_ = true;
}

void TelemetryCollector::on_phase(Time now, ProcessId p, const char* phase) {
  roll_to(now);
  if (phases_.size() >= config_.max_phase_markers) {
    ++phases_dropped_;
    return;
  }
  phases_.push_back(PhaseMarker{now, p, phase != nullptr ? phase : ""});
}

void TelemetryCollector::on_state(Time now, ProcessId p,
                                  std::uint64_t rumors_known,
                                  std::uint64_t rumors_fully_informed) {
  roll_to(now);
  if (p >= config_.n) return;
  const std::uint64_t n = config_.n;
  // Deltas may be applied in any order; unsigned wraparound cancels even if
  // a (non-monotone) algorithm reported a shrinking set.
  known_pairs_ += rumors_known - last_known_[p];
  if (last_known_[p] != n && rumors_known == n) ++full_processes_;
  if (last_known_[p] == n && rumors_known != n) --full_processes_;
  informed_pairs_complete_ += rumors_fully_informed - last_complete_[p];
  last_known_[p] = rumors_known;
  last_complete_[p] = rumors_fully_informed;
  dirty_ = true;
}

void TelemetryCollector::finalize(Time end_time) {
  max_in_flight_ = std::max(max_in_flight_, in_flight_);
  if (any_activity_ && dirty_) push_sample(open_step_);
  dirty_ = false;
  end_time_ = end_time;
  finalized_ = true;
}

Summary TelemetryCollector::latency_summary() const {
  Summary s;
  std::uint64_t counted = hist_overflow_;
  for (std::size_t k = 1; k < hist_.size(); ++k) counted += hist_[k];
  s.count = static_cast<std::size_t>(counted);
  if (counted == 0) return s;
  const double cnt = static_cast<double>(counted);
  s.mean = static_cast<double>(latency_sum_) / cnt;
  if (counted > 1) {
    const double var =
        (latency_sq_sum_ - cnt * s.mean * s.mean) / (cnt - 1.0);
    s.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  s.max = static_cast<double>(latency_max_);
  s.min = s.max;
  for (std::size_t k = 1; k < hist_.size(); ++k) {
    if (hist_[k] > 0) {
      s.min = static_cast<double>(k);
      break;
    }
  }
  // Median from the exact bucket counts; overflow latencies (> d) sit at
  // the top of the order, so walking buckets low-to-high is exact as long
  // as the median itself lies within [1, d].
  const std::uint64_t mid = (counted - 1) / 2;
  std::uint64_t cum = 0;
  s.median = static_cast<double>(latency_max_);
  for (std::size_t k = 1; k < hist_.size(); ++k) {
    cum += hist_[k];
    if (cum > mid) {
      if (counted % 2 == 1 || cum > mid + 1) {
        s.median = static_cast<double>(k);
      } else {
        // Even count with the midpoint straddling this bucket's boundary.
        std::size_t next = k + 1;
        while (next < hist_.size() && hist_[next] == 0) ++next;
        const double upper = next < hist_.size()
                                 ? static_cast<double>(next)
                                 : static_cast<double>(latency_max_);
        s.median = (static_cast<double>(k) + upper) / 2.0;
      }
      break;
    }
  }
  return s;
}

double TelemetryCollector::informed_fraction() const {
  const double nn =
      static_cast<double>(config_.n) * static_cast<double>(config_.n);
  return static_cast<double>(known_pairs_) / nn;
}

void TelemetryCollector::clear() {
  std::fill(last_known_.begin(), last_known_.end(), 0);
  std::fill(last_complete_.begin(), last_complete_.end(), 0);
  known_pairs_ = 0;
  full_processes_ = 0;
  informed_pairs_complete_ = 0;
  spread_.clear();
  samples_dropped_ = 0;
  open_step_ = 0;
  any_activity_ = false;
  dirty_ = false;
  std::fill(hist_.begin(), hist_.end(), 0);
  hist_overflow_ = 0;
  latency_sum_ = 0;
  latency_sq_sum_ = 0.0;
  latency_max_ = 0;
  std::fill(pending_to_.begin(), pending_to_.end(), 0);
  std::fill(crashed_.begin(), crashed_.end(), false);
  in_flight_ = 0;
  max_in_flight_ = 0;
  sends_total_ = 0;
  deliveries_total_ = 0;
  steps_total_ = 0;
  crashes_total_ = 0;
  per_process_.assign(config_.n, ProcessTelemetry{});
  phases_.clear();
  phases_dropped_ = 0;
  end_time_ = 0;
  finalized_ = false;
}

}  // namespace asyncgossip
