// FunctionRef: a non-owning, trivially copyable reference to a callable —
// two words (object pointer + thunk), no allocation, no virtual dispatch
// beyond one indirect call.
//
// The engine's hot-path callback seams (Engine::for_each_pending, the
// run_until predicate, the shard pool's task body) take FunctionRef instead
// of std::function: std::function type-erases by potentially heap-
// allocating the target and always carries vtable-equivalent machinery,
// which is measurable on observer-heavy runs that visit every pending
// envelope. A FunctionRef is valid only for as long as the referenced
// callable is alive, which every engine seam satisfies trivially (the
// callable outlives the call it is passed to) — never store one beyond the
// call that received it.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace asyncgossip {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable object with a compatible signature (lambda,
  /// functor). Intentionally implicit so call sites read like the
  /// std::function versions they replaced.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                !std::is_function_v<std::remove_reference_t<F>> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<std::remove_reference_t<F>>>(
              obj))(std::forward<Args>(args)...);
        }) {}

  /// Binds a plain function (run_until's completion predicates are function
  /// pointers). Separate overload because a function pointer is not an
  /// object pointer: static_cast to void* is ill-formed, so it round-trips
  /// through reinterpret_cast (conditionally-supported, guaranteed on every
  /// POSIX target this project builds for).
  template <typename R2, typename... A2,
            typename = std::enable_if_t<
                std::is_invocable_r_v<R, R2 (*)(A2...), Args...>>>
  FunctionRef(R2 (*f)(A2...))  // NOLINT(google-explicit-constructor)
      : obj_(reinterpret_cast<void*>(f)),
        call_([](void* obj, Args... args) -> R {
          return (reinterpret_cast<R2 (*)(A2...)>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace asyncgossip
