#include "sim/engine.h"

#include <algorithm>

namespace asyncgossip {

// ---------------------------------------------------------------------------
// EngineView
// ---------------------------------------------------------------------------

std::size_t EngineView::n() const { return engine_->n(); }
Time EngineView::now() const { return engine_->now(); }
bool EngineView::crashed(ProcessId p) const { return engine_->crashed(p); }
std::size_t EngineView::alive_count() const { return engine_->alive_count(); }
std::size_t EngineView::crash_budget_left() const {
  return engine_->config().max_crashes - engine_->crashes_so_far();
}
const Process& EngineView::process(ProcessId p) const {
  return engine_->process(p);
}
const Metrics& EngineView::metrics() const { return engine_->metrics(); }
std::size_t EngineView::in_flight_count() const {
  return engine_->in_flight_count();
}
std::vector<Envelope> EngineView::pending_for(ProcessId p) const {
  return engine_->pending_for(p);
}
std::size_t EngineView::pending_count(ProcessId p) const {
  return engine_->pending_count(p);
}
void EngineView::for_each_pending(
    ProcessId p, const std::function<bool(const Envelope&)>& fn) const {
  engine_->for_each_pending(p, fn);
}
std::uint64_t EngineView::local_steps_of(ProcessId p) const {
  return engine_->local_steps_of(p);
}
std::unique_ptr<Process> EngineView::fork_process(ProcessId p) const {
  return engine_->fork_process(p);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::vector<std::unique_ptr<Process>> processes,
               std::unique_ptr<Adversary> adversary, EngineConfig config)
    : config_(config),
      processes_(std::move(processes)),
      adversary_(std::move(adversary)),
      metrics_(processes_.size()),
      crashed_(processes_.size(), false),
      alive_count_(processes_.size()),
      wheel_width_(static_cast<std::size_t>(config.d + config.delta + 1)),
      wheel_(processes_.size() * wheel_width_),
      pending_count_(processes_.size(), 0),
      in_flight_total_(0),
      last_step_time_(processes_.size(), 0),
      stepped_once_(processes_.size(), false),
      local_steps_(processes_.size(), 0) {
  if (processes_.empty()) throw ApiError("Engine needs at least one process");
  for (const auto& p : processes_)
    if (p == nullptr) throw ApiError("null process");
  if (adversary_ == nullptr) throw ApiError("null adversary");
  if (config_.d < 1 || config_.delta < 1)
    throw ApiError("model bounds d and delta must be >= 1");
  if (config_.max_crashes >= processes_.size())
    throw ApiError("crash budget f must satisfy f < n");
  want_scratch_.resize(processes_.size(), 0);
  schedule_scratch_.reserve(processes_.size());
  outbox_scratch_.reserve(64);
  delivered_scratch_.reserve(64);
  due_buckets_.reserve(wheel_width_);
  merge_heads_.reserve(wheel_width_);
}

void Engine::run(Time steps) {
  for (Time i = 0; i < steps; ++i) advance_one_step();
}

bool Engine::run_until(const std::function<bool(const Engine&)>& done,
                       Time max_steps) {
  for (Time i = 0; i < max_steps; ++i) {
    if (done(*this)) return true;
    advance_one_step();
  }
  return done(*this);
}

std::vector<Envelope> Engine::pending_for(ProcessId p) const {
  std::vector<Envelope> out;
  out.reserve(pending_count_[p]);
  const std::size_t base = p * wheel_width_;
  for (std::size_t s = 0; s < wheel_width_; ++s)
    out.insert(out.end(), wheel_[base + s].begin(), wheel_[base + s].end());
  // Buckets are individually in send order; restore the global send order
  // (== the order of the monotone message ids) across buckets.
  std::sort(out.begin(), out.end(),
            [](const Envelope& a, const Envelope& b) { return a.id < b.id; });
  return out;
}

void Engine::for_each_pending(
    ProcessId p, const std::function<bool(const Envelope&)>& fn) const {
  const std::size_t base = p * wheel_width_;
  for (std::size_t s = 0; s < wheel_width_; ++s)
    for (const Envelope& env : wheel_[base + s])
      if (!fn(env)) return;
}

void Engine::hash_mix(std::uint64_t v) {
  trace_hash_ ^= v;
  trace_hash_ *= 0x100000001b3ULL;
}

void Engine::apply_crashes(const std::vector<ProcessId>& crash_list) {
  for (ProcessId p : crash_list) {
    AG_ASSERT_MSG(p < processes_.size(), "crash target out of range");
    if (crashed_[p]) continue;
    if (crashes_ + 1 > config_.max_crashes)
      throw ModelViolation("adversary exceeded crash budget f");
    crashed_[p] = true;
    ++crashes_;
    --alive_count_;
    metrics_.record_crash();
    for (EngineObserver* o : observers_) o->on_crash(now_, p);
    // A crashed process never steps again; its pending messages are moot.
    in_flight_total_ -= pending_count_[p];
    pending_count_[p] = 0;
    const std::size_t base = p * wheel_width_;
    for (std::size_t s = 0; s < wheel_width_; ++s) wheel_[base + s].clear();
    hash_mix(0xC0DEull ^ p);
  }
}

const std::vector<ProcessId>& Engine::effective_schedule(
    const std::vector<ProcessId>& proposed) {
  std::fill(want_scratch_.begin(), want_scratch_.end(), 0);
  for (ProcessId p : proposed) {
    AG_ASSERT_MSG(p < processes_.size(), "scheduled process out of range");
    if (!crashed_[p]) want_scratch_[p] = 1;
  }
  // Enforce the delta contract: a live process whose deadline has arrived
  // must step now.
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    if (crashed_[p] || want_scratch_[p] != 0) continue;
    const Time deadline = stepped_once_[p] ? last_step_time_[p] + config_.delta
                                           : config_.delta - 1;
    if (now_ >= deadline) {
      if (config_.strict)
        throw ModelViolation(
            "adversary left a live process unscheduled past its delta "
            "deadline");
      want_scratch_[p] = 1;
    }
  }
  schedule_scratch_.clear();
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (want_scratch_[p] != 0) schedule_scratch_.push_back(p);
  return schedule_scratch_;
}

const std::vector<Envelope>& Engine::collect_deliveries(ProcessId p) {
  const FlightZone zone(flight_, FlightZoneId::kWheelDrain, p, now_);
  delivered_scratch_.clear();
  if (pending_count_[p] != 0) {
    // Due slots: every deadline in (last step, now]. The engine's delta
    // enforcement bounds this span by delta < wheel_width_, and the wheel
    // is wide enough that these buckets hold due messages only (future
    // deadlines land in other slots; see engine.h).
    const Time t_lo = stepped_once_[p] ? last_step_time_[p] + 1 : 0;
    AG_ASSERT_MSG(now_ - t_lo < wheel_width_,
                  "scheduling gap exceeded the timing-wheel width");
    due_buckets_.clear();
    for (Time t = t_lo; t <= now_; ++t) {
      std::vector<Envelope>& b = bucket(p, t);
      if (!b.empty()) due_buckets_.push_back(&b);
    }
    if (due_buckets_.size() == 1) {
      delivered_scratch_.swap(*due_buckets_[0]);
    } else if (!due_buckets_.empty()) {
      const FlightZone merge_zone(flight_, FlightZoneId::kKwayMerge, p, now_);
      // Merge the due buckets back into global send order by message id
      // (each bucket is already id-sorted).
      merge_heads_.assign(due_buckets_.size(), 0);
      std::size_t total = 0;
      for (const auto* b : due_buckets_) total += b->size();
      delivered_scratch_.reserve(total);
      for (std::size_t taken = 0; taken < total; ++taken) {
        std::size_t best = due_buckets_.size();
        for (std::size_t i = 0; i < due_buckets_.size(); ++i) {
          if (merge_heads_[i] >= due_buckets_[i]->size()) continue;
          if (best == due_buckets_.size() ||
              (*due_buckets_[i])[merge_heads_[i]].id <
                  (*due_buckets_[best])[merge_heads_[best]].id)
            best = i;
        }
        delivered_scratch_.push_back(
            std::move((*due_buckets_[best])[merge_heads_[best]]));
        ++merge_heads_[best];
      }
      for (auto* b : due_buckets_) b->clear();
    }
  }
  const Time prev_step = stepped_once_[p] ? last_step_time_[p] : kTimeMax;
  for (const Envelope& env : delivered_scratch_) {
    metrics_.record_delivery(p, env.send_time, prev_step, now_);
    for (EngineObserver* o : observers_) o->on_delivery(env, now_);
    if (flight_ != nullptr)
      flight_record_deliver(flight_, env.id, env.from, p, now_,
                            env.send_time);
    hash_mix(0xDE11ull ^ env.id);
  }
  in_flight_total_ -= delivered_scratch_.size();
  pending_count_[p] -= delivered_scratch_.size();
  return delivered_scratch_;
}

void Engine::dispatch_sends(ProcessId from,
                            std::vector<StepContext::Outgoing>& out) {
  const EngineView view(*this);
  for (auto& o : out) {
    AG_ASSERT_MSG(o.to < processes_.size(), "send target out of range");
    Envelope env;
    env.id = next_message_id_++;
    env.from = from;
    env.to = o.to;
    env.send_time = now_;
    env.payload = std::move(o.payload);
    Time delay = adversary_->message_delay(env, view);
    delay = std::clamp<Time>(delay, 1, config_.d);
    env.deliver_after = now_ + delay;
    metrics_.record_send(from, now_,
                          env.payload ? env.payload->byte_size() : 0);
    for (EngineObserver* obs : observers_) obs->on_send(env);
    if (flight_ != nullptr)
      flight_record_send(flight_, env.id, env.from, env.to, now_,
                         env.deliver_after);
    hash_mix(0x5E4Dull ^ env.id ^ (static_cast<std::uint64_t>(env.to) << 32));
    if (crashed_[env.to]) continue;  // delivery to a crashed process is moot
    const ProcessId to = env.to;
    // Injection in send order keeps every wheel bucket sorted by message id.
    bucket(to, env.deliver_after).push_back(std::move(env));
    ++pending_count_[to];
    ++in_flight_total_;
  }
}

void Engine::advance_one_step() {
  const EngineView view(*this);
  StepDecision decision = adversary_->decide(now_, view);

  apply_crashes(decision.crash);
  const std::vector<ProcessId>& schedule =
      effective_schedule(decision.schedule);

  for (ProcessId p : schedule) {
    const Time gap =
        stepped_once_[p] ? now_ - last_step_time_[p] : now_ + 1;
    metrics_.record_gap(gap);
    for (EngineObserver* o : observers_) o->on_step(now_, p);
    const std::vector<Envelope>& delivered = collect_deliveries(p);
    outbox_scratch_.clear();
    StepContext ctx(p, processes_.size(), local_steps_[p], delivered,
                    outbox_scratch_);
    ctx.attach_probe(probe_sink_, now_);
    {
      const FlightZone zone(flight_, FlightZoneId::kStepDispatch, p, now_);
      processes_[p]->step(ctx);
      dispatch_sends(p, outbox_scratch_);
    }
    last_step_time_[p] = now_;
    stepped_once_[p] = true;
    ++local_steps_[p];
    metrics_.record_local_step();
    hash_mix(0x57E4ull ^ p ^ (now_ << 16));
  }

  metrics_.record_in_flight(in_flight_total_);

  ++now_;
}

}  // namespace asyncgossip
