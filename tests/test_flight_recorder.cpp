// Tests for the flight recorder (common/flight_recorder.h) and its SPSC
// ring (common/spsc_ring.h). The load-bearing properties: overwrite-oldest
// never blocks the producer and every lost record is counted; pop order is
// push order; the concurrent producer/consumer protocol is race-free (the
// `Flight` tests run under ThreadSanitizer in the tsan-nightly job,
// `ctest --preset tsan -R 'Rt|Sweep|Flight'`); and attaching a ring to an
// engine run perturbs nothing — trace hash, outcome and telemetry are
// bit-identical with recording on or off, while the recorded spans agree
// exactly with the Metrics/telemetry counters.
#include "common/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "gossip/harness.h"
#include "sim/telemetry.h"

namespace asyncgossip {
namespace {

struct Word {
  std::uint64_t value = 0;
};

TEST(FlightRing, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SpscRing<Word>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<Word>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<Word>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<Word>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<Word>(1000).capacity(), 1024u);
}

TEST(FlightRing, PopsInPushOrderWithoutLoss) {
  SpscRing<Word> ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) ring.push(Word{i});
  Word out;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.value, i);
  }
  EXPECT_FALSE(ring.pop(&out));
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.pushed(), 8u);
}

TEST(FlightRing, OverwritesOldestAndCountsEveryLoss) {
  SpscRing<Word> ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) ring.push(Word{i});
  // The 8 survivors are the newest 8; the 12 overwritten are all counted.
  Word out;
  for (std::uint64_t i = 12; i < 20; ++i) {
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.value, i);
  }
  EXPECT_FALSE(ring.pop(&out));
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.pushed(), 20u);
}

TEST(FlightRing, InterleavedPushPopNeverDrops) {
  // Staying within one ring of un-popped records means nothing is lost, no
  // matter how many records flow through in total.
  SpscRing<Word> ring(4);
  Word out;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ring.push(Word{i});
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.value, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(FlightRing, LagEstimateTracksTheUnreadOverhang) {
  SpscRing<Word> ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) ring.push(Word{i});
  EXPECT_EQ(ring.lag_dropped_estimate(), 0u);
  for (std::uint64_t i = 8; i < 20; ++i) ring.push(Word{i});
  EXPECT_EQ(ring.lag_dropped_estimate(), 12u);
  Word out;
  while (ring.pop(&out)) {
  }
  ring.publish_consumed();
  EXPECT_EQ(ring.lag_dropped_estimate(), 0u);
  EXPECT_EQ(ring.dropped(), 12u);  // the authoritative consumer-side count
}

TEST(FlightRing, ConcurrentProducerConsumerKeepsOrderAndAccounting) {
  // One producer races one consumer through a deliberately tiny ring, so
  // overwrites happen constantly. The consumer must only ever observe
  // values in strictly increasing order (no torn or stale reads — this is
  // the seqlock property TSan checks in the tsan preset), and once the
  // producer stops, popped + dropped must account for every push exactly.
  constexpr std::uint64_t kPushes = 200000;
  SpscRing<Word> ring(16);
  std::uint64_t popped = 0;
  std::uint64_t last = 0;
  bool ordered = true;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kPushes; ++i) ring.push(Word{i + 1});
  });
  std::thread consumer([&] {
    Word out;
    while (popped + ring.dropped() < kPushes) {
      if (!ring.pop(&out)) continue;
      if (out.value <= last) ordered = false;
      last = out.value;
      ++popped;
      ring.publish_consumed();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(popped + ring.dropped(), kPushes);
  EXPECT_EQ(ring.pushed(), kPushes);
  EXPECT_EQ(last, kPushes);  // the final record always survives
}

TEST(FlightRecorder, DrainMergesRingsByWallClock) {
  FlightRecorder recorder(2, 16);
  FlightRecord r;
  r.kind = static_cast<std::uint64_t>(FlightKind::kZone);
  for (std::uint64_t i = 0; i < 6; ++i) {
    r.wall_ns = 100 + i;
    recorder.ring(i % 2)->push(r);
  }
  std::vector<FlightRecord> out;
  recorder.drain(&out);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LE(out[i - 1].wall_ns, out[i].wall_ns);
  EXPECT_EQ(recorder.pushed_total(), 6u);
  EXPECT_EQ(recorder.dropped_total(), 0u);
}

TEST(FlightRecorder, RepeatedDrainDoesNotDoubleCountDrops) {
  FlightRecorder recorder(1, 4);
  FlightRecord r;
  for (std::uint64_t i = 0; i < 10; ++i) recorder.ring(0)->push(r);
  std::vector<FlightRecord> out;
  recorder.drain(&out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(recorder.dropped_total(), 6u);
  recorder.drain(&out);  // nothing new arrived
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(recorder.dropped_total(), 6u);
}

TEST(FlightRecorder, ZoneNamesRoundTrip) {
  for (std::size_t i = 0; i < kFlightZoneCount; ++i) {
    const auto id = static_cast<FlightZoneId>(i);
    FlightZoneId parsed;
    ASSERT_TRUE(flight_zone_from_name(flight_zone_name(id), &parsed))
        << flight_zone_name(id);
    EXPECT_EQ(parsed, id);
  }
  FlightZoneId unused;
  EXPECT_FALSE(flight_zone_from_name("bogus", &unused));
}

TEST(FlightRecorder, NullRingDisablesEverySite) {
  // The "off" configuration: zones and span helpers degrade to a null test.
  {
    FlightZone zone(nullptr, FlightZoneId::kWheelDrain, 0, 0);
  }
  flight_record_send(nullptr, 0, 1, 2, 3, 4);
  flight_record_deliver(nullptr, 0, 1, 2, 3, 4);
}

TEST(FlightRecorder, ZoneRecordCarriesBeginAndDuration) {
  FlightRing ring(8);
  const std::uint64_t before = flight_now_ns();
  {
    FlightZone zone(&ring, FlightZoneId::kAlgoStep, 7, 42);
  }
  const std::uint64_t after = flight_now_ns();
  FlightRecord r;
  ASSERT_TRUE(ring.pop(&r));
  EXPECT_EQ(r.kind, static_cast<std::uint64_t>(FlightKind::kZone));
  EXPECT_EQ(r.a, static_cast<std::uint64_t>(FlightZoneId::kAlgoStep));
  EXPECT_EQ(r.b, 7u);
  EXPECT_EQ(r.tick, 42u);
  EXPECT_GE(r.wall_ns, before);
  EXPECT_LE(r.wall_ns + r.extra, after);
}

TEST(FlightRecord, LinkPackingRoundTrips) {
  FlightRecord r;
  r.b = FlightRecord::pack_link(0xdeadbeef, 0xcafef00d);
  EXPECT_EQ(r.link_from(), 0xdeadbeefu);
  EXPECT_EQ(r.link_to(), 0xcafef00du);
}

// --- engine integration ---------------------------------------------------

GossipSpec flight_spec() {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 16;
  spec.f = 4;
  spec.d = 3;
  spec.delta = 2;
  spec.seed = 7;
  return spec;
}

TEST(FlightEngine, SpansAgreeWithTelemetryAndOutcomeCounters) {
  GossipSpec spec = flight_spec();
  FlightRing ring(1 << 16);  // roomy: this cross-check needs zero drops
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.flight = &ring;
  spec.telemetry = &telemetry;
  const GossipOutcome outcome = run_gossip_spec(spec);
  ASSERT_TRUE(outcome.completed);

  std::uint64_t sends = 0, delivers = 0, zones = 0;
  std::vector<bool> send_seen;
  FlightRecord r;
  while (ring.pop(&r)) {
    switch (static_cast<FlightKind>(r.kind)) {
      case FlightKind::kSend:
        ++sends;
        if (r.a >= send_seen.size()) send_seen.resize(r.a + 1, false);
        send_seen[r.a] = true;
        break;
      case FlightKind::kDeliver:
        ++delivers;
        // Causality: the matching send was recorded first, at an earlier
        // tick (extra carries the send tick).
        ASSERT_LT(r.a, send_seen.size());
        EXPECT_TRUE(send_seen[r.a]);
        EXPECT_LT(r.extra, r.tick);
        break;
      case FlightKind::kZone:
        ++zones;
        break;
    }
  }
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(sends, outcome.messages);
  EXPECT_EQ(sends, telemetry.sends_total());
  EXPECT_EQ(delivers, telemetry.deliveries_total());
  EXPECT_GT(zones, 0u);
}

TEST(FlightEngine, RecordingIsBitIdenticalToNotRecording) {
  // The recorder must never feed back into the execution: same trace hash,
  // same outcome, ring attached or not.
  const GossipSpec plain = flight_spec();
  const AuditedGossipOutcome off = run_audited_gossip_spec(plain);

  GossipSpec recorded = flight_spec();
  FlightRing ring(1 << 14);
  recorded.flight = &ring;
  const AuditedGossipOutcome on = run_audited_gossip_spec(recorded);

  EXPECT_EQ(on.trace_hash, off.trace_hash);
  EXPECT_EQ(on.outcome.messages, off.outcome.messages);
  EXPECT_EQ(on.outcome.completion_time, off.outcome.completion_time);
  EXPECT_EQ(on.outcome.detection_time, off.outcome.detection_time);
  EXPECT_EQ(on.outcome.crashes, off.outcome.crashes);
  EXPECT_TRUE(on.audit.ok());
  EXPECT_GT(ring.pushed(), 0u);  // and it did actually record
}

}  // namespace
}  // namespace asyncgossip
