// TEARS internals (Lemmas 8-11 sanity): per-step send bands, second-level
// batch counts, rumor coverage, and the d-independence of its message
// complexity.
//
//   args     : {n}; f = n/2 - 1 (the regime of Section 5)
//   counters : msgs, msgs_per_n74 (the n^{7/4} constant), steps,
//              min_rumors (worst coverage across correct processes; the
//              majority threshold is n/2 + 1), mean_bcasts (second-level
//              batches per process; Lemma 8 bounds this by
//              2 kappa + 1 + received/kappa), majority_ok
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "gossip/completion.h"
#include "gossip/tears.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("tears-internals");

namespace {

constexpr int kIterations = 3;

void BM_TearsInternals(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Time d = static_cast<Time>(state.range(1));

  double msgs = 0, steps = 0, min_rumors = 0, mean_bcasts = 0;
  int majority = 0, runs = 0;
  std::uint64_t seed = 50021;
  for (auto _ : state) {
    GossipSpec spec = base_spec(GossipAlgorithm::kTears, n, n / 2 - 1, d, 2);
    spec.schedule = SchedulePattern::kStaggered;
    spec.tears_a_constant = 1.0;
    spec.tears_kappa_constant = 1.0;
    spec.seed = seed++;

    Engine engine = make_gossip_engine(spec);
    const GossipOutcome out = run_gossip(engine, default_step_budget(spec));
    if (!out.completed) {
      state.SkipWithError("tears run did not quiesce");
      return;
    }
    ++runs;
    msgs += static_cast<double>(out.messages);
    steps += static_cast<double>(out.completion_time);
    majority += out.majority_ok ? 1 : 0;

    std::size_t worst = n;
    double bcasts = 0;
    std::size_t alive = 0;
    for (ProcessId p = 0; p < engine.n(); ++p) {
      if (engine.crashed(p)) continue;
      const auto& tp = engine.process_as<TearsProcess>(p);
      worst = std::min(worst, tp.rumors().count());
      bcasts += static_cast<double>(tp.second_level_batches_sent());
      ++alive;
    }
    min_rumors += static_cast<double>(worst);
    mean_bcasts += bcasts / static_cast<double>(alive);
    benchmark::DoNotOptimize(out.messages);
  }
  const double r = runs;
  state.counters["msgs"] = msgs / r;
  state.counters["msgs_per_n74"] =
      msgs / r / std::pow(static_cast<double>(n), 1.75);
  state.counters["steps"] = steps / r;
  state.counters["min_rumors"] = min_rumors / r;
  state.counters["majority_need"] = static_cast<double>(n / 2 + 1);
  state.counters["mean_bcasts"] = mean_bcasts / r;
  state.counters["majority_ok"] = majority / r;
  record_case(state, "tears-internals/n:" + std::to_string(n) +
                         "/d:" + std::to_string(d));
}

// n sweep at d = 1 (growth exponent), plus a d sweep at fixed n (message
// count must not scale with d — the headline Section 5 property).
BENCHMARK(BM_TearsInternals)
    ->ArgsProduct({{256, 512, 1024, 2048, 4096}, {1}})
    ->Iterations(kIterations);
BENCHMARK(BM_TearsInternals)
    ->ArgsProduct({{1024}, {1, 4, 16, 64}})
    ->Iterations(kIterations);

}  // namespace
}  // namespace asyncgossip::bench
