#include "sim/trace.h"

#include <algorithm>
#include <cstdio>

namespace asyncgossip {

void TraceRecorder::push(Event e) {
  if (events_.size() < max_events_) {
    events_.push_back(e);
  } else {
    ++dropped_;
  }
}

void TraceRecorder::on_step(Time now, ProcessId p) {
  ++steps_;
  push(Event{EventKind::kStep, now, p, kNoProcess, 0, 0});
}

void TraceRecorder::on_send(const Envelope& env) {
  ++sends_;
  push(Event{EventKind::kSend, env.send_time, env.from, env.to, env.id,
             env.send_time});
}

void TraceRecorder::on_delivery(const Envelope& env, Time now) {
  ++deliveries_;
  latencies_.push_back(static_cast<double>(now - env.send_time));
  push(Event{EventKind::kDelivery, now, env.to, env.from, env.id,
             env.send_time});
}

void TraceRecorder::on_crash(Time now, ProcessId p) {
  ++crashes_;
  push(Event{EventKind::kCrash, now, p, kNoProcess, 0, 0});
}

Summary TraceRecorder::latency_summary() const { return summarize(latencies_); }

std::string TraceRecorder::render_timeline(std::size_t n,
                                           std::size_t max_processes,
                                           std::size_t max_time) const {
  const std::size_t rows = std::min(n, max_processes);
  // Cell codes: bit0 step, bit1 send, bit2 delivery, bit3 crash.
  std::vector<std::vector<std::uint8_t>> grid(
      rows, std::vector<std::uint8_t>(max_time, 0));
  std::vector<Time> crash_time(rows, kTimeMax);
  for (const Event& e : events_) {
    if (e.process >= rows) continue;
    if (e.kind == EventKind::kCrash && e.process < rows)
      crash_time[e.process] = std::min(crash_time[e.process], e.time);
    if (e.time >= max_time) continue;
    auto& cell = grid[e.process][e.time];
    switch (e.kind) {
      case EventKind::kStep:
        cell |= 1;
        break;
      case EventKind::kSend:
        cell |= 2;
        break;
      case EventKind::kDelivery:
        cell |= 4;
        break;
      case EventKind::kCrash:
        cell |= 8;
        break;
    }
  }
  std::string out;
  out.reserve(rows * (max_time + 12));
  for (std::size_t p = 0; p < rows; ++p) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%4zu ", p);
    out += buf;
    for (std::size_t t = 0; t < max_time; ++t) {
      const std::uint8_t c = grid[p][t];
      char ch;
      if (c & 8) {
        ch = 'X';
      } else if (crash_time[p] != kTimeMax && t > crash_time[p]) {
        ch = ' ';
      } else if ((c & 2) && (c & 4)) {
        ch = 'b';
      } else if (c & 2) {
        ch = 's';
      } else if (c & 4) {
        ch = 'd';
      } else if (c & 1) {
        ch = 'o';
      } else {
        ch = '.';
      }
      out += ch;
    }
    out += '\n';
  }
  if (n > rows) out += "  ... (" + std::to_string(n - rows) + " more)\n";
  return out;
}

void TraceRecorder::clear() {
  events_.clear();
  steps_ = sends_ = deliveries_ = crashes_ = dropped_ = 0;
  latencies_.clear();
}

}  // namespace asyncgossip
