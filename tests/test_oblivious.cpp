#include "sim/oblivious.h"

#include <gtest/gtest.h>

#include "common/assert.h"

#include <set>

namespace asyncgossip {
namespace {

TEST(CrashPlans, NoCrashesIsEmpty) { EXPECT_TRUE(no_crashes().empty()); }

TEST(CrashPlans, RandomCrashesShape) {
  const CrashPlan plan = random_crashes(100, 30, 50, 123);
  EXPECT_EQ(plan.size(), 30u);
  std::set<ProcessId> victims;
  for (const auto& [when, who] : plan) {
    EXPECT_LT(when, 50u);
    EXPECT_LT(who, 100u);
    victims.insert(who);
  }
  EXPECT_EQ(victims.size(), 30u);  // distinct victims
}

TEST(CrashPlans, RandomCrashesDeterministic) {
  EXPECT_EQ(random_crashes(64, 16, 32, 9), random_crashes(64, 16, 32, 9));
  EXPECT_NE(random_crashes(64, 16, 32, 9), random_crashes(64, 16, 32, 10));
}

TEST(CrashPlans, RandomCrashesZeroHorizon) {
  for (const auto& [when, who] : random_crashes(16, 4, 0, 1))
    EXPECT_EQ(when, 0u);
}

TEST(CrashPlans, BurstCrashesAllAtOnce) {
  const CrashPlan plan = burst_crashes(50, 20, 7, 42);
  EXPECT_EQ(plan.size(), 20u);
  for (const auto& [when, who] : plan) EXPECT_EQ(when, 7u);
}

TEST(CrashPlans, StaggeredSuffixTargetsHighIds) {
  const CrashPlan plan = staggered_suffix_crashes(10, 3, 30);
  ASSERT_EQ(plan.size(), 3u);
  std::set<ProcessId> victims;
  for (const auto& [when, who] : plan) victims.insert(who);
  EXPECT_EQ(victims, (std::set<ProcessId>{7, 8, 9}));
}

TEST(CrashPlans, TooManyCrashesThrow) {
  EXPECT_THROW(random_crashes(4, 4, 10, 1), ModelViolation);
  EXPECT_THROW(burst_crashes(4, 4, 10, 1), ModelViolation);
}

class ObliviousPatterns : public ::testing::TestWithParam<SchedulePattern> {};

TEST_P(ObliviousPatterns, SchedulesAreDeterministicAndInRange) {
  ObliviousConfig cfg;
  cfg.n = 16;
  cfg.d = 4;
  cfg.delta = 4;
  cfg.schedule = GetParam();
  cfg.seed = 77;
  ObliviousAdversary a(cfg), b(cfg);
  for (Time t = 0; t < 64; ++t) {
    const StepDecision da = a.decide_oblivious(t);
    const StepDecision db = b.decide_oblivious(t);
    EXPECT_EQ(da.schedule, db.schedule);
    for (ProcessId p : da.schedule) EXPECT_LT(p, 16u);
  }
}

TEST_P(ObliviousPatterns, LockStepOrPartial) {
  ObliviousConfig cfg;
  cfg.n = 8;
  cfg.d = 2;
  cfg.delta = 4;
  cfg.schedule = GetParam();
  cfg.seed = 3;
  ObliviousAdversary adv(cfg);
  // Every process is proposed at least once within a few delta windows
  // (the engine would force any stragglers; the patterns themselves are
  // already nearly delta-compliant).
  std::set<ProcessId> seen;
  for (Time t = 0; t < 32; ++t)
    for (ProcessId p : adv.decide_oblivious(t).schedule) seen.insert(p);
  EXPECT_EQ(seen.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, ObliviousPatterns,
                         ::testing::Values(SchedulePattern::kLockStep,
                                           SchedulePattern::kStaggered,
                                           SchedulePattern::kRandomSubset,
                                           SchedulePattern::kRotating,
                                           SchedulePattern::kStraggler));

TEST(Oblivious, StragglerPatternSlowsOnlyVictims) {
  ObliviousConfig cfg;
  cfg.n = 16;
  cfg.d = 1;
  cfg.delta = 4;
  cfg.schedule = SchedulePattern::kStraggler;
  cfg.stragglers = {14, 15};
  ObliviousAdversary adv(cfg);
  int victim_steps = 0, normal_steps = 0;
  for (Time t = 0; t < 16; ++t) {
    for (ProcessId p : adv.decide_oblivious(t).schedule) {
      if (p >= 14) ++victim_steps;
      else ++normal_steps;
    }
  }
  EXPECT_EQ(normal_steps, 14 * 16);
  EXPECT_EQ(victim_steps, 2 * 4);  // once per delta window
}

TEST(Oblivious, TargetedSlowDelaysOnlyVictims) {
  ObliviousConfig cfg;
  cfg.n = 16;
  cfg.d = 7;
  cfg.delay = DelayPattern::kTargetedSlow;
  cfg.slow_targets = {3};
  ObliviousAdversary adv(cfg);
  EXPECT_EQ(adv.delay_oblivious(0, 3), 7u);
  EXPECT_EQ(adv.delay_oblivious(1, 2), 1u);
  EXPECT_EQ(adv.delay_oblivious(2, 15), 1u);
}

class DelayPatterns : public ::testing::TestWithParam<DelayPattern> {};

TEST_P(DelayPatterns, DelaysWithinBounds) {
  ObliviousConfig cfg;
  cfg.n = 4;
  cfg.d = 9;
  cfg.delta = 1;
  cfg.delay = GetParam();
  cfg.seed = 5;
  ObliviousAdversary adv(cfg);
  for (MessageId m = 0; m < 500; ++m) {
    const Time delay = adv.delay_oblivious(m);
    EXPECT_GE(delay, 1u);
    EXPECT_LE(delay, 9u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDelays, DelayPatterns,
                         ::testing::Values(DelayPattern::kUnitDelay,
                                           DelayPattern::kMaxDelay,
                                           DelayPattern::kUniform,
                                           DelayPattern::kBimodal,
                                           DelayPattern::kTargetedSlow));

TEST(Oblivious, UnitAndMaxDelayExact) {
  ObliviousConfig cfg;
  cfg.n = 4;
  cfg.d = 6;
  cfg.delay = DelayPattern::kUnitDelay;
  EXPECT_EQ(ObliviousAdversary(cfg).delay_oblivious(0), 1u);
  cfg.delay = DelayPattern::kMaxDelay;
  EXPECT_EQ(ObliviousAdversary(cfg).delay_oblivious(0), 6u);
}

TEST(Oblivious, CrashPlanExecutedOnce) {
  ObliviousConfig cfg;
  cfg.n = 8;
  cfg.d = 1;
  cfg.delta = 1;
  cfg.crash_plan = CrashPlan{{2, 3}, {2, 4}, {5, 5}};
  ObliviousAdversary adv(cfg);
  std::vector<ProcessId> crashed;
  for (Time t = 0; t < 10; ++t)
    for (ProcessId p : adv.decide_oblivious(t).crash) crashed.push_back(p);
  EXPECT_EQ(crashed, (std::vector<ProcessId>{3, 4, 5}));
}

TEST(Oblivious, StandardFactoryWorks) {
  auto adv = make_standard_oblivious(32, 4, 2, 8, 16, 42);
  ASSERT_NE(adv, nullptr);
}

}  // namespace
}  // namespace asyncgossip
