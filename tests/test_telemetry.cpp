// Tests for the run-telemetry subsystem (sim/telemetry.h) and its
// exporters (sim/telemetry_export.h): the observer/probe contract
// (attaching telemetry never changes a run), spread-series monotonicity,
// histogram accounting against the engine's own metrics, and JSON/CSV
// export validity.
#include "sim/telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gossip/completion.h"
#include "gossip/harness.h"
#include "sim/telemetry_export.h"

namespace asyncgossip {
namespace {

GossipSpec small_spec(GossipAlgorithm alg = GossipAlgorithm::kEars) {
  GossipSpec spec;
  spec.algorithm = alg;
  spec.n = 32;
  spec.f = 8;
  spec.d = 3;
  spec.delta = 2;
  spec.seed = 7;
  spec.schedule = SchedulePattern::kStaggered;
  spec.delay = DelayPattern::kUniform;
  return spec;
}

TEST(Telemetry, ConfigValidation) {
  TelemetryConfig cfg;
  EXPECT_THROW(TelemetryCollector{cfg}, ApiError);  // n == 0
  cfg.n = 4;
  cfg.d = 0;
  EXPECT_THROW(TelemetryCollector{cfg}, ApiError);
  cfg.d = 1;
  cfg.delta = 0;
  EXPECT_THROW(TelemetryCollector{cfg}, ApiError);
  cfg.delta = 1;
  EXPECT_NO_THROW(TelemetryCollector{cfg});
}

TEST(Telemetry, AttachingNeverPerturbsTheRun) {
  for (const GossipAlgorithm alg :
       {GossipAlgorithm::kEars, GossipAlgorithm::kTears,
        GossipAlgorithm::kSync}) {
    const GossipSpec spec = small_spec(alg);
    const Time budget = default_step_budget(spec);

    Engine plain = make_gossip_engine(spec);
    const GossipOutcome base = run_gossip(plain, budget);

    Engine observed = make_gossip_engine(spec);
    TelemetryCollector telemetry(telemetry_config(spec));
    observed.add_observer(&telemetry);
    observed.set_probe_sink(&telemetry);
    const GossipOutcome traced = run_gossip(observed, budget);
    telemetry.finalize(observed.now());

    EXPECT_EQ(plain.trace_hash(), observed.trace_hash()) << to_string(alg);
    EXPECT_EQ(base.completed, traced.completed);
    EXPECT_EQ(base.completion_time, traced.completion_time);
    EXPECT_EQ(base.messages, traced.messages);
    EXPECT_EQ(base.bytes, traced.bytes);
    EXPECT_EQ(plain.metrics().messages_sent(),
              observed.metrics().messages_sent());
    EXPECT_EQ(plain.metrics().messages_delivered(),
              observed.metrics().messages_delivered());
  }
}

TEST(Telemetry, SpreadSeriesIsMonotone) {
  GossipSpec spec = small_spec();
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.telemetry = &telemetry;
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  ASSERT_TRUE(telemetry.finalized());

  const auto& spread = telemetry.spread();
  ASSERT_FALSE(spread.empty());
  for (std::size_t i = 1; i < spread.size(); ++i) {
    EXPECT_LT(spread[i - 1].time, spread[i].time);
    EXPECT_LE(spread[i - 1].known_pairs, spread[i].known_pairs);
    EXPECT_LE(spread[i - 1].sent, spread[i].sent);
    EXPECT_LE(spread[i - 1].delivered, spread[i].delivered);
  }
  // Under staggered scheduling only a subset of processes steps (and hence
  // probes) at time 0, but whoever did already knows its own rumor; the
  // informed fraction never exceeds 1.
  EXPECT_GE(spread.front().known_pairs, 1u);
  EXPECT_LE(spread.front().known_pairs,
            static_cast<std::uint64_t>(spec.n) * spec.n);
  EXPECT_LE(telemetry.informed_fraction(), 1.0);
  // This run completed with gathering intact: everyone correct got all.
  EXPECT_TRUE(out.gathering_ok);
  EXPECT_GE(telemetry.spread().back().full_processes, out.alive);
  EXPECT_EQ(telemetry.samples_dropped(), 0u);
}

TEST(Telemetry, HistogramMatchesEngineMetrics) {
  const GossipSpec spec = small_spec();
  Engine engine = make_gossip_engine(spec);
  TelemetryCollector telemetry(telemetry_config(spec));
  engine.add_observer(&telemetry);
  engine.set_probe_sink(&telemetry);
  const GossipOutcome out = run_gossip(engine, default_step_budget(spec));
  ASSERT_TRUE(out.completed);
  telemetry.finalize(engine.now());

  // Histogram totals are exactly the engine's delivery count, with every
  // receipt latency inside [1, d + delta - 1] (d steps in the network plus
  // up to delta - 1 until the recipient's next step).
  std::uint64_t hist_total = 0;
  const auto& hist = telemetry.latency_histogram();
  EXPECT_EQ(hist.size(), static_cast<std::size_t>(spec.d + spec.delta));
  EXPECT_EQ(hist[0], 0u);
  for (std::uint64_t count : hist) hist_total += count;
  EXPECT_EQ(telemetry.latency_overflow(), 0u);
  EXPECT_EQ(hist_total, engine.metrics().messages_delivered());
  EXPECT_EQ(telemetry.deliveries_total(), engine.metrics().messages_delivered());
  EXPECT_EQ(telemetry.sends_total(), engine.metrics().messages_sent());

  const Summary lat = telemetry.latency_summary();
  EXPECT_EQ(lat.count, hist_total);
  EXPECT_GE(lat.mean, 1.0);
  EXPECT_LE(lat.max, static_cast<double>(spec.d + spec.delta - 1));
  EXPECT_LE(lat.min, lat.median);
  EXPECT_LE(lat.median, lat.max);

  // Per-process counters agree with the Metrics ledger.
  std::uint64_t steps = 0, sends = 0, deliveries = 0;
  const auto& procs = telemetry.processes();
  ASSERT_EQ(procs.size(), spec.n);
  for (ProcessId p = 0; p < engine.n(); ++p) {
    steps += procs[p].steps;
    sends += procs[p].sends;
    deliveries += procs[p].deliveries;
    EXPECT_EQ(procs[p].sends, engine.metrics().messages_sent_by(p));
    EXPECT_EQ(procs[p].deliveries, engine.metrics().messages_received_by(p));
    EXPECT_EQ(procs[p].crashed, engine.crashed(p));
  }
  EXPECT_EQ(sends, telemetry.sends_total());
  EXPECT_EQ(deliveries, telemetry.deliveries_total());
  EXPECT_EQ(steps, telemetry.steps_total());
  EXPECT_EQ(telemetry.crashes_total(), out.crashes);

  // The in-flight gauge peaks somewhere and drains by quiescence.
  EXPECT_GT(telemetry.max_in_flight(), 0u);
  EXPECT_EQ(telemetry.in_flight(), 0u);
  EXPECT_EQ(telemetry.max_in_flight(), engine.metrics().max_in_flight());
}

TEST(Telemetry, PhaseMarkersFollowTheEarsLifecycle) {
  GossipSpec spec = small_spec();
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.telemetry = &telemetry;
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);

  const auto& phases = telemetry.phases();
  ASSERT_FALSE(phases.empty());
  bool saw_epidemic = false, saw_shutdown = false;
  Time last_time = 0;
  for (const PhaseMarker& m : phases) {
    EXPECT_LT(m.process, spec.n);
    EXPECT_GE(m.time, last_time);  // markers arrive in time order
    last_time = m.time;
    if (m.phase == "epidemic") saw_epidemic = true;
    if (m.phase == "shutdown") saw_shutdown = true;
  }
  // Every process opens in the epidemic phase at its first step, and a
  // completed run means progress control fired somewhere.
  EXPECT_EQ(phases.front().phase, "epidemic");
  EXPECT_TRUE(saw_epidemic);
  EXPECT_TRUE(saw_shutdown);
  EXPECT_EQ(telemetry.phase_markers_dropped(), 0u);
}

TEST(Telemetry, AuditedRunWithTelemetryStaysClean) {
  GossipSpec spec = small_spec(GossipAlgorithm::kTears);
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.telemetry = &telemetry;
  const AuditedGossipOutcome audited = run_audited_gossip_spec(spec);
  EXPECT_TRUE(audited.outcome.completed);
  EXPECT_TRUE(audited.audit.ok()) << audited.audit.summary();
  EXPECT_GT(telemetry.deliveries_total(), 0u);
}

TEST(Telemetry, ClearResetsEverything) {
  GossipSpec spec = small_spec();
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.telemetry = &telemetry;
  ASSERT_TRUE(run_gossip_spec(spec).completed);
  ASSERT_FALSE(telemetry.spread().empty());
  telemetry.clear();
  EXPECT_TRUE(telemetry.spread().empty());
  EXPECT_TRUE(telemetry.phases().empty());
  EXPECT_EQ(telemetry.sends_total(), 0u);
  EXPECT_EQ(telemetry.max_in_flight(), 0u);
  EXPECT_FALSE(telemetry.finalized());
  EXPECT_EQ(telemetry.informed_fraction(), 0.0);

  // The collector is reusable: a second identical run accumulates afresh.
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(telemetry.sends_total(), out.messages);
}

TEST(TelemetryExport, JsonReportIsValidAndComplete) {
  GossipSpec spec = small_spec();
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.telemetry = &telemetry;
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);

  TelemetryExportInfo info;
  info.run = {{"algorithm", to_string(spec.algorithm)}};
  info.summary = {{"completed", 1.0},
                  {"messages", static_cast<double>(out.messages)}};
  std::ostringstream os;
  write_telemetry_json(os, telemetry, info);
  const std::string doc = os.str();

  std::string error;
  EXPECT_TRUE(json_valid(doc, &error)) << error;
  for (const char* needle :
       {"\"schema\": \"asyncgossip-telemetry-v1\"", "\"algorithm\": \"ears\"",
        "\"spread\"", "\"latency_histogram\"", "\"phases\"", "\"processes\"",
        "\"totals\"", "\"informed_fraction\"", "\"max_in_flight\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }
}

TEST(TelemetryExport, JsonReportIsDeterministic) {
  auto render = [] {
    GossipSpec spec = small_spec();
    TelemetryCollector telemetry(telemetry_config(spec));
    spec.telemetry = &telemetry;
    EXPECT_TRUE(run_gossip_spec(spec).completed);
    std::ostringstream os;
    write_telemetry_json(os, telemetry, TelemetryExportInfo{});
    return os.str();
  };
  EXPECT_EQ(render(), render());
}

TEST(TelemetryExport, SpreadCsvHasHeaderAndOneRowPerSample) {
  GossipSpec spec = small_spec();
  TelemetryCollector telemetry(telemetry_config(spec));
  spec.telemetry = &telemetry;
  ASSERT_TRUE(run_gossip_spec(spec).completed);

  std::ostringstream os;
  write_spread_csv(os, telemetry);
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("time,known_pairs,informed_fraction", 0), 0u);
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, telemetry.spread().size());
}

TEST(TelemetryExport, JsonValidatorAcceptsAndRejects) {
  for (const char* good :
       {"{}", "[]", "null", "true", "-12.5e3", "\"a\\nb\\u00e9\"",
        "{\"k\": [1, 2, {\"x\": null}], \"m\": \"v\"}", "  [0.5, 1e9]  "}) {
    std::string error;
    EXPECT_TRUE(json_valid(good, &error)) << good << ": " << error;
  }
  for (const char* bad :
       {"", "{", "}", "[1,]", "{\"k\":}", "{'k': 1}", "01", "1.", "+1",
        "nul", "\"unterminated", "\"bad\\q\"", "[1] trailing", "{\"a\" 1}",
        "\"ctrl\tchar\""}) {
    EXPECT_FALSE(json_valid(bad)) << bad;
  }
  std::string error;
  EXPECT_FALSE(json_valid("[1,", &error));
  EXPECT_FALSE(error.empty());
}

TEST(TelemetryExport, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace asyncgossip
