#include "apps/doall.h"

#include <gtest/gtest.h>

namespace asyncgossip {
namespace {

DoAllSpec base_spec(std::size_t n, std::size_t tasks, std::size_t f,
                    std::uint64_t seed) {
  DoAllSpec spec;
  spec.config.n = n;
  spec.config.tasks = tasks;
  spec.config.seed = seed;
  spec.f = f;
  spec.seed = seed;
  return spec;
}

TEST(DoAll, CompletesAllTasks) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const DoAllOutcome out = run_doall(base_spec(32, 200, 8, seed));
    ASSERT_TRUE(out.completed) << "seed " << seed;
    EXPECT_EQ(out.tasks_executed, 200u);
    EXPECT_GE(out.total_work, 200u);
  }
}

TEST(DoAll, SharingSlashesWork) {
  DoAllSpec with = base_spec(32, 256, 0, 5);
  DoAllSpec without = base_spec(32, 256, 0, 5);
  without.config.share_knowledge = false;
  const DoAllOutcome ow = run_doall(with);
  const DoAllOutcome owo = run_doall(without);
  ASSERT_TRUE(ow.completed && owo.completed);
  // Without sharing, every process grinds through all t tasks: n*t work.
  EXPECT_EQ(owo.total_work, 32u * 256u);
  EXPECT_EQ(owo.messages, 0u);
  // With gossip, total work collapses toward t + overlap.
  EXPECT_LT(ow.total_work, owo.total_work / 4);
}

TEST(DoAll, WorkScalesWithTasksNotProcesses) {
  const DoAllOutcome small_n = run_doall(base_spec(16, 512, 0, 7));
  const DoAllOutcome large_n = run_doall(base_spec(64, 512, 0, 7));
  ASSERT_TRUE(small_n.completed && large_n.completed);
  // Quadrupling n must not quadruple work (collision overlap grows mildly).
  EXPECT_LT(large_n.total_work, 2 * small_n.total_work);
}

TEST(DoAll, SurvivesCrashes) {
  DoAllSpec spec = base_spec(48, 300, 23, 9);
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  const DoAllOutcome out = run_doall(spec);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.tasks_executed, 300u);
  EXPECT_GE(out.alive, 48u - 23u);
}

TEST(DoAll, FanoutTradesMessagesForTime) {
  DoAllSpec narrow = base_spec(32, 256, 8, 11);
  DoAllSpec wide = base_spec(32, 256, 8, 11);
  wide.config.fanout = 8;
  const DoAllOutcome on = run_doall(narrow);
  const DoAllOutcome ow = run_doall(wide);
  ASSERT_TRUE(on.completed && ow.completed);
  EXPECT_GT(ow.messages, on.messages);
  EXPECT_LE(ow.completion_time, on.completion_time);
}

TEST(DoAll, RejectsBadConfig) {
  DoAllConfig cfg;
  cfg.n = 4;
  cfg.tasks = 0;
  EXPECT_THROW(DoAllProcess(0, cfg), ModelViolation);
  cfg.tasks = 4;
  cfg.fanout = 5;
  EXPECT_THROW(DoAllProcess(0, cfg), ModelViolation);
}

TEST(DoAll, Deterministic) {
  const DoAllOutcome a = run_doall(base_spec(24, 128, 6, 3));
  const DoAllOutcome b = run_doall(base_spec(24, 128, 6, 3));
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.completion_time, b.completion_time);
}

}  // namespace
}  // namespace asyncgossip
