#include "rt/merge.h"

#include <algorithm>
#include <utility>

namespace asyncgossip {

namespace {

using Event = TraceRecorder::Event;
using EventKind = TraceRecorder::EventKind;

bool event_order(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.process < b.process;
}

}  // namespace

void merge_rt_logs(std::size_t n, std::vector<RtProcessLog> logs,
                   const std::vector<std::uint8_t>& crashed,
                   RtRunResult* result) {
  for (RtProcessLog& log : logs) {
    result->events.insert(result->events.end(), log.events.begin(),
                          log.events.end());
    result->probes.insert(result->probes.end(), log.probes.begin(),
                          log.probes.end());
    result->outcome.bytes += log.bytes;
    result->events_dropped += log.dropped;
  }
  // Each per-process log is already time-ordered; a stable sort by (time,
  // process) therefore preserves every process's internal event order
  // (step before deliveries before sends before crash within one tick).
  std::stable_sort(result->events.begin(), result->events.end(), event_order);
  std::stable_sort(result->probes.begin(), result->probes.end(),
                   [](const RtProbeRecord& a, const RtProbeRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.process < b.process;
                   });

  // Renumber message ids to be strictly monotone in merged send order (the
  // auditor's id contract). A delivery always follows its send in time
  // order, but raw ids are merely unique, not dense — so: one pass
  // collecting (raw, merged) pairs in send order, sort by raw id, then
  // rewrite sends by the same sequential assignment and deliveries by
  // binary search. Deterministic, no hash containers (aglint AG-DET-003).
  std::vector<std::pair<MessageId, MessageId>> mapping;
  MessageId next_merged_id = 0;
  for (const Event& e : result->events)
    if (e.kind == EventKind::kSend)
      mapping.emplace_back(e.message, next_merged_id++);
  std::vector<std::pair<MessageId, MessageId>> by_raw = mapping;
  std::sort(by_raw.begin(), by_raw.end());
  next_merged_id = 0;
  for (Event& e : result->events) {
    if (e.kind == EventKind::kSend) {
      e.message = next_merged_id++;
    } else if (e.kind == EventKind::kDelivery) {
      const auto it = std::lower_bound(
          by_raw.begin(), by_raw.end(),
          std::make_pair(e.message, MessageId{0}),
          [](const std::pair<MessageId, MessageId>& a,
             const std::pair<MessageId, MessageId>& b) {
            return a.first < b.first;
          });
      if (it != by_raw.end() && it->first == e.message) e.message = it->second;
    }
  }

  // --- realized bounds and outcome counters ------------------------------
  RtOutcome& oc = result->outcome;
  std::vector<Time> first_step(n, 0);
  std::vector<Time> last_step(n, 0);
  std::vector<std::uint8_t> stepped_once(n, 0);
  Time realized_d = 1;
  Time max_gap = 1;
  for (const Event& e : result->events) {
    switch (e.kind) {
      case EventKind::kStep:
        if (stepped_once[e.process] == 0) {
          first_step[e.process] = e.time;
          stepped_once[e.process] = 1;
        } else {
          max_gap = std::max(max_gap, e.time - last_step[e.process]);
        }
        last_step[e.process] = e.time;
        ++oc.steps;
        break;
      case EventKind::kSend:
        ++oc.messages;
        oc.completion_time = e.time + 1;
        realized_d = std::max(realized_d, e.deliver_after - e.time);
        break;
      case EventKind::kDelivery:
        ++oc.deliveries;
        // The receiver-side stamp can exceed the sender-recorded one over
        // a socket transport; the realized bound must cover both.
        realized_d = std::max(realized_d, e.deliver_after - e.send_time);
        break;
      case EventKind::kCrash:
        ++oc.crashes;
        break;
    }
  }
  oc.end_time = result->events.empty() ? 0 : result->events.back().time + 1;
  oc.realized_d = realized_d;
  Time realized_delta = max_gap;
  for (ProcessId p = 0; p < n; ++p) {
    if (stepped_once[p] != 0)
      realized_delta = std::max(realized_delta, first_step[p] + 1);
    if (crashed[p] != 0) continue;
    realized_delta = std::max(realized_delta, stepped_once[p] != 0
                                                  ? oc.end_time - last_step[p]
                                                  : oc.end_time + 1);
  }
  oc.realized_delta = realized_delta;
  oc.crashes = 0;
  for (ProcessId p = 0; p < n; ++p) oc.crashes += crashed[p] != 0;
  oc.alive = n - oc.crashes;
}

}  // namespace asyncgossip
