// Serving-path benchmark: Table 2 consensus as the commit path of the
// replicated KV service (src/svc, docs/SERVING.md).
//
//   cases    : throughput (unpaced open loop — how fast the group-commit
//              pipeline drains), latency (paced open loop well under
//              capacity — the commit path's own latency, not queueing),
//              faulted (unpaced with in-budget replica crashes)
//   counters : acked_per_sec, p50/p95/p99_us commit latency, complete rate,
//              slots, cons_msgs / cons_ticks (deterministic sim-engine
//              consensus cost per run — these do not move with machine load)
//
// CI gates (tools/bench_gate.py vs BENCH_svc_seed.json): acked_per_sec on
// the throughput case (higher-better) and p95_us on the latency case
// (lower-better), both at the standard 40% shared-runner tolerance.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "consensus/cr_gossip.h"
#include "svc/loadgen.h"
#include "svc/service.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("svc");

namespace {

constexpr std::uint64_t kSeedBase = 70001;

void run_case(benchmark::State& state, const char* label_stem, double rate,
              std::uint64_t requests, std::size_t crashes) {
  register_consensus_algorithms();
  double acked_per_sec = 0, p50 = 0, p95 = 0, p99 = 0, complete = 0,
         slots = 0, cons_msgs = 0, cons_ticks = 0;
  int runs = 0;
  std::uint64_t seed = kSeedBase;
  for (auto _ : state) {
    svc::KvServiceConfig cfg;
    cfg.group.n = 8;
    cfg.group.f = 3;
    cfg.group.seed = seed++;
    cfg.group.inject_crashes = crashes;
    svc::KvService service(cfg);
    svc::LoadgenConfig lc;
    lc.rate = rate;
    lc.requests = requests;
    lc.seed = cfg.group.seed;
    lc.inproc = &service;
    const svc::LoadgenReport rep = svc::run_loadgen(lc);
    service.stop();
    const svc::KvServiceStats stats = service.stats();
    if (!rep.complete) {
      state.SkipWithError("loadgen run incomplete (crash plan beyond f?)");
      return;
    }
    ++runs;
    complete += rep.complete ? 1 : 0;
    acked_per_sec += rep.achieved_rate;
    p50 += static_cast<double>(rep.p50_us);
    p95 += static_cast<double>(rep.p95_us);
    p99 += static_cast<double>(rep.p99_us);
    slots += static_cast<double>(stats.slots);
    cons_msgs += static_cast<double>(stats.consensus_messages);
    cons_ticks += static_cast<double>(stats.consensus_ticks);
    benchmark::DoNotOptimize(rep.acked);
  }
  const double r = runs;
  state.counters["acked_per_sec"] = acked_per_sec / r;
  state.counters["p50_us"] = p50 / r;
  state.counters["p95_us"] = p95 / r;
  state.counters["p99_us"] = p99 / r;
  state.counters["complete"] = complete / r;
  state.counters["slots"] = slots / r;
  state.counters["cons_msgs"] = cons_msgs / r;
  state.counters["cons_ticks"] = cons_ticks / r;
  record_case(state, std::string("svc/") + label_stem +
                         "/n:8/f:3/seed:" + std::to_string(kSeedBase));
}

void BM_SvcThroughput(benchmark::State& state) {
  run_case(state, "throughput", /*rate=*/0.0, /*requests=*/20000,
           /*crashes=*/0);
}

// 2000 req/s is well under the unpaced capacity (>= 25k/s on every machine
// this has run on), so the percentiles measure the batch commit path, not
// queue wait.
void BM_SvcLatency(benchmark::State& state) {
  run_case(state, "latency/rate:2000", /*rate=*/2000.0, /*requests=*/4000,
           /*crashes=*/0);
}

void BM_SvcFaulted(benchmark::State& state) {
  run_case(state, "faulted/crashes:2", /*rate=*/0.0, /*requests=*/20000,
           /*crashes=*/2);
}

BENCHMARK(BM_SvcThroughput)->Iterations(3);
BENCHMARK(BM_SvcLatency)->Iterations(2);
BENCHMARK(BM_SvcFaulted)->Iterations(2);

}  // namespace
}  // namespace asyncgossip::bench
