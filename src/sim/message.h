// Message envelope and type-erased payloads.
//
// Payloads are immutable and shared: a gossip message carrying a snapshot of
// a process's knowledge is allocated once by the sender and referenced by
// the envelope, so "sending" is O(1) regardless of payload size. This
// mirrors the paper's accounting, which counts point-to-point *messages*
// rather than bits.
//
// Since the data-oriented engine core, `Envelope` is a *view* type: the
// engine stores in-flight messages as struct-of-arrays slabs plus an
// interned payload pool (sim/envelope_arena.h) and materializes Envelope
// values only at its observation seams (StepContext::received, observer
// callbacks, pending_for). PayloadRef below is what makes both worlds
// compile against the same field: it converts implicitly from PayloadPtr
// (owning — tests, the rt driver and the lower-bound prober build their own
// envelopes and must keep the payload alive), while the engine hands out
// borrowed views whose payloads the pool pins for the duration of the step.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "sim/types.h"

namespace asyncgossip {

/// Base class for algorithm-defined message bodies.
struct Payload {
  virtual ~Payload() = default;

  /// Serialized size of this payload in bytes, for the bit-complexity
  /// accounting the paper lists as future work ("the total number of bits
  /// exchanged in a given computation", Section 7). Implementations report
  /// the size of a natural wire encoding of their fields; the engine sums
  /// it per send into Metrics::bytes_sent().
  virtual std::size_t byte_size() const { return 0; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A payload reference that is either owning (constructed from a
/// PayloadPtr) or borrowed (engine-internal views into the interned payload
/// pool, whose lifetime the engine guarantees for the duration of the
/// observation). The accessor surface mirrors shared_ptr's, so code written
/// against the historical `PayloadPtr payload` field compiles unchanged.
class PayloadRef {
 public:
  PayloadRef() = default;
  PayloadRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  /// Owning: shares lifetime with `owned` (the historical behaviour).
  /// Templated on the source pointer so `shared_ptr<DerivedPayload>` still
  /// converts in one step, exactly as assigning it to a PayloadPtr did.
  template <typename T, typename = std::enable_if_t<
                            std::is_convertible_v<T&&, PayloadPtr>>>
  PayloadRef(T&& owned)  // NOLINT(google-explicit-constructor)
      : owner_(std::forward<T>(owned)) {
    ptr_ = owner_.get();
  }

  /// Borrowed view; caller guarantees *p outlives every access. Only the
  /// engine's materialization seams use this.
  static PayloadRef borrowed(const Payload* p) {
    PayloadRef r;
    r.ptr_ = p;
    return r;
  }

  const Payload* get() const { return ptr_; }
  const Payload* operator->() const { return ptr_; }
  const Payload& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  /// True when this reference keeps the payload alive by itself.
  bool owning() const { return ptr_ == nullptr || owner_ != nullptr; }

  /// The owning shared_ptr, or null for a borrowed view (callers that need
  /// to retain past the borrow must go through an owning seam such as
  /// pending_for, which always returns owning references).
  const PayloadPtr& owner() const { return owner_; }

 private:
  const Payload* ptr_ = nullptr;
  PayloadPtr owner_;
};

/// A point-to-point message in flight or being delivered.
struct Envelope {
  MessageId id = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Time send_time = 0;
  /// Earliest step at which the receiver may see the message. The engine
  /// guarantees delivery at the receiver's first local step at or after
  /// max(deliver_after, send_time + 1), and no later than send_time + d.
  Time deliver_after = 0;
  PayloadRef payload;
};

/// Convenience downcast for algorithm code. Returns nullptr on mismatch so
/// algorithms can ignore foreign payload types (used by layered protocols).
template <typename T>
const T* payload_cast(const Envelope& env) {
  return dynamic_cast<const T*>(env.payload.get());
}

}  // namespace asyncgossip
