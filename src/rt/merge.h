// Merging per-process rt records into one auditable trace.
//
// Both real-time drivers — threaded (rt/driver.h) and multi-process
// (rt/multiproc.h) — end a run holding one record per gossip process:
// its events in local time order, its probe reports, and its counters.
// This module is the single implementation of what happens next, so the
// two drivers cannot drift: stable-sort by (time, process), renumber
// message ids to be strictly monotone in merged send order (the auditor's
// id contract — raw ids are only unique, not dense: the threaded driver
// draws them from one atomic counter, the multi-process driver namespaces
// a local counter by pid), and compute the realized bounds and outcome
// counters from the merged stream.
//
// Realized d is the maximum of deliver_after - send_time over send *and*
// delivery events: over a socket transport the receiver may re-floor a
// stamp (rt/udp_transport.h), so the delivery-side stamp can exceed the
// sender-recorded one, and the auditor checks the bound at both events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rt/driver.h"
#include "sim/trace.h"

namespace asyncgossip {

/// Everything one gossip process contributes to the merge. Events and
/// probes must each be in local time order (they are recorded that way).
struct RtProcessLog {
  std::vector<TraceRecorder::Event> events;
  std::vector<RtProbeRecord> probes;
  std::uint64_t bytes = 0;
  std::size_t dropped = 0;
};

/// Merges `logs` into result->events / result->probes, renumbers message
/// ids, and fills the outcome counters and realized bounds. Does not touch
/// completed / wall_ms / gathering_ok / majority_ok — those need run
/// context the merge does not have.
void merge_rt_logs(std::size_t n, std::vector<RtProcessLog> logs,
                   const std::vector<std::uint8_t>& crashed,
                   RtRunResult* result);

}  // namespace asyncgossip
