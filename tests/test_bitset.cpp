#include "common/bitset.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace asyncgossip {
namespace {

TEST(Bitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  EXPECT_FALSE(b.all());
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, SetAndCheck) {
  DynamicBitset b(10);
  EXPECT_TRUE(b.set_and_check(3));
  EXPECT_FALSE(b.set_and_check(3));
  EXPECT_TRUE(b.test(3));
}

TEST(Bitset, SetAllRespectsTail) {
  DynamicBitset b(67);
  b.set_all();
  EXPECT_EQ(b.count(), 67u);
  EXPECT_TRUE(b.all());
  b.clear_all();
  EXPECT_TRUE(b.none());
}

TEST(Bitset, SetAllExactWordBoundary) {
  DynamicBitset b(128);
  b.set_all();
  EXPECT_EQ(b.count(), 128u);
  EXPECT_TRUE(b.all());
}

TEST(Bitset, MergeDetectsChange) {
  DynamicBitset a(80), b(80);
  b.set(10);
  b.set(70);
  EXPECT_TRUE(a.merge(b));
  EXPECT_FALSE(a.merge(b));  // idempotent
  EXPECT_TRUE(a.test(10));
  EXPECT_TRUE(a.test(70));
}

TEST(Bitset, MergeSizeMismatchThrows) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a.merge(b), ModelViolation);
}

TEST(Bitset, SubsetOf) {
  DynamicBitset a(64), b(64);
  a.set(1);
  a.set(5);
  b.set(1);
  b.set(5);
  b.set(9);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
  DynamicBitset empty(64);
  EXPECT_TRUE(empty.subset_of(a));
}

TEST(Bitset, AndOperator) {
  DynamicBitset a(32), b(32);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  a &= b;
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_FALSE(a.test(3));
}

TEST(Bitset, FirstClear) {
  DynamicBitset b(130);
  EXPECT_EQ(b.first_clear(), 0u);
  b.set(0);
  b.set(1);
  EXPECT_EQ(b.first_clear(), 2u);
  b.set_all();
  EXPECT_EQ(b.first_clear(), 130u);
  b.reset(129);
  EXPECT_EQ(b.first_clear(), 129u);
}

TEST(Bitset, SetBitsAndForEach) {
  DynamicBitset b(200);
  b.set(3);
  b.set(64);
  b.set(199);
  const auto bits = b.set_bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 3u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 199u);
  std::size_t visited = 0;
  b.for_each_set([&](std::size_t i) {
    EXPECT_TRUE(b.test(i));
    ++visited;
  });
  EXPECT_EQ(visited, 3u);
}

TEST(Bitset, EqualityAndHash) {
  DynamicBitset a(64), b(64), c(65);
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(8);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_FALSE(a == c);  // size matters
}

TEST(Bitset, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), ModelViolation);
  EXPECT_THROW(b.test(10), ModelViolation);
  EXPECT_THROW(b.reset(999), ModelViolation);
}

TEST(Bitset, EmptyBitset) {
  DynamicBitset b(0);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_TRUE(b.all());  // vacuously
  EXPECT_EQ(b.first_clear(), 0u);
}

}  // namespace
}  // namespace asyncgossip
