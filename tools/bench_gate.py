#!/usr/bin/env python3
"""Bench-regression gate: diff an asyncgossip-bench-v1 report against a
committed baseline and fail (exit 1) when a tracked counter regressed
beyond the tolerance.

Usage:
  bench_gate.py --baseline BENCH_engine_seed.json --current BENCH_engine.json
                [--counter steps_per_sec] [--tolerance 0.40]
                [--direction higher-better|lower-better]
  bench_gate.py --current BENCH_rt.json --counter wall_ms_per_ktick \\
                --ratio-num 'rt/none+recorder/ears/...' \\
                --ratio-den 'rt/none/ears/...' --max-ratio 1.05

Two checks, composable in one invocation:

Baseline diff (needs --baseline): only case names present in *both*
documents are compared (CI smoke runs filter the bench to a subset of the
baseline grid). --direction says which way is a regression: higher-better
counters (steps/sec) fail on downward moves, lower-better counters
(wall_ms_per_ktick) fail on upward moves; the other direction never fails.
The default 40% tolerance absorbs shared-runner noise (see
docs/PERFORMANCE.md on why tighter ratio gates are not trustworthy in CI);
catching a genuine 2x slowdown is the design point, not 5% drifts.

Within-report ratio (needs --ratio-num/--ratio-den): counter(num) /
counter(den) over the --current report alone must stay <= --max-ratio.
Both cases come from the same binary in the same run, so this tolerates a
much tighter bound than a cross-run diff — it is how CI holds the flight
recorder's rt overhead to <= 5% (docs/OBSERVABILITY.md).

Stdlib only — the CI image has no extra Python packages.
"""

import argparse
import json
import sys


def load_cases(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "asyncgossip-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {case["name"]: case["counters"] for case in doc["cases"]}


def check_baseline(args, baseline, current):
    """Returns the number of failing cases of the baseline diff."""
    shared = sorted(set(baseline) & set(current))
    if not shared:
        sys.exit("bench gate: no case names shared between baseline and "
                 "current report — wrong suite or empty run?")

    lower_better = args.direction == "lower-better"
    rows = []
    failures = 0
    for name in shared:
        base = baseline[name].get(args.counter)
        cur = current[name].get(args.counter)
        if base is None or cur is None or base <= 0:
            rows.append((name, base, cur, None, "skip (missing counter)"))
            continue
        delta = cur / base - 1.0
        regressed = (delta > args.tolerance) if lower_better \
            else (delta < -args.tolerance)
        failures += regressed
        rows.append((name, base, cur, delta,
                     "FAIL" if regressed else "ok"))

    name_w = max(len(r[0]) for r in rows)
    sign = "+" if lower_better else "-"
    print(f"bench gate: counter={args.counter} direction={args.direction} "
          f"tolerance={sign}{args.tolerance:.0%} ({len(shared)} shared "
          f"case(s))")
    print(f"{'case'.ljust(name_w)}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>8}  status")
    for name, base, cur, delta, status in rows:
        base_s = f"{base:,.3f}" if base is not None else "-"
        cur_s = f"{cur:,.3f}" if cur is not None else "-"
        delta_s = f"{delta:+.1%}" if delta is not None else "-"
        print(f"{name.ljust(name_w)}  {base_s:>12}  {cur_s:>12}  "
              f"{delta_s:>8}  {status}")

    only_base = sorted(set(baseline) - set(current))
    if only_base:
        print(f"(not run this time: {', '.join(only_base)})")

    if failures:
        print(f"bench gate: {failures} case(s) regressed more than "
              f"{args.tolerance:.0%}")
    return failures


def check_ratio(args, current):
    """Returns 1 if the within-report ratio check failed, else 0."""
    for case in (args.ratio_num, args.ratio_den):
        if case not in current:
            sys.exit(f"bench gate: ratio case {case!r} not in "
                     f"{args.current}")
        if args.counter not in current[case]:
            sys.exit(f"bench gate: ratio case {case!r} has no counter "
                     f"{args.counter!r}")
    num = current[args.ratio_num][args.counter]
    den = current[args.ratio_den][args.counter]
    if den <= 0:
        sys.exit(f"bench gate: ratio denominator {args.ratio_den!r} has "
                 f"non-positive {args.counter} ({den})")
    ratio = num / den
    ok = ratio <= args.max_ratio
    print(f"bench gate ratio: {args.counter}")
    print(f"  num {args.ratio_num} = {num:,.3f}")
    print(f"  den {args.ratio_den} = {den:,.3f}")
    print(f"  ratio {ratio:.4f} vs max {args.max_ratio:.4f} "
          f"-> {'ok' if ok else 'FAIL'}")
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        help="committed baseline report (omit for a "
                             "ratio-only invocation)")
    parser.add_argument("--current", required=True)
    parser.add_argument("--counter", default="steps_per_sec")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="max fractional regression (default 0.40)")
    parser.add_argument("--direction", default="higher-better",
                        choices=("higher-better", "lower-better"),
                        help="which way the counter regresses "
                             "(default higher-better)")
    parser.add_argument("--ratio-num",
                        help="within-report ratio check: numerator case")
    parser.add_argument("--ratio-den",
                        help="within-report ratio check: denominator case")
    parser.add_argument("--max-ratio", type=float, default=1.05,
                        help="ratio check bound (default 1.05)")
    args = parser.parse_args()

    ratio_mode = args.ratio_num is not None or args.ratio_den is not None
    if ratio_mode and (args.ratio_num is None or args.ratio_den is None):
        sys.exit("bench gate: --ratio-num and --ratio-den go together")
    if not ratio_mode and args.baseline is None:
        sys.exit("bench gate: --baseline is required unless running a "
                 "ratio-only check")

    current = load_cases(args.current)
    failures = 0
    if ratio_mode:
        failures += check_ratio(args, current)
    if args.baseline is not None:
        failures += check_baseline(args, load_cases(args.baseline), current)
    if failures:
        return 1
    print("bench gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
