#include "sim/shrink.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.h"

namespace asyncgossip {
namespace {

FuzzCase big_case() {
  FuzzCase c;
  c.algorithm = 2;
  c.n = 48;
  c.f = 20;
  c.d = 7;
  c.delta = 5;
  c.schedule = SchedulePattern::kStraggler;
  c.delay = DelayPattern::kBimodal;
  c.crash_horizon = 60;
  c.seed = 0xABCDEF1234ULL;
  return c;
}

FuzzVerdict failing(const char* why = "boom") {
  FuzzVerdict v;
  v.ok = false;
  v.failure = why;
  return v;
}

TEST(Shrink, AlwaysFailingOracleReachesTheGlobalMinimum) {
  const FuzzOracle oracle = [](const FuzzCase&) { return failing(); };
  const ShrinkResult r = shrink_case(big_case(), failing(), oracle);
  EXPECT_EQ(r.minimal.n, 2u);
  EXPECT_EQ(r.minimal.f, 0u);
  EXPECT_EQ(r.minimal.d, 1u);
  EXPECT_EQ(r.minimal.delta, 1u);
  EXPECT_EQ(r.minimal.schedule, SchedulePattern::kLockStep);
  EXPECT_EQ(r.minimal.delay, DelayPattern::kUnitDelay);
  EXPECT_EQ(r.minimal.crash_horizon, 1u);
  EXPECT_EQ(r.minimal.seed, 1u);
  EXPECT_EQ(r.minimal.algorithm, 2u);  // never touched: not a complexity axis
  EXPECT_FALSE(r.verdict.ok);
  EXPECT_GT(r.rounds, 1u);
}

TEST(Shrink, PreservesTheFailureCondition) {
  // Fails iff n >= 10 and f >= 2: the greedy walk must stop exactly at the
  // boundary instead of overshooting to the global minimum.
  const FuzzOracle oracle = [](const FuzzCase& c) {
    if (c.n >= 10 && c.f >= 2) return failing("needs n>=10, f>=2");
    return FuzzVerdict{};
  };
  const ShrinkResult r = shrink_case(big_case(), failing(), oracle);
  EXPECT_EQ(r.minimal.n, 10u);
  EXPECT_EQ(r.minimal.f, 2u);
  // Everything unrelated to the condition still flattens fully.
  EXPECT_EQ(r.minimal.d, 1u);
  EXPECT_EQ(r.minimal.delta, 1u);
  EXPECT_EQ(r.minimal.schedule, SchedulePattern::kLockStep);
  EXPECT_EQ(r.minimal.seed, 1u);
  // Local minimum: no candidate of the result still fails.
  const FuzzVerdict check = oracle(r.minimal);
  EXPECT_FALSE(check.ok);
}

TEST(Shrink, Deterministic) {
  const FuzzOracle oracle = [](const FuzzCase& c) {
    if (c.n * (c.d + c.delta) >= 40) return failing();
    return FuzzVerdict{};
  };
  const ShrinkResult a = shrink_case(big_case(), failing(), oracle);
  const ShrinkResult b = shrink_case(big_case(), failing(), oracle);
  EXPECT_EQ(a.minimal, b.minimal);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Shrink, AcceptsADifferentFailureWhileShrinking) {
  // A simpler case failing with a *different* message is still accepted;
  // the final verdict carries the new failure.
  const FuzzOracle oracle = [](const FuzzCase& c) {
    if (c.n <= 10) return failing("small-case bug");
    return failing("big-case bug");
  };
  const ShrinkResult r = shrink_case(big_case(), failing("big-case bug"),
                                     oracle);
  EXPECT_EQ(r.minimal.n, 2u);
  EXPECT_EQ(r.verdict.failure, "small-case bug");
}

TEST(Shrink, RespectsMaxAttempts) {
  std::size_t calls = 0;
  const FuzzOracle oracle = [&](const FuzzCase&) {
    ++calls;
    return failing();
  };
  ShrinkOptions options;
  options.max_attempts = 3;
  const ShrinkResult r = shrink_case(big_case(), failing(), oracle, options);
  EXPECT_LE(r.attempts, 3u);
  EXPECT_EQ(calls, r.attempts);
}

TEST(Shrink, AlreadyMinimalCaseIsAFixpoint) {
  FuzzCase minimal;
  minimal.algorithm = 0;
  minimal.n = 2;
  minimal.f = 0;
  minimal.d = 1;
  minimal.delta = 1;
  minimal.schedule = SchedulePattern::kLockStep;
  minimal.delay = DelayPattern::kUnitDelay;
  minimal.crash_horizon = 1;
  minimal.seed = 1;
  std::size_t calls = 0;
  const FuzzOracle oracle = [&](const FuzzCase&) {
    ++calls;
    return failing();
  };
  const ShrinkResult r = shrink_case(minimal, failing(), oracle);
  EXPECT_EQ(r.minimal, minimal);
  EXPECT_EQ(calls, 0u);  // no candidate is simpler; the oracle never runs
  EXPECT_EQ(r.rounds, 1u);
}

TEST(Shrink, RequiresAFailingVerdict) {
  const FuzzOracle oracle = [](const FuzzCase&) { return FuzzVerdict{}; };
  EXPECT_THROW(shrink_case(big_case(), FuzzVerdict{}, oracle),
               ModelViolation);
}

}  // namespace
}  // namespace asyncgossip
