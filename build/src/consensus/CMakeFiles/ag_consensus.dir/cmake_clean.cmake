file(REMOVE_RECURSE
  "CMakeFiles/ag_consensus.dir/canetti_rabin.cpp.o"
  "CMakeFiles/ag_consensus.dir/canetti_rabin.cpp.o.d"
  "CMakeFiles/ag_consensus.dir/get_core.cpp.o"
  "CMakeFiles/ag_consensus.dir/get_core.cpp.o.d"
  "libag_consensus.a"
  "libag_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
