#include "gossip/tears.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace asyncgossip {

void TearsConfig::finalize() {
  AG_ASSERT_MSG(n >= 2, "TEARS needs n >= 2");
  const double log2n = std::log2(static_cast<double>(n));
  const double sqrtn = std::sqrt(static_cast<double>(n));
  const double raw_a = a_constant * sqrtn * log2n;
  // Pi sets exclude self, so the inclusion probability a/n is capped via
  // a <= n-1 (the paper assumes n large enough that a << n).
  a = static_cast<std::size_t>(
      std::clamp(std::ceil(raw_a), 1.0, static_cast<double>(n - 1)));
  mu = std::max<std::size_t>(1, a / 2);
  const double raw_kappa =
      kappa_constant * std::pow(static_cast<double>(n), 0.25) * log2n;
  kappa = static_cast<std::size_t>(std::max(1.0, std::ceil(raw_kappa)));
}

TearsProcess::TearsProcess(ProcessId id, TearsConfig config)
    : id_(id),
      config_(config),
      rng_(config.seed ^ (0x7EA55000ULL + id)),
      rumors_(config.n) {
  AG_ASSERT_MSG(config_.n > 0 && id < config_.n, "bad process id / n");
  if (config_.a == 0) config_.finalize();
  rumors_.set(id_);
  // Select Pi1(p), Pi2(p): every q != p independently with probability a/n.
  const double prob =
      static_cast<double>(config_.a) / static_cast<double>(config_.n);
  for (std::size_t q = 0; q < config_.n; ++q) {
    if (q == id_) continue;
    if (rng_.bernoulli(prob)) pi1_.push_back(static_cast<ProcessId>(q));
    if (rng_.bernoulli(prob)) pi2_.push_back(static_cast<ProcessId>(q));
  }
}

bool TearsProcess::broadcast_trigger_crossed(std::uint64_t before,
                                             std::uint64_t after) const {
  if (after == before) return false;
  const std::uint64_t mu = config_.mu;
  const std::uint64_t kappa = config_.kappa;
  // Band trigger: some newly reached count value v in (before, after]
  // satisfies mu - kappa <= v < mu + kappa.
  const std::uint64_t band_lo = mu > kappa ? mu - kappa : 0;
  const std::uint64_t band_hi_incl = mu + kappa - 1;
  {
    const std::uint64_t lo = std::max(before + 1, band_lo);
    const std::uint64_t hi = std::min(after, band_hi_incl);
    if (lo <= hi) return true;
  }
  // Lattice trigger: some v in (before, after] with v = mu + i*kappa, i >= 1.
  if (after > mu) {
    const std::uint64_t first = std::max(before + 1, mu + kappa);
    if (first <= after) {
      // smallest multiple-of-kappa offset >= first - mu
      const std::uint64_t off = first - mu;
      const std::uint64_t i = (off + kappa - 1) / kappa;
      if (mu + i * kappa <= after) return true;
    }
  }
  return false;
}

void TearsProcess::step(StepContext& ctx) {
  sent_last_step_ = 0;
  const std::uint64_t cnt_before = up_msg_cnt_;

  // Receive: gather rumors, count first-level (flag-up) messages.
  for (const Envelope& env : ctx.received()) {
    const auto* m = payload_cast<TearsPayload>(env);
    if (m == nullptr) continue;
    rumors_.merge(m->rumors);
    if (m->flag_up) ++up_msg_cnt_;
  }

  // First local step: first-level transmission of own rumor to Pi1.
  if (steps_taken_ == 0) {
    ctx.probe_phase("first-level");
    auto first = std::make_shared<TearsPayload>();
    first->rumors = rumors_;
    first->flag_up = true;
    for (ProcessId q : pi1_) {
      ctx.send(q, first);
      ++sent_last_step_;
    }
  }

  // Second-level transmission to Pi2 when a trigger count was crossed.
  if (broadcast_trigger_crossed(cnt_before, up_msg_cnt_)) {
    ctx.probe_phase("second-level");
    auto second = std::make_shared<TearsPayload>();
    second->rumors = rumors_;
    second->flag_up = false;
    for (ProcessId q : pi2_) {
      ctx.send(q, second);
      ++sent_last_step_;
    }
    ++bcasts_sent_;
  }

  ctx.probe_state(rumors_.count(), 0);
  ++steps_taken_;
}

std::unique_ptr<Process> TearsProcess::clone() const {
  return std::make_unique<TearsProcess>(*this);
}

}  // namespace asyncgossip
