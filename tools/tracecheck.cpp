// tracecheck — offline linter for recorded execution traces.
//
// Consumes the text trace format written by TraceRecorder::write_trace
// (sim/trace.h; record one with `gossiplab trace --record FILE`) plus a
// model spec (n, d, delta, f), replays the events through the same
// InvariantAuditor that audits live runs (sim/audit.h), and reports every
// model-contract violation with the offending line and surrounding
// context. Exit status: 0 clean, 1 violations found, 2 usage or I/O
// error, 3 malformed trace.
//
// The model spec is read from the trace's `model n=.. d=.. delta=.. f=..`
// line; command-line flags override it. This makes a recorded trace a
// *verifiable artifact*: a benchmark run can ship its trace, and anyone
// can re-check that the claimed (d, delta, f) bounds actually held.
//
// Usage:
//   tracecheck [--n N] [--d D] [--delta DELTA] [--f F]
//              [--context K] [--max-report M] [--no-finalize] FILE
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/audit.h"
#include "sim/trace.h"

using namespace asyncgossip;

namespace {

struct Options {
  AuditConfig model;
  bool n_set = false, d_set = false, delta_set = false, f_set = false;
  std::size_t context = 2;
  bool finalize = true;
  std::string path;
};

void usage() {
  std::fprintf(stderr,
               "usage: tracecheck [--n N] [--d D] [--delta DELTA] [--f F]\n"
               "                  [--context K] [--max-report M] "
               "[--no-finalize] FILE\n"
               "record a trace with: gossiplab trace --alg ears --n 16 "
               "--f 4 --record FILE\n");
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_options(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_u64 = [&](std::uint64_t* out) {
      return i + 1 < argc && parse_u64(argv[++i], out);
    };
    std::uint64_t v = 0;
    if (arg == "--n" && next_u64(&v)) {
      opts->model.n = v;
      opts->n_set = true;
    } else if (arg == "--d" && next_u64(&v)) {
      opts->model.d = v;
      opts->d_set = true;
    } else if (arg == "--delta" && next_u64(&v)) {
      opts->model.delta = v;
      opts->delta_set = true;
    } else if (arg == "--f" && next_u64(&v)) {
      opts->model.max_crashes = v;
      opts->f_set = true;
    } else if (arg == "--context" && next_u64(&v)) {
      opts->context = v;
    } else if (arg == "--max-report" && next_u64(&v)) {
      opts->model.max_recorded = v;
    } else if (arg == "--no-finalize") {
      opts->finalize = false;
    } else if (!arg.empty() && arg[0] != '-' && opts->path.empty()) {
      opts->path = arg;
    } else {
      std::fprintf(stderr, "tracecheck: bad argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts->path.empty();
}

/// Absorbs a `model n=.. d=.. delta=.. f=..` line, not overriding values
/// pinned on the command line.
void absorb_model_line(const std::string& line, Options* opts) {
  unsigned long long n = 0, d = 0, delta = 0, f = 0;
  if (std::sscanf(line.c_str(), "model n=%llu d=%llu delta=%llu f=%llu", &n,
                  &d, &delta, &f) != 4)
    return;
  if (!opts->n_set) opts->model.n = static_cast<std::size_t>(n);
  if (!opts->d_set) opts->model.d = d;
  if (!opts->delta_set) opts->model.delta = delta;
  if (!opts->f_set) opts->model.max_crashes = static_cast<std::size_t>(f);
}

void print_context(const std::vector<std::string>& lines, std::size_t line_no,
                   std::size_t context) {
  const std::size_t first = line_no > context ? line_no - context : 1;
  const std::size_t last = std::min(lines.size(), line_no + context);
  for (std::size_t i = first; i <= last; ++i)
    std::fprintf(stderr, "  %c%5zu | %s\n", i == line_no ? '>' : ' ', i,
                 lines[i - 1].c_str());
}

int run(const Options& opts_in) {
  Options opts = opts_in;
  std::ifstream in(opts.path);
  if (!in) {
    std::fprintf(stderr, "tracecheck: cannot open %s\n", opts.path.c_str());
    return 2;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  // First pass: pick up the model spec (flags win over the model line).
  for (const std::string& line : lines)
    if (line.rfind("model", 0) == 0) absorb_model_line(line, &opts);
  if (opts.model.n == 0) {
    std::fprintf(stderr,
                 "tracecheck: no model spec — the trace has no `model` line "
                 "and --n was not given\n");
    return 2;
  }

  InvariantAuditor auditor(opts.model);
  std::uint64_t reported = 0;
  std::size_t parse_errors = 0;
  Time last_event_time = 0;
  bool any_event = false;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    TraceRecorder::Event e;
    const auto parsed = TraceRecorder::parse_line(lines[i], &e);
    if (parsed == TraceRecorder::ParseResult::kSkip) continue;
    if (parsed == TraceRecorder::ParseResult::kError) {
      ++parse_errors;
      if (parse_errors <= 3) {
        std::fprintf(stderr, "%s:%zu: malformed trace line\n",
                     opts.path.c_str(), i + 1);
        print_context(lines, i + 1, opts.context);
      }
      continue;
    }
    const std::uint64_t before = auditor.report().total();
    switch (e.kind) {
      case TraceRecorder::EventKind::kStep:
        auditor.on_step(e.time, e.process);
        break;
      case TraceRecorder::EventKind::kSend: {
        Envelope env;
        env.id = e.message;
        env.from = e.process;
        env.to = e.peer;
        env.send_time = e.send_time;
        env.deliver_after = e.deliver_after;
        auditor.on_send(env);
        break;
      }
      case TraceRecorder::EventKind::kDelivery: {
        Envelope env;
        env.id = e.message;
        env.from = e.peer;
        env.to = e.process;
        env.send_time = e.send_time;
        env.deliver_after = e.deliver_after;
        auditor.on_delivery(env, e.time);
        break;
      }
      case TraceRecorder::EventKind::kCrash:
        auditor.on_crash(e.time, e.process);
        break;
    }
    any_event = true;
    last_event_time = std::max(last_event_time, e.time);

    // Attribute fresh findings to this line while they are still cheap to
    // locate; counts beyond max_recorded stay in the per-kind totals.
    const auto& violations = auditor.report().violations();
    for (std::uint64_t v = before; v < auditor.report().total(); ++v) {
      ++reported;
      if (v >= violations.size()) break;
      const Violation& viol = violations[static_cast<std::size_t>(v)];
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", opts.path.c_str(), i + 1,
                   to_string(viol.kind), viol.detail.c_str());
      print_context(lines, i + 1, opts.context);
    }
  }

  if (opts.finalize && any_event) {
    const std::uint64_t before = auditor.report().total();
    // The trace covers global steps 0 .. last_event_time; anything the
    // engine ran beyond that emitted no events and cannot starve anyone
    // for longer than what finalize already checks.
    auditor.finalize(last_event_time + 1);
    const auto& violations = auditor.report().violations();
    for (std::uint64_t v = before; v < auditor.report().total(); ++v) {
      ++reported;
      if (v >= violations.size()) break;
      const Violation& viol = violations[static_cast<std::size_t>(v)];
      std::fprintf(stderr, "%s: [%s] %s (end-of-trace check)\n",
                   opts.path.c_str(), to_string(viol.kind),
                   viol.detail.c_str());
    }
  }

  const std::uint64_t total = auditor.report().total();
  if (parse_errors != 0) {
    std::fprintf(stderr, "tracecheck: %zu malformed line(s), %llu model "
                 "violation(s)\n",
                 parse_errors, static_cast<unsigned long long>(total));
    return 3;
  }
  if (total != 0) {
    std::fprintf(stderr,
                 "tracecheck: %llu model violation(s) in %s (n=%zu d=%llu "
                 "delta=%llu f=%zu)\n",
                 static_cast<unsigned long long>(total), opts.path.c_str(),
                 opts.model.n, static_cast<unsigned long long>(opts.model.d),
                 static_cast<unsigned long long>(opts.model.delta),
                 opts.model.max_crashes);
    return 1;
  }
  std::printf(
      "tracecheck: OK — %llu steps, %llu sends, %llu deliveries, %llu "
      "crashes conform to (n=%zu, d=%llu, delta=%llu, f=%zu)\n",
      static_cast<unsigned long long>(auditor.observed_steps()),
      static_cast<unsigned long long>(auditor.observed_sends()),
      static_cast<unsigned long long>(auditor.observed_deliveries()),
      static_cast<unsigned long long>(auditor.observed_crashes()),
      opts.model.n, static_cast<unsigned long long>(opts.model.d),
      static_cast<unsigned long long>(opts.model.delta),
      opts.model.max_crashes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_options(argc, argv, &opts)) {
    usage();
    return 2;
  }
  try {
    return run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracecheck: %s\n", e.what());
    return 2;
  }
}
