#include "sim/fuzz.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"

namespace asyncgossip {

std::string to_string(const FuzzCase& c) {
  return "alg#" + std::to_string(c.algorithm) + "/n:" + std::to_string(c.n) +
         "/f:" + std::to_string(c.f) + "/d:" + std::to_string(c.d) +
         "/delta:" + std::to_string(c.delta) +
         "/sched:" + to_string(c.schedule) + "/delay:" + to_string(c.delay) +
         "/horizon:" + std::to_string(c.crash_horizon) +
         "/seed:" + std::to_string(c.seed);
}

bool operator==(const FuzzCase& a, const FuzzCase& b) {
  return a.algorithm == b.algorithm && a.n == b.n && a.f == b.f && a.d == b.d &&
         a.delta == b.delta && a.schedule == b.schedule && a.delay == b.delay &&
         a.crash_horizon == b.crash_horizon && a.seed == b.seed;
}

FuzzCase sample_case(const FuzzDomain& domain, Xoshiro256SS& rng) {
  AG_ASSERT_MSG(!domain.ns.empty(), "fuzz domain needs at least one n");
  AG_ASSERT_MSG(!domain.schedules.empty() && !domain.delays.empty(),
                "fuzz domain needs at least one schedule and delay pattern");
  AG_ASSERT_MSG(domain.algorithms >= 1, "fuzz domain needs >= 1 algorithms");
  FuzzCase c;
  c.algorithm = rng.uniform(domain.algorithms);
  c.n = std::max<std::size_t>(2, domain.ns[rng.uniform(domain.ns.size())]);
  const auto f_cap = static_cast<std::size_t>(
      static_cast<double>(c.n) * std::clamp(domain.max_f_fraction, 0.0, 1.0));
  c.f = std::min(rng.uniform(f_cap + 1), c.n - 1);
  c.d = 1 + rng.uniform(std::max<Time>(domain.max_d, 1));
  c.delta = 1 + rng.uniform(std::max<Time>(domain.max_delta, 1));
  c.schedule = domain.schedules[rng.uniform(domain.schedules.size())];
  c.delay = domain.delays[rng.uniform(domain.delays.size())];
  c.crash_horizon = 1 + rng.uniform(std::max<Time>(domain.max_crash_horizon, 1));
  c.seed = rng.next();
  return c;
}

FuzzReport run_fuzz(const FuzzDomain& domain, const FuzzOptions& options,
                    const FuzzOracle& oracle) {
  AG_ASSERT_MSG(static_cast<bool>(oracle), "run_fuzz needs an oracle");
  // aglint:allow(AG-DET-002) the wall-clock budget only bounds *how many*
  // cases run; each case is fully determined by its seed, so cutting the
  // loop short never changes any case's outcome or trace hash (and sim/
  // cannot depend on rt/clock.h — layering).
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (options.time_budget_ms == 0) return false;
    // aglint:allow(AG-DET-002) see the budget note on `start` above.
    const auto now = std::chrono::steady_clock::now();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
    return static_cast<std::uint64_t>(elapsed.count()) >=
           options.time_budget_ms;
  };

  Xoshiro256SS rng(options.seed ^ 0xF0220000F022ULL);
  FuzzReport report;
  const std::uint64_t max_failures = std::max<std::uint64_t>(
      options.max_failures, 1);
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    // Sample unconditionally so the i-th case never depends on the time
    // budget: aborted sweeps stay prefixes of longer ones.
    const FuzzCase c = sample_case(domain, rng);
    if (out_of_time()) break;
    FuzzVerdict verdict = oracle(c);
    ++report.cases_run;
    if (!verdict.ok) {
      report.failures.push_back(FuzzFailure{c, std::move(verdict), i});
      if (report.failures.size() >= max_failures) break;
    }
  }
  return report;
}

ViolationReport audit_events(const std::vector<TraceRecorder::Event>& events,
                             const AuditConfig& config, bool finalize) {
  InvariantAuditor auditor(config);
  Time last_time = 0;
  bool any = false;
  for (const TraceRecorder::Event& e : events) {
    switch (e.kind) {
      case TraceRecorder::EventKind::kStep:
        auditor.on_step(e.time, e.process);
        break;
      case TraceRecorder::EventKind::kSend: {
        Envelope env;
        env.id = e.message;
        env.from = e.process;
        env.to = e.peer;
        env.send_time = e.send_time;
        env.deliver_after = e.deliver_after;
        auditor.on_send(env);
        break;
      }
      case TraceRecorder::EventKind::kDelivery: {
        Envelope env;
        env.id = e.message;
        env.from = e.peer;
        env.to = e.process;
        env.send_time = e.send_time;
        env.deliver_after = e.deliver_after;
        auditor.on_delivery(env, e.time);
        break;
      }
      case TraceRecorder::EventKind::kCrash:
        auditor.on_crash(e.time, e.process);
        break;
    }
    any = true;
    last_time = std::max(last_time, e.time);
  }
  if (finalize && any) auditor.finalize(last_time + 1);
  return auditor.report();
}

}  // namespace asyncgossip
