// Asynchronous message transport for the real-time runtime.
//
// The simulator's network is a timing wheel owned by one thread; here it is
// a set of mutex-guarded per-destination inboxes written to concurrently by
// sender threads and drained by the owning receiver thread — a genuinely
// asynchronous channel whose delivery order is decided by real scheduling,
// not by an adversary object.
//
// The transport is where the model's delivery-side guarantees are pinned
// down against wall-clock nondeterminism:
//
//   * No late stamp: each drain(p, now) records `now`; a later submit whose
//     deliver_after would land at or before any tick p has already drained
//     is pushed to that tick + 1. A message still pending after the drain
//     at tick T therefore provably has deliver_after > T, so the recorded
//     trace never shows a receiver stepping past a deliverable message
//     (the auditor's kLateDelivery check).
//   * Per-link FIFO: deliver_after stamps on each (sender, receiver) link
//     are made monotone under the inbox lock, and drains take *every*
//     deliverable message at once, so an older same-link message can never
//     be overtaken by a newer one (kFifoInversion).
//
// Both adjustments only ever *delay* a message, which the model always
// permits — the realized delivery bound d reported for the run absorbs
// them (rt/driver.h).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/message.h"
#include "sim/types.h"

namespace asyncgossip {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Hands a message to the network. `env.deliver_after` carries the
  /// sender's raw delay draw; the transport may move it later (see file
  /// comment) but never earlier. Returns the final deliver_after stamp,
  /// or kTimeMax if the destination's inbox is closed (crashed) and the
  /// message was dropped.
  virtual Time submit(Envelope env) = 0;

  /// Moves every pending message for `p` with deliver_after <= now into
  /// *out (appended, sorted by message id) and returns how many. Records
  /// `now` as p's latest drain tick.
  virtual std::size_t drain(ProcessId p, Time now, std::vector<Envelope>* out) = 0;

  /// Closes p's inbox (crash): pending messages are discarded and later
  /// submits are dropped. Returns the number discarded.
  virtual std::size_t close_inbox(ProcessId p) = 0;

  /// End-of-step hook for transports that batch: pushes everything `from`
  /// staged this step onto the wire. No-op for unbatched transports.
  virtual void flush(ProcessId from, Time now) { (void)from, (void)now; }

  /// Network upkeep independent of any live process: retransmits, acks,
  /// and pumping the inboxes of crashed processes (whose owner threads are
  /// gone but whose in-flight traffic must still settle — the model
  /// delivers every message that entered the network). The driver's
  /// completion monitor calls this each poll. No-op by default.
  virtual void service(Time now) { (void)now; }

  /// Envelopes newly discarded at *closed* inboxes since the last call
  /// (asynchronous arrivals that submit() could not report as kTimeMax).
  /// The caller settles its in-flight accounting with them. Always 0 for
  /// transports whose submit() reports closure synchronously.
  virtual std::size_t reap_discarded() { return 0; }
};

/// In-process implementation: one inbox per process, each with its own
/// mutex (senders of distinct destinations never contend).
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(std::size_t n);

  Time submit(Envelope env) override;
  std::size_t drain(ProcessId p, Time now, std::vector<Envelope>* out) override;
  std::size_t close_inbox(ProcessId p) override;

 private:
  /// Every field is written by sender threads and the receiver thread
  /// concurrently; clang's Thread Safety Analysis enforces that no access
  /// escapes `mu` (see common/thread_annotations.h, docs/ANALYSIS.md).
  struct Inbox {
    // Guarded members are initialized here, in Inbox's own constructor,
    // where the analysis knows the object is not yet shared.
    explicit Inbox(std::size_t n) : link_floor(n, 0) {}

    Mutex mu;
    std::vector<Envelope> pending AG_GUARDED_BY(mu);
    // Per-sender minimum next deliver_after.
    std::vector<Time> link_floor AG_GUARDED_BY(mu);
    Time last_drain_tick AG_GUARDED_BY(mu) = 0;
    bool drained_once AG_GUARDED_BY(mu) = false;
    bool closed AG_GUARDED_BY(mu) = false;
  };

  std::vector<std::unique_ptr<Inbox>> inboxes_;
};

}  // namespace asyncgossip
