// Completion detection and property checking for gossip executions.
//
// The paper: "gossip completes when each process has either crashed or both
// (a) received the rumor of every correct process and (b) stopped sending
// messages." Online we detect the stable global state [network empty AND
// every process crashed-or-quiescent]; once it holds nothing can change, so
// quiescence really is "stopped sending forever". The reported completion
// time is the time of the last send (+1), which is exactly when the system
// went silent, independent of how long the detector waited.
#pragma once

#include <cstdint>

// aglint:allow(AG-LAY-002) completion detection *is* engine-side analysis:
// it inspects global network/process state no algorithm may see. Algorithm
// files stay behind the StepContext seam; this header is the runner side.
#include "sim/engine.h"

namespace asyncgossip {

/// True iff the network is drained and every process has crashed or is
/// quiescent. Processes must implement GossipProcess.
bool gossip_quiet(const Engine& engine);

/// Every live process knows the rumor of every *correct* (never-crashed)
/// process — the paper's rumor-gathering requirement.
bool check_gathering(const Engine& engine);

/// Every live process knows strictly more than n/2 rumors — the majority
/// gossip requirement solved by TEARS.
bool check_majority(const Engine& engine);

struct GossipOutcome {
  /// Quiet state reached within the step budget.
  bool completed = false;
  /// Time of the last message send + 1 (0 if nothing was ever sent).
  Time completion_time = 0;
  /// Global step at which the quiet state was detected.
  Time detection_time = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  Time realized_d = 0;
  Time realized_delta = 0;
  std::size_t alive = 0;
  std::size_t crashes = 0;
  bool gathering_ok = false;
  bool majority_ok = false;
};

/// Runs the engine until gossip_quiet (or max_steps) and collects the
/// outcome and property checks.
GossipOutcome run_gossip(Engine& engine, Time max_steps);

}  // namespace asyncgossip
