#include "gossip/trivial.h"

#include "common/assert.h"

namespace asyncgossip {

TrivialGossipProcess::TrivialGossipProcess(ProcessId id, std::size_t n)
    : id_(id), n_(n), rumors_(n) {
  AG_ASSERT_MSG(n > 0 && id < n, "bad process id / n");
  rumors_.set(id_);
}

void TrivialGossipProcess::step(StepContext& ctx) {
  for (const Envelope& env : ctx.received()) {
    const auto* m = payload_cast<TrivialPayload>(env);
    if (m != nullptr) rumors_.merge(m->rumors);
  }
  if (steps_taken_ == 0) {
    ctx.probe_phase("broadcast");
    auto payload = std::make_shared<TrivialPayload>();
    payload->rumors = rumors_;
    for (std::size_t q = 0; q < n_; ++q)
      ctx.send(static_cast<ProcessId>(q), payload);
  }
  ctx.probe_state(rumors_.count(), 0);
  ++steps_taken_;
}

std::unique_ptr<Process> TrivialGossipProcess::clone() const {
  return std::make_unique<TrivialGossipProcess>(*this);
}

}  // namespace asyncgossip
