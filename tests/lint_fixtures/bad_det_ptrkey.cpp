// aglint-fixture-as: src/sim/fixture_ptrkey.cpp
// aglint-expect: AG-DET-004
//
// A pointer-keyed ordered container iterates in allocation-address order —
// deterministic-looking in one run, different in the next.
#include <map>

namespace asyncgossip {

struct Node {
  int value;
};

int first_by_address(const std::map<Node*, int>& ranks) {  // AG-DET-004
  return ranks.empty() ? 0 : ranks.begin()->second;
}

}  // namespace asyncgossip
