// Complexity accounting: exactly the measures the paper reports.
//
// Time complexity is measured in discrete global steps; message complexity
// is the number of point-to-point messages sent by all processes combined
// (the paper counts messages, not bits). The engine also records the
// *realized* per-execution bounds d and delta so benches can report time in
// units of (d + delta).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace asyncgossip {

class Metrics {
 public:
  explicit Metrics(std::size_t n)
      : per_process_sent_(n, 0), per_process_received_(n, 0) {}

  // --- recording (engine only) ------------------------------------------
  // Defined inline: these run once per message / per step on the engine hot
  // path, and a cross-TU call would cost more than the increments they do.
  void record_send(ProcessId from, Time now, std::size_t payload_bytes) {
    ++messages_sent_;
    bytes_sent_ += payload_bytes;
    ++per_process_sent_[from];
    last_send_time_ = now;
    any_send_ = true;
  }
  /// `prev_step` is the receiver's previous local-step time (kTimeMax if it
  /// never stepped before): per the paper's definition, a message witnesses
  /// a delay bound of prev_step - send_time + 1 — the wait after the
  /// receiver's last pre-delivery step is attributable to delta, not d.
  void record_delivery(ProcessId to, Time send_time, Time prev_step,
                       Time now) {
    ++messages_delivered_;
    ++per_process_received_[to];
    Time witnessed = 1;
    if (prev_step != kTimeMax && prev_step > send_time)
      witnessed = prev_step - send_time + 1;
    witnessed = std::min(witnessed, now - send_time);
    realized_d_ = std::max(realized_d_, witnessed);
  }
  void record_gap(Time gap) { realized_delta_ = std::max(realized_delta_, gap); }
  void record_local_step() { ++local_steps_; }
  void record_crash() { ++crashes_; }
  /// End-of-step sample of the number of messages in the network; the
  /// max_in_flight() gauge is the maximum over these samples.
  void record_in_flight(std::size_t in_flight) {
    max_in_flight_ = std::max(max_in_flight_, in_flight);
  }

  // --- reporting ----------------------------------------------------------
  /// Total point-to-point messages sent.
  std::uint64_t messages_sent() const { return messages_sent_; }
  /// Total payload bytes sent — the bit-complexity measure (/8) the paper
  /// poses as future work (Section 7).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t messages_sent_by(ProcessId p) const {
    return per_process_sent_[p];
  }
  const std::vector<std::uint64_t>& per_process_sent() const {
    return per_process_sent_;
  }
  std::uint64_t messages_received_by(ProcessId p) const {
    return per_process_received_[p];
  }
  const std::vector<std::uint64_t>& per_process_received() const {
    return per_process_received_;
  }

  /// Peak network load: the largest end-of-step count of sent-but-undelivered
  /// messages addressed to live processes (a crash voids its mailbox).
  std::size_t max_in_flight() const { return max_in_flight_; }

  /// Global time of the most recent send; the natural "the system went
  /// quiet at ..." stamp used as gossip completion time.
  Time last_send_time() const { return last_send_time_; }
  bool any_send() const { return any_send_; }

  /// Largest observed delivery delay (receiver step time - send time).
  Time realized_d() const { return realized_d_; }
  /// Largest observed gap between consecutive local steps of a live process.
  Time realized_delta() const { return realized_delta_; }

  std::uint64_t local_steps() const { return local_steps_; }
  std::uint64_t crashes() const { return crashes_; }

 private:
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t local_steps_ = 0;
  std::uint64_t crashes_ = 0;
  Time last_send_time_ = 0;
  bool any_send_ = false;
  Time realized_d_ = 0;
  Time realized_delta_ = 0;
  std::size_t max_in_flight_ = 0;
  std::vector<std::uint64_t> per_process_sent_;
  std::vector<std::uint64_t> per_process_received_;
};

}  // namespace asyncgossip
