// Bridge between the consensus layer and the gossip algorithm palette:
// registers CR-ears/CR-sears/CR-tears as GossipAlgorithm entries so the
// same GossipSpec seam (sim engine, rt threaded driver, rt multi-process
// driver, fuzzer) runs Canetti-Rabin consensus, and defines the per-process
// "final note" verdict channel those runtimes carry across thread and
// process boundaries.
//
// Layering: the gossip layer cannot include consensus headers, so
// make_gossip_processes dispatches cr-* specs through a registered factory
// (gossip/harness.h). Call register_consensus_algorithms() once at startup
// (gossiplab's main does; tests call it in their fixtures) before building
// the first cr-* spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/core_types.h"
#include "gossip/harness.h"

namespace asyncgossip {

/// Installs the cr-* process factory into the gossip palette. Idempotent
/// and cheap; safe to call from multiple entry points.
void register_consensus_algorithms();

/// The ExchangeKind behind a cr-* palette entry. Asserts on non-consensus
/// algorithms.
ExchangeKind exchange_for_algorithm(GossipAlgorithm algorithm);

/// Deterministic input bit for process p under this spec: every builder
/// (each multiproc worker re-derives the full vector independently) agrees.
Val consensus_input_for(const GossipSpec& spec, ProcessId p);

/// One process's end-of-run verdict, parsed from GossipProcess::final_note.
struct ConsensusNote {
  bool valid = false;  // note parsed as a consensus note at all
  bool decided = false;
  Val value = kValUnknown;
  Val input = kValUnknown;
  std::uint32_t phase = 0;  // phase at which the process decided (0 = not)
  std::uint64_t core_violations = 0;
  std::uint64_t reannouncements = 0;
};

std::string format_consensus_note(const ConsensusNote& note);
ConsensusNote parse_consensus_note(const std::string& text);

/// Aggregate consensus verdict over a run's per-process notes. `crashed[p]`
/// marks processes the run crashed: their decisions are not required, but
/// their inputs still count for validity (the sim-side oracle judges the
/// same way).
struct ConsensusVerdict {
  bool all_decided = false;  // every surviving process decided
  bool agreement = false;    // all decisions equal
  bool validity = false;     // decided value was somebody's input
  Val decided_value = kValUnknown;
  std::uint32_t decision_phase = 0;  // highest phase at which anyone decided
  std::size_t decided_count = 0;
  std::size_t survivors = 0;
  std::uint64_t core_violations = 0;
  std::uint64_t reannouncements = 0;

  bool ok() const { return all_decided && agreement && validity; }
  std::string summary() const;
};

ConsensusVerdict judge_consensus_notes(const std::vector<std::string>& notes,
                                       const std::vector<bool>& crashed);

}  // namespace asyncgossip
