// Tests for the parallel sweep runner: the generic index pool
// (sim/sweep.h) and the gossip-level batch API run_gossip_sweep
// (gossip/harness.h). The load-bearing property is determinism — a sweep's
// outcomes must be bit-identical for any worker count and equal to running
// each spec alone — so a 32-spec grid is run at jobs = 1, 4, and 8 and
// compared field by field, trace hash included.
#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.h"

#include "gossip/harness.h"

namespace asyncgossip {
namespace {

TEST(SweepRunner, RunsEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    constexpr std::size_t kCount = 100;
    std::vector<std::atomic<int>> hits(kCount);
    const SweepRunner runner(jobs);
    runner.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

TEST(SweepRunner, ZeroCountIsANoOp) {
  const SweepRunner runner(4);
  runner.run(0, [](std::size_t) { FAIL() << "task ran for an empty sweep"; });
}

TEST(SweepRunner, JobsZeroMeansHardwareConcurrency) {
  const SweepRunner runner(0);
  EXPECT_GE(runner.jobs(), 1u);
}

TEST(SweepRunner, MoreJobsThanTasksStillCompletes) {
  std::atomic<int> total{0};
  const SweepRunner runner(16);
  runner.run(3, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(SweepRunner, LowestIndexExceptionWins) {
  // Several tasks throw; the runner must finish the sweep and rethrow the
  // failure with the smallest index so reruns are reproducible.
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const SweepRunner runner(jobs);
    try {
      runner.run(20, [](std::size_t i) {
        if (i == 5 || i == 11 || i == 17)
          throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "expected an exception (jobs " << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5") << "jobs " << jobs;
    }
  }
}

/// A 32-spec grid mixing algorithms, sizes, and seeds — large enough that a
/// racy runner would almost surely misorder or corrupt something.
std::vector<GossipSpec> grid32() {
  std::vector<GossipSpec> specs;
  const GossipAlgorithm algs[] = {
      GossipAlgorithm::kTrivial, GossipAlgorithm::kEars,
      GossipAlgorithm::kLazy, GossipAlgorithm::kRoundRobin};
  for (GossipAlgorithm alg : algs) {
    for (std::size_t n : {std::size_t{24}, std::size_t{40}}) {
      for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
        GossipSpec spec;
        spec.algorithm = alg;
        spec.n = n;
        spec.f = n / 4;
        spec.d = 3;
        spec.delta = 2;
        spec.seed = seed;
        spec.schedule = SchedulePattern::kStaggered;
        spec.delay = DelayPattern::kUniform;
        specs.push_back(spec);
      }
    }
  }
  EXPECT_EQ(specs.size(), 32u);
  return specs;
}

void expect_same_results(const std::vector<GossipSweepResult>& a,
                         const std::vector<GossipSweepResult>& b,
                         const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace_hash, b[i].trace_hash) << label << " spec " << i;
    EXPECT_EQ(a[i].outcome.completed, b[i].outcome.completed)
        << label << " spec " << i;
    EXPECT_EQ(a[i].outcome.completion_time, b[i].outcome.completion_time)
        << label << " spec " << i;
    EXPECT_EQ(a[i].outcome.messages, b[i].outcome.messages)
        << label << " spec " << i;
    EXPECT_EQ(a[i].outcome.bytes, b[i].outcome.bytes)
        << label << " spec " << i;
    EXPECT_EQ(a[i].outcome.gathering_ok, b[i].outcome.gathering_ok)
        << label << " spec " << i;
    EXPECT_EQ(a[i].outcome.majority_ok, b[i].outcome.majority_ok)
        << label << " spec " << i;
    EXPECT_EQ(a[i].outcome.alive, b[i].outcome.alive) << label << " spec "
                                                      << i;
  }
}

TEST(GossipSweep, DeterministicAcrossWorkerCounts) {
  const std::vector<GossipSpec> specs = grid32();
  const std::vector<GossipSweepResult> seq = run_gossip_sweep(specs, 1);
  const std::vector<GossipSweepResult> par4 = run_gossip_sweep(specs, 4);
  const std::vector<GossipSweepResult> par8 = run_gossip_sweep(specs, 8);
  expect_same_results(seq, par4, "jobs 1 vs 4");
  expect_same_results(seq, par8, "jobs 1 vs 8");
}

TEST(GossipSweep, MatchesIndividualRunsInInputOrder) {
  const std::vector<GossipSpec> specs = grid32();
  const std::vector<GossipSweepResult> sweep = run_gossip_sweep(specs, 4);
  ASSERT_EQ(sweep.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const GossipOutcome solo = run_gossip_spec(specs[i]);
    EXPECT_EQ(sweep[i].outcome.completion_time, solo.completion_time)
        << "spec " << i;
    EXPECT_EQ(sweep[i].outcome.messages, solo.messages) << "spec " << i;
    EXPECT_EQ(sweep[i].outcome.completed, solo.completed) << "spec " << i;
  }
}

TEST(GossipSweep, SingleFailureRethrowsTheOriginalMessage) {
  // Exactly one failing spec: the exception must pass through untouched —
  // no "[sweep: ...]" context for a failure that isn't widespread.
  std::vector<GossipSpec> specs = grid32();
  specs.resize(3);
  specs[1].n = 1;  // make_gossip_processes rejects n < 2
  specs[1].f = 0;
  try {
    run_gossip_sweep(specs, 2);
    FAIL() << "expected a ModelViolation";
  } catch (const ModelViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n >= 2"), std::string::npos) << what;
    EXPECT_EQ(what.find("[sweep:"), std::string::npos) << what;
  }
}

TEST(GossipSweep, MultiFailureMessageRecordsTheScope) {
  // Several failing specs: the lowest-index exception still wins (reruns
  // stay reproducible) but the message must record the failure count and
  // name some of the other failing specs.
  std::vector<GossipSpec> specs = grid32();
  specs.resize(4);
  for (std::size_t i : {std::size_t{1}, std::size_t{3}}) {
    specs[i].n = 1;
    specs[i].f = 0;
  }
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    try {
      run_gossip_sweep(specs, jobs);
      FAIL() << "expected a ModelViolation (jobs " << jobs << ")";
    } catch (const ModelViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("n >= 2"), std::string::npos) << what;
      EXPECT_NE(what.find("[sweep: 2 of 4 specs failed"), std::string::npos)
          << what;
      // The non-rethrown failure (spec 3) is listed with its label + seed.
      EXPECT_NE(what.find("also failing: " + spec_label(specs[3]) +
                          "/seed:" + std::to_string(specs[3].seed)),
                std::string::npos)
          << what;
    }
  }
}

TEST(GossipSweep, AuditedSpecsRunInParallelToo) {
  std::vector<GossipSpec> specs = grid32();
  specs.resize(8);
  for (GossipSpec& spec : specs) spec.audit = true;
  const std::vector<GossipSweepResult> seq = run_gossip_sweep(specs, 1);
  const std::vector<GossipSweepResult> par = run_gossip_sweep(specs, 4);
  expect_same_results(seq, par, "audited jobs 1 vs 4");
  for (const GossipSweepResult& r : seq) EXPECT_TRUE(r.outcome.completed);
}

}  // namespace
}  // namespace asyncgossip
