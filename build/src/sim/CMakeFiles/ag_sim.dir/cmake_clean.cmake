file(REMOVE_RECURSE
  "CMakeFiles/ag_sim.dir/engine.cpp.o"
  "CMakeFiles/ag_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ag_sim.dir/metrics.cpp.o"
  "CMakeFiles/ag_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/ag_sim.dir/oblivious.cpp.o"
  "CMakeFiles/ag_sim.dir/oblivious.cpp.o.d"
  "CMakeFiles/ag_sim.dir/trace.cpp.o"
  "CMakeFiles/ag_sim.dir/trace.cpp.o.d"
  "libag_sim.a"
  "libag_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
