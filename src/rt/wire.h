// asyncgossip-wire-v1: the compact binary frame format UdpTransport puts
// on the wire (rt/udp_transport.h), plus the coordinator/worker control
// frames of the multi-process driver (rt/multiproc.h).
//
// Layout. Every datagram is one frame: a 4-byte header — magic 'A' 'G',
// version byte, frame type byte — followed by a type-specific body built
// from unsigned LEB128 varints and length-prefixed byte strings. A data
// frame carries *all* of one sender's same-tick envelopes for one
// destination (the per-destination-per-tick batch) under a single per-link
// sequence number; payloads are encoded per algorithm shape with
// varint-packed bitsets (bit count + significant bytes, trailing zero
// bytes trimmed).
//
// The decoder is strict: truncated bodies, wrong magic/version, overlong
// (non-canonical) varints, out-of-range counts, set bits beyond a bitset's
// declared size, and trailing bytes are all distinct DecodeError values,
// never undefined behaviour — a datagram is attacker-adjacent input even
// on loopback, and tests/test_wire.cpp holds the decoder to that over a
// malformed-frame corpus under ASan/UBSan.
//
// Canonical encoding matters beyond hygiene: the receiver deduplicates
// retransmits by (link, seq), and golden byte-for-byte fixtures pin the
// format, so one logical frame must have exactly one byte representation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "sim/message.h"
#include "sim/types.h"

namespace asyncgossip {
namespace wire {

inline constexpr std::uint8_t kMagic0 = 'A';
inline constexpr std::uint8_t kMagic1 = 'G';
inline constexpr std::uint8_t kVersion = 1;
/// Header bytes: magic, magic, version, frame type.
inline constexpr std::size_t kHeaderBytes = 4;
/// Ceiling for one encoded frame; batches that would exceed it are split
/// into multiple frames (each with its own sequence number). Safely under
/// the 65507-byte UDP payload limit.
inline constexpr std::size_t kMaxFrameBytes = 60000;
/// Decode-side sanity caps: reject before allocating.
inline constexpr std::uint64_t kMaxBits = 1u << 26;
inline constexpr std::uint64_t kMaxCount = 1u << 20;

enum class FrameType : std::uint8_t {
  kData = 1,       // sender -> receiver: a batch of envelopes
  kAck = 2,        // receiver -> sender: cumulative per-link ack
  kHello = 3,      // worker -> coordinator: join (source addr = data port)
  kPeerTable = 4,  // coordinator -> worker: every worker's data port
  kStart = 5,      // coordinator -> worker: clocks start now
  kStatus = 6,     // worker -> coordinator: progress counters
  kShutdown = 7,   // coordinator -> worker: write your log and exit
  kBye = 8,        // worker -> coordinator: log written, exiting
};

enum class DecodeError : std::uint8_t {
  kOk = 0,
  kTruncated,       // body ends mid-field
  kBadMagic,        // first two bytes are not 'A' 'G'
  kBadVersion,      // version byte != kVersion
  kBadType,         // unknown frame type byte
  kOverlongVarint,  // > 10 bytes, non-canonical, or overflows 64 bits
  kBadPayloadTag,   // unknown payload shape tag
  kBadValue,        // out-of-range count/size, zero delay, nonzero padding
  kTrailingBytes,   // well-formed frame followed by extra bytes
};

const char* to_string(DecodeError err);

// --- primitives ----------------------------------------------------------

/// Appends v as unsigned LEB128 (1..10 bytes, canonical).
void put_varint(std::vector<std::uint8_t>* out, std::uint64_t v);

/// Strict, bounds-checked reader over one datagram.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : p_(data), end_(data + len) {}

  /// Reads one canonical varint; on failure records the error and returns
  /// false (every later read also fails, so call sites can chain).
  bool varint(std::uint64_t* v);
  bool byte(std::uint8_t* v);
  /// Grants a view of the next `len` raw bytes.
  bool raw(const std::uint8_t** data, std::size_t len);

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool failed() const { return err_ != DecodeError::kOk; }
  DecodeError error() const { return err_; }
  void fail(DecodeError err) {
    if (err_ == DecodeError::kOk) err_ = err;
  }
  /// kTrailingBytes unless the reader consumed the whole datagram.
  DecodeError finish();

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  DecodeError err_ = DecodeError::kOk;
};

/// Varint-packed bitset: bit count, significant byte count (trailing zero
/// bytes trimmed), then the bytes, little-endian within each byte.
void encode_bitset(std::vector<std::uint8_t>* out, const DynamicBitset& bits);
bool decode_bitset(Reader* r, DynamicBitset* out);

/// Algorithm payload shapes (gossip/*.h). Tag 0 is the null payload.
/// Encoding dispatches on the dynamic type; unknown payload types fail hard
/// (AG_ASSERT) — the wire must not silently drop knowledge.
void encode_payload(std::vector<std::uint8_t>* out, const Payload* payload);
bool decode_payload(Reader* r, PayloadPtr* out);

// --- extension payload codecs --------------------------------------------
// Layers above rt can put payload types on the wire that the core codec
// must not know (layering: rt cannot include consensus headers — the
// consensus ConsensusPayload codec lives in svc/consensus_wire.h). An
// extension claims a tag >= kFirstExtensionTag and registers an encoder
// probe plus a decoder. The encoder does its own dynamic type test: it
// writes tag + body and returns true when the payload is its type, else
// returns false leaving `out` untouched (probes chain in registration
// order). The decoder is invoked after the tag has been read and must obey
// the same strictness contract as the built-in shapes. Registration is
// process-global and must precede the first encode/decode of such a
// payload (single-threaded startup — gossiplab's main registers);
// re-registering the same (tag, fns) triple is an idempotent no-op, a
// conflicting one asserts.
inline constexpr std::uint64_t kFirstExtensionTag = 16;

using ExtensionEncodeFn = bool (*)(std::vector<std::uint8_t>* out,
                                   const Payload& payload);
using ExtensionDecodeFn = bool (*)(Reader* r, PayloadPtr* out);

void register_extension_payload(std::uint64_t tag, ExtensionEncodeFn encode,
                                ExtensionDecodeFn decode);

// --- frames --------------------------------------------------------------

/// Writes the 4-byte header.
void put_header(std::vector<std::uint8_t>* out, FrameType type);
/// Checks magic + version and extracts the frame type.
DecodeError peek_type(const std::uint8_t* data, std::size_t len,
                      FrameType* type);

/// One sender's batch for one destination: every envelope shares
/// (from, to); ids, times and payloads are per envelope.
struct DataFrame {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  /// Per-(from, to) frame sequence number, starting at 1, strictly
  /// monotone: the receiver releases frames in seq order and drops
  /// duplicates (retransmits) by it.
  std::uint64_t seq = 0;
  std::vector<Envelope> envelopes;
};

void encode_data_frame(std::vector<std::uint8_t>* out, const DataFrame& frame);
DecodeError decode_data_frame(const std::uint8_t* data, std::size_t len,
                              DataFrame* out);

/// Cumulative ack: every frame on (sender -> receiver) with
/// seq <= cum_seq has been received (or discarded, when `closed`).
struct AckFrame {
  ProcessId receiver = kNoProcess;
  ProcessId sender = kNoProcess;
  std::uint64_t cum_seq = 0;
  /// The receiver's inbox is closed (crashed): the sender can stop
  /// retransmitting everything, acked or not.
  bool closed = false;
};

void encode_ack_frame(std::vector<std::uint8_t>* out, const AckFrame& frame);
DecodeError decode_ack_frame(const std::uint8_t* data, std::size_t len,
                             AckFrame* out);

// --- control frames (multi-process driver) -------------------------------

struct HelloFrame {
  ProcessId pid = kNoProcess;
};

struct PeerTableFrame {
  /// Data port of every worker, indexed by pid.
  std::vector<std::uint16_t> ports;
};

struct StatusFrame {
  ProcessId pid = kNoProcess;
  bool quiescent = false;
  bool crashed = false;
  std::uint64_t steps = 0;
  std::uint64_t sends = 0;
  std::uint64_t deliveries = 0;
  /// Envelopes that arrived at (or were pending in) a closed inbox.
  std::uint64_t discarded = 0;
};

void encode_hello_frame(std::vector<std::uint8_t>* out, const HelloFrame& frame);
DecodeError decode_hello_frame(const std::uint8_t* data, std::size_t len,
                               HelloFrame* out);
void encode_peer_table_frame(std::vector<std::uint8_t>* out,
                             const PeerTableFrame& frame);
DecodeError decode_peer_table_frame(const std::uint8_t* data, std::size_t len,
                                    PeerTableFrame* out);
void encode_status_frame(std::vector<std::uint8_t>* out,
                         const StatusFrame& frame);
DecodeError decode_status_frame(const std::uint8_t* data, std::size_t len,
                                StatusFrame* out);
/// kStart / kShutdown / kBye are header-only; kBye carries the pid.
void encode_signal_frame(std::vector<std::uint8_t>* out, FrameType type);
void encode_bye_frame(std::vector<std::uint8_t>* out, ProcessId pid);
DecodeError decode_bye_frame(const std::uint8_t* data, std::size_t len,
                             ProcessId* pid);

}  // namespace wire
}  // namespace asyncgossip
