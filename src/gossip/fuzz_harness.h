// Gossip-level fuzzing and statistical bound checking.
//
// sim/fuzz.h and sim/statcheck.h are deliberately generic (sim/ cannot see
// gossip types); this module is the gossip side of both:
//
//  * the fuzz oracle — build the spec, run the engine under a TraceRecorder
//    and an InvariantAuditor, then judge the run: audit findings, gossip
//    postconditions per algorithm (completion, gathering, majority), and
//    generous time/message envelopes;
//  * failing-case shrinking plus replayable artifacts — a shrunk minimum is
//    written as an "asyncgossip-repro-v1" spec (gossip/spec_json.h) and a
//    trace-format-v1 event log, which `gossiplab replay` re-executes
//    bit-identically;
//  * the statcheck driver — GossipSpec trial grids through the parallel
//    SweepRunner, checked against the paper's Table 1 envelopes.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "gossip/harness.h"
#include "gossip/spec_json.h"
#include "sim/fuzz.h"
#include "sim/shrink.h"
#include "sim/statcheck.h"
#include "sim/trace.h"

namespace asyncgossip {

/// The algorithm palette the fuzzer samples: FuzzCase::algorithm indexes
/// this list. Every algorithm in the repo is present.
const std::vector<GossipAlgorithm>& fuzz_algorithms();

/// Expands an opaque fuzz case into a full runnable spec (algorithm index
/// resolved against fuzz_algorithms(); f clamped for algorithms that
/// require it). Throws ApiError on an out-of-range algorithm index.
GossipSpec spec_from_fuzz_case(const FuzzCase& c);

/// Human label with the algorithm name substituted for the opaque index.
std::string gossip_case_label(const FuzzCase& c);

/// Test-only fault injection: mutates a *copy* of the recorded event
/// stream, which the oracle then re-audits offline. The run itself is never
/// perturbed, so replaying the artifact still reproduces the identical
/// trace hash — the injected violation lives in the mutated copy only.
using EventMutator = std::function<void(std::vector<TraceRecorder::Event>&)>;

/// A named palette of built-in mutators for CLI / CI use ("late-delivery",
/// "double-step", "phantom-crash"). Returns false on an unknown name.
bool event_mutator_from_string(const std::string& name, EventMutator* out);

/// Builds the deterministic gossip oracle. The oracle:
///  1. runs the case's spec under InvariantAuditor + TraceRecorder with a
///     step budget of 2x default_step_budget;
///  2. fails on any audit finding ("audit: ...");
///  3. if `mutate` is set, re-audits a mutated copy of the event stream and
///     fails on findings there ("injected-audit: ...");
///  4. checks per-algorithm postconditions ("postcondition: ..."):
///     completion for every algorithm; rumor gathering for trivial, ears,
///     sears, sync, ears-no-informed-list and round-robin; majority for
///     those plus tears (lazy promises completion only);
///  5. checks generous sanity envelopes ("envelope: ..."): completion time
///     within default_step_budget, messages within a loose
///     O(n^2 log^2 n (d + delta)) ceiling.
FuzzOracle make_gossip_fuzz_oracle(EventMutator mutate = nullptr);

struct GossipFuzzOptions {
  FuzzDomain domain;  // domain.algorithms is overwritten from the palette
  FuzzOptions fuzz;
  ShrinkOptions shrink;
  /// Artifact path prefix; on a failure the harness writes
  /// "<prefix>.spec.json" and "<prefix>.trace". "" disables emission.
  std::string artifact_prefix;
  EventMutator mutate;          // test-only fault injection (see above)
  std::ostream* log = nullptr;  // progress narration; nullptr = silent
};

struct GossipFuzzResult {
  FuzzReport report;
  bool found_failure = false;
  /// Populated when found_failure: the shrunk minimum and its verdict.
  FuzzCase minimal;
  FuzzVerdict minimal_verdict;
  std::size_t shrink_attempts = 0;
  std::size_t shrink_rounds = 0;
  /// Artifact paths written ("" when emission was disabled or failed).
  std::string spec_artifact;
  std::string trace_artifact;
};

/// The full pipeline: fuzz — shrink the first failure — emit artifacts.
GossipFuzzResult run_gossip_fuzz(const GossipFuzzOptions& options);

/// Re-runs a repro artifact's spec (audited) and compares the engine trace
/// hash against the artifact's pinned fingerprint. Returns true iff they
/// match; *detail gets a one-line description either way.
bool replay_repro(const ReproArtifact& artifact, std::string* detail);

struct GossipStatCheckOptions {
  StatCheckConfig stat{0.9, 3.0};  // quantile, slack
  /// Trials (seeds) per cell.
  std::size_t trials = 12;
  std::uint64_t seed = 1;
  std::size_t jobs = 0;  // SweepRunner jobs (0 = hardware concurrency)
  /// Population grid; the smallest n is the calibration column.
  std::vector<std::size_t> ns = {12, 16, 24, 32};
  /// Crash budget per cell: f = floor(f_fraction * n).
  double f_fraction = 0.25;
  /// (d, delta) pairs; cells are ns x dds.
  std::vector<std::pair<Time, Time>> dds = {{1, 1}, {3, 2}};
  std::ostream* log = nullptr;
};

/// Runs the Table 1 bound check for EARS (rumor gathering) and TEARS
/// (majority gossip): per-cell trial batches through run_gossip_sweep, then
/// one-sided quantile tests against the claimed envelopes —
///   ears  time      n/(n-f) * log^2 n * (d + delta)
///   ears  messages  n * log^3 n * (d + delta)
///   tears time      d + delta
///   tears messages  n^(7/4) * log^2 n
/// with the constant fitted on the smallest-n calibration column.
StatReport run_gossip_statcheck(const GossipStatCheckOptions& options);

/// run_info key/value pairs for write_statcheck_json describing a
/// statcheck invocation.
std::vector<std::pair<std::string, std::string>> statcheck_run_info(
    const GossipStatCheckOptions& options);

}  // namespace asyncgossip
