// Small statistics helpers shared by tests, benches and EXPERIMENTS tooling.
#pragma once

#include <cstddef>
#include <vector>

namespace asyncgossip {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::vector<double> sample);

/// Ordinary least squares fit of y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y = c * x^alpha by regressing log y on log x; returns alpha and r².
/// Benches use this to report measured growth exponents next to the paper's
/// claimed asymptotics. All inputs must be positive.
struct PowerFit {
  double exponent = 0.0;
  double coefficient = 0.0;
  double r2 = 0.0;
};

PowerFit power_fit(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace asyncgossip
