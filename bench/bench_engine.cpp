// Engine microbenchmarks: wall-clock throughput of the simulation engine
// itself, isolated from algorithm-side work.
//
// The gossip algorithms (bench_table1_gossip) spend most of their cycles in
// payload merging, so their wall time says little about the engine hot path
// (scheduling, mailbox delivery, dispatch, metrics, trace hashing). The
// processes here are deliberately trivial — they only emit messages in the
// same *shapes* the real algorithms do — so elapsed time is engine overhead
// and nothing else:
//
//   ears    : every process sends `fanout` messages to pseudo-random targets
//             on every local step (the epidemic steady state), under
//             staggered scheduling and uniform delays in [1, d].
//   tears   : every process sends along its binary-tree edges (parent and
//             children) on every step — TEARS' deterministic tree traffic.
//   trivial : every process floods all n processes once on its first step
//             (the trivial algorithm's n^2 burst), then stays silent.
//
//   counters : steps_per_sec (global simulated steps / wall second),
//              envelopes_per_sec (deliveries / wall second),
//              steps, envelopes (totals per iteration, for sanity),
//              arena_slab_allocs / arena_slab_reuses — the allocation
//              tripwire: once warm, the slab arena must serve the run from
//              recycled slabs, so allocs must stay near the standing
//              in-flight volume while reuses grow with run length.
//
// The *-large cases run the same shapes at n = 100k (n = 1M for the docs
// table) with d scaled down so a case stays minutes-not-hours; they gate
// ROADMAP item 3 ("engine raw speed at n >= 100k") in CI perf-smoke.
// Engines honor AG_ENGINE_JOBS (default_engine_jobs), so sharded stepping
// can be benched without a rebuild; results are bit-identical either way.
//
// Run `AG_BENCH_JSON=BENCH_engine.json ./bench_engine` to (re)generate the
// repo's engine perf trajectory; BENCH_engine_seed.json is the frozen
// baseline of the previous engine generation. See docs/PERFORMANCE.md.
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "gossip/harness.h"
#include "sim/engine.h"
#include "sim/oblivious.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("engine");

namespace {

// Sends `fanout` empty-payload messages to pseudo-random targets on every
// local step. No state is merged, so stepping it costs the engine, not the
// algorithm.
class RandomFanoutProcess final : public Process {
 public:
  RandomFanoutProcess(ProcessId id, std::size_t n, std::size_t fanout,
                      std::uint64_t seed)
      : id_(id), n_(n), fanout_(fanout), rng_(seed ^ (0x9E3779B97F4A7C15ULL * (id + 1))) {}

  void step(StepContext& ctx) override {
    for (std::size_t i = 0; i < fanout_; ++i)
      ctx.send(static_cast<ProcessId>(rng_.uniform(n_)), nullptr);
  }

  std::unique_ptr<Process> clone() const override {
    return std::make_unique<RandomFanoutProcess>(*this);
  }

  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }

 private:
  ProcessId id_;
  std::size_t n_;
  std::size_t fanout_;
  Xoshiro256SS rng_;
};

// Floods all n processes once on the first local step, then stays silent.
class FloodOnceProcess final : public Process {
 public:
  FloodOnceProcess(ProcessId id, std::size_t n) : id_(id), n_(n) {}

  void step(StepContext& ctx) override {
    if (!sent_) {
      for (std::size_t q = 0; q < n_; ++q)
        ctx.send(static_cast<ProcessId>(q), nullptr);
      sent_ = true;
    }
  }

  std::unique_ptr<Process> clone() const override {
    return std::make_unique<FloodOnceProcess>(*this);
  }

  void reseed(std::uint64_t /*seed*/) override {}

 private:
  ProcessId id_;
  std::size_t n_;
  bool sent_ = false;
};

// Sends along the process's binary-tree edges (parent + both children) every
// step: the deterministic low-fanout shape of TEARS' tree phase, whose
// mailboxes are shallow but perfectly correlated (a node's children all hit
// the same destination buckets).
class TreeFanoutProcess final : public Process {
 public:
  TreeFanoutProcess(ProcessId id, std::size_t n) : id_(id), n_(n) {}

  void step(StepContext& ctx) override {
    if (id_ != 0) ctx.send(static_cast<ProcessId>((id_ - 1) / 2), nullptr);
    const std::size_t left = 2 * static_cast<std::size_t>(id_) + 1;
    if (left < n_) ctx.send(static_cast<ProcessId>(left), nullptr);
    if (left + 1 < n_) ctx.send(static_cast<ProcessId>(left + 1), nullptr);
  }

  std::unique_ptr<Process> clone() const override {
    return std::make_unique<TreeFanoutProcess>(*this);
  }

  void reseed(std::uint64_t /*seed*/) override {}

 private:
  ProcessId id_;
  std::size_t n_;
};

enum class Workload { kEarsLike, kTearsLike, kTrivialLike };

Engine make_engine(Workload w, std::size_t n, std::size_t fanout, Time d,
                   Time delta, std::uint64_t seed) {
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    if (w == Workload::kEarsLike)
      procs.push_back(std::make_unique<RandomFanoutProcess>(
          static_cast<ProcessId>(p), n, fanout, seed));
    else if (w == Workload::kTearsLike)
      procs.push_back(
          std::make_unique<TreeFanoutProcess>(static_cast<ProcessId>(p), n));
    else
      procs.push_back(
          std::make_unique<FloodOnceProcess>(static_cast<ProcessId>(p), n));
  }
  ObliviousConfig adv;
  adv.n = n;
  adv.d = d;
  adv.delta = delta;
  adv.schedule =
      delta == 1 ? SchedulePattern::kLockStep : SchedulePattern::kStaggered;
  adv.delay = d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  adv.seed = seed ^ 0xAD7E25A27ULL;

  EngineConfig ecfg;
  ecfg.d = d;
  ecfg.delta = delta;
  ecfg.jobs = default_engine_jobs();
  return Engine(std::move(procs), std::make_unique<ObliviousAdversary>(adv),
                ecfg);
}

void run_engine_case(benchmark::State& state, Workload w, const char* name,
                     std::size_t n, std::size_t fanout, Time d, Time delta,
                     Time steps) {
  double total_steps = 0;
  double total_envelopes = 0;
  double total_slab_allocs = 0;
  double total_slab_reuses = 0;
  std::uint64_t seed = 20011;
  for (auto _ : state) {
    Engine engine = make_engine(w, n, fanout, d, delta, seed++);
    engine.run(steps);
    total_steps += static_cast<double>(engine.now());
    total_envelopes += static_cast<double>(engine.metrics().messages_delivered());
    const ArenaStats arena = engine.arena_stats();
    total_slab_allocs += static_cast<double>(arena.slab_allocations);
    total_slab_reuses += static_cast<double>(arena.slab_reuses);
    benchmark::DoNotOptimize(engine.trace_hash());
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["steps_per_sec"] =
      benchmark::Counter(total_steps, benchmark::Counter::kIsRate);
  state.counters["envelopes_per_sec"] =
      benchmark::Counter(total_envelopes, benchmark::Counter::kIsRate);
  state.counters["steps"] = total_steps / iters;
  state.counters["envelopes"] = total_envelopes / iters;
  // Allocation tripwire (docs/PERFORMANCE.md): slab growth is bounded by the
  // standing in-flight volume, not the run length — reuses dwarf allocs on
  // any warm run.
  state.counters["arena_slab_allocs"] = total_slab_allocs / iters;
  state.counters["arena_slab_reuses"] = total_slab_reuses / iters;
  record_case(state, std::string(name) + "/n:" + std::to_string(n) +
                         "/d:" + std::to_string(d) +
                         "/delta:" + std::to_string(delta));
}

// The epidemic steady state in the slow-network regime (d >> delta: fast
// processes, laggy links — the asymmetry the paper's model allows): log-ish
// fanout, uniform delays in [1, d], staggered process speeds. Each process
// carries a standing mailbox of ~ fanout * d/4 in-flight envelopes of which
// only a few are due per step, so this measures mailbox management cost.
void BM_EngineEars(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_case(state, Workload::kEarsLike, "ears", n, /*fanout=*/8,
                  /*d=*/256, /*delta=*/4, /*steps=*/768);
}

// The n^2 burst: all floods launched within the first delta steps, drained
// within d. Stresses dispatch and bulk delivery rather than steady scan.
void BM_EngineTrivial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_case(state, Workload::kTrivialLike, "trivial", n, /*fanout=*/0,
                  /*d=*/8, /*delta=*/4, /*steps=*/32);
}

// Lock-step unit-delay variant: the d = delta = 1 regime where the old
// mailbox scan had nothing stale to skip — guards against regressions on
// the easy path.
void BM_EngineEarsUnit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_case(state, Workload::kEarsLike, "ears-unit", n, /*fanout=*/8,
                  /*d=*/1, /*delta=*/1, /*steps=*/256);
}

// Large-n steady state (ROADMAP item 3): the epidemic shape at n = 100k
// with d scaled to 64 so the standing mailbox volume (~ n * fanout * d / 2
// in-flight envelopes, ~13M at n = 100k) stresses the arena, not the step
// budget. One iteration: at this size cross-iteration variance is far below
// the bench gate's tolerance, and two would double a minutes-scale suite.
void BM_EngineEarsLarge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_case(state, Workload::kEarsLike, "ears-large", n, /*fanout=*/4,
                  /*d=*/64, /*delta=*/4, /*steps=*/48);
}

// TEARS' tree traffic at n = 100k: deterministic fanout-3 along binary-tree
// edges, same scaled d.
void BM_EngineTearsLarge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_case(state, Workload::kTearsLike, "tears-large", n, /*fanout=*/0,
                  /*d=*/64, /*delta=*/4, /*steps=*/48);
}

BENCHMARK(BM_EngineEars)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(2);
BENCHMARK(BM_EngineTrivial)->Arg(256)->Arg(1024)->Arg(2048)->Iterations(2);
BENCHMARK(BM_EngineEarsUnit)->Arg(256)->Arg(1024)->Iterations(2);
BENCHMARK(BM_EngineEarsLarge)->Arg(100000)->Iterations(1);
BENCHMARK(BM_EngineTearsLarge)->Arg(100000)->Iterations(1);

}  // namespace
}  // namespace asyncgossip::bench
