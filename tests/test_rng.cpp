#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/assert.h"

namespace asyncgossip {
namespace {

TEST(Rng, SameSeedSameStream) {
  Xoshiro256SS a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256SS a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GT(differing, 60);
}

TEST(Rng, CopyReplaysFuture) {
  Xoshiro256SS a(7);
  a.next();
  a.next();
  Xoshiro256SS b = a;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformRespectsBound) {
  Xoshiro256SS rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t v = rng.uniform(bound);
      ASSERT_LT(v, bound);
    }
  }
}

TEST(Rng, UniformOneIsAlwaysZero) {
  Xoshiro256SS rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Xoshiro256SS rng(5);
  EXPECT_THROW(rng.uniform(0), ModelViolation);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Xoshiro256SS rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++histogram[rng.uniform(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_GT(histogram[b], kSamples / 10 - kSamples / 40);
    EXPECT_LT(histogram[b], kSamples / 10 + kSamples / 40);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Xoshiro256SS rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Xoshiro256SS rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256SS rng(19);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Xoshiro256SS rng(23);
  for (std::uint64_t bound : {5ULL, 16ULL, 100ULL}) {
    for (std::uint64_t k = 0; k <= bound; k += (bound / 5) + 1) {
      const auto sample = rng.sample_without_replacement(bound, k);
      ASSERT_EQ(sample.size(), k);
      std::set<std::uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (std::uint64_t v : sample) EXPECT_LT(v, bound);
    }
  }
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Xoshiro256SS rng(29);
  const auto sample = rng.sample_without_replacement(50, 50);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Rng, SampleTooManyThrows) {
  Xoshiro256SS rng(31);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ModelViolation);
}

TEST(Rng, SampleCoversRange) {
  // Every element of a small range should appear across many draws.
  Xoshiro256SS rng(37);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i)
    for (std::uint64_t v : rng.sample_without_replacement(8, 2)) seen.insert(v);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256SS a(41);
  Xoshiro256SS child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Rng, JumpChangesState) {
  Xoshiro256SS a(43), b(43);
  b.jump();
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.next(), b.next());
}

// --- golden seeded-determinism tests ---------------------------------------
// Pinned outputs of the reference xoshiro256** + splitmix64 seeding. Every
// execution, fuzz case and repro artifact in the repo is a pure function of
// its seeds, so these values changing means every committed trace hash and
// fixture silently changes meaning. If a legitimate RNG change is ever
// intended, regenerate these constants AND every committed trace/repro
// fixture in the same commit.

TEST(RngGolden, NextPinnedPerSeed) {
  const struct {
    std::uint64_t seed;
    std::uint64_t expect[5];
  } kGolden[] = {
      {1,
       {12966619160104079557ULL, 9600361134598540522ULL,
        10590380919521690900ULL, 7218738570589545383ULL,
        12860671823995680371ULL}},
      {42,
       {1546998764402558742ULL, 6990951692964543102ULL,
        12544586762248559009ULL, 17057574109182124193ULL,
        18295552978065317476ULL}},
      {0xDEADBEEFULL,
       {14219364052333592195ULL, 7332719151195188792ULL,
        6122488799882574371ULL, 4799409443904522999ULL,
        18090429560773761838ULL}},
  };
  for (const auto& g : kGolden) {
    Xoshiro256SS rng(g.seed);
    for (const std::uint64_t want : g.expect) EXPECT_EQ(rng.next(), want);
  }
}

TEST(RngGolden, UniformPinned) {
  Xoshiro256SS rng(7);
  const std::uint64_t want[] = {70, 27, 83, 98, 99, 87, 6, 10};
  for (const std::uint64_t w : want) EXPECT_EQ(rng.uniform(100), w);
}

TEST(RngGolden, UniformRealPinned) {
  // uniform_real is next() >> 11 scaled by 2^-53: exact in binary64, so
  // exact equality is portable.
  Xoshiro256SS rng(7);
  EXPECT_EQ(rng.uniform_real(), 0.7005764821796896);
  EXPECT_EQ(rng.uniform_real(), 0.27875122947378428);
  EXPECT_EQ(rng.uniform_real(), 0.83962746187641979);
  EXPECT_EQ(rng.uniform_real(), 0.98109772501493508);
}

TEST(RngGolden, SplitAndJumpPinned) {
  Xoshiro256SS parent(9);
  Xoshiro256SS child = parent.split();
  EXPECT_EQ(child.next(), 6115943644970510790ULL);
  EXPECT_EQ(parent.next(), 4639160090213153785ULL);

  Xoshiro256SS jumped(11);
  jumped.jump();
  EXPECT_EQ(jumped.next(), 35109889632992780ULL);
}

}  // namespace
}  // namespace asyncgossip
