// Model-tick <-> wall-clock mapping for the real-time runtime.
//
// The simulator's global time is a loop counter; here it is real time,
// discretized: tick k covers the half-open wall-clock interval
// [start + k*tick_us, start + (k+1)*tick_us). Every thread reads the same
// steady clock, so ticks give the whole run one coherent time axis without
// any shared mutable state. Note the mapping is *observational*: nothing
// stops the OS from preempting a thread across several ticks — the runtime
// measures the realized scheduling bound afterwards instead of promising
// one up front (see rt/driver.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "sim/types.h"

namespace asyncgossip {

class TickClock {
 public:
  explicit TickClock(std::uint64_t tick_us)
      : tick_(std::chrono::microseconds(tick_us == 0 ? 1 : tick_us)),
        start_(std::chrono::steady_clock::now()) {}

  /// The tick containing "now". Monotone across calls on every thread.
  Time now_tick() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<Time>(elapsed / tick_);
  }

  /// Blocks until the start of tick `t` (returns immediately if past it).
  void sleep_until_tick(Time t) const {
    std::this_thread::sleep_until(start_ + t * tick_);
  }

  std::uint64_t tick_us() const {
    return static_cast<std::uint64_t>(tick_.count());
  }

 private:
  std::chrono::microseconds tick_;
  std::chrono::steady_clock::time_point start_;
};

/// Wall-clock interval measurement for run reporting. This file is the
/// only place the runtime may read a real clock (aglint rule AG-DET-002):
/// routing every wall-clock read through TickClock/Stopwatch keeps the
/// nondeterministic inputs of a run enumerable in one header.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Milliseconds elapsed since construction.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Microseconds elapsed since construction — integer, for per-request
  /// latency samples (svc commit latency percentiles).
  std::uint64_t elapsed_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace asyncgossip
