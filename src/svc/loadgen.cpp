#include "svc/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "rt/clock.h"
#include "svc/history.h"

namespace asyncgossip {
namespace svc {

Command loadgen_command(const LoadgenConfig& config, std::uint64_t i) {
  // Per-request rng: the workload is a pure function of (seed, i), so any
  // party — tests, a future distributed loadgen — re-derives request i
  // without replaying the stream.
  Xoshiro256SS rng(config.seed ^ ((i + 1) * 0x9E3779B97F4A7C15ULL));
  const std::size_t clients = std::max<std::size_t>(config.clients, 1);
  Command cmd;
  cmd.client = 1 + i % clients;
  cmd.client_seq = 1 + i / clients;
  cmd.key = "k" + std::to_string(rng.uniform(std::max<std::uint64_t>(
                      config.keys, 1)));
  const double roll = rng.uniform_real();
  if (roll < config.get_fraction) {
    cmd.op = SvcOp::kGet;
    return cmd;
  }
  std::string value = "v" + std::to_string(i);
  if (value.size() < config.value_bytes)
    value.append(config.value_bytes - value.size(), 'x');
  cmd.value = std::move(value);
  if (roll < config.get_fraction + config.cas_fraction) {
    cmd.op = SvcOp::kCas;
    // Half the CAS traffic targets absent keys ("-" comparand), half races
    // against a plausible earlier value; both outcomes are legal, the
    // checker verifies the recorded one matches the linearized state.
    cmd.expected = rng.bernoulli(0.5)
                       ? std::string("-")
                       : "v" + std::to_string(rng.uniform(i + 1)) + "x";
  } else {
    cmd.op = SvcOp::kPut;
  }
  return cmd;
}

namespace {

/// Shared response-side accounting: callbacks (inproc commit thread or the
/// UDP receiver) record here; the issuing thread waits on `done`.
struct Collector {
  explicit Collector(std::ostream* out) : obs_out(out) {}

  void record(const Command& cmd, const CommandResult& result,
              std::uint64_t latency_us) {
    MutexLock lock(&mu);
    ++done;
    if (result.unavailable) {
      ++unavailable;
    } else {
      ++acked;
      latencies.push_back(latency_us);
    }
    if (obs_out != nullptr) {
      Observation obs;
      obs.cmd = cmd;
      obs.result = result;
      *obs_out << encode_observation(obs) << '\n';
    }
    cv.notify_all();
  }

  void wait_done(std::uint64_t want) {
    MutexLock lock(&mu);
    while (done < want) cv.wait(mu);
  }

  Mutex mu;
  CondVar cv;
  std::uint64_t done AG_GUARDED_BY(mu) = 0;
  std::uint64_t acked AG_GUARDED_BY(mu) = 0;
  std::uint64_t unavailable AG_GUARDED_BY(mu) = 0;
  std::vector<std::uint64_t> latencies AG_GUARDED_BY(mu);
  std::ostream* obs_out AG_PT_GUARDED_BY(mu);
};

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

void finish_report(const LoadgenConfig& config, Collector& col,
                   double wall_ms, LoadgenReport* report) {
  MutexLock lock(&col.mu);
  report->attempted = config.requests;
  report->acked = col.acked;
  report->unavailable = col.unavailable;
  report->unacked = config.requests - col.acked - col.unavailable;
  report->complete = col.acked == config.requests;
  report->wall_ms = wall_ms;
  report->achieved_rate =
      wall_ms > 0.0 ? static_cast<double>(col.acked) / (wall_ms / 1000.0)
                    : 0.0;
  std::sort(col.latencies.begin(), col.latencies.end());
  report->p50_us = percentile(col.latencies, 0.50);
  report->p95_us = percentile(col.latencies, 0.95);
  report->p99_us = percentile(col.latencies, 0.99);
  report->max_us = col.latencies.empty() ? 0 : col.latencies.back();
}

/// Due tick (microseconds from start) of request i under open-loop pacing.
std::uint64_t due_us(double rate, std::uint64_t i) {
  return static_cast<std::uint64_t>(static_cast<double>(i) * 1e6 / rate);
}

LoadgenReport run_inproc(const LoadgenConfig& config) {
  Collector col(config.obs_out);
  const TickClock clock(1);  // 1 us ticks: the pacing axis
  const Stopwatch wall;
  for (std::uint64_t i = 0; i < config.requests; ++i) {
    if (config.rate > 0.0) clock.sleep_until_tick(due_us(config.rate, i));
    const Command cmd = loadgen_command(config, i);
    config.inproc->submit(cmd, [&col](const Command& c,
                                      const CommandResult& result,
                                      std::uint64_t latency_us) {
      col.record(c, result, latency_us);
    });
  }
  col.wait_done(config.requests);  // inproc: every submit is answered
  const double wall_ms = wall.elapsed_ms();
  LoadgenReport report;
  finish_report(config, col, wall_ms, &report);
  return report;
}

struct PendingRequest {
  Command cmd;
  Stopwatch sent;
};

LoadgenReport run_udp(const LoadgenConfig& config) {
  Collector col(config.obs_out);
  Mutex pending_mu;
  std::map<std::pair<std::uint64_t, std::uint64_t>, PendingRequest> pending;

  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  AG_ASSERT_MSG(fd >= 0, "loadgen: socket() failed");
  timeval tv{};
  tv.tv_usec = 50 * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in server{};
  server.sin_family = AF_INET;
  server.sin_port = htons(config.udp_port);
  server.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  std::atomic<bool> stop_receiver{false};
  std::thread receiver([&] {
    char buf[8192];
    while (!stop_receiver.load()) {
      const ssize_t got = ::recv(fd, buf, sizeof(buf) - 1, 0);
      if (got <= 0) continue;
      Response res;
      if (!decode_response(std::string(buf, static_cast<std::size_t>(got)),
                           &res))
        continue;
      Command cmd;
      std::uint64_t latency_us = 0;
      {
        MutexLock lock(&pending_mu);
        const auto it = pending.find({res.client, res.client_seq});
        if (it == pending.end()) continue;  // duplicate or stray response
        cmd = it->second.cmd;
        latency_us = it->second.sent.elapsed_us();
        pending.erase(it);
      }
      col.record(cmd, res.result, latency_us);
    }
  });

  const TickClock clock(1);
  const Stopwatch wall;
  for (std::uint64_t i = 0; i < config.requests; ++i) {
    if (config.rate > 0.0) clock.sleep_until_tick(due_us(config.rate, i));
    const Command cmd = loadgen_command(config, i);
    {
      MutexLock lock(&pending_mu);
      pending.emplace(std::make_pair(cmd.client, cmd.client_seq),
                      PendingRequest{cmd, Stopwatch{}});
    }
    const std::string req = encode_request(cmd);
    (void)::sendto(fd, req.data(), req.size(), 0,
                   reinterpret_cast<const sockaddr*>(&server),
                   sizeof(server));
  }

  // Drain: give trailing responses a bounded grace period.
  const Stopwatch drain;
  while (drain.elapsed_ms() < config.drain_timeout_s * 1000.0) {
    {
      MutexLock lock(&pending_mu);
      if (pending.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop_receiver.store(true);
  receiver.join();
  ::close(fd);
  const double wall_ms = wall.elapsed_ms();
  LoadgenReport report;
  finish_report(config, col, wall_ms, &report);
  return report;
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  AG_ASSERT_MSG((config.inproc != nullptr) != (config.udp_port != 0),
                "loadgen needs exactly one target (inproc or udp)");
  AG_ASSERT_MSG(config.requests > 0, "loadgen needs requests > 0");
  if (config.obs_out != nullptr)
    *config.obs_out << kObsHeader << " seed " << config.seed << " requests "
                    << config.requests << '\n';
  LoadgenReport report = config.inproc != nullptr ? run_inproc(config)
                                                  : run_udp(config);
  if (config.obs_out != nullptr) config.obs_out->flush();
  return report;
}

}  // namespace svc
}  // namespace asyncgossip
