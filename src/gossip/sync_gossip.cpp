#include "gossip/sync_gossip.h"

#include <cmath>

#include "common/assert.h"

namespace asyncgossip {

SyncGossipProcess::SyncGossipProcess(ProcessId id, std::size_t n,
                                     std::uint64_t rounds, std::uint64_t seed)
    : id_(id),
      n_(n),
      rounds_(rounds),
      rng_(seed ^ (0x53C40000ULL + id)),
      rumors_(n) {
  AG_ASSERT_MSG(n > 0 && id < n, "bad process id / n");
  AG_ASSERT_MSG(rounds >= 1, "sync gossip needs >= 1 round");
  rumors_.set(id_);
}

void SyncGossipProcess::step(StepContext& ctx) {
  for (const Envelope& env : ctx.received()) {
    const auto* m = payload_cast<SyncGossipPayload>(env);
    if (m != nullptr) rumors_.merge(m->rumors);
  }
  // Telemetry phase markers: round boundaries of the fixed-length schedule.
  if (steps_taken_ == 0) {
    ctx.probe_phase("rounds-begin");
  } else if (steps_taken_ + 1 == rounds_) {
    ctx.probe_phase("final-round");
  } else if (steps_taken_ == rounds_) {
    ctx.probe_phase("rounds-done");
  }
  if (steps_taken_ < rounds_) {
    auto payload = std::make_shared<SyncGossipPayload>();
    payload->rumors = rumors_;
    ctx.send(static_cast<ProcessId>(rng_.uniform(n_)), payload);
  }
  ctx.probe_state(rumors_.count(), 0);
  ++steps_taken_;
}

std::unique_ptr<Process> SyncGossipProcess::clone() const {
  return std::make_unique<SyncGossipProcess>(*this);
}

std::uint64_t make_sync_rounds(std::size_t n, double rounds_constant) {
  const double log2n = std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  return static_cast<std::uint64_t>(std::ceil(rounds_constant * log2n)) + 1;
}

}  // namespace asyncgossip
