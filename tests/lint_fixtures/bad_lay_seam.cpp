// aglint-fixture-as: src/gossip/fixture_seam.cpp
// aglint-expect: AG-LAY-002
//
// Algorithm code must see the world through StepContext only; including
// the engine directly would let it observe global state the rt runtime
// and fuzzer cannot provide.
#include "sim/engine.h"

namespace asyncgossip {

int seam_violation() { return 1; }

}  // namespace asyncgossip
