// aglint-fixture-as: src/sim/fixture_unordered.cpp
// aglint-expect: AG-DET-003
//
// Iterating a hash-ordered container in trace-feeding code: the emission
// order follows the standard library's hash seed, so two builds can
// produce different (both "valid-looking") traces.
#include <cstdint>
#include <unordered_map>

namespace asyncgossip {

std::uint64_t sum_in_hash_order(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counters) {
  std::uint64_t acc = 0;
  for (const auto& [id, value] : counters) acc = acc * 31 + id + value;
  return acc;
}

}  // namespace asyncgossip
