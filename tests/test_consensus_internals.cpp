// Unit tests driving ConsensusProcess directly through hand-crafted
// message sequences: catch-up adoption, decided notifications, retirement,
// and transport behaviours that the integration sweeps only exercise
// implicitly.
#include <gtest/gtest.h>

#include "consensus/canetti_rabin.h"

namespace asyncgossip {
namespace {

ConsensusConfig small_config(ExchangeKind kind = ExchangeKind::kEars) {
  ConsensusConfig cfg;
  cfg.n = 8;
  cfg.f = 3;
  cfg.exchange = kind;
  cfg.seed = 5;
  return cfg;
}

std::shared_ptr<ConsensusPayload> message(ProcessId sender, Position pos,
                                          std::size_t n) {
  auto m = std::make_shared<ConsensusPayload>();
  m->sender = sender;
  m->pos = pos;
  m->state = InstanceState(n);
  m->sender_x = 1;
  m->sender_y = kValBot;
  return m;
}

Envelope wrap(ProcessId from, ProcessId to, PayloadPtr p) {
  Envelope env;
  env.from = from;
  env.to = to;
  env.payload = std::move(p);
  return env;
}

std::vector<StepContext::Outgoing> drive(ConsensusProcess& p, ProcessId self,
                                         std::size_t n,
                                         std::vector<Envelope> inbox,
                                         std::uint64_t s) {
  StepContext ctx(self, n, s, inbox);
  p.step(ctx);
  return std::move(ctx.outbox());
}

TEST(ConsensusInternals, StartsAtPhaseOneUndecided) {
  ConsensusProcess p(0, 1, small_config());
  EXPECT_EQ(p.position(), (Position{1, 0, 0}));
  EXPECT_FALSE(p.decided());
  EXPECT_FALSE(p.retired());
}

TEST(ConsensusInternals, EarsTransportSendsEveryStep) {
  ConsensusProcess p(0, 0, small_config());
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto out = drive(p, 0, 8, {}, s);
    EXPECT_EQ(out.size(), 1u);
  }
}

TEST(ConsensusInternals, AllToAllBroadcastsOnceThenWaits) {
  ConsensusProcess p(0, 0, small_config(ExchangeKind::kAllToAll));
  auto first = drive(p, 0, 8, {}, 0);
  EXPECT_EQ(first.size(), 7u);  // everyone but self
  for (std::uint64_t s = 1; s < 5; ++s)
    EXPECT_TRUE(drive(p, 0, 8, {}, s).empty());
}

TEST(ConsensusInternals, AllToAllReannouncesWhenStalled) {
  ConsensusConfig cfg = small_config(ExchangeKind::kAllToAll);
  cfg.stagnation_limit = 4;
  ConsensusProcess p(0, 0, cfg);
  drive(p, 0, 8, {}, 0);
  std::size_t reannounced = 0;
  for (std::uint64_t s = 1; s < 12; ++s)
    if (!drive(p, 0, 8, {}, s).empty()) ++reannounced;
  EXPECT_GE(reannounced, 1u);
  EXPECT_EQ(p.reannouncements(), reannounced);
}

TEST(ConsensusInternals, CatchUpAdoptsLaterPosition) {
  ConsensusProcess p(0, 0, small_config());
  auto ahead = message(3, Position{4, 1, 2}, 8);
  ahead->state.add_own(3, kValBot);
  drive(p, 0, 8, {wrap(3, 0, ahead)}, 0);
  EXPECT_EQ(p.position(), (Position{4, 1, 2}));
}

TEST(ConsensusInternals, StaleMessagesDoNotRegress) {
  ConsensusProcess p(0, 0, small_config());
  auto ahead = message(3, Position{2, 0, 0}, 8);
  drive(p, 0, 8, {wrap(3, 0, ahead)}, 0);
  const Position pos = p.position();
  auto stale = message(4, Position{1, 0, 0}, 8);
  drive(p, 0, 8, {wrap(4, 0, stale)}, 1);
  EXPECT_GE(p.position(), pos);
}

TEST(ConsensusInternals, DecidedNotificationDecidesReceiver) {
  ConsensusProcess p(0, 0, small_config());
  auto m = message(5, Position{1, 0, 0}, 8);
  m->decided = true;
  m->decision = 1;
  drive(p, 0, 8, {wrap(5, 0, m)}, 0);
  EXPECT_TRUE(p.decided());
  EXPECT_EQ(p.decision(), 1);
  EXPECT_FALSE(p.retired());  // helping first
}

TEST(ConsensusInternals, HelpingExpiresIntoRetirement) {
  ConsensusConfig cfg = small_config();
  cfg.help_steps = 3;
  ConsensusProcess p(0, 0, cfg);
  auto m = message(5, Position{1, 0, 0}, 8);
  m->decided = true;
  m->decision = 0;
  drive(p, 0, 8, {wrap(5, 0, m)}, 0);
  for (std::uint64_t s = 1; s <= 4 && !p.retired(); ++s) drive(p, 0, 8, {}, s);
  EXPECT_TRUE(p.retired());
}

TEST(ConsensusInternals, RetiredProcessNotifiesUndecidedSendersOnce) {
  ConsensusConfig cfg = small_config();
  cfg.help_steps = 1;
  ConsensusProcess p(0, 0, cfg);
  auto decided = message(5, Position{1, 0, 0}, 8);
  decided->decided = true;
  decided->decision = 0;
  drive(p, 0, 8, {wrap(5, 0, decided)}, 0);
  while (!p.retired()) drive(p, 0, 8, {}, 99);
  // An undecided peer pings the retiree.
  auto ping = message(2, Position{1, 0, 0}, 8);
  auto out1 = drive(p, 0, 8, {wrap(2, 0, ping)}, 100);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1[0].to, 2u);
  const auto* reply =
      dynamic_cast<const ConsensusPayload*>(out1[0].payload.get());
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->decided);
  // Second ping from the same sender: already notified, stay silent.
  auto out2 = drive(p, 0, 8, {wrap(2, 0, ping)}, 101);
  EXPECT_TRUE(out2.empty());
}

TEST(ConsensusInternals, MessagesCarrySenderOutcomes) {
  ConsensusProcess p(2, 1, small_config());
  const auto out = drive(p, 2, 8, {}, 0);
  ASSERT_FALSE(out.empty());
  const auto* m = dynamic_cast<const ConsensusPayload*>(out[0].payload.get());
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->sender, 2u);
  EXPECT_EQ(m->sender_x, 1);
  EXPECT_EQ(m->pos, (Position{1, 0, 0}));
  EXPECT_TRUE(m->state.origins.test(2));
  EXPECT_EQ(m->state.items[2], 1);
}

TEST(ConsensusInternals, SubInstanceAdvancesAtMajority) {
  const std::size_t n = 8;  // majority threshold 5
  ConsensusProcess p(0, 1, small_config());
  // Deliver rumors from 4 distinct origins (plus self = 5 = threshold).
  std::vector<Envelope> inbox;
  for (ProcessId q = 1; q <= 4; ++q) {
    auto m = message(q, Position{1, 0, 0}, n);
    m->state.add_own(q, 1);
    inbox.push_back(wrap(q, 0, m));
  }
  drive(p, 0, n, std::move(inbox), 0);
  EXPECT_EQ(p.position(), (Position{1, 0, 1}));  // sub-instance advanced
}

}  // namespace
}  // namespace asyncgossip
