// The replicated KV service's command vocabulary and its loopback text
// encoding (asyncgossip-svc-req-v1 / asyncgossip-svc-res-v1).
//
// Commands are space-delimited single-line datagrams: keys and values are
// restricted to [!-~] \ {' '} (no whitespace, printable ASCII), which the
// loadgen's generated keyspace satisfies by construction and serve()
// enforces on ingress. One request datagram -> one response datagram; the
// (client, client_seq) pair is the idempotence/matching token echoed back
// verbatim.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace asyncgossip {
namespace svc {

enum class SvcOp : std::uint8_t { kPut = 0, kGet = 1, kCas = 2 };

inline const char* to_string(SvcOp op) {
  switch (op) {
    case SvcOp::kPut:
      return "put";
    case SvcOp::kGet:
      return "get";
    case SvcOp::kCas:
      return "cas";
  }
  return "?";
}

inline bool op_from_string(const std::string& name, SvcOp* out) {
  if (name == "put") *out = SvcOp::kPut;
  else if (name == "get") *out = SvcOp::kGet;
  else if (name == "cas") *out = SvcOp::kCas;
  else return false;
  return true;
}

/// One client command. `expected` is the CAS comparand (kCas only).
struct Command {
  SvcOp op = SvcOp::kPut;
  std::uint64_t client = 0;
  std::uint64_t client_seq = 0;
  std::string key;
  std::string value;
  std::string expected;
};

/// Outcome of a committed (or refused) command.
struct CommandResult {
  /// Command committed and applied. For kCas, additionally the comparand
  /// matched; a committed-but-failed CAS has ok = false with a log entry.
  bool ok = false;
  /// The replica group had lost its majority: nothing was committed and
  /// the command left no trace in the log. The honest degraded answer.
  bool unavailable = false;
  /// Global log sequence number (1-based; 0 when unavailable).
  std::uint64_t seq = 0;
  /// kGet: the value read ("" when the key is absent, with found = false).
  std::string value;
  bool found = false;
};

inline bool token_ok(const std::string& s) {
  if (s.empty() || s.size() > 4096) return false;
  for (const char c : s)
    if (c <= ' ' || c > '~') return false;
  return true;
}

// --- request/response datagram encoding ----------------------------------

inline std::string encode_request(const Command& cmd) {
  std::ostringstream os;
  os << "req " << cmd.client << ' ' << cmd.client_seq << ' '
     << to_string(cmd.op) << ' ' << cmd.key;
  if (cmd.op != SvcOp::kGet) os << ' ' << cmd.value;
  if (cmd.op == SvcOp::kCas) os << ' ' << cmd.expected;
  return os.str();
}

inline bool decode_request(const std::string& text, Command* out) {
  std::istringstream is(text);
  std::string tag, op;
  if (!(is >> tag >> out->client >> out->client_seq >> op) || tag != "req")
    return false;
  if (!op_from_string(op, &out->op)) return false;
  if (!(is >> out->key) || !token_ok(out->key)) return false;
  if (out->op != SvcOp::kGet) {
    if (!(is >> out->value) || !token_ok(out->value)) return false;
  }
  if (out->op == SvcOp::kCas) {
    if (!(is >> out->expected) || !token_ok(out->expected)) return false;
  }
  std::string extra;
  return !(is >> extra);
}

inline std::string encode_response(const Command& cmd,
                                   const CommandResult& result) {
  std::ostringstream os;
  os << "res " << cmd.client << ' ' << cmd.client_seq << ' '
     << (result.ok ? 1 : 0) << ' ' << (result.unavailable ? 1 : 0) << ' '
     << result.seq << ' ' << (result.found ? 1 : 0);
  if (result.found) os << ' ' << result.value;
  return os.str();
}

struct Response {
  std::uint64_t client = 0;
  std::uint64_t client_seq = 0;
  CommandResult result;
};

inline bool decode_response(const std::string& text, Response* out) {
  std::istringstream is(text);
  std::string tag;
  int ok = 0, unavailable = 0, found = 0;
  if (!(is >> tag >> out->client >> out->client_seq >> ok >> unavailable >>
        out->result.seq >> found) ||
      tag != "res")
    return false;
  out->result.ok = ok != 0;
  out->result.unavailable = unavailable != 0;
  out->result.found = found != 0;
  if (found != 0 && !(is >> out->result.value)) return false;
  std::string extra;
  return !(is >> extra);
}

}  // namespace svc
}  // namespace asyncgossip
