// The replicated state machine: a deterministic string->string map that
// every command mutates/reads at its committed log position. apply() is the
// single transition function — the service's commit thread and the history
// checker's replay (svc/history.h) both call it, so "what the service did"
// and "what the log says it should have done" cannot drift.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "svc/command.h"

namespace asyncgossip {
namespace svc {

class KvStore {
 public:
  /// Applies one committed command and reports its result (result.seq is
  /// filled by the caller, which owns sequencing). Deterministic.
  CommandResult apply(const Command& cmd);

  std::size_t size() const { return map_.size(); }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace svc
}  // namespace asyncgossip
