#include "rt/transport.h"

#include <algorithm>

#include "common/assert.h"

namespace asyncgossip {

InProcessTransport::InProcessTransport(std::size_t n) {
  inboxes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    inboxes_.push_back(std::make_unique<Inbox>(n));
}

Time InProcessTransport::submit(Envelope env) {
  AG_ASSERT_MSG(env.to < inboxes_.size(), "submit to out-of-range process");
  Inbox& box = *inboxes_[env.to];
  const MutexLock lock(&box.mu);
  if (box.closed) return kTimeMax;
  Time after = env.deliver_after;
  // No-late stamp: if the receiver already drained tick T, nothing may
  // become deliverable at or before T retroactively.
  if (box.drained_once && after <= box.last_drain_tick)
    after = box.last_drain_tick + 1;
  // Per-link FIFO: stamps on one link never decrease.
  Time& floor = box.link_floor[env.from];
  after = std::max(after, floor);
  floor = after;
  env.deliver_after = after;
  box.pending.push_back(std::move(env));
  return after;
}

std::size_t InProcessTransport::drain(ProcessId p, Time now,
                                      std::vector<Envelope>* out) {
  Inbox& box = *inboxes_[p];
  const MutexLock lock(&box.mu);
  box.drained_once = true;
  box.last_drain_tick = std::max(box.last_drain_tick, now);
  const std::size_t first = out->size();
  std::size_t kept = 0;
  for (Envelope& env : box.pending) {
    if (env.deliver_after <= now)
      out->push_back(std::move(env));
    else
      box.pending[kept++] = std::move(env);
  }
  box.pending.resize(kept);
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(first), out->end(),
            [](const Envelope& a, const Envelope& b) { return a.id < b.id; });
  return out->size() - first;
}

std::size_t InProcessTransport::close_inbox(ProcessId p) {
  Inbox& box = *inboxes_[p];
  const MutexLock lock(&box.mu);
  box.closed = true;
  const std::size_t discarded = box.pending.size();
  box.pending.clear();
  return discarded;
}

}  // namespace asyncgossip
