// aglint-fixture-as: src/gossip/fixture_clock.cpp
// aglint-expect: AG-DET-002
//
// Wall-clock reads outside src/rt/clock.h make run outcomes depend on the
// host's scheduler instead of the model's (d, delta, f) parameters.
#include <chrono>

namespace asyncgossip {

long long wall_now_us() {
  const auto t = std::chrono::steady_clock::now();  // AG-DET-002
  return t.time_since_epoch().count();
}

}  // namespace asyncgossip
