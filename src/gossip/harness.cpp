#include "gossip/harness.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/assert.h"
#include "gossip/epidemic.h"
#include "sim/sweep.h"
#include "sim/telemetry.h"
#include "gossip/lazy.h"
#include "gossip/roundrobin.h"
#include "gossip/sync_gossip.h"
#include "gossip/tears.h"
#include "gossip/trivial.h"

namespace asyncgossip {

std::size_t default_engine_jobs() {
  const char* env = std::getenv("AG_ENGINE_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 1;  // unparsable: stay serial
  return static_cast<std::size_t>(v);
}

const char* to_string(GossipAlgorithm algorithm) {
  switch (algorithm) {
    case GossipAlgorithm::kTrivial:
      return "trivial";
    case GossipAlgorithm::kEars:
      return "ears";
    case GossipAlgorithm::kSears:
      return "sears";
    case GossipAlgorithm::kTears:
      return "tears";
    case GossipAlgorithm::kSync:
      return "sync";
    case GossipAlgorithm::kEarsNoInformedList:
      return "ears-no-informed-list";
    case GossipAlgorithm::kLazy:
      return "lazy";
    case GossipAlgorithm::kRoundRobin:
      return "round-robin";
    case GossipAlgorithm::kCrEars:
      return "cr-ears";
    case GossipAlgorithm::kCrSears:
      return "cr-sears";
    case GossipAlgorithm::kCrTears:
      return "cr-tears";
  }
  return "?";
}

bool algorithm_from_string(const std::string& name, GossipAlgorithm* out) {
  if (name == "trivial") *out = GossipAlgorithm::kTrivial;
  else if (name == "ears") *out = GossipAlgorithm::kEars;
  else if (name == "sears") *out = GossipAlgorithm::kSears;
  else if (name == "tears") *out = GossipAlgorithm::kTears;
  else if (name == "sync") *out = GossipAlgorithm::kSync;
  else if (name == "ears-no-informed-list")
    *out = GossipAlgorithm::kEarsNoInformedList;
  else if (name == "lazy") *out = GossipAlgorithm::kLazy;
  else if (name == "round-robin") *out = GossipAlgorithm::kRoundRobin;
  else if (name == "cr-ears") *out = GossipAlgorithm::kCrEars;
  else if (name == "cr-sears") *out = GossipAlgorithm::kCrSears;
  else if (name == "cr-tears") *out = GossipAlgorithm::kCrTears;
  else return false;
  return true;
}

bool is_consensus_algorithm(GossipAlgorithm algorithm) {
  return algorithm == GossipAlgorithm::kCrEars ||
         algorithm == GossipAlgorithm::kCrSears ||
         algorithm == GossipAlgorithm::kCrTears;
}

namespace {
ConsensusProcessFactory g_consensus_factory = nullptr;
}  // namespace

void set_consensus_process_factory(ConsensusProcessFactory factory) {
  g_consensus_factory = factory;
}

std::vector<std::unique_ptr<Process>> make_gossip_processes(
    const GossipSpec& spec) {
  AG_ASSERT_MSG(spec.n >= 2, "gossip spec needs n >= 2");
  AG_ASSERT_MSG(spec.f < spec.n, "gossip spec needs f < n");
  if (is_consensus_algorithm(spec.algorithm)) {
    AG_ASSERT_MSG(g_consensus_factory != nullptr,
                  "cr-* algorithms need register_consensus_algorithms() "
                  "(consensus/cr_gossip.h) called first");
    return g_consensus_factory(spec);
  }
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(spec.n);
  switch (spec.algorithm) {
    case GossipAlgorithm::kTrivial:
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(std::make_unique<TrivialGossipProcess>(
            static_cast<ProcessId>(p), spec.n));
      break;
    case GossipAlgorithm::kEars: {
      const EpidemicConfig cfg = make_ears_config(
          spec.n, spec.f, spec.seed, spec.ears_shutdown_constant);
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(std::make_unique<EpidemicGossipProcess>(
            static_cast<ProcessId>(p), cfg));
      break;
    }
    case GossipAlgorithm::kSears: {
      const EpidemicConfig cfg =
          make_sears_config(spec.n, spec.f, spec.sears_epsilon, spec.seed,
                            spec.sears_fanout_constant);
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(std::make_unique<EpidemicGossipProcess>(
            static_cast<ProcessId>(p), cfg));
      break;
    }
    case GossipAlgorithm::kTears: {
      TearsConfig cfg;
      cfg.n = spec.n;
      cfg.a_constant = spec.tears_a_constant;
      cfg.kappa_constant = spec.tears_kappa_constant;
      cfg.seed = spec.seed;
      cfg.finalize();
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(
            std::make_unique<TearsProcess>(static_cast<ProcessId>(p), cfg));
      break;
    }
    case GossipAlgorithm::kSync: {
      const std::uint64_t rounds =
          make_sync_rounds(spec.n, spec.sync_rounds_constant);
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(std::make_unique<SyncGossipProcess>(
            static_cast<ProcessId>(p), spec.n, rounds, spec.seed));
      break;
    }
    case GossipAlgorithm::kEarsNoInformedList: {
      EpidemicConfig cfg = make_ears_config(spec.n, spec.f, spec.seed,
                                            spec.ears_shutdown_constant);
      cfg.use_informed_list = false;
      cfg.fallback_step_budget =
          spec.fallback_step_budget != 0
              ? spec.fallback_step_budget
              // Conservative default: without the progress control the
              // process cannot tell when dissemination finished, so it must
              // budget for the worst legal schedule it was designed for.
              : 8 * cfg.shutdown_steps;
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(std::make_unique<EpidemicGossipProcess>(
            static_cast<ProcessId>(p), cfg));
      break;
    }
    case GossipAlgorithm::kLazy:
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(std::make_unique<LazyGossipProcess>(
            static_cast<ProcessId>(p), spec.n, spec.lazy_fanout, spec.seed));
      break;
    case GossipAlgorithm::kRoundRobin: {
      const EpidemicConfig cfg = make_ears_config(
          spec.n, spec.f, spec.seed, spec.ears_shutdown_constant);
      for (std::size_t p = 0; p < spec.n; ++p)
        procs.push_back(std::make_unique<RoundRobinGossipProcess>(
            static_cast<ProcessId>(p), cfg));
      break;
    }
    case GossipAlgorithm::kCrEars:
    case GossipAlgorithm::kCrSears:
    case GossipAlgorithm::kCrTears:
      break;  // handled above via the registered consensus factory
  }
  return procs;
}

Time default_step_budget(const GossipSpec& spec) {
  const double n = static_cast<double>(spec.n);
  const double lg = std::log2(n) + 1.0;
  const double dd = static_cast<double>(spec.d + spec.delta);
  if (is_consensus_algorithm(spec.algorithm)) {
    // Matches run_consensus_spec's budget: O(1) phases of O(log^2 n (d+δ))
    // gossip each in expectation, padded for the catch-up machinery.
    return static_cast<Time>(2000.0 * lg * lg * dd + 64.0 * n);
  }
  // Generous: the claimed time complexities are at most
  // n/(n-f) * log^2 n * (d + delta) up to constants; budget two orders of
  // magnitude above to make non-termination failures unambiguous.
  const double ratio = n / static_cast<double>(spec.n - spec.f);
  const double budget = 400.0 * ratio * lg * lg * dd + 4096.0;
  return static_cast<Time>(budget);
}

bool gossip_requires_gathering(const GossipSpec& spec) {
  switch (spec.algorithm) {
    case GossipAlgorithm::kTears:  // majority gossip only
    case GossipAlgorithm::kLazy:   // completion only (cascading foil)
    case GossipAlgorithm::kCrEars:   // consensus: judged by decision notes,
    case GossipAlgorithm::kCrSears:  // not rumor spread (cr_gossip.h)
    case GossipAlgorithm::kCrTears:
      return false;
    case GossipAlgorithm::kSync:
      // The synchronous baseline assumes d = delta = 1 a priori (its fixed
      // round budget counts rounds, not time); outside that regime its
      // spread guarantee simply does not apply, so only completion and the
      // model invariants are checked.
      return spec.d == 1 && spec.delta == 1;
    default:
      return true;
  }
}

bool gossip_requires_majority(const GossipSpec& spec) {
  if (spec.algorithm == GossipAlgorithm::kLazy) return false;
  if (is_consensus_algorithm(spec.algorithm)) return false;
  if (spec.algorithm == GossipAlgorithm::kSync)
    return spec.d == 1 && spec.delta == 1;  // same regime caveat as above
  return true;
}

Engine make_gossip_engine(const GossipSpec& spec) {
  ObliviousConfig adv;
  adv.n = spec.n;
  adv.d = spec.d;
  adv.delta = spec.delta;
  adv.schedule = spec.schedule;
  adv.delay = spec.delay;
  adv.crash_plan =
      random_crashes(spec.n, spec.f, spec.crash_horizon, spec.seed ^ 0xF417ULL);
  adv.seed = spec.seed ^ 0xAD7E25A27ULL;

  EngineConfig ecfg;
  ecfg.d = spec.d;
  ecfg.delta = spec.delta;
  ecfg.max_crashes = spec.f;
  ecfg.jobs = spec.engine_jobs;

  return Engine(make_gossip_processes(spec),
                std::make_unique<ObliviousAdversary>(adv), ecfg);
}

TelemetryConfig telemetry_config(const GossipSpec& spec) {
  TelemetryConfig cfg;
  cfg.n = spec.n;
  cfg.d = spec.d;
  cfg.delta = spec.delta;
  return cfg;
}

namespace {

void attach_telemetry(Engine& engine, TelemetryCollector* telemetry) {
  if (telemetry == nullptr) return;
  engine.add_observer(telemetry);
  engine.set_probe_sink(telemetry);
}

void attach_flight(Engine& engine, FlightRing* ring) {
  if (ring != nullptr) engine.set_flight_ring(ring);
}

}  // namespace

namespace {

/// The single-spec run behind run_gossip_spec and run_gossip_sweep:
/// honors spec.audit (throwing on violations) and captures the trace hash.
GossipSweepResult run_spec_result(const GossipSpec& spec) {
  if (spec.audit) {
    AuditedGossipOutcome audited = run_audited_gossip_spec(spec);
    if (!audited.audit.ok())
      throw ModelViolation("audited gossip run violated the model contract: " +
                           audited.audit.summary());
    return {audited.outcome, audited.trace_hash};
  }
  Engine engine = make_gossip_engine(spec);
  attach_telemetry(engine, spec.telemetry);
  attach_flight(engine, spec.flight);
  const Time budget =
      spec.max_steps != 0 ? spec.max_steps : default_step_budget(spec);
  GossipSweepResult result;
  result.outcome = run_gossip(engine, budget);
  if (spec.telemetry != nullptr) spec.telemetry->finalize(engine.now());
  result.trace_hash = engine.trace_hash();
  return result;
}

}  // namespace

GossipOutcome run_gossip_spec(const GossipSpec& spec) {
  return run_spec_result(spec).outcome;
}

std::string spec_label(const GossipSpec& spec) {
  return std::string(to_string(spec.algorithm)) + "/n:" +
         std::to_string(spec.n) + "/f:" + std::to_string(spec.f) +
         "/d:" + std::to_string(spec.d) +
         "/delta:" + std::to_string(spec.delta);
}

std::vector<GossipSweepResult> run_gossip_sweep(
    const std::vector<GossipSpec>& specs, std::size_t jobs) {
  std::vector<GossipSweepResult> results(specs.size());
  const SweepRunner runner(jobs);
  std::vector<std::exception_ptr> errors;
  const std::size_t failed = runner.run_collecting(
      specs.size(),
      [&](std::size_t i) { results[i] = run_spec_result(specs[i]); }, errors);
  if (failed == 0) return results;

  std::size_t lowest = 0;
  while (errors[lowest] == nullptr) ++lowest;
  if (failed == 1) std::rethrow_exception(errors[lowest]);

  // More than one spec failed: still surface the lowest-index exception
  // (reruns stay reproducible), but record how widespread the failure was.
  std::string context = " [sweep: " + std::to_string(failed) + " of " +
                        std::to_string(specs.size()) +
                        " specs failed; also failing:";
  constexpr std::size_t kMaxLabels = 3;
  std::size_t listed = 0;
  for (std::size_t i = lowest + 1; i < specs.size(); ++i) {
    if (errors[i] == nullptr) continue;
    if (listed == kMaxLabels) {
      context += ", ...";
      break;
    }
    context += (listed == 0 ? " " : ", ") + spec_label(specs[i]) +
               "/seed:" + std::to_string(specs[i].seed);
    ++listed;
  }
  context += ']';
  try {
    std::rethrow_exception(errors[lowest]);
  } catch (const ModelViolation& e) {
    throw ModelViolation(e.what() + context);
  } catch (const ApiError& e) {
    throw ApiError(e.what() + context);
  } catch (const std::exception& e) {
    throw std::runtime_error(e.what() + context);
  }
}

AuditedGossipOutcome run_audited_gossip_spec(const GossipSpec& spec) {
  Engine engine = make_gossip_engine(spec);
  AuditConfig audit_cfg;
  audit_cfg.n = spec.n;
  audit_cfg.d = spec.d;
  audit_cfg.delta = spec.delta;
  audit_cfg.max_crashes = spec.f;
  InvariantAuditor auditor(audit_cfg);
  engine.add_observer(&auditor);
  attach_telemetry(engine, spec.telemetry);
  attach_flight(engine, spec.flight);
  const Time budget =
      spec.max_steps != 0 ? spec.max_steps : default_step_budget(spec);
  AuditedGossipOutcome result;
  result.outcome = run_gossip(engine, budget);
  auditor.finalize(engine.now());
  auditor.cross_check(engine.metrics());
  if (spec.telemetry != nullptr) spec.telemetry->finalize(engine.now());
  result.audit = auditor.report();
  result.trace_hash = engine.trace_hash();
  return result;
}

}  // namespace asyncgossip
