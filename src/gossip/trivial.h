// Trivial gossip (Table 1 row "Trivial"): every process sends its rumor
// directly to everyone in its first local step. Theta(n^2) messages,
// O(d + delta) time, and correct even against an adaptive adversary — the
// baseline every non-trivial protocol must beat on messages.
#pragma once

#include <memory>

#include "common/bitset.h"
#include "gossip/rumor.h"

namespace asyncgossip {

struct TrivialPayload final : Payload {
  DynamicBitset rumors;
  std::size_t byte_size() const override { return rumors.byte_size(); }
};

class TrivialGossipProcess final : public GossipProcess {
 public:
  TrivialGossipProcess(ProcessId id, std::size_t n);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;

  void reseed(std::uint64_t) override {}  // deterministic algorithm
  const DynamicBitset& rumors() const override { return rumors_; }
  bool quiescent() const override { return steps_taken_ > 0; }
  std::uint64_t local_steps() const override { return steps_taken_; }

 private:
  ProcessId id_;
  std::size_t n_;
  DynamicBitset rumors_;
  std::uint64_t steps_taken_ = 0;
};

}  // namespace asyncgossip
