// asyncgossip-wire-v1 format tests (rt/wire.h).
//
// Three layers of pinning:
//
//   * Golden fixtures — committed byte-for-byte encodings. The wire format
//     is a compatibility surface between separately spawned OS processes
//     (rt/multiproc.h); an accidental encoding change must fail a test, not
//     surface as a version-skew hang. Canonical bytes also back the
//     receiver's dedup-by-(link, seq), so one logical frame must have
//     exactly one representation.
//   * Round-trip properties — encode/decode over every payload shape and
//     every control frame, with seeded-random bitsets.
//   * Malformed-frame corpus — a datagram is attacker-adjacent input even
//     on loopback: every truncation prefix, bad magic/version/type,
//     overlong varints, out-of-range values, unknown payload tags and
//     trailing bytes must come back as clean DecodeErrors with no UB (this
//     file is part of the asan-ubsan preset for exactly that reason).
//
// The last tests drive raw datagrams into a live UdpTransport socket:
// garbage is counted (stats().decode_errors), duplicate sequence numbers
// are dropped, and neither perturbs the delivered envelope stream.
#include "rt/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "gossip/epidemic.h"
#include "gossip/lazy.h"
#include "gossip/sync_gossip.h"
#include "gossip/tears.h"
#include "gossip/trivial.h"
#include "rt/udp_transport.h"

namespace asyncgossip {
namespace {

using Bytes = std::vector<std::uint8_t>;

DynamicBitset bits_of(std::size_t size, std::initializer_list<std::size_t> set) {
  DynamicBitset bits(size);
  for (std::size_t i : set) bits.set(i);
  return bits;
}

DynamicBitset random_bits(std::size_t size, Xoshiro256SS* rng) {
  DynamicBitset bits(size);
  if (size == 0) return bits;
  const std::uint64_t count = rng->uniform(size + 1);
  for (std::uint64_t i = 0; i < count; ++i)
    bits.set(static_cast<std::size_t>(rng->uniform(size)));
  return bits;
}

Envelope make_env(MessageId id, ProcessId from, ProcessId to, Time send_time,
                  Time deliver_after, PayloadPtr payload = nullptr) {
  Envelope env;
  env.id = id;
  env.from = from;
  env.to = to;
  env.send_time = send_time;
  env.deliver_after = deliver_after;
  env.payload = std::move(payload);
  return env;
}

// --- golden fixtures ------------------------------------------------------

TEST(Wire, GoldenVarints) {
  const struct {
    std::uint64_t value;
    Bytes bytes;
  } kGolden[] = {
      {0, {0x00}},
      {1, {0x01}},
      {127, {0x7f}},
      {128, {0x80, 0x01}},
      {300, {0xac, 0x02}},
      {std::uint64_t{1} << 32, {0x80, 0x80, 0x80, 0x80, 0x10}},
      {~std::uint64_t{0},
       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
  };
  for (const auto& g : kGolden) {
    Bytes out;
    wire::put_varint(&out, g.value);
    EXPECT_EQ(out, g.bytes) << g.value;
    wire::Reader r(out.data(), out.size());
    std::uint64_t back = 0;
    ASSERT_TRUE(r.varint(&back)) << g.value;
    EXPECT_EQ(back, g.value);
    EXPECT_EQ(r.finish(), wire::DecodeError::kOk);
  }
}

TEST(Wire, GoldenDataFrame) {
  // from=1 to=2 seq=1, one envelope {id=7, send=3, deliver=5} carrying a
  // trivial payload over 4 rumors with bits {0, 2} set.
  auto payload = std::make_shared<TrivialPayload>();
  payload->rumors = bits_of(4, {0, 2});
  wire::DataFrame frame;
  frame.from = 1;
  frame.to = 2;
  frame.seq = 1;
  frame.envelopes.push_back(make_env(7, 1, 2, 3, 5, payload));

  Bytes out;
  wire::encode_data_frame(&out, frame);
  const Bytes kGolden = {
      'A', 'G', 0x01, 0x01,  // header: magic, version, kData
      0x01, 0x02, 0x01,      // from, to, seq
      0x01,                  // envelope count
      0x07, 0x03, 0x02,      // id, send_time, deliver_after - send_time
      0x01,                  // payload tag: trivial
      0x04, 0x01, 0x05,      // bitset: 4 bits, 1 byte, 0b0101
  };
  EXPECT_EQ(out, kGolden);

  wire::DataFrame back;
  ASSERT_EQ(wire::decode_data_frame(kGolden.data(), kGolden.size(), &back),
            wire::DecodeError::kOk);
  EXPECT_EQ(back.from, 1u);
  EXPECT_EQ(back.to, 2u);
  EXPECT_EQ(back.seq, 1u);
  ASSERT_EQ(back.envelopes.size(), 1u);
  EXPECT_EQ(back.envelopes[0].id, 7u);
  EXPECT_EQ(back.envelopes[0].send_time, 3u);
  EXPECT_EQ(back.envelopes[0].deliver_after, 5u);
  const auto* p = payload_cast<TrivialPayload>(back.envelopes[0]);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->rumors == payload->rumors);
}

TEST(Wire, GoldenAckAndSignalFrames) {
  wire::AckFrame ack;
  ack.receiver = 2;
  ack.sender = 1;
  ack.cum_seq = 3;
  ack.closed = false;
  Bytes out;
  wire::encode_ack_frame(&out, ack);
  const Bytes kGoldenAck = {'A', 'G', 0x01, 0x02, 0x02, 0x01, 0x03, 0x00};
  EXPECT_EQ(out, kGoldenAck);

  Bytes start;
  wire::encode_signal_frame(&start, wire::FrameType::kStart);
  EXPECT_EQ(start, (Bytes{'A', 'G', 0x01, 0x05}));
  Bytes shutdown;
  wire::encode_signal_frame(&shutdown, wire::FrameType::kShutdown);
  EXPECT_EQ(shutdown, (Bytes{'A', 'G', 0x01, 0x07}));
}

// --- round-trip properties ------------------------------------------------

TEST(Wire, DataFrameRoundTripsEveryPayloadShape) {
  Xoshiro256SS rng(20260809);
  constexpr std::size_t kRumors = 37;  // not a multiple of 8: ragged tail
  for (int shape = 0; shape < 6; ++shape) {
    wire::DataFrame frame;
    frame.from = 3;
    frame.to = 5;
    frame.seq = 1 + rng.uniform(1000);
    for (int i = 0; i < 4; ++i) {
      PayloadPtr payload;
      switch (shape) {
        case 0:
          break;  // null payload
        case 1: {
          auto p = std::make_shared<TrivialPayload>();
          p->rumors = random_bits(kRumors, &rng);
          payload = std::move(p);
          break;
        }
        case 2: {
          auto p = std::make_shared<EpidemicPayload>();
          p->rumors = random_bits(kRumors, &rng);
          p->informed.resize(kRumors);
          for (DynamicBitset& inf : p->informed)
            if (rng.uniform(2) == 0) inf = random_bits(kRumors, &rng);
          payload = std::move(p);
          break;
        }
        case 3: {
          auto p = std::make_shared<TearsPayload>();
          p->rumors = random_bits(kRumors, &rng);
          p->flag_up = rng.uniform(2) == 1;
          payload = std::move(p);
          break;
        }
        case 4: {
          auto p = std::make_shared<SyncGossipPayload>();
          p->rumors = random_bits(kRumors, &rng);
          payload = std::move(p);
          break;
        }
        case 5: {
          auto p = std::make_shared<LazyPayload>();
          p->rumors = random_bits(kRumors, &rng);
          payload = std::move(p);
          break;
        }
      }
      const Time send = rng.uniform(1 << 20);
      frame.envelopes.push_back(make_env(rng.next(), 3, 5, send,
                                         send + 1 + rng.uniform(64),
                                         std::move(payload)));
    }

    Bytes out;
    wire::encode_data_frame(&out, frame);
    wire::DataFrame back;
    ASSERT_EQ(wire::decode_data_frame(out.data(), out.size(), &back),
              wire::DecodeError::kOk)
        << "shape " << shape;
    EXPECT_EQ(back.from, frame.from);
    EXPECT_EQ(back.to, frame.to);
    EXPECT_EQ(back.seq, frame.seq);
    ASSERT_EQ(back.envelopes.size(), frame.envelopes.size());
    for (std::size_t i = 0; i < frame.envelopes.size(); ++i) {
      const Envelope& sent = frame.envelopes[i];
      const Envelope& got = back.envelopes[i];
      EXPECT_EQ(got.id, sent.id);
      EXPECT_EQ(got.send_time, sent.send_time);
      EXPECT_EQ(got.deliver_after, sent.deliver_after);
      switch (shape) {
        case 0:
          EXPECT_EQ(got.payload.get(), nullptr);
          break;
        case 1: {
          const auto* a = payload_cast<TrivialPayload>(sent);
          const auto* b = payload_cast<TrivialPayload>(got);
          ASSERT_NE(b, nullptr);
          EXPECT_TRUE(a->rumors == b->rumors);
          break;
        }
        case 2: {
          const auto* a = payload_cast<EpidemicPayload>(sent);
          const auto* b = payload_cast<EpidemicPayload>(got);
          ASSERT_NE(b, nullptr);
          EXPECT_TRUE(a->rumors == b->rumors);
          ASSERT_EQ(a->informed.size(), b->informed.size());
          for (std::size_t j = 0; j < a->informed.size(); ++j)
            EXPECT_TRUE(a->informed[j] == b->informed[j]) << j;
          break;
        }
        case 3: {
          const auto* a = payload_cast<TearsPayload>(sent);
          const auto* b = payload_cast<TearsPayload>(got);
          ASSERT_NE(b, nullptr);
          EXPECT_TRUE(a->rumors == b->rumors);
          EXPECT_EQ(a->flag_up, b->flag_up);
          break;
        }
        case 4: {
          const auto* a = payload_cast<SyncGossipPayload>(sent);
          const auto* b = payload_cast<SyncGossipPayload>(got);
          ASSERT_NE(b, nullptr);
          EXPECT_TRUE(a->rumors == b->rumors);
          break;
        }
        case 5: {
          const auto* a = payload_cast<LazyPayload>(sent);
          const auto* b = payload_cast<LazyPayload>(got);
          ASSERT_NE(b, nullptr);
          EXPECT_TRUE(a->rumors == b->rumors);
          break;
        }
      }
    }
  }
}

TEST(Wire, ControlFramesRoundTrip) {
  Bytes out;
  wire::HelloFrame hello;
  hello.pid = 11;
  wire::encode_hello_frame(&out, hello);
  wire::HelloFrame hello_back;
  ASSERT_EQ(wire::decode_hello_frame(out.data(), out.size(), &hello_back),
            wire::DecodeError::kOk);
  EXPECT_EQ(hello_back.pid, 11u);

  out.clear();
  wire::PeerTableFrame table;
  table.ports = {0, 40000, 65535, 1024};
  wire::encode_peer_table_frame(&out, table);
  wire::PeerTableFrame table_back;
  ASSERT_EQ(
      wire::decode_peer_table_frame(out.data(), out.size(), &table_back),
      wire::DecodeError::kOk);
  EXPECT_EQ(table_back.ports, table.ports);

  out.clear();
  wire::StatusFrame status;
  status.pid = 7;
  status.quiescent = true;
  status.crashed = false;
  status.steps = 12345;
  status.sends = 678;
  status.deliveries = 654;
  status.discarded = 24;
  wire::encode_status_frame(&out, status);
  wire::StatusFrame status_back;
  ASSERT_EQ(wire::decode_status_frame(out.data(), out.size(), &status_back),
            wire::DecodeError::kOk);
  EXPECT_EQ(status_back.pid, status.pid);
  EXPECT_EQ(status_back.quiescent, status.quiescent);
  EXPECT_EQ(status_back.crashed, status.crashed);
  EXPECT_EQ(status_back.steps, status.steps);
  EXPECT_EQ(status_back.sends, status.sends);
  EXPECT_EQ(status_back.deliveries, status.deliveries);
  EXPECT_EQ(status_back.discarded, status.discarded);

  out.clear();
  wire::encode_bye_frame(&out, 9);
  ProcessId pid = 0;
  ASSERT_EQ(wire::decode_bye_frame(out.data(), out.size(), &pid),
            wire::DecodeError::kOk);
  EXPECT_EQ(pid, 9u);

  out.clear();
  wire::AckFrame ack;
  ack.receiver = 4;
  ack.sender = 2;
  ack.cum_seq = 77;
  ack.closed = true;
  wire::encode_ack_frame(&out, ack);
  wire::AckFrame ack_back;
  ASSERT_EQ(wire::decode_ack_frame(out.data(), out.size(), &ack_back),
            wire::DecodeError::kOk);
  EXPECT_EQ(ack_back.receiver, 4u);
  EXPECT_EQ(ack_back.sender, 2u);
  EXPECT_EQ(ack_back.cum_seq, 77u);
  EXPECT_TRUE(ack_back.closed);
}

// --- malformed-frame corpus -----------------------------------------------

/// A structurally rich valid frame (epidemic payload: nested bitsets).
Bytes rich_data_frame() {
  auto payload = std::make_shared<EpidemicPayload>();
  payload->rumors = bits_of(12, {0, 3, 11});
  payload->informed.resize(12);
  payload->informed[3] = bits_of(12, {1, 2});
  wire::DataFrame frame;
  frame.from = 1;
  frame.to = 0;
  frame.seq = 9;
  frame.envelopes.push_back(make_env(1000, 1, 0, 4, 7, payload));
  Bytes out;
  wire::encode_data_frame(&out, frame);
  return out;
}

TEST(Wire, EveryTruncationPrefixIsRejectedCleanly) {
  const Bytes full = rich_data_frame();
  wire::DataFrame sink;
  ASSERT_EQ(wire::decode_data_frame(full.data(), full.size(), &sink),
            wire::DecodeError::kOk);
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_NE(wire::decode_data_frame(full.data(), len, &sink),
              wire::DecodeError::kOk)
        << "prefix " << len;
  }
}

TEST(Wire, HeaderErrorsAreDistinguished) {
  const Bytes full = rich_data_frame();
  wire::DataFrame sink;

  Bytes bad = full;
  bad[0] = 'X';
  EXPECT_EQ(wire::decode_data_frame(bad.data(), bad.size(), &sink),
            wire::DecodeError::kBadMagic);

  bad = full;
  bad[2] = 2;  // future version
  EXPECT_EQ(wire::decode_data_frame(bad.data(), bad.size(), &sink),
            wire::DecodeError::kBadVersion);

  bad = full;
  bad[3] = 0;  // below kData
  EXPECT_EQ(wire::decode_data_frame(bad.data(), bad.size(), &sink),
            wire::DecodeError::kBadType);
  bad[3] = 9;  // past kBye
  EXPECT_EQ(wire::decode_data_frame(bad.data(), bad.size(), &sink),
            wire::DecodeError::kBadType);

  // A well-formed frame of the wrong type is kBadType, not a misparse.
  Bytes ack;
  wire::encode_ack_frame(&ack, wire::AckFrame{});
  EXPECT_EQ(wire::decode_data_frame(ack.data(), ack.size(), &sink),
            wire::DecodeError::kBadType);
}

TEST(Wire, OverlongVarintsAreRejected) {
  wire::DataFrame sink;
  // Zero continuation tail: 0x80 0x00 encodes 0 non-canonically.
  Bytes frame;
  wire::put_header(&frame, wire::FrameType::kData);
  frame.push_back(0x80);
  frame.push_back(0x00);
  EXPECT_EQ(wire::decode_data_frame(frame.data(), frame.size(), &sink),
            wire::DecodeError::kOverlongVarint);

  // Tenth byte carrying more than the 64th bit.
  frame.resize(wire::kHeaderBytes);
  for (int i = 0; i < 9; ++i) frame.push_back(0xff);
  frame.push_back(0x02);
  EXPECT_EQ(wire::decode_data_frame(frame.data(), frame.size(), &sink),
            wire::DecodeError::kOverlongVarint);

  // No terminator within ten bytes.
  frame.resize(wire::kHeaderBytes);
  for (int i = 0; i < 10; ++i) frame.push_back(0xff);
  EXPECT_EQ(wire::decode_data_frame(frame.data(), frame.size(), &sink),
            wire::DecodeError::kOverlongVarint);
}

TEST(Wire, OutOfRangeValuesAreRejected) {
  wire::DataFrame sink;
  const auto expect_bad = [&](const Bytes& frame, const char* what) {
    EXPECT_EQ(wire::decode_data_frame(frame.data(), frame.size(), &sink),
              wire::DecodeError::kBadValue)
        << what;
  };

  Bytes frame;
  const auto data_prefix = [&](std::uint64_t seq, std::uint64_t count) {
    frame.clear();
    wire::put_header(&frame, wire::FrameType::kData);
    wire::put_varint(&frame, 1);  // from
    wire::put_varint(&frame, 0);  // to
    wire::put_varint(&frame, seq);
    wire::put_varint(&frame, count);
  };

  data_prefix(/*seq=*/0, /*count=*/0);
  expect_bad(frame, "seq zero");

  data_prefix(/*seq=*/1, /*count=*/wire::kMaxCount + 1);
  expect_bad(frame, "count over cap");

  data_prefix(/*seq=*/1, /*count=*/1);
  wire::put_varint(&frame, 8);  // id
  wire::put_varint(&frame, 4);  // send_time
  wire::put_varint(&frame, 0);  // delay zero: deliver_after <= send_time
  expect_bad(frame, "zero delay");

  const auto env_prefix = [&] {
    data_prefix(/*seq=*/1, /*count=*/1);
    wire::put_varint(&frame, 8);  // id
    wire::put_varint(&frame, 4);  // send_time
    wire::put_varint(&frame, 2);  // delay
    wire::put_varint(&frame, 1);  // payload tag: trivial (bitset follows)
  };

  env_prefix();
  wire::put_varint(&frame, wire::kMaxBits + 1);  // bit count over cap
  wire::put_varint(&frame, 0);
  expect_bad(frame, "bits over cap");

  env_prefix();
  wire::put_varint(&frame, 8);  // 8 bits
  wire::put_varint(&frame, 2);  // but 2 bytes claimed (> ceil(8/8))
  frame.push_back(0x01);
  frame.push_back(0x01);
  expect_bad(frame, "byte count over bit count");

  env_prefix();
  wire::put_varint(&frame, 8);
  wire::put_varint(&frame, 1);
  frame.push_back(0x00);  // trailing zero byte: non-canonical
  expect_bad(frame, "trailing zero bitset byte");

  env_prefix();
  wire::put_varint(&frame, 1);  // 1 bit
  wire::put_varint(&frame, 1);
  frame.push_back(0x02);  // bit 1 set, beyond the declared size
  expect_bad(frame, "set bit beyond size");

  // Unknown payload shape tag.
  data_prefix(/*seq=*/1, /*count=*/1);
  wire::put_varint(&frame, 8);
  wire::put_varint(&frame, 4);
  wire::put_varint(&frame, 2);
  wire::put_varint(&frame, 6);  // no such tag
  EXPECT_EQ(wire::decode_data_frame(frame.data(), frame.size(), &sink),
            wire::DecodeError::kBadPayloadTag);

  // Flag bytes must be canonical booleans / flag sets.
  Bytes ack;
  wire::encode_ack_frame(&ack, wire::AckFrame{});
  ack.back() = 2;
  wire::AckFrame ack_sink;
  EXPECT_EQ(wire::decode_ack_frame(ack.data(), ack.size(), &ack_sink),
            wire::DecodeError::kBadValue);

  Bytes status;
  wire::encode_status_frame(&status, wire::StatusFrame{});
  status[wire::kHeaderBytes + 1] = 4;  // flags past quiescent|crashed
  wire::StatusFrame status_sink;
  EXPECT_EQ(wire::decode_status_frame(status.data(), status.size(),
                                      &status_sink),
            wire::DecodeError::kBadValue);

  // Peer table port out of uint16 range.
  Bytes table;
  wire::put_header(&table, wire::FrameType::kPeerTable);
  wire::put_varint(&table, 1);
  wire::put_varint(&table, 0x10000);
  wire::PeerTableFrame table_sink;
  EXPECT_EQ(
      wire::decode_peer_table_frame(table.data(), table.size(), &table_sink),
      wire::DecodeError::kBadValue);
}

TEST(Wire, TrailingBytesAreRejected) {
  Bytes frame = rich_data_frame();
  frame.push_back(0x00);
  wire::DataFrame sink;
  EXPECT_EQ(wire::decode_data_frame(frame.data(), frame.size(), &sink),
            wire::DecodeError::kTrailingBytes);
}

// --- raw datagrams against a live socket ----------------------------------

TEST(Wire, DuplicateSeqAndGarbageAreAbsorbedByTheTransport) {
  UdpTransportConfig tc;
  tc.n = 2;
  UdpTransport transport(std::move(tc));

  // One valid data frame 0 -> 1, injected twice (a retransmit duplicate),
  // plus a garbage datagram. send_control writes the raw bytes verbatim
  // from endpoint 0's socket, so the receiver sees exactly these datagrams.
  wire::DataFrame frame;
  frame.from = 0;
  frame.to = 1;
  frame.seq = 1;
  frame.envelopes.push_back(make_env(5, 0, 1, 0, 2));
  Bytes bytes;
  wire::encode_data_frame(&bytes, frame);
  const std::uint16_t port = transport.local_port(1);
  transport.send_control(0, port, bytes);
  transport.send_control(0, port, bytes);
  transport.send_control(0, port, {0xde, 0xad, 0xbe, 0xef});

  std::vector<Envelope> out;
  transport.drain(1, 5, &out);
  ASSERT_EQ(out.size(), 1u);  // delivered exactly once
  EXPECT_EQ(out[0].id, 5u);
  const UdpTransport::Stats stats = transport.stats();
  EXPECT_EQ(stats.duplicates_dropped, 1u);
  EXPECT_EQ(stats.decode_errors, 1u);
}

TEST(Wire, OutOfOrderFramesAreHeldForSeqOrder) {
  UdpTransportConfig tc;
  tc.n = 2;
  UdpTransport transport(std::move(tc));

  const auto frame_bytes = [](std::uint64_t seq, MessageId id) {
    wire::DataFrame frame;
    frame.from = 0;
    frame.to = 1;
    frame.seq = seq;
    frame.envelopes.push_back(make_env(id, 0, 1, 0, 1));
    Bytes bytes;
    wire::encode_data_frame(&bytes, frame);
    return bytes;
  };
  const std::uint16_t port = transport.local_port(1);
  // seq 2 arrives first: held back, not released out of order.
  transport.send_control(0, port, frame_bytes(2, 21));
  std::vector<Envelope> out;
  transport.drain(1, 5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(transport.stats().held_out_of_order, 1u);
  // seq 1 fills the gap: both release, in id (= seq) order.
  transport.send_control(0, port, frame_bytes(1, 20));
  transport.drain(1, 6, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 20u);
  EXPECT_EQ(out[1].id, 21u);
}

}  // namespace
}  // namespace asyncgossip
