file(REMOVE_RECURSE
  "CMakeFiles/doall_demo.dir/doall_demo.cpp.o"
  "CMakeFiles/doall_demo.dir/doall_demo.cpp.o.d"
  "doall_demo"
  "doall_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doall_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
