// Quickstart: run EARS gossip on 64 asynchronous, crash-prone processes
// and inspect the outcome.
//
//   $ ./quickstart [n] [f] [seed]
//
// This is the minimal tour of the public API: describe the system in a
// GossipSpec, run it, read the complexity measures the paper defines.
#include <cstdio>
#include <cstdlib>

#include "gossip/harness.h"

using namespace asyncgossip;

int main(int argc, char** argv) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  spec.f = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : spec.n / 4;
  spec.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2008;

  // The partially-synchronous envelope of this execution: the algorithm
  // never learns these, but the oblivious adversary honours them.
  spec.d = 4;
  spec.delta = 3;
  spec.schedule = SchedulePattern::kStaggered;  // heterogeneous speeds
  spec.delay = DelayPattern::kBimodal;          // mostly fast, rare stalls

  std::printf("EARS gossip: n=%zu, f=%zu, d=%llu, delta=%llu, seed=%llu\n",
              spec.n, spec.f, static_cast<unsigned long long>(spec.d),
              static_cast<unsigned long long>(spec.delta),
              static_cast<unsigned long long>(spec.seed));

  const GossipOutcome out = run_gossip_spec(spec);

  if (!out.completed) {
    std::printf("did not quiesce within the step budget — raise max_steps\n");
    return 1;
  }
  std::printf("completed:            yes\n");
  std::printf("completion time:      %llu global steps (%.1f in (d+delta) units)\n",
              static_cast<unsigned long long>(out.completion_time),
              static_cast<double>(out.completion_time) /
                  static_cast<double>(spec.d + spec.delta));
  std::printf("messages sent:        %llu (trivial all-to-all would use %zu)\n",
              static_cast<unsigned long long>(out.messages),
              spec.n * spec.n);
  std::printf("crashes:              %zu (budget %zu)\n", out.crashes, spec.f);
  std::printf("survivors:            %zu\n", out.alive);
  std::printf("rumor gathering:      %s\n", out.gathering_ok ? "OK" : "FAILED");
  std::printf("realized d / delta:   %llu / %llu\n",
              static_cast<unsigned long long>(out.realized_d),
              static_cast<unsigned long long>(out.realized_delta));
  return out.gathering_ok ? 0 : 1;
}
