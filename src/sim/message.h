// Message envelope and type-erased payloads.
//
// Payloads are immutable and shared: a gossip message carrying a snapshot of
// a process's knowledge is allocated once by the sender and referenced by
// the envelope, so "sending" is O(1) regardless of payload size. This
// mirrors the paper's accounting, which counts point-to-point *messages*
// rather than bits.
#pragma once

#include <memory>

#include "sim/types.h"

namespace asyncgossip {

/// Base class for algorithm-defined message bodies.
struct Payload {
  virtual ~Payload() = default;

  /// Serialized size of this payload in bytes, for the bit-complexity
  /// accounting the paper lists as future work ("the total number of bits
  /// exchanged in a given computation", Section 7). Implementations report
  /// the size of a natural wire encoding of their fields; the engine sums
  /// it per send into Metrics::bytes_sent().
  virtual std::size_t byte_size() const { return 0; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A point-to-point message in flight or being delivered.
struct Envelope {
  MessageId id = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Time send_time = 0;
  /// Earliest step at which the receiver may see the message. The engine
  /// guarantees delivery at the receiver's first local step at or after
  /// max(deliver_after, send_time + 1), and no later than send_time + d.
  Time deliver_after = 0;
  PayloadPtr payload;
};

/// Convenience downcast for algorithm code. Returns nullptr on mismatch so
/// algorithms can ignore foreign payload types (used by layered protocols).
template <typename T>
const T* payload_cast(const Envelope& env) {
  return dynamic_cast<const T*>(env.payload.get());
}

}  // namespace asyncgossip
