# Empty dependencies file for ag_lowerbound.
# This may be replaced when dependencies are built.
