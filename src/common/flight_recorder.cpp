#include "common/flight_recorder.h"

#include <algorithm>
#include <cstring>

namespace asyncgossip {

namespace {

constexpr const char* kZoneNames[kFlightZoneCount] = {
    "wheel-drain",   "k-way-merge", "step-dispatch",
    "inbox-poll",    "algo-step",   "pacing-sleep",
};

}  // namespace

const char* flight_zone_name(FlightZoneId id) {
  const auto i = static_cast<std::size_t>(id);
  return i < kFlightZoneCount ? kZoneNames[i] : "unknown-zone";
}

bool flight_zone_from_name(const char* name, FlightZoneId* out) {
  for (std::size_t i = 0; i < kFlightZoneCount; ++i) {
    if (std::strcmp(name, kZoneNames[i]) == 0) {
      *out = static_cast<FlightZoneId>(i);
      return true;
    }
  }
  return false;
}

FlightRecorder::FlightRecorder(std::size_t rings,
                               std::size_t capacity_per_ring) {
  rings_.reserve(rings);
  for (std::size_t i = 0; i < rings; ++i)
    rings_.push_back(std::make_unique<FlightRing>(capacity_per_ring));
}

void FlightRecorder::drain(std::vector<FlightRecord>* out) {
  const std::size_t start = out->size();
  FlightRecord r;
  std::uint64_t dropped = 0;
  for (auto& ring : rings_) {
    while (ring->pop(&r)) out->push_back(r);
    ring->publish_consumed();
    dropped += ring->dropped();  // cumulative per ring; assign, don't add
  }
  drained_dropped_ = dropped;
  drained_ = true;
  // Each ring is wall-clock-ordered on its own (one producer, monotone
  // clock); a stable sort therefore only interleaves across rings.
  std::stable_sort(out->begin() + static_cast<std::ptrdiff_t>(start),
                   out->end(), [](const FlightRecord& a,
                                  const FlightRecord& b) {
                     return a.wall_ns < b.wall_ns;
                   });
}

std::uint64_t FlightRecorder::pushed_total() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->pushed();
  return total;
}

std::uint64_t FlightRecorder::dropped_total() const {
  if (drained_) return drained_dropped_;
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->lag_dropped_estimate();
  return total;
}

void flight_record_send(FlightRing* ring, std::uint64_t message_id,
                        std::uint32_t from, std::uint32_t to,
                        std::uint64_t tick, std::uint64_t deliver_after) {
  if (ring == nullptr) return;
  FlightRecord r;
  r.kind = static_cast<std::uint64_t>(FlightKind::kSend);
  r.a = message_id;
  r.b = FlightRecord::pack_link(from, to);
  r.tick = tick;
  r.wall_ns = flight_now_ns();
  r.extra = deliver_after;
  ring->push(r);
}

void flight_record_deliver(FlightRing* ring, std::uint64_t message_id,
                           std::uint32_t from, std::uint32_t to,
                           std::uint64_t tick, std::uint64_t send_tick) {
  if (ring == nullptr) return;
  FlightRecord r;
  r.kind = static_cast<std::uint64_t>(FlightKind::kDeliver);
  r.a = message_id;
  r.b = FlightRecord::pack_link(from, to);
  r.tick = tick;
  r.wall_ns = flight_now_ns();
  r.extra = send_tick;
  ring->push(r);
}

}  // namespace asyncgossip
