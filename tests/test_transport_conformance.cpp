// Cross-backend Transport conformance suite.
//
// One parameterized fixture asserts the Transport contract (rt/transport.h)
// against both implementations: the mutex-guarded InProcessTransport and
// the loopback-socket UdpTransport. The contract under test:
//
//   * per-link FIFO — deliver_after stamps on one (sender, receiver) link
//     never decrease, and drained batches come out id-sorted;
//   * no late stamp — nothing becomes deliverable at or before a tick the
//     receiver has already drained;
//   * close/shutdown — a closed inbox discards its pending messages and
//     every later arrival, with each envelope accounted exactly once;
//   * conservation — every submitted envelope is eventually released into
//     pending or discarded at a closed inbox, never lost.
//
// The backends differ in *where* a guarantee is enforced, not whether: the
// in-process inbox applies every floor synchronously inside submit(), while
// UDP floors per link at the sender and re-floors at the receiver on frame
// release. Capability flags on the param encode that observability split;
// the delivered envelopes must agree exactly.
//
// UDP settling needs no sleeps: loopback sendto() lands in the destination
// socket buffer synchronously, so flush + a bounded service() loop drives
// unsettled() to zero deterministically. These tests run under the default,
// asan-ubsan, and tsan presets (the ctest regex matches "Transport").
#include "rt/transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gossip/trivial.h"
#include "rt/udp_transport.h"

namespace asyncgossip {
namespace {

struct BackendParam {
  const char* name;
  /// submit() returns the *final* deliver_after stamp, receiver-side
  /// floors included. UDP cannot: the receiver re-floors on release, after
  /// the datagram crossed the wire.
  bool synchronous_stamp;
  /// submit() observes a closed inbox and returns kTimeMax. UDP discards
  /// at the receiver and surfaces the count through reap_discarded().
  bool synchronous_closed;
};

void PrintTo(const BackendParam& param, std::ostream* os) { *os << param.name; }

Envelope make_env(MessageId id, ProcessId from, ProcessId to, Time send_time,
                  Time deliver_after) {
  Envelope env;
  env.id = id;
  env.from = from;
  env.to = to;
  env.send_time = send_time;
  env.deliver_after = deliver_after;
  return env;
}

class TransportConformance : public ::testing::TestWithParam<BackendParam> {
 protected:
  static constexpr std::size_t kN = 4;

  void SetUp() override {
    if (std::string(GetParam().name) == "udp") {
      UdpTransportConfig tc;
      tc.n = kN;
      udp_ = std::make_unique<UdpTransport>(std::move(tc));
      transport_ = udp_.get();
    } else {
      inproc_ = std::make_unique<InProcessTransport>(kN);
      transport_ = inproc_.get();
    }
  }

  /// Pushes submitted envelopes all the way to their destination inboxes
  /// (released into pending, or discarded at a closed one).
  void settle(Time now) {
    if (udp_ == nullptr) return;
    for (int i = 0; i < 1000 && udp_->unsettled() != 0; ++i)
      udp_->service(now);
    ASSERT_EQ(udp_->unsettled(), 0u) << "UDP traffic failed to settle";
  }

  /// submit + end-of-step flush + settle, returning submit()'s stamp.
  Time submit_through(Envelope env, Time now) {
    const ProcessId from = env.from;
    const Time stamped = transport_->submit(std::move(env));
    transport_->flush(from, now);
    settle(now);
    return stamped;
  }

  std::vector<Envelope> drain(ProcessId p, Time now) {
    std::vector<Envelope> out;
    transport_->drain(p, now, &out);
    return out;
  }

  Transport* transport_ = nullptr;
  std::unique_ptr<InProcessTransport> inproc_;
  std::unique_ptr<UdpTransport> udp_;
};

TEST_P(TransportConformance, DeliversAtOrAfterStamp) {
  EXPECT_EQ(submit_through(make_env(0, 1, 2, 0, 3), 0), 3u);
  EXPECT_TRUE(drain(2, 2).empty());
  const std::vector<Envelope> out = drain(2, 3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 0u);
  EXPECT_EQ(out[0].deliver_after, 3u);
  EXPECT_EQ(out[0].send_time, 0u);
}

TEST_P(TransportConformance, NeverStampsAtOrBeforeADrainedTick) {
  EXPECT_TRUE(drain(2, 5).empty());  // receiver already consumed tick 5
  // A stamp at tick 3 would be retroactively deliverable: pushed to 6. The
  // in-process inbox reports the bump from submit(); UDP applies it at the
  // receiver, so only the delivered envelope shows it.
  const Time stamped = submit_through(make_env(0, 1, 2, 2, 3), 2);
  if (GetParam().synchronous_stamp) {
    EXPECT_EQ(stamped, 6u);
  } else {
    EXPECT_EQ(stamped, 3u);  // sender-side floor alone does not bump
  }
  EXPECT_TRUE(drain(2, 5).empty());  // still not deliverable at 5
  const std::vector<Envelope> out = drain(2, 6);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].deliver_after, 6u);
}

TEST_P(TransportConformance, PerLinkStampsAreFifo) {
  // The sender-side link floor is synchronous on both backends: a later
  // send on the same link that drew a shorter delay is floored at submit.
  EXPECT_EQ(transport_->submit(make_env(0, 1, 2, 0, 10)), 10u);
  EXPECT_EQ(transport_->submit(make_env(1, 1, 2, 1, 7)), 10u);
  // An independent link is not affected.
  EXPECT_EQ(transport_->submit(make_env(2, 3, 2, 1, 7)), 7u);
  transport_->flush(1, 1);
  transport_->flush(3, 1);
  settle(1);
  const std::vector<Envelope> out = drain(2, 10);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 0u);  // drained batch is id-sorted
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_EQ(out[2].id, 2u);
  EXPECT_EQ(out[0].deliver_after, 10u);
  EXPECT_EQ(out[1].deliver_after, 10u);  // floored to its predecessor
  EXPECT_EQ(out[2].deliver_after, 7u);
}

TEST_P(TransportConformance, ClosedInboxDiscardsAndDrops) {
  // Two envelopes settle into the inbox, then the receiver crashes.
  submit_through(make_env(0, 1, 2, 0, 3), 0);
  submit_through(make_env(1, 1, 2, 0, 4), 0);
  EXPECT_EQ(transport_->close_inbox(2), 2u);
  // A message already in flight toward the closed inbox is discarded and
  // accounted exactly once: synchronously as kTimeMax, or at the receiver
  // through reap_discarded().
  const Time stamped = submit_through(make_env(2, 1, 2, 1, 5), 1);
  if (GetParam().synchronous_closed) {
    EXPECT_EQ(stamped, kTimeMax);
    EXPECT_EQ(transport_->reap_discarded(), 0u);
  } else {
    EXPECT_NE(stamped, kTimeMax);
    EXPECT_EQ(transport_->reap_discarded(), 1u);
    EXPECT_EQ(transport_->reap_discarded(), 0u);  // reaping is consuming
  }
  EXPECT_TRUE(drain(2, 100).empty());
}

TEST_P(TransportConformance, FifoHoldsAcrossManyBatchesWithPayloads) {
  // Enough traffic on one link to span many ticks — and, over UDP, many
  // sequenced frames (forced batch flushes at every tick change) — with a
  // real payload through the codec path.
  constexpr int kCount = 200;
  Time prev_tick = 0;
  for (int i = 0; i < kCount; ++i) {
    const Time tick = static_cast<Time>(i / 8);
    if (tick != prev_tick) {
      transport_->flush(1, prev_tick);
      prev_tick = tick;
    }
    Envelope env = make_env(static_cast<MessageId>(i), 1, 2, tick,
                            tick + 1 + static_cast<Time>(i % 5));
    auto payload = std::make_shared<TrivialPayload>();
    payload->rumors = DynamicBitset(kN);
    payload->rumors.set(static_cast<std::size_t>(i) % kN);
    env.payload = payload;
    transport_->submit(std::move(env));
  }
  transport_->flush(1, prev_tick);
  settle(prev_tick);
  const std::vector<Envelope> out = drain(2, 1000);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kCount));
  Time floor = 0;
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].id,
              static_cast<MessageId>(i));
    // FIFO: stamps never decrease in id order on one link.
    EXPECT_GE(out[static_cast<std::size_t>(i)].deliver_after, floor);
    floor = out[static_cast<std::size_t>(i)].deliver_after;
    const auto* payload =
        payload_cast<TrivialPayload>(out[static_cast<std::size_t>(i)]);
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(payload->rumors.size(), kN);
    EXPECT_TRUE(payload->rumors.test(static_cast<std::size_t>(i) % kN));
    EXPECT_EQ(payload->rumors.count(), 1u);
  }
}

TEST_P(TransportConformance, ConcurrentSendersConserveEveryEnvelope) {
  // Three sender threads race one receiver; the contract demands exact
  // conservation (nothing lost, nothing duplicated) and per-link id order.
  // This is the test the tsan preset exists for.
  constexpr int kPerSender = 50;
  std::vector<std::thread> senders;
  for (ProcessId from = 1; from < kN; ++from) {
    senders.emplace_back([this, from] {
      for (int k = 0; k < kPerSender; ++k) {
        const auto id =
            static_cast<MessageId>(from) * 1000 + static_cast<MessageId>(k);
        const Time tick = static_cast<Time>(k);
        transport_->submit(
            make_env(id, from, 0, tick, tick + 1 + (id % 3)));
        transport_->flush(from, tick);
      }
    });
  }
  std::vector<Envelope> got;
  constexpr std::size_t kWant = (kN - 1) * kPerSender;
  for (Time now = 1; got.size() < kWant && now < 100000; ++now) {
    transport_->service(now);
    transport_->drain(0, now, &got);
  }
  for (std::thread& t : senders) t.join();
  // Late stragglers: everything submitted is flushed now, one more sweep.
  settle(100000);
  transport_->drain(0, 100001, &got);
  ASSERT_EQ(got.size(), kWant);
  std::vector<MessageId> last_id(kN, 0);
  std::vector<int> per_sender(kN, 0);
  for (const Envelope& env : got) {
    ASSERT_LT(env.from, kN);
    // Per-link FIFO: on each link, arrival order is id order (stamps are
    // monotone per link and drains take deliverable messages id-sorted).
    if (per_sender[env.from] > 0) {
      EXPECT_GT(env.id, last_id[env.from]);
    }
    last_id[env.from] = env.id;
    ++per_sender[env.from];
  }
  for (ProcessId from = 1; from < kN; ++from)
    EXPECT_EQ(per_sender[from], kPerSender) << "sender " << from;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportConformance,
    ::testing::Values(BackendParam{"inproc", true, true},
                      BackendParam{"udp", false, false}),
    [](const ::testing::TestParamInfo<BackendParam>& backend) {
      return std::string(backend.param.name);
    });

}  // namespace
}  // namespace asyncgossip
