file(REMOVE_RECURSE
  "CMakeFiles/bench_tears_internals.dir/bench_tears_internals.cpp.o"
  "CMakeFiles/bench_tears_internals.dir/bench_tears_internals.cpp.o.d"
  "bench_tears_internals"
  "bench_tears_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tears_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
