// asyncgossip-wire-v1 codec benchmarks (rt/wire.h).
//
// Unlike the simulation benches, this one measures real CPU: the codec is
// on the UdpTransport hot path — every submitted envelope is encoded once
// per transmission (plus once per retransmit) and decoded once per arrival,
// inside the endpoint lock. The interesting quantities:
//
//   envelopes_per_sec : codec throughput in envelopes (not frames; batch
//                       size is the driver's per-tick fan-out, so per-
//                       envelope cost is what scales)
//   bytes_per_frame   : encoded size of the batch — the wire-compactness
//                       claim (varint-packed bitsets) made checkable
//
// Shapes mirror the algorithms: trivial (one n-bitset), tears (bitset +
// flag), epidemic (nested informed lists, the Theta(n^2)-bit worst case).
// Decode benches include the strict validation pass; a "golden" round-trip
// bench pins encode+decode agreement while measuring.
//
// Run `AG_BENCH_JSON=BENCH_wire.json ./bench_wire` for the JSON report.
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gossip/epidemic.h"
#include "gossip/tears.h"
#include "gossip/trivial.h"
#include "rt/wire.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("wire");

namespace {

constexpr std::size_t kBatch = 16;  // envelopes per frame, a realistic tick

enum class Shape { kTrivial, kTears, kEpidemic };

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kTrivial:
      return "trivial";
    case Shape::kTears:
      return "tears";
    case Shape::kEpidemic:
      return "epidemic";
  }
  return "?";
}

PayloadPtr make_payload(Shape shape, std::size_t n, Xoshiro256SS* rng) {
  DynamicBitset rumors(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng->uniform(2) == 0) rumors.set(i);
  switch (shape) {
    case Shape::kTrivial: {
      auto p = std::make_shared<TrivialPayload>();
      p->rumors = std::move(rumors);
      return p;
    }
    case Shape::kTears: {
      auto p = std::make_shared<TearsPayload>();
      p->rumors = std::move(rumors);
      p->flag_up = rng->uniform(2) == 1;
      return p;
    }
    case Shape::kEpidemic: {
      auto p = std::make_shared<EpidemicPayload>();
      p->rumors = std::move(rumors);
      p->informed.resize(n);
      for (DynamicBitset& inf : p->informed) {
        if (rng->uniform(4) != 0) continue;  // sparse informed lists
        inf = DynamicBitset(n);
        for (std::size_t i = 0; i < n; ++i)
          if (rng->uniform(2) == 0) inf.set(i);
      }
      return p;
    }
  }
  return nullptr;
}

wire::DataFrame make_frame(Shape shape, std::size_t n) {
  Xoshiro256SS rng(7);
  wire::DataFrame frame;
  frame.from = 1;
  frame.to = 2;
  frame.seq = 1;
  for (std::size_t i = 0; i < kBatch; ++i) {
    Envelope env;
    env.id = i;
    env.from = 1;
    env.to = 2;
    env.send_time = 100;
    env.deliver_after = 100 + 1 + rng.uniform(8);
    env.payload = make_payload(shape, n, &rng);
    frame.envelopes.push_back(std::move(env));
  }
  return frame;
}

void run_encode_case(benchmark::State& state, Shape shape) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const wire::DataFrame frame = make_frame(shape, n);
  std::vector<std::uint8_t> out;
  std::size_t bytes = 0;
  for (auto _ : state) {
    out.clear();
    wire::encode_data_frame(&out, frame);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  state.counters["bytes_per_frame"] = static_cast<double>(bytes);
  record_case(state, std::string("wire/encode/") + shape_name(shape) + "/n" +
                         std::to_string(n));
}

void run_decode_case(benchmark::State& state, Shape shape) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> bytes;
  wire::encode_data_frame(&bytes, make_frame(shape, n));
  wire::DataFrame back;
  for (auto _ : state) {
    const wire::DecodeError err =
        wire::decode_data_frame(bytes.data(), bytes.size(), &back);
    if (err != wire::DecodeError::kOk) {
      state.SkipWithError(wire::to_string(err));
      return;
    }
    benchmark::DoNotOptimize(back.envelopes.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
  state.counters["bytes_per_frame"] = static_cast<double>(bytes.size());
  record_case(state, std::string("wire/decode/") + shape_name(shape) + "/n" +
                         std::to_string(n));
}

void BM_WireEncodeTrivial(benchmark::State& state) {
  run_encode_case(state, Shape::kTrivial);
}
void BM_WireEncodeTears(benchmark::State& state) {
  run_encode_case(state, Shape::kTears);
}
void BM_WireEncodeEpidemic(benchmark::State& state) {
  run_encode_case(state, Shape::kEpidemic);
}
void BM_WireDecodeTrivial(benchmark::State& state) {
  run_decode_case(state, Shape::kTrivial);
}
void BM_WireDecodeTears(benchmark::State& state) {
  run_decode_case(state, Shape::kTears);
}
void BM_WireDecodeEpidemic(benchmark::State& state) {
  run_decode_case(state, Shape::kEpidemic);
}

BENCHMARK(BM_WireEncodeTrivial)->Arg(64)->Arg(1024);
BENCHMARK(BM_WireEncodeTears)->Arg(64)->Arg(1024);
BENCHMARK(BM_WireEncodeEpidemic)->Arg(64)->Arg(256);
BENCHMARK(BM_WireDecodeTrivial)->Arg(64)->Arg(1024);
BENCHMARK(BM_WireDecodeTears)->Arg(64)->Arg(1024);
BENCHMARK(BM_WireDecodeEpidemic)->Arg(64)->Arg(256);

}  // namespace
}  // namespace asyncgossip::bench
