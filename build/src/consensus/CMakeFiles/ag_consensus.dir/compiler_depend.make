# Empty compiler generated dependencies file for ag_consensus.
# This may be replaced when dependencies are built.
