#include "sim/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gossip/completion.h"
#include "gossip/harness.h"

namespace asyncgossip {
namespace {

GossipSpec small_spec() {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 24;
  spec.f = 6;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 99;
  return spec;
}

TEST(Trace, CountersMatchEngineMetrics) {
  GossipSpec spec = small_spec();
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace;
  engine.set_observer(&trace);
  engine.run_until(gossip_quiet, default_step_budget(spec));
  EXPECT_EQ(trace.sends(), engine.metrics().messages_sent());
  EXPECT_EQ(trace.deliveries(), engine.metrics().messages_delivered());
  EXPECT_EQ(trace.steps(), engine.metrics().local_steps());
  EXPECT_EQ(trace.crashes(), engine.crashes_so_far());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, ObservationDoesNotPerturbExecution) {
  GossipSpec spec = small_spec();
  Engine plain = make_gossip_engine(spec);
  Engine observed = make_gossip_engine(spec);
  TraceRecorder trace;
  observed.set_observer(&trace);
  plain.run(200);
  observed.run(200);
  EXPECT_EQ(plain.trace_hash(), observed.trace_hash());
  EXPECT_EQ(plain.metrics().messages_sent(),
            observed.metrics().messages_sent());
}

TEST(Trace, DeliveryNeverPrecedesSend) {
  GossipSpec spec = small_spec();
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace;
  engine.set_observer(&trace);
  engine.run(300);
  for (const auto& e : trace.events()) {
    if (e.kind == TraceRecorder::EventKind::kDelivery) {
      EXPECT_GT(e.time, e.send_time);  // strictly: no same-step relay
      EXPECT_LE(e.time, e.send_time + spec.d + spec.delta);
    }
  }
}

TEST(Trace, CrashedProcessesEmitNoFurtherEvents) {
  GossipSpec spec = small_spec();
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace;
  engine.set_observer(&trace);
  engine.run(400);
  std::vector<Time> crash_time(spec.n, kTimeMax);
  for (const auto& e : trace.events())
    if (e.kind == TraceRecorder::EventKind::kCrash)
      crash_time[e.process] = e.time;
  for (const auto& e : trace.events()) {
    if (e.kind == TraceRecorder::EventKind::kStep ||
        e.kind == TraceRecorder::EventKind::kSend) {
      ASSERT_LT(e.process, spec.n);
      EXPECT_LE(e.time, crash_time[e.process])
          << "event after crash of process " << e.process;
    }
  }
}

TEST(Trace, LatencyWithinModelBounds) {
  GossipSpec spec = small_spec();
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace;
  engine.set_observer(&trace);
  engine.run(300);
  const Summary lat = trace.latency_summary();
  ASSERT_GT(lat.count, 0u);
  EXPECT_GE(lat.min, 1.0);
  EXPECT_LE(lat.max, static_cast<double>(spec.d + spec.delta));
}

TEST(Trace, BoundedLogDropsButKeepsCounting) {
  GossipSpec spec = small_spec();
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace(/*max_events=*/10);
  engine.set_observer(&trace);
  engine.run(100);
  EXPECT_EQ(trace.events().size(), 10u);
  EXPECT_GT(trace.dropped(), 0u);
  EXPECT_GT(trace.sends(), 10u);
}

TEST(Trace, TimelineRendersGrid) {
  GossipSpec spec = small_spec();
  spec.n = 8;
  spec.f = 2;
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace;
  engine.set_observer(&trace);
  engine.run(40);
  const std::string grid = trace.render_timeline(8, 8, 40);
  // 8 rows, each "%4zu " + 40 cells + newline.
  EXPECT_EQ(std::count(grid.begin(), grid.end(), '\n'), 8);
  EXPECT_NE(grid.find('s'), std::string::npos);  // someone sent something
}

TEST(Trace, ClearResets) {
  TraceRecorder trace;
  trace.on_step(1, 0);
  trace.clear();
  EXPECT_EQ(trace.steps(), 0u);
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace asyncgossip
