#include "sim/audit.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gossip/harness.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace asyncgossip {
namespace {

Envelope make_env(MessageId id, ProcessId from, ProcessId to, Time send_time,
                  Time deliver_after) {
  Envelope env;
  env.id = id;
  env.from = from;
  env.to = to;
  env.send_time = send_time;
  env.deliver_after = deliver_after;
  return env;
}

AuditConfig small_config(std::size_t n, Time d, Time delta, std::size_t f) {
  AuditConfig cfg;
  cfg.n = n;
  cfg.d = d;
  cfg.delta = delta;
  cfg.max_crashes = f;
  return cfg;
}

// ---------------------------------------------------------------------------
// Clean executions: the auditor must find nothing across the whole existing
// algorithm/adversary matrix — two independent implementations of the model
// contract (engine and auditor) agreeing on every event stream.
// ---------------------------------------------------------------------------

struct CleanCase {
  GossipAlgorithm algorithm;
  SchedulePattern schedule;
  DelayPattern delay;
};

class AuditCleanSweep : public ::testing::TestWithParam<CleanCase> {};

TEST_P(AuditCleanSweep, FullRunHasNoViolations) {
  const CleanCase& c = GetParam();
  GossipSpec spec;
  spec.algorithm = c.algorithm;
  spec.n = 48;
  spec.f = 12;
  spec.d = 4;
  spec.delta = 3;
  spec.schedule = c.schedule;
  spec.delay = c.delay;
  spec.seed = 1234;
  const AuditedGossipOutcome audited = run_audited_gossip_spec(spec);
  EXPECT_TRUE(audited.audit.ok()) << audited.audit.summary();
}

std::vector<CleanCase> clean_cases() {
  std::vector<CleanCase> cases;
  const GossipAlgorithm algs[] = {
      GossipAlgorithm::kTrivial, GossipAlgorithm::kEars,
      GossipAlgorithm::kSears,   GossipAlgorithm::kTears,
      GossipAlgorithm::kSync,    GossipAlgorithm::kLazy,
      GossipAlgorithm::kRoundRobin};
  const SchedulePattern schedules[] = {
      SchedulePattern::kLockStep, SchedulePattern::kStaggered,
      SchedulePattern::kRandomSubset, SchedulePattern::kRotating,
      SchedulePattern::kStraggler};
  for (GossipAlgorithm a : algs)
    for (SchedulePattern s : schedules)
      cases.push_back(CleanCase{a, s, DelayPattern::kUniform});
  // Delay-pattern coverage on one representative algorithm.
  for (DelayPattern dp :
       {DelayPattern::kUnitDelay, DelayPattern::kMaxDelay,
        DelayPattern::kBimodal, DelayPattern::kTargetedSlow})
    cases.push_back(
        CleanCase{GossipAlgorithm::kEars, SchedulePattern::kStaggered, dp});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, AuditCleanSweep,
                         ::testing::ValuesIn(clean_cases()));

TEST(Audit, ObservationDoesNotPerturbTheOutcome) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 40;
  spec.f = 10;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 77;
  const GossipOutcome plain = run_gossip_spec(spec);
  const AuditedGossipOutcome audited = run_audited_gossip_spec(spec);
  EXPECT_TRUE(audited.audit.ok()) << audited.audit.summary();
  EXPECT_EQ(plain.completion_time, audited.outcome.completion_time);
  EXPECT_EQ(plain.messages, audited.outcome.messages);
  EXPECT_EQ(plain.bytes, audited.outcome.bytes);
  EXPECT_EQ(plain.crashes, audited.outcome.crashes);
  EXPECT_EQ(plain.gathering_ok, audited.outcome.gathering_ok);

  // The spec-level flag routes through the same audited path and, with a
  // clean execution, must not throw.
  GossipSpec flagged = spec;
  flagged.audit = true;
  const GossipOutcome via_flag = run_gossip_spec(flagged);
  EXPECT_EQ(via_flag.completion_time, plain.completion_time);
}

TEST(Audit, RecomputedTotalsMatchTraceCounters) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTears;
  spec.n = 32;
  spec.f = 8;
  spec.d = 2;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kRotating;
  spec.seed = 5;
  Engine engine = make_gossip_engine(spec);
  InvariantAuditor auditor(small_config(spec.n, spec.d, spec.delta, spec.f));
  engine.set_observer(&auditor);
  engine.run(300);
  auditor.cross_check(engine.metrics());
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().summary();
  EXPECT_EQ(auditor.observed_sends(), engine.metrics().messages_sent());
  EXPECT_EQ(auditor.observed_deliveries(),
            engine.metrics().messages_delivered());
  EXPECT_EQ(auditor.observed_steps(), engine.metrics().local_steps());
  EXPECT_EQ(auditor.observed_crashes(), engine.crashes_so_far());
}

// ---------------------------------------------------------------------------
// Seeded violations: one deliberately misbehaving event stream per
// invariant class, each flagged with exactly the right kind.
// ---------------------------------------------------------------------------

TEST(AuditSeeded, LateDeliveryPastTheDeliveryBound) {
  InvariantAuditor a(small_config(2, /*d=*/2, /*delta=*/10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 2));
  a.on_step(2, 1);  // deliverable since t=2 — this step should receive it
  a.on_step(4, 1);
  a.on_delivery(make_env(1, 0, 1, 0, 2), 4);
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kLateDelivery), 1u);
}

TEST(AuditSeeded, DeltaStarvationBetweenSteps) {
  InvariantAuditor a(small_config(1, 1, /*delta=*/2, 0));
  a.on_step(0, 0);
  a.on_step(5, 0);  // gap 5 > delta
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kDeltaViolation), 1u);
}

TEST(AuditSeeded, DeltaFirstStepTooLate) {
  InvariantAuditor a(small_config(1, 1, /*delta=*/2, 0));
  a.on_step(3, 0);  // first step must come by t = delta - 1 = 1
  EXPECT_EQ(a.report().count(ViolationKind::kDeltaViolation), 1u);
}

TEST(AuditSeeded, DeltaStarvationAtEndOfRun) {
  InvariantAuditor a(small_config(1, 1, /*delta=*/2, 0));
  a.on_step(0, 0);
  a.finalize(/*end_time=*/10);  // last step at 0, 10 > 0 + delta
  EXPECT_EQ(a.report().count(ViolationKind::kDeltaViolation), 1u);

  InvariantAuditor never(small_config(1, 1, /*delta=*/2, 0));
  never.finalize(/*end_time=*/5);  // never scheduled at all
  EXPECT_EQ(never.report().count(ViolationKind::kDeltaViolation), 1u);
}

TEST(AuditSeeded, CrashBudgetExceeded) {
  InvariantAuditor a(small_config(3, 1, 10, /*f=*/1));
  a.on_crash(0, 0);
  a.on_crash(1, 1);  // second crash with budget 1
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kCrashBudgetExceeded), 1u);
}

TEST(AuditSeeded, DuplicateCrash) {
  InvariantAuditor a(small_config(2, 1, 10, 2));
  a.on_crash(0, 0);
  a.on_crash(3, 0);
  EXPECT_EQ(a.report().count(ViolationKind::kDuplicateCrash), 1u);
}

TEST(AuditSeeded, PostCrashStep) {
  InvariantAuditor a(small_config(2, 1, 10, 1));
  a.on_crash(0, 0);
  a.on_step(1, 0);
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kPostCrashStep), 1u);
}

TEST(AuditSeeded, PostCrashSend) {
  InvariantAuditor a(small_config(2, /*d=*/2, 10, 1));
  a.on_step(0, 0);
  a.on_crash(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 1));
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kPostCrashSend), 1u);
}

TEST(AuditSeeded, PostCrashDelivery) {
  InvariantAuditor a(small_config(2, 2, 10, 1));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 1));
  a.on_crash(0, 1);
  a.on_delivery(make_env(1, 0, 1, 0, 1), 1);
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kPostCrashDelivery), 1u);
}

TEST(AuditSeeded, FifoInversionOnOneChannel) {
  InvariantAuditor a(small_config(2, /*d=*/5, 10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 1));
  a.on_send(make_env(2, 0, 1, 0, 2));
  a.on_step(3, 1);
  // Both deliverable by t=3; delivering only the newer one overtakes the
  // older on the same (sender, receiver) channel.
  a.on_delivery(make_env(2, 0, 1, 0, 2), 3);
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kFifoInversion), 1u);
}

TEST(AuditSeeded, FifoOvertakeOfUndeliverableMessageIsLegal) {
  InvariantAuditor a(small_config(2, /*d=*/5, 10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 5));  // slow message
  a.on_send(make_env(2, 0, 1, 0, 1));  // fast message
  a.on_step(2, 1);
  // The older message is not yet deliverable at t=2: overtaking it is the
  // model's asynchrony, not a FIFO violation.
  a.on_delivery(make_env(2, 0, 1, 0, 1), 2);
  EXPECT_TRUE(a.report().ok()) << a.report().summary();
}

TEST(AuditSeeded, MessageIdReuse) {
  InvariantAuditor a(small_config(2, 2, 10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(5, 0, 1, 0, 1));
  a.on_send(make_env(3, 0, 1, 0, 1));  // ids must be monotone
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kMessageIdReuse), 1u);
}

TEST(AuditSeeded, UnknownMessageDelivery) {
  InvariantAuditor a(small_config(2, 1, 10, 0));
  a.on_step(1, 1);
  a.on_delivery(make_env(9, 0, 1, 0, 1), 1);  // never sent
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kUnknownMessage), 1u);
}

TEST(AuditSeeded, SameStepRelayIsEarlyDelivery) {
  InvariantAuditor a(small_config(2, 2, 10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 1));
  a.on_step(0, 1);
  a.on_delivery(make_env(1, 0, 1, 0, 1), 0);  // delivered in its send step
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kEarlyDelivery), 1u);
}

TEST(AuditSeeded, DeliveryBeforeDeliverAfterIsEarly) {
  InvariantAuditor a(small_config(2, /*d=*/5, 10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 3));
  a.on_step(2, 1);
  a.on_delivery(make_env(1, 0, 1, 0, 3), 2);  // before deliver_after
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kEarlyDelivery), 1u);
}

TEST(AuditSeeded, DeliverAfterOutsideTheDelayWindow) {
  InvariantAuditor a(small_config(2, /*d=*/2, 10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 5));  // delay 5 > d = 2
  EXPECT_EQ(a.report().count(ViolationKind::kBadDeliverAfter), 1u);
}

TEST(AuditSeeded, DoubleStepInOneGlobalStep) {
  InvariantAuditor a(small_config(1, 1, 10, 0));
  a.on_step(0, 0);
  a.on_step(0, 0);
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kDoubleStep), 1u);
}

TEST(AuditSeeded, TimeRegression) {
  InvariantAuditor a(small_config(1, 1, 10, 0));
  a.on_step(5, 0);
  a.on_step(3, 0);  // time went backwards; event is not processed further
  EXPECT_EQ(a.report().total(), 1u);
  EXPECT_EQ(a.report().count(ViolationKind::kTimeRegression), 1u);
}

TEST(AuditSeeded, OutOfRangeProcess) {
  InvariantAuditor a(small_config(2, 1, 10, 0));
  a.on_step(0, 7);
  EXPECT_EQ(a.report().count(ViolationKind::kOutOfRangeProcess), 1u);
}

TEST(AuditSeeded, MetricsMismatchIsFlagged) {
  InvariantAuditor a(small_config(2, 2, 10, 0));
  a.on_step(0, 0);
  a.on_send(make_env(1, 0, 1, 0, 1));
  Metrics untouched(2);  // engine-side counters that recorded nothing
  a.cross_check(untouched);
  EXPECT_GE(a.report().count(ViolationKind::kMetricsMismatch), 1u);
}

TEST(AuditSeeded, ReportCapsRecordingButKeepsCounting) {
  AuditConfig cfg = small_config(1, 1, 10, 0);
  cfg.max_recorded = 2;
  InvariantAuditor a(cfg);
  a.on_step(0, 0);
  for (int i = 0; i < 5; ++i) a.on_step(0, 0);  // five double-steps
  EXPECT_EQ(a.report().violations().size(), 2u);
  EXPECT_EQ(a.report().count(ViolationKind::kDoubleStep), 5u);
  EXPECT_NE(a.report().summary().find("and 3 more"), std::string::npos);
}

TEST(AuditSeeded, SummaryTotalsFollowDeclarationOrderNotInsertionOrder) {
  // The per-kind totals segment must be a pure function of the counts:
  // neither insertion order nor the standard library's hash seed may leak
  // into the report text (docs/ANALYSIS.md, AG-DET-003). Feed the same
  // multiset of violations in two opposite orders and require identical
  // summaries, with kinds listed in ViolationKind declaration order.
  const std::vector<ViolationKind> kinds = {
      ViolationKind::kMetricsMismatch, ViolationKind::kDoubleStep,
      ViolationKind::kLateDelivery, ViolationKind::kDeltaViolation};
  ViolationReport forward(0);   // record-nothing cap: totals line only
  ViolationReport backward(0);
  const auto make_violation = [](ViolationKind k) {
    Violation v;
    v.kind = k;
    return v;
  };
  for (ViolationKind k : kinds) forward.add(make_violation(k));
  for (auto it = kinds.rbegin(); it != kinds.rend(); ++it)
    backward.add(make_violation(*it));
  EXPECT_EQ(forward.summary(), backward.summary());

  const std::string summary = forward.summary();
  const std::size_t late = summary.find("late-delivery=1");
  const std::size_t delta = summary.find("delta-violation=1");
  const std::size_t dbl = summary.find("double-step=1");
  const std::size_t metrics = summary.find("metrics-mismatch=1");
  ASSERT_NE(late, std::string::npos) << summary;
  ASSERT_NE(delta, std::string::npos) << summary;
  ASSERT_NE(dbl, std::string::npos) << summary;
  ASSERT_NE(metrics, std::string::npos) << summary;
  EXPECT_LT(late, delta) << summary;
  EXPECT_LT(delta, dbl) << summary;
  EXPECT_LT(dbl, metrics) << summary;
}

// ---------------------------------------------------------------------------
// Strict-mode cross-check: the auditor's view of an execution must agree
// with the engine's own ModelViolation policing.
// ---------------------------------------------------------------------------

/// An adversary that never schedules anyone: in strict mode the engine
/// must throw at the first delta deadline; in non-strict mode the engine
/// force-schedules, so the *corrected* execution is model-conformant and
/// the auditor must find nothing.
class NeverScheduleAdversary final : public Adversary {
 public:
  StepDecision decide(Time, const EngineView&) override { return {}; }
  Time message_delay(const Envelope&, const EngineView&) override { return 1; }
};

std::vector<std::unique_ptr<Process>> two_trivial_processes() {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTrivial;
  spec.n = 2;
  spec.f = 0;
  return make_gossip_processes(spec);
}

TEST(AuditStrict, ViolatingAdversaryThrowsStrictButAuditsCleanCorrected) {
  EngineConfig cfg;
  cfg.d = 1;
  cfg.delta = 1;
  cfg.strict = true;
  Engine strict(two_trivial_processes(),
                std::make_unique<NeverScheduleAdversary>(), cfg);
  EXPECT_THROW(strict.run(5), ModelViolation);

  cfg.strict = false;
  Engine corrected(two_trivial_processes(),
                   std::make_unique<NeverScheduleAdversary>(), cfg);
  InvariantAuditor auditor(small_config(2, cfg.d, cfg.delta, 0));
  corrected.set_observer(&auditor);
  corrected.run(20);
  auditor.finalize(corrected.now());
  auditor.cross_check(corrected.metrics());
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().summary();
}

TEST(AuditStrict, CompliantAdversaryPassesBothStrictEngineAndAudit) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 16;
  spec.f = 4;
  spec.d = 2;
  spec.delta = 1;
  spec.schedule = SchedulePattern::kLockStep;
  spec.delay = DelayPattern::kUniform;
  spec.seed = 9;

  ObliviousConfig adv;
  adv.n = spec.n;
  adv.d = spec.d;
  adv.delta = spec.delta;
  adv.schedule = spec.schedule;
  adv.delay = spec.delay;
  adv.crash_plan = random_crashes(spec.n, spec.f, 32, 0xF00D);
  adv.seed = 42;

  EngineConfig cfg;
  cfg.d = spec.d;
  cfg.delta = spec.delta;
  cfg.max_crashes = spec.f;
  cfg.strict = true;  // lock-step scheduling never needs engine correction

  Engine engine(make_gossip_processes(spec),
                std::make_unique<ObliviousAdversary>(adv), cfg);
  InvariantAuditor auditor(small_config(spec.n, spec.d, spec.delta, spec.f));
  engine.set_observer(&auditor);
  EXPECT_NO_THROW(engine.run(200));
  auditor.finalize(engine.now());
  auditor.cross_check(engine.metrics());
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().summary();
}

// ---------------------------------------------------------------------------
// Trace round-trip: the serialized text format feeds the same checks.
// ---------------------------------------------------------------------------

TEST(AuditTrace, SerializedTraceReplaysClean) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 20;
  spec.f = 5;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 31;
  Engine engine = make_gossip_engine(spec);
  TraceRecorder trace;
  engine.set_observer(&trace);
  engine.run_until(gossip_quiet, default_step_budget(spec));

  std::ostringstream os;
  trace.write_trace(os, spec.n, spec.d, spec.delta, spec.f);

  // Parse every line back and replay it through a fresh auditor.
  InvariantAuditor auditor(small_config(spec.n, spec.d, spec.delta, spec.f));
  std::istringstream in(os.str());
  std::size_t events = 0;
  for (std::string line; std::getline(in, line);) {
    TraceRecorder::Event e;
    const auto parsed = TraceRecorder::parse_line(line, &e);
    ASSERT_NE(parsed, TraceRecorder::ParseResult::kError) << line;
    if (parsed != TraceRecorder::ParseResult::kEvent) continue;
    ++events;
    switch (e.kind) {
      case TraceRecorder::EventKind::kStep:
        auditor.on_step(e.time, e.process);
        break;
      case TraceRecorder::EventKind::kSend:
        auditor.on_send(make_env(e.message, e.process, e.peer, e.send_time,
                                 e.deliver_after));
        break;
      case TraceRecorder::EventKind::kDelivery:
        auditor.on_delivery(make_env(e.message, e.peer, e.process, e.send_time,
                                     e.deliver_after),
                            e.time);
        break;
      case TraceRecorder::EventKind::kCrash:
        auditor.on_crash(e.time, e.process);
        break;
    }
  }
  EXPECT_EQ(events, trace.events().size());
  EXPECT_TRUE(auditor.report().ok()) << auditor.report().summary();
  EXPECT_EQ(auditor.observed_sends(), trace.sends());
  EXPECT_EQ(auditor.observed_deliveries(), trace.deliveries());
}

TEST(AuditTrace, FormatRoundTripsEveryEventKind) {
  using Event = TraceRecorder::Event;
  using Kind = TraceRecorder::EventKind;
  const Event events[] = {
      Event{Kind::kStep, 7, 3, kNoProcess, 0, 0, 0},
      Event{Kind::kSend, 7, 3, 9, 41, 7, 9},
      Event{Kind::kDelivery, 12, 9, 3, 41, 7, 9},
      Event{Kind::kCrash, 13, 5, kNoProcess, 0, 0, 0},
  };
  for (const Event& e : events) {
    Event back;
    ASSERT_EQ(TraceRecorder::parse_line(TraceRecorder::format_event(e), &back),
              TraceRecorder::ParseResult::kEvent)
        << TraceRecorder::format_event(e);
    EXPECT_EQ(back.kind, e.kind);
    EXPECT_EQ(back.time, e.time);
    EXPECT_EQ(back.process, e.process);
    EXPECT_EQ(back.message, e.message);
    if (e.kind == Kind::kSend || e.kind == Kind::kDelivery) {
      EXPECT_EQ(back.peer, e.peer);
      EXPECT_EQ(back.send_time, e.send_time);
      EXPECT_EQ(back.deliver_after, e.deliver_after);
    }
  }
  TraceRecorder::Event out;
  EXPECT_EQ(TraceRecorder::parse_line("# comment", &out),
            TraceRecorder::ParseResult::kSkip);
  EXPECT_EQ(TraceRecorder::parse_line("model n=4 d=1 delta=1 f=0", &out),
            TraceRecorder::ParseResult::kSkip);
  EXPECT_EQ(TraceRecorder::parse_line("", &out),
            TraceRecorder::ParseResult::kSkip);
  EXPECT_EQ(TraceRecorder::parse_line("garbage 1 2 3", &out),
            TraceRecorder::ParseResult::kError);
  EXPECT_EQ(TraceRecorder::parse_line("step 1", &out),
            TraceRecorder::ParseResult::kError);
  EXPECT_EQ(TraceRecorder::parse_line("step 1 2 3", &out),
            TraceRecorder::ParseResult::kError);
}

}  // namespace
}  // namespace asyncgossip
