// Shared types for the Canetti-Rabin consensus framework (paper Section 6,
// following the simplified crash-failure presentation of Attiya & Welch,
// "Distributed Computing", Section 14.3).
//
// Consensus is binary (inputs in {0, 1}), f < n/2. Each *phase* runs three
// get-core exchanges — estimate votes, preference votes, and a common-coin
// exchange — and each get-core consists of three sequential (majority-)
// gossip sub-instances. A process's protocol position is therefore the
// triple (phase, exchange, sub), totally ordered; messages carry the
// sender's position plus enough state for a receiver to catch up, which is
// how the paper handles asynchronous gossip initiation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "sim/message.h"
#include "sim/types.h"

namespace asyncgossip {

/// Vote values. kUnknown marks "no item from this origin yet"; kBot is the
/// framework's undecided preference.
using Val = std::int8_t;
inline constexpr Val kValUnknown = -2;
inline constexpr Val kValBot = -1;

/// Which gossip transport implements the exchanges.
enum class ExchangeKind {
  kAllToAll,  // Canetti-Rabin baseline: one broadcast per sub-instance
  kEars,      // 1 uniform target per local step
  kSears,     // Theta(n^eps log n) uniform targets per local step
  kTears,     // two-hop: Pi1 first-level + trigger-counted Pi2 second-level
};

const char* to_string(ExchangeKind kind);

/// Position in the protocol, ordered lexicographically.
struct Position {
  std::uint32_t phase = 1;    // 1-based
  std::uint8_t exchange = 0;  // 0 = estimate votes, 1 = preference, 2 = coin
  std::uint8_t sub = 0;       // get-core sub-instance, 0..2

  friend auto operator<=>(const Position&, const Position&) = default;
};

/// Accumulated state of one gossip sub-instance: which processes' rumors
/// have been incorporated, and the union of their item sets. Items map
/// origin -> vote value for the current exchange; values are consistent
/// across senders (an origin's vote in a given exchange is fixed), so
/// merging is a plain union.
struct InstanceState {
  DynamicBitset origins;
  std::vector<Val> items;

  explicit InstanceState(std::size_t n = 0)
      : origins(n), items(n, kValUnknown) {}

  /// Union-merge; returns true if anything new arrived.
  bool merge(const InstanceState& other);

  /// Registers this process's own rumor for the sub-instance.
  void add_own(ProcessId self, Val value) {
    origins.set(self);
    if (items[self] == kValUnknown) items[self] = value;
  }
};

/// The single message type of the consensus protocol.
struct ConsensusPayload final : Payload {
  ProcessId sender = kNoProcess;
  Position pos;
  InstanceState state;
  /// Sender's framework values at `pos` — what a catching-up receiver
  /// adopts ("adopting the sender's outcome for each completed gossip and
  /// get-core", paper Section 6).
  Val sender_x = kValUnknown;
  Val sender_y = kValUnknown;
  bool decided = false;
  Val decision = kValUnknown;
  /// TEARS transport: first-level marker counted toward triggers.
  bool flag_up = false;

  /// Origins bitset + one byte per item + position/ids/flags.
  std::size_t byte_size() const override {
    return state.origins.byte_size() + state.items.size() + 16;
  }
};

}  // namespace asyncgossip
