#include "lowerbound/probe.h"

#include <memory>

#include "common/assert.h"
#include "common/rng.h"

namespace asyncgossip {
namespace {

// Runs one isolated execution of `p` and tallies its sends. Self-addressed
// messages are looped back at the next local step (delay 1); everything
// else leaves the sandbox and is never answered.
IsolatedRun drive(Process& p, ProcessId self, std::size_t n,
                  const std::vector<Envelope>& initial,
                  std::uint64_t local_step_base, std::size_t local_steps) {
  IsolatedRun run;
  run.sent_to.assign(n, 0);
  std::vector<Envelope> inbox = initial;
  MessageId next_id = 1'000'000'000ULL;  // sandbox-local ids
  for (std::size_t s = 0; s < local_steps; ++s) {
    StepContext ctx(self, n, local_step_base + s, inbox);
    p.step(ctx);
    std::vector<Envelope> next_inbox;
    for (const auto& o : ctx.outbox()) {
      ++run.total_sent;
      ++run.sent_to[o.to];
      if (o.to == self) {
        Envelope env;
        env.id = next_id++;
        env.from = self;
        env.to = self;
        env.send_time = 0;
        env.deliver_after = 0;
        env.payload = o.payload;
        next_inbox.push_back(std::move(env));
      }
    }
    inbox = std::move(next_inbox);
  }
  return run;
}

}  // namespace

IsolatedRun run_isolated(const Process& proto, ProcessId self, std::size_t n,
                         const std::vector<Envelope>& initial,
                         std::uint64_t local_step_base,
                         std::size_t local_steps) {
  const std::unique_ptr<Process> p = proto.clone();
  return drive(*p, self, n, initial, local_step_base, local_steps);
}

IsolationProbeResult probe_isolated_sends(const Process& proto,
                                          ProcessId self, std::size_t n,
                                          const std::vector<Envelope>& initial,
                                          std::uint64_t local_step_base,
                                          std::size_t local_steps,
                                          std::size_t trials,
                                          std::uint64_t seed) {
  AG_ASSERT_MSG(trials >= 1, "probe needs at least one trial");
  Xoshiro256SS seeder(seed ^ 0x9120BE5EEDULL);
  IsolationProbeResult result;
  result.send_probability.assign(n, 0.0);
  for (std::size_t t = 0; t < trials; ++t) {
    const std::unique_ptr<Process> p = proto.clone();
    p->reseed(seeder.next());
    const IsolatedRun run =
        drive(*p, self, n, initial, local_step_base, local_steps);
    result.expected_messages += static_cast<double>(run.total_sent);
    for (std::size_t q = 0; q < n; ++q)
      if (run.sent_to[q] > 0) result.send_probability[q] += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(trials);
  result.expected_messages *= inv;
  for (double& pr : result.send_probability) pr *= inv;
  return result;
}

}  // namespace asyncgossip
