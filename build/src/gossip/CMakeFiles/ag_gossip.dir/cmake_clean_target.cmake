file(REMOVE_RECURSE
  "libag_gossip.a"
)
