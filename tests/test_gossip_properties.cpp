// Property sweep over every gossip algorithm: the paper's three gossip
// requirements — gathering, validity, quiescence — plus majority gossip for
// TEARS, across n, f, (d, delta), schedule/delay patterns and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "gossip/completion.h"
#include "gossip/harness.h"
#include "gossip/rumor.h"

namespace asyncgossip {
namespace {

struct SweepCase {
  GossipAlgorithm algorithm;
  std::size_t n;
  std::size_t f;
  Time d;
  Time delta;
  SchedulePattern schedule;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = to_string(c.algorithm);
  for (char& ch : name)
    if (ch == '-') ch = '_';
  name += "_n" + std::to_string(c.n) + "_f" + std::to_string(c.f) + "_d" +
          std::to_string(c.d) + "_del" + std::to_string(c.delta) + "_sch" +
          std::to_string(static_cast<int>(c.schedule)) + "_s" +
          std::to_string(c.seed);
  return name;
}

class GossipSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GossipSweep, SatisfiesItsContract) {
  const SweepCase& c = GetParam();
  GossipSpec spec;
  spec.algorithm = c.algorithm;
  spec.n = c.n;
  spec.f = c.f;
  spec.d = c.d;
  spec.delta = c.delta;
  spec.schedule = c.schedule;
  spec.delay = c.d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  spec.seed = c.seed;

  Engine engine = make_gossip_engine(spec);
  const GossipOutcome out = run_gossip(engine, default_step_budget(spec));

  // Quiescence: the run must reach a globally quiet state.
  ASSERT_TRUE(out.completed) << "did not quiesce within the step budget";
  EXPECT_TRUE(engine.network_empty());

  // Model contract: realized bounds within the configured ones.
  EXPECT_LE(out.realized_d, c.d);
  EXPECT_LE(out.realized_delta, c.delta);
  EXPECT_LE(out.crashes, c.f);

  // Gathering / majority, per algorithm contract.
  if (c.algorithm == GossipAlgorithm::kTears) {
    EXPECT_TRUE(out.majority_ok) << "TEARS must deliver a majority of rumors";
  } else {
    EXPECT_TRUE(out.gathering_ok)
        << "every correct rumor must reach every correct process";
    EXPECT_TRUE(out.majority_ok);
  }

  // Validity: a set rumor bit can only be a genuine initial rumor — check
  // rumor sets are well-formed and self-rumor is always present.
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto& gp = engine.process_as<GossipProcess>(p);
    EXPECT_EQ(gp.rumors().size(), c.n);
    EXPECT_TRUE(gp.rumors().test(p));
  }
}

std::vector<SweepCase> make_sweep() {
  std::vector<SweepCase> cases;
  const GossipAlgorithm algos[] = {
      GossipAlgorithm::kTrivial, GossipAlgorithm::kEars,
      GossipAlgorithm::kSears, GossipAlgorithm::kTears,
      GossipAlgorithm::kEarsNoInformedList};
  const std::tuple<Time, Time, SchedulePattern> timings[] = {
      {1, 1, SchedulePattern::kLockStep},
      {4, 3, SchedulePattern::kStaggered},
      {8, 1, SchedulePattern::kLockStep},
      {2, 6, SchedulePattern::kRotating},
  };
  for (GossipAlgorithm a : algos) {
    for (std::size_t n : {32ul, 64ul, 128ul}) {
      for (std::size_t f : {0ul, n / 4, n / 2 - 1}) {
        for (const auto& [d, delta, sched] : timings) {
          // Keep the suite fast: big-n cases only on the two main timings.
          if (n == 128 && d == 8) continue;
          cases.push_back(SweepCase{a, n, f, d, delta, sched,
                                    0xA5EEDull + n * 7 + f * 3});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GossipSweep, ::testing::ValuesIn(make_sweep()),
                         case_name);

// High-failure regime: EARS tolerates f up to n-1; exercise f = 3n/4.
class EarsHighFailure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EarsHighFailure, SurvivesThreeQuarterFailures) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 64;
  spec.f = 48;
  spec.d = 2;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = GetParam();
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.gathering_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarsHighFailure,
                         ::testing::Values(1, 2, 3, 4, 5));

// The realized completion time must not depend on when the detector looks:
// re-running with a larger budget must give identical measurements.
TEST(GossipDeterminism, OutcomeIndependentOfBudget) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 48;
  spec.f = 12;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 321;
  const GossipOutcome a = run_gossip_spec(spec);
  spec.max_steps = default_step_budget(spec) * 2;
  const GossipOutcome b = run_gossip_spec(spec);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(GossipDeterminism, SameSpecSameOutcome) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kSears;
  spec.n = 64;
  spec.f = 16;
  spec.d = 4;
  spec.delta = 4;
  spec.schedule = SchedulePattern::kRandomSubset;
  spec.seed = 777;
  const GossipOutcome a = run_gossip_spec(spec);
  const GossipOutcome b = run_gossip_spec(spec);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.alive, b.alive);
}

TEST(GossipDeterminism, DifferentSeedsDiffer) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 64;
  spec.f = 16;
  spec.d = 2;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 1;
  const GossipOutcome a = run_gossip_spec(spec);
  spec.seed = 2;
  const GossipOutcome b = run_gossip_spec(spec);
  EXPECT_NE(a.messages, b.messages);
}

}  // namespace
}  // namespace asyncgossip
