#include "sim/span_export.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

namespace asyncgossip {

namespace {

constexpr const char* kFlightMagic = "# asyncgossip flight v1";

/// Prints a nanosecond count as microseconds with fixed three decimals
/// ("1234.567") — digit-exact regardless of locale or double rounding.
std::string ns_as_us(std::uint64_t ns) {
  std::ostringstream os;
  os << ns / 1000 << '.';
  const std::uint64_t frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
  return os.str();
}

FlightKind record_kind(const FlightRecord& r) {
  return static_cast<FlightKind>(r.kind);
}

}  // namespace

void write_flight_log(std::ostream& os, const FlightLogHeader& header,
                      const std::vector<FlightRecord>& records) {
  os << kFlightMagic << '\n';
  os << "model n=" << header.n << " tick_us=" << header.tick_us
     << " realized_d=" << header.realized_d
     << " realized_delta=" << header.realized_delta
     << " dropped=" << header.dropped << '\n';
  for (const FlightRecord& r : records) {
    switch (record_kind(r)) {
      case FlightKind::kSend:
        os << "send " << r.a << ' ' << r.link_from() << ' ' << r.link_to()
           << ' ' << r.tick << ' ' << r.wall_ns << ' ' << r.extra << '\n';
        break;
      case FlightKind::kDeliver:
        os << "deliver " << r.a << ' ' << r.link_from() << ' '
           << r.link_to() << ' ' << r.tick << ' ' << r.wall_ns << ' '
           << r.extra << '\n';
        break;
      case FlightKind::kZone:
        os << "zone "
           << flight_zone_name(static_cast<FlightZoneId>(r.a)) << ' '
           << r.b << ' ' << r.tick << ' ' << r.wall_ns << ' ' << r.extra
           << '\n';
        break;
    }
  }
}

bool read_flight_log(std::istream& is, FlightLogHeader* header,
                     std::vector<FlightRecord>* records,
                     std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  std::string line;
  if (!std::getline(is, line) || line != kFlightMagic)
    return fail("missing flight-log magic line");
  if (!std::getline(is, line) || line.rfind("model ", 0) != 0)
    return fail("missing model header line");
  {
    std::istringstream hs(line.substr(6));
    std::string field;
    while (hs >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos)
        return fail("malformed model field: " + field);
      const std::string key = field.substr(0, eq);
      std::uint64_t value = 0;
      try {
        value = std::stoull(field.substr(eq + 1));
      } catch (const std::exception&) {
        return fail("malformed model value: " + field);
      }
      if (key == "n") header->n = value;
      else if (key == "tick_us") header->tick_us = value;
      else if (key == "realized_d") header->realized_d = value;
      else if (key == "realized_delta") header->realized_delta = value;
      else if (key == "dropped") header->dropped = value;
      else return fail("unknown model field: " + key);
    }
  }
  std::size_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    FlightRecord r;
    const auto bad = [&] {
      return fail("malformed record at line " + std::to_string(line_no));
    };
    if (kind == "send" || kind == "deliver") {
      std::uint64_t id = 0, from = 0, to = 0;
      if (!(ls >> id >> from >> to >> r.tick >> r.wall_ns >> r.extra))
        return bad();
      r.kind = static_cast<std::uint64_t>(
          kind == "send" ? FlightKind::kSend : FlightKind::kDeliver);
      r.a = id;
      r.b = FlightRecord::pack_link(static_cast<std::uint32_t>(from),
                                    static_cast<std::uint32_t>(to));
    } else if (kind == "zone") {
      std::string name;
      FlightZoneId zone;
      if (!(ls >> name >> r.b >> r.tick >> r.wall_ns >> r.extra))
        return bad();
      if (!flight_zone_from_name(name.c_str(), &zone))
        return fail("unknown zone name at line " + std::to_string(line_no) +
                    ": " + name);
      r.kind = static_cast<std::uint64_t>(FlightKind::kZone);
      r.a = static_cast<std::uint64_t>(zone);
    } else {
      return fail("unknown record kind at line " + std::to_string(line_no) +
                  ": " + kind);
    }
    records->push_back(r);
  }
  return true;
}

void write_chrome_trace(std::ostream& os, const FlightLogHeader& header,
                        const std::vector<FlightRecord>& records) {
  std::uint64_t epoch = ~0ULL;
  std::set<std::uint64_t> actors;
  for (const FlightRecord& r : records) {
    epoch = std::min(epoch, r.wall_ns);
    switch (record_kind(r)) {
      case FlightKind::kSend:
        actors.insert(r.link_from());
        break;
      case FlightKind::kDeliver:
        actors.insert(r.link_to());
        break;
      case FlightKind::kZone:
        actors.insert(r.b);
        break;
    }
  }
  if (records.empty()) epoch = 0;

  os << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  os << "\"schema\": \"asyncgossip-spans-v1\"";
  os << ", \"n\": \"" << header.n << "\"";
  os << ", \"tick_us\": \"" << header.tick_us << "\"";
  os << ", \"realized_d\": \"" << header.realized_d << "\"";
  os << ", \"realized_delta\": \"" << header.realized_delta << "\"";
  os << ", \"dropped\": \"" << header.dropped << "\"";
  os << "},\n\"traceEvents\": [";

  bool first = true;
  const auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (std::uint64_t actor : actors) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << actor << ", \"args\": {\"name\": \"proc-" << actor << "\"}}";
  }
  for (const FlightRecord& r : records) {
    const std::string ts = ns_as_us(r.wall_ns - epoch);
    switch (record_kind(r)) {
      case FlightKind::kSend:
        sep();
        os << "{\"name\": \"msg " << r.a
           << "\", \"cat\": \"msg\", \"ph\": \"b\", \"id\": " << r.a
           << ", \"pid\": 0, \"tid\": " << r.link_from() << ", \"ts\": "
           << ts << ", \"args\": {\"from\": " << r.link_from()
           << ", \"to\": " << r.link_to() << ", \"send_tick\": " << r.tick
           << ", \"deliver_after_tick\": " << r.extra << "}}";
        break;
      case FlightKind::kDeliver:
        sep();
        os << "{\"name\": \"msg " << r.a
           << "\", \"cat\": \"msg\", \"ph\": \"e\", \"id\": " << r.a
           << ", \"pid\": 0, \"tid\": " << r.link_to() << ", \"ts\": " << ts
           << ", \"args\": {\"deliver_tick\": " << r.tick
           << ", \"send_tick\": " << r.extra << "}}";
        break;
      case FlightKind::kZone:
        sep();
        os << "{\"name\": \""
           << flight_zone_name(static_cast<FlightZoneId>(r.a))
           << "\", \"cat\": \"zone\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
           << r.b << ", \"ts\": " << ts << ", \"dur\": " << ns_as_us(r.extra)
           << ", \"args\": {\"tick\": " << r.tick << "}}";
        break;
    }
  }
  os << "\n]\n}\n";
}

SpanSummary summarize_spans(const std::vector<FlightRecord>& records) {
  SpanSummary s;
  std::map<std::uint64_t, std::uint64_t> send_wall;  // message id → wall_ns
  std::uint64_t zone_count[kFlightZoneCount] = {};
  std::uint64_t zone_ns[kFlightZoneCount] = {};
  std::vector<std::uint64_t> latencies_ns;
  for (const FlightRecord& r : records) {
    switch (record_kind(r)) {
      case FlightKind::kSend:
        ++s.sends;
        send_wall[r.a] = r.wall_ns;
        break;
      case FlightKind::kDeliver: {
        ++s.delivers;
        const auto it = send_wall.find(r.a);
        if (it != send_wall.end() && r.wall_ns >= it->second) {
          ++s.paired;
          latencies_ns.push_back(r.wall_ns - it->second);
        }
        break;
      }
      case FlightKind::kZone: {
        const auto z = r.a;
        if (z < kFlightZoneCount) {
          ++zone_count[z];
          zone_ns[z] += r.extra;
        }
        break;
      }
    }
  }
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto pct = [&](double q) {
    if (latencies_ns.empty()) return 0.0;
    // Nearest-rank: the smallest value with at least q of the sample at or
    // below it.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies_ns.size())));
    if (rank == 0) rank = 1;
    if (rank > latencies_ns.size()) rank = latencies_ns.size();
    return static_cast<double>(latencies_ns[rank - 1]) / 1000.0;
  };
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  s.max_us = latencies_ns.empty()
                 ? 0.0
                 : static_cast<double>(latencies_ns.back()) / 1000.0;
  for (std::size_t z = 0; z < kFlightZoneCount; ++z) {
    if (zone_count[z] == 0) continue;
    ZoneTotal zt;
    zt.name = flight_zone_name(static_cast<FlightZoneId>(z));
    zt.count = zone_count[z];
    zt.total_ms = static_cast<double>(zone_ns[z]) / 1e6;
    s.zones.push_back(zt);
  }
  return s;
}

}  // namespace asyncgossip
