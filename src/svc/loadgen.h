// Open-loop workload generator for the KV service. Requests are issued on
// a fixed schedule derived from --rate (request k is due at k/rate seconds
// after start), *not* paced by responses — the generator measures the
// service, it does not adapt to it. Two targets: in-process (submit
// straight into a KvService; the >= 1M-request soak path) and loopback UDP
// (through UdpKvServer's datagram front-end; the serve smoke path).
//
// Accounting is exact: every request is attempted, and ends acked
// (committed response seen), unavailable (honest degraded response seen),
// or unacked (no response — possible only on UDP, where datagrams drop).
// Acked observations stream to obs_out in the checker's svc-obs-v1 format;
// the run is `complete` iff nothing was unavailable or unacked, and the
// CLI turns an incomplete run into exit 1 — the honest verdict when the
// fault plan exceeds the tolerated crash budget.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "svc/service.h"

namespace asyncgossip {
namespace svc {

struct LoadgenConfig {
  /// Requests per second; 0 = no pacing (issue as fast as possible).
  double rate = 0.0;
  /// Total requests to issue.
  std::uint64_t requests = 0;
  std::size_t keys = 1024;
  std::size_t value_bytes = 16;
  std::uint64_t seed = 1;
  /// Logical clients, round-robin over requests; client ids are
  /// 1..clients, each with its own strictly increasing client_seq.
  std::size_t clients = 4;
  double get_fraction = 0.4;
  double cas_fraction = 0.1;
  /// Acked/unavailable observations stream here (svc-obs-v1); caller-owned,
  /// null disables.
  std::ostream* obs_out = nullptr;

  /// Target: exactly one of the two.
  KvService* inproc = nullptr;
  std::uint16_t udp_port = 0;
  /// UDP: seconds to wait for trailing responses after the last send.
  double drain_timeout_s = 5.0;
};

struct LoadgenReport {
  std::uint64_t attempted = 0;
  std::uint64_t acked = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t unacked = 0;
  bool complete = false;  // acked == attempted
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
  double achieved_rate = 0.0;  // acked / wall
  double wall_ms = 0.0;
};

/// Deterministic command for request index `i` under this config — the
/// schedule is a pure function of (config, i), so tests can re-derive it.
Command loadgen_command(const LoadgenConfig& config, std::uint64_t i);

LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace svc
}  // namespace asyncgossip
