#include "gossip/tears.h"

#include <gtest/gtest.h>

#include "common/assert.h"

#include <cmath>

#include "gossip/completion.h"
#include "gossip/harness.h"

namespace asyncgossip {
namespace {

TearsConfig paper_config(std::size_t n, std::uint64_t seed = 1) {
  TearsConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.finalize();
  return cfg;
}

TEST(TearsConfig, PaperParameterFormulas) {
  TearsConfig cfg;
  cfg.n = 65536;  // large enough that a < n
  cfg.finalize();
  const double log2n = 16.0;
  EXPECT_EQ(cfg.a, static_cast<std::size_t>(std::ceil(4.0 * 256.0 * log2n)));
  EXPECT_EQ(cfg.mu, cfg.a / 2);
  EXPECT_EQ(cfg.kappa,
            static_cast<std::size_t>(std::ceil(8.0 * 16.0 * log2n)));
}

TEST(TearsConfig, ACappedBelowN) {
  const TearsConfig cfg = paper_config(64);
  EXPECT_LE(cfg.a, 63u);
  EXPECT_GE(cfg.a, 1u);
  EXPECT_GE(cfg.mu, 1u);
  EXPECT_GE(cfg.kappa, 1u);
}

TEST(TearsConfig, RejectsTinyN) {
  TearsConfig cfg;
  cfg.n = 1;
  EXPECT_THROW(cfg.finalize(), ModelViolation);
}

TEST(Tears, PiSetsExcludeSelf) {
  const TearsProcess p(5, paper_config(128));
  for (ProcessId q : p.pi1()) EXPECT_NE(q, 5u);
  for (ProcessId q : p.pi2()) EXPECT_NE(q, 5u);
}

TEST(Tears, PiSetSizesNearExpectation) {
  // E[|Pi|] = (n-1) * a/n; with a capped near n the sets are near-full.
  const std::size_t n = 4096;
  TearsConfig cfg;
  cfg.n = n;
  cfg.a_constant = 1.0;  // a = sqrt(n) log2 n = 768 < n
  cfg.seed = 3;
  cfg.finalize();
  const TearsProcess p(0, cfg);
  const double expect = static_cast<double>(n - 1) *
                        static_cast<double>(cfg.a) / static_cast<double>(n);
  EXPECT_NEAR(static_cast<double>(p.pi1().size()), expect, 0.2 * expect);
  EXPECT_NEAR(static_cast<double>(p.pi2().size()), expect, 0.2 * expect);
}

TEST(Tears, FirstStepSendsFirstLevelToPi1) {
  TearsProcess p(0, paper_config(64));
  std::vector<Envelope> empty;
  StepContext ctx(0, 64, 0, empty);
  p.step(ctx);
  EXPECT_EQ(ctx.outbox().size(), p.pi1().size());
  for (const auto& o : ctx.outbox()) {
    const auto* m = dynamic_cast<const TearsPayload*>(o.payload.get());
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->flag_up);
    EXPECT_TRUE(m->rumors.test(0));
  }
  EXPECT_TRUE(p.quiescent());  // no pending sends without new input
}

TEST(Tears, NoSpontaneousSendsAfterFirstStep) {
  TearsProcess p(0, paper_config(64));
  std::vector<Envelope> empty;
  {
    StepContext ctx(0, 64, 0, empty);
    p.step(ctx);
  }
  for (int s = 1; s < 20; ++s) {
    StepContext ctx(0, 64, static_cast<std::uint64_t>(s), empty);
    p.step(ctx);
    EXPECT_TRUE(ctx.outbox().empty());
  }
}

TEST(Tears, SecondLevelTriggeredInBand) {
  TearsConfig cfg = paper_config(64, 7);
  TearsProcess p(0, cfg);
  std::vector<Envelope> empty;
  {
    StepContext ctx(0, 64, 0, empty);
    p.step(ctx);  // consume the first-level send
  }
  // Feed first-level messages one at a time until the count enters the
  // trigger band; then a second-level batch to Pi2 must be emitted.
  auto up = std::make_shared<TearsPayload>();
  up->rumors = DynamicBitset(64);
  up->rumors.set(1);
  up->flag_up = true;
  const std::uint64_t band_lo = cfg.mu > cfg.kappa ? cfg.mu - cfg.kappa : 0;
  bool fired = false;
  for (std::uint64_t i = 1; i <= cfg.mu + 1 && !fired; ++i) {
    Envelope env;
    env.from = 1;
    env.to = 0;
    env.payload = up;
    std::vector<Envelope> inbox{env};
    StepContext ctx(0, 64, i, inbox);
    p.step(ctx);
    if (!ctx.outbox().empty()) {
      fired = true;
      EXPECT_GE(p.up_messages_received(), band_lo);
      EXPECT_EQ(ctx.outbox().size(), p.pi2().size());
      const auto* m =
          dynamic_cast<const TearsPayload*>(ctx.outbox()[0].payload.get());
      ASSERT_NE(m, nullptr);
      EXPECT_FALSE(m->flag_up);
      EXPECT_TRUE(m->rumors.test(1));  // gathered rumor forwarded
    }
  }
  EXPECT_TRUE(fired);
  EXPECT_GT(p.second_level_batches_sent(), 0u);
}

TEST(Tears, DownMessagesDoNotTrigger) {
  TearsProcess p(0, paper_config(64, 11));
  std::vector<Envelope> empty;
  {
    StepContext ctx(0, 64, 0, empty);
    p.step(ctx);
  }
  auto down = std::make_shared<TearsPayload>();
  down->rumors = DynamicBitset(64);
  down->rumors.set(2);
  down->flag_up = false;
  for (int i = 0; i < 200; ++i) {
    Envelope env;
    env.from = 2;
    env.to = 0;
    env.payload = down;
    std::vector<Envelope> inbox{env};
    StepContext ctx(0, 64, static_cast<std::uint64_t>(i + 1), inbox);
    p.step(ctx);
    EXPECT_TRUE(ctx.outbox().empty());
  }
  EXPECT_EQ(p.up_messages_received(), 0u);
  EXPECT_TRUE(p.rumors().test(2));  // content still absorbed
}

// Lemma 8: every process sends either 0 or between a - kappa and a + kappa
// point-to-point messages in each step (w.h.p.). Check over a full run.
TEST(Tears, Lemma8PerStepSendBand) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTears;
  spec.n = 256;
  spec.f = 64;
  spec.d = 2;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 13;
  spec.tears_a_constant = 1.0;  // keep a below n so the bound is informative
  spec.tears_kappa_constant = 1.0;

  TearsConfig cfg;
  cfg.n = spec.n;
  cfg.a_constant = spec.tears_a_constant;
  cfg.kappa_constant = spec.tears_kappa_constant;
  cfg.finalize();

  Engine engine = make_gossip_engine(spec);
  const Time budget = default_step_budget(spec);
  for (Time t = 0; t < budget && !gossip_quiet(engine); ++t) {
    engine.run(1);
    for (ProcessId p = 0; p < engine.n(); ++p) {
      if (engine.crashed(p)) continue;
      const auto& tp = engine.process_as<TearsProcess>(p);
      const std::uint64_t sent = tp.messages_sent_last_step();
      if (sent == 0) continue;
      // The band is a statistical statement about |Pi| ~ Binomial(n-1, a/n);
      // verify with generous slack. A step that combines the first-level
      // batch with a trigger batch may emit |Pi1| + |Pi2|, hence the factor
      // 2 on the upper edge.
      EXPECT_GE(sent, cfg.a > 2 * cfg.kappa ? cfg.a - 2 * cfg.kappa : 0u);
      EXPECT_LE(sent, 2 * (cfg.a + 2 * cfg.kappa));
    }
  }
  EXPECT_TRUE(gossip_quiet(engine));
}

// Majority gossip (Lemmas 9-11): across seeds, every correct process ends
// with a majority of rumors.
class TearsMajority : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TearsMajority, MajorityReachedAcrossSeeds) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kTears;
  spec.n = 128;
  spec.f = 63;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = GetParam();
  const GossipOutcome out = run_gossip_spec(spec);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.majority_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TearsMajority,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// The headline claim: TEARS message complexity does not depend on d, delta.
TEST(Tears, MessageCountIndependentOfDelays) {
  std::vector<std::uint64_t> counts;
  for (Time d : {1ull, 8ull, 32ull}) {
    GossipSpec spec;
    spec.algorithm = GossipAlgorithm::kTears;
    spec.n = 128;
    spec.f = 32;
    spec.d = d;
    spec.delta = 4;
    spec.schedule = SchedulePattern::kStaggered;
    spec.delay = DelayPattern::kUniform;
    spec.seed = 23;
    const GossipOutcome out = run_gossip_spec(spec);
    ASSERT_TRUE(out.completed);
    counts.push_back(out.messages);
  }
  // Larger d trickles first-level arrivals, so more band values fire their
  // own second-level batch — up to the d-independent worst case of Lemma 8,
  // never proportionally to d. Going from d=1 to d=32 must stay well below
  // a 32x blow-up, and every count must respect the asymptotic bound.
  const double lo = static_cast<double>(counts[0]);
  TearsConfig cfg;
  cfg.n = 128;
  cfg.seed = 23;
  cfg.finalize();
  // Per-process worst case: first level (a+kappa) plus
  // (2 kappa + 1 + received/kappa) trigger batches of (a+kappa) each.
  const double per_proc =
      static_cast<double>(cfg.a + cfg.kappa) *
      (2.0 * static_cast<double>(cfg.kappa) + 2.0 +
       4.0 * static_cast<double>(cfg.a + cfg.kappa) /
           static_cast<double>(cfg.kappa));
  for (std::uint64_t c : counts) {
    EXPECT_GT(static_cast<double>(c), 0.25 * lo);
    EXPECT_LT(static_cast<double>(c), 6.0 * lo);          // not ~32x
    EXPECT_LT(static_cast<double>(c), 128.0 * per_proc);  // Lemma 8 budget
  }
}

TEST(Tears, TriggerCrossedEdgeCases) {
  TearsConfig cfg;
  cfg.n = 65536;
  cfg.seed = 1;
  cfg.finalize();
  TearsProcess p(0, cfg);
  // Accessible only indirectly; exercise via counting behaviour above.
  // Here verify config invariants used by the trigger:
  EXPECT_GT(cfg.mu, cfg.kappa);  // band lower edge positive at large n
  EXPECT_EQ(cfg.mu, cfg.a / 2);
}

}  // namespace
}  // namespace asyncgossip
