#include "gossip/spec_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "sim/telemetry_export.h"  // json_escape

namespace asyncgossip {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader: flattens nested objects into "a.b.c" -> token map.
// Tokens are raw text for numbers/booleans and unescaped text for strings.
// ---------------------------------------------------------------------------

struct Reader {
  const std::string& text;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& message) {
    if (err.empty())
      err = message + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"')
      return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return fail("truncated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // The artifacts this reader consumes never need non-ASCII;
            // decode BMP escapes to '?' placeholders rather than reject.
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            pos += 4;
            c = '?';
            break;
          }
          default:
            return fail("unknown escape");
        }
      }
      out->push_back(c);
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool parse_scalar(std::string* out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '+' || text[pos] == '-' || text[pos] == '.'))
      ++pos;
    if (pos == start) return fail("expected value");
    *out = text.substr(start, pos - start);
    return true;
  }

  bool parse_object(const std::string& prefix,
                    std::map<std::string, std::string>& out) {
    if (!consume('{')) return false;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (!consume(':')) return false;
      skip_ws();
      if (pos >= text.size()) return fail("truncated document");
      const std::string path = prefix.empty() ? key : prefix + '.' + key;
      if (text[pos] == '{') {
        if (!parse_object(path, out)) return false;
      } else if (text[pos] == '"') {
        std::string value;
        if (!parse_string(&value)) return false;
        out[path] = value;
      } else if (text[pos] == '[') {
        return fail("arrays are not part of asyncgossip-repro-v1");
      } else {
        std::string value;
        if (!parse_scalar(&value)) return false;
        out[path] = value;
      }
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

bool get_u64(const std::map<std::string, std::string>& kv,
             const std::string& key, std::uint64_t* out) {
  const auto it = kv.find(key);
  if (it == kv.end()) return false;
  char* end = nullptr;
  *out = std::strtoull(it->second.c_str(), &end, 10);
  return end != it->second.c_str() && *end == '\0';
}

bool get_double(const std::map<std::string, std::string>& kv,
                const std::string& key, double* out) {
  const auto it = kv.find(key);
  if (it == kv.end()) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() && *end == '\0';
}

}  // namespace

void write_repro_json(std::ostream& os, const ReproArtifact& artifact) {
  const GossipSpec& s = artifact.spec;
  os << "{\n  \"schema\": \"asyncgossip-repro-v1\",\n";
  os << "  \"failure\": \"" << json_escape(artifact.failure) << "\",\n";
  os << "  \"trace_hash\": \"" << artifact.trace_hash << "\",\n";
  os << "  \"spec\": {\n";
  os << "    \"algorithm\": \"" << to_string(s.algorithm) << "\",\n";
  os << "    \"n\": " << s.n << ",\n";
  os << "    \"f\": " << s.f << ",\n";
  os << "    \"d\": " << s.d << ",\n";
  os << "    \"delta\": " << s.delta << ",\n";
  os << "    \"seed\": \"" << s.seed << "\",\n";
  os << "    \"schedule\": \"" << to_string(s.schedule) << "\",\n";
  os << "    \"delay\": \"" << to_string(s.delay) << "\",\n";
  os << "    \"crash_horizon\": " << s.crash_horizon << ",\n";
  os << "    \"sears_epsilon\": " << num(s.sears_epsilon) << ",\n";
  os << "    \"sears_fanout_constant\": " << num(s.sears_fanout_constant)
     << ",\n";
  os << "    \"ears_shutdown_constant\": " << num(s.ears_shutdown_constant)
     << ",\n";
  os << "    \"tears_a_constant\": " << num(s.tears_a_constant) << ",\n";
  os << "    \"tears_kappa_constant\": " << num(s.tears_kappa_constant)
     << ",\n";
  os << "    \"sync_rounds_constant\": " << num(s.sync_rounds_constant)
     << ",\n";
  os << "    \"lazy_fanout\": " << s.lazy_fanout << ",\n";
  os << "    \"fallback_step_budget\": " << s.fallback_step_budget << ",\n";
  os << "    \"max_steps\": " << s.max_steps << "\n";
  os << "  }\n}\n";
}

bool read_repro_json(std::istream& is, ReproArtifact* out, std::string* error) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  Reader reader{text, 0, {}};
  std::map<std::string, std::string> kv;
  if (!reader.parse_object("", kv)) return fail(reader.err);
  reader.skip_ws();
  if (reader.pos != text.size()) return fail("trailing garbage after document");

  const auto schema = kv.find("schema");
  if (schema == kv.end() || schema->second != "asyncgossip-repro-v1")
    return fail("missing or unknown schema (want asyncgossip-repro-v1)");

  ReproArtifact artifact;
  const auto failure = kv.find("failure");
  if (failure != kv.end()) artifact.failure = failure->second;
  get_u64(kv, "trace_hash", &artifact.trace_hash);

  GossipSpec& s = artifact.spec;
  const auto alg = kv.find("spec.algorithm");
  if (alg == kv.end()) return fail("missing spec.algorithm");
  if (!algorithm_from_string(alg->second, &s.algorithm))
    return fail("unknown algorithm: " + alg->second);

  std::uint64_t u = 0;
  if (!get_u64(kv, "spec.n", &u) || u < 2) return fail("missing or bad spec.n");
  s.n = static_cast<std::size_t>(u);
  if (get_u64(kv, "spec.f", &u)) s.f = static_cast<std::size_t>(u);
  if (get_u64(kv, "spec.d", &u)) s.d = u;
  if (get_u64(kv, "spec.delta", &u)) s.delta = u;
  if (get_u64(kv, "spec.seed", &u)) s.seed = u;
  if (get_u64(kv, "spec.crash_horizon", &u)) s.crash_horizon = u;
  if (get_u64(kv, "spec.lazy_fanout", &u))
    s.lazy_fanout = static_cast<std::size_t>(u);
  if (get_u64(kv, "spec.fallback_step_budget", &u)) s.fallback_step_budget = u;
  if (get_u64(kv, "spec.max_steps", &u)) s.max_steps = u;

  const auto sched = kv.find("spec.schedule");
  if (sched != kv.end() && !schedule_from_string(sched->second, &s.schedule))
    return fail("unknown schedule: " + sched->second);
  const auto delay = kv.find("spec.delay");
  if (delay != kv.end() && !delay_from_string(delay->second, &s.delay))
    return fail("unknown delay: " + delay->second);

  get_double(kv, "spec.sears_epsilon", &s.sears_epsilon);
  get_double(kv, "spec.sears_fanout_constant", &s.sears_fanout_constant);
  get_double(kv, "spec.ears_shutdown_constant", &s.ears_shutdown_constant);
  get_double(kv, "spec.tears_a_constant", &s.tears_a_constant);
  get_double(kv, "spec.tears_kappa_constant", &s.tears_kappa_constant);
  get_double(kv, "spec.sync_rounds_constant", &s.sync_rounds_constant);

  if (s.f >= s.n) return fail("spec needs f < n");
  if (s.d < 1 || s.delta < 1) return fail("spec needs d >= 1 and delta >= 1");

  *out = artifact;
  return true;
}

}  // namespace asyncgossip
