#include "rt/wire.h"

#include <memory>
#include <utility>

#include "common/assert.h"
#include "gossip/epidemic.h"
#include "gossip/lazy.h"
#include "gossip/sync_gossip.h"
#include "gossip/tears.h"
#include "gossip/trivial.h"

namespace asyncgossip {
namespace wire {

namespace {

// Payload shape tags. Appending is fine; renumbering is a wire version bump.
constexpr std::uint64_t kTagNone = 0;
constexpr std::uint64_t kTagTrivial = 1;
constexpr std::uint64_t kTagEpidemic = 2;
constexpr std::uint64_t kTagTears = 3;
constexpr std::uint64_t kTagSync = 4;
constexpr std::uint64_t kTagLazy = 5;

struct ExtensionCodec {
  std::uint64_t tag = 0;
  ExtensionEncodeFn encode = nullptr;
  ExtensionDecodeFn decode = nullptr;
};

/// Startup-registered, then read-only (see wire.h on the registration
/// contract); no lock needed on the hot path.
std::vector<ExtensionCodec>& extension_codecs() {
  static std::vector<ExtensionCodec> codecs;
  return codecs;
}

}  // namespace

void register_extension_payload(std::uint64_t tag, ExtensionEncodeFn encode,
                                ExtensionDecodeFn decode) {
  AG_ASSERT_MSG(tag >= kFirstExtensionTag,
                "extension payload tags start at kFirstExtensionTag");
  AG_ASSERT_MSG(encode != nullptr && decode != nullptr,
                "extension payload codec needs both directions");
  for (const ExtensionCodec& c : extension_codecs()) {
    if (c.tag != tag) continue;
    AG_ASSERT_MSG(c.encode == encode && c.decode == decode,
                  "conflicting codec registered for this extension tag");
    return;  // idempotent re-registration
  }
  extension_codecs().push_back({tag, encode, decode});
}

const char* to_string(DecodeError err) {
  switch (err) {
    case DecodeError::kOk:
      return "ok";
    case DecodeError::kTruncated:
      return "truncated";
    case DecodeError::kBadMagic:
      return "bad-magic";
    case DecodeError::kBadVersion:
      return "bad-version";
    case DecodeError::kBadType:
      return "bad-type";
    case DecodeError::kOverlongVarint:
      return "overlong-varint";
    case DecodeError::kBadPayloadTag:
      return "bad-payload-tag";
    case DecodeError::kBadValue:
      return "bad-value";
    case DecodeError::kTrailingBytes:
      return "trailing-bytes";
  }
  return "?";
}

void put_varint(std::vector<std::uint8_t>* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

bool Reader::varint(std::uint64_t* v) {
  if (failed()) return false;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (p_ == end_) {
      fail(DecodeError::kTruncated);
      return false;
    }
    const std::uint8_t b = *p_++;
    if ((b & 0x80) == 0) {
      // Canonical: no zero continuation tail, and the 10th byte may only
      // carry the 64th bit.
      if ((i > 0 && b == 0) || (i == 9 && b > 1)) {
        fail(DecodeError::kOverlongVarint);
        return false;
      }
      acc |= static_cast<std::uint64_t>(b) << (7 * i);
      *v = acc;
      return true;
    }
    acc |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
  }
  fail(DecodeError::kOverlongVarint);
  return false;
}

bool Reader::byte(std::uint8_t* v) {
  if (failed()) return false;
  if (p_ == end_) {
    fail(DecodeError::kTruncated);
    return false;
  }
  *v = *p_++;
  return true;
}

bool Reader::raw(const std::uint8_t** data, std::size_t len) {
  if (failed()) return false;
  if (remaining() < len) {
    fail(DecodeError::kTruncated);
    return false;
  }
  *data = p_;
  p_ += len;
  return true;
}

DecodeError Reader::finish() {
  if (failed()) return err_;
  if (p_ != end_) return DecodeError::kTrailingBytes;
  return DecodeError::kOk;
}

void encode_bitset(std::vector<std::uint8_t>* out, const DynamicBitset& bits) {
  put_varint(out, bits.size());
  std::vector<std::uint8_t> packed((bits.size() + 7) / 8, 0);
  bits.for_each_set([&](std::size_t i) {
    packed[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  });
  while (!packed.empty() && packed.back() == 0) packed.pop_back();
  put_varint(out, packed.size());
  out->insert(out->end(), packed.begin(), packed.end());
}

bool decode_bitset(Reader* r, DynamicBitset* out) {
  std::uint64_t nbits = 0;
  std::uint64_t nbytes = 0;
  if (!r->varint(&nbits) || !r->varint(&nbytes)) return false;
  if (nbits > kMaxBits || nbytes > (nbits + 7) / 8) {
    r->fail(DecodeError::kBadValue);
    return false;
  }
  const std::uint8_t* data = nullptr;
  if (!r->raw(&data, static_cast<std::size_t>(nbytes))) return false;
  // Canonical: no trailing zero byte, no set bit beyond nbits.
  if (nbytes > 0 && data[nbytes - 1] == 0) {
    r->fail(DecodeError::kBadValue);
    return false;
  }
  DynamicBitset bits(static_cast<std::size_t>(nbits));
  for (std::uint64_t byte = 0; byte < nbytes; ++byte) {
    std::uint8_t b = data[byte];
    while (b != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(b));
      b = static_cast<std::uint8_t>(b & (b - 1));
      const std::uint64_t i = byte * 8 + bit;
      if (i >= nbits) {
        r->fail(DecodeError::kBadValue);
        return false;
      }
      bits.set(static_cast<std::size_t>(i));
    }
  }
  *out = std::move(bits);
  return true;
}

void encode_payload(std::vector<std::uint8_t>* out, const Payload* payload) {
  if (payload == nullptr) {
    put_varint(out, kTagNone);
    return;
  }
  if (const auto* p = dynamic_cast<const TrivialPayload*>(payload)) {
    put_varint(out, kTagTrivial);
    encode_bitset(out, p->rumors);
    return;
  }
  if (const auto* p = dynamic_cast<const EpidemicPayload*>(payload)) {
    put_varint(out, kTagEpidemic);
    encode_bitset(out, p->rumors);
    put_varint(out, p->informed.size());
    for (const DynamicBitset& inf : p->informed) encode_bitset(out, inf);
    return;
  }
  if (const auto* p = dynamic_cast<const TearsPayload*>(payload)) {
    put_varint(out, kTagTears);
    encode_bitset(out, p->rumors);
    out->push_back(p->flag_up ? 1 : 0);
    return;
  }
  if (const auto* p = dynamic_cast<const SyncGossipPayload*>(payload)) {
    put_varint(out, kTagSync);
    encode_bitset(out, p->rumors);
    return;
  }
  if (const auto* p = dynamic_cast<const LazyPayload*>(payload)) {
    put_varint(out, kTagLazy);
    encode_bitset(out, p->rumors);
    return;
  }
  for (const ExtensionCodec& c : extension_codecs())
    if (c.encode(out, *payload)) return;
  AG_ASSERT_MSG(false, "payload type has no asyncgossip-wire-v1 encoding");
}

bool decode_payload(Reader* r, PayloadPtr* out) {
  std::uint64_t tag = 0;
  if (!r->varint(&tag)) return false;
  switch (tag) {
    case kTagNone:
      out->reset();
      return true;
    case kTagTrivial: {
      auto p = std::make_shared<TrivialPayload>();
      if (!decode_bitset(r, &p->rumors)) return false;
      *out = std::move(p);
      return true;
    }
    case kTagEpidemic: {
      auto p = std::make_shared<EpidemicPayload>();
      if (!decode_bitset(r, &p->rumors)) return false;
      std::uint64_t count = 0;
      if (!r->varint(&count)) return false;
      if (count > kMaxCount) {
        r->fail(DecodeError::kBadValue);
        return false;
      }
      p->informed.resize(static_cast<std::size_t>(count));
      for (DynamicBitset& inf : p->informed)
        if (!decode_bitset(r, &inf)) return false;
      *out = std::move(p);
      return true;
    }
    case kTagTears: {
      auto p = std::make_shared<TearsPayload>();
      if (!decode_bitset(r, &p->rumors)) return false;
      std::uint8_t flag = 0;
      if (!r->byte(&flag)) return false;
      if (flag > 1) {
        r->fail(DecodeError::kBadValue);
        return false;
      }
      p->flag_up = flag != 0;
      *out = std::move(p);
      return true;
    }
    case kTagSync: {
      auto p = std::make_shared<SyncGossipPayload>();
      if (!decode_bitset(r, &p->rumors)) return false;
      *out = std::move(p);
      return true;
    }
    case kTagLazy: {
      auto p = std::make_shared<LazyPayload>();
      if (!decode_bitset(r, &p->rumors)) return false;
      *out = std::move(p);
      return true;
    }
    default:
      for (const ExtensionCodec& c : extension_codecs())
        if (c.tag == tag) return c.decode(r, out);
      r->fail(DecodeError::kBadPayloadTag);
      return false;
  }
}

void put_header(std::vector<std::uint8_t>* out, FrameType type) {
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(kVersion);
  out->push_back(static_cast<std::uint8_t>(type));
}

DecodeError peek_type(const std::uint8_t* data, std::size_t len,
                      FrameType* type) {
  if (len < kHeaderBytes) return DecodeError::kTruncated;
  if (data[0] != kMagic0 || data[1] != kMagic1) return DecodeError::kBadMagic;
  if (data[2] != kVersion) return DecodeError::kBadVersion;
  if (data[3] < static_cast<std::uint8_t>(FrameType::kData) ||
      data[3] > static_cast<std::uint8_t>(FrameType::kBye))
    return DecodeError::kBadType;
  *type = static_cast<FrameType>(data[3]);
  return DecodeError::kOk;
}

namespace {

/// Header check + body reader for one expected frame type.
DecodeError open_frame(const std::uint8_t* data, std::size_t len,
                       FrameType want, Reader* r) {
  FrameType type;
  const DecodeError err = peek_type(data, len, &type);
  if (err != DecodeError::kOk) return err;
  if (type != want) return DecodeError::kBadType;
  *r = Reader(data + kHeaderBytes, len - kHeaderBytes);
  return DecodeError::kOk;
}

}  // namespace

void encode_data_frame(std::vector<std::uint8_t>* out, const DataFrame& frame) {
  put_header(out, FrameType::kData);
  put_varint(out, frame.from);
  put_varint(out, frame.to);
  put_varint(out, frame.seq);
  put_varint(out, frame.envelopes.size());
  for (const Envelope& env : frame.envelopes) {
    AG_ASSERT_MSG(env.from == frame.from && env.to == frame.to,
                  "data frame batches exactly one (from, to) link");
    AG_ASSERT_MSG(env.deliver_after > env.send_time,
                  "deliver_after must be at least send_time + 1");
    put_varint(out, env.id);
    put_varint(out, env.send_time);
    put_varint(out, env.deliver_after - env.send_time);
    encode_payload(out, env.payload.get());
  }
}

DecodeError decode_data_frame(const std::uint8_t* data, std::size_t len,
                              DataFrame* out) {
  Reader r(nullptr, 0);
  const DecodeError open = open_frame(data, len, FrameType::kData, &r);
  if (open != DecodeError::kOk) return open;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t count = 0;
  if (!r.varint(&from) || !r.varint(&to) || !r.varint(&out->seq) ||
      !r.varint(&count))
    return r.error();
  if (out->seq == 0 || count > kMaxCount) return DecodeError::kBadValue;
  out->from = static_cast<ProcessId>(from);
  out->to = static_cast<ProcessId>(to);
  out->envelopes.clear();
  out->envelopes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Envelope env;
    env.from = out->from;
    env.to = out->to;
    std::uint64_t delay = 0;
    if (!r.varint(&env.id) || !r.varint(&env.send_time) || !r.varint(&delay))
      return r.error();
    if (delay == 0) return DecodeError::kBadValue;
    env.deliver_after = env.send_time + delay;
    PayloadPtr payload;
    if (!decode_payload(&r, &payload)) return r.error();
    env.payload = std::move(payload);
    out->envelopes.push_back(std::move(env));
  }
  return r.finish();
}

void encode_ack_frame(std::vector<std::uint8_t>* out, const AckFrame& frame) {
  put_header(out, FrameType::kAck);
  put_varint(out, frame.receiver);
  put_varint(out, frame.sender);
  put_varint(out, frame.cum_seq);
  out->push_back(frame.closed ? 1 : 0);
}

DecodeError decode_ack_frame(const std::uint8_t* data, std::size_t len,
                             AckFrame* out) {
  Reader r(nullptr, 0);
  const DecodeError open = open_frame(data, len, FrameType::kAck, &r);
  if (open != DecodeError::kOk) return open;
  std::uint64_t receiver = 0;
  std::uint64_t sender = 0;
  std::uint8_t closed = 0;
  if (!r.varint(&receiver) || !r.varint(&sender) || !r.varint(&out->cum_seq) ||
      !r.byte(&closed))
    return r.error();
  if (closed > 1) return DecodeError::kBadValue;
  out->receiver = static_cast<ProcessId>(receiver);
  out->sender = static_cast<ProcessId>(sender);
  out->closed = closed != 0;
  return r.finish();
}

void encode_hello_frame(std::vector<std::uint8_t>* out,
                        const HelloFrame& frame) {
  put_header(out, FrameType::kHello);
  put_varint(out, frame.pid);
}

DecodeError decode_hello_frame(const std::uint8_t* data, std::size_t len,
                               HelloFrame* out) {
  Reader r(nullptr, 0);
  const DecodeError open = open_frame(data, len, FrameType::kHello, &r);
  if (open != DecodeError::kOk) return open;
  std::uint64_t pid = 0;
  if (!r.varint(&pid)) return r.error();
  out->pid = static_cast<ProcessId>(pid);
  return r.finish();
}

void encode_peer_table_frame(std::vector<std::uint8_t>* out,
                             const PeerTableFrame& frame) {
  put_header(out, FrameType::kPeerTable);
  put_varint(out, frame.ports.size());
  for (std::uint16_t port : frame.ports) put_varint(out, port);
}

DecodeError decode_peer_table_frame(const std::uint8_t* data, std::size_t len,
                                    PeerTableFrame* out) {
  Reader r(nullptr, 0);
  const DecodeError open = open_frame(data, len, FrameType::kPeerTable, &r);
  if (open != DecodeError::kOk) return open;
  std::uint64_t count = 0;
  if (!r.varint(&count)) return r.error();
  if (count > kMaxCount) return DecodeError::kBadValue;
  out->ports.clear();
  out->ports.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t port = 0;
    if (!r.varint(&port)) return r.error();
    if (port > 0xffff) return DecodeError::kBadValue;
    out->ports.push_back(static_cast<std::uint16_t>(port));
  }
  return r.finish();
}

void encode_status_frame(std::vector<std::uint8_t>* out,
                         const StatusFrame& frame) {
  put_header(out, FrameType::kStatus);
  put_varint(out, frame.pid);
  out->push_back(static_cast<std::uint8_t>((frame.quiescent ? 1 : 0) |
                                           (frame.crashed ? 2 : 0)));
  put_varint(out, frame.steps);
  put_varint(out, frame.sends);
  put_varint(out, frame.deliveries);
  put_varint(out, frame.discarded);
}

DecodeError decode_status_frame(const std::uint8_t* data, std::size_t len,
                                StatusFrame* out) {
  Reader r(nullptr, 0);
  const DecodeError open = open_frame(data, len, FrameType::kStatus, &r);
  if (open != DecodeError::kOk) return open;
  std::uint64_t pid = 0;
  std::uint8_t flags = 0;
  if (!r.varint(&pid) || !r.byte(&flags) || !r.varint(&out->steps) ||
      !r.varint(&out->sends) || !r.varint(&out->deliveries) ||
      !r.varint(&out->discarded))
    return r.error();
  if (flags > 3) return DecodeError::kBadValue;
  out->pid = static_cast<ProcessId>(pid);
  out->quiescent = (flags & 1) != 0;
  out->crashed = (flags & 2) != 0;
  return r.finish();
}

void encode_signal_frame(std::vector<std::uint8_t>* out, FrameType type) {
  AG_ASSERT_MSG(type == FrameType::kStart || type == FrameType::kShutdown,
                "signal frames are kStart / kShutdown");
  put_header(out, type);
}

void encode_bye_frame(std::vector<std::uint8_t>* out, ProcessId pid) {
  put_header(out, FrameType::kBye);
  put_varint(out, pid);
}

DecodeError decode_bye_frame(const std::uint8_t* data, std::size_t len,
                             ProcessId* pid) {
  Reader r(nullptr, 0);
  const DecodeError open = open_frame(data, len, FrameType::kBye, &r);
  if (open != DecodeError::kOk) return open;
  std::uint64_t raw = 0;
  if (!r.varint(&raw)) return r.error();
  *pid = static_cast<ProcessId>(raw);
  return r.finish();
}

}  // namespace wire
}  // namespace asyncgossip
