// The discrete-time simulation engine for the paper's system model.
//
// Model recap (Section "System Model" of the paper): time proceeds in
// discrete steps; at every step the adversary picks an arbitrary subset of
// processes to take a local step and may crash processes (at most f in
// total). In each local step a process receives a subset of its pending
// messages, computes, and sends messages. For a given execution, d is the
// maximum delivery time and delta the maximum scheduling gap. The engine
// *enforces* both bounds: a pending message older than d is force-delivered
// at the receiver's next step, and a live process is force-scheduled when
// its delta deadline arrives. In strict mode the engine instead throws
// ModelViolation if the adversary's raw decision would breach a bound,
// which the test suite uses to validate adversary implementations.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "sim/adversary.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/observer.h"
#include "sim/probe.h"
#include "sim/process.h"
#include "sim/types.h"

namespace asyncgossip {

struct EngineConfig {
  /// Delivery bound d >= 1 enforced for this execution.
  Time d = 1;
  /// Scheduling bound delta >= 1 enforced for this execution.
  Time delta = 1;
  /// Crash budget f (0 <= f < n enforced at construction).
  std::size_t max_crashes = 0;
  /// If true, adversary decisions that would violate d/delta/f raise
  /// ModelViolation instead of being corrected.
  bool strict = false;
};

class Engine {
 public:
  Engine(std::vector<std::unique_ptr<Process>> processes,
         std::unique_ptr<Adversary> adversary, EngineConfig config);

  /// Advances exactly `steps` global time steps.
  void run(Time steps);

  /// Runs until `done(*this)` returns true (checked after every step) or
  /// `max_steps` elapse. Returns true iff the predicate fired.
  bool run_until(const std::function<bool(const Engine&)>& done,
                 Time max_steps);

  // --- observers ----------------------------------------------------------
  std::size_t n() const { return processes_.size(); }
  Time now() const { return now_; }
  const EngineConfig& config() const { return config_; }
  const Metrics& metrics() const { return metrics_; }
  bool crashed(ProcessId p) const { return crashed_[p]; }
  std::size_t alive_count() const { return alive_count_; }
  std::size_t crashes_so_far() const { return crashes_; }
  const Process& process(ProcessId p) const { return *processes_[p]; }

  /// Typed accessor for algorithm-specific inspection in tests/benches.
  template <typename T>
  const T& process_as(ProcessId p) const {
    const T* t = dynamic_cast<const T*>(processes_[p].get());
    AG_ASSERT_MSG(t != nullptr, "process type mismatch");
    return *t;
  }

  std::size_t in_flight_count() const { return in_flight_total_; }
  bool network_empty() const { return in_flight_total_ == 0; }
  std::vector<Envelope> pending_for(ProcessId p) const;
  std::size_t pending_count(ProcessId p) const { return mailbox_[p].size(); }
  std::uint64_t local_steps_of(ProcessId p) const { return local_steps_[p]; }
  std::unique_ptr<Process> fork_process(ProcessId p) const {
    return processes_[p]->clone();
  }

  /// FNV-1a hash over the full delivery/send trace; equal seeds must yield
  /// equal hashes (determinism test).
  std::uint64_t trace_hash() const { return trace_hash_; }

  /// Replaces all attached observers with `observer` (nullptr detaches
  /// everything). Observation is strictly read-only and never alters the
  /// execution.
  void set_observer(EngineObserver* observer) {
    observers_.clear();
    if (observer != nullptr) observers_.push_back(observer);
  }

  /// Attaches an additional passive observer alongside any already present
  /// (the auditor and the telemetry collector routinely coexist). Events
  /// fan out to observers in attachment order.
  void add_observer(EngineObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  /// Attaches the sink that receives StepContext::probe_* reports from
  /// algorithm code (nullptr detaches). Like observers, sinks are strictly
  /// read-only with respect to the execution.
  void set_probe_sink(ProbeSink* sink) { probe_sink_ = sink; }

 private:
  void advance_one_step();
  void apply_crashes(const std::vector<ProcessId>& crash_list);
  std::vector<ProcessId> effective_schedule(
      const std::vector<ProcessId>& proposed);
  std::vector<Envelope> collect_deliveries(ProcessId p);
  void dispatch_sends(ProcessId from, std::vector<StepContext::Outgoing>&& out);
  void hash_mix(std::uint64_t v);

  EngineConfig config_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<Adversary> adversary_;
  Metrics metrics_;

  Time now_ = 0;
  std::vector<bool> crashed_;
  std::size_t alive_count_;
  std::size_t crashes_ = 0;
  std::vector<std::deque<Envelope>> mailbox_;  // per destination, send order
  std::size_t in_flight_total_ = 0;
  std::vector<Time> last_step_time_;
  std::vector<bool> stepped_once_;
  std::vector<std::uint64_t> local_steps_;
  MessageId next_message_id_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;
  std::vector<EngineObserver*> observers_;
  ProbeSink* probe_sink_ = nullptr;

  // Sends produced during the current step, injected into mailboxes only
  // after every scheduled process has stepped (simultaneous semantics).
  std::vector<Envelope> pending_sends_;
};

}  // namespace asyncgossip
