#include "gossip/fuzz_harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/assert.h"
#include "gossip/completion.h"
#include "gossip/spec_json.h"

namespace asyncgossip {

namespace {

/// murmur3 finalizer: cheap, deterministic seed derivation for trial grids.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::string first_line(const std::string& s) {
  const std::size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

/// One line naming the report's first concrete violation (the summary()
/// header alone only carries the count).
std::string first_finding(const ViolationReport& report) {
  if (report.violations().empty()) return first_line(report.summary());
  const Violation& v = report.violations().front();
  return std::string(to_string(v.kind)) + " @ t=" + std::to_string(v.time) +
         ": " + v.detail;
}

}  // namespace

const std::vector<GossipAlgorithm>& fuzz_algorithms() {
  static const std::vector<GossipAlgorithm> palette = {
      GossipAlgorithm::kTrivial,
      GossipAlgorithm::kEars,
      GossipAlgorithm::kSears,
      GossipAlgorithm::kTears,
      GossipAlgorithm::kSync,
      GossipAlgorithm::kEarsNoInformedList,
      GossipAlgorithm::kLazy,
      GossipAlgorithm::kRoundRobin,
  };
  return palette;
}

GossipSpec spec_from_fuzz_case(const FuzzCase& c) {
  const std::vector<GossipAlgorithm>& palette = fuzz_algorithms();
  if (c.algorithm >= palette.size())
    throw ApiError("fuzz case algorithm index " + std::to_string(c.algorithm) +
                   " out of range (palette has " +
                   std::to_string(palette.size()) + ")");
  GossipSpec spec;
  spec.algorithm = palette[c.algorithm];
  spec.n = std::max<std::size_t>(c.n, 2);
  spec.f = std::min(c.f, spec.n - 1);
  spec.d = std::max<Time>(c.d, 1);
  spec.delta = std::max<Time>(c.delta, 1);
  spec.schedule = c.schedule;
  spec.delay = c.delay;
  spec.crash_horizon = std::max<Time>(c.crash_horizon, 1);
  spec.seed = c.seed != 0 ? c.seed : 1;
  // Pin the exact step budget into the spec so the repro artifact replays
  // the same number of steps even for budget-exhaustion failures.
  spec.max_steps = 2 * default_step_budget(spec);
  return spec;
}

std::string gossip_case_label(const FuzzCase& c) {
  const std::vector<GossipAlgorithm>& palette = fuzz_algorithms();
  const std::string generic = to_string(c);
  const std::size_t slash = generic.find('/');
  if (c.algorithm >= palette.size() || slash == std::string::npos)
    return generic;
  return std::string(to_string(palette[c.algorithm])) + generic.substr(slash);
}

bool event_mutator_from_string(const std::string& name, EventMutator* out) {
  using Event = TraceRecorder::Event;
  using Kind = TraceRecorder::EventKind;
  const auto find_first = [](std::vector<Event>& events, Kind kind) {
    return std::find_if(events.begin(), events.end(),
                        [kind](const Event& e) { return e.kind == kind; });
  };
  if (name == "late-delivery") {
    // Drop the first delivery: the receiver keeps stepping while the
    // message sits deliverable, which the auditor flags as kLateDelivery.
    *out = [find_first](std::vector<Event>& events) {
      const auto it = find_first(events, Kind::kDelivery);
      if (it != events.end()) events.erase(it);
    };
  } else if (name == "double-step") {
    // Duplicate the first local step: two steps of one process in the same
    // global time step (kDoubleStep).
    *out = [find_first](std::vector<Event>& events) {
      const auto it = find_first(events, Kind::kStep);
      if (it != events.end()) events.insert(it, *it);
    };
  } else if (name == "phantom-crash") {
    // Insert a crash right after the first step of a process that acts
    // again later: every later action is post-crash activity.
    *out = [find_first](std::vector<Event>& events) {
      const auto it = find_first(events, Kind::kStep);
      if (it == events.end()) return;
      Event crash;
      crash.kind = Kind::kCrash;
      crash.time = it->time;
      crash.process = it->process;
      events.insert(it + 1, crash);
    };
  } else {
    return false;
  }
  return true;
}

FuzzOracle make_gossip_fuzz_oracle(EventMutator mutate) {
  return [mutate](const FuzzCase& c) -> FuzzVerdict {
    FuzzVerdict v;
    const GossipSpec spec = spec_from_fuzz_case(c);

    Engine engine = make_gossip_engine(spec);
    AuditConfig audit_cfg;
    audit_cfg.n = spec.n;
    audit_cfg.d = spec.d;
    audit_cfg.delta = spec.delta;
    audit_cfg.max_crashes = spec.f;
    InvariantAuditor auditor(audit_cfg);
    TraceRecorder trace(1 << 22);
    engine.add_observer(&auditor);
    engine.add_observer(&trace);

    const GossipOutcome outcome = run_gossip(engine, spec.max_steps);
    auditor.finalize(engine.now());
    auditor.cross_check(engine.metrics());
    v.trace_hash = engine.trace_hash();

    const auto fail = [&v](std::string why) {
      v.ok = false;
      v.failure = std::move(why);
    };

    if (!auditor.report().ok()) {
      fail("audit: " + first_finding(auditor.report()));
      return v;
    }

    // Test-only fault injection: re-audit a mutated *copy* of the event
    // stream. The run above was never perturbed, so v.trace_hash is still
    // the honest fingerprint a replay must reproduce. A truncated log
    // cannot be judged (a dropped tail looks like starvation), so skip.
    if (mutate && trace.dropped() == 0) {
      std::vector<TraceRecorder::Event> events = trace.events();
      mutate(events);
      const ViolationReport injected = audit_events(events, audit_cfg);
      if (!injected.ok()) {
        fail("injected-audit: " + first_finding(injected));
        return v;
      }
    }

    if (!outcome.completed) {
      fail("postcondition: completion (no quiescence within " +
           std::to_string(spec.max_steps) + " steps)");
      return v;
    }
    if (gossip_requires_gathering(spec) && !outcome.gathering_ok) {
      fail("postcondition: gathering (a live process misses a correct "
           "process's rumor)");
      return v;
    }
    if (gossip_requires_majority(spec) && !outcome.majority_ok) {
      fail("postcondition: majority (a live process knows <= n/2 rumors)");
      return v;
    }

    // Sanity envelopes — deliberately loose (the statistically tight Table 1
    // check is sim/statcheck.h); these only catch runaway executions.
    const Time time_cap = default_step_budget(spec);
    if (outcome.completion_time > time_cap) {
      fail("envelope: time (completion_time " +
           std::to_string(outcome.completion_time) + " > " +
           std::to_string(time_cap) + ")");
      return v;
    }
    const double n = static_cast<double>(spec.n);
    const double lg = std::log2(n) + 1.0;
    const double message_cap =
        64.0 * n * n * lg * lg * static_cast<double>(spec.d + spec.delta) +
        4096.0;
    if (static_cast<double>(outcome.messages) > message_cap) {
      fail("envelope: messages (" + std::to_string(outcome.messages) + " > " +
           std::to_string(static_cast<std::uint64_t>(message_cap)) + ")");
      return v;
    }
    return v;
  };
}

GossipFuzzResult run_gossip_fuzz(const GossipFuzzOptions& options) {
  GossipFuzzResult result;
  FuzzDomain domain = options.domain;
  domain.algorithms = fuzz_algorithms().size();
  const FuzzOracle oracle = make_gossip_fuzz_oracle(options.mutate);

  result.report = run_fuzz(domain, options.fuzz, oracle);
  if (options.log != nullptr)
    *options.log << "fuzz: " << result.report.cases_run << " case(s) run, "
                 << result.report.failures.size() << " failure(s)\n";
  if (result.report.ok()) return result;

  result.found_failure = true;
  const FuzzFailure& first = result.report.failures.front();
  if (options.log != nullptr)
    *options.log << "failing case (iteration " << first.iteration
                 << "): " << gossip_case_label(first.c) << "\n  "
                 << first.verdict.failure << '\n';

  const ShrinkResult shrunk =
      shrink_case(first.c, first.verdict, oracle, options.shrink);
  result.minimal = shrunk.minimal;
  result.minimal_verdict = shrunk.verdict;
  result.shrink_attempts = shrunk.attempts;
  result.shrink_rounds = shrunk.rounds;
  if (options.log != nullptr)
    *options.log << "shrunk (" << shrunk.attempts << " attempt(s), "
                 << shrunk.rounds
                 << " round(s)): " << gossip_case_label(shrunk.minimal)
                 << "\n  " << shrunk.verdict.failure << '\n';

  if (options.artifact_prefix.empty()) return result;

  ReproArtifact artifact;
  artifact.spec = spec_from_fuzz_case(shrunk.minimal);
  artifact.trace_hash = shrunk.verdict.trace_hash;
  artifact.failure = shrunk.verdict.failure;

  const std::string spec_path = options.artifact_prefix + ".spec.json";
  std::ofstream spec_os(spec_path);
  if (spec_os) {
    write_repro_json(spec_os, artifact);
    result.spec_artifact = spec_path;
    if (options.log != nullptr)
      *options.log << "wrote " << spec_path << '\n';
  }

  // Record the minimal run's full event log as a trace-format-v1 artifact
  // (tools/tracecheck lints it; humans read it).
  Engine engine = make_gossip_engine(artifact.spec);
  TraceRecorder trace(1 << 22);
  engine.add_observer(&trace);
  run_gossip(engine, artifact.spec.max_steps);
  const std::string trace_path = options.artifact_prefix + ".trace";
  std::ofstream trace_os(trace_path);
  if (trace_os) {
    trace.write_trace(trace_os, artifact.spec.n, artifact.spec.d,
                      artifact.spec.delta, artifact.spec.f);
    result.trace_artifact = trace_path;
    if (options.log != nullptr)
      *options.log << "wrote " << trace_path << '\n';
  }
  return result;
}

bool replay_repro(const ReproArtifact& artifact, std::string* detail) {
  const AuditedGossipOutcome run = run_audited_gossip_spec(artifact.spec);
  const bool match = run.trace_hash == artifact.trace_hash;
  if (detail != nullptr) {
    std::string s = "replayed " + spec_label(artifact.spec) +
                    ": trace_hash " + std::to_string(run.trace_hash);
    s += match ? " == pinned"
               : " != pinned " + std::to_string(artifact.trace_hash);
    if (!run.audit.ok())
      s += " [audit: " + first_line(run.audit.summary()) + "]";
    *detail = s;
  }
  return match;
}

namespace {

struct CellBatch {
  GossipAlgorithm algorithm;
  std::size_t n = 0;
  std::size_t f = 0;
  Time d = 1;
  Time delta = 1;
  std::size_t first_spec = 0;  // index of the batch's first trial spec
};

double cell_envelope(GossipAlgorithm algorithm, const std::string& metric,
                     const CellBatch& b) {
  const double n = static_cast<double>(b.n);
  const double lg = std::log2(n) + 1.0;
  const double dd = static_cast<double>(b.d + b.delta);
  if (algorithm == GossipAlgorithm::kEars) {
    if (metric == "time")
      return n / static_cast<double>(b.n - b.f) * lg * lg * dd;
    return n * lg * lg * lg * dd;  // messages
  }
  // TEARS (Table 1): O(d + delta) time, O(n^{7/4} log^2 n) messages.
  if (metric == "time") return dd;
  return std::pow(n, 1.75) * lg * lg;
}

}  // namespace

StatReport run_gossip_statcheck(const GossipStatCheckOptions& options) {
  if (options.ns.empty()) throw ApiError("statcheck needs a non-empty n grid");
  if (options.dds.empty())
    throw ApiError("statcheck needs a non-empty (d, delta) grid");
  if (options.trials == 0) throw ApiError("statcheck needs trials >= 1");

  const std::size_t n_min =
      *std::min_element(options.ns.begin(), options.ns.end());
  const GossipAlgorithm algorithms[] = {GossipAlgorithm::kEars,
                                        GossipAlgorithm::kTears};

  std::vector<GossipSpec> specs;
  std::vector<CellBatch> batches;
  std::size_t batch_index = 0;
  for (const GossipAlgorithm algorithm : algorithms) {
    for (const std::pair<Time, Time>& dd : options.dds) {
      for (const std::size_t n : options.ns) {
        if (n < 2) throw ApiError("statcheck needs n >= 2");
        CellBatch b;
        b.algorithm = algorithm;
        b.n = n;
        b.f = std::min(
            static_cast<std::size_t>(static_cast<double>(n) *
                                     std::clamp(options.f_fraction, 0.0, 1.0)),
            n - 1);
        b.d = dd.first;
        b.delta = dd.second;
        b.first_spec = specs.size();
        for (std::size_t t = 0; t < options.trials; ++t) {
          GossipSpec s;
          s.algorithm = algorithm;
          s.n = b.n;
          s.f = b.f;
          s.d = b.d;
          s.delta = b.delta;
          s.seed = mix64(options.seed ^
                         (batch_index + 1) * 0x9e3779b97f4a7c15ULL ^
                         (t + 1) * 0x100000001b3ULL);
          if (s.seed == 0) s.seed = 1;
          specs.push_back(s);
        }
        batches.push_back(b);
        ++batch_index;
      }
    }
  }

  if (options.log != nullptr)
    *options.log << "statcheck: " << batches.size() << " cell(s) x "
                 << options.trials << " trial(s) = " << specs.size()
                 << " run(s)\n";

  const std::vector<GossipSweepResult> results =
      run_gossip_sweep(specs, options.jobs);

  std::vector<StatCell> cells;
  cells.reserve(batches.size() * 2);
  for (const CellBatch& b : batches) {
    const std::string label = spec_label(specs[b.first_spec]);
    for (const char* metric : {"time", "messages"}) {
      StatCell cell;
      cell.group = std::string(to_string(b.algorithm)) + ':' + metric;
      cell.label = label;
      cell.metric = metric;
      cell.envelope = cell_envelope(b.algorithm, metric, b);
      cell.calibration = b.n == n_min;
      cell.samples.reserve(options.trials);
      for (std::size_t t = 0; t < options.trials; ++t) {
        const GossipOutcome& outcome = results[b.first_spec + t].outcome;
        cell.samples.push_back(
            metric == std::string("time")
                ? static_cast<double>(outcome.completion_time)
                : static_cast<double>(outcome.messages));
      }
      cells.push_back(std::move(cell));
    }
  }

  StatReport report = check_bounds(cells, options.stat);
  if (options.log != nullptr) {
    if (report.ok())
      *options.log << "statcheck: all " << report.cells.size()
                   << " cell(s) within their envelopes\n";
    else
      *options.log << report.summary();
  }
  return report;
}

std::vector<std::pair<std::string, std::string>> statcheck_run_info(
    const GossipStatCheckOptions& options) {
  // Append piecewise (not `"" + std::to_string(...)`): the rvalue-concat
  // form trips GCC 12's -Wrestrict false positive (PR 105329) depending on
  // inlining, and this is clearer anyway.
  std::string ns;
  for (const std::size_t n : options.ns) {
    if (!ns.empty()) ns += ',';
    ns += std::to_string(n);
  }
  std::string dds;
  for (const std::pair<Time, Time>& dd : options.dds) {
    if (!dds.empty()) dds += ',';
    dds += std::to_string(dd.first);
    dds += ':';
    dds += std::to_string(dd.second);
  }
  char frac[32];
  std::snprintf(frac, sizeof frac, "%.12g", options.f_fraction);
  return {
      {"algorithms", "ears,tears"},
      {"ns", ns},
      {"dds", dds},
      {"f_fraction", frac},
      {"trials", std::to_string(options.trials)},
      {"seed", std::to_string(options.seed)},
  };
}

}  // namespace asyncgossip
