// Slab-arena and payload-pool unit tests (sim/envelope_arena.h), plus
// engine-level checks that the arena actually reaches its design goal:
// zero steady-state slab growth once the execution's standing in-flight
// volume is covered, with slabs recycled across timing-wheel wraparounds.
#include "sim/envelope_arena.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gossip/harness.h"
#include "sim/engine.h"
#include "sim/oblivious.h"

namespace asyncgossip {
namespace {

struct TestPayload final : Payload {
  explicit TestPayload(std::size_t size) : bytes(size) {}
  std::size_t byte_size() const override { return bytes; }
  std::size_t bytes;
};

// --- PayloadPool --------------------------------------------------------

TEST(EnvelopeArena, PayloadInterningSharesOneSlotAcrossFanout) {
  PayloadPool pool;
  const auto payload = std::make_shared<const TestPayload>(16);
  // One payload fanned out to 5 destinations: consecutive interns must hit
  // the memo and share a slot with refcount 5.
  const std::uint32_t h0 = pool.intern(payload);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(pool.intern(payload), h0);
  EXPECT_EQ(pool.ref_count(h0), 5u);
  EXPECT_EQ(pool.interned_total(), 1u);
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.raw(h0), payload.get());

  for (int i = 0; i < 5; ++i) pool.release(h0);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.peak(), 1u);
  EXPECT_EQ(pool.raw(h0), nullptr) << "slot must drop its reference at zero";
}

TEST(EnvelopeArena, PayloadSlotReuseAfterRelease) {
  PayloadPool pool;
  const auto a = std::make_shared<const TestPayload>(1);
  const std::uint32_t ha = pool.intern(a);
  pool.release(ha);
  // The freed slot must be reused, and the memo must NOT resurrect the old
  // handle for a new payload that happens to land at the same address class.
  const auto b = std::make_shared<const TestPayload>(2);
  const std::uint32_t hb = pool.intern(b);
  EXPECT_EQ(hb, ha) << "freed slot should be recycled";
  EXPECT_EQ(pool.raw(hb), b.get());
  EXPECT_EQ(pool.interned_total(), 2u);
  EXPECT_EQ(pool.peak(), 1u);
  pool.release(hb);
}

TEST(EnvelopeArena, NullPayloadIsTheSentinelHandle) {
  PayloadPool pool;
  EXPECT_EQ(pool.intern(nullptr), PayloadPool::kNoPayload);
  EXPECT_EQ(pool.raw(PayloadPool::kNoPayload), nullptr);
  EXPECT_EQ(pool.share(PayloadPool::kNoPayload), nullptr);
  pool.release(PayloadPool::kNoPayload);  // must be a no-op
  EXPECT_EQ(pool.live(), 0u);
}

TEST(EnvelopeArena, ShareKeepsThePayloadAliveAfterRelease) {
  PayloadPool pool;
  auto payload = std::make_shared<const TestPayload>(8);
  const Payload* raw = payload.get();
  const std::uint32_t h = pool.intern(std::move(payload));
  const PayloadPtr kept = pool.share(h);  // owning copy (pending_for seam)
  pool.release(h);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(kept.get(), raw) << "shared copy must outlive the pool slot";
}

// --- slab chains --------------------------------------------------------

TEST(EnvelopeArena, AppendPreservesOrderAcrossSlabBoundaries) {
  EnvelopeArena arena;
  EnvelopeArena::Bucket b;
  // 3 slabs' worth plus a remainder: order must survive chain links.
  const std::size_t kCount = EnvelopeArena::kSlabEntries * 3 + 5;
  const std::size_t kSlabs =
      (kCount + EnvelopeArena::kSlabEntries - 1) / EnvelopeArena::kSlabEntries;
  for (std::size_t i = 0; i < kCount; ++i)
    arena.append(b, /*id=*/i, /*from=*/1, /*to=*/2, /*send_time=*/i,
                 /*deliver_after=*/i + 1, PayloadPool::kNoPayload);
  std::vector<MessageId> ids;
  arena.for_chain(b, [&](std::size_t e) { ids.push_back(arena.id_[e]); });
  ASSERT_EQ(ids.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(ids[i], i);
  EXPECT_EQ(arena.stats().slab_allocations, kSlabs);
  arena.recycle(b);
  EXPECT_TRUE(arena.chain_empty(b));
  EXPECT_EQ(arena.stats().slabs_free, kSlabs);
}

TEST(EnvelopeArena, RecycledSlabsAreReusedNotReallocated) {
  EnvelopeArena arena;
  // Simulate wheel wraparound: fill a bucket, recycle it, fill the next.
  // After the first lap the arena must serve every acquisition from the
  // free list — allocations frozen, reuses climbing.
  EnvelopeArena::Bucket buckets[4];
  MessageId id = 0;
  for (int lap = 0; lap < 8; ++lap) {
    for (EnvelopeArena::Bucket& b : buckets) {
      for (std::size_t i = 0; i < EnvelopeArena::kSlabEntries * 2; ++i)
        arena.append(b, id++, 0, 1, 0, 1, PayloadPool::kNoPayload);
      arena.recycle(b);
    }
    if (lap == 0) {
      // Worst case within one lap: one bucket's slabs are always free while
      // another fills, so capacity stays at a lap's working set.
      EXPECT_LE(arena.stats().slab_allocations, 8u);
    }
  }
  const ArenaStats st = arena.stats();
  EXPECT_LE(st.slab_allocations, 8u)
      << "steady-state laps must not allocate new slabs";
  EXPECT_GT(st.slab_reuses, 40u);
  EXPECT_EQ(st.slab_capacity, st.slabs_free) << "all chains were recycled";
}

// --- engine integration -------------------------------------------------

/// Deterministic fixed-fanout process: sends one payload to its ring
/// successor every step, so the standing in-flight volume is constant and
/// slab growth must stop after the wheel's first lap.
class RingSender final : public Process {
 public:
  RingSender(ProcessId self, std::size_t n) : self_(self), n_(n) {}

  void step(StepContext& ctx) override {
    ctx.send((self_ + 1) % n_, std::make_shared<const TestPayload>(4));
  }
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<RingSender>(self_, n_);
  }
  void reseed(std::uint64_t) override {}

 private:
  ProcessId self_;
  std::size_t n_;
};

Engine make_ring_engine(std::size_t n, Time d, Time delta,
                        DelayPattern delay) {
  std::vector<std::unique_ptr<Process>> procs;
  for (ProcessId p = 0; p < n; ++p)
    procs.push_back(std::make_unique<RingSender>(p, n));
  ObliviousConfig adv;
  adv.n = n;
  adv.d = d;
  adv.delta = delta;
  adv.schedule = SchedulePattern::kLockStep;
  adv.delay = delay;
  adv.seed = 42;
  EngineConfig ecfg;
  ecfg.d = d;
  ecfg.delta = delta;
  return Engine(std::move(procs), std::make_unique<ObliviousAdversary>(adv),
                ecfg);
}

TEST(EnvelopeArena, EngineSteadyStateAllocatesNoSlabs) {
  // Deterministic unit delays: the standing per-bucket occupancy is fixed,
  // so after the wheel's first lap (which still rotates through every slot)
  // the arena must serve the run entirely from recycled slabs.
  Engine engine = make_ring_engine(64, 6, 3, DelayPattern::kUnitDelay);
  const Time wheel = 6 + 3 + 1;
  engine.run(4 * wheel);
  const ArenaStats warm = engine.arena_stats();
  ASSERT_GT(warm.slab_allocations, 0u);
  engine.run(16 * wheel);
  const ArenaStats done = engine.arena_stats();
  EXPECT_EQ(done.slab_allocations, warm.slab_allocations)
      << "steady-state stepping grew the arena";
  EXPECT_GT(done.slab_reuses, warm.slab_reuses);
  EXPECT_EQ(done.payload_pool_live, engine.in_flight_count())
      << "one live pool slot per distinct in-flight payload (fanout 1)";
}

TEST(EnvelopeArena, RandomDelaysGrowSublinearlyNeverPerStep) {
  // Uniform random delays make per-bucket occupancy a multinomial draw, so
  // the arena's high-water mark can creep as rare spikes land — but growth
  // must track the occupancy maximum (slow, bounded by the in-flight
  // volume), never the step count: recycling absorbs the common case.
  Engine engine = make_ring_engine(64, 6, 3, DelayPattern::kUniform);
  const Time wheel = 6 + 3 + 1;
  engine.run(4 * wheel);
  const ArenaStats warm = engine.arena_stats();
  const Time more = 16 * wheel;
  engine.run(more);
  const ArenaStats done = engine.arena_stats();
  EXPECT_LT(done.slab_allocations - warm.slab_allocations,
            static_cast<std::uint64_t>(more) / 4)
      << "allocation rate must collapse once the wheel is warm";
  EXPECT_GT(done.slab_reuses,
            warm.slab_reuses + static_cast<std::uint64_t>(more))
      << "the common case must be served from the free list";
}

TEST(EnvelopeArena, EngineStatsReportPayloadPool) {
  GossipSpec spec;
  spec.algorithm = GossipAlgorithm::kEars;
  spec.n = 32;
  spec.f = 0;
  spec.d = 3;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.delay = DelayPattern::kUniform;
  Engine engine = make_gossip_engine(spec);
  engine.run(48);
  const ArenaStats st = engine.arena_stats();
  EXPECT_GT(st.payloads_interned, 0u);
  EXPECT_GE(st.payload_pool_peak, st.payload_pool_live);
  EXPECT_GE(st.slab_capacity, st.slabs_free);
}

}  // namespace
}  // namespace asyncgossip
