#include "common/rng.h"

#include "common/assert.h"

namespace asyncgossip {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256SS::Xoshiro256SS(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // splitmix64 never produces four zero outputs from any seed, but guard
  // against the (impossible in practice) all-zero state anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256SS::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256SS::uniform(std::uint64_t bound) {
  AG_ASSERT_MSG(bound > 0, "uniform() bound must be positive");
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256SS::uniform_real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256SS::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

std::vector<std::uint64_t> Xoshiro256SS::sample_without_replacement(
    std::uint64_t bound, std::uint64_t k) {
  AG_ASSERT_MSG(k <= bound, "cannot sample more values than the range holds");
  // Floyd's algorithm produces k distinct values; we then Fisher-Yates
  // shuffle so callers may treat the order as uniform too.
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = bound - k; j < bound; ++j) {
    const std::uint64_t t = uniform(j + 1);
    bool seen = false;
    for (std::uint64_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  for (std::uint64_t i = out.size(); i > 1; --i) {
    const std::uint64_t j = uniform(i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

Xoshiro256SS Xoshiro256SS::split() { return Xoshiro256SS(next()); }

void Xoshiro256SS::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace asyncgossip
