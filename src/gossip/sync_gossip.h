// Synchronous epidemic gossip baseline (Table 1 row "CK [9]",
// Corollary 2 denominator).
//
// This algorithm *knows* d = delta = 1 a priori: it runs for a fixed number
// of rounds, R = ceil(rounds_constant * log2 n) + 1, pushing its full rumor
// set to one uniform target per round, then stops unconditionally — exactly
// the round-counting termination that is impossible in the asynchronous
// setting (the paper's introduction explains why). With lock-step
// scheduling this achieves all-to-all gossip in O(log n) rounds and
// O(n log n) messages w.h.p., the standard randomized stand-in for the
// deterministic Chlebus-Kowalski protocol (see DESIGN.md, substitutions).
#pragma once

#include <memory>

#include "common/bitset.h"
#include "common/rng.h"
#include "gossip/rumor.h"

namespace asyncgossip {

struct SyncGossipPayload final : Payload {
  DynamicBitset rumors;
  std::size_t byte_size() const override { return rumors.byte_size(); }
};

class SyncGossipProcess final : public GossipProcess {
 public:
  /// `rounds` is the fixed round budget R; use make_sync_rounds() for the
  /// default R = ceil(c * log2 n) + 1.
  SyncGossipProcess(ProcessId id, std::size_t n, std::uint64_t rounds,
                    std::uint64_t seed);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;

  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }
  const DynamicBitset& rumors() const override { return rumors_; }
  bool quiescent() const override { return steps_taken_ >= rounds_; }
  std::uint64_t local_steps() const override { return steps_taken_; }

 private:
  ProcessId id_;
  std::size_t n_;
  std::uint64_t rounds_;
  Xoshiro256SS rng_;
  DynamicBitset rumors_;
  std::uint64_t steps_taken_ = 0;
};

/// Default synchronous round budget: ceil(c * log2 n) + 1 (c = 3 gives
/// all-to-all dissemination w.h.p. for push-only epidemic spreading).
std::uint64_t make_sync_rounds(std::size_t n, double rounds_constant = 3.0);

}  // namespace asyncgossip
