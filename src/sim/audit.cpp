#include "sim/audit.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"
#include "sim/metrics.h"

namespace asyncgossip {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kLateDelivery:
      return "late-delivery";
    case ViolationKind::kEarlyDelivery:
      return "early-delivery";
    case ViolationKind::kBadDeliverAfter:
      return "bad-deliver-after";
    case ViolationKind::kDeltaViolation:
      return "delta-violation";
    case ViolationKind::kDoubleStep:
      return "double-step";
    case ViolationKind::kCrashBudgetExceeded:
      return "crash-budget-exceeded";
    case ViolationKind::kDuplicateCrash:
      return "duplicate-crash";
    case ViolationKind::kPostCrashStep:
      return "post-crash-step";
    case ViolationKind::kPostCrashSend:
      return "post-crash-send";
    case ViolationKind::kPostCrashDelivery:
      return "post-crash-delivery";
    case ViolationKind::kFifoInversion:
      return "fifo-inversion";
    case ViolationKind::kMessageIdReuse:
      return "message-id-reuse";
    case ViolationKind::kUnknownMessage:
      return "unknown-message";
    case ViolationKind::kEventOutsideStep:
      return "event-outside-step";
    case ViolationKind::kTimeRegression:
      return "time-regression";
    case ViolationKind::kOutOfRangeProcess:
      return "out-of-range-process";
    case ViolationKind::kMetricsMismatch:
      return "metrics-mismatch";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ViolationReport
// ---------------------------------------------------------------------------

std::uint64_t ViolationReport::count(ViolationKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

void ViolationReport::add(Violation v) {
  ++counts_[static_cast<std::size_t>(v.kind)];
  ++total_;
  if (violations_.size() < max_recorded_) violations_.push_back(std::move(v));
}

void ViolationReport::clear() {
  violations_.clear();
  counts_.fill(0);
  total_ = 0;
}

std::string ViolationReport::summary() const {
  if (ok()) return "";
  std::ostringstream os;
  os << total_ << " model violation(s):\n";
  for (const Violation& v : violations_) {
    os << "  [" << to_string(v.kind) << "]";
    if (v.time != kTimeMax) os << " t=" << v.time;
    if (v.process != kNoProcess) os << " p=" << v.process;
    if (v.message != 0) os << " msg=" << v.message;
    os << " — " << v.detail << '\n';
  }
  if (total_ > violations_.size())
    os << "  ... and " << (total_ - violations_.size()) << " more\n";
  // Per-kind totals in ViolationKind declaration order — the array index —
  // so two runs (or two standard libraries) always print identically.
  os << "  totals:";
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (counts_[k] == 0) continue;
    os << ' ' << to_string(static_cast<ViolationKind>(k)) << '=' << counts_[k];
  }
  os << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// InvariantAuditor
// ---------------------------------------------------------------------------

InvariantAuditor::InvariantAuditor(const AuditConfig& config)
    : config_(config),
      report_(config.max_recorded),
      crashed_(config.n, false),
      stepped_once_(config.n, false),
      last_step_(config.n, 0),
      prev_step_(config.n, kTimeMax),
      per_process_sent_(config.n, 0),
      per_process_received_(config.n, 0),
      pending_to_(config.n, 0) {
  if (config_.n == 0) throw ApiError("InvariantAuditor needs n >= 1");
  if (config_.d < 1 || config_.delta < 1)
    throw ApiError("audit bounds d and delta must be >= 1");
}

void InvariantAuditor::add(ViolationKind kind, Time time, ProcessId process,
                           MessageId message, std::string detail) {
  report_.add(Violation{kind, time, process, message, std::move(detail)});
}

bool InvariantAuditor::check_clock(Time now) {
  if (any_event_ && now < clock_) {
    std::ostringstream os;
    os << "event at t=" << now << " after an event at t=" << clock_;
    add(ViolationKind::kTimeRegression, now, kNoProcess, 0, os.str());
    return false;  // keep clock_ at the high-water mark
  }
  // The clock advancing past t means step t is complete: sample the
  // in-flight gauge exactly where the engine does (end of each step).
  if (any_event_ && now > clock_)
    max_in_flight_ = std::max(max_in_flight_, in_flight_gauge_);
  any_event_ = true;
  clock_ = std::max(clock_, now);
  return true;
}

void InvariantAuditor::on_step(Time now, ProcessId p) {
  if (!check_clock(now)) return;
  if (p >= config_.n) {
    add(ViolationKind::kOutOfRangeProcess, now, p, 0, "step by process >= n");
    return;
  }
  if (crashed_[p]) {
    add(ViolationKind::kPostCrashStep, now, p, 0,
        "crashed process took a local step");
    return;  // a crashed process has no scheduling obligations to audit
  }

  if (stepped_once_[p] && last_step_[p] == now) {
    add(ViolationKind::kDoubleStep, now, p, 0,
        "process scheduled twice in one global step");
    return;  // keep the first step's bookkeeping
  }

  // The delta contract: first step by delta - 1, then gaps of at most delta.
  if (!stepped_once_[p]) {
    if (now > config_.delta - 1) {
      std::ostringstream os;
      os << "first step at t=" << now << " but delta=" << config_.delta
         << " requires one by t=" << (config_.delta - 1);
      add(ViolationKind::kDeltaViolation, now, p, 0, os.str());
    }
  } else if (now - last_step_[p] > config_.delta) {
    std::ostringstream os;
    os << "scheduling gap " << (now - last_step_[p]) << " exceeds delta="
       << config_.delta << " (previous step at t=" << last_step_[p] << ")";
    add(ViolationKind::kDeltaViolation, now, p, 0, os.str());
  }

  // Mirror of Metrics::record_gap for the realized-delta cross-check.
  const Time gap = stepped_once_[p] ? now - last_step_[p] : now + 1;
  realized_delta_ = std::max(realized_delta_, gap);
  ++local_steps_total_;

  prev_step_[p] = stepped_once_[p] ? last_step_[p] : kTimeMax;
  last_step_[p] = now;
  stepped_once_[p] = true;
}

void InvariantAuditor::on_send(const Envelope& env) {
  const Time now = env.send_time;
  if (!check_clock(now)) return;
  if (env.from >= config_.n || env.to >= config_.n) {
    add(ViolationKind::kOutOfRangeProcess, now,
        env.from >= config_.n ? env.from : env.to, env.id,
        "send endpoint >= n");
    return;
  }
  if (crashed_[env.from])
    add(ViolationKind::kPostCrashSend, now, env.from, env.id,
        "crashed process sent a message");
  if (!stepped_once_[env.from] || last_step_[env.from] != now)
    add(ViolationKind::kEventOutsideStep, now, env.from, env.id,
        "send not bracketed by a local step of the sender");

  // Monotone ids imply per-execution uniqueness.
  if (any_id_seen_ && env.id <= last_id_) {
    std::ostringstream os;
    os << "message id " << env.id << " after id " << last_id_;
    add(ViolationKind::kMessageIdReuse, now, env.from, env.id, os.str());
  } else {
    last_id_ = env.id;
    any_id_seen_ = true;
  }
  if (!in_flight_.insert(env.id).second)
    add(ViolationKind::kMessageIdReuse, now, env.from, env.id,
        "message id already in flight");

  if (env.deliver_after < env.send_time + 1 ||
      env.deliver_after > env.send_time + config_.d) {
    std::ostringstream os;
    os << "deliver_after=" << env.deliver_after << " outside [send+1, send+d]"
       << " = [" << (env.send_time + 1) << ", " << (env.send_time + config_.d)
       << "]";
    add(ViolationKind::kBadDeliverAfter, now, env.from, env.id, os.str());
  }

  pair_queue_[pair_key(env.from, env.to)].push_back(
      PendingMessage{env.id, env.deliver_after, false});

  ++sends_total_;
  bytes_total_ += env.payload ? env.payload->byte_size() : 0;
  ++per_process_sent_[env.from];
  last_send_time_ = now;
  any_send_ = true;
  // Gauge mirror: a send to an already-crashed destination never enters
  // the network (the engine drops it at end-of-step injection).
  if (!crashed_[env.to]) {
    ++pending_to_[env.to];
    ++in_flight_gauge_;
  }
}

void InvariantAuditor::on_delivery(const Envelope& env, Time now) {
  if (!check_clock(now)) return;
  if (env.from >= config_.n || env.to >= config_.n) {
    add(ViolationKind::kOutOfRangeProcess, now,
        env.to >= config_.n ? env.to : env.from, env.id,
        "delivery endpoint >= n");
    return;
  }
  if (crashed_[env.to]) {
    add(ViolationKind::kPostCrashDelivery, now, env.to, env.id,
        "message delivered to a crashed process");
    return;
  }
  if (!stepped_once_[env.to] || last_step_[env.to] != now)
    add(ViolationKind::kEventOutsideStep, now, env.to, env.id,
        "delivery not bracketed by a local step of the receiver");

  if (in_flight_.erase(env.id) == 0)
    add(ViolationKind::kUnknownMessage, now, env.to, env.id,
        "delivery of a message never sent (or delivered twice)");

  if (now <= env.send_time) {
    std::ostringstream os;
    os << "delivered at t=" << now << " but sent at t=" << env.send_time
       << " (same-step relay or worse)";
    add(ViolationKind::kEarlyDelivery, now, env.to, env.id, os.str());
  } else if (now < env.deliver_after) {
    std::ostringstream os;
    os << "delivered at t=" << now << " before deliver_after="
       << env.deliver_after;
    add(ViolationKind::kEarlyDelivery, now, env.to, env.id, os.str());
  }
  if (env.deliver_after < env.send_time + 1 ||
      env.deliver_after > env.send_time + config_.d) {
    std::ostringstream os;
    os << "deliver_after=" << env.deliver_after << " outside [send+1, send+d]"
       << " = [" << (env.send_time + 1) << ", " << (env.send_time + config_.d)
       << "]";
    add(ViolationKind::kBadDeliverAfter, now, env.to, env.id, os.str());
  }

  // The receiver's most recent step strictly before this delivery. The
  // on_step for the delivering step has already been observed, so when the
  // stream is well-formed this is prev_step_; fall back to last_step_ for
  // streams where the delivery arrived outside a step.
  Time eff_prev = kTimeMax;
  if (stepped_once_[env.to])
    eff_prev = last_step_[env.to] == now ? prev_step_[env.to]
                                         : last_step_[env.to];

  // The d contract (force-delivery): had the receiver stepped at or after
  // deliver_after, the message would have been handed over then.
  if (eff_prev != kTimeMax && eff_prev >= env.deliver_after) {
    std::ostringstream os;
    os << "receiver stepped at t=" << eff_prev
       << " with the message deliverable since t=" << env.deliver_after
       << " but received it only at t=" << now;
    add(ViolationKind::kLateDelivery, now, env.to, env.id, os.str());
  }

  // Per-(sender, receiver) FIFO: an older same-pair message that was
  // already deliverable must not be overtaken.
  auto it = pair_queue_.find(pair_key(env.from, env.to));
  if (it != pair_queue_.end()) {
    auto& queue = it->second;
    for (auto& pending : queue) {
      if (pending.id >= env.id) break;  // queue is sorted by send order
      if (!pending.flagged && pending.deliver_after <= now) {
        std::ostringstream os;
        os << "message " << env.id << " overtook older message " << pending.id
           << " (deliverable since t=" << pending.deliver_after
           << ") on the same (sender, receiver) channel";
        add(ViolationKind::kFifoInversion, now, env.to, env.id, os.str());
        pending.flagged = true;
      }
    }
    for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
      if (qit->id == env.id) {
        queue.erase(qit);
        break;
      }
    }
    if (queue.empty()) pair_queue_.erase(it);
  }

  // Mirror of Metrics::record_delivery for the realized-d cross-check.
  ++deliveries_total_;
  ++per_process_received_[env.to];
  if (pending_to_[env.to] > 0) {  // guarded: fabricated streams may deliver
    --pending_to_[env.to];        // messages that were never sent
    --in_flight_gauge_;
  }
  if (now > env.send_time) {
    Time witnessed = 1;
    if (eff_prev != kTimeMax && eff_prev > env.send_time)
      witnessed = eff_prev - env.send_time + 1;
    witnessed = std::min(witnessed, now - env.send_time);
    realized_d_ = std::max(realized_d_, witnessed);
  }
}

void InvariantAuditor::on_crash(Time now, ProcessId p) {
  if (!check_clock(now)) return;
  if (p >= config_.n) {
    add(ViolationKind::kOutOfRangeProcess, now, p, 0, "crash of process >= n");
    return;
  }
  if (crashed_[p]) {
    add(ViolationKind::kDuplicateCrash, now, p, 0,
        "process crashed a second time");
    return;
  }
  if (crash_count_ + 1 > config_.max_crashes) {
    std::ostringstream os;
    os << "crash #" << (crash_count_ + 1) << " exceeds budget f="
       << config_.max_crashes;
    add(ViolationKind::kCrashBudgetExceeded, now, p, 0, os.str());
  }
  crashed_[p] = true;
  ++crash_count_;
  // A crash voids the victim's pending messages (the engine clears its
  // mailbox and deducts them from the in-flight total).
  in_flight_gauge_ -= std::min<std::size_t>(in_flight_gauge_, pending_to_[p]);
  pending_to_[p] = 0;
}

void InvariantAuditor::finalize(Time end_time) {
  for (ProcessId p = 0; p < config_.n; ++p) {
    if (crashed_[p]) continue;
    if (stepped_once_[p]) {
      if (end_time > last_step_[p] + config_.delta) {
        std::ostringstream os;
        os << "live process starved: last step at t=" << last_step_[p]
           << ", execution ran to t=" << end_time << " with delta="
           << config_.delta;
        add(ViolationKind::kDeltaViolation, kTimeMax, p, 0, os.str());
      }
    } else if (end_time >= config_.delta) {
      std::ostringstream os;
      os << "live process never scheduled in " << end_time
         << " steps with delta=" << config_.delta;
      add(ViolationKind::kDeltaViolation, kTimeMax, p, 0, os.str());
    }
  }
}

void InvariantAuditor::cross_check(const Metrics& metrics) {
  const auto mismatch = [&](const char* what, std::uint64_t engine_value,
                            std::uint64_t audit_value) {
    std::ostringstream os;
    os << what << ": engine reports " << engine_value
       << ", audit recomputed " << audit_value;
    add(ViolationKind::kMetricsMismatch, kTimeMax, kNoProcess, 0, os.str());
  };
  if (metrics.messages_sent() != sends_total_)
    mismatch("messages_sent", metrics.messages_sent(), sends_total_);
  if (metrics.bytes_sent() != bytes_total_)
    mismatch("bytes_sent", metrics.bytes_sent(), bytes_total_);
  if (metrics.messages_delivered() != deliveries_total_)
    mismatch("messages_delivered", metrics.messages_delivered(),
             deliveries_total_);
  if (metrics.local_steps() != local_steps_total_)
    mismatch("local_steps", metrics.local_steps(), local_steps_total_);
  if (metrics.crashes() != crash_count_)
    mismatch("crashes", metrics.crashes(), crash_count_);
  if (metrics.any_send() != any_send_)
    mismatch("any_send", metrics.any_send() ? 1 : 0, any_send_ ? 1 : 0);
  if (any_send_ && metrics.last_send_time() != last_send_time_)
    mismatch("last_send_time", metrics.last_send_time(), last_send_time_);
  if (metrics.realized_d() != realized_d_)
    mismatch("realized_d", metrics.realized_d(), realized_d_);
  if (metrics.realized_delta() != realized_delta_)
    mismatch("realized_delta", metrics.realized_delta(), realized_delta_);
  if (metrics.max_in_flight() != observed_max_in_flight())
    mismatch("max_in_flight", metrics.max_in_flight(),
             observed_max_in_flight());
  if (metrics.per_process_sent() != per_process_sent_) {
    for (ProcessId p = 0; p < config_.n; ++p) {
      if (metrics.messages_sent_by(p) != per_process_sent_[p]) {
        std::ostringstream os;
        os << "per-process sends of p=" << p << ": engine reports "
           << metrics.messages_sent_by(p) << ", audit recomputed "
           << per_process_sent_[p];
        add(ViolationKind::kMetricsMismatch, kTimeMax, p, 0, os.str());
      }
    }
  }
  if (metrics.per_process_received() != per_process_received_) {
    for (ProcessId p = 0; p < config_.n; ++p) {
      if (metrics.messages_received_by(p) != per_process_received_[p]) {
        std::ostringstream os;
        os << "per-process deliveries of p=" << p << ": engine reports "
           << metrics.messages_received_by(p) << ", audit recomputed "
           << per_process_received_[p];
        add(ViolationKind::kMetricsMismatch, kTimeMax, p, 0, os.str());
      }
    }
  }
}

}  // namespace asyncgossip
