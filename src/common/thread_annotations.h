// Clang Thread Safety Analysis annotations and the annotated mutex types
// the runtime is required to use (aglint rule AG-LCK-002).
//
// The macros expand to clang's capability attributes when the compiler
// supports them and to nothing otherwise, so GCC builds are unaffected
// while clang presets compile src/rt with -Wthread-safety
// -Werror=thread-safety (src/rt/CMakeLists.txt). libstdc++'s std::mutex
// carries no capability annotations, so raw std::mutex is invisible to the
// analysis; Mutex/MutexLock below wrap it with the attributes that make
// every guarded access statically checkable. See docs/ANALYSIS.md.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AG_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef AG_THREAD_ANNOTATION_
#define AG_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define AG_CAPABILITY(x) AG_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in its
/// destructor.
#define AG_SCOPED_CAPABILITY AG_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define AG_GUARDED_BY(x) AG_THREAD_ANNOTATION_(guarded_by(x))

/// Pointed-to data may only be accessed while holding `x`.
#define AG_PT_GUARDED_BY(x) AG_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define AG_REQUIRES(...) AG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define AG_EXCLUDES(...) AG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define AG_ACQUIRE(...) AG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define AG_RELEASE(...) AG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire and reports success via its return value.
#define AG_TRY_ACQUIRE(...) \
  AG_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define AG_RETURN_CAPABILITY(x) AG_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: function body is exempt from the analysis. Every use
/// needs an adjacent comment explaining why the exemption is sound.
#define AG_NO_THREAD_SAFETY_ANALYSIS \
  AG_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace asyncgossip {

/// std::mutex with the capability attribute: the only mutex type permitted
/// in src/rt. Lock it through MutexLock so acquire/release pairing is
/// checked structurally, not just dynamically.
class AG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // aglint:allow(AG-LCK-001) the annotated wrapper is the one place raw
  // lock()/unlock() calls are allowed; everything else goes through
  // MutexLock (rule rationale in docs/ANALYSIS.md).
  void lock() AG_ACQUIRE() { mu_.lock(); }
  // aglint:allow(AG-LCK-001) see lock() above.
  void unlock() AG_RELEASE() { mu_.unlock(); }
  // aglint:allow(AG-LCK-001) see lock() above.
  bool try_lock() AG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Condition variable paired with Mutex — the only waiting primitive
/// permitted in AG-LCK-002-covered code (a raw std::condition_variable_any
/// would let callers wait on an unannotated lockable, hiding the guarded
/// state from the analysis). wait() requires the capability: callers hold
/// the mutex via MutexLock, and although the wait releases and reacquires
/// it internally, the capability is held again by the time wait returns,
/// so the annotation contract is sound at every statement boundary.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) AG_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// RAII lock for Mutex (the scoped_lockable shape clang's analysis
/// understands). Intentionally minimal: no deferred/adopted modes, because
/// the runtime never needs them and the analysis is strongest when the
/// constructor/destructor pairing is unconditional.
class AG_SCOPED_CAPABILITY MutexLock {
 public:
  // aglint:allow(AG-LCK-001) this RAII type is the scoping mechanism the
  // rule mandates; its ctor/dtor are the blessed lock()/unlock() pair.
  explicit MutexLock(Mutex* mu) AG_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  // aglint:allow(AG-LCK-001) see the constructor note.
  ~MutexLock() AG_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace asyncgossip
