// Table 1 reproduction: time and message complexity of the gossip
// protocols under an oblivious adversary.
//
//   rows      : trivial, ears, sears (eps = 1/4, 1/2), tears, sync (CK [9]
//               stand-in, run at its native d = delta = 1)
//   args      : {n, f_percent_of_n, d, delta}
//   counters  : msgs, steps, steps_per_dd (time in (d+delta) units),
//               msgs_per_n, gather_ok / majority_ok (property check rate)
//
// Expected shapes (paper):
//   trivial : msgs ~ n^2,          steps ~ (d+delta)
//   ears    : msgs ~ n log^3 n dd, steps ~ n/(n-f) log^2 n (d+delta)
//   sears   : msgs ~ n^{1+eps}..., steps ~ O(1) w.r.t. n
//   tears   : msgs ~ n^{7/4},      steps ~ (d+delta), msgs independent of d
//   sync    : msgs ~ n log n,      steps ~ log n (at d = delta = 1)
#include "bench_common.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("table1");

namespace {

constexpr int kIterations = 3;

// The per-case loop is the shared run_gossip_case (bench_common.h): one run
// per iteration, consecutive seeds, AG_BENCH_JOBS-aware.

void BM_Trivial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_gossip_case(state, base_spec(GossipAlgorithm::kTrivial, n,
                            n * static_cast<std::size_t>(state.range(1)) / 100,
                            static_cast<Time>(state.range(2)),
                            static_cast<Time>(state.range(3))));
}

void BM_Ears(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_gossip_case(state, base_spec(GossipAlgorithm::kEars, n,
                            n * static_cast<std::size_t>(state.range(1)) / 100,
                            static_cast<Time>(state.range(2)),
                            static_cast<Time>(state.range(3))));
}

void BM_SearsQuarter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GossipSpec spec = base_spec(
      GossipAlgorithm::kSears, n,
      n * static_cast<std::size_t>(state.range(1)) / 100,
      static_cast<Time>(state.range(2)), static_cast<Time>(state.range(3)));
  spec.sears_epsilon = 0.25;
  run_gossip_case(state, spec);
}

void BM_SearsHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GossipSpec spec = base_spec(
      GossipAlgorithm::kSears, n,
      n * static_cast<std::size_t>(state.range(1)) / 100,
      static_cast<Time>(state.range(2)), static_cast<Time>(state.range(3)));
  spec.sears_epsilon = 0.5;
  run_gossip_case(state, spec);
}

void BM_Tears(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GossipSpec spec = base_spec(
      GossipAlgorithm::kTears, n,
      n * static_cast<std::size_t>(state.range(1)) / 100,
      static_cast<Time>(state.range(2)), static_cast<Time>(state.range(3)));
  // Scaled-down multipliers so a < n at simulable sizes (EXPERIMENTS.md).
  spec.tears_a_constant = 1.0;
  spec.tears_kappa_constant = 1.0;
  run_gossip_case(state, spec);
}

// CK [9] stand-in: runs in its native synchronous model (d = delta = 1
// known a priori), whatever the requested d/delta columns say.
void BM_Sync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GossipSpec spec =
      base_spec(GossipAlgorithm::kSync, n,
                n * static_cast<std::size_t>(state.range(1)) / 100, 1, 1);
  run_gossip_case(state, spec);
}

const std::vector<std::vector<std::int64_t>> kGrid = {
    {64, 128, 256, 512},  // n
    {25, 45},             // f as % of n
    {1, 8},               // d
    {1, 4},               // delta
};

BENCHMARK(BM_Trivial)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_Ears)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_SearsQuarter)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_SearsHalf)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_Tears)->ArgsProduct(kGrid)->Iterations(kIterations);
BENCHMARK(BM_Sync)
    ->ArgsProduct({{64, 128, 256, 512, 1024}, {25, 45}, {1}, {1}})
    ->Iterations(kIterations);

// Message-growth exponents in n (fixed f% = 25, d = delta = 1): the bench
// reports msgs at each n; EXPERIMENTS.md fits the exponent. tears gets a
// deeper sweep since its claim (n^{7/4}) needs the tail.
BENCHMARK(BM_Tears)
    ->ArgsProduct({{1024, 2048, 4096}, {25}, {1}, {1}})
    ->Iterations(kIterations);

}  // namespace
}  // namespace asyncgossip::bench
