// Execution tracing: a bounded event log with an ASCII timeline renderer
// and delivery-latency statistics.
//
// Intended uses: debugging algorithm behaviour ("who woke whom up and
// when"), the examples' narrated output, and tests that assert causal
// structure (a delivery never precedes its send; crashed processes emit no
// further events).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/observer.h"

namespace asyncgossip {

class TraceRecorder final : public EngineObserver {
 public:
  enum class EventKind : std::uint8_t { kStep, kSend, kDelivery, kCrash };

  struct Event {
    EventKind kind;
    Time time = 0;
    ProcessId process = kNoProcess;  // actor (sender / receiver / stepper)
    ProcessId peer = kNoProcess;     // other endpoint for send/delivery
    MessageId message = 0;
    Time send_time = 0;      // sends/deliveries: when the message was sent
    Time deliver_after = 0;  // sends/deliveries: earliest legal receipt
  };

  /// Records at most `max_events` events (counters keep running after the
  /// log fills; `dropped()` reports the overflow).
  explicit TraceRecorder(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  void on_step(Time now, ProcessId p) override;
  void on_send(const Envelope& env) override;
  void on_delivery(const Envelope& env, Time now) override;
  void on_crash(Time now, ProcessId p) override;

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t sends() const { return sends_; }
  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Delivery latency (receipt time - send time) summary.
  Summary latency_summary() const;

  /// ASCII timeline: one row per process (up to `max_processes`), one
  /// column per time step (up to `max_time` columns, starting at step 0).
  /// Cell legend: '.' idle, 'o' step, 's' step+send, 'd' step+delivery,
  /// 'b' step+send+delivery, 'X' crash, ' ' after crash.
  std::string render_timeline(std::size_t n, std::size_t max_processes = 32,
                              std::size_t max_time = 96) const;

  void clear();

  // --- machine-readable trace format (consumed by tools/tracecheck) -------
  //
  // Line-oriented text, one event per line:
  //   step <t> <p>
  //   send <t> <id> <from> <to> <deliver_after>
  //   deliver <t> <id> <from> <to> <send_time> <deliver_after>
  //   crash <t> <p>
  // Blank lines and lines starting with '#' are ignored; a
  // `model n=<n> d=<d> delta=<delta> f=<f>` line carries the model spec.

  /// Outcome of parsing one line of the text format.
  enum class ParseResult : std::uint8_t {
    kEvent,  // *out holds a parsed event
    kSkip,   // blank line, comment, or model line — not an event
    kError,  // malformed line
  };

  /// One event in the text format (no trailing newline).
  static std::string format_event(const Event& e);
  /// Parses one line of the text format into *out.
  static ParseResult parse_line(const std::string& line, Event* out);

  /// Writes every recorded event, one per line, in the text format.
  void write_events(std::ostream& os) const;
  /// Writes a header comment, the `model` line for the given spec, and
  /// every recorded event: a complete, self-describing trace artifact.
  void write_trace(std::ostream& os, std::size_t n, Time d, Time delta,
                   std::size_t f) const;

 private:
  void push(Event e);

  std::size_t max_events_;
  std::vector<Event> events_;
  std::uint64_t steps_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<double> latencies_;
};

}  // namespace asyncgossip
