file(REMOVE_RECURSE
  "CMakeFiles/ag_lowerbound.dir/adaptive.cpp.o"
  "CMakeFiles/ag_lowerbound.dir/adaptive.cpp.o.d"
  "CMakeFiles/ag_lowerbound.dir/probe.cpp.o"
  "CMakeFiles/ag_lowerbound.dir/probe.cpp.o.d"
  "libag_lowerbound.a"
  "libag_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
